// Command cdsbench regenerates the experiment figures and tables from
// DESIGN.md — throughput-scalability series for every structure family
// (F1–F12, T1–T3) plus the mixed-workload scenario matrix with latency
// percentiles (S1–S18, including the S14 reclamation, S15 blocking, S16
// executor, S17 cache, and S18 segmented-queue families whose records
// carry structure gauges) — as aligned text tables or as a machine-readable
// JSON report.
//
// Usage:
//
//	cdsbench                       # run the full suite, text tables
//	cdsbench -experiment F4        # one experiment
//	cdsbench -quick                # smoke-sized workloads
//	cdsbench -threads 1,2,4,8      # custom sweep
//	cdsbench -list                 # list experiment IDs
//	cdsbench -format json -o f.json# serialize a bench.Report (see package
//	                               # bench docs for the schema)
//
// The JSON report embeds the Go version, GOMAXPROCS, and the git revision,
// so checked-in BENCH_*.json files are diffable across commits: the perf
// trajectory of the repository is the series of these files.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"

	"github.com/cds-suite/cds/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cdsbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cdsbench", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "", "experiment ID to run (e.g. F1, A2, S3); empty runs the main suite")
		ablations  = fs.Bool("ablations", false, "also run the ablation sweeps (A1..A5)")
		quick      = fs.Bool("quick", false, "smoke-sized workloads")
		threads    = fs.String("threads", "", "comma-separated thread sweep (default: 1,2,4,...,GOMAXPROCS)")
		ops        = fs.Int("ops", 0, "per-worker operations (0 = per-experiment default)")
		list       = fs.Bool("list", false, "list experiments and exit")
		format     = fs.String("format", "text", "output format: text (aligned tables) or json (bench.Report)")
		out        = fs.String("o", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		for _, e := range bench.Ablations() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}

	cfg := bench.Config{Quick: *quick, Ops: *ops}
	if *threads != "" {
		sweep, err := parseThreads(*threads)
		if err != nil {
			return err
		}
		cfg.Threads = sweep
	}

	var selected []bench.Experiment
	if *experiment == "" {
		selected = bench.Experiments()
		if *ablations {
			selected = append(selected, bench.Ablations()...)
		}
	} else {
		e, ok := bench.Find(*experiment)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", *experiment)
		}
		selected = []bench.Experiment{e}
	}

	if *format != "text" && *format != "json" {
		return fmt.Errorf("unknown format %q (want text or json)", *format)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	if *format == "json" {
		rep := bench.BuildReport(cfg, selected)
		if rep.Meta.GitRevision == "unknown" {
			if rev := gitRevision(); rev != "" {
				rep.Meta.GitRevision = rev
			}
		}
		// Echo the hardware framing to stderr so a redirected run still
		// shows the reader what the numbers can and cannot claim.
		fmt.Fprintln(os.Stderr, "cdsbench:", rep.Summary)
		return rep.WriteJSON(w)
	}
	for _, e := range selected {
		fmt.Fprintf(w, "# %s — %s\n", e.ID, e.Title)
		for _, fig := range e.Run(cfg) {
			if err := fig.Render(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// gitRevision asks the working tree's git for HEAD. It is only a fallback
// for when the binary carries no embedded VCS stamping (the `go run`
// case): the build info, when present, names the commit the binary was
// actually built from, whereas the CWD's HEAD may be a different commit
// or a different repository entirely. Returns "" when git or the
// repository is unavailable.
func gitRevision() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func parseThreads(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	sweep := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("invalid thread count %q", p)
		}
		sweep = append(sweep, n)
	}
	return sweep, nil
}
