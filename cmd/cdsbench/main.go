// Command cdsbench regenerates the experiment figures and tables from
// DESIGN.md: throughput-scalability series for every structure family,
// printed as aligned text tables (one row per thread count, one column per
// algorithm).
//
// Usage:
//
//	cdsbench                  # run the full suite
//	cdsbench -experiment F4   # one experiment
//	cdsbench -quick           # smoke-sized workloads
//	cdsbench -threads 1,2,4,8 # custom sweep
//	cdsbench -list            # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/cds-suite/cds/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cdsbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cdsbench", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "", "experiment ID to run (e.g. F1, A2); empty runs the main suite")
		ablations  = fs.Bool("ablations", false, "also run the ablation sweeps (A1..A4)")
		quick      = fs.Bool("quick", false, "smoke-sized workloads")
		threads    = fs.String("threads", "", "comma-separated thread sweep (default: 1,2,4,...,GOMAXPROCS)")
		ops        = fs.Int("ops", 0, "per-worker operations (0 = per-experiment default)")
		list       = fs.Bool("list", false, "list experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		for _, e := range bench.Ablations() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}

	cfg := bench.Config{Quick: *quick, Ops: *ops}
	if *threads != "" {
		sweep, err := parseThreads(*threads)
		if err != nil {
			return err
		}
		cfg.Threads = sweep
	}

	var selected []bench.Experiment
	if *experiment == "" {
		selected = bench.Experiments()
		if *ablations {
			selected = append(selected, bench.Ablations()...)
		}
	} else {
		e, ok := bench.Find(*experiment)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", *experiment)
		}
		selected = []bench.Experiment{e}
	}

	for _, e := range selected {
		fmt.Printf("# %s — %s\n", e.ID, e.Title)
		for _, fig := range e.Run(cfg) {
			if err := fig.Render(os.Stdout); err != nil {
				return err
			}
		}
	}
	return nil
}

func parseThreads(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	sweep := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("invalid thread count %q", p)
		}
		sweep = append(sweep, n)
	}
	return sweep, nil
}
