package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/cds-suite/cds/bench"
)

func writeReport(t *testing.T, dir, name string, rep bench.Report) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func report(value float64) bench.Report {
	return bench.Report{
		Schema: bench.ReportSchema,
		Records: []bench.Record{{
			Family:   "contend",
			Scenario: "queue-pingpong",
			Algo:     "FC",
			Threads:  4,
			Value:    value,
			Unit:     bench.UnitMops,
		}},
	}
}

func TestRunFlagsInjectedRegression(t *testing.T) {
	dir := t.TempDir()
	// New report is 20% slower than old: beyond the default 10% noise.
	oldPath := writeReport(t, dir, "old.json", report(10.0))
	newPath := writeReport(t, dir, "new.json", report(8.0))
	var out, errb bytes.Buffer
	if code := run([]string{oldPath, newPath}, &out, &errb); code != 1 {
		t.Fatalf("exit code = %d, want 1 for injected regression\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "REGRESSION(value)") {
		t.Fatalf("output does not flag the regression:\n%s", out.String())
	}
}

func TestRunCleanWhenWithinNoise(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", report(10.0))
	newPath := writeReport(t, dir, "new.json", report(9.5)) // -5% < 10% noise
	var out, errb bytes.Buffer
	if code := run([]string{oldPath, newPath}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0 for within-noise delta\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Fatalf("output missing clean verdict:\n%s", out.String())
	}
}

func TestRunWiderNoiseToleratesDrop(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", report(10.0))
	newPath := writeReport(t, dir, "new.json", report(8.0)) // -20%
	var out, errb bytes.Buffer
	if code := run([]string{"-noise", "0.25", oldPath, newPath}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0 with -noise 0.25\nstdout:\n%s", code, out.String())
	}
}

func TestRunSelfDiffIsClean(t *testing.T) {
	dir := t.TempDir()
	path := writeReport(t, dir, "same.json", report(10.0))
	var out, errb bytes.Buffer
	if code := run([]string{path, path}, &out, &errb); code != 0 {
		t.Fatalf("self-diff exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errb.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"only-one.json"}, &out, &errb); code != 2 {
		t.Fatalf("one-arg exit code = %d, want 2", code)
	}
	if code := run([]string{"missing-a.json", "missing-b.json"}, &out, &errb); code != 2 {
		t.Fatalf("missing-file exit code = %d, want 2", code)
	}
}
