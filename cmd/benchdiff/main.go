// Command benchdiff compares two cds-bench/v1 reports cell by cell.
//
// It joins records by (experiment family, scenario, algo, threads), prints
// per-cell throughput and p99 deltas, and exits nonzero when any cell
// regressed beyond the noise threshold — so CI can gate on it:
//
//	go run ./cmd/benchdiff -noise 0.10 baseline.json current.json
//
// Quick-mode reports are noisy; widen -noise rather than trusting
// single-run deltas on a loaded machine.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/cds-suite/cds/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	noise := fs.Float64("noise", 0.10, "fractional noise threshold; deltas beyond it are regressions")
	verbose := fs.Bool("v", false, "print cells that stayed within the noise threshold too")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: benchdiff [-noise 0.10] [-v] old.json new.json\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	if *noise < 0 {
		fmt.Fprintln(stderr, "benchdiff: -noise must be >= 0")
		return 2
	}
	oldR, err := bench.LoadReport(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	newR, err := bench.LoadReport(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	d := bench.DiffReports(oldR, newR, *noise)
	if err := d.Render(stdout, *verbose); err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	if regs := d.Regressions(); len(regs) > 0 {
		fmt.Fprintf(stdout, "%d cell(s) regressed beyond %.0f%% noise\n", len(regs), 100**noise)
		return 1
	}
	fmt.Fprintf(stdout, "no regressions beyond %.0f%% noise (%d cells compared)\n", 100**noise, len(d.Cells))
	return 0
}
