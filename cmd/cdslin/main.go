// Command cdslin stress-tests the linearizability of the module's
// structures: it records many small concurrent histories from live
// structures and checks each against the sequential model, reporting any
// counterexample it finds.
//
// Usage:
//
//	cdslin                         # all structures, default windows
//	cdslin -structure treiber      # one structure
//	cdslin -rounds 500 -clients 4  # heavier search
//	cdslin -list                   # list structure names
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"

	cds "github.com/cds-suite/cds"
	"github.com/cds-suite/cds/cmap"
	"github.com/cds-suite/cds/internal/xrand"
	"github.com/cds-suite/cds/lincheck"
	"github.com/cds-suite/cds/list"
	"github.com/cds-suite/cds/queue"
	"github.com/cds-suite/cds/skiplist"
	"github.com/cds-suite/cds/stack"
)

type target struct {
	name  string
	model lincheck.Model
	ops   func(rng *xrand.Rand, rec *lincheck.Recorder, client, opsPer int)
}

func targets() map[string]func() target {
	stackTarget := func(name string, mk func() cds.Stack[int]) func() target {
		return func() target {
			s := mk()
			return target{
				name:  name,
				model: lincheck.StackModel(),
				ops: func(rng *xrand.Rand, rec *lincheck.Recorder, client, opsPer int) {
					for i := 0; i < opsPer; i++ {
						if rng.Intn(2) == 0 {
							v := rng.Intn(4)
							p := rec.Begin(client, lincheck.StackPush{Value: v})
							s.Push(v)
							p.End(nil)
						} else {
							p := rec.Begin(client, lincheck.StackPop{})
							v, ok := s.TryPop()
							p.End(lincheck.ValueOK{Value: v, OK: ok})
						}
					}
				},
			}
		}
	}
	queueTarget := func(name string, mk func() cds.Queue[int]) func() target {
		return func() target {
			q := mk()
			return target{
				name:  name,
				model: lincheck.QueueModel(),
				ops: func(rng *xrand.Rand, rec *lincheck.Recorder, client, opsPer int) {
					for i := 0; i < opsPer; i++ {
						if rng.Intn(2) == 0 {
							v := rng.Intn(4)
							p := rec.Begin(client, lincheck.QueueEnqueue{Value: v})
							q.Enqueue(v)
							p.End(nil)
						} else {
							p := rec.Begin(client, lincheck.QueueDequeue{})
							v, ok := q.TryDequeue()
							p.End(lincheck.ValueOK{Value: v, OK: ok})
						}
					}
				},
			}
		}
	}
	setTarget := func(name string, mk func() cds.Set[int]) func() target {
		return func() target {
			s := mk()
			return target{
				name:  name,
				model: lincheck.SetModel(),
				ops: func(rng *xrand.Rand, rec *lincheck.Recorder, client, opsPer int) {
					for i := 0; i < opsPer; i++ {
						k := rng.Intn(3)
						switch rng.Intn(3) {
						case 0:
							p := rec.Begin(client, lincheck.SetAdd{Key: k})
							p.End(s.Add(k))
						case 1:
							p := rec.Begin(client, lincheck.SetRemove{Key: k})
							p.End(s.Remove(k))
						default:
							p := rec.Begin(client, lincheck.SetContains{Key: k})
							p.End(s.Contains(k))
						}
					}
				},
			}
		}
	}
	mapTarget := func(name string, mk func() cds.Map[int, int]) func() target {
		return func() target {
			m := mk()
			return target{
				name:  name,
				model: lincheck.MapModel(),
				ops: func(rng *xrand.Rand, rec *lincheck.Recorder, client, opsPer int) {
					for i := 0; i < opsPer; i++ {
						k := rng.Intn(3)
						switch rng.Intn(3) {
						case 0:
							v := rng.Intn(4)
							p := rec.Begin(client, lincheck.MapStore{Key: k, Value: v})
							m.Store(k, v)
							p.End(nil)
						case 1:
							p := rec.Begin(client, lincheck.MapLoad{Key: k})
							v, ok := m.Load(k)
							p.End(lincheck.ValueOK{Value: v, OK: ok})
						default:
							p := rec.Begin(client, lincheck.MapDelete{Key: k})
							p.End(m.Delete(k))
						}
					}
				},
			}
		}
	}

	return map[string]func() target{
		"stack-mutex":       stackTarget("stack-mutex", func() cds.Stack[int] { return stack.NewMutex[int]() }),
		"treiber":           stackTarget("treiber", func() cds.Stack[int] { return stack.NewTreiber[int]() }),
		"elimination":       stackTarget("elimination", func() cds.Stack[int] { return stack.NewElimination[int](2, 16) }),
		"queue-mutex":       queueTarget("queue-mutex", func() cds.Queue[int] { return queue.NewMutex[int]() }),
		"twolock":           queueTarget("twolock", func() cds.Queue[int] { return queue.NewTwoLock[int]() }),
		"msqueue":           queueTarget("msqueue", func() cds.Queue[int] { return queue.NewMS[int]() }),
		"list-coarse":       setTarget("list-coarse", func() cds.Set[int] { return list.NewCoarse[int]() }),
		"list-fine":         setTarget("list-fine", func() cds.Set[int] { return list.NewFine[int]() }),
		"list-optimistic":   setTarget("list-optimistic", func() cds.Set[int] { return list.NewOptimistic[int]() }),
		"list-lazy":         setTarget("list-lazy", func() cds.Set[int] { return list.NewLazy[int]() }),
		"harris":            setTarget("harris", func() cds.Set[int] { return list.NewHarris[int]() }),
		"skiplist-lazy":     setTarget("skiplist-lazy", func() cds.Set[int] { return skiplist.NewLazy[int]() }),
		"skiplist-lockfree": setTarget("skiplist-lockfree", func() cds.Set[int] { return skiplist.NewLockFree[int]() }),
		"map-locked":        mapTarget("map-locked", func() cds.Map[int, int] { return cmap.NewLocked[int, int]() }),
		"map-striped":       mapTarget("map-striped", func() cds.Map[int, int] { return cmap.NewStriped[int, int](8) }),
		"splitordered":      mapTarget("splitordered", func() cds.Map[int, int] { return cmap.NewSplitOrdered[int, int]() }),
	}
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cdslin:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cdslin", flag.ContinueOnError)
	var (
		structure = fs.String("structure", "", "structure to check (empty = all)")
		rounds    = fs.Int("rounds", 200, "history windows per structure")
		clients   = fs.Int("clients", 3, "concurrent clients per window")
		opsPer    = fs.Int("ops", 4, "operations per client per window")
		listOnly  = fs.Bool("list", false, "list structures and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	all := targets()
	if *listOnly {
		names := make([]string, 0, len(all))
		for name := range all {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Println(name)
		}
		return nil
	}

	names := make([]string, 0, len(all))
	if *structure != "" {
		if _, ok := all[*structure]; !ok {
			return fmt.Errorf("unknown structure %q (try -list)", *structure)
		}
		names = append(names, *structure)
	} else {
		for name := range all {
			names = append(names, name)
		}
		sort.Strings(names)
	}

	for _, name := range names {
		mk := all[name]
		if err := checkStructure(mk, *rounds, *clients, *opsPer); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("%-20s ok (%d windows × %d clients × %d ops)\n", name, *rounds, *clients, *opsPer)
	}
	return nil
}

func checkStructure(mk func() target, rounds, clients, opsPer int) error {
	for round := 0; round < rounds; round++ {
		tgt := mk() // fresh structure per window
		rec := lincheck.NewRecorder(clients)
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rng := xrand.New(uint64(round*clients+c) + 1)
				tgt.ops(rng, rec, c, opsPer)
			}(c)
		}
		wg.Wait()
		if res := lincheck.Check(tgt.model, rec.History()); !res.Ok {
			return fmt.Errorf("window %d: %s", round, res.Info)
		}
	}
	return nil
}
