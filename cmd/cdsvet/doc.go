// Command cdsvet runs the repo's concurrency lint suite: five
// go/analysis-style checkers, built purely on the standard library,
// that machine-check the invariants ARCHITECTURE.md states in prose —
// no mixed plain/atomic access (atomicmix), reclaim guards exited on
// every path and never held across a parking operation (guardexit),
// pad-separated hot fields actually on distinct cache lines
// (padlayout), CAS retry loops paced by contend.Backoff or a yield
// (spinpace), and package comments everywhere (docgate).
//
// Usage:
//
//	cdsvet [-list] [pattern ...]
//
// With no patterns (or ./...) the whole module is checked. A pattern
// like ./queue/... restricts which packages' findings are reported; the
// whole module still loads, because the invariants are cross-package.
// Intentional exceptions are annotated inline:
//
//	//cdsvet:ignore <analyzer> <reason>
//
// on (or directly above) the reported line. The reason is mandatory and
// reviewed like code: it must state why the invariant does not apply
// (single-owner access, deliberate stalled-reader scenario, ...). A
// malformed pragma, or one that suppresses nothing, is itself an error.
//
// Exit status is 0 when no findings survive suppression, 1 otherwise,
// 2 on a load failure. CI runs `cdsvet ./...` before the build step,
// gating every PR the same way go vet does.
package main
