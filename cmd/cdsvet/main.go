package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/cds-suite/cds/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cdsvet [-list] [pattern ...]\n\npatterns are ./...-style package path prefixes; default is the whole module\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cdsvet:", err)
		os.Exit(2)
	}
	prog, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cdsvet:", err)
		os.Exit(2)
	}

	diags := analysis.Run(prog, analysis.All())
	diags = filterPatterns(root, diags, flag.Args())

	for _, d := range diags {
		rel, err := filepath.Rel(root, d.Pos.Filename)
		if err == nil {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "cdsvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// filterPatterns keeps diagnostics whose file falls under one of the
// ./...-style patterns. No patterns (or ./...) keeps everything.
func filterPatterns(root string, diags []analysis.Diagnostic, patterns []string) []analysis.Diagnostic {
	if len(patterns) == 0 {
		return diags
	}
	var prefixes []string
	for _, p := range patterns {
		p = strings.TrimSuffix(p, "...")
		p = strings.TrimSuffix(p, "/")
		p = strings.TrimPrefix(p, "./")
		if p == "" || p == "." {
			return diags
		}
		prefixes = append(prefixes, filepath.Join(root, filepath.FromSlash(p)))
	}
	var out []analysis.Diagnostic
	for _, d := range diags {
		for _, pre := range prefixes {
			if d.Pos.Filename == pre || strings.HasPrefix(d.Pos.Filename, pre+string(filepath.Separator)) {
				out = append(out, d)
				break
			}
		}
	}
	return out
}
