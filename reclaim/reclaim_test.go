package reclaim

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

type node struct {
	v     int
	freed atomic.Bool
}

func TestGCDomainIsInert(t *testing.T) {
	d := NewGC()
	if d.Deferred() {
		t.Fatal("GC domain reports Deferred")
	}
	if d.Name() != "gc" {
		t.Fatalf("Name = %q", d.Name())
	}
	p := NewPool(d, 2)
	g := p.Get()
	g.Enter()
	called := false
	g.Retire(&node{}, func() { called = true })
	g.Exit()
	p.Put(g)
	if called {
		t.Fatal("GC guard ran a free callback")
	}
	if d.Reclaimed() != 0 || d.Pending() != 0 {
		t.Fatalf("GC gauges = (%d, %d), want (0, 0)", d.Reclaimed(), d.Pending())
	}
	if p.Get() != g {
		t.Fatal("GC pool did not return the shared guard")
	}
}

func TestEBRRetireWaitsForSectionExit(t *testing.T) {
	d := NewEBR()
	d.SetAdvanceInterval(1)
	reader := d.NewGuard(0)
	writer := d.NewGuard(0)
	defer reader.Release()
	defer writer.Release()

	obj := &node{}
	reader.Enter()
	writer.Retire(obj, func() { obj.freed.Store(true) })
	// Retire with interval 1 tries hard to advance; the pinned reader
	// must hold it back.
	for i := 0; i < 10; i++ {
		writer.Retire(&node{}, func() {})
	}
	if obj.freed.Load() {
		t.Fatal("object freed while a guard was inside its section")
	}
	if d.Pending() == 0 {
		t.Fatal("pending gauge never rose")
	}
	reader.Exit()
	for i := 0; i < 10; i++ {
		writer.Retire(&node{}, func() {})
	}
	if !obj.freed.Load() {
		t.Fatal("object never freed after the section exited")
	}
	if d.Reclaimed() == 0 {
		t.Fatal("reclaimed gauge never rose")
	}
}

func TestHPLoadProtectsAgainstScan(t *testing.T) {
	d := NewHP()
	d.SetScanThreshold(1)
	reader := d.NewGuard(1)
	writer := d.NewGuard(1)
	defer reader.Release()
	defer writer.Release()

	obj := &node{v: 7}
	var shared atomic.Pointer[node]
	shared.Store(obj)

	reader.Enter()
	got := Load(reader, 0, &shared)
	if got != obj {
		t.Fatalf("Load = %p, want %p", got, obj)
	}

	// Unlink and retire; threshold 1 scans on every retire.
	shared.Store(nil)
	writer.Retire(obj, func() { obj.freed.Store(true) })
	for i := 0; i < 5; i++ {
		writer.Retire(&node{}, func() {})
	}
	if obj.freed.Load() {
		t.Fatal("protected object freed under scan pressure")
	}

	// Exit clears the slot; the next scan may free it.
	reader.Exit()
	for i := 0; i < 3; i++ {
		writer.Retire(&node{}, func() {})
	}
	if !obj.freed.Load() {
		t.Fatal("object never freed after slot cleared")
	}
}

func TestLoadRevalidatesOnChange(t *testing.T) {
	d := NewHP()
	g := d.NewGuard(1)
	defer g.Release()

	var shared atomic.Pointer[node]
	shared.Store(&node{v: 1})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				shared.Store(&node{v: 2})
			}
		}
	}()
	for i := 0; i < 5000; i++ {
		g.Enter()
		p := Load(g, 0, &shared)
		if p == nil {
			t.Fatal("nil from non-nil source")
		}
		g.Exit()
	}
	close(stop)
	wg.Wait()
}

func TestRecyclerReusesReclaimedNodes(t *testing.T) {
	d := NewEBR()
	d.SetAdvanceInterval(1)
	r := NewRecycler(func(n *node) { n.v = 0; n.freed.Store(false) })
	g := d.NewGuard(0)
	defer g.Release()

	// Retire dirty nodes and drain Gets until a reuse is observed. The
	// loop bound absorbs sync.Pool's deliberate random drops under the
	// race detector; one round would flake there.
	for round := 0; round < 200 && r.Reused() == 0; round++ {
		n := r.Get()
		n.v = 42
		Retire(g, r, n)
		for i := 0; i < 4; i++ {
			if m := r.Get(); m.v != 0 {
				t.Fatalf("recycled node not reset: v = %d", m.v)
			}
		}
	}
	if d.Reclaimed() == 0 {
		t.Fatal("retired nodes never reclaimed")
	}
	if r.Reused() == 0 {
		t.Fatal("recycler never reused a node")
	}
}

func TestRecyclerPutGiveBack(t *testing.T) {
	r := NewRecycler(func(n *node) { n.v = 0 })
	n := r.Get()
	n.v = 9
	r.Put(n)
	m := r.Get()
	if m.v != 0 {
		t.Fatalf("given-back node not reset: v = %d", m.v)
	}
}

func TestNilRecyclerAllocates(t *testing.T) {
	var r *Recycler[node]
	if r.Get() == nil {
		t.Fatal("nil recycler returned nil node")
	}
	r.Put(&node{}) // must not panic
	if r.Reused() != 0 {
		t.Fatal("nil recycler claims reuse")
	}
	// Retire through a real guard with nil recycler still counts.
	d := NewEBR()
	d.SetAdvanceInterval(1)
	g := d.NewGuard(0)
	defer g.Release()
	Retire(g, r, &node{})
	for i := 0; i < 16 && d.Reclaimed() == 0; i++ {
		Retire(g, r, &node{})
	}
	if d.Reclaimed() == 0 {
		t.Fatal("nil-recycler retirement never reclaimed")
	}
}

// TestDomainsNeverFreeReachable is the cross-scheme invariant stress: for
// each deferring domain, readers guard-protect the current head and verify
// its destructor has not run; writers swap heads and retire the old one.
func TestDomainsNeverFreeReachable(t *testing.T) {
	domains := map[string]func() Domain{
		"ebr": func() Domain { e := NewEBR(); e.SetAdvanceInterval(8); return e },
		"hp":  func() Domain { h := NewHP(); h.SetScanThreshold(8); return h },
	}
	for name, mk := range domains {
		t.Run(name, func(t *testing.T) {
			d := mk()
			pool := NewPool(d, 1)
			var shared atomic.Pointer[node]
			shared.Store(&node{})

			var (
				rwg, wwg sync.WaitGroup
				stop     = make(chan struct{})
			)
			readers := max(2, runtime.GOMAXPROCS(0)/2)
			for i := 0; i < readers; i++ {
				rwg.Add(1)
				go func() {
					defer rwg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						g := pool.Get()
						g.Enter()
						p := Load(g, 0, &shared)
						if p != nil && p.freed.Load() {
							t.Error("reader reached a freed object")
							g.Exit()
							pool.Put(g)
							return
						}
						g.Exit()
						pool.Put(g)
					}
				}()
			}
			for i := 0; i < 2; i++ {
				wwg.Add(1)
				go func() {
					defer wwg.Done()
					g := pool.Get()
					for n := 0; n < 20000; n++ {
						old := shared.Swap(&node{})
						g.Retire(old, func() { old.freed.Store(true) })
					}
					pool.Put(g)
				}()
			}
			wwg.Wait()
			close(stop)
			rwg.Wait()
			if t.Failed() {
				return
			}
			if d.Reclaimed() == 0 {
				t.Fatal("stress run reclaimed nothing — protocol inert")
			}
		})
	}
}
