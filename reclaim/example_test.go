package reclaim_test

import (
	"fmt"
	"sync/atomic"

	"github.com/cds-suite/cds/reclaim"
)

// The canonical guard bracket: pin a section, load-protect a shared
// pointer, and retire an unlinked object whose free callback runs only
// once no guard can reach it.
func Example() {
	type node struct{ v int }

	d := reclaim.NewEBR()
	d.SetAdvanceInterval(1) // reclaim eagerly so the example terminates

	var head atomic.Pointer[node]
	head.Store(&node{v: 1})

	pool := reclaim.NewPool(d, 1)
	g := pool.Get()
	g.Enter()
	n := reclaim.Load(g, 0, &head) // safe to dereference inside the section
	fmt.Println("read:", n.v)
	g.Exit()

	// A writer unlinks the node and retires it.
	old := head.Swap(&node{v: 2})
	g.Enter()
	g.Retire(old, func() { fmt.Println("freed:", old.v) })
	g.Exit()

	// Drive retirement traffic until the grace period passes.
	for i := 0; i < 8 && d.Reclaimed() == 0; i++ {
		g.Retire(&node{}, func() {})
	}
	pool.Put(g)

	fmt.Println("reclaimed:", d.Reclaimed() > 0)
	// Output:
	// read: 1
	// freed: 1
	// reclaimed: true
}
