package reclaim

import "github.com/cds-suite/cds/internal/epoch"

// EBR is the epoch-based reclamation domain, backed by an
// internal/epoch.Collector. Guards pin the global epoch for the duration
// of Enter/Exit sections; Retire defers the free callback until the epoch
// has advanced twice past the retirement epoch, at which point no pinned
// reader can still hold a reference.
//
// EBR's weakness is liveness, not safety: one guard stalled inside a
// section halts epoch advancement and lets pending garbage grow without
// bound across the whole domain (the S14 stalled-reader scenario measures
// exactly this).
type EBR struct {
	c *epoch.Collector
}

// NewEBR returns a fresh epoch-based reclamation domain.
func NewEBR() *EBR {
	return &EBR{c: epoch.NewCollector()}
}

// SetAdvanceInterval overrides how many retirements a guard buffers
// between epoch-advance attempts (default 64). Lower values reclaim more
// eagerly at the cost of more frequent participant scans; tests use 1-4
// to force reclamation inside tiny windows. Call before guards retire.
func (e *EBR) SetAdvanceInterval(n uint64) { e.c.SetAdvanceInterval(n) }

// Collector exposes the backing epoch collector (monitoring and tests).
func (e *EBR) Collector() *epoch.Collector { return e.c }

// NewGuard registers a participant. slots is ignored: EBR protects whole
// sections, not individual pointers.
func (e *EBR) NewGuard(int) Guard {
	return &ebrGuard{c: e.c, p: e.c.Register()}
}

func (e *EBR) Reclaimed() int64 { return e.c.Reclaimed() }
func (e *EBR) Pending() int64   { return e.c.Pending() }
func (e *EBR) Deferred() bool   { return true }
func (e *EBR) Name() string     { return "ebr" }

type ebrGuard struct {
	c *epoch.Collector
	p *epoch.Participant
}

func (g *ebrGuard) Enter()           { g.p.Pin() }
func (g *ebrGuard) Exit()            { g.p.Unpin() }
func (g *ebrGuard) Protect(int, any) {}
func (g *ebrGuard) Protects() bool   { return false }

func (g *ebrGuard) Retire(_ any, free func()) { g.p.Retire(free) }

func (g *ebrGuard) Release() { g.c.Unregister(g.p) }
