package reclaim

import (
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"

	"github.com/cds-suite/cds/internal/pad"
)

// Pool amortises guard registration across operations: a structure keeps
// one Pool and brackets each operation with Get/Put. Handing a guard to
// at most one goroutine at a time is exactly the owner-only discipline
// guards require.
//
// The cache is a fixed ring of padded TryLock slots rather than a
// sync.Pool: parked guards are registered domain state (an EBR
// participant, a set of hazard slots), and a cache that sheds items under
// GC pressure — or deliberately, as sync.Pool does under the race
// detector — leaks registrations faster than they can be torn down,
// growing every domain scan. Here the registry is bounded by
// construction: a Put that finds the ring full releases the guard
// instead of parking it.
//
// Slot selection hashes the caller's stack address, which is stable per
// goroutine, so a worker tends to reacquire the guard (and the warmed
// hazard slots) it used last.
//
// For the GC domain Get returns a shared stateless guard without touching
// the ring at all, keeping the default path allocation- and
// contention-free.
type Pool struct {
	d      Domain
	slots  int
	shared Guard // non-nil only for the stateless GC guard
	cache  []pslot
}

type pslot struct {
	mu sync.Mutex
	g  Guard
	_  pad.CacheLinePad
}

// NewPool returns a guard pool over d; guards are created with the given
// hazard-slot capacity.
func NewPool(d Domain, slots int) *Pool {
	p := &Pool{d: d, slots: slots}
	if !d.Deferred() {
		// The GC guard carries no state, so one instance serves everyone.
		p.shared = d.NewGuard(slots)
		return p
	}
	n := 4
	for n < 2*runtime.GOMAXPROCS(0) {
		n *= 2
	}
	p.cache = make([]pslot, n)
	return p
}

// Domain returns the pool's backing domain (for gauges and reports).
func (p *Pool) Domain() Domain { return p.d }

// home returns this goroutine's preferred ring index.
func (p *Pool) home() int {
	var probe byte
	return int((uintptr(unsafe.Pointer(&probe)) >> 9) & uintptr(len(p.cache)-1))
}

// Get returns a guard owned exclusively by the caller until Put.
func (p *Pool) Get() Guard {
	if p.shared != nil {
		return p.shared
	}
	mask := len(p.cache) - 1
	for i, idx := 0, p.home(); i < len(p.cache); i++ {
		s := &p.cache[(idx+i)&mask]
		if s.mu.TryLock() {
			g := s.g
			s.g = nil
			s.mu.Unlock()
			if g != nil {
				return g
			}
		}
	}
	return p.d.NewGuard(p.slots)
}

// Put parks g for reuse. g must be outside any Enter/Exit section. When
// the ring is full the guard is released instead, keeping the domain's
// registration count bounded.
func (p *Pool) Put(g Guard) {
	if p.shared != nil {
		return
	}
	mask := len(p.cache) - 1
	for i, idx := 0, p.home(); i < len(p.cache); i++ {
		s := &p.cache[(idx+i)&mask]
		if s.mu.TryLock() {
			if s.g == nil {
				s.g = g
				s.mu.Unlock()
				return
			}
			s.mu.Unlock()
		}
	}
	g.Release()
}

// Drain releases every parked guard, handing their buffered retirements
// back to the domain as orphans, which subsequent retire traffic (or the
// backend's own drain) reclaims. Retired objects otherwise sit in the
// buffer of whichever parked guard retired them until that guard is
// reused, so a structure that must reach zero pending garbage at a
// quiescent point — teardown, a leak check — drains its pool first.
// Guards currently checked out are unaffected; the pool remains usable
// (Get simply registers fresh guards).
func (p *Pool) Drain() {
	if p.shared != nil {
		return
	}
	for i := range p.cache {
		s := &p.cache[i]
		s.mu.Lock()
		g := s.g
		s.g = nil
		s.mu.Unlock()
		if g != nil {
			g.Release()
		}
	}
}

// Recycler pools retired nodes of one concrete type for reuse, the
// allocation win deferred reclamation unlocks: a node handed to Retire is
// reset and returned to a sync.Pool once the guard's domain declares it
// unreachable, so the structure's next allocation reuses it instead of
// growing the heap. Reuse is safe exactly because the domain interposes —
// under the plain GC domain free callbacks never run, so recycling
// silently degrades to ordinary allocation (constructors gate the option
// on Domain.Deferred for this reason).
//
// A nil *Recycler is valid and allocates normally, which lets structures
// thread one field through both recycled and non-recycled configurations.
type Recycler[T any] struct {
	pool  sync.Pool
	reset func(*T)
	reuse atomic.Int64
}

// NewRecycler returns a recycler whose reset function restores a retired
// node to a publishable state (zero keys/values, nil atomic pointers).
// reset runs before the node re-enters the pool, on whichever goroutine's
// scan reclaimed it.
func NewRecycler[T any](reset func(*T)) *Recycler[T] {
	return &Recycler[T]{reset: reset}
}

// Get returns a zeroed-for-reuse node, recycled if one is available.
func (r *Recycler[T]) Get() *T {
	if r == nil {
		return new(T)
	}
	if n, ok := r.pool.Get().(*T); ok {
		r.reuse.Add(1)
		return n
	}
	return new(T)
}

// Put returns a node that was never published to the pool directly — the
// give-back path for nodes prepared but then eliminated or found
// duplicate. Published nodes must go through Retire instead.
func (r *Recycler[T]) Put(n *T) {
	if r == nil {
		return
	}
	r.reset(n)
	r.pool.Put(n)
}

// Reused returns how many allocations were served from the pool.
func (r *Recycler[T]) Reused() int64 {
	if r == nil {
		return 0
	}
	return r.reuse.Load()
}

// Retire retires n into g; once the domain declares it unreachable it is
// reset and pooled in r for reuse. With a nil recycler the node is simply
// dropped to the garbage collector when its time comes (the free callback
// still runs, so the domain's reclaimed/pending gauges stay live).
func Retire[T any](g Guard, r *Recycler[T], n *T) {
	if r == nil {
		g.Retire(n, func() {})
		return
	}
	g.Retire(n, func() {
		r.reset(n)
		r.pool.Put(n)
	})
}

// Load reads *src for dereferencing under g's hazard slot: it publishes
// the loaded pointer and re-reads src until both agree, the
// publish-and-revalidate dance that guarantees any concurrent retirement
// of the object happened after our publication (so the retirer's scan
// sees the slot). For non-publishing guards (EBR, GC) it is a plain load.
func Load[T any](g Guard, slot int, src *atomic.Pointer[T]) *T {
	p := src.Load()
	if !g.Protects() {
		return p
	}
	for {
		if p == nil {
			g.Protect(slot, nil)
			return nil
		}
		g.Protect(slot, p)
		q := src.Load()
		if q == p {
			return p
		}
		p = q
	}
}
