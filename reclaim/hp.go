package reclaim

import "github.com/cds-suite/cds/internal/hazard"

// HP is the hazard-pointer domain, backed by an internal/hazard.Domain.
// Guards publish each shared pointer in a slot before dereferencing it and
// revalidate the source (the Load helper packages the dance); Retire
// defers the free callback until a scan finds no slot naming the object.
//
// Compared with EBR the per-read cost is higher — a publication store plus
// a revalidating reload on every pointer — but pending garbage stays
// bounded even when readers stall: a stalled guard pins at most its own
// slots' objects, never the whole domain's retire stream.
type HP struct {
	d *hazard.Domain
}

// NewHP returns a fresh hazard-pointer domain.
func NewHP() *HP {
	return &HP{d: hazard.NewDomain()}
}

// SetScanThreshold overrides how many retirements a guard buffers before
// scanning (default 64). Tests use 1-4 to force reclamation inside tiny
// windows. Call before guards retire.
func (h *HP) SetScanThreshold(n int) { h.d.SetScanThreshold(n) }

// HazardDomain exposes the backing hazard domain (monitoring and tests).
func (h *HP) HazardDomain() *hazard.Domain { return h.d }

// NewGuard registers a handle with the given number of hazard slots.
func (h *HP) NewGuard(slots int) Guard {
	if slots < 1 {
		slots = 1
	}
	return &hpGuard{h: h.d.NewHandle(slots), slots: slots}
}

func (h *HP) Reclaimed() int64 { return h.d.Reclaimed() }
func (h *HP) Pending() int64   { return h.d.Pending() }
func (h *HP) Deferred() bool   { return true }
func (h *HP) Name() string     { return "hp" }

type hpGuard struct {
	h     *hazard.Handle
	slots int
}

func (g *hpGuard) Enter() {}

// Exit clears every slot so retired objects this guard was protecting
// become reclaimable by the next scan.
func (g *hpGuard) Exit() {
	for i := 0; i < g.slots; i++ {
		g.h.Slot(i).Clear()
	}
}

func (g *hpGuard) Protect(i int, ptr any) { g.h.Protect(i, ptr) }
func (g *hpGuard) Protects() bool         { return true }

func (g *hpGuard) Retire(ptr any, free func()) { g.h.Retire(ptr, free) }

func (g *hpGuard) Release() { g.h.Release() }
