// Package reclaim unifies the module's safe-memory-reclamation schemes —
// epoch-based reclamation (internal/epoch), hazard pointers
// (internal/hazard), and a zero-cost rely-on-the-GC noop — behind one
// small Domain/Guard interface that the lock-free structures accept via
// their WithReclaim constructor option.
//
// The survey treats reclamation as a core part of lock-free data structure
// design: an unlinked node may still be referenced by concurrent readers,
// so its memory can be recycled only once no reader can reach it. Go's
// garbage collector provides that guarantee for free, which is why the
// default domain is a noop — but running the real protocols against the
// real structures is what lets experiment F12 measure their read-side
// costs and garbage bounds, and it is what makes node *recycling* (a
// sync.Pool of retired nodes, see Recycler) safe: a pooled node is reused
// only after the domain declares it unreachable, restoring the
// never-reuse-while-referenced property the GC otherwise provides.
//
// The scheme trade-offs, as the survey frames them:
//
//   - EBR (Fraser): readers pin an epoch around whole operations; reads
//     inside the section cost nothing extra. Garbage is unbounded if a
//     reader stalls while pinned — one stuck goroutine halts all
//     reclamation in the domain.
//   - Hazard pointers (Michael): readers publish each pointer before
//     dereferencing it and revalidate the source. Every protected read
//     pays a store + fence + reload, but garbage is bounded even when
//     readers stall: a stalled thread pins at most its slots' objects.
//
// Guards are not goroutine-safe; obtain one per operation from a Pool
// (which amortises registration) and return it when done. Structures must
// never hold a guard section across a blocking wait — the dual structures
// exit their section before parking for exactly this reason.
//
// Progress guarantees: Enter/Exit/Protect are wait-free; Retire is
// wait-free with an amortised scan (HP) or drain (EBR) whose cost is
// bounded by the retired-list length. The consumers of this package are
// listed in ARCHITECTURE.md; experiment F12 and the S14 scenarios report
// each domain's reclaimed/pending gauges.
package reclaim
