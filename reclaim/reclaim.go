package reclaim

// A Domain owns reclamation state for one data structure (or a family
// sharing it): the set of guards, the retired-object lists, and the
// reclaimed/pending gauges the benchmark reports surface.
type Domain interface {
	// NewGuard registers a new guard with the domain, with capacity for
	// the given number of hazard slots (ignored by non-publishing
	// schemes). Most callers should use a Pool instead of calling this
	// per operation: registration takes a domain-wide lock.
	NewGuard(slots int) Guard
	// Reclaimed returns the number of retired objects whose free
	// callbacks have run.
	Reclaimed() int64
	// Pending returns the number of retired-but-not-yet-freed objects —
	// the "pending garbage" gauge of experiment F12. Always 0 for the GC
	// domain, which never defers anything.
	Pending() int64
	// Deferred reports whether Retire defers free callbacks until no
	// guard can reach the object (true for EBR and HP). The GC domain
	// returns false: its Retire simply drops the object for the garbage
	// collector, so free callbacks never run and node recycling is
	// impossible.
	Deferred() bool
	// Name labels the scheme in benchmark reports: "gc", "ebr", or "hp".
	Name() string
}

// A Guard is one goroutine's session with a Domain. Its methods are
// owner-only: a guard must not be shared between concurrently running
// operations (Pool enforces this).
type Guard interface {
	// Enter opens a read-side critical section. For EBR this pins the
	// current epoch; retired objects cannot be freed while any guard that
	// might have seen them is inside a section. Enter/Exit nest.
	Enter()
	// Exit closes the critical section and (for HP) clears every hazard
	// slot.
	Exit()
	// Protect publishes ptr in hazard slot i; nil clears the slot. Only
	// hazard-pointer guards act on it. Publication alone is not safety:
	// the caller must revalidate the source pointer still holds ptr
	// before dereferencing (see Load for the canonical dance).
	Protect(i int, ptr any)
	// Protects reports whether this guard requires the Protect +
	// revalidate protocol before dereferencing shared pointers (true only
	// for hazard-pointer guards). Structures use it to skip the
	// publication dance under EBR/GC.
	Protects() bool
	// Retire schedules free to run once no guard can reach ptr. Under HP,
	// ptr must be the identical pointer readers pass to Protect. The GC
	// guard drops the object without ever calling free.
	Retire(ptr any, free func())
	// Release unregisters the guard from its domain, handing any
	// unfreed retirements to the domain. The guard must not be used
	// afterwards.
	Release()
}

// NewGC returns the zero-cost noop domain: Enter/Exit/Protect do nothing
// and Retire drops the object for Go's garbage collector. It is the
// default every structure uses when no WithReclaim option is given.
func NewGC() Domain { return gcDomain{} }

type gcDomain struct{}

func (gcDomain) NewGuard(int) Guard { return gcGuard{} }
func (gcDomain) Reclaimed() int64   { return 0 }
func (gcDomain) Pending() int64     { return 0 }
func (gcDomain) Deferred() bool     { return false }
func (gcDomain) Name() string       { return "gc" }

type gcGuard struct{}

func (gcGuard) Enter()             {}
func (gcGuard) Exit()              {}
func (gcGuard) Protect(int, any)   {}
func (gcGuard) Protects() bool     { return false }
func (gcGuard) Retire(any, func()) {}
func (gcGuard) Release()           {}
