// Top-level testing.B benchmarks: one bench family per experiment in
// DESIGN.md, sized for `go test -bench`. These give quick single-machine
// numbers at GOMAXPROCS parallelism; the full thread sweeps behind each
// figure are produced by cmd/cdsbench (same workloads, same code paths via
// package bench).
package cds_test

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	cds "github.com/cds-suite/cds"
	"github.com/cds-suite/cds/barrier"
	"github.com/cds-suite/cds/bench"
	"github.com/cds-suite/cds/cmap"
	"github.com/cds-suite/cds/counter"
	"github.com/cds-suite/cds/deque"
	"github.com/cds-suite/cds/fc"
	"github.com/cds-suite/cds/internal/epoch"
	"github.com/cds-suite/cds/internal/hazard"
	"github.com/cds-suite/cds/internal/xrand"
	"github.com/cds-suite/cds/list"
	"github.com/cds-suite/cds/locks"
	"github.com/cds-suite/cds/pqueue"
	"github.com/cds-suite/cds/queue"
	"github.com/cds-suite/cds/skiplist"
	"github.com/cds-suite/cds/stack"
	"github.com/cds-suite/cds/stm"
)

// perG returns a per-goroutine PRNG for RunParallel bodies.
var benchSeed atomic.Uint64

func perG() *xrand.Rand {
	return xrand.New(benchSeed.Add(0x9e3779b97f4a7c15))
}

// BenchmarkF1Locks measures lock+increment+unlock under full contention.
func BenchmarkF1Locks(b *testing.B) {
	run := func(b *testing.B, factory func() sync.Locker) {
		shared := 0
		b.RunParallel(func(pb *testing.PB) {
			locker := factory()
			for pb.Next() {
				locker.Lock()
				shared++
				locker.Unlock()
			}
		})
	}
	b.Run("sync.Mutex", func(b *testing.B) {
		mu := &sync.Mutex{}
		run(b, func() sync.Locker { return mu })
	})
	b.Run("TAS", func(b *testing.B) {
		l := &locks.TASLock{}
		run(b, func() sync.Locker { return l })
	})
	b.Run("TTAS", func(b *testing.B) {
		l := &locks.TTASLock{}
		run(b, func() sync.Locker { return l })
	})
	b.Run("Backoff", func(b *testing.B) {
		l := &locks.BackoffLock{}
		run(b, func() sync.Locker { return l })
	})
	b.Run("Ticket", func(b *testing.B) {
		l := &locks.TicketLock{}
		run(b, func() sync.Locker { return l })
	})
	b.Run("MCS", func(b *testing.B) {
		l := &locks.MCSLock{}
		run(b, func() sync.Locker { return l.Locker() })
	})
	b.Run("CLH", func(b *testing.B) {
		l := &locks.CLHLock{}
		run(b, func() sync.Locker { return l.Locker() })
	})
}

// BenchmarkF2Counters measures pure increment throughput.
func BenchmarkF2Counters(b *testing.B) {
	b.Run("Locked", func(b *testing.B) {
		c := &counter.Locked{}
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Inc()
			}
		})
	})
	b.Run("Atomic", func(b *testing.B) {
		c := &counter.Atomic{}
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Inc()
			}
		})
	})
	b.Run("Sharded", func(b *testing.B) {
		c := counter.NewSharded(0)
		b.RunParallel(func(pb *testing.PB) {
			h := c.Handle()
			for pb.Next() {
				h.Inc()
			}
		})
	})
	b.Run("Approx", func(b *testing.B) {
		c := counter.NewApprox(0, 64)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Inc()
			}
		})
	})
	b.Run("CombiningTree", func(b *testing.B) {
		c := counter.NewCombiningTree(runtime.GOMAXPROCS(0))
		var slot atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			h := c.Handle(int(slot.Add(1)-1) % runtime.GOMAXPROCS(0))
			for pb.Next() {
				h.Inc()
			}
		})
	})
}

// BenchmarkF3Stacks measures 50/50 push-pop mixes.
func BenchmarkF3Stacks(b *testing.B) {
	impls := map[string]func() cds.Stack[int]{
		"Mutex":       func() cds.Stack[int] { return stack.NewMutex[int]() },
		"Treiber":     func() cds.Stack[int] { return stack.NewTreiber[int]() },
		"Elimination": func() cds.Stack[int] { return stack.NewElimination[int](0, 0) },
		"FC":          func() cds.Stack[int] { return fc.NewStack[int]() },
	}
	for _, name := range []string{"Mutex", "Treiber", "Elimination", "FC"} {
		mk := impls[name]
		b.Run(name, func(b *testing.B) {
			s := mk()
			for i := 0; i < 1024; i++ {
				s.Push(i)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := perG()
				for pb.Next() {
					if rng.Uint64()&1 == 0 {
						s.Push(7)
					} else {
						s.TryPop()
					}
				}
			})
		})
	}
}

// BenchmarkF4Queues measures 50/50 enqueue-dequeue mixes.
func BenchmarkF4Queues(b *testing.B) {
	impls := map[string]func() cds.Queue[int]{
		"Mutex":   func() cds.Queue[int] { return queue.NewMutex[int]() },
		"TwoLock": func() cds.Queue[int] { return queue.NewTwoLock[int]() },
		"MS":      func() cds.Queue[int] { return queue.NewMS[int]() },
		"FC":      func() cds.Queue[int] { return fc.NewQueue[int]() },
	}
	for _, name := range []string{"Mutex", "TwoLock", "MS", "FC"} {
		mk := impls[name]
		b.Run(name, func(b *testing.B) {
			q := mk()
			for i := 0; i < 1024; i++ {
				q.Enqueue(i)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := perG()
				for pb.Next() {
					if rng.Uint64()&1 == 0 {
						q.Enqueue(7)
					} else {
						q.TryDequeue()
					}
				}
			})
		})
	}
	b.Run("MPMC-64k", func(b *testing.B) {
		q := queue.NewMPMC[int](1 << 16)
		for i := 0; i < 1024; i++ {
			q.TryEnqueue(i)
		}
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			rng := perG()
			for pb.Next() {
				if rng.Uint64()&1 == 0 {
					q.TryEnqueue(7)
				} else {
					q.TryDequeue()
				}
			}
		})
	})
	b.Run("SPSC", func(b *testing.B) {
		// Single producer/consumer pair: the wait-free fast path.
		q := queue.NewSPSC[int](1 << 10)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < b.N; i++ {
				for !q.TryEnqueue(i) {
					runtime.Gosched()
				}
			}
		}()
		for i := 0; i < b.N; i++ {
			for {
				if _, ok := q.TryDequeue(); ok {
					break
				}
				runtime.Gosched()
			}
		}
		<-done
	})
}

// BenchmarkF5ListSets measures the synchronization progression at 90% reads.
func BenchmarkF5ListSets(b *testing.B) {
	impls := []struct {
		name string
		mk   func() cds.Set[int]
	}{
		{name: "Coarse", mk: func() cds.Set[int] { return list.NewCoarse[int]() }},
		{name: "Fine", mk: func() cds.Set[int] { return list.NewFine[int]() }},
		{name: "Optimistic", mk: func() cds.Set[int] { return list.NewOptimistic[int]() }},
		{name: "Lazy", mk: func() cds.Set[int] { return list.NewLazy[int]() }},
		{name: "Harris", mk: func() cds.Set[int] { return list.NewHarris[int]() }},
	}
	const keyRange = 1024
	for _, im := range impls {
		b.Run(im.name, func(b *testing.B) {
			s := im.mk()
			pre := xrand.New(99)
			for i := 0; i < keyRange/2; i++ {
				s.Add(pre.Intn(keyRange))
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := perG()
				for pb.Next() {
					k := rng.Intn(keyRange)
					r := rng.Uint64n(100)
					switch {
					case r < 90:
						s.Contains(k)
					case r < 95:
						s.Add(k)
					default:
						s.Remove(k)
					}
				}
			})
		})
	}
}

// BenchmarkF6Maps measures hash maps at 90% reads, uniform and Zipfian.
func BenchmarkF6Maps(b *testing.B) {
	impls := []struct {
		name string
		mk   func() cds.Map[int, int]
	}{
		{name: "Locked", mk: func() cds.Map[int, int] { return cmap.NewLocked[int, int]() }},
		{name: "Striped", mk: func() cds.Map[int, int] { return cmap.NewStriped[int, int](64) }},
		{name: "SplitOrdered", mk: func() cds.Map[int, int] { return cmap.NewSplitOrdered[int, int]() }},
	}
	const keyRange = 1 << 16
	for _, dist := range []struct {
		name  string
		theta float64
	}{{name: "uniform", theta: 0}, {name: "zipf", theta: 0.99}} {
		for _, im := range impls {
			b.Run(im.name+"/"+dist.name, func(b *testing.B) {
				m := im.mk()
				pre := xrand.New(7)
				for i := 0; i < keyRange/2; i++ {
					m.Store(pre.Intn(keyRange), i)
				}
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					rng := perG()
					keys := mustKeyStream(keyRange, dist.theta)
					for pb.Next() {
						k := int(keys.Next())
						r := rng.Uint64n(100)
						switch {
						case r < 90:
							m.Load(k)
						case r < 95:
							m.Store(k, 42)
						default:
							m.Delete(k)
						}
					}
				})
			})
		}
	}
}

// BenchmarkF7SkipLists measures skip lists at 90% reads.
func BenchmarkF7SkipLists(b *testing.B) {
	impls := []struct {
		name string
		mk   func() cds.Set[int]
	}{
		{name: "Lazy", mk: func() cds.Set[int] { return skiplist.NewLazy[int]() }},
		{name: "LockFree", mk: func() cds.Set[int] { return skiplist.NewLockFree[int]() }},
	}
	const keyRange = 1 << 16
	for _, im := range impls {
		b.Run(im.name, func(b *testing.B) {
			s := im.mk()
			pre := xrand.New(3)
			for i := 0; i < keyRange/2; i++ {
				s.Add(pre.Intn(keyRange))
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := perG()
				for pb.Next() {
					k := rng.Intn(keyRange)
					r := rng.Uint64n(100)
					switch {
					case r < 90:
						s.Contains(k)
					case r < 95:
						s.Add(k)
					default:
						s.Remove(k)
					}
				}
			})
		})
	}
}

// BenchmarkF8PriorityQueues measures 50/50 insert-deleteMin.
func BenchmarkF8PriorityQueues(b *testing.B) {
	impls := []struct {
		name string
		mk   func() cds.PriorityQueue[int]
	}{
		{name: "LockedHeap", mk: func() cds.PriorityQueue[int] {
			return pqueue.NewHeap[int](func(a, b int) bool { return a < b })
		}},
		{name: "SkipListPQ", mk: func() cds.PriorityQueue[int] { return pqueue.NewSkipList[int]() }},
	}
	for _, im := range impls {
		b.Run(im.name, func(b *testing.B) {
			pq := im.mk()
			pre := xrand.New(11)
			for i := 0; i < 4096; i++ {
				pq.Insert(pre.Intn(1 << 20))
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := perG()
				for pb.Next() {
					if rng.Uint64()&1 == 0 {
						pq.Insert(rng.Intn(1 << 20))
					} else {
						pq.TryDeleteMin()
					}
				}
			})
		})
	}
}

// BenchmarkF9Deque measures owner push/pop with GOMAXPROCS-1 stealers.
func BenchmarkF9Deque(b *testing.B) {
	impls := []struct {
		name string
		mk   func() cds.Deque[int]
	}{
		{name: "ChaseLev", mk: func() cds.Deque[int] { return deque.NewChaseLev[int](1024) }},
		{name: "MutexDeque", mk: func() cds.Deque[int] { return deque.NewMutex[int]() }},
	}
	for _, im := range impls {
		b.Run(im.name, func(b *testing.B) {
			d := im.mk()
			var stop atomic.Bool
			var wg sync.WaitGroup
			for t := 0; t < runtime.GOMAXPROCS(0)-1; t++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for !stop.Load() {
						d.TryPopTop()
					}
				}()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.PushBottom(i)
				d.TryPopBottom()
			}
			b.StopTimer()
			stop.Store(true)
			wg.Wait()
		})
	}
}

// BenchmarkF10Barriers measures one barrier episode across GOMAXPROCS
// parties (reported per-episode).
func BenchmarkF10Barriers(b *testing.B) {
	n := runtime.GOMAXPROCS(0)
	runBarrier := func(b *testing.B, handles []interface{ Wait() }) {
		var wg sync.WaitGroup
		b.ResetTimer()
		for p := 0; p < n; p++ {
			wg.Add(1)
			go func(h interface{ Wait() }) {
				defer wg.Done()
				for i := 0; i < b.N; i++ {
					h.Wait()
				}
			}(handles[p])
		}
		wg.Wait()
	}
	b.Run("Sense", func(b *testing.B) {
		bar := barrier.NewSense(n)
		hs := make([]interface{ Wait() }, n)
		for i := range hs {
			hs[i] = bar.Handle()
		}
		runBarrier(b, hs)
	})
	b.Run("Tree", func(b *testing.B) {
		bar := barrier.NewTree(n)
		hs := make([]interface{ Wait() }, n)
		for i := range hs {
			hs[i] = bar.Handle()
		}
		runBarrier(b, hs)
	})
	b.Run("Dissemination", func(b *testing.B) {
		bar := barrier.NewDissemination(n)
		hs := make([]interface{ Wait() }, n)
		for i := range hs {
			hs[i] = bar.Handle()
		}
		runBarrier(b, hs)
	})
}

// BenchmarkF11STM measures bank transfers against a global-lock baseline.
func BenchmarkF11STM(b *testing.B) {
	const accounts = 1 << 14
	b.Run("STM", func(b *testing.B) {
		vars := make([]*stm.TVar[int], accounts)
		for i := range vars {
			vars[i] = stm.NewTVar(1000)
		}
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			rng := perG()
			for pb.Next() {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if from == to {
					to = (to + 1) % accounts
				}
				stm.Atomically(func(tx *stm.Txn) {
					f := vars[from].Read(tx)
					vars[from].Write(tx, f-1)
					vars[to].Write(tx, vars[to].Read(tx)+1)
				})
			}
		})
	})
	b.Run("GlobalLock", func(b *testing.B) {
		balances := make([]int, accounts)
		var mu sync.Mutex
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			rng := perG()
			for pb.Next() {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if from == to {
					to = (to + 1) % accounts
				}
				mu.Lock()
				balances[from]--
				balances[to]++
				mu.Unlock()
			}
		})
	})
}

// BenchmarkF12Reclamation measures protected reads with 10% retire traffic.
func BenchmarkF12Reclamation(b *testing.B) {
	type node struct{ v int }
	b.Run("EBR", func(b *testing.B) {
		c := epoch.NewCollector()
		var shared atomic.Pointer[node]
		shared.Store(&node{})
		b.RunParallel(func(pb *testing.PB) {
			p := c.Register()
			rng := perG()
			for pb.Next() {
				if rng.Uint64n(10) == 0 {
					old := shared.Swap(&node{})
					p.Retire(func() { _ = old })
				} else {
					p.Pin()
					_ = shared.Load()
					p.Unpin()
				}
			}
		})
	})
	b.Run("HazardPtr", func(b *testing.B) {
		d := hazard.NewDomain()
		var shared atomic.Pointer[node]
		shared.Store(&node{})
		b.RunParallel(func(pb *testing.PB) {
			h := d.NewHandle(1)
			rng := perG()
			for pb.Next() {
				if rng.Uint64n(10) == 0 {
					old := shared.Swap(&node{})
					h.Retire(old, func() { _ = old })
				} else {
					hazard.Protect(h.Slot(0), &shared)
					h.Slot(0).Clear()
				}
			}
		})
	})
}

// BenchmarkT1SingleThread measures single-thread pair costs (push+pop,
// store+load) for the T1 overview table.
func BenchmarkT1SingleThread(b *testing.B) {
	b.Run("stack.Mutex", func(b *testing.B) {
		s := stack.NewMutex[int]()
		for i := 0; i < b.N; i++ {
			s.Push(i)
			s.TryPop()
		}
	})
	b.Run("stack.Treiber", func(b *testing.B) {
		s := stack.NewTreiber[int]()
		for i := 0; i < b.N; i++ {
			s.Push(i)
			s.TryPop()
		}
	})
	b.Run("queue.Mutex", func(b *testing.B) {
		q := queue.NewMutex[int]()
		for i := 0; i < b.N; i++ {
			q.Enqueue(i)
			q.TryDequeue()
		}
	})
	b.Run("queue.MS", func(b *testing.B) {
		q := queue.NewMS[int]()
		for i := 0; i < b.N; i++ {
			q.Enqueue(i)
			q.TryDequeue()
		}
	})
	b.Run("queue.SPSC", func(b *testing.B) {
		q := queue.NewSPSC[int](1024)
		for i := 0; i < b.N; i++ {
			q.TryEnqueue(i)
			q.TryDequeue()
		}
	})
	b.Run("cmap.Locked", func(b *testing.B) {
		m := cmap.NewLocked[int, int]()
		for i := 0; i < b.N; i++ {
			m.Store(i&1023, i)
			m.Load(i & 1023)
		}
	})
	b.Run("cmap.Striped", func(b *testing.B) {
		m := cmap.NewStriped[int, int](64)
		for i := 0; i < b.N; i++ {
			m.Store(i&1023, i)
			m.Load(i & 1023)
		}
	})
	b.Run("cmap.SplitOrdered", func(b *testing.B) {
		m := cmap.NewSplitOrdered[int, int]()
		for i := 0; i < b.N; i++ {
			m.Store(i&1023, i)
			m.Load(i & 1023)
		}
	})
	b.Run("skiplist.Lazy", func(b *testing.B) {
		s := skiplist.NewLazy[int]()
		for i := 0; i < b.N; i++ {
			s.Add(i & 4095)
			s.Contains(i & 4095)
		}
	})
	b.Run("skiplist.LockFree", func(b *testing.B) {
		s := skiplist.NewLockFree[int]()
		for i := 0; i < b.N; i++ {
			s.Add(i & 4095)
			s.Contains(i & 4095)
		}
	})
}

// BenchmarkT2Skew measures the striped map under increasing Zipf skew.
func BenchmarkT2Skew(b *testing.B) {
	const keyRange = 1 << 16
	for _, theta := range []float64{0, 0.9} {
		name := "uniform"
		if theta > 0 {
			name = "zipf0.9"
		}
		b.Run("Striped/"+name, func(b *testing.B) {
			m := cmap.NewStriped[int, int](64)
			pre := xrand.New(7)
			for i := 0; i < keyRange/2; i++ {
				m.Store(pre.Intn(keyRange), i)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				keys := mustKeyStream(keyRange, theta)
				rng := perG()
				for pb.Next() {
					k := int(keys.Next())
					if rng.Uint64()&1 == 0 {
						m.Load(k)
					} else {
						m.Store(k, 1)
					}
				}
			})
		})
	}
}

// BenchmarkT3Elimination reports elimination visits via the stats hook (the
// rate itself is printed by cmd/cdsbench -experiment T3).
func BenchmarkT3Elimination(b *testing.B) {
	s := stack.NewElimination[int](0, 0)
	s.EnableStats(true)
	b.RunParallel(func(pb *testing.PB) {
		rng := perG()
		for pb.Next() {
			if rng.Uint64()&1 == 0 {
				s.Push(1)
			} else {
				s.TryPop()
			}
		}
	})
	hits, misses := s.Stats()
	if hits+misses > 0 {
		b.ReportMetric(100*float64(hits)/float64(hits+misses), "elim-hit-%")
	}
}

func mustKeyStream(keyRange int, theta float64) *bench.KeyStream {
	ks, err := bench.NewKeyStream(uint64(keyRange), theta, benchSeed.Add(1))
	if err != nil {
		panic(err)
	}
	return ks
}
