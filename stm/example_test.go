package stm_test

import (
	"fmt"
	"sync"

	"github.com/cds-suite/cds/stm"
)

// Atomically composes reads and writes over any number of TVars into one
// atomic transaction — the composability that individual concurrent
// structures cannot offer.
func ExampleAtomically() {
	checking := stm.NewTVar(100)
	savings := stm.NewTVar(0)

	var wg sync.WaitGroup
	for i := 0; i < 10; i++ { // ten concurrent 10-unit transfers
		wg.Add(1)
		go func() {
			defer wg.Done()
			stm.Atomically(func(tx *stm.Txn) {
				c := checking.Read(tx)
				if c < 10 {
					return
				}
				checking.Write(tx, c-10)
				savings.Write(tx, savings.Read(tx)+10)
			})
		}()
	}
	wg.Wait()

	fmt.Println(checking.Load(), savings.Load(), checking.Load()+savings.Load())
	// Output: 0 100 100
}

// Read-your-writes within a transaction.
func ExampleTVar_Read() {
	v := stm.NewTVar("initial")
	stm.Atomically(func(tx *stm.Txn) {
		v.Write(tx, "updated")
		fmt.Println(v.Read(tx)) // sees the pending write
	})
	fmt.Println(v.Load())
	// Output:
	// updated
	// updated
}
