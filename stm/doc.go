// Package stm implements a word-based software transactional memory in the
// style of TL2 (Dice, Shalev & Shavit, DISC 2006): a global version clock,
// per-variable versioned write-locks, invisible readers with commit-time
// write-back, and NO_WAIT conflict resolution.
//
// Transactional memory is the survey's answer to the composability problem:
// operations on any number of TVars become atomic together, without a
// global lock and without designing a bespoke concurrent structure. The
// price is speculative execution — conflicting transactions abort and
// retry — which experiment F11 quantifies against a coarse lock.
//
// # Usage
//
//	x := stm.NewTVar(0)
//	y := stm.NewTVar(0)
//	stm.Atomically(func(tx *stm.Txn) {
//		v := x.Read(tx)
//		y.Write(tx, v+1)
//	})
//
// The closure may run several times (aborted attempts); it must be pure
// apart from TVar reads and writes. Reads observe a consistent snapshot as
// of transaction start: the classic TL2 guarantee that no zombie
// transaction ever sees a half-committed state.
//
// Progress guarantees: obstruction-free in spirit but effectively
// blocking — commit takes the write-set locks in address order, and a
// transaction that loses a version race aborts and retries with
// contend.Backoff. Committed transactions are strictly serializable
// (linearizable at commit), which the lost-update and torn-snapshot
// lincheck tests pin down.
package stm
