package stm

import (
	"runtime"
	"sync"
	"testing"

	"github.com/cds-suite/cds/internal/xrand"
)

func TestSingleVarReadWrite(t *testing.T) {
	x := NewTVar(10)
	Atomically(func(tx *Txn) {
		if got := x.Read(tx); got != 10 {
			t.Errorf("Read = %d, want 10", got)
		}
		x.Write(tx, 20)
		if got := x.Read(tx); got != 20 {
			t.Errorf("read-your-writes = %d, want 20", got)
		}
	})
	if got := x.Load(); got != 20 {
		t.Fatalf("Load = %d, want 20", got)
	}
}

func TestMultiVarAtomicity(t *testing.T) {
	x := NewTVar(5)
	y := NewTVar(7)
	Atomically(func(tx *Txn) {
		xv, yv := x.Read(tx), y.Read(tx)
		x.Write(tx, yv)
		y.Write(tx, xv)
	})
	if x.Load() != 7 || y.Load() != 5 {
		t.Fatalf("swap failed: x=%d y=%d", x.Load(), y.Load())
	}
}

func TestConcurrentIncrements(t *testing.T) {
	x := NewTVar(0)
	workers := 2 * runtime.GOMAXPROCS(0)
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				Atomically(func(tx *Txn) {
					x.Write(tx, x.Read(tx)+1)
				})
			}
		}()
	}
	wg.Wait()
	if got, want := x.Load(), workers*perWorker; got != want {
		t.Fatalf("count = %d, want %d (lost updates)", got, want)
	}
}

// TestTransferConservation is the canonical STM test: concurrent transfers
// between accounts must conserve the total at every instant.
func TestTransferConservation(t *testing.T) {
	const accounts = 64
	const initial = 1000
	vars := make([]*TVar[int], accounts)
	for i := range vars {
		vars[i] = NewTVar(initial)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Auditors: snapshot the total transactionally; it must always be
	// exactly accounts × initial (snapshot consistency).
	auditors := 2
	for a := 0; a < auditors; a++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				total := 0
				Atomically(func(tx *Txn) {
					total = 0
					for _, v := range vars {
						total += v.Read(tx)
					}
				})
				if total != accounts*initial {
					t.Errorf("audit saw total %d, want %d", total, accounts*initial)
					return
				}
			}
		}()
	}

	// Transferrers.
	workers := runtime.GOMAXPROCS(0)
	var twg sync.WaitGroup
	for w := 0; w < workers; w++ {
		twg.Add(1)
		go func(w int) {
			defer twg.Done()
			rng := xrand.New(uint64(w) + 1)
			for i := 0; i < 5000; i++ {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if from == to {
					continue
				}
				amount := rng.Intn(50)
				Atomically(func(tx *Txn) {
					f := vars[from].Read(tx)
					if f < amount {
						return // insufficient funds; commit no writes
					}
					vars[from].Write(tx, f-amount)
					vars[to].Write(tx, vars[to].Read(tx)+amount)
				})
			}
		}(w)
	}
	twg.Wait()
	close(stop)
	wg.Wait()

	total := 0
	for _, v := range vars {
		total += v.Load()
	}
	if total != accounts*initial {
		t.Fatalf("final total %d, want %d", total, accounts*initial)
	}
}

func TestSnapshotConsistencyInvariantPair(t *testing.T) {
	// Writers keep y == 2x; readers must never observe anything else.
	x := NewTVar(1)
	y := NewTVar(2)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	readers := max(2, runtime.GOMAXPROCS(0)-1)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var a, b int
				Atomically(func(tx *Txn) {
					a = x.Read(tx)
					b = y.Read(tx)
				})
				if b != 2*a {
					t.Errorf("zombie read: x=%d y=%d", a, b)
					return
				}
			}
		}()
	}
	for i := 2; i < 5000; i++ {
		Atomically(func(tx *Txn) {
			x.Write(tx, i)
			y.Write(tx, 2*i)
		})
	}
	close(stop)
	wg.Wait()
}

func TestRetryAborts(t *testing.T) {
	// Retry must rerun the closure until the condition holds.
	flag := NewTVar(false)
	ran := make(chan struct{})
	go func() {
		close(ran)
		Atomically(func(tx *Txn) {
			if !flag.Read(tx) {
				Retry()
			}
		})
	}()
	<-ran
	Atomically(func(tx *Txn) { flag.Write(tx, true) })
	// The waiter finishing is the assertion (test would hang otherwise —
	// bounded by the test timeout).
}

func TestUserPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	x := NewTVar(0)
	Atomically(func(tx *Txn) {
		x.Read(tx)
		panic("boom")
	})
}

func TestWriteOnlyTransaction(t *testing.T) {
	x := NewTVar("old")
	Atomically(func(tx *Txn) {
		x.Write(tx, "new")
	})
	if got := x.Load(); got != "new" {
		t.Fatalf("Load = %q, want new", got)
	}
}

func TestLoadDuringHeavyCommits(t *testing.T) {
	x := NewTVar(0)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			Atomically(func(tx *Txn) { x.Write(tx, i*2) }) // always even
		}
	}()
	for i := 0; i < 100000; i++ {
		if v := x.Load(); v%2 != 0 {
			t.Fatalf("Load saw odd value %d (torn commit)", v)
		}
	}
	close(stop)
	wg.Wait()
}

func TestStructValues(t *testing.T) {
	type point struct{ X, Y int }
	p := NewTVar(point{1, 2})
	Atomically(func(tx *Txn) {
		cur := p.Read(tx)
		cur.X += 10
		p.Write(tx, cur)
	})
	if got := p.Load(); got != (point{11, 2}) {
		t.Fatalf("Load = %+v", got)
	}
}
