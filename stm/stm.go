package stm

import (
	"runtime"
	"sync/atomic"

	"github.com/cds-suite/cds/contend"
)

// clock is the global version clock shared by all TVars. A single program-
// wide clock is the standard TL2 design: it is only a monotonic source of
// versions, so sharing it across unrelated TVars affects freshness
// bookkeeping, never correctness.
var clock atomic.Uint64

// conflict is the private panic payload that aborts an attempt.
type conflict struct{}

// TVar is a transactional variable holding a value of type T.
//
// The versioned lock word encodes (version << 1) | lockedBit. Values are
// boxed so that commit write-back is a single atomic pointer store and
// optimistic readers can never observe a torn value.
type TVar[T any] struct {
	lock atomic.Uint64
	val  atomic.Pointer[T]
}

// NewTVar returns a TVar initialised to v.
func NewTVar[T any](v T) *TVar[T] {
	t := &TVar[T]{}
	t.val.Store(&v)
	return t
}

// Read returns the variable's value within the transaction. If the
// transaction wrote the variable earlier, the pending value is returned
// (read-your-writes). A conflicting concurrent commit aborts the attempt.
func (v *TVar[T]) Read(tx *Txn) T {
	if pending, ok := tx.writes[v]; ok {
		return *pending.(*T)
	}
	for {
		l1 := v.lock.Load()
		if l1&1 == 1 {
			abort() // locked by a committing writer
		}
		val := v.val.Load()
		l2 := v.lock.Load()
		if l1 != l2 {
			continue // version moved mid-read; re-sample
		}
		if l1>>1 > tx.rv {
			abort() // newer than our snapshot: not consistent with rv
		}
		tx.recordRead(&v.lock)
		return *val
	}
}

// Write records v's new value in the transaction; it takes effect only if
// the transaction commits.
func (v *TVar[T]) Write(tx *Txn, val T) {
	if _, seen := tx.writes[v]; !seen {
		tx.order = append(tx.order, v)
	}
	tx.writes[v] = &val
}

// Load reads the variable outside any transaction: a consistent,
// linearizable single-variable read.
func (v *TVar[T]) Load() T {
	spins := 0
	for {
		l1 := v.lock.Load()
		if l1&1 == 1 {
			// Mid-commit; the owner is a few instructions from releasing.
			spins++
			if spins%256 == 0 {
				runtime.Gosched()
			}
			continue
		}
		val := v.val.Load()
		if v.lock.Load() == l1 {
			return *val
		}
	}
}

// tvar is the type-erased view of a TVar used by the commit machinery.
type tvar interface {
	lockWord() *atomic.Uint64
	commit(boxed any)
}

func (v *TVar[T]) lockWord() *atomic.Uint64 { return &v.lock }

func (v *TVar[T]) commit(boxed any) { v.val.Store(boxed.(*T)) }

// Txn is one transaction attempt. It is created by Atomically and must not
// escape the closure or be shared between goroutines.
type Txn struct {
	rv    uint64 // read version: global clock at attempt start
	reads []*atomic.Uint64
	// readSet mirrors reads for O(1) dedupe once the read set outgrows
	// the linear-scan threshold; nil below it (small transactions stay
	// allocation-free).
	readSet map[*atomic.Uint64]struct{}
	writes  map[tvar]any
	order   []tvar // write set in first-write order (stable locking)
}

// readSetScanMax is the read-set size up to which duplicate detection
// uses a newest-first linear scan; beyond it recordRead switches to a
// map so transactions over many distinct TVars stay O(1) per read.
const readSetScanMax = 32

// recordRead adds a lock word to the read set once. Re-reads of a TVar
// the transaction has already recorded are skipped — without the dedupe a
// loop re-reading one variable grows the read set unboundedly and commit
// Phase 3 re-validates every duplicate. Small read sets dedupe with a
// newest-first scan (the common tight-loop-over-one-TVar case exits on
// the first probe, and no map is allocated); large ones switch to a map
// so D distinct reads cost O(D), not O(D²).
func (tx *Txn) recordRead(w *atomic.Uint64) {
	if tx.readSet != nil {
		if _, seen := tx.readSet[w]; seen {
			return
		}
		tx.readSet[w] = struct{}{}
		tx.reads = append(tx.reads, w)
		return
	}
	for i := len(tx.reads) - 1; i >= 0; i-- {
		if tx.reads[i] == w {
			return
		}
	}
	tx.reads = append(tx.reads, w)
	if len(tx.reads) > readSetScanMax {
		tx.readSet = make(map[*atomic.Uint64]struct{}, 2*readSetScanMax)
		for _, r := range tx.reads {
			tx.readSet[r] = struct{}{}
		}
	}
}

// abort unwinds the attempt; Atomically catches it and retries.
func abort() {
	panic(conflict{})
}

// Retry aborts the current attempt unconditionally. Combined with a
// condition check it expresses "block until", TL2-style busy retry:
//
//	stm.Atomically(func(tx *stm.Txn) {
//		if q.len.Read(tx) == 0 {
//			stm.Retry()
//		}
//		...
//	})
func Retry() {
	abort()
}

// Atomically runs fn transactionally: all TVar reads see a consistent
// snapshot and all writes commit atomically, or the attempt aborts and fn
// reruns. Do not nest Atomically calls.
func Atomically(fn func(tx *Txn)) {
	var b contend.Backoff
	for {
		if runAttempt(fn) {
			return
		}
		b.Pause()
	}
}

// runAttempt executes fn once, returning true on commit.
func runAttempt(fn func(tx *Txn)) (committed bool) {
	tx := &Txn{
		rv:     clock.Load(),
		writes: make(map[tvar]any),
	}
	defer func() {
		if r := recover(); r != nil {
			if _, isConflict := r.(conflict); isConflict {
				return // committed stays false: retry
			}
			panic(r) // user panic: propagate
		}
	}()
	fn(tx)
	return tx.commitAttempt()
}

// commitAttempt performs the TL2 commit protocol. It returns true on
// success; on conflict it releases any acquired locks and returns false.
func (tx *Txn) commitAttempt() bool {
	if len(tx.order) == 0 {
		// Read-only transactions need no validation beyond the per-read
		// checks already done against rv.
		return true
	}

	// Phase 1: lock the write set (NO_WAIT: any contention aborts).
	lockedThrough := -1
	for i, v := range tx.order {
		w := v.lockWord()
		cur := w.Load()
		if cur&1 == 1 || cur>>1 > tx.rv || !w.CompareAndSwap(cur, cur|1) {
			tx.releaseLocks(lockedThrough, 0)
			return false
		}
		lockedThrough = i
	}

	// Phase 2: increment the global clock.
	wv := clock.Add(1)

	// Phase 3: validate the read set (skippable iff rv+1 == wv: nothing
	// committed since our snapshot).
	if wv != tx.rv+1 {
		for _, r := range tx.reads {
			cur := r.Load()
			if cur>>1 > tx.rv || (cur&1 == 1 && !tx.ownsLock(r)) {
				tx.releaseLocks(lockedThrough, 0)
				return false
			}
		}
	}

	// Phase 4: write back and release with the new version.
	for _, v := range tx.order {
		v.commit(tx.writes[v])
	}
	tx.releaseLocks(lockedThrough, wv)
	return true
}

// ownsLock reports whether the lock word belongs to the write set.
func (tx *Txn) ownsLock(w *atomic.Uint64) bool {
	for _, v := range tx.order {
		if v.lockWord() == w {
			return true
		}
	}
	return false
}

// releaseLocks unlocks write-set entries [0, through]. With wv == 0 the
// old version is restored (abort); otherwise the word becomes wv<<1
// (commit release).
func (tx *Txn) releaseLocks(through int, wv uint64) {
	for i := 0; i <= through; i++ {
		w := tx.order[i].lockWord()
		if wv == 0 {
			w.Store(w.Load() &^ 1)
		} else {
			w.Store(wv << 1)
		}
	}
}
