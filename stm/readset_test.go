package stm

import "testing"

// TestReadSetDeduped is the regression test for unbounded read-set growth:
// re-reading the same TVar in a loop must record its lock word once, not
// once per read (the duplicates were all re-validated in commit Phase 3).
func TestReadSetDeduped(t *testing.T) {
	v := NewTVar(1)
	w := NewTVar(2)
	Atomically(func(tx *Txn) {
		for i := 0; i < 1000; i++ {
			v.Read(tx)
		}
		if got := len(tx.reads); got != 1 {
			t.Fatalf("read set after 1000 re-reads of one TVar: len = %d, want 1", got)
		}
		// Interleaved re-reads of two TVars still record each once.
		for i := 0; i < 100; i++ {
			v.Read(tx)
			w.Read(tx)
		}
		if got := len(tx.reads); got != 2 {
			t.Fatalf("read set over two TVars: len = %d, want 2", got)
		}
	})
}

// TestReadSetDedupeLargeTransactions: past the linear-scan threshold the
// dedupe switches to the map path; distinct TVars must each still be
// recorded exactly once, and re-reads must still collapse.
func TestReadSetDedupeLargeTransactions(t *testing.T) {
	const n = 4 * readSetScanMax
	vars := make([]*TVar[int], n)
	for i := range vars {
		vars[i] = NewTVar(i)
	}
	Atomically(func(tx *Txn) {
		for pass := 0; pass < 3; pass++ {
			for _, v := range vars {
				v.Read(tx)
			}
		}
		if got := len(tx.reads); got != n {
			t.Fatalf("read set over %d distinct TVars read 3x: len = %d, want %d", n, got, n)
		}
		if tx.readSet == nil || len(tx.readSet) != n {
			t.Fatalf("map path not engaged: readSet len = %d, want %d", len(tx.readSet), n)
		}
	})
}

// TestReadSetDedupeKeepsValidation: the deduped entry still carries its
// weight in commit Phase 3 — a concurrent commit to a re-read TVar after
// our snapshot must fail the attempt, exactly as before the dedupe.
func TestReadSetDedupeKeepsValidation(t *testing.T) {
	v := NewTVar(0)
	out := NewTVar(0)

	committed := runAttempt(func(tx *Txn) {
		for i := 0; i < 10; i++ {
			v.Read(tx) // one deduped read-set entry for v
		}
		out.Write(tx, 1) // non-empty write set forces Phase 3
		// A full commit to v lands between our snapshot and our commit.
		done := make(chan struct{})
		go func() {
			defer close(done)
			Atomically(func(tx2 *Txn) {
				v.Write(tx2, v.Read(tx2)+1)
			})
		}()
		<-done
	})
	if committed {
		t.Fatal("attempt committed despite a conflicting commit on a re-read TVar")
	}

	// And with no conflict the same shape still commits.
	if !runAttempt(func(tx *Txn) {
		for i := 0; i < 10; i++ {
			v.Read(tx)
		}
		out.Write(tx, 2)
	}) {
		t.Fatal("conflict-free attempt failed to commit")
	}
	if got := out.Load(); got != 2 {
		t.Fatalf("out = %d, want 2", got)
	}
}
