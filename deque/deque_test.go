package deque

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	cds "github.com/cds-suite/cds"
	"github.com/cds-suite/cds/contend"
)

func implementations() map[string]func() cds.Deque[int] {
	return map[string]func() cds.Deque[int]{
		"Mutex":        func() cds.Deque[int] { return NewMutex[int]() },
		"ChaseLev":     func() cds.Deque[int] { return NewChaseLev[int](8) },
		"FC":           func() cds.Deque[int] { return NewFC[int]() },
		"FC/CC-Synch":  func() cds.Deque[int] { return NewFC[int](WithBackend(contend.BackendCCSynch)) },
		"FC/DSM-Synch": func() cds.Deque[int] { return NewFC[int](WithBackend(contend.BackendDSMSynch)) },
	}
}

func TestSequentialOwnerLIFO(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			d := mk()
			if _, ok := d.TryPopBottom(); ok {
				t.Fatal("TryPopBottom on empty deque reported ok")
			}
			if _, ok := d.TryPopTop(); ok {
				t.Fatal("TryPopTop on empty deque reported ok")
			}
			for i := 0; i < 100; i++ {
				d.PushBottom(i)
			}
			if got := d.Len(); got != 100 {
				t.Fatalf("Len = %d, want 100", got)
			}
			// Owner end behaves LIFO.
			for i := 99; i >= 50; i-- {
				v, ok := d.TryPopBottom()
				if !ok || v != i {
					t.Fatalf("TryPopBottom = (%d, %v), want (%d, true)", v, ok, i)
				}
			}
			// Steal end behaves FIFO.
			for i := 0; i < 50; i++ {
				v, ok := d.TryPopTop()
				if !ok || v != i {
					t.Fatalf("TryPopTop = (%d, %v), want (%d, true)", v, ok, i)
				}
			}
			if got := d.Len(); got != 0 {
				t.Fatalf("Len after drain = %d, want 0", got)
			}
		})
	}
}

func TestGrowthPreservesContents(t *testing.T) {
	d := NewChaseLev[int](8)
	const n = 10000 // forces many doublings
	for i := 0; i < n; i++ {
		d.PushBottom(i)
	}
	for i := 0; i < n; i++ {
		v, ok := d.TryPopTop()
		if !ok || v != i {
			t.Fatalf("TryPopTop = (%d, %v), want (%d, true)", v, ok, i)
		}
	}
}

func TestPropertyMatchesModelDeque(t *testing.T) {
	// Sequential mixed ops against a slice model. op >= 0: push;
	// op%3==0: pop bottom; else pop top.
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			f := func(ops []int16) bool {
				d := mk()
				var model []int16
				for _, op := range ops {
					switch {
					case op >= 0:
						d.PushBottom(op2int(op))
						model = append(model, op)
					case op%3 == 0:
						v, ok := d.TryPopBottom()
						if len(model) == 0 {
							if ok {
								return false
							}
							continue
						}
						want := model[len(model)-1]
						model = model[:len(model)-1]
						if !ok || v != op2int(want) {
							return false
						}
					default:
						v, ok := d.TryPopTop()
						if len(model) == 0 {
							if ok {
								return false
							}
							continue
						}
						want := model[0]
						model = model[1:]
						if !ok || v != op2int(want) {
							return false
						}
					}
				}
				return d.Len() == len(model)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func op2int(v int16) int { return int(v) }

// TestStealConservation runs one owner doing push/pop cycles against many
// thieves; every pushed value must be consumed exactly once, either by the
// owner or by a thief.
func TestStealConservation(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			d := mk()
			thieves := runtime.GOMAXPROCS(0)
			const total = 200000

			var (
				consumed  atomic.Int64
				seenMu    sync.Mutex
				seenTwice []int
			)
			seen := make([]atomic.Bool, total)
			record := func(v int) {
				if seen[v].Swap(true) {
					seenMu.Lock()
					seenTwice = append(seenTwice, v)
					seenMu.Unlock()
				}
				consumed.Add(1)
			}

			var wg sync.WaitGroup
			stop := make(chan struct{})
			for th := 0; th < thieves; th++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						if v, ok := d.TryPopTop(); ok {
							record(v)
							continue
						}
						select {
						case <-stop:
							return
						default:
						}
					}
				}()
			}

			// Owner: push bursts, pop some locally.
			next := 0
			for next < total {
				burst := 100
				if next+burst > total {
					burst = total - next
				}
				for i := 0; i < burst; i++ {
					d.PushBottom(next)
					next++
				}
				for i := 0; i < burst/2; i++ {
					if v, ok := d.TryPopBottom(); ok {
						record(v)
					}
				}
			}
			// Owner drains the rest together with thieves.
			for consumed.Load() < total {
				if v, ok := d.TryPopBottom(); ok {
					record(v)
				}
			}
			close(stop)
			wg.Wait()

			if len(seenTwice) > 0 {
				t.Fatalf("values consumed twice: %v (first few)", seenTwice[:min(5, len(seenTwice))])
			}
			for v := range seen {
				if !seen[v].Load() {
					t.Fatalf("value %d never consumed", v)
				}
			}
			if got := d.Len(); got != 0 {
				t.Fatalf("deque not empty: Len = %d", got)
			}
		})
	}
}

// TestLastElementRace hammers the single-element case where the owner and
// thieves race via the top CAS.
func TestLastElementRace(t *testing.T) {
	d := NewChaseLev[int](8)
	thieves := max(2, runtime.GOMAXPROCS(0)/2)
	const rounds = 50000

	var consumed atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for th := 0; th < thieves; th++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, ok := d.TryPopTop(); ok {
					consumed.Add(1)
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}

	ownerGot := int64(0)
	for i := 0; i < rounds; i++ {
		d.PushBottom(i)
		if _, ok := d.TryPopBottom(); ok {
			ownerGot++
		}
	}
	// Whatever the owner did not get must eventually be stolen.
	for consumed.Load() < int64(rounds)-ownerGot {
		runtime.Gosched()
	}
	close(stop)
	wg.Wait()
	if got := consumed.Load() + ownerGot; got != rounds {
		t.Fatalf("consumed %d elements, want %d", got, rounds)
	}
	if d.Len() != 0 {
		t.Fatalf("deque not empty: Len = %d", d.Len())
	}
}
