package deque

import (
	"sync"

	cds "github.com/cds-suite/cds"
)

// Compile-time interface compliance checks.
var (
	_ cds.Deque[int] = (*Mutex[int])(nil)
	_ cds.Deque[int] = (*ChaseLev[int])(nil)
)

// Mutex is a coarse-locked deque baseline.
//
// The zero value is an empty deque. Progress: blocking.
type Mutex[T any] struct {
	mu    sync.Mutex
	items []T
}

// NewMutex returns an empty coarse-locked deque.
func NewMutex[T any]() *Mutex[T] {
	return &Mutex[T]{}
}

// PushBottom adds v at the bottom (owner end).
func (d *Mutex[T]) PushBottom(v T) {
	d.mu.Lock()
	d.items = append(d.items, v)
	d.mu.Unlock()
}

// TryPopBottom removes from the bottom (owner end).
func (d *Mutex[T]) TryPopBottom() (v T, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return v, false
	}
	v = d.items[len(d.items)-1]
	var zero T
	d.items[len(d.items)-1] = zero
	d.items = d.items[:len(d.items)-1]
	return v, true
}

// TryPopTop removes from the top (steal end).
func (d *Mutex[T]) TryPopTop() (v T, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return v, false
	}
	v = d.items[0]
	var zero T
	d.items[0] = zero // release reference for the GC
	d.items = d.items[1:]
	return v, true
}

// Len reports the number of elements.
func (d *Mutex[T]) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.items)
}
