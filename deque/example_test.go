package deque_test

import (
	"fmt"

	"github.com/cds-suite/cds/deque"
)

// The owner works LIFO at the bottom; thieves steal FIFO from the top.
func ExampleChaseLev() {
	d := deque.NewChaseLev[string](8)

	// Owner enqueues local work.
	d.PushBottom("old-task")
	d.PushBottom("new-task")

	// Owner pops its freshest task (cache-warm).
	own, _ := d.TryPopBottom()
	// A thief steals the oldest task.
	stolen, _ := d.TryPopTop()

	fmt.Println(own, stolen)
	// Output: new-task old-task
}
