// Package deque implements double-ended queues: the Chase–Lev dynamic
// circular work-stealing deque (SPAA 2005), a mutex-guarded baseline, and
// a flat-combining deque (FC) with no owner restriction, built on the
// shared combining core in package contend.
//
// Work stealing is the survey's flagship application of relaxed structure
// semantics: the owner pushes and pops tasks at the bottom with plain loads
// and stores (no CAS on the fast path), while thieves steal from the top
// with a CAS. Only the race for the last element needs full
// synchronization. Experiment F9 regenerates the owner-vs-thief cost
// curves, and the scheduler example runs the deque in its native habitat.
//
// Progress guarantees: ChaseLev's owner operations are wait-free except
// for the last-element race; TryPopTop is lock-free among thieves. Mutex
// is blocking; FC is blocking in the combining sense (one thread applies a
// batch while the rest wait on their publication records, which under
// contention beats everyone fighting for the two ends). ChaseLev restricts
// PushBottom/TryPopBottom to the owner goroutine — the relaxed contract
// that buys its fast path — while Mutex and FC are symmetric.
package deque
