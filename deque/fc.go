package deque

import (
	cds "github.com/cds-suite/cds"
	"github.com/cds-suite/cds/contend"
)

var _ cds.Deque[int] = (*FC[int])(nil)

// FC is a flat-combining deque: a plain sequential slice deque made
// concurrent through contend.Combiner. Unlike Chase-Lev it has no owner
// restriction — any goroutine may push or pop at either end — which makes
// it the symmetric-deque baseline the work-stealing design is traded
// against: Chase-Lev buys an uncontended owner fast path by restricting
// who may touch the bottom, the flat-combining deque keeps full generality
// and batches all ends through one combiner.
//
// Progress: blocking in the small (a stalled combiner delays its batch) but
// the combiner role is claimed by CAS and held only for a bounded batch.
type FC[T any] struct {
	c *contend.Combiner[*seqDeque[T]]
}

type seqDeque[T any] struct {
	items []T
}

// NewFC returns an empty flat-combining deque.
func NewFC[T any]() *FC[T] {
	return &FC[T]{c: contend.NewCombiner(&seqDeque[T]{})}
}

// PushBottom adds v at the bottom end.
func (d *FC[T]) PushBottom(v T) {
	d.c.Do(func(s *seqDeque[T]) { s.items = append(s.items, v) })
}

// TryPopBottom removes from the bottom end.
func (d *FC[T]) TryPopBottom() (v T, ok bool) {
	d.c.Do(func(s *seqDeque[T]) {
		if len(s.items) == 0 {
			return
		}
		v = s.items[len(s.items)-1]
		var zero T
		s.items[len(s.items)-1] = zero
		s.items = s.items[:len(s.items)-1]
		ok = true
	})
	return v, ok
}

// TryPopTop removes from the top end.
func (d *FC[T]) TryPopTop() (v T, ok bool) {
	d.c.Do(func(s *seqDeque[T]) {
		if len(s.items) == 0 {
			return
		}
		v = s.items[0]
		var zero T
		s.items[0] = zero // release reference for the GC
		s.items = s.items[1:]
		ok = true
	})
	return v, ok
}

// Len reports the number of elements.
func (d *FC[T]) Len() int {
	var n int
	d.c.Do(func(s *seqDeque[T]) { n = len(s.items) })
	return n
}
