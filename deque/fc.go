package deque

import (
	cds "github.com/cds-suite/cds"
	"github.com/cds-suite/cds/contend"
)

var _ cds.Deque[int] = (*FC[int])(nil)

// FC is a combining deque: a plain sequential slice deque made concurrent
// through a contend.Delegator backend (flat combining by default; CC-Synch
// or DSM-Synch via WithBackend). Unlike Chase-Lev it has no owner
// restriction — any goroutine may push or pop at either end — which makes
// it the symmetric-deque baseline the work-stealing design is traded
// against: Chase-Lev buys an uncontended owner fast path by restricting
// who may touch the bottom, the combining deque keeps full generality
// and batches all ends through one combiner.
//
// Progress: blocking in the small (a stalled combiner delays its batch) but
// the combiner role is held only for a bounded batch.
type FC[T any] struct {
	c contend.Delegator[*seqDeque[T]]
}

type seqDeque[T any] struct {
	items []T
}

// Option configures the combining deque at construction.
type Option func(*fcConfig)

type fcConfig struct {
	backend contend.Backend
}

// WithBackend selects the combining backend (flat combining default,
// CC-Synch, DSM-Synch); see contend.Backend.
func WithBackend(b contend.Backend) Option {
	return func(c *fcConfig) { c.backend = b }
}

// NewFC returns an empty combining deque.
func NewFC[T any](opts ...Option) *FC[T] {
	var cfg fcConfig
	for _, o := range opts {
		o(&cfg)
	}
	return &FC[T]{c: contend.NewDelegator(cfg.backend, &seqDeque[T]{})}
}

// Stats reports the combining-backend gauges (batches, ops, handoffs).
func (d *FC[T]) Stats() contend.DelegatorStats { return d.c.Stats() }

// PushBottom adds v at the bottom end.
func (d *FC[T]) PushBottom(v T) {
	d.c.Do(func(s *seqDeque[T]) { s.items = append(s.items, v) })
}

// TryPopBottom removes from the bottom end.
func (d *FC[T]) TryPopBottom() (v T, ok bool) {
	d.c.Do(func(s *seqDeque[T]) {
		if len(s.items) == 0 {
			return
		}
		v = s.items[len(s.items)-1]
		var zero T
		s.items[len(s.items)-1] = zero
		s.items = s.items[:len(s.items)-1]
		ok = true
	})
	return v, ok
}

// TryPopTop removes from the top end.
func (d *FC[T]) TryPopTop() (v T, ok bool) {
	d.c.Do(func(s *seqDeque[T]) {
		if len(s.items) == 0 {
			return
		}
		v = s.items[0]
		var zero T
		s.items[0] = zero // release reference for the GC
		s.items = s.items[1:]
		ok = true
	})
	return v, ok
}

// Len reports the number of elements.
func (d *FC[T]) Len() int {
	var n int
	d.c.Do(func(s *seqDeque[T]) { n = len(s.items) })
	return n
}
