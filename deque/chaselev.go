package deque

import (
	"sync/atomic"

	"github.com/cds-suite/cds/internal/pad"
	"github.com/cds-suite/cds/internal/pow2"
)

// ChaseLev is the dynamic circular work-stealing deque of Chase & Lev
// (SPAA 2005). One owner goroutine pushes and pops task items at the
// bottom; any number of thieves steal from the top. The owner's fast path
// is CAS-free — a push is a slot store plus a bottom publication — and only
// the race for the last remaining element synchronises owner and thieves
// through a CAS on top. The backing array grows by doubling; thieves may
// keep reading a superseded array, which stays valid because arrays are
// immutable once replaced.
//
// Method restrictions: PushBottom and TryPopBottom must be called only by
// the owner goroutine; TryPopTop may be called by anyone.
//
// Elements are boxed (*T) so that slot reads and writes are single atomic
// pointer operations; the thief's validating CAS on top makes a stale slot
// read harmless (the steal fails and retries). Boxes the owner pops back
// out are recycled into an owner-private free list, so steady-state
// push/pop traffic (the fork/join fast path) allocates nothing: a box is
// only dereferenced by whichever side won the element (the owner's
// reservation or the top CAS), so a box the owner reclaimed can never be
// read by a thief — a thief that raced for it has lost its CAS and
// returns without dereferencing.
//
// Linearization points: PushBottom at the bottom publication; owner pop of
// a non-last element at its bottom store; last-element pop and every steal
// at the CAS on top.
//
// Progress: owner operations are wait-free; steals are lock-free.
type ChaseLev[T any] struct {
	top atomic.Int64
	_   pad.CacheLinePad

	bottom atomic.Int64
	_      pad.CacheLinePad

	array atomic.Pointer[clArray[T]]

	// free is the owner-private box free list (PushBottom and
	// TryPopBottom are owner-only, so no synchronisation is needed).
	// Boxes that thieves steal are simply left to the GC.
	free []*T
}

// maxFreeBoxes bounds the owner's box free list; beyond it, popped boxes
// go back to the GC.
const maxFreeBoxes = 4096

type clArray[T any] struct {
	mask  int64
	slots []atomic.Pointer[T]
}

func newCLArray[T any](size int64) *clArray[T] {
	return &clArray[T]{
		mask:  size - 1,
		slots: make([]atomic.Pointer[T], size),
	}
}

func (a *clArray[T]) size() int64 { return int64(len(a.slots)) }

func (a *clArray[T]) get(i int64) *T { return a.slots[i&a.mask].Load() }

func (a *clArray[T]) put(i int64, v *T) { a.slots[i&a.mask].Store(v) }

// grow returns a doubled array holding the elements in positions [top, bottom).
func (a *clArray[T]) grow(top, bottom int64) *clArray[T] {
	na := newCLArray[T](2 * a.size())
	for i := top; i < bottom; i++ {
		na.put(i, a.get(i))
	}
	return na
}

// NewChaseLev returns an empty deque with the given initial capacity,
// rounded up to a power of two (minimum 8). The deque grows as needed.
func NewChaseLev[T any](initialCap int) *ChaseLev[T] {
	n := int64(pow2.RoundUp(initialCap, 8))
	d := &ChaseLev[T]{}
	d.array.Store(newCLArray[T](n))
	return d
}

// PushBottom adds v at the owner end. Owner-only.
func (d *ChaseLev[T]) PushBottom(v T) {
	b := d.bottom.Load()
	t := d.top.Load()
	a := d.array.Load()
	if b-t > a.size()-1 {
		// Full: publish a doubled copy. Thieves holding the old array keep
		// reading valid (immutable) slots.
		a = a.grow(t, b)
		d.array.Store(a)
	}
	var box *T
	if n := len(d.free); n > 0 {
		box = d.free[n-1]
		d.free[n-1] = nil
		d.free = d.free[:n-1]
		*box = v
	} else {
		box = &v
	}
	a.put(b, box)
	d.bottom.Store(b + 1)
}

// recycle returns a popped box to the owner's free list.
func (d *ChaseLev[T]) recycle(box *T) {
	if len(d.free) < maxFreeBoxes {
		d.free = append(d.free, box)
	}
}

// TryPopBottom removes from the owner end. Owner-only.
func (d *ChaseLev[T]) TryPopBottom() (v T, ok bool) {
	b := d.bottom.Load() - 1
	a := d.array.Load()
	d.bottom.Store(b)
	// Go atomics are sequentially consistent, providing the store-load
	// barrier between the bottom reservation and the top read that the
	// algorithm's correctness argument requires.
	t := d.top.Load()
	if t > b {
		// Deque was empty; undo the reservation.
		d.bottom.Store(b + 1)
		return v, false
	}
	ptr := a.get(b)
	if b > t {
		// More than one element: the reservation alone secures it.
		v = *ptr
		d.recycle(ptr)
		return v, true
	}
	// Exactly one element: race the thieves for it via top.
	won := d.top.CompareAndSwap(t, t+1)
	d.bottom.Store(b + 1)
	if !won {
		return v, false // a thief got it first
	}
	v = *ptr
	d.recycle(ptr)
	return v, true
}

// TryPopTop steals from the top end. Safe for any goroutine.
func (d *ChaseLev[T]) TryPopTop() (v T, ok bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if b <= t {
		return v, false // observed empty
	}
	a := d.array.Load()
	ptr := a.get(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return v, false // lost the race; caller may retry
	}
	return *ptr, true
}

// Len reports bottom−top. Exact in quiescent states; under concurrency it
// is a best-effort snapshot.
func (d *ChaseLev[T]) Len() int {
	b := d.bottom.Load()
	t := d.top.Load()
	if b < t {
		return 0
	}
	return int(b - t)
}
