package skiplist

import (
	"runtime"
	"sync"
	"sync/atomic"

	cds "github.com/cds-suite/cds"
	"github.com/cds-suite/cds/internal/xrand"
)

func yield() { runtime.Gosched() }

// Compile-time interface compliance checks.
var (
	_ cds.Set[int] = (*Lazy[int])(nil)
	_ cds.Set[int] = (*LockFree[int])(nil)
)

// maxLevel bounds tower height: 2^32 expected elements is plenty for a
// benchmark-scale in-memory set.
const maxLevel = 32

// levelGen draws geometric(1/2) tower heights in [1, maxLevel], using a
// pooled PRNG so concurrent inserters do not contend on a shared generator.
type levelGen struct {
	pool sync.Pool
}

func newLevelGen() *levelGen {
	g := &levelGen{}
	var seed atomic.Uint64
	g.pool.New = func() any {
		return xrand.New(seed.Add(0x9e3779b97f4a7c15))
	}
	return g
}

// next returns a height in [1, maxLevel]: height h with probability 2^-h.
func (g *levelGen) next() int {
	rng := g.pool.Get().(*xrand.Rand)
	v := rng.Uint64()
	g.pool.Put(rng)
	h := 1
	for v&1 == 1 && h < maxLevel {
		h++
		v >>= 1
	}
	return h
}
