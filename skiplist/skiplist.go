// Package skiplist implements the two canonical concurrent skip lists from
// the survey literature: the lazy lock-based skip list of Herlihy, Lev,
// Luchangco & Shavit ("A Simple Optimistic Skiplist Algorithm", SIROCCO
// 2007 — the algorithm behind java.util.concurrent's design lineage) and
// the lock-free skip list of Herlihy & Shavit (ch. 14.4), a simplification
// of Fraser's.
//
// Skip lists dominate concurrent ordered-set design because balance is
// probabilistic rather than structural: there are no rotations to
// synchronise, and every mutation touches a small expected set of nodes.
// Both implementations provide wait-free Contains. Experiment F7
// regenerates the update-mix scalability comparison.
package skiplist

import (
	"runtime"
	"sync"
	"sync/atomic"

	cds "github.com/cds-suite/cds"
	"github.com/cds-suite/cds/internal/xrand"
)

func yield() { runtime.Gosched() }

// Compile-time interface compliance checks.
var (
	_ cds.Set[int] = (*Lazy[int])(nil)
	_ cds.Set[int] = (*LockFree[int])(nil)
)

// maxLevel bounds tower height: 2^32 expected elements is plenty for a
// benchmark-scale in-memory set.
const maxLevel = 32

// levelGen draws geometric(1/2) tower heights in [1, maxLevel], using a
// pooled PRNG so concurrent inserters do not contend on a shared generator.
type levelGen struct {
	pool sync.Pool
}

func newLevelGen() *levelGen {
	g := &levelGen{}
	var seed atomic.Uint64
	g.pool.New = func() any {
		return xrand.New(seed.Add(0x9e3779b97f4a7c15))
	}
	return g
}

// next returns a height in [1, maxLevel]: height h with probability 2^-h.
func (g *levelGen) next() int {
	rng := g.pool.Get().(*xrand.Rand)
	v := rng.Uint64()
	g.pool.Put(rng)
	h := 1
	for v&1 == 1 && h < maxLevel {
		h++
		v >>= 1
	}
	return h
}
