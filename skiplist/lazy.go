package skiplist

import (
	"cmp"
	"sync"
	"sync/atomic"
)

// Lazy is the lazy lock-based skip list. Traversals never lock; Add and
// Remove lock only the predecessor towers they are about to relink,
// validating with per-node marked/fullyLinked flags instead of re-traversal
// (the skip-list analogue of the lazy list). A node becomes logically
// present when fullyLinked flips to true and logically absent when marked
// flips to true — those two flag writes are the linearization points, which
// is what lets Contains run wait-free with no validation loop.
//
// Progress: Add/Remove blocking (optimistic, fine-grained locks);
// Contains wait-free.
type Lazy[K cmp.Ordered] struct {
	head   *lazyNode[K] // sentinel tower at full height
	levels *levelGen
	size   atomic.Int64
}

type lazyNode[K cmp.Ordered] struct {
	mu          sync.Mutex
	key         K
	isHead      bool
	topLayer    int // highest level this node occupies
	marked      atomic.Bool
	fullyLinked atomic.Bool
	next        [maxLevel]atomic.Pointer[lazyNode[K]]
}

// NewLazy returns an empty lazy skip-list set.
func NewLazy[K cmp.Ordered]() *Lazy[K] {
	return &Lazy[K]{
		head:   &lazyNode[K]{isHead: true, topLayer: maxLevel - 1},
		levels: newLevelGen(),
	}
}

// find fills preds/succs with the per-level windows for k and returns the
// highest level at which a node with key k was found, or -1.
func (s *Lazy[K]) find(k K, preds, succs *[maxLevel]*lazyNode[K]) int {
	lFound := -1
	pred := s.head
	for level := maxLevel - 1; level >= 0; level-- {
		curr := pred.next[level].Load()
		for curr != nil && curr.key < k {
			pred = curr
			curr = pred.next[level].Load()
		}
		if lFound == -1 && curr != nil && curr.key == k {
			lFound = level
		}
		preds[level] = pred
		succs[level] = curr
	}
	return lFound
}

// Add inserts k, reporting false if it was already present.
func (s *Lazy[K]) Add(k K) bool {
	topLayer := s.levels.next() - 1
	var preds, succs [maxLevel]*lazyNode[K]
	for {
		lFound := s.find(k, &preds, &succs)
		if lFound != -1 {
			found := succs[lFound]
			if !found.marked.Load() {
				// Present (or appearing): wait until the inserter finishes
				// linking so our false return is linearizable.
				for !found.fullyLinked.Load() {
					spinYield()
				}
				return false
			}
			// Marked: it is on its way out; retry until it is gone.
			continue
		}

		// Lock the predecessors bottom-up and validate each window.
		highestLocked := -1
		valid := true
		var prevPred *lazyNode[K]
		for level := 0; valid && level <= topLayer; level++ {
			pred, succ := preds[level], succs[level]
			if pred != prevPred {
				pred.mu.Lock()
				highestLocked = level
				prevPred = pred
			}
			valid = !pred.marked.Load() &&
				(succ == nil || !succ.marked.Load()) &&
				pred.next[level].Load() == succ
		}
		if !valid {
			unlockPreds(&preds, highestLocked)
			continue
		}

		n := &lazyNode[K]{key: k, topLayer: topLayer}
		for level := 0; level <= topLayer; level++ {
			n.next[level].Store(succs[level])
		}
		for level := 0; level <= topLayer; level++ {
			preds[level].next[level].Store(n)
		}
		n.fullyLinked.Store(true) // linearization point
		unlockPreds(&preds, highestLocked)
		s.size.Add(1)
		return true
	}
}

// Remove deletes k, reporting false if it was absent.
func (s *Lazy[K]) Remove(k K) bool {
	var victim *lazyNode[K]
	isMarked := false
	topLayer := -1
	var preds, succs [maxLevel]*lazyNode[K]
	for {
		lFound := s.find(k, &preds, &succs)
		if !isMarked {
			if lFound == -1 {
				return false
			}
			victim = succs[lFound]
			if !victim.fullyLinked.Load() || victim.topLayer != lFound || victim.marked.Load() {
				return false
			}
			topLayer = victim.topLayer
			victim.mu.Lock()
			if victim.marked.Load() {
				victim.mu.Unlock()
				return false // lost the race to another remover
			}
			victim.marked.Store(true) // linearization point
			isMarked = true
		}

		highestLocked := -1
		valid := true
		var prevPred *lazyNode[K]
		for level := 0; valid && level <= topLayer; level++ {
			pred := preds[level]
			if pred != prevPred {
				pred.mu.Lock()
				highestLocked = level
				prevPred = pred
			}
			valid = !pred.marked.Load() && pred.next[level].Load() == victim
		}
		if !valid {
			unlockPreds(&preds, highestLocked)
			continue // victim stays marked; re-find fresh predecessors
		}

		for level := topLayer; level >= 0; level-- {
			preds[level].next[level].Store(victim.next[level].Load())
		}
		victim.mu.Unlock()
		unlockPreds(&preds, highestLocked)
		s.size.Add(-1)
		return true
	}
}

// Contains reports whether k is present. Wait-free: one traversal and two
// flag loads.
func (s *Lazy[K]) Contains(k K) bool {
	pred := s.head
	var found *lazyNode[K]
	for level := maxLevel - 1; level >= 0; level-- {
		curr := pred.next[level].Load()
		for curr != nil && curr.key < k {
			pred = curr
			curr = pred.next[level].Load()
		}
		if curr != nil && curr.key == k {
			found = curr
			break
		}
	}
	return found != nil && found.fullyLinked.Load() && !found.marked.Load()
}

// Len reports the number of keys (atomic counter; exact in quiescent
// states).
func (s *Lazy[K]) Len() int {
	return int(s.size.Load())
}

// unlockPreds releases the distinct predecessor locks acquired up to level
// highestLocked, mirroring the acquisition loop's dedup logic.
func unlockPreds[K cmp.Ordered](preds *[maxLevel]*lazyNode[K], highestLocked int) {
	var prevPred *lazyNode[K]
	for level := 0; level <= highestLocked; level++ {
		if preds[level] != prevPred {
			preds[level].mu.Unlock()
			prevPred = preds[level]
		}
	}
}

func spinYield() {
	// Tiny wait inside rarely-taken wait loops (e.g. waiting for
	// fullyLinked); delegating to the scheduler keeps the holder running.
	yield()
}
