package skiplist_test

import (
	"fmt"
	"sync"

	"github.com/cds-suite/cds/skiplist"
)

// The lock-free skip list is the scalable ordered set: O(log n) expected
// operations with wait-free membership tests.
func ExampleLockFree() {
	s := skiplist.NewLockFree[int]()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := w * 250; k < (w+1)*250; k++ {
				s.Add(k)
			}
		}(w)
	}
	wg.Wait()

	fmt.Println(s.Len(), s.Contains(999), s.Contains(1000))
	// Output: 1000 true false
}

// The lazy skip list trades lock-based updates for the same wait-free
// reads; it is the design java.util.concurrent's map descends from.
func ExampleLazy() {
	s := skiplist.NewLazy[string]()
	s.Add("cherry")
	s.Add("apple")
	s.Add("banana")
	s.Remove("cherry")
	fmt.Println(s.Len(), s.Contains("apple"))
	// Output: 2 true
}
