package skiplist

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	cds "github.com/cds-suite/cds"
	"github.com/cds-suite/cds/internal/xrand"
)

func implementations() []struct {
	name string
	mk   func() cds.Set[int]
} {
	return []struct {
		name string
		mk   func() cds.Set[int]
	}{
		{name: "Lazy", mk: func() cds.Set[int] { return NewLazy[int]() }},
		{name: "LockFree", mk: func() cds.Set[int] { return NewLockFree[int]() }},
	}
}

func TestSequentialSemantics(t *testing.T) {
	for _, tt := range implementations() {
		t.Run(tt.name, func(t *testing.T) {
			s := tt.mk()
			if s.Contains(10) || s.Remove(10) {
				t.Fatal("empty set misbehaves")
			}
			for _, k := range []int{5, 3, 9, 1, 7} {
				if !s.Add(k) {
					t.Fatalf("Add(%d) failed", k)
				}
			}
			if s.Add(5) {
				t.Fatal("duplicate Add succeeded")
			}
			if got := s.Len(); got != 5 {
				t.Fatalf("Len = %d, want 5", got)
			}
			for _, k := range []int{1, 3, 5, 7, 9} {
				if !s.Contains(k) {
					t.Fatalf("missing %d", k)
				}
			}
			for _, k := range []int{0, 2, 4, 6, 8} {
				if s.Contains(k) {
					t.Fatalf("phantom %d", k)
				}
			}
			if !s.Remove(5) || s.Remove(5) || s.Contains(5) {
				t.Fatal("Remove semantics wrong")
			}
			if got := s.Len(); got != 4 {
				t.Fatalf("Len = %d, want 4", got)
			}
		})
	}
}

func TestLargeSequential(t *testing.T) {
	// Enough keys to exercise multi-level towers thoroughly.
	for _, tt := range implementations() {
		t.Run(tt.name, func(t *testing.T) {
			s := tt.mk()
			rng := xrand.New(42)
			const n = 20000
			perm := rng.Perm(n)
			for _, k := range perm {
				if !s.Add(k) {
					t.Fatalf("Add(%d) failed", k)
				}
			}
			if got := s.Len(); got != n {
				t.Fatalf("Len = %d, want %d", got, n)
			}
			for i := 0; i < n; i++ {
				if !s.Contains(i) {
					t.Fatalf("missing %d", i)
				}
			}
			for i := 0; i < n; i += 2 {
				if !s.Remove(i) {
					t.Fatalf("Remove(%d) failed", i)
				}
			}
			for i := 0; i < n; i++ {
				if want := i%2 == 1; s.Contains(i) != want {
					t.Fatalf("Contains(%d) = %v, want %v", i, !want, want)
				}
			}
		})
	}
}

func TestPropertyMatchesModel(t *testing.T) {
	for _, tt := range implementations() {
		t.Run(tt.name, func(t *testing.T) {
			f := func(ops []int8) bool {
				s := tt.mk()
				model := make(map[int]bool)
				for _, raw := range ops {
					k := int(raw % 16)
					switch {
					case raw%3 == 0:
						if s.Add(k) == model[k] {
							return false
						}
						model[k] = true
					case raw%3 == 1 || raw%3 == -1:
						if s.Remove(k) != model[k] {
							return false
						}
						delete(model, k)
					default:
						if s.Contains(k) != model[k] {
							return false
						}
					}
				}
				return s.Len() == len(model)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDisjointKeysConcurrent(t *testing.T) {
	for _, tt := range implementations() {
		t.Run(tt.name, func(t *testing.T) {
			s := tt.mk()
			workers := min(8, runtime.GOMAXPROCS(0))
			const ops = 6000
			models := make([]map[int]bool, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := xrand.New(uint64(w) + 7)
					model := make(map[int]bool)
					for i := 0; i < ops; i++ {
						k := w + workers*rng.Intn(512)
						switch rng.Intn(3) {
						case 0:
							if s.Add(k) == model[k] {
								t.Errorf("worker %d: Add(%d) inconsistent", w, k)
								return
							}
							model[k] = true
						case 1:
							if s.Remove(k) != model[k] {
								t.Errorf("worker %d: Remove(%d) inconsistent", w, k)
								return
							}
							delete(model, k)
						default:
							if s.Contains(k) != model[k] {
								t.Errorf("worker %d: Contains(%d) inconsistent", w, k)
								return
							}
						}
					}
					models[w] = model
				}(w)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			total := 0
			for w, model := range models {
				total += len(model)
				for k := range model {
					if !s.Contains(k) {
						t.Fatalf("worker %d: key %d lost", w, k)
					}
				}
			}
			if got := s.Len(); got != total {
				t.Fatalf("Len = %d, want %d", got, total)
			}
		})
	}
}

func TestContendedChurn(t *testing.T) {
	for _, tt := range implementations() {
		t.Run(tt.name, func(t *testing.T) {
			s := tt.mk()
			workers := 2 * runtime.GOMAXPROCS(0)
			const ops = 4000
			const keyRange = 32
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := xrand.New(uint64(w)*1299709 + 11)
					for i := 0; i < ops; i++ {
						k := rng.Intn(keyRange)
						switch rng.Intn(3) {
						case 0:
							s.Add(k)
						case 1:
							s.Remove(k)
						default:
							s.Contains(k)
						}
					}
				}(w)
			}
			wg.Wait()

			// Post-conditions: Len matches visible keys; all in range.
			visible := 0
			for k := 0; k < keyRange; k++ {
				if s.Contains(k) {
					visible++
				}
			}
			if got := s.Len(); got != visible {
				t.Fatalf("Len = %d, visible = %d", got, visible)
			}
		})
	}
}

// TestUniqueKeyChurn: each goroutine adds and removes its own unique keys;
// the set must end empty and no operation may fail.
func TestUniqueKeyChurn(t *testing.T) {
	for _, tt := range implementations() {
		t.Run(tt.name, func(t *testing.T) {
			s := tt.mk()
			workers := runtime.GOMAXPROCS(0)
			const pairs = 4000
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < pairs; i++ {
						k := w*pairs + i
						if !s.Add(k) {
							t.Errorf("Add(%d) of unique key failed", k)
							return
						}
						if !s.Contains(k) {
							t.Errorf("Contains(%d) of just-added key failed", k)
							return
						}
						if !s.Remove(k) {
							t.Errorf("Remove(%d) of just-added key failed", k)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			if got := s.Len(); got != 0 {
				t.Fatalf("Len = %d after matched churn, want 0", got)
			}
		})
	}
}

func TestLevelGenDistribution(t *testing.T) {
	g := newLevelGen()
	const samples = 1 << 16
	counts := make([]int, maxLevel+1)
	for i := 0; i < samples; i++ {
		h := g.next()
		if h < 1 || h > maxLevel {
			t.Fatalf("height %d out of range", h)
		}
		counts[h]++
	}
	// Height 1 should be ~half; height 2 ~quarter. Very loose bounds.
	if counts[1] < samples/3 || counts[1] > 2*samples/3 {
		t.Fatalf("height-1 frequency %d/%d far from 1/2", counts[1], samples)
	}
	if counts[2] < samples/8 || counts[2] > samples/2 {
		t.Fatalf("height-2 frequency %d/%d far from 1/4", counts[2], samples)
	}
}

func TestStringKeys(t *testing.T) {
	for _, s := range []cds.Set[string]{NewLazy[string](), NewLockFree[string]()} {
		for _, k := range []string{"m", "a", "z", "g"} {
			if !s.Add(k) {
				t.Fatalf("Add(%q) failed", k)
			}
		}
		if !s.Contains("a") || s.Contains("q") {
			t.Fatal("string membership wrong")
		}
		if !s.Remove("m") || s.Remove("m") {
			t.Fatal("string removal wrong")
		}
	}
}
