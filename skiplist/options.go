package skiplist

import "github.com/cds-suite/cds/reclaim"

// Option configures a skip-list constructor (currently only LockFree
// supports options; the lazy list retires nothing).
type Option func(*options)

type options struct {
	dom reclaim.Domain
}

// WithReclaim attaches a safe-memory-reclamation domain (reclaim.NewEBR,
// reclaim.NewHP) to the skip list: a removed node is retired — once, by
// the level-0 marker after its unlinking traversal — through the domain
// instead of being left to the garbage collector.
//
// Unlike the single-level structures there is no recycling option: a
// concurrent Add can re-link a marked node at an upper level after the
// remover's traversal finished (the helping protocol tolerates and later
// repairs this), so a retired node may transiently be reachable again —
// harmless for counting and deferral, ruinous for eager reuse. See the
// README's reclamation section.
func WithReclaim(d reclaim.Domain) Option {
	return func(o *options) { o.dom = d }
}

func buildOptions(opts []Option) options {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	if o.dom != nil && !o.dom.Deferred() {
		o.dom = nil // explicit GC domain: same as the default fast path
	}
	return o
}
