package skiplist

import (
	"sync"
	"testing"

	"github.com/cds-suite/cds/internal/xrand"
	"github.com/cds-suite/cds/reclaim"
)

// TestLockFreeReclaimVariants churns add/remove/contains traffic under
// EBR and HP domains, then verifies set coherence and live gauges. The
// skip list has no recycling mode (see WithReclaim), so reclaimed nodes
// simply return to the garbage collector — the test checks the retire
// accounting, which is what F12's pending-garbage gauge reports.
func TestLockFreeReclaimVariants(t *testing.T) {
	variants := map[string]func() reclaim.Domain{
		"EBR": func() reclaim.Domain {
			d := reclaim.NewEBR()
			d.SetAdvanceInterval(4)
			return d
		},
		"HP": func() reclaim.Domain {
			d := reclaim.NewHP()
			d.SetScanThreshold(8)
			return d
		},
	}
	for name, mkDom := range variants {
		t.Run(name, func(t *testing.T) {
			dom := mkDom()
			s := NewLockFree[int](WithReclaim(dom))

			const workers, ops, keyRange = 4, 4000, 64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := xrand.New(uint64(w)*31 + 3)
					for i := 0; i < ops; i++ {
						k := rng.Intn(keyRange)
						switch rng.Intn(3) {
						case 0:
							s.Add(k)
						case 1:
							s.Remove(k)
						default:
							s.Contains(k)
						}
					}
				}(w)
			}
			wg.Wait()

			for k := 0; k < keyRange; k++ {
				s.Add(k)
				if !s.Contains(k) {
					t.Fatalf("key %d absent right after Add", k)
				}
			}
			if got := s.Len(); got != keyRange {
				t.Fatalf("Len = %d with all %d keys present", got, keyRange)
			}
			for k := 0; k < keyRange; k++ {
				if !s.Remove(k) {
					t.Fatalf("Remove(%d) failed on a present key", k)
				}
				if s.Contains(k) {
					t.Fatalf("key %d present right after Remove", k)
				}
			}
			if got := s.Len(); got != 0 {
				t.Fatalf("Len = %d after removing everything", got)
			}
			if dom.Reclaimed() == 0 {
				t.Fatal("domain reclaimed nothing — retire path inert")
			}
			if dom.Pending() < 0 {
				t.Fatalf("pending gauge negative: %d", dom.Pending())
			}
		})
	}
}
