// Package skiplist implements the two canonical concurrent skip lists from
// the survey literature: the lazy lock-based skip list of Herlihy, Lev,
// Luchangco & Shavit ("A Simple Optimistic Skiplist Algorithm", SIROCCO
// 2007 — the algorithm behind java.util.concurrent's design lineage) and
// the lock-free skip list of Herlihy & Shavit (ch. 14.4), a simplification
// of Fraser's.
//
// Skip lists dominate concurrent ordered-set design because balance is
// probabilistic rather than structural: there are no rotations to
// synchronise, and every mutation touches a small expected set of nodes.
// Experiment F7 regenerates the update-mix scalability comparison.
//
// Progress guarantees: Lazy is blocking for updates with wait-free
// Contains; LockFree is lock-free for updates (marker CAS at every level,
// linearizing at the bottom-level mark) and wait-free for Contains. Both
// linearize membership at the bottom level — upper levels are only an
// index. LockFree accepts WithReclaim (level-0 marker retires through
// package reclaim); recycling is not offered because a racing insert can
// transiently re-link a marked node at an upper level — tolerable for
// deferred reclamation, unsafe for eager reuse.
package skiplist
