package skiplist

import (
	"cmp"
	"sync/atomic"

	"github.com/cds-suite/cds/contend"
	"github.com/cds-suite/cds/reclaim"
)

// LockFree is the lock-free skip list of Herlihy & Shavit (ch. 14.4), a
// streamlined Fraser-style design. Each node's per-level successor is an
// atomically swappable (next, marked) record — the AtomicMarkableReference
// encoding also used by list.Harris. The bottom level is the truth: a key
// is in the set iff an unmarked level-0 node holds it. Insertion links
// bottom-up (level 0 is the linearization point); removal marks top-down
// and linearizes at the level-0 mark; traversals snip marked nodes as they
// pass (helping).
//
// Memory reclamation (WithReclaim): the level-0 marker — the operation
// that logically removed the key — retires the victim after its unlinking
// traversal completes, so each node is retired exactly once. Under HP the
// descent keeps pred in hazard slot 0 and curr in slot 1, revalidating
// pred's record after each publication. There is no recycling option (see
// WithReclaim).
//
// Progress: Add/Remove lock-free; Contains wait-free under GC and EBR
// (under HP it shares the helping traversal and is lock-free).
type LockFree[K cmp.Ordered] struct {
	head   *lfNode[K]
	levels *levelGen
	size   atomic.Int64
	mem    *reclaim.Pool
}

type lfNode[K cmp.Ordered] struct {
	key      K
	isHead   bool
	topLevel int
	next     [maxLevel]atomic.Pointer[lfRef[K]]
}

// lfRef is an immutable (successor, mark) pair for one level.
type lfRef[K cmp.Ordered] struct {
	next   *lfNode[K]
	marked bool
}

func newLFNode[K cmp.Ordered](k K, topLevel int) *lfNode[K] {
	n := &lfNode[K]{key: k, topLevel: topLevel}
	for i := 0; i <= topLevel; i++ {
		n.next[i].Store(&lfRef[K]{})
	}
	return n
}

// NewLockFree returns an empty lock-free skip-list set. See WithReclaim
// for the memory-reclamation option.
func NewLockFree[K cmp.Ordered](opts ...Option) *LockFree[K] {
	h := &lfNode[K]{isHead: true, topLevel: maxLevel - 1}
	for i := 0; i < maxLevel; i++ {
		h.next[i].Store(&lfRef[K]{})
	}
	s := &LockFree[K]{head: h, levels: newLevelGen()}
	if o := buildOptions(opts); o.dom != nil {
		s.mem = reclaim.NewPool(o.dom, 2)
	}
	return s
}

// acquire returns a guard with its section entered, or nil when the set
// runs on plain GC reclamation.
func (s *LockFree[K]) acquire() reclaim.Guard {
	if s.mem == nil {
		return nil
	}
	g := s.mem.Get()
	g.Enter()
	return g
}

func (s *LockFree[K]) release(g reclaim.Guard) {
	if g == nil {
		return
	}
	g.Exit()
	s.mem.Put(g)
}

// find locates the per-level windows for k, snipping marked nodes it
// passes. preds/succs/predRefs are filled for levels [0, maxLevel);
// predRefs[l] is the exact snapshot such that preds[l].next[l] held it with
// predRefs[l].next == succs[l]. found reports an unmarked level-0 match.
// Under a protecting guard the descending pred stays in hazard slot 0 and
// the current probe in slot 1, revalidated against pred's record after
// each publication (the head is immortal and needs none).
func (s *LockFree[K]) find(g reclaim.Guard, k K, preds, succs *[maxLevel]*lfNode[K], predRefs *[maxLevel]*lfRef[K]) bool {
	hp := g != nil && g.Protects()
retry:
	for {
		pred := s.head
		if hp {
			g.Protect(0, nil)
		}
		for level := maxLevel - 1; level >= 0; level-- {
			predRef := pred.next[level].Load()
			if predRef.marked {
				// pred is being removed at this level (marking proceeds
				// top-down, so a node that guided the descent can be marked
				// below). Using a marked snapshot in the CASes ahead would
				// overwrite the mark and resurrect the node — restart.
				continue retry
			}
			curr := predRef.next
			for curr != nil {
				if hp {
					g.Protect(1, curr)
					if pred.next[level].Load() != predRef {
						continue retry
					}
				}
				currRef := curr.next[level].Load()
				if currRef.marked {
					// Help: physically remove curr at this level. On
					// success, keep the exact record we installed as the
					// new snapshot — reloading here could pick up an
					// unrelated concurrent relink and desynchronise the
					// (pred, curr) window.
					newRef := &lfRef[K]{next: currRef.next}
					if !pred.next[level].CompareAndSwap(predRef, newRef) {
						continue retry
					}
					predRef = newRef
					curr = newRef.next
					continue
				}
				if curr.key < k {
					pred, predRef = curr, currRef
					if hp {
						g.Protect(0, curr) // pred moves into slot 0
					}
					curr = currRef.next
					continue
				}
				break
			}
			preds[level] = pred
			predRefs[level] = predRef
			succs[level] = curr
		}
		return succs[0] != nil && succs[0].key == k
	}
}

// Add inserts k, reporting false if it was already present.
func (s *LockFree[K]) Add(k K) bool {
	g := s.acquire()
	defer s.release(g)
	topLevel := s.levels.next() - 1
	var b contend.Backoff
	var preds, succs [maxLevel]*lfNode[K]
	var predRefs [maxLevel]*lfRef[K]
	for {
		if s.find(g, k, &preds, &succs, &predRefs) {
			return false
		}
		n := newLFNode(k, topLevel)
		for level := 0; level <= topLevel; level++ {
			n.next[level].Store(&lfRef[K]{next: succs[level]})
		}
		// Level 0 is the linearization point.
		if !preds[0].next[0].CompareAndSwap(predRefs[0], &lfRef[K]{next: n}) {
			b.Pause() // lost the window; back off before re-resolving it
			continue  // window changed; retry whole insert
		}
		s.size.Add(1)

		// Link the upper levels; helpers may be deleting n concurrently.
		for level := 1; level <= topLevel; level++ {
			for {
				nRef := n.next[level].Load()
				if nRef.marked {
					return true // n was removed while we linked; stop
				}
				succ := succs[level]
				if nRef.next != succ {
					// Refresh n's forward pointer to the current window.
					if !n.next[level].CompareAndSwap(nRef, &lfRef[K]{next: succ}) {
						continue
					}
				}
				if preds[level].next[level].CompareAndSwap(predRefs[level], &lfRef[K]{next: n}) {
					break
				}
				b.Pause() // lost the window; back off before re-resolving it
				// Window stale: recompute and retry this level.
				if s.find(g, k, &preds, &succs, &predRefs); succs[0] != n {
					return true // n already unlinked; stop
				}
			}
		}
		return true
	}
}

// Remove deletes k, reporting false if it was absent.
func (s *LockFree[K]) Remove(k K) bool {
	g := s.acquire()
	defer s.release(g)
	var preds, succs [maxLevel]*lfNode[K]
	var predRefs [maxLevel]*lfRef[K]
	if !s.find(g, k, &preds, &succs, &predRefs) {
		return false
	}
	victim := succs[0]

	// Mark the upper levels top-down (idempotent; racers may help).
	for level := victim.topLevel; level >= 1; level-- {
		ref := victim.next[level].Load()
		for !ref.marked {
			victim.next[level].CompareAndSwap(ref, &lfRef[K]{next: ref.next, marked: true})
			ref = victim.next[level].Load()
		}
	}

	// Level 0 mark decides who removed it: the linearization point.
	var b contend.Backoff
	for {
		ref := victim.next[0].Load()
		if ref.marked {
			return false // another remover won
		}
		if victim.next[0].CompareAndSwap(ref, &lfRef[K]{next: ref.next, marked: true}) {
			s.size.Add(-1)
			// Physically unlink via a helping traversal, then retire: the
			// level-0 marker is the unique logical remover, so the victim
			// is retired exactly once.
			s.find(g, k, &preds, &succs, &predRefs)
			if g != nil {
				g.Retire(victim, func() {})
			}
			return true
		}
		b.Pause() // lost the marking race; back off before retrying
	}
}

// Contains reports whether k is present. Wait-free under GC and EBR: it
// reads through marks without helping. Under HP it runs the protected
// find instead (lock-free).
func (s *LockFree[K]) Contains(k K) bool {
	g := s.acquire()
	defer s.release(g)
	if g != nil && g.Protects() {
		var preds, succs [maxLevel]*lfNode[K]
		var predRefs [maxLevel]*lfRef[K]
		return s.find(g, k, &preds, &succs, &predRefs)
	}
	pred := s.head
	var curr *lfNode[K]
	for level := maxLevel - 1; level >= 0; level-- {
		curr = pred.next[level].Load().next
		for curr != nil {
			currRef := curr.next[level].Load()
			if currRef.marked {
				curr = currRef.next // read past logically deleted nodes
				continue
			}
			if curr.key < k {
				pred = curr
				curr = currRef.next
				continue
			}
			break
		}
		if curr != nil && curr.key == k {
			return !curr.next[0].Load().marked
		}
	}
	return false
}

// Len reports the number of keys (atomic counter; exact in quiescent
// states).
func (s *LockFree[K]) Len() int {
	return int(s.size.Load())
}
