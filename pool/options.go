package pool

import "runtime"

// defaultDequeCap is the initial per-worker deque capacity. The deque
// grows by doubling, so the value only sizes the first allocation.
const defaultDequeCap = 256

// Option configures a pool constructor.
type Option func(*options)

type options struct {
	workers  int
	dequeCap int
}

// WithWorkers sets the worker count. Values < 1 select the default,
// GOMAXPROCS at construction time.
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = n }
}

// WithDequeCapacity sets each worker deque's initial capacity (rounded up
// to a power of two by the deque). Values < 1 select the default.
func WithDequeCapacity(n int) Option {
	return func(o *options) { o.dequeCap = n }
}

func buildOptions(opts []Option) options {
	o := options{}
	for _, opt := range opts {
		opt(&o)
	}
	if o.workers < 1 {
		o.workers = runtime.GOMAXPROCS(0)
	}
	if o.dequeCap < 1 {
		o.dequeCap = defaultDequeCap
	}
	return o
}
