package pool

import "runtime"

// defaultDequeCap is the initial per-worker deque capacity. The deque
// grows by doubling, so the value only sizes the first allocation.
const defaultDequeCap = 256

// Option configures a pool constructor.
type Option func(*options)

type options struct {
	workers  int
	dequeCap int
	lane     Lane
}

// Lane selects the queue implementation behind the pool's shared
// injection lane (the structure external Submits land in and every worker
// dequeues from).
type Lane int

const (
	// LaneMS is the default: the Michael–Scott linked queue, unbounded
	// with per-task allocation. Proven by the S16 numbers; stays the
	// default until S18's pool-injection cell justifies flipping.
	LaneMS Lane = iota
	// LaneSegmented selects queue.LCRQ: FAA-claimed ring segments,
	// allocation per SegmentSize tasks instead of per task. The lane is
	// multi-consumer (every worker dequeues), so it takes the full LCRQ
	// rather than the single-consumer MPSC variant.
	LaneSegmented
)

// WithInjectionLane selects the injection-lane implementation. Unknown
// values select the default.
func WithInjectionLane(l Lane) Option {
	return func(o *options) { o.lane = l }
}

// WithWorkers sets the worker count. Values < 1 select the default,
// GOMAXPROCS at construction time.
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = n }
}

// WithDequeCapacity sets each worker deque's initial capacity (rounded up
// to a power of two by the deque). Values < 1 select the default.
func WithDequeCapacity(n int) Option {
	return func(o *options) { o.dequeCap = n }
}

func buildOptions(opts []Option) options {
	o := options{}
	for _, opt := range opts {
		opt(&o)
	}
	if o.workers < 1 {
		o.workers = runtime.GOMAXPROCS(0)
	}
	if o.dequeCap < 1 {
		o.dequeCap = defaultDequeCap
	}
	return o
}
