package pool

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	cds "github.com/cds-suite/cds"
	"github.com/cds-suite/cds/contend"
	"github.com/cds-suite/cds/deque"
	"github.com/cds-suite/cds/internal/park"
	"github.com/cds-suite/cds/internal/xrand"
	"github.com/cds-suite/cds/queue"
)

// Pool lifecycle states.
const (
	stateRunning int32 = iota
	// stateDraining: Submit is rejected, workers run until pending == 0.
	stateDraining
	// stateStopped: workers exit as soon as they observe the state;
	// unexecuted tasks are abandoned.
	stateStopped
)

// spinRounds is how many failed full scans (local pop + injection lane +
// one randomized victim sweep) a worker pays for, paced by its Backoff,
// before it enrolls as an idle waiter and parks. Short waits — a sibling
// about to spawn, a steal lost to a CAS race — resolve inside the spin
// budget; droughts put the worker to sleep instead of burning a core.
const spinRounds = 8

// WorkStealing is a work-stealing task executor. Each worker owns a
// Chase–Lev deque: tasks spawned by a running task (Worker.Spawn) push to
// the spawning worker's bottom and pop back LIFO, external Submit calls
// land in a shared lock-free injection lane, and a worker that runs dry
// steals FIFO from the top of randomly chosen victims. Idle workers
// spin-then-park on permits; Shutdown drains or abandons (see Shutdown).
//
// The handler runs tasks one at a time per worker and must not panic; a
// task that needs to fork submits children via the Worker it was handed.
//
// WorkStealing satisfies cds.Pool.
// injectLane is what the pool needs from its injection queue: the
// unbounded enqueue, the non-blocking dequeue every worker polls, and the
// O(1) emptiness probe the pre-park re-check runs. queue.MS and
// queue.LCRQ both satisfy it; WithInjectionLane picks one.
type injectLane[T any] interface {
	Enqueue(T)
	TryDequeue() (T, bool)
	Empty() bool
}

// newLane builds the configured injection lane.
func newLane[T any](l Lane) injectLane[T] {
	if l == LaneSegmented {
		return queue.NewLCRQ[T]()
	}
	return queue.NewMS[T]()
}

type WorkStealing[T any] struct {
	handler func(w *Worker[T], t T)
	workers []*Worker[T]
	inject  injectLane[T]

	idle  park.Lot
	nidle atomic.Int64

	// pending counts accepted-but-not-yet-executed tasks (Submit and
	// Spawn increment, task completion decrements). Draining ends when it
	// reaches zero; it cannot rebound there, since in the draining state
	// new tasks can only be spawned by a running task, which pending
	// still counts.
	pending atomic.Int64
	state   atomic.Int32

	ctx     context.Context // cancelled on stop: unparks abandoned workers
	cancel  context.CancelFunc
	drained chan struct{} // closed when draining reaches pending == 0
	stopC   chan struct{} // closed once workers have been told to exit
	drainMu sync.Once
	stopMu  sync.Once
	wg      sync.WaitGroup

	submitted atomic.Uint64
}

var _ cds.Pool[int] = (*WorkStealing[int])(nil)

// Worker is one executor goroutine's identity, handed to the handler with
// every task. Its methods are valid only from inside the handler (the
// deque's owner end is single-threaded by construction).
type Worker[T any] struct {
	pool *WorkStealing[T]
	id   int
	dq   *deque.ChaseLev[T]
	rng  *xrand.Rand

	localHits  atomic.Uint64
	injectHits atomic.Uint64
	steals     atomic.Uint64
	parks      atomic.Uint64
	spawned    atomic.Uint64
}

// ID reports the worker's index in [0, workers).
func (w *Worker[T]) ID() int { return w.id }

// Spawn schedules t on the spawning worker's own deque — the fork path:
// the child is picked back up LIFO (cache-warm) unless a hungry sibling
// steals it first. Valid only from inside the handler, on the Worker the
// handler was invoked with.
func (w *Worker[T]) Spawn(t T) {
	p := w.pool
	// pending must rise before the child becomes stealable: a thief could
	// otherwise run it to completion and drive pending to zero while the
	// parent's accounting is still in flight, ending a drain early. The
	// spawn counter is worker-local, keeping the fork fast path at one
	// shared RMW.
	p.pending.Add(1)
	w.spawned.Add(1)
	w.dq.PushBottom(t)
	p.signal()
}

// NewWorkStealing returns a running executor whose workers invoke handler
// for every task. Configure worker count and deque capacity with Options;
// the default is one worker per GOMAXPROCS.
func NewWorkStealing[T any](handler func(w *Worker[T], t T), opts ...Option) *WorkStealing[T] {
	o := buildOptions(opts)
	p := &WorkStealing[T]{
		handler: handler,
		inject:  newLane[T](o.lane),
		drained: make(chan struct{}),
		stopC:   make(chan struct{}),
	}
	p.ctx, p.cancel = context.WithCancel(context.Background())
	p.workers = make([]*Worker[T], o.workers)
	for i := range p.workers {
		p.workers[i] = &Worker[T]{
			pool: p,
			id:   i,
			dq:   deque.NewChaseLev[T](o.dequeCap),
			rng:  xrand.New(uint64(i)*0x9e3779b97f4a7c15 + 1),
		}
	}
	for _, w := range p.workers {
		p.wg.Add(1)
		go p.runWorker(w)
	}
	return p
}

// Workers reports the worker count.
func (p *WorkStealing[T]) Workers() int { return len(p.workers) }

// Pending reports the number of accepted tasks that have not finished
// executing (see Stack.Len caveats in the root package: exact only in
// quiescent states).
func (p *WorkStealing[T]) Pending() int { return int(p.pending.Load()) }

// Submit hands t to the pool through the injection lane. It reports false
// — and t will never run — once Shutdown has begun.
func (p *WorkStealing[T]) Submit(t T) bool {
	// Count before the state check: a Shutdown that flips to draining
	// after this increment observes pending > 0 and waits for the
	// enqueue below, so an accepted task is never abandoned by a drain.
	p.pending.Add(1)
	if p.state.Load() != stateRunning {
		p.taskDone()
		return false
	}
	p.inject.Enqueue(t)
	p.submitted.Add(1)
	p.signal()
	return true
}

// signal wakes one parked worker if any worker is (or is about to be)
// parked. Producers enqueue before signalling and idle workers bump nidle
// before their pre-park re-check, so a task published here is seen either
// by the re-check or by the wakeup — never by neither.
func (p *WorkStealing[T]) signal() {
	if p.nidle.Load() > 0 {
		p.idle.WakeOne()
	}
}

// ErrAbandoned is returned by Shutdown calls that observe a pool another
// Shutdown already stopped without completing its drain: accepted tasks
// were abandoned, so no caller may treat the termination as the
// every-task-ran join.
var ErrAbandoned = errors.New("pool: shutdown abandoned accepted tasks")

// Shutdown stops the pool with drain semantics: further Submits are
// rejected, the workers run every already-accepted task (including tasks
// those tasks spawn), and once the pool is empty the workers exit. If ctx
// is cancelled before the drain completes, the remaining tasks are
// abandoned, the workers exit without running them, and ctx's error is
// returned. Shutdown is idempotent; concurrent calls all block until the
// pool has terminated, and a nil return — from any of them — always
// means the drain completed (a call that finds the pool already stopped
// short of its drain returns ErrAbandoned instead).
func (p *WorkStealing[T]) Shutdown(ctx context.Context) error {
	p.state.CompareAndSwap(stateRunning, stateDraining)
	if p.pending.Load() == 0 {
		p.finishDrain()
	}
	// A drain that is already complete wins over a cancelled ctx: nothing
	// was abandoned, so the caller gets the nil of a clean drain.
	select {
	case <-p.drained:
		p.stop()
		p.wg.Wait()
		return nil
	default:
	}
	select {
	case <-p.drained:
		p.stop()
		p.wg.Wait()
		return nil
	case <-p.stopC:
		// Another Shutdown already stopped the pool; report whether its
		// drain had completed or its tasks were abandoned.
		p.wg.Wait()
		select {
		case <-p.drained:
			return nil
		default:
			return ErrAbandoned
		}
	case <-ctx.Done():
		p.stop()
		p.wg.Wait()
		return ctx.Err()
	}
}

// taskDone retires one pending task and completes the drain when the last
// one finishes under draining.
func (p *WorkStealing[T]) taskDone() {
	if p.pending.Add(-1) == 0 && p.state.Load() != stateRunning {
		p.finishDrain()
	}
}

// finishDrain publishes drain completion and wakes every parked worker so
// it can observe the exit condition.
func (p *WorkStealing[T]) finishDrain() {
	p.drainMu.Do(func() { close(p.drained) })
	p.idle.WakeAll()
}

// stop tells the workers to exit now, abandoning any tasks still queued.
func (p *WorkStealing[T]) stop() {
	p.stopMu.Do(func() {
		p.state.Store(stateStopped)
		close(p.stopC)
		p.cancel()       // unparks workers blocked in Park
		p.idle.WakeAll() // and any racing toward the park
	})
}

// shouldExit reports whether a worker observing no work may terminate.
func (p *WorkStealing[T]) shouldExit() bool {
	switch p.state.Load() {
	case stateStopped:
		return true
	case stateDraining:
		return p.pending.Load() == 0
	}
	return false
}

// runWorker is the worker loop: pop local, drain the injection lane,
// steal, and otherwise spin-then-park.
func (p *WorkStealing[T]) runWorker(w *Worker[T]) {
	defer p.wg.Done()
	var b contend.Backoff
	rounds := 0
	for {
		if p.state.Load() == stateStopped {
			return
		}
		if t, ok := p.next(w); ok {
			rounds = 0
			b.Reset()
			p.handler(w, t)
			p.taskDone()
			continue
		}
		if p.shouldExit() {
			return
		}
		rounds++
		if rounds < spinRounds {
			b.Pause()
			continue
		}
		p.parkIdle(w)
		rounds = 0
		b.Reset()
	}
}

// next finds the worker's next task: its own bottom end first, then the
// injection lane, then one randomized sweep over the other workers' tops.
func (p *WorkStealing[T]) next(w *Worker[T]) (t T, ok bool) {
	if t, ok = w.dq.TryPopBottom(); ok {
		w.localHits.Add(1)
		return t, true
	}
	if t, ok = p.inject.TryDequeue(); ok {
		w.injectHits.Add(1)
		return t, true
	}
	n := len(p.workers)
	off := w.rng.Intn(n)
	for i := 0; i < n; i++ {
		v := p.workers[(off+i)%n]
		if v == w {
			continue
		}
		if t, ok = v.dq.TryPopTop(); ok {
			w.steals.Add(1)
			return t, true
		}
	}
	return t, false
}

// hasWork reports whether any task source might be non-empty — the
// pre-park re-check. It may err toward true (a stale Len or a task
// another worker is about to claim), which only costs a wasted scan.
func (p *WorkStealing[T]) hasWork() bool {
	if !p.inject.Empty() {
		return true
	}
	for _, v := range p.workers {
		if v.dq.Len() > 0 {
			return true
		}
	}
	return false
}

// parkIdle blocks the worker until new work may be available or the pool
// terminates, using the enrol → re-check → park discipline: the permit is
// published before the final source scan, so a producer that missed the
// nidle increment is seen by the scan and one that saw it delivers a
// wakeup to the enrolled permit.
func (p *WorkStealing[T]) parkIdle(w *Worker[T]) {
	p.nidle.Add(1)
	pm := park.New()
	p.idle.Enroll(pm)
	if p.hasWork() || p.shouldExit() {
		p.nidle.Add(-1)
		if !p.idle.Withdraw(pm) {
			// A waker already picked us: our token is in flight and the
			// condition it signals is still unserved — pass it on.
			p.idle.WakeOne()
		}
		return
	}
	w.parks.Add(1)
	err := pm.Park(p.ctx)
	p.nidle.Add(-1)
	if !p.idle.Withdraw(pm) && err != nil {
		// Cancelled while a wakeup was in flight: forward it so the task
		// that triggered it is not stranded with every other worker asleep.
		p.idle.WakeOne()
	}
}

// Stats is a snapshot of the executor's scheduling counters.
type Stats struct {
	// Submitted and Spawned count accepted external and internal tasks.
	Submitted, Spawned uint64
	// LocalHits, InjectHits and Steals classify where executed tasks were
	// found: the worker's own deque, the injection lane, or a victim's.
	LocalHits, InjectHits, Steals uint64
	// Parks counts worker park episodes (idle blocking, not spinning).
	Parks uint64
}

// Executed reports the total tasks run so far.
func (s Stats) Executed() uint64 { return s.LocalHits + s.InjectHits + s.Steals }

// Stats sums the per-worker counters. Counters are monotone; under
// concurrency the snapshot is approximate in the usual Len sense.
func (p *WorkStealing[T]) Stats() Stats {
	st := Stats{
		Submitted: p.submitted.Load(),
	}
	for _, w := range p.workers {
		st.Spawned += w.spawned.Load()
		st.LocalHits += w.localHits.Load()
		st.InjectHits += w.injectHits.Load()
		st.Steals += w.steals.Load()
		st.Parks += w.parks.Load()
	}
	return st
}
