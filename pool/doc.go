// Package pool provides task-pool executors — the workload that, per the
// survey's pools discussion, motivates relaxed-order structures in the
// first place: a producer–consumer pool does not promise FIFO between
// independent tasks, and that freedom is exactly what lets work stealing
// replace a single contended queue with per-worker deques.
//
// WorkStealing is the executor: every worker owns a deque.ChaseLev and
// runs tasks from its bottom end in LIFO order (cache-warm, CAS-free fast
// path), while workers that run dry first drain a shared lock-free
// injection lane (queue.MS, fed by external Submit calls) and then steal
// FIFO from the top of randomly chosen victims' deques, pacing failed
// scans with contend.Backoff. Tasks spawned from inside a running task
// (Worker.Spawn) go straight to the spawning worker's own deque — the
// fork/join fast path Cederman et al. describe for lock-free task pools.
//
// Idle workers spin briefly and then park on internal/park permits. The
// parking protocol is the package-standard enrol → re-check → park: a
// worker publishes its permit in the idle set, re-checks every task
// source (closing the lost-wakeup window against a concurrent Submit or
// Spawn), and only then sleeps; producers wake at most one idle worker
// per task. Shutdown is context-based with drain-vs-abandon semantics:
// Shutdown rejects further Submits and waits until every accepted task
// has run, unless its context is cancelled first, in which case the
// remaining tasks are abandoned. Task conservation — every accepted task
// runs exactly once, including across shutdown — is verified by the
// lincheck pool model and by the conservation tests in this package.
//
// Progress: task execution is lock-free end to end (deque pops, steals
// and injection-lane dequeues are all lock-free); only the idle path
// blocks, by design. The executor satisfies the root cds.Pool contract.
package pool
