package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// task identifies one unit of work in the conservation tests: [lo, hi) is
// a range of leaf indices; a task over more than one leaf forks.
type task struct {
	lo, hi int
}

// TestSubmitConservation: every externally submitted task runs exactly
// once through a clean drain.
func TestSubmitConservation(t *testing.T) {
	const n = 10000
	var executed [n]atomic.Int32
	p := NewWorkStealing(func(_ *Worker[task], tk task) {
		executed[tk.lo].Add(1)
	}, WithWorkers(4))
	for i := 0; i < n; i++ {
		if !p.Submit(task{lo: i, hi: i + 1}) {
			t.Fatalf("Submit(%d) rejected before shutdown", i)
		}
	}
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for i := range executed {
		if c := executed[i].Load(); c != 1 {
			t.Fatalf("task %d executed %d times, want 1", i, c)
		}
	}
	st := p.Stats()
	if st.Executed() != n || st.Submitted != n {
		t.Fatalf("stats executed=%d submitted=%d, want %d", st.Executed(), st.Submitted, n)
	}
}

// TestForkJoinConservation: a task tree built with Worker.Spawn executes
// every leaf exactly once, with Shutdown providing the join.
func TestForkJoinConservation(t *testing.T) {
	const leaves = 1 << 13
	var executed [leaves]atomic.Int32
	p := NewWorkStealing(func(w *Worker[task], tk task) {
		if tk.hi-tk.lo == 1 {
			executed[tk.lo].Add(1)
			return
		}
		mid := (tk.lo + tk.hi) / 2
		w.Spawn(task{lo: tk.lo, hi: mid})
		w.Spawn(task{lo: mid, hi: tk.hi})
	}, WithWorkers(4))
	p.Submit(task{lo: 0, hi: leaves})
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for i := range executed {
		if c := executed[i].Load(); c != 1 {
			t.Fatalf("leaf %d executed %d times, want 1", i, c)
		}
	}
	if st := p.Stats(); st.Spawned == 0 {
		t.Fatal("fork-join ran without a single Spawn")
	}
}

// TestShutdownDrainUnderConcurrentSubmit: with producers racing Shutdown,
// every accepted task runs exactly once and every rejected one not at all.
func TestShutdownDrainUnderConcurrentSubmit(t *testing.T) {
	const producers, perProducer = 4, 2000
	var executed [producers * perProducer]atomic.Int32
	var accepted [producers * perProducer]atomic.Bool
	p := NewWorkStealing(func(_ *Worker[task], tk task) {
		executed[tk.lo].Add(1)
	}, WithWorkers(3))

	var wg sync.WaitGroup
	start := make(chan struct{})
	for pr := 0; pr < producers; pr++ {
		wg.Add(1)
		go func(pr int) {
			defer wg.Done()
			<-start
			for i := 0; i < perProducer; i++ {
				id := pr*perProducer + i
				if p.Submit(task{lo: id, hi: id + 1}) {
					accepted[id].Store(true)
				}
			}
		}(pr)
	}
	close(start)
	runtime.Gosched() // let some submissions land before the drain starts
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
	for i := range executed {
		want := int32(0)
		if accepted[i].Load() {
			want = 1
		}
		if c := executed[i].Load(); c != want {
			t.Fatalf("task %d executed %d times, want %d (accepted=%v)",
				i, c, want, accepted[i].Load())
		}
	}
}

// TestShutdownAbandon: a cancelled Shutdown context abandons queued tasks
// — none run twice, the in-flight tasks complete, the pool terminates,
// and later Shutdowns report the incomplete drain as ErrAbandoned.
func TestShutdownAbandon(t *testing.T) {
	const workers = 2
	const n = 64
	var executed [n]atomic.Int32
	var entered atomic.Int32
	gate := make(chan struct{})
	p := NewWorkStealing(func(_ *Worker[task], tk task) {
		if tk.lo < workers {
			entered.Add(1)
			<-gate // hold every worker until the test cancels
		}
		executed[tk.lo].Add(1)
	}, WithWorkers(workers))
	// Block both workers first, so the remaining submissions can only be
	// abandoned — the drain can never complete before the cancel.
	for i := 0; i < workers; i++ {
		p.Submit(task{lo: i, hi: i + 1})
	}
	deadline := time.Now().Add(5 * time.Second)
	for entered.Load() < workers {
		if time.Now().After(deadline) {
			t.Fatal("workers never picked up the gated tasks")
		}
		time.Sleep(time.Millisecond)
	}
	for i := workers; i < n; i++ {
		p.Submit(task{lo: i, hi: i + 1})
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
		// Give Shutdown time to observe the cancel and stop the pool
		// before the workers are released; a worker freed earlier would
		// still be in the draining state and legally run backlog tasks.
		time.Sleep(20 * time.Millisecond)
		close(gate)
	}()
	if err := p.Shutdown(ctx); err != context.Canceled {
		t.Fatalf("Shutdown = %v, want context.Canceled", err)
	}
	for i := range executed {
		if c := executed[i].Load(); c > 1 {
			t.Fatalf("task %d executed %d times after abandon, want <= 1", i, c)
		}
	}
	if p.Submit(task{lo: 0, hi: 1}) {
		t.Fatal("Submit accepted after abandon")
	}
	// A later Shutdown must not report the abandoned stop as a clean
	// drain: nil is reserved for "every accepted task ran".
	if err := p.Shutdown(context.Background()); err != ErrAbandoned {
		t.Fatalf("Shutdown after abandon = %v, want ErrAbandoned", err)
	}
}

// TestIdleParkAndRewake: workers that have parked idle (the permits path,
// not the spin path) are woken by a later Submit and still run it; an
// abandon-shutdown then unparks them via context cancellation.
func TestIdleParkAndRewake(t *testing.T) {
	var ran atomic.Int32
	p := NewWorkStealing(func(_ *Worker[task], _ task) {
		ran.Add(1)
	}, WithWorkers(4))

	// Wait until at least one worker has actually parked.
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Parks == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no worker parked while idle")
		}
		time.Sleep(time.Millisecond)
	}
	p.Submit(task{})
	for ran.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("submitted task never ran after parking")
		}
		time.Sleep(time.Millisecond)
	}

	// Park again, then shut down with a cancelled context: the parked
	// workers must be unparked by the pool context and exit.
	for p.Stats().Parks < 2 {
		if time.Now().After(deadline) {
			t.Fatal("workers did not re-park")
		}
		time.Sleep(time.Millisecond)
	}
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestShutdownIdempotent: concurrent and repeated Shutdowns all return,
// and a completed drain reports nil even on a cancelled context.
func TestShutdownIdempotent(t *testing.T) {
	p := NewWorkStealing(func(_ *Worker[task], _ task) {}, WithWorkers(2))
	p.Submit(task{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Shutdown(context.Background()); err != nil {
				t.Errorf("concurrent Shutdown: %v", err)
			}
		}()
	}
	wg.Wait()
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Shutdown(cancelled); err != nil {
		t.Fatalf("Shutdown after drain = %v, want nil (drain already complete)", err)
	}
}

// TestStatsClassifySources: a fork-join run classifies every execution as
// a local hit, injection-lane hit, or steal — nothing uncounted.
func TestStatsClassifySources(t *testing.T) {
	const leaves = 1 << 12
	p := NewWorkStealing(func(w *Worker[task], tk task) {
		if tk.hi-tk.lo == 1 {
			return
		}
		mid := (tk.lo + tk.hi) / 2
		w.Spawn(task{lo: tk.lo, hi: mid})
		w.Spawn(task{lo: mid, hi: tk.hi})
	}, WithWorkers(4))
	p.Submit(task{lo: 0, hi: leaves})
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	st := p.Stats()
	total := uint64(2*leaves - 1) // full binary tree over the leaf range
	if st.Executed() != total {
		t.Fatalf("executed %d, want %d (local=%d inject=%d steals=%d)",
			st.Executed(), total, st.LocalHits, st.InjectHits, st.Steals)
	}
	if st.Submitted+st.Spawned != total {
		t.Fatalf("accepted %d, want %d", st.Submitted+st.Spawned, total)
	}
}

// TestSubmitConservationSegmentedLane re-runs submit conservation with the
// injection lane on the segmented queue: the lane swap must be invisible
// to the exactly-once guarantee and to the inject-hit accounting.
func TestSubmitConservationSegmentedLane(t *testing.T) {
	const n = 10000
	var executed [n]atomic.Int32
	p := NewWorkStealing(func(_ *Worker[task], tk task) {
		executed[tk.lo].Add(1)
	}, WithWorkers(4), WithInjectionLane(LaneSegmented))
	for i := 0; i < n; i++ {
		if !p.Submit(task{lo: i, hi: i + 1}) {
			t.Fatalf("Submit(%d) rejected before shutdown", i)
		}
	}
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for i := range executed {
		if c := executed[i].Load(); c != 1 {
			t.Fatalf("task %d executed %d times, want 1", i, c)
		}
	}
	st := p.Stats()
	if st.Executed() != n || st.Submitted != n {
		t.Fatalf("stats executed=%d submitted=%d, want %d", st.Executed(), st.Submitted, n)
	}
	if st.InjectHits == 0 {
		t.Fatal("segmented lane never served a task")
	}
}

// TestForkJoinSegmentedLane drives the spawn/steal path with the
// segmented lane underneath, exercising lane dequeues racing worker
// steals.
func TestForkJoinSegmentedLane(t *testing.T) {
	const leaves = 1 << 12
	var executed [leaves]atomic.Int32
	p := NewWorkStealing(func(w *Worker[task], tk task) {
		if tk.hi-tk.lo == 1 {
			executed[tk.lo].Add(1)
			return
		}
		mid := (tk.lo + tk.hi) / 2
		w.Spawn(task{lo: tk.lo, hi: mid})
		w.Spawn(task{lo: mid, hi: tk.hi})
	}, WithWorkers(4), WithInjectionLane(LaneSegmented))
	p.Submit(task{lo: 0, hi: leaves})
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for i := range executed {
		if c := executed[i].Load(); c != 1 {
			t.Fatalf("leaf %d executed %d times, want 1", i, c)
		}
	}
}
