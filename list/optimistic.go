package list

import (
	"cmp"
	"sync"
	"sync/atomic"
)

// Optimistic is the optimistic-synchronization list: traversal takes no
// locks at all; an operation locks only its (pred, curr) window and then
// validates — by re-traversing from the head — that pred is still reachable
// and still points to curr. If validation fails the operation retries.
// Traffic on the prefix of the list becomes read-only, which removes the
// lock convoy that throttles the fine-grained list; the price is the
// second traversal and retries under heavy mutation.
//
// Unlinked nodes are not recycled (the GC reclaims them once unreachable),
// which is what makes wandering onto a stale node during unlocked traversal
// memory-safe.
//
// Progress: blocking (locks), with optimistic retries.
type Optimistic[K cmp.Ordered] struct {
	head *optNode[K] // sentinel
}

type optNode[K cmp.Ordered] struct {
	mu  sync.Mutex
	key K
	// isSentinel marks the head node, which must compare before every key.
	isSentinel bool
	next       atomic.Pointer[optNode[K]] // atomic: read by unlocked traversals
}

// NewOptimistic returns an empty optimistically synchronized sorted-list set.
func NewOptimistic[K cmp.Ordered]() *Optimistic[K] {
	return &Optimistic[K]{head: &optNode[K]{isSentinel: true}}
}

// locate returns the unlocked (pred, curr) window for k:
// pred.key < k <= curr.key with curr possibly nil.
func (s *Optimistic[K]) locate(k K) (pred, curr *optNode[K]) {
	pred = s.head
	curr = pred.next.Load()
	for curr != nil && curr.key < k {
		pred = curr
		curr = curr.next.Load()
	}
	return pred, curr
}

// validate re-traverses from the head and reports whether pred is still
// reachable and still linked to curr. Caller holds pred's (and curr's)
// locks, so a successful validation pins the window.
func (s *Optimistic[K]) validate(pred, curr *optNode[K]) bool {
	node := s.head
	for node != nil {
		if node == pred {
			return pred.next.Load() == curr
		}
		// Stop once we passed pred's key position (pred unreachable).
		if !node.isSentinel && pred != nil && !pred.isSentinel && node.key > pred.key {
			return false
		}
		node = node.next.Load()
	}
	return false
}

// Add inserts k, reporting false if it was already present.
func (s *Optimistic[K]) Add(k K) bool {
	for {
		pred, curr := s.locate(k)
		pred.mu.Lock()
		if curr != nil {
			curr.mu.Lock()
		}
		if s.validate(pred, curr) {
			if curr != nil && curr.key == k {
				curr.mu.Unlock()
				pred.mu.Unlock()
				return false
			}
			n := &optNode[K]{key: k}
			n.next.Store(curr)
			pred.next.Store(n)
			if curr != nil {
				curr.mu.Unlock()
			}
			pred.mu.Unlock()
			return true
		}
		if curr != nil {
			curr.mu.Unlock()
		}
		pred.mu.Unlock()
	}
}

// Remove deletes k, reporting false if it was absent.
func (s *Optimistic[K]) Remove(k K) bool {
	for {
		pred, curr := s.locate(k)
		pred.mu.Lock()
		if curr != nil {
			curr.mu.Lock()
		}
		if s.validate(pred, curr) {
			if curr == nil || curr.key != k {
				if curr != nil {
					curr.mu.Unlock()
				}
				pred.mu.Unlock()
				return false
			}
			pred.next.Store(curr.next.Load())
			curr.mu.Unlock()
			pred.mu.Unlock()
			return true
		}
		if curr != nil {
			curr.mu.Unlock()
		}
		pred.mu.Unlock()
	}
}

// Contains reports whether k is present. Like the mutating operations it
// must lock and validate: without validation a key sitting in an unlinked
// node could be reported present (optimistic lists, unlike lazy ones, have
// no marks to check).
func (s *Optimistic[K]) Contains(k K) bool {
	for {
		pred, curr := s.locate(k)
		pred.mu.Lock()
		if curr != nil {
			curr.mu.Lock()
		}
		ok := s.validate(pred, curr)
		found := ok && curr != nil && curr.key == k
		if curr != nil {
			curr.mu.Unlock()
		}
		pred.mu.Unlock()
		if ok {
			return found
		}
	}
}

// Len counts the keys via unlocked traversal (quiescent-exact).
func (s *Optimistic[K]) Len() int {
	n := 0
	for node := s.head.next.Load(); node != nil; node = node.next.Load() {
		n++
	}
	return n
}
