package list

import (
	"cmp"
	"sync"
)

// Fine is the fine-grained (hand-over-hand / lock-coupling) list: every
// node carries its own lock, and traversal holds at most two locks at a
// time, acquiring the next before releasing the previous. Disjoint regions
// of the list can be updated in parallel, but every operation still locks
// its way through the prefix, so operations pile up behind slow traversals
// near the head — the survey's example that finer granularity alone is not
// enough.
//
// Progress: blocking; deadlock-free because locks are acquired in list
// order (which is key order).
type Fine[K cmp.Ordered] struct {
	head *fineNode[K] // sentinel
}

type fineNode[K cmp.Ordered] struct {
	mu   sync.Mutex
	key  K
	next *fineNode[K] // guarded by mu of the node that owns the pointer
}

// NewFine returns an empty hand-over-hand locked sorted-list set.
func NewFine[K cmp.Ordered]() *Fine[K] {
	return &Fine[K]{head: &fineNode[K]{}}
}

// locate walks with lock coupling until curr is the first node with
// curr.key >= k (or nil). It returns with pred locked and, when non-nil,
// curr locked; the caller must unlock both.
func (s *Fine[K]) locate(k K) (pred, curr *fineNode[K]) {
	pred = s.head
	pred.mu.Lock()
	curr = pred.next
	if curr != nil {
		curr.mu.Lock()
	}
	for curr != nil && curr.key < k {
		pred.mu.Unlock()
		pred = curr
		curr = curr.next
		if curr != nil {
			curr.mu.Lock()
		}
	}
	return pred, curr
}

// Add inserts k, reporting false if it was already present.
func (s *Fine[K]) Add(k K) bool {
	pred, curr := s.locate(k)
	defer pred.mu.Unlock()
	if curr != nil {
		defer curr.mu.Unlock()
		if curr.key == k {
			return false
		}
	}
	pred.next = &fineNode[K]{key: k, next: curr}
	return true
}

// Remove deletes k, reporting false if it was absent.
func (s *Fine[K]) Remove(k K) bool {
	pred, curr := s.locate(k)
	defer pred.mu.Unlock()
	if curr == nil {
		return false
	}
	defer curr.mu.Unlock()
	if curr.key != k {
		return false
	}
	pred.next = curr.next
	return true
}

// Contains reports whether k is present.
func (s *Fine[K]) Contains(k K) bool {
	pred, curr := s.locate(k)
	pred.mu.Unlock()
	if curr == nil {
		return false
	}
	defer curr.mu.Unlock()
	return curr.key == k
}

// Len counts the keys with a hand-over-hand traversal.
func (s *Fine[K]) Len() int {
	n := 0
	pred := s.head
	pred.mu.Lock()
	curr := pred.next
	if curr != nil {
		curr.mu.Lock()
	}
	for curr != nil {
		n++
		pred.mu.Unlock()
		pred = curr
		curr = curr.next
		if curr != nil {
			curr.mu.Lock()
		}
	}
	pred.mu.Unlock()
	return n
}
