package list

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	cds "github.com/cds-suite/cds"
	"github.com/cds-suite/cds/internal/xrand"
)

func implementations() []struct {
	name string
	mk   func() cds.Set[int]
} {
	return []struct {
		name string
		mk   func() cds.Set[int]
	}{
		{name: "Coarse", mk: func() cds.Set[int] { return NewCoarse[int]() }},
		{name: "Fine", mk: func() cds.Set[int] { return NewFine[int]() }},
		{name: "Optimistic", mk: func() cds.Set[int] { return NewOptimistic[int]() }},
		{name: "Lazy", mk: func() cds.Set[int] { return NewLazy[int]() }},
		{name: "Harris", mk: func() cds.Set[int] { return NewHarris[int]() }},
	}
}

func TestSequentialSetSemantics(t *testing.T) {
	for _, tt := range implementations() {
		t.Run(tt.name, func(t *testing.T) {
			s := tt.mk()
			if s.Contains(5) {
				t.Fatal("empty set contains 5")
			}
			if s.Remove(5) {
				t.Fatal("removing from empty set succeeded")
			}
			if !s.Add(5) {
				t.Fatal("first Add(5) failed")
			}
			if s.Add(5) {
				t.Fatal("duplicate Add(5) succeeded")
			}
			if !s.Contains(5) {
				t.Fatal("set does not contain added 5")
			}
			// Insert around it to exercise ordering paths.
			for _, k := range []int{3, 9, 1, 7, 5} {
				want := k != 5
				if got := s.Add(k); got != want {
					t.Fatalf("Add(%d) = %v, want %v", k, got, want)
				}
			}
			if got := s.Len(); got != 5 {
				t.Fatalf("Len = %d, want 5", got)
			}
			for _, k := range []int{1, 3, 5, 7, 9} {
				if !s.Contains(k) {
					t.Fatalf("missing key %d", k)
				}
			}
			for _, k := range []int{0, 2, 4, 6, 8, 10} {
				if s.Contains(k) {
					t.Fatalf("phantom key %d", k)
				}
			}
			if !s.Remove(5) || s.Remove(5) {
				t.Fatal("Remove(5) semantics wrong")
			}
			if s.Contains(5) {
				t.Fatal("removed key still present")
			}
			if got := s.Len(); got != 4 {
				t.Fatalf("Len = %d, want 4", got)
			}
		})
	}
}

func TestSetPropertyMatchesModel(t *testing.T) {
	for _, tt := range implementations() {
		t.Run(tt.name, func(t *testing.T) {
			f := func(ops []int8) bool {
				s := tt.mk()
				model := make(map[int]bool)
				for _, raw := range ops {
					k := int(raw % 16) // small key space → collisions
					switch {
					case raw%3 == 0:
						if s.Add(k) == model[k] {
							return false
						}
						model[k] = true
					case raw%3 == 1 || raw%3 == -1:
						if s.Remove(k) != model[k] {
							return false
						}
						delete(model, k)
					default:
						if s.Contains(k) != model[k] {
							return false
						}
					}
				}
				return s.Len() == len(model)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDisjointKeysConcurrent has each worker operate on a private residue
// class of keys; since workers never share keys, each worker's final local
// model must match the set's final content for its keys.
func TestDisjointKeysConcurrent(t *testing.T) {
	for _, tt := range implementations() {
		t.Run(tt.name, func(t *testing.T) {
			s := tt.mk()
			workers := runtime.GOMAXPROCS(0)
			if workers > 8 {
				workers = 8
			}
			const opsPerWorker = 4000
			models := make([]map[int]bool, workers)

			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := xrand.New(uint64(w) + 1)
					model := make(map[int]bool)
					for i := 0; i < opsPerWorker; i++ {
						k := w + workers*rng.Intn(64) // private residue class
						switch rng.Intn(3) {
						case 0:
							if s.Add(k) == model[k] {
								t.Errorf("worker %d: Add(%d) inconsistent with model", w, k)
								return
							}
							model[k] = true
						case 1:
							if s.Remove(k) != model[k] {
								t.Errorf("worker %d: Remove(%d) inconsistent with model", w, k)
								return
							}
							delete(model, k)
						default:
							if s.Contains(k) != model[k] {
								t.Errorf("worker %d: Contains(%d) inconsistent with model", w, k)
								return
							}
						}
					}
					models[w] = model
				}(w)
			}
			wg.Wait()
			if t.Failed() {
				return
			}

			total := 0
			for w, model := range models {
				total += len(model)
				for k := range model {
					if !s.Contains(k) {
						t.Fatalf("worker %d: key %d lost", w, k)
					}
				}
			}
			if got := s.Len(); got != total {
				t.Fatalf("Len = %d, want %d", got, total)
			}
		})
	}
}

// TestContendedKeysConcurrent hammers a tiny shared key space from many
// goroutines and then checks structural invariants: sorted strictly
// increasing keys and Len consistency.
func TestContendedKeysConcurrent(t *testing.T) {
	for _, tt := range implementations() {
		t.Run(tt.name, func(t *testing.T) {
			s := tt.mk()
			workers := 2 * runtime.GOMAXPROCS(0)
			const opsPerWorker = 3000
			const keyRange = 8 // extreme contention

			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := xrand.New(uint64(w)*7919 + 13)
					for i := 0; i < opsPerWorker; i++ {
						k := rng.Intn(keyRange)
						switch rng.Intn(3) {
						case 0:
							s.Add(k)
						case 1:
							s.Remove(k)
						default:
							s.Contains(k)
						}
					}
				}(w)
			}
			wg.Wait()

			keys := collectKeys(t, tt.name, s)
			for i := 1; i < len(keys); i++ {
				if keys[i-1] >= keys[i] {
					t.Fatalf("keys not strictly sorted: %v", keys)
				}
			}
			for _, k := range keys {
				if k < 0 || k >= keyRange {
					t.Fatalf("alien key %d in set", k)
				}
				if !s.Contains(k) {
					t.Fatalf("listed key %d not Contains-visible", k)
				}
			}
			if got := s.Len(); got != len(keys) {
				t.Fatalf("Len = %d, traversal found %d", got, len(keys))
			}
		})
	}
}

// collectKeys snapshots the list contents in order using white-box access.
func collectKeys(t *testing.T, name string, s cds.Set[int]) []int {
	t.Helper()
	var keys []int
	switch v := s.(type) {
	case *Coarse[int]:
		for n := v.head.next; n != nil; n = n.next {
			keys = append(keys, n.key)
		}
	case *Fine[int]:
		for n := v.head.next; n != nil; n = n.next {
			keys = append(keys, n.key)
		}
	case *Optimistic[int]:
		for n := v.head.next.Load(); n != nil; n = n.next.Load() {
			keys = append(keys, n.key)
		}
	case *Lazy[int]:
		for n := v.head.next.Load(); n != nil; n = n.next.Load() {
			if !n.marked.Load() {
				keys = append(keys, n.key)
			}
		}
	case *Harris[int]:
		for n := v.head.ref.Load().next; n != nil; {
			ref := n.ref.Load()
			if !ref.marked {
				keys = append(keys, n.key)
			}
			n = ref.next
		}
	default:
		t.Fatalf("unknown implementation %s", name)
	}
	return keys
}

// TestAddRemoveChurn drives matched add/remove pairs per key so the set
// must end empty.
func TestAddRemoveChurn(t *testing.T) {
	for _, tt := range implementations() {
		t.Run(tt.name, func(t *testing.T) {
			s := tt.mk()
			workers := runtime.GOMAXPROCS(0)
			const pairs = 5000
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < pairs; i++ {
						k := w*pairs + i // unique key per iteration
						if !s.Add(k) {
							t.Errorf("Add(%d) of unique key failed", k)
							return
						}
						if !s.Remove(k) {
							t.Errorf("Remove(%d) of just-added key failed", k)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			if got := s.Len(); got != 0 {
				t.Fatalf("Len = %d after matched churn, want 0", got)
			}
		})
	}
}

func TestStringKeys(t *testing.T) {
	// The generic parameter must work for any ordered type, not just ints.
	sets := []cds.Set[string]{
		NewCoarse[string](),
		NewFine[string](),
		NewOptimistic[string](),
		NewLazy[string](),
		NewHarris[string](),
	}
	for _, s := range sets {
		for _, k := range []string{"pear", "apple", "quince", "banana"} {
			if !s.Add(k) {
				t.Fatalf("Add(%q) failed", k)
			}
		}
		if !s.Contains("apple") || s.Contains("cherry") {
			t.Fatal("string membership wrong")
		}
		if !s.Remove("pear") || s.Remove("pear") {
			t.Fatal("string removal wrong")
		}
		if got := s.Len(); got != 3 {
			t.Fatalf("Len = %d, want 3", got)
		}
	}
}
