// Package list implements the sorted linked-list set progression that the
// concurrent data structures literature uses to teach synchronization
// patterns (Herlihy & Shavit ch. 9, mirroring the survey's linked-list
// discussion): coarse-grained locking, fine-grained hand-over-hand
// locking, optimistic validation, lazy marking, and the Harris–Michael
// lock-free list.
//
// All five implement cds.Set[K] over ordered keys, so they are drop-in
// replaceable; experiment F5 regenerates the classic scalability
// progression (coarse < fine < optimistic < lazy ≤ lock-free).
//
// Every list is a sorted singly linked list with a head sentinel: the
// element nodes keep strictly increasing keys, which gives each operation a
// unique (pred, curr) window for its key and makes the validation-based
// algorithms possible.
//
// Progress guarantees: Coarse, Fine, Optimistic and Lazy are blocking
// (Lazy's Contains is wait-free — the payoff of logical deletion marks);
// Harris is lock-free, linearizing removals at the mark CAS and physical
// unlinking at the pred CAS. Harris accepts WithReclaim/WithRecycling:
// traversals hold hand-over-hand (pred, curr) hazards and the winning
// unlink CAS retires exactly once.
package list
