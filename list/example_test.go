package list_test

import (
	"fmt"
	"sync"

	"github.com/cds-suite/cds/list"
)

// All five list variants share the Set interface; Harris's list is the
// fully lock-free member of the progression.
func ExampleHarris() {
	s := list.NewHarris[int]()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 100; k++ {
				s.Add(k) // massive duplicate contention
			}
		}()
	}
	wg.Wait()

	fmt.Println(s.Len(), s.Contains(42), s.Contains(100))
	// Output: 100 true false
}

// The lazy list's Contains takes no locks at all — ideal for read-mostly
// membership sets.
func ExampleLazy() {
	s := list.NewLazy[string]()
	s.Add("alice")
	s.Add("bob")
	s.Remove("alice")
	fmt.Println(s.Contains("alice"), s.Contains("bob"))
	// Output: false true
}
