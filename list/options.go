package list

import "github.com/cds-suite/cds/reclaim"

// Option configures a list constructor (currently only Harris supports
// options; the lock-based lists retire nothing).
type Option func(*options)

type options struct {
	dom     reclaim.Domain
	recycle bool
}

// WithReclaim attaches a safe-memory-reclamation domain (reclaim.NewEBR,
// reclaim.NewHP) to the list: physically unlinked nodes are retired
// through it instead of being left to the garbage collector, and
// traversals protect their (pred, curr) window per the domain's protocol.
// The default is the zero-cost GC path.
func WithReclaim(d reclaim.Domain) Option {
	return func(o *options) { o.dom = d }
}

// WithRecycling additionally pools retired nodes for reuse, so inserts on
// the hot path reallocate from the pool instead of the heap. Requires a
// deferring WithReclaim domain (EBR or HP) and is ignored otherwise.
func WithRecycling() Option {
	return func(o *options) { o.recycle = true }
}

func buildOptions(opts []Option) options {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	if o.dom != nil && !o.dom.Deferred() {
		o.dom = nil // explicit GC domain: same as the default fast path
	}
	if o.dom == nil {
		o.recycle = false
	}
	return o
}
