package list

import (
	"cmp"
	"sync"

	cds "github.com/cds-suite/cds"
)

// Compile-time interface compliance checks.
var (
	_ cds.Set[int] = (*Coarse[int])(nil)
	_ cds.Set[int] = (*Fine[int])(nil)
	_ cds.Set[int] = (*Optimistic[int])(nil)
	_ cds.Set[int] = (*Lazy[int])(nil)
	_ cds.Set[int] = (*Harris[int])(nil)
)

// Coarse is the coarse-grained baseline: one mutex serialises every
// operation. Nothing scales, everything is simple and exact.
//
// Progress: blocking.
type Coarse[K cmp.Ordered] struct {
	mu   sync.Mutex
	head *coarseNode[K] // sentinel
	size int
}

type coarseNode[K cmp.Ordered] struct {
	key  K
	next *coarseNode[K]
}

// NewCoarse returns an empty coarse-locked sorted-list set.
func NewCoarse[K cmp.Ordered]() *Coarse[K] {
	return &Coarse[K]{head: &coarseNode[K]{}}
}

// Add inserts k, reporting false if it was already present.
func (s *Coarse[K]) Add(k K) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	pred := s.head
	curr := pred.next
	for curr != nil && curr.key < k {
		pred, curr = curr, curr.next
	}
	if curr != nil && curr.key == k {
		return false
	}
	pred.next = &coarseNode[K]{key: k, next: curr}
	s.size++
	return true
}

// Remove deletes k, reporting false if it was absent.
func (s *Coarse[K]) Remove(k K) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	pred := s.head
	curr := pred.next
	for curr != nil && curr.key < k {
		pred, curr = curr, curr.next
	}
	if curr == nil || curr.key != k {
		return false
	}
	pred.next = curr.next
	s.size--
	return true
}

// Contains reports whether k is present.
func (s *Coarse[K]) Contains(k K) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	curr := s.head.next
	for curr != nil && curr.key < k {
		curr = curr.next
	}
	return curr != nil && curr.key == k
}

// Len reports the number of keys.
func (s *Coarse[K]) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}
