package list

import (
	"cmp"
	"sync/atomic"

	"github.com/cds-suite/cds/contend"
	"github.com/cds-suite/cds/reclaim"
)

// Harris is the lock-free sorted list of Harris (DISC 2001) as refined by
// Michael (SPAA 2002): removal first marks the victim's next-reference
// (logical delete), then any operation that encounters a marked node snips
// it out while searching (physical delete, "helping"). No operation ever
// blocks: a failed CAS always means some other operation succeeded.
//
// Go cannot steal a mark bit from a pointer, so each node's successor is an
// immutable (next, marked) record swapped atomically as a unit — the exact
// semantics of Java's AtomicMarkableReference, at the cost of one small
// allocation per link mutation. Identity CAS on the record also subsumes
// the version check: marking a node replaces its record, so any CAS holding
// the stale record fails.
//
// Memory reclamation (WithReclaim): a node is retired by whichever
// operation wins the physical-unlink CAS — exactly once, because unlink
// replaces the unique predecessor record naming the node, and any other
// candidate's CAS holds a stale record and fails. Under HP the traversal
// follows Michael's hazard discipline: slot 0 protects pred, slot 1
// protects curr, and each advance revalidates that pred's record is
// unchanged (which proves curr was not yet unlinked, hence not yet
// retired, when the publication landed); a failed revalidation restarts
// from the head. The ref records themselves are never recycled, so they
// stay safe to read from stale snapshots. With WithRecycling, retired
// nodes are pooled and reused once the domain releases them.
//
// Linearization points: Add at the successful pred-link CAS; Remove at the
// successful marking CAS; Contains at its final ref load.
//
// Progress: Add/Remove lock-free; Contains wait-free (bounded by list
// length) under GC and EBR; under HP Contains shares the helping traversal
// and is lock-free.
type Harris[K cmp.Ordered] struct {
	head  *harrisNode[K] // sentinel
	mem   *reclaim.Pool
	nodes *reclaim.Recycler[harrisNode[K]]
	size  atomic.Int64 // maintained only when recycling (Len cannot traverse reused nodes)
}

type harrisNode[K cmp.Ordered] struct {
	key K
	ref atomic.Pointer[harrisRef[K]]
}

// harrisRef is an immutable (successor, mark) pair.
type harrisRef[K cmp.Ordered] struct {
	next   *harrisNode[K]
	marked bool
}

// NewHarris returns an empty lock-free sorted-list set. See WithReclaim
// and WithRecycling for the memory-reclamation options.
func NewHarris[K cmp.Ordered](opts ...Option) *Harris[K] {
	h := &harrisNode[K]{}
	h.ref.Store(&harrisRef[K]{})
	s := &Harris[K]{head: h}
	o := buildOptions(opts)
	if o.dom != nil {
		s.mem = reclaim.NewPool(o.dom, 2)
		if o.recycle {
			s.nodes = reclaim.NewRecycler(func(n *harrisNode[K]) {
				var zero K
				n.key = zero
				n.ref.Store(nil)
			})
		}
	}
	return s
}

// acquire returns a guard with its section entered, or nil when the list
// runs on plain GC reclamation.
func (s *Harris[K]) acquire() reclaim.Guard {
	if s.mem == nil {
		return nil
	}
	g := s.mem.Get()
	g.Enter()
	return g
}

func (s *Harris[K]) release(g reclaim.Guard) {
	if g == nil {
		return
	}
	g.Exit()
	s.mem.Put(g)
}

// retire hands a successfully unlinked node to the guard's domain (noop
// under GC, where the unlinked node is simply garbage).
func (s *Harris[K]) retire(g reclaim.Guard, n *harrisNode[K]) {
	if g == nil {
		return
	}
	reclaim.Retire(g, s.nodes, n)
}

// find returns (pred, predRef, curr) such that predRef was loaded from
// pred, predRef.next == curr, pred is unmarked in that snapshot, and curr
// is the first node with key >= k (or nil). Marked nodes encountered on the
// way are physically removed (helping), and the snipper retires them into
// g. Under a protecting guard, pred lives in hazard slot 0 and curr in
// slot 1 for the window the caller receives.
func (s *Harris[K]) find(g reclaim.Guard, k K) (pred *harrisNode[K], predRef *harrisRef[K], curr *harrisNode[K]) {
	hp := g != nil && g.Protects()
retry:
	//cdsvet:ignore spinpace helping traversal: a restart follows a snip or revalidation failure, both of which prove another operation progressed
	for {
		pred = s.head
		predRef = pred.ref.Load()
		if hp {
			g.Protect(0, nil) // head is immortal; no protection needed
		}
		curr = predRef.next
		//cdsvet:ignore spinpace helping traversal: each iteration advances curr or snips a marked node, so the walk is bounded by list length
		for {
			if curr == nil {
				return pred, predRef, nil
			}
			if hp {
				// Publish curr, then revalidate pred's record: unchanged
				// means curr was still linked (hence unretired) when the
				// publication landed, so a retirer's scan must see it.
				g.Protect(1, curr)
				if pred.ref.Load() != predRef {
					continue retry
				}
			}
			currRef := curr.ref.Load()
			if currRef.marked {
				// Snip the logically deleted curr. On failure something
				// changed under us: restart from the head.
				newRef := &harrisRef[K]{next: currRef.next}
				if !pred.ref.CompareAndSwap(predRef, newRef) {
					continue retry
				}
				predRef = newRef
				s.retire(g, curr)
				curr = currRef.next
				continue
			}
			if curr.key >= k {
				return pred, predRef, curr
			}
			pred, predRef = curr, currRef
			if hp {
				g.Protect(0, curr) // pred moves into slot 0
			}
			curr = currRef.next
		}
	}
}

// Add inserts k, reporting false if it was already present.
func (s *Harris[K]) Add(k K) bool {
	g := s.acquire()
	defer s.release(g)
	var b contend.Backoff
	var n *harrisNode[K] // lazily prepared insert node, reused across retries
	for {
		pred, predRef, curr := s.find(g, k)
		if curr != nil && curr.key == k {
			if n != nil {
				s.nodes.Put(n) // never published; straight back to the pool
			}
			return false
		}
		if n == nil {
			n = s.nodes.Get()
			n.key = k
		}
		n.ref.Store(&harrisRef[K]{next: curr})
		if pred.ref.CompareAndSwap(predRef, &harrisRef[K]{next: n}) {
			if s.nodes != nil {
				s.size.Add(1)
			}
			return true
		}
		b.Pause() // lost the window; back off before re-resolving it
	}
}

// Remove deletes k, reporting false if it was absent.
func (s *Harris[K]) Remove(k K) bool {
	g := s.acquire()
	defer s.release(g)
	var b contend.Backoff
	for {
		pred, predRef, curr := s.find(g, k)
		if curr == nil || curr.key != k {
			return false
		}
		currRef := curr.ref.Load()
		if currRef.marked {
			// Concurrently removed after find's snapshot; retry to settle
			// who removed it (find will snip and miss it next round).
			continue
		}
		// Logical delete: replace curr's ref with a marked copy.
		if !curr.ref.CompareAndSwap(currRef, &harrisRef[K]{next: currRef.next, marked: true}) {
			b.Pause() // lost the marking race; back off before retrying
			continue
		}
		if s.nodes != nil {
			s.size.Add(-1)
		}
		// Physical delete is best-effort; find() helps later if this
		// fails, and whoever's unlink CAS succeeds does the retiring.
		if pred.ref.CompareAndSwap(predRef, &harrisRef[K]{next: currRef.next}) {
			s.retire(g, curr)
		}
		return true
	}
}

// Contains reports whether k is present. Wait-free under GC and EBR (one
// traversal, no helping, mark checked on the candidate); under HP it runs
// the protected find, whose helping makes it lock-free instead.
func (s *Harris[K]) Contains(k K) bool {
	g := s.acquire()
	defer s.release(g)
	if g != nil && g.Protects() {
		_, _, curr := s.find(g, k)
		return curr != nil && curr.key == k
	}
	curr := s.head.ref.Load().next
	for curr != nil && curr.key < k {
		curr = curr.ref.Load().next
	}
	return curr != nil && curr.key == k && !curr.ref.Load().marked
}

// Len counts unmarked nodes via traversal (quiescent-exact). With node
// recycling enabled it is served from a counter instead: a traversal
// could follow a reused node into the wrong incarnation.
func (s *Harris[K]) Len() int {
	if s.nodes != nil {
		return int(s.size.Load())
	}
	g := s.acquire()
	defer s.release(g)
	n := 0
	for curr := s.head.ref.Load().next; curr != nil; {
		ref := curr.ref.Load()
		if !ref.marked {
			n++
		}
		curr = ref.next
	}
	return n
}
