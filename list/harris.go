package list

import (
	"cmp"
	"sync/atomic"
)

// Harris is the lock-free sorted list of Harris (DISC 2001) as refined by
// Michael (SPAA 2002): removal first marks the victim's next-reference
// (logical delete), then any operation that encounters a marked node snips
// it out while searching (physical delete, "helping"). No operation ever
// blocks: a failed CAS always means some other operation succeeded.
//
// Go cannot steal a mark bit from a pointer, so each node's successor is an
// immutable (next, marked) record swapped atomically as a unit — the exact
// semantics of Java's AtomicMarkableReference, at the cost of one small
// allocation per link mutation. Identity CAS on the record also subsumes
// the version check: marking a node replaces its record, so any CAS holding
// the stale record fails.
//
// Linearization points: Add at the successful pred-link CAS; Remove at the
// successful marking CAS; Contains at its final ref load.
//
// Progress: Add/Remove lock-free; Contains wait-free (bounded by list
// length).
type Harris[K cmp.Ordered] struct {
	head *harrisNode[K] // sentinel
}

type harrisNode[K cmp.Ordered] struct {
	key K
	ref atomic.Pointer[harrisRef[K]]
}

// harrisRef is an immutable (successor, mark) pair.
type harrisRef[K cmp.Ordered] struct {
	next   *harrisNode[K]
	marked bool
}

// NewHarris returns an empty lock-free sorted-list set.
func NewHarris[K cmp.Ordered]() *Harris[K] {
	h := &harrisNode[K]{}
	h.ref.Store(&harrisRef[K]{})
	return &Harris[K]{head: h}
}

// find returns (pred, predRef, curr) such that predRef was loaded from
// pred, predRef.next == curr, pred is unmarked in that snapshot, and curr
// is the first node with key >= k (or nil). Marked nodes encountered on the
// way are physically removed (helping).
func (s *Harris[K]) find(k K) (pred *harrisNode[K], predRef *harrisRef[K], curr *harrisNode[K]) {
retry:
	for {
		pred = s.head
		predRef = pred.ref.Load()
		curr = predRef.next
		for {
			if curr == nil {
				return pred, predRef, nil
			}
			currRef := curr.ref.Load()
			if currRef.marked {
				// Snip the logically deleted curr. On failure something
				// changed under us: restart from the head.
				newRef := &harrisRef[K]{next: currRef.next}
				if !pred.ref.CompareAndSwap(predRef, newRef) {
					continue retry
				}
				predRef = newRef
				curr = currRef.next
				continue
			}
			if curr.key >= k {
				return pred, predRef, curr
			}
			pred, predRef, curr = curr, currRef, currRef.next
		}
	}
}

// Add inserts k, reporting false if it was already present.
func (s *Harris[K]) Add(k K) bool {
	for {
		pred, predRef, curr := s.find(k)
		if curr != nil && curr.key == k {
			return false
		}
		n := &harrisNode[K]{key: k}
		n.ref.Store(&harrisRef[K]{next: curr})
		if pred.ref.CompareAndSwap(predRef, &harrisRef[K]{next: n}) {
			return true
		}
	}
}

// Remove deletes k, reporting false if it was absent.
func (s *Harris[K]) Remove(k K) bool {
	for {
		pred, predRef, curr := s.find(k)
		if curr == nil || curr.key != k {
			return false
		}
		currRef := curr.ref.Load()
		if currRef.marked {
			// Concurrently removed after find's snapshot; retry to settle
			// who removed it (find will snip and miss it next round).
			continue
		}
		// Logical delete: replace curr's ref with a marked copy.
		if !curr.ref.CompareAndSwap(currRef, &harrisRef[K]{next: currRef.next, marked: true}) {
			continue
		}
		// Physical delete is best-effort; find() helps later if this fails.
		pred.ref.CompareAndSwap(predRef, &harrisRef[K]{next: currRef.next})
		return true
	}
}

// Contains reports whether k is present. Wait-free: one traversal, no
// helping, mark checked on the candidate.
func (s *Harris[K]) Contains(k K) bool {
	curr := s.head.ref.Load().next
	for curr != nil && curr.key < k {
		curr = curr.ref.Load().next
	}
	return curr != nil && curr.key == k && !curr.ref.Load().marked
}

// Len counts unmarked nodes via traversal (quiescent-exact).
func (s *Harris[K]) Len() int {
	n := 0
	for curr := s.head.ref.Load().next; curr != nil; {
		ref := curr.ref.Load()
		if !ref.marked {
			n++
		}
		curr = ref.next
	}
	return n
}
