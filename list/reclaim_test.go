package list

import (
	"sync"
	"testing"

	"github.com/cds-suite/cds/internal/xrand"
	"github.com/cds-suite/cds/reclaim"
)

func reclaimVariants() map[string]func() []Option {
	return map[string]func() []Option{
		"EBR": func() []Option {
			d := reclaim.NewEBR()
			d.SetAdvanceInterval(4)
			return []Option{WithReclaim(d)}
		},
		"HP": func() []Option {
			d := reclaim.NewHP()
			d.SetScanThreshold(8)
			return []Option{WithReclaim(d)}
		},
		"EBR+recycle": func() []Option {
			d := reclaim.NewEBR()
			d.SetAdvanceInterval(4)
			return []Option{WithReclaim(d), WithRecycling()}
		},
		"HP+recycle": func() []Option {
			d := reclaim.NewHP()
			d.SetScanThreshold(8)
			return []Option{WithReclaim(d), WithRecycling()}
		},
	}
}

// TestHarrisReclaimVariants churns a small key space with add/remove/
// contains from several goroutines — the delete-heavy regime where
// snipping, retiring, and (for the recycled variants) reuse all fire —
// then verifies the set against a sequential replay oracle per key
// parity and that the domain actually reclaimed.
func TestHarrisReclaimVariants(t *testing.T) {
	for name, mkOpts := range reclaimVariants() {
		t.Run(name, func(t *testing.T) {
			opts := mkOpts()
			dom := buildOptions(opts).dom
			s := NewHarris[int](opts...)

			const workers, ops, keyRange = 4, 4000, 32
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := xrand.New(uint64(w)*2654435761 + 7)
					for i := 0; i < ops; i++ {
						k := rng.Intn(keyRange)
						switch rng.Intn(3) {
						case 0:
							s.Add(k)
						case 1:
							s.Remove(k)
						default:
							s.Contains(k)
						}
					}
				}(w)
			}
			wg.Wait()

			// Quiesce: the structure must be a coherent set. Make every
			// key present, then absent, and verify transitions.
			for k := 0; k < keyRange; k++ {
				s.Add(k)
				if !s.Contains(k) {
					t.Fatalf("key %d absent right after Add", k)
				}
			}
			if got := s.Len(); got != keyRange {
				t.Fatalf("Len = %d with all %d keys present", got, keyRange)
			}
			for k := 0; k < keyRange; k++ {
				if !s.Remove(k) {
					t.Fatalf("Remove(%d) failed on a present key", k)
				}
				if s.Contains(k) {
					t.Fatalf("key %d present right after Remove", k)
				}
			}
			if got := s.Len(); got != 0 {
				t.Fatalf("Len = %d after removing everything", got)
			}
			if dom.Reclaimed() == 0 {
				t.Fatal("domain reclaimed nothing — retire path inert")
			}
			if dom.Pending() < 0 {
				t.Fatalf("pending gauge negative: %d", dom.Pending())
			}
		})
	}
}

// TestHarrisRecyclingReuses pins the allocation win under delete-heavy
// churn.
func TestHarrisRecyclingReuses(t *testing.T) {
	d := reclaim.NewEBR()
	d.SetAdvanceInterval(1)
	s := NewHarris[int](WithReclaim(d), WithRecycling())
	for i := 0; i < 5000; i++ {
		s.Add(i & 7)
		s.Remove(i & 7)
	}
	if s.nodes.Reused() == 0 {
		t.Fatal("recycler never reused a node across 5000 add/remove cycles")
	}
}
