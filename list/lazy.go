package list

import (
	"cmp"
	"sync"
	"sync/atomic"
)

// Lazy is the lazy-synchronization list (Heller, Herlihy, Luchangco, Moir,
// Scherer & Shavit, OPODIS 2005): removal happens in two steps — a logical
// delete that sets a mark bit on the node, then a physical unlink. The mark
// turns validation into two local flag checks (no re-traversal), and makes
// Contains completely lock-free and wait-free: one unlocked traversal plus
// a mark check. Since membership queries dominate real set workloads, this
// is the survey's sweet spot among the lock-based lists.
//
// Linearization points: Add at the pred.next store (under locks);
// successful Remove at the mark store; Contains at the load of curr's mark
// (or of the first node with key >= k).
//
// Progress: Add/Remove blocking; Contains wait-free.
type Lazy[K cmp.Ordered] struct {
	head *lazyNode[K] // sentinel
}

type lazyNode[K cmp.Ordered] struct {
	mu     sync.Mutex
	key    K
	marked atomic.Bool                 // logical deletion flag
	next   atomic.Pointer[lazyNode[K]] // atomic: read by unlocked traversals
}

// NewLazy returns an empty lazy-synchronization sorted-list set.
func NewLazy[K cmp.Ordered]() *Lazy[K] {
	return &Lazy[K]{head: &lazyNode[K]{}}
}

// locate returns the unlocked (pred, curr) window for k.
func (s *Lazy[K]) locate(k K) (pred, curr *lazyNode[K]) {
	pred = s.head
	curr = pred.next.Load()
	for curr != nil && curr.key < k {
		pred = curr
		curr = curr.next.Load()
	}
	return pred, curr
}

// validate reports whether the locked window (pred, curr) is intact: both
// unmarked and still adjacent. No re-traversal needed — that is the point
// of the marks.
func (s *Lazy[K]) validate(pred, curr *lazyNode[K]) bool {
	return !pred.marked.Load() &&
		(curr == nil || !curr.marked.Load()) &&
		pred.next.Load() == curr
}

// Add inserts k, reporting false if it was already present.
func (s *Lazy[K]) Add(k K) bool {
	for {
		pred, curr := s.locate(k)
		pred.mu.Lock()
		if curr != nil {
			curr.mu.Lock()
		}
		if s.validate(pred, curr) {
			if curr != nil && curr.key == k {
				curr.mu.Unlock()
				pred.mu.Unlock()
				return false
			}
			n := &lazyNode[K]{key: k}
			n.next.Store(curr)
			pred.next.Store(n)
			if curr != nil {
				curr.mu.Unlock()
			}
			pred.mu.Unlock()
			return true
		}
		if curr != nil {
			curr.mu.Unlock()
		}
		pred.mu.Unlock()
	}
}

// Remove deletes k, reporting false if it was absent. The mark store is
// the linearization point; the unlink that follows is mere bookkeeping.
func (s *Lazy[K]) Remove(k K) bool {
	for {
		pred, curr := s.locate(k)
		pred.mu.Lock()
		if curr != nil {
			curr.mu.Lock()
		}
		if s.validate(pred, curr) {
			if curr == nil || curr.key != k {
				if curr != nil {
					curr.mu.Unlock()
				}
				pred.mu.Unlock()
				return false
			}
			curr.marked.Store(true)           // logical removal
			pred.next.Store(curr.next.Load()) // physical unlink
			curr.mu.Unlock()
			pred.mu.Unlock()
			return true
		}
		if curr != nil {
			curr.mu.Unlock()
		}
		pred.mu.Unlock()
	}
}

// Contains reports whether k is present: one unlocked traversal and a mark
// check. Wait-free.
func (s *Lazy[K]) Contains(k K) bool {
	curr := s.head.next.Load()
	for curr != nil && curr.key < k {
		curr = curr.next.Load()
	}
	return curr != nil && curr.key == k && !curr.marked.Load()
}

// Len counts unmarked keys via unlocked traversal (quiescent-exact).
func (s *Lazy[K]) Len() int {
	n := 0
	for node := s.head.next.Load(); node != nil; node = node.next.Load() {
		if !node.marked.Load() {
			n++
		}
	}
	return n
}
