package barrier

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// waiter is the common per-party interface of all three barrier types.
type waiter interface{ Wait() }

func barriers(n int) map[string]func() []waiter {
	return map[string]func() []waiter{
		"Sense": func() []waiter {
			b := NewSense(n)
			hs := make([]waiter, n)
			for i := range hs {
				hs[i] = b.Handle()
			}
			return hs
		},
		"Tree": func() []waiter {
			b := NewTree(n)
			hs := make([]waiter, n)
			for i := range hs {
				hs[i] = b.Handle()
			}
			return hs
		},
		"Dissemination": func() []waiter {
			b := NewDissemination(n)
			hs := make([]waiter, n)
			for i := range hs {
				hs[i] = b.Handle()
			}
			return hs
		},
	}
}

// TestPhaseIsolation is the fundamental barrier property: no party enters
// phase k+1 before every party has finished phase k. Each party increments
// a per-phase counter before Wait; after Wait the counter must equal n.
func TestPhaseIsolation(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 16} {
		for name, mk := range barriers(n) {
			t.Run(name, func(t *testing.T) {
				const phases = 200
				hs := mk()
				arrived := make([]atomic.Int32, phases)
				var wg sync.WaitGroup
				for p := 0; p < n; p++ {
					wg.Add(1)
					go func(h waiter) {
						defer wg.Done()
						for ph := 0; ph < phases; ph++ {
							arrived[ph].Add(1)
							h.Wait()
							if got := arrived[ph].Load(); got != int32(n) {
								t.Errorf("phase %d: released with %d/%d arrivals", ph, got, n)
								return
							}
						}
					}(hs[p])
				}
				wg.Wait()
			})
		}
	}
}

// TestNoEarlySpill verifies that a party cannot lap the others: after each
// Wait, the shared phase counter advances in lockstep.
func TestLockstepPhases(t *testing.T) {
	n := runtime.GOMAXPROCS(0)
	if n < 2 {
		t.Skip("needs >= 2 procs to be meaningful")
	}
	for name, mk := range barriers(n) {
		t.Run(name, func(t *testing.T) {
			const phases = 500
			hs := mk()
			var sum atomic.Int64 // each party adds its phase number before the barrier
			var wg sync.WaitGroup
			for p := 0; p < n; p++ {
				wg.Add(1)
				go func(h waiter) {
					defer wg.Done()
					for ph := 0; ph < phases; ph++ {
						sum.Add(1)
						h.Wait()
						// After release, all n contributions of this phase
						// (and none of the next) are visible... next-phase
						// contributions may race in, so check lower bound
						// and modality: sum ∈ [n(ph+1), n(ph+2)).
						got := sum.Load()
						lo, hi := int64(n*(ph+1)), int64(n*(ph+2))
						if got < lo || got >= hi {
							t.Errorf("phase %d: sum = %d, want [%d, %d)", ph, got, lo, hi)
							return
						}
					}
				}(hs[p])
			}
			wg.Wait()
		})
	}
}

func TestHandleExhaustion(t *testing.T) {
	b := NewSense(2)
	b.Handle()
	b.Handle()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("third Sense handle did not panic")
			}
		}()
		b.Handle()
	}()

	tr := NewTree(1)
	tr.Handle()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("second Tree handle did not panic")
			}
		}()
		tr.Handle()
	}()

	d := NewDissemination(1)
	d.Handle()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("second Dissemination handle did not panic")
			}
		}()
		d.Handle()
	}()
}

func TestConstructorValidation(t *testing.T) {
	for name, mk := range map[string]func(){
		"Sense":         func() { NewSense(0) },
		"Tree":          func() { NewTree(-1) },
		"Dissemination": func() { NewDissemination(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s constructor accepted nonpositive n", name)
				}
			}()
			mk()
		}()
	}
}

func TestSinglePartyBarrier(t *testing.T) {
	// n=1 must never block.
	for name, mk := range barriers(1) {
		t.Run(name, func(t *testing.T) {
			h := mk()[0]
			for i := 0; i < 1000; i++ {
				h.Wait()
			}
		})
	}
}

func TestTreeFanInWiring(t *testing.T) {
	// All parties' arrivals must propagate: total fan-in at leaves == n.
	for _, n := range []int{1, 2, 3, 4, 7, 8, 9, 31} {
		b := NewTree(n)
		var leafSum int32
		for _, l := range b.leaves {
			leafSum += l.fanIn
		}
		if leafSum != int32(n) {
			t.Fatalf("n=%d: leaf fan-in sum = %d", n, leafSum)
		}
	}
}
