package barrier

import (
	"fmt"
	"sync/atomic"

	"github.com/cds-suite/cds/internal/pad"
)

// Dissemination is the dissemination barrier (Hensgen, Finkel & Manber;
// flag layout per Mellor-Crummey & Scott). There is no arrival tree and no
// release broadcast: in round r each party signals the party 2^r positions
// ahead and waits for the signal from 2^r behind. After ⌈log2 n⌉ rounds,
// every party has transitively heard from every other. All spinning is on
// a party-private flag — the barrier has no hot spot at all, which is why
// it wins the latency race at scale (experiment F10).
//
// Reusability uses the standard parity/sense scheme: episodes alternate
// between two flag banks (parity), and every second episode inverts the
// flag sense, so flags never need resetting.
type Dissemination struct {
	n      int
	rounds int
	// flags[p][parity][round] is the flag party p spins on in that round.
	flags [][2][]paddedBool
	made  atomic.Int32
}

type paddedBool struct {
	v atomic.Bool
	_ pad.CacheLinePad
}

// NewDissemination returns a reusable dissemination barrier for n parties.
// n must be positive.
func NewDissemination(n int) *Dissemination {
	if n <= 0 {
		panic(fmt.Sprintf("barrier: NewDissemination n must be positive, got %d", n))
	}
	rounds := 0
	for 1<<rounds < n {
		rounds++
	}
	b := &Dissemination{n: n, rounds: rounds}
	b.flags = make([][2][]paddedBool, n)
	for p := 0; p < n; p++ {
		b.flags[p][0] = make([]paddedBool, rounds)
		b.flags[p][1] = make([]paddedBool, rounds)
	}
	return b
}

// Handle returns the next party's handle (at most n).
func (b *Dissemination) Handle() *DisseminationHandle {
	id := int(b.made.Add(1)) - 1
	if id >= b.n {
		panic("barrier: more Dissemination handles than parties")
	}
	return &DisseminationHandle{b: b, id: id, sense: true}
}

// DisseminationHandle is one party's view of a Dissemination barrier.
type DisseminationHandle struct {
	b      *Dissemination
	id     int
	parity int
	sense  bool
}

// Wait blocks until all n parties have called Wait for this episode.
func (h *DisseminationHandle) Wait() {
	b := h.b
	for r := 0; r < b.rounds; r++ {
		partner := (h.id + 1<<r) % b.n
		b.flags[partner][h.parity][r].v.Store(h.sense)
		flag := &b.flags[h.id][h.parity][r].v
		want := h.sense
		spinUntil(func() bool { return flag.Load() == want })
	}
	if h.parity == 1 {
		h.sense = !h.sense
	}
	h.parity = 1 - h.parity
}
