package barrier

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"github.com/cds-suite/cds/internal/pad"
)

func spinUntil(cond func() bool) {
	spins := 0
	for !cond() {
		spins++
		if spins%256 == 0 {
			runtime.Gosched()
		}
	}
}

// Sense is the central sense-reversing barrier: one shared counter counts
// arrivals, and the last arriver flips a shared sense flag that releases
// the spinners. Every episode serialises n counter updates on one cache
// line — the baseline the scalable barriers beat.
type Sense struct {
	count atomic.Int32
	_     pad.CacheLinePad
	sense atomic.Uint32
	_     pad.CacheLinePad
	n     int32
	made  atomic.Int32
}

// NewSense returns a reusable sense-reversing barrier for n parties.
// n must be positive.
func NewSense(n int) *Sense {
	if n <= 0 {
		panic(fmt.Sprintf("barrier: NewSense n must be positive, got %d", n))
	}
	return &Sense{n: int32(n)}
}

// Handle returns a per-party handle. Exactly n handles may be used per
// barrier, each by one goroutine at a time.
func (b *Sense) Handle() *SenseHandle {
	if b.made.Add(1) > b.n {
		panic("barrier: more Sense handles than parties")
	}
	return &SenseHandle{b: b}
}

// SenseHandle is one party's view of a Sense barrier.
type SenseHandle struct {
	b       *Sense
	mySense uint32
}

// Wait blocks until all n parties have called Wait for this episode.
func (h *SenseHandle) Wait() {
	h.mySense ^= 1
	if h.b.count.Add(1) == h.b.n {
		h.b.count.Store(0)
		h.b.sense.Store(h.mySense) // release everyone
		return
	}
	sense := &h.b.sense
	want := h.mySense
	spinUntil(func() bool { return sense.Load() == want })
}

// Tree is the combining-tree barrier: parties arrive at leaves (two per
// leaf); the last arriver at each node propagates the arrival upward, and
// the root arrival flips a global sense. Arrival traffic is spread over
// n/2 leaf counters instead of one, at the cost of log n propagation depth.
type Tree struct {
	root   *treeNode
	leaves []*treeNode
	sense  atomic.Uint32
	n      int
	made   atomic.Int32
}

type treeNode struct {
	count    atomic.Int32
	_        pad.CacheLinePad
	fanIn    int32
	parent   *treeNode
	children [2]*treeNode
}

// NewTree returns a reusable combining-tree barrier for n parties.
// n must be positive.
func NewTree(n int) *Tree {
	if n <= 0 {
		panic(fmt.Sprintf("barrier: NewTree n must be positive, got %d", n))
	}
	b := &Tree{n: n}
	b.root = &treeNode{}
	level := []*treeNode{b.root}
	// Grow until the leaves can host all parties at two per leaf.
	for 2*len(level) < n {
		next := make([]*treeNode, 0, 2*len(level))
		for _, p := range level {
			l := &treeNode{parent: p}
			r := &treeNode{parent: p}
			p.children = [2]*treeNode{l, r}
			next = append(next, l, r)
		}
		level = next
	}
	b.leaves = level

	// Leaf fan-in: how many parties are assigned to each leaf.
	assigned := make(map[*treeNode]int32, len(level))
	for i := 0; i < n; i++ {
		assigned[b.leaves[(i/2)%len(b.leaves)]]++
	}
	// Interior fan-in: number of children whose subtrees have any parties.
	// Subtrees with fan-in zero never propagate and must not be counted.
	var wire func(*treeNode) int32
	wire = func(nd *treeNode) int32 {
		if nd.children[0] == nil {
			nd.fanIn = assigned[nd]
			return nd.fanIn
		}
		var active int32
		for _, child := range nd.children {
			if wire(child) > 0 {
				active++
			}
		}
		nd.fanIn = active
		return nd.fanIn
	}
	wire(b.root)
	return b
}

// Handle returns a per-party handle (at most n).
func (b *Tree) Handle() *TreeHandle {
	id := int(b.made.Add(1)) - 1
	if id >= b.n {
		panic("barrier: more Tree handles than parties")
	}
	return &TreeHandle{b: b, leaf: b.leaves[(id/2)%len(b.leaves)]}
}

// TreeHandle is one party's view of a Tree barrier.
type TreeHandle struct {
	b       *Tree
	leaf    *treeNode
	mySense uint32
}

// Wait blocks until all n parties have called Wait for this episode.
func (h *TreeHandle) Wait() {
	h.mySense ^= 1
	h.arrive(h.leaf)
	sense := &h.b.sense
	want := h.mySense
	spinUntil(func() bool { return sense.Load() == want })
}

func (h *TreeHandle) arrive(n *treeNode) {
	if n.count.Add(1) == n.fanIn {
		n.count.Store(0)
		if n.parent != nil {
			h.arrive(n.parent)
			return
		}
		h.b.sense.Store(h.mySense) // root: release all parties
	}
}
