// Package barrier implements the classic software barrier algorithms:
// the central sense-reversing barrier, the combining-tree barrier, and the
// dissemination barrier (Hensgen–Finkel–Manber / Mellor-Crummey–Scott).
//
// A barrier synchronises n parties at a phase boundary: nobody proceeds to
// phase k+1 until everyone finished phase k. The survey's point is the
// communication pattern: a central counter costs O(n) serialised updates on
// one hot line per episode; a combining tree spreads arrival across O(n)
// nodes with O(log n) depth; dissemination replaces arrival/release with
// log n rounds of point-to-point flags, with no hot spot at all.
// Experiment F10 regenerates the episode-latency comparison.
//
// All barriers are reusable (sense-reversing) and hand out per-party
// handles: each participating goroutine must own exactly one handle and
// call Wait on it once per episode.
//
// Progress guarantees: barriers are blocking by definition — Wait cannot
// return before the last party arrives — so the interesting property is
// the communication cost per episode, not the progress class. Waiting is
// by spinning with scheduler yields (local spinning in the tree and
// dissemination variants, the property MCS designed for).
package barrier
