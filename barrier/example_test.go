package barrier_test

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/cds-suite/cds/barrier"
)

// Barriers synchronise phase boundaries: in each episode, every party
// finishes phase k before any party starts phase k+1.
func ExampleDissemination() {
	const parties = 4
	const phases = 3

	b := barrier.NewDissemination(parties)
	var phaseWork [phases]atomic.Int32

	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		wg.Add(1)
		h := b.Handle()
		go func() {
			defer wg.Done()
			for ph := 0; ph < phases; ph++ {
				phaseWork[ph].Add(1)
				h.Wait()
				// After the barrier every contribution of this phase is in.
				if phaseWork[ph].Load() != parties {
					fmt.Println("phase leak!")
				}
			}
		}()
	}
	wg.Wait()
	fmt.Println("phases completed in lockstep:", phases)
	// Output: phases completed in lockstep: 3
}
