package cache

import (
	"fmt"
	"testing"

	"github.com/cds-suite/cds/internal/zipf"
)

// loopyTrace generates the admission stress trace the hit-rate regression
// below replays: a small Zipf-skewed hot set (64 keys, far under the 256
// capacity) interleaved 1:1 with a sequential loop over 512 keys. The
// loop is the classic recency-defeating workload: each loop key's reuse
// distance (512) exceeds the capacity left over after the hot set
// (~192), so any recency/FIFO policy evicts every loop key before its
// next access and earns zero loop hits. A frequency-based admission
// filter instead freezes whichever loop keys happen to be resident when
// the cache first fills — an incoming loop key is never strictly hotter
// than a resident one — and that frozen subset then hits on every lap.
// The trace is fully seeded: the same key sequence on every run.
func loopyTrace(accesses int) []string {
	g, err := zipf.New(64, 0.99, 42)
	if err != nil {
		panic(err)
	}
	keys := make([]string, 0, accesses)
	loop := 0
	for i := 0; i < accesses; i++ {
		if i%2 == 0 {
			keys = append(keys, fmt.Sprintf("loop%d", loop%512))
			loop++
		} else {
			keys = append(keys, fmt.Sprintf("hot%d", g.Next()))
		}
	}
	return keys
}

// replay runs the trace cache-aside (Get, Set on miss) and returns the
// hit rate. The deterministic fnv64 hash replaces the cache's random
// seed so the measured rates are identical on every run.
func replay(c *Cache[string, int], trace []string) float64 {
	c.hash = fnv64
	for i, k := range trace {
		if _, ok := c.Get(k); !ok {
			c.Set(k, i)
		}
	}
	return c.Stats().HitRate()
}

// TestTinyLFUBeatsSieveOnLoopyTrace is the seeded hit-rate regression the
// issue pins the admission filter with: on a trace that interleaves a
// cacheable Zipf working set with a cache-defeating sequential loop,
// SIEVE+TinyLFU must beat plain SIEVE by a fixed margin. Plain SIEVE
// admits every loop key and evicts it again before its next lap (zero
// loop hits); TinyLFU's sketch makes resident loop keys unbeatable by
// incoming ones, so a frozen subset hits on every lap while the Zipf head
// stays resident too. The 5-point margin is far below the observed
// gap (~17 points: 0.50 vs 0.67) but large enough that losing the
// admission mechanism entirely cannot pass.
func TestTinyLFUBeatsSieveOnLoopyTrace(t *testing.T) {
	trace := loopyTrace(30000)

	plain := replay(New[string, int](256, WithPolicy(SIEVE), WithShards(1)), trace)
	tiny := replay(New[string, int](256, WithPolicy(SIEVE), WithShards(1),
		WithAdmission(TinyLFU)), trace)

	t.Logf("hit rate: plain SIEVE %.4f, SIEVE+TinyLFU %.4f", plain, tiny)
	if tiny < plain+0.05 {
		t.Fatalf("SIEVE+TinyLFU hit rate %.4f not >= plain SIEVE %.4f + 0.05", tiny, plain)
	}
	// Sanity: the trace defeats neither cache completely, and the gap
	// comes from rejections actually happening.
	if plain < 0.10 {
		t.Fatalf("plain SIEVE hit rate %.4f implausibly low — trace broken?", plain)
	}
}

// TestTinyLFUNotWorseOnPureZipf guards the other side: on a plain Zipf
// trace with no adversarial loop, admission must not cost more than a
// small tolerance against plain SIEVE (it may still win).
func TestTinyLFUNotWorseOnPureZipf(t *testing.T) {
	g, err := zipf.New(2048, 0.99, 7)
	if err != nil {
		t.Fatal(err)
	}
	trace := make([]string, 0, 30000)
	for i := 0; i < 30000; i++ {
		trace = append(trace, fmt.Sprintf("z%d", g.Next()))
	}

	plain := replay(New[string, int](256, WithPolicy(SIEVE), WithShards(1)), trace)
	tiny := replay(New[string, int](256, WithPolicy(SIEVE), WithShards(1),
		WithAdmission(TinyLFU)), trace)

	t.Logf("hit rate: plain SIEVE %.4f, SIEVE+TinyLFU %.4f", plain, tiny)
	if tiny < plain-0.02 {
		t.Fatalf("SIEVE+TinyLFU hit rate %.4f fell more than 0.02 below plain SIEVE %.4f on a friendly trace", tiny, plain)
	}
}
