package cache

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	cds "github.com/cds-suite/cds"
	"github.com/cds-suite/cds/cmap"
	"github.com/cds-suite/cds/internal/pad"
	"github.com/cds-suite/cds/internal/pow2"
)

// Compile-time interface compliance check.
var _ cds.Cache[int, string] = (*Cache[int, string])(nil)

// ErrLoaderPanic is the error a GetOrLoad follower receives when the
// flight's leader panicked inside the loader: the panic propagates on the
// leader's goroutine, and the followers fail rather than hang.
var ErrLoaderPanic = errors.New("cache: loader panicked")

// Cache is a bounded concurrent cache: a power-of-two array of
// independently locked shards, each a hash map plus an intrusive eviction
// policy (SIEVE by default; see Policy). Keys hash to shards with the same
// seeded hashing the cmap tables use, so operations on different shards
// never contend, and within a shard the scan-resistant policies record
// hits under the shared read lock — reads scale like a striped read-mostly
// map, not like a locked LRU.
//
// Entries can expire: Set applies the configured default TTL, SetTTL a
// per-entry one. Expired entries are misses on read (checked lazily) and
// are reclaimed incrementally by a background sweeper; call Close to stop
// it (Close is cheap and idempotent, and a no-op when no sweeper ever
// started).
//
// Two orthogonal options reshape the capacity contract. WithAdmission
// (TinyLFU) gates the eviction boundary: a full shard consults a
// frequency sketch and rejects inserts colder than the policy's would-be
// victim. WithMaxWeight switches the bound from entry counts to total
// weight (SetWeight / WithWeigher), so one insert may evict several
// victims. Both compose with every eviction policy.
//
// Progress: blocking (per shard). Hits on the SIEVE and S3-FIFO policies
// take only the shard's read lock.
type Cache[K comparable, V any] struct {
	hash      func(K) uint64
	mask      uint64
	shards    []shard[K, V]
	cap       int
	maxWeight int64
	weigher   func(K, V) int64
	ttl       time.Duration
	sweep     sweeper
	sweepBy   time.Duration
}

// shard is one lock domain: a map from key to entry, the policy's
// intrusive structures, the in-flight loader table, and its slice of the
// cache's gauges. Padding keeps neighbouring shards' hot fields off one
// cache line.
type shard[K comparable, V any] struct {
	mu        sync.RWMutex
	m         map[K]*entry[K, V]
	pol       policy[K, V]
	cap       int
	maxWeight int64            // this shard's slice of the weight budget; 0 = count-bounded
	adm       *admitter        // TinyLFU admission filter; nil = admit all
	flights   map[K]*flight[V] // lazily allocated; guarded by mu (write)

	//cdsvet:ignore padlayout per-shard telemetry gauges share this shard's lines by design; the trailing pad separates neighbouring shards, which is the false-sharing boundary that matters
	stats shardStats
	_     pad.CacheLinePad
}

// New returns a cache bounded at capacity entries with the given options
// (eviction policy, shard count, TTL). Capacity is split evenly across the
// shards, so per-shard eviction keeps the total at or under capacity at
// all times. New panics if capacity < 1.
func New[K comparable, V any](capacity int, opts ...Option) *Cache[K, V] {
	if capacity < 1 {
		panic("cache: capacity must be at least 1")
	}
	var cfg config
	for _, opt := range opts {
		opt(&cfg)
	}
	n := cfg.shards
	if n <= 0 {
		n = 4 * runtime.GOMAXPROCS(0)
	}
	n = pow2.RoundUp(n, 1)
	for n > capacity {
		n >>= 1 // at least one entry per shard
	}
	for cfg.maxWeight > 0 && int64(n) > cfg.maxWeight {
		n >>= 1 // at least one weight unit per shard
	}
	c := &Cache[K, V]{
		hash:      cmap.NewHash[K](),
		mask:      uint64(n - 1),
		shards:    make([]shard[K, V], n),
		cap:       capacity,
		maxWeight: cfg.maxWeight,
		ttl:       cfg.ttl,
	}
	if cfg.weigher != nil {
		fn, ok := cfg.weigher.(func(K, V) int64)
		if !ok {
			panic("cache: WithWeigher type parameters do not match the cache's")
		}
		c.weigher = fn
	}
	base, extra := capacity/n, capacity%n
	var wbase, wextra int64
	if cfg.maxWeight > 0 {
		wbase, wextra = cfg.maxWeight/int64(n), cfg.maxWeight%int64(n)
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.cap = base
		if i < extra {
			s.cap++
		}
		if cfg.maxWeight > 0 {
			s.maxWeight = wbase
			if int64(i) < wextra {
				s.maxWeight++
			}
		}
		s.m = make(map[K]*entry[K, V], s.cap)
		switch cfg.policy {
		case S3FIFO:
			s.pol = newS3FIFO[K, V](s.cap)
		case LRU:
			s.pol = newLRU[K, V](s.cap)
		default:
			s.pol = newSieve[K, V](s.cap)
		}
		if cfg.admission == TinyLFU {
			s.adm = newAdmitter(s.cap, uint64(i))
		}
	}
	c.sweepBy = cfg.ttl
	if cfg.sweepSet {
		c.sweepBy = cfg.sweep
	}
	return c
}

// NewSIEVE returns a cache evicting with the SIEVE policy.
func NewSIEVE[K comparable, V any](capacity int, opts ...Option) *Cache[K, V] {
	return New[K, V](capacity, append([]Option{WithPolicy(SIEVE)}, opts...)...)
}

// NewS3FIFO returns a cache evicting with the S3-FIFO policy.
func NewS3FIFO[K comparable, V any](capacity int, opts ...Option) *Cache[K, V] {
	return New[K, V](capacity, append([]Option{WithPolicy(S3FIFO)}, opts...)...)
}

// NewLRU returns a cache evicting with the locked LRU policy. Combined
// with WithShards(1) this is the classic single-lock LRU cache — the
// baseline the S17 benchmarks compare the scan-resistant policies
// against.
func NewLRU[K comparable, V any](capacity int, opts ...Option) *Cache[K, V] {
	return New[K, V](capacity, append([]Option{WithPolicy(LRU)}, opts...)...)
}

func (c *Cache[K, V]) shardFor(k K) *shard[K, V] {
	return &c.shards[c.hash(k)&c.mask]
}

// Get returns the value cached for k. A miss (ok=false) means k was never
// set, was evicted, or has expired — an expired entry is removed on the
// spot, so a miss is always followed by absence until the next Set.
func (c *Cache[K, V]) Get(k K) (v V, ok bool) {
	h := c.hash(k)
	s := &c.shards[h&c.mask]
	if s.adm != nil {
		s.adm.touch(h) // every lookup feeds the admission sketch, hit or miss
	}
	if s.pol.lockedHits() {
		s.mu.Lock()
		e := s.m[k]
		if e == nil {
			s.mu.Unlock()
			s.stats.misses.Add(1)
			return v, false
		}
		if e.expires != 0 && time.Now().UnixNano() >= e.expires {
			s.removeLocked(e)
			s.mu.Unlock()
			s.stats.expired.Add(1)
			s.stats.misses.Add(1)
			return v, false
		}
		s.pol.hit(e)
		v = e.val
		s.mu.Unlock()
		s.stats.hits.Add(1)
		return v, true
	}
	s.mu.RLock()
	e := s.m[k]
	if e == nil {
		s.mu.RUnlock()
		s.stats.misses.Add(1)
		return v, false
	}
	if e.expires != 0 && time.Now().UnixNano() >= e.expires {
		s.mu.RUnlock()
		s.expireLazy(k, e)
		s.stats.misses.Add(1)
		return v, false
	}
	s.pol.hit(e) // per-entry atomic; legal under the read lock
	v = e.val
	s.mu.RUnlock()
	s.stats.hits.Add(1)
	return v, true
}

// expireLazy upgrades to the exclusive lock and removes e if it is still
// the resident entry for k and still expired (a concurrent Set may have
// refreshed or replaced it between the read-locked check and here).
func (s *shard[K, V]) expireLazy(k K, e *entry[K, V]) {
	s.mu.Lock()
	if s.m[k] == e && e.expires != 0 && time.Now().UnixNano() >= e.expires {
		s.removeLocked(e)
		s.stats.expired.Add(1)
	}
	s.mu.Unlock()
}

// removeLocked unlinks e from the policy and the map; caller holds the
// exclusive lock and accounts the removal (expired/evictions/deletes).
func (s *shard[K, V]) removeLocked(e *entry[K, V]) {
	s.pol.remove(e)
	delete(s.m, e.key)
	s.stats.weightRes.Add(-e.weight)
}

// Set caches v for k with the cache's default TTL, evicting if needed.
func (c *Cache[K, V]) Set(k K, v V) {
	c.SetTTL(k, v, c.ttl)
}

// SetTTL caches v for k with an entry-specific time-to-live; ttl <= 0
// means the entry never expires. Setting an existing key updates it in
// place and counts as an access for the eviction policy.
func (c *Cache[K, V]) SetTTL(k K, v V, ttl time.Duration) {
	c.set(k, v, c.weigh(k, v), ttl)
}

// SetWeight caches v for k with an explicit capacity weight (for example,
// the entry's size in bytes) and the cache's default TTL, overriding any
// WithWeigher result for this entry. Weights below 1 clamp to 1; weights
// only bound residency when the cache was built with WithMaxWeight. An
// entry whose weight alone exceeds its shard's share of the weight budget
// is rejected — caching it would pin the shard over capacity — and the
// rejection counts in Stats.AdmissionRejects.
func (c *Cache[K, V]) SetWeight(k K, v V, weight int64) {
	c.set(k, v, weight, c.ttl)
}

// weigh computes the default weight for an entry: the configured weigher,
// or 1 (plain entry counting).
func (c *Cache[K, V]) weigh(k K, v V) int64 {
	if c.weigher != nil {
		return c.weigher(k, v)
	}
	return 1
}

// set is the common insert path: hash once, feed the admission sketch (a
// write is an access), then mutate under the shard lock.
func (c *Cache[K, V]) set(k K, v V, w int64, ttl time.Duration) {
	var expires int64
	if ttl > 0 {
		expires = time.Now().Add(ttl).UnixNano()
		c.maybeStartSweeper()
	}
	h := c.hash(k)
	s := &c.shards[h&c.mask]
	if s.adm != nil {
		s.adm.touch(h)
	}
	s.mu.Lock()
	s.setLocked(k, v, h, w, expires)
	s.mu.Unlock()
}

// setLocked inserts or updates k under the exclusive lock, evicting down
// to capacity — by entry count, or by total weight when WithMaxWeight is
// set, in which case one insert may evict several victims. With TinyLFU
// admission, each would-be victim is compared against the incoming key
// first, and a colder-than-victim insert is rejected instead of evicting.
func (s *shard[K, V]) setLocked(k K, v V, h uint64, w int64, expires int64) {
	if w < 1 {
		w = 1
	}
	infeasible := s.maxWeight > 0 && w > s.maxWeight
	if e := s.m[k]; e != nil {
		if infeasible {
			// The update outgrew the shard's whole weight budget: keeping
			// the old value would be stale (a later Get must not observe
			// it), so the key is removed outright.
			s.stats.evictConsidered.Add(1)
			s.stats.admitRejects.Add(1)
			s.removeLocked(e)
			return
		}
		s.stats.weightRes.Add(w - e.weight)
		e.weight = w
		e.val = v
		e.expires = expires
		s.pol.hit(e)
		s.shedLocked()
		return
	}
	if infeasible {
		s.stats.evictConsidered.Add(1)
		s.stats.admitRejects.Add(1)
		return
	}
	// Evict before inserting: the incoming entry must never be its own
	// eviction's victim (SIEVE's hand would otherwise sweep onto a
	// freshly added, necessarily unvisited entry and throw it out).
	for s.overLocked(w) {
		victim := s.pol.victim()
		if victim == nil {
			break
		}
		s.stats.evictConsidered.Add(1)
		if s.adm != nil && !s.adm.admit(h, victim.hash) {
			// The incoming key is no hotter than the coldest resident:
			// keep the residents, drop the insert.
			s.stats.admitRejects.Add(1)
			return
		}
		s.pol.evict() // settles on the same entry victim() returned
		delete(s.m, victim.key)
		s.stats.weightRes.Add(-victim.weight)
		s.stats.evictions.Add(1)
	}
	e := &entry[K, V]{key: k, val: v, hash: h, weight: w, expires: expires}
	s.m[k] = e
	s.pol.add(e)
	s.stats.weightRes.Add(w)
}

// overLocked reports whether inserting a new entry of weight w would
// exceed the shard's bound: resident weight under WithMaxWeight, entry
// count otherwise.
func (s *shard[K, V]) overLocked(w int64) bool {
	if s.maxWeight > 0 {
		return s.stats.weightRes.Load()+w > s.maxWeight
	}
	return len(s.m) >= s.cap
}

// shedLocked evicts until the resident weight fits the shard's budget
// again: an in-place update that grew an entry can push the shard over
// without inserting anything. The freshly updated entry was just hit, so
// every policy prefers other victims; admission is not consulted — the
// update is already resident.
func (s *shard[K, V]) shedLocked() {
	for s.maxWeight > 0 && s.stats.weightRes.Load() > s.maxWeight {
		victim := s.pol.evict()
		if victim == nil {
			return
		}
		delete(s.m, victim.key)
		s.stats.weightRes.Add(-victim.weight)
		s.stats.evictConsidered.Add(1)
		s.stats.evictions.Add(1)
	}
}

// Delete removes k, reporting whether a live entry was present (an entry
// that had already expired is removed but reported absent).
func (c *Cache[K, V]) Delete(k K) bool {
	s := c.shardFor(k)
	s.mu.Lock()
	e := s.m[k]
	if e == nil {
		s.mu.Unlock()
		return false
	}
	live := e.expires == 0 || time.Now().UnixNano() < e.expires
	s.removeLocked(e)
	s.mu.Unlock()
	if !live {
		s.stats.expired.Add(1)
	}
	return live
}

// Len reports the number of resident entries, including entries that have
// expired but not yet been noticed by a read or the sweeper.
func (c *Cache[K, V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Cap reports the capacity the cache was constructed with.
func (c *Cache[K, V]) Cap() int { return c.cap }

// MaxWeight reports the weight bound set by WithMaxWeight, or 0 when the
// cache bounds entry counts instead.
func (c *Cache[K, V]) MaxWeight() int64 { return c.maxWeight }

// GetMany looks up a batch of keys, taking each touched shard's lock once
// rather than once per key. It returns parallel value/ok slices in key
// order.
func (c *Cache[K, V]) GetMany(keys []K) ([]V, []bool) {
	vals := make([]V, len(keys))
	oks := make([]bool, len(keys))
	if len(keys) == 0 {
		return vals, oks
	}
	now := time.Now().UnixNano()
	groups, hashes := c.groupByShard(keys)
	for si, idxs := range groups {
		s := &c.shards[si]
		if s.adm != nil {
			for _, i := range idxs {
				s.adm.touch(hashes[i])
			}
		}
		var lazy []*entry[K, V]
		locked := s.pol.lockedHits()
		if locked {
			s.mu.Lock()
		} else {
			s.mu.RLock()
		}
		hits, misses, expired := int64(0), int64(0), int64(0)
		for _, i := range idxs {
			e := s.m[keys[i]]
			if e == nil {
				misses++
				continue
			}
			if e.expires != 0 && now >= e.expires {
				misses++
				if locked {
					s.removeLocked(e)
					expired++
				} else {
					lazy = append(lazy, e)
				}
				continue
			}
			s.pol.hit(e)
			vals[i], oks[i] = e.val, true
			hits++
		}
		if locked {
			s.mu.Unlock()
		} else {
			s.mu.RUnlock()
		}
		// Expired entries found under the read lock are removed after it
		// is released, re-validated exactly like the single-key path.
		for _, e := range lazy {
			s.expireLazy(e.key, e)
		}
		s.stats.hits.Add(hits)
		s.stats.misses.Add(misses)
		s.stats.expired.Add(expired)
	}
	return vals, oks
}

// SetMany caches the parallel keys/vals batch with the default TTL,
// taking each touched shard's lock once. It panics if the slices differ
// in length.
func (c *Cache[K, V]) SetMany(keys []K, vals []V) {
	if len(keys) != len(vals) {
		panic("cache: SetMany slice lengths differ")
	}
	if len(keys) == 0 {
		return
	}
	var expires int64
	if c.ttl > 0 {
		expires = time.Now().Add(c.ttl).UnixNano()
		c.maybeStartSweeper()
	}
	groups, hashes := c.groupByShard(keys)
	for si, idxs := range groups {
		s := &c.shards[si]
		if s.adm != nil {
			for _, i := range idxs {
				s.adm.touch(hashes[i])
			}
		}
		s.mu.Lock()
		for _, i := range idxs {
			s.setLocked(keys[i], vals[i], hashes[i], c.weigh(keys[i], vals[i]), expires)
		}
		s.mu.Unlock()
	}
}

// groupByShard buckets key positions by shard index so the batch
// operations lock each shard exactly once, returning each key's hash
// alongside so callers hash exactly once per key.
func (c *Cache[K, V]) groupByShard(keys []K) (map[uint64][]int, []uint64) {
	groups := make(map[uint64][]int)
	hashes := make([]uint64, len(keys))
	for i, k := range keys {
		hashes[i] = c.hash(k)
		si := hashes[i] & c.mask
		groups[si] = append(groups[si], i)
	}
	return groups, hashes
}

// flight is one in-progress load: the leader fills val/err and closes
// done; followers wait on done (or their context) and share the outcome.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// GetOrLoad returns the cached value for k, or loads it exactly once:
// concurrent GetOrLoad calls for the same key while a load is in flight
// wait for that load instead of issuing their own (the singleflight
// pattern — cache-aside without origin stampedes; suppressed callers are
// counted in Stats.StampedeSuppressed). A successful load is cached with
// the default TTL before the waiters are released; a failed load is not
// cached, and every caller of that flight receives the loader's error. A
// waiter whose ctx ends first returns ctx's error while the load
// continues for the others; ctx is otherwise only passed through to the
// loader.
func (c *Cache[K, V]) GetOrLoad(ctx context.Context, k K, load func(context.Context, K) (V, error)) (V, error) {
	if v, ok := c.Get(k); ok {
		return v, nil
	}
	s := c.shardFor(k)
	s.mu.Lock()
	// Re-check under the exclusive lock: the value may have landed (or a
	// flight may have started) since the miss.
	if e := s.m[k]; e != nil {
		if e.expires == 0 || time.Now().UnixNano() < e.expires {
			s.pol.hit(e) // exclusive lock held: safe for every policy
			v := e.val
			s.mu.Unlock()
			return v, nil
		}
		s.removeLocked(e)
		s.stats.expired.Add(1)
	}
	if s.flights == nil {
		s.flights = make(map[K]*flight[V])
	}
	if f := s.flights[k]; f != nil {
		s.mu.Unlock()
		s.stats.suppressed.Add(1)
		select {
		case <-f.done:
			return f.val, f.err
		case <-ctx.Done():
			var zero V
			return zero, ctx.Err()
		}
	}
	f := &flight[V]{done: make(chan struct{})}
	s.flights[k] = f
	s.mu.Unlock()

	s.stats.loads.Add(1)
	settled := false
	defer func() {
		// Unregister and release the followers even if the loader
		// panicked: a stranded flight would wedge every later miss on k.
		// The panic itself propagates on the leader's goroutine.
		if !settled {
			f.err = ErrLoaderPanic
		}
		s.mu.Lock()
		delete(s.flights, k)
		s.mu.Unlock()
		close(f.done)
	}()
	f.val, f.err = load(ctx, k)
	settled = true
	if f.err == nil {
		c.Set(k, f.val)
	}
	return f.val, f.err
}

// shardStats are one shard's gauge slice; Stats folds them. Plain atomics
// suffice: each counter is only contended by goroutines already sharing
// the shard's lock, and the shard's trailing pad keeps neighbouring
// shards' counters on separate cache lines.
type shardStats struct {
	hits, misses, evictions, expired, loads, suppressed atomic.Int64

	// weightRes is a gauge, not a counter: the shard's resident weight,
	// mutated only under the exclusive lock (atomic so Stats can read it
	// without one). The admission pair are counters like the rest.
	weightRes, admitRejects, evictConsidered atomic.Int64
}

// Stats is a point-in-time snapshot of the cache's gauges. Counts are
// exact in quiescent states; under concurrency each gauge is individually
// accurate but the set is not an atomic snapshot.
type Stats struct {
	// Hits and Misses partition every completed lookup (Get, GetMany,
	// and GetOrLoad's initial probe): Hits + Misses == Lookups().
	Hits, Misses int64
	// Evictions counts entries removed by the policy to respect capacity;
	// Expired counts entries removed because their TTL passed (by a lazy
	// read, a Delete that arrived late, or the background sweeper).
	Evictions, Expired int64
	// Loads counts loader invocations by GetOrLoad leaders;
	// StampedeSuppressed counts the GetOrLoad callers that waited on an
	// in-flight load instead of issuing their own. Suppressed callers
	// missed first, so StampedeSuppressed <= Misses.
	Loads, StampedeSuppressed int64
	// WeightResident is the total weight of resident entries — at most
	// MaxWeight when WithMaxWeight bounds the cache, and simply the entry
	// count otherwise (every unweighted entry weighs 1).
	WeightResident int64
	// EvictConsidered counts victims examined at the eviction boundary
	// (including rejected inserts whose weight alone exceeded a shard's
	// budget); AdmissionRejects counts the inserts the admission filter —
	// or the weight-feasibility check — turned away instead of evicting
	// for. Every rejection considered a victim first, so
	// AdmissionRejects <= EvictConsidered.
	EvictConsidered, AdmissionRejects int64
}

// Lookups returns the total completed lookups (Hits + Misses).
func (s Stats) Lookups() int64 { return s.Hits + s.Misses }

// HitRate returns Hits / Lookups in [0, 1], or 0 before any lookup.
func (s Stats) HitRate() float64 {
	if l := s.Lookups(); l > 0 {
		return float64(s.Hits) / float64(l)
	}
	return 0
}

// Stats returns a snapshot of the cache's gauges summed across shards.
func (c *Cache[K, V]) Stats() Stats {
	var t Stats
	for i := range c.shards {
		st := &c.shards[i].stats
		t.Hits += st.hits.Load()
		t.Misses += st.misses.Load()
		t.Evictions += st.evictions.Load()
		t.Expired += st.expired.Load()
		t.Loads += st.loads.Load()
		t.StampedeSuppressed += st.suppressed.Load()
		t.WeightResident += st.weightRes.Load()
		t.EvictConsidered += st.evictConsidered.Load()
		t.AdmissionRejects += st.admitRejects.Load()
	}
	return t
}

// sweeper owns the background expiry goroutine's lifecycle: started
// lazily by the first expiring Set (so TTL-less caches never spawn a
// goroutine), stopped by Close.
type sweeper struct {
	mu      sync.Mutex
	started bool
	closed  bool
	stop    chan struct{}
	done    chan struct{}
}

func (c *Cache[K, V]) maybeStartSweeper() {
	if c.sweepBy <= 0 {
		return
	}
	w := &c.sweep
	w.mu.Lock()
	if w.started || w.closed {
		w.mu.Unlock()
		return
	}
	w.started = true
	w.stop = make(chan struct{})
	w.done = make(chan struct{})
	w.mu.Unlock()
	go c.runSweeper(w.stop, w.done)
}

// runSweeper wakes every sweep interval and scans a bounded batch of each
// shard for expired entries: amortized cleanup, not a stop-the-world
// scan. Go's randomized map iteration order gives successive batches
// probabilistic coverage of the whole shard, and read-side lazy expiry
// catches whatever the sweeper has not reached yet.
func (c *Cache[K, V]) runSweeper(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(c.sweepBy)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			now := time.Now().UnixNano()
			for i := range c.shards {
				c.shards[i].sweepBatch(now)
			}
		}
	}
}

// sweepBatch removes up to a capacity fraction of expired entries from
// one shard.
func (s *shard[K, V]) sweepBatch(now int64) {
	limit := s.cap / 8
	if limit < 32 {
		limit = 32
	}
	s.mu.Lock()
	seen, removed := 0, int64(0)
	for _, e := range s.m {
		if seen++; seen > limit {
			break
		}
		if e.expires != 0 && now >= e.expires {
			s.removeLocked(e)
			removed++
		}
	}
	s.mu.Unlock()
	s.stats.expired.Add(removed)
}

// Close stops the background sweeper, if one ever started, and waits for
// it to exit. It is idempotent, safe to call concurrently with cache
// operations, and the cache remains usable afterwards (minus background
// expiry).
func (c *Cache[K, V]) Close() {
	w := &c.sweep
	w.mu.Lock()
	wasStarted, wasClosed := w.started, w.closed
	w.closed = true
	if wasStarted && !wasClosed {
		close(w.stop)
	}
	w.mu.Unlock()
	if wasStarted && !wasClosed {
		<-w.done
	}
}
