package cache

import "time"

// Policy selects the eviction policy a cache shard runs.
type Policy int

const (
	// SIEVE is the default: FIFO with a one-bit second chance and a
	// sweeping hand (NSDI 2024). Lock-free hits, scan resistant, and the
	// simplest of the three — prefer it unless a trace says otherwise.
	SIEVE Policy = iota
	// S3FIFO is the three-queue FIFO family (SOSP 2023): a probationary
	// small queue filters one-hit wonders through a ghost queue before
	// they can pollute the main queue. Strongest on traces with many
	// never-reused keys (scans, crawls); slightly more bookkeeping than
	// SIEVE.
	S3FIFO
	// LRU is the classic locked least-recently-used list. Hits take the
	// shard's exclusive lock to move the entry to the front, so reads
	// serialise per shard — it exists as the reference policy and
	// benchmark baseline.
	LRU
)

// String names the policy for logs and benchmark labels.
func (p Policy) String() string {
	switch p {
	case SIEVE:
		return "SIEVE"
	case S3FIFO:
		return "S3-FIFO"
	case LRU:
		return "LRU"
	default:
		return "unknown"
	}
}

// Option configures a cache constructor.
type Option func(*config)

type config struct {
	policy   Policy
	shards   int
	ttl      time.Duration
	sweep    time.Duration
	sweepSet bool
}

// WithPolicy selects the eviction policy (default SIEVE).
func WithPolicy(p Policy) Option {
	return func(c *config) { c.policy = p }
}

// WithShards sets the shard count, rounded up to a power of two and
// clamped so every shard holds at least one entry. The default scales
// with GOMAXPROCS; use 1 to get a single lock domain (the locked-LRU
// baseline, or a deterministic single shard for tests).
func WithShards(n int) Option {
	return func(c *config) { c.shards = n }
}

// WithTTL sets the default time-to-live applied by Set. Entries older
// than their TTL are misses on read (lazy expiry) and are reclaimed by
// the background sweeper, which this option enables (interval = the TTL,
// unless WithSweepInterval overrides it). Zero — the default — means
// entries never expire. Per-entry deadlines go through SetTTL.
func WithTTL(d time.Duration) Option {
	return func(c *config) { c.ttl = d }
}

// WithSweepInterval sets how often the background sweeper scans for
// expired entries, or disables it entirely with d <= 0 (lazy read-side
// expiry still applies; an untouched expired entry then stays resident
// until evicted). The sweeper runs only when the cache can expire
// anything, i.e. WithTTL is set or SetTTL is used; Close stops it.
func WithSweepInterval(d time.Duration) Option {
	return func(c *config) { c.sweep = d; c.sweepSet = true }
}
