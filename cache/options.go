package cache

import "time"

// Policy selects the eviction policy a cache shard runs.
type Policy int

const (
	// SIEVE is the default: FIFO with a one-bit second chance and a
	// sweeping hand (NSDI 2024). Lock-free hits, scan resistant, and the
	// simplest of the three — prefer it unless a trace says otherwise.
	SIEVE Policy = iota
	// S3FIFO is the three-queue FIFO family (SOSP 2023): a probationary
	// small queue filters one-hit wonders through a ghost queue before
	// they can pollute the main queue. Strongest on traces with many
	// never-reused keys (scans, crawls); slightly more bookkeeping than
	// SIEVE.
	S3FIFO
	// LRU is the classic locked least-recently-used list. Hits take the
	// shard's exclusive lock to move the entry to the front, so reads
	// serialise per shard — it exists as the reference policy and
	// benchmark baseline.
	LRU
)

// String names the policy for logs and benchmark labels.
func (p Policy) String() string {
	switch p {
	case SIEVE:
		return "SIEVE"
	case S3FIFO:
		return "S3-FIFO"
	case LRU:
		return "LRU"
	default:
		return "unknown"
	}
}

// Admission selects the admission filter consulted at the eviction
// boundary: when a shard is full, the filter decides whether the incoming
// key is worth evicting the policy's chosen victim for.
type Admission int

const (
	// AdmitAll is the default: every insert is admitted and the policy
	// evicts unconditionally — the pre-admission behaviour.
	AdmitAll Admission = iota
	// TinyLFU admits an incoming key only when its sketched frequency
	// strictly exceeds the would-be victim's (Einziger, Friedman & Manes,
	// ACM TOS 2017). Every lookup feeds a per-shard count-min sketch with
	// doorkeeper and periodic aging (internal/sketch); a full shard then
	// rejects colder-than-victim inserts outright, which is what keeps a
	// sequential scan from flushing a working set that SIEVE or S3-FIFO
	// alone would slowly surrender. Rejected inserts count in
	// Stats.AdmissionRejects.
	TinyLFU
)

// String names the admission filter for logs and benchmark labels.
func (a Admission) String() string {
	switch a {
	case AdmitAll:
		return "admit-all"
	case TinyLFU:
		return "TinyLFU"
	default:
		return "unknown"
	}
}

// Option configures a cache constructor.
type Option func(*config)

type config struct {
	policy    Policy
	shards    int
	ttl       time.Duration
	sweep     time.Duration
	sweepSet  bool
	admission Admission
	maxWeight int64
	weigher   any // func(K, V) int64; asserted in New
}

// WithPolicy selects the eviction policy (default SIEVE).
func WithPolicy(p Policy) Option {
	return func(c *config) { c.policy = p }
}

// WithShards sets the shard count, rounded up to a power of two and
// clamped so every shard holds at least one entry. The default scales
// with GOMAXPROCS; use 1 to get a single lock domain (the locked-LRU
// baseline, or a deterministic single shard for tests).
func WithShards(n int) Option {
	return func(c *config) { c.shards = n }
}

// WithTTL sets the default time-to-live applied by Set. Entries older
// than their TTL are misses on read (lazy expiry) and are reclaimed by
// the background sweeper, which this option enables (interval = the TTL,
// unless WithSweepInterval overrides it). Zero — the default — means
// entries never expire. Per-entry deadlines go through SetTTL.
func WithTTL(d time.Duration) Option {
	return func(c *config) { c.ttl = d }
}

// WithAdmission selects the admission filter (default AdmitAll).
func WithAdmission(a Admission) Option {
	return func(c *config) { c.admission = a }
}

// WithMaxWeight switches the cache's capacity bound from entry counts to
// total weight: eviction then runs until the resident weight plus the
// incoming entry's weight fits under w, which may claim several victims
// for one insert (or none, when the incoming entry replaces enough). The
// constructor capacity still sizes the shard tables and policies, but no
// longer bounds the entry count. Per-entry weights come from SetWeight or
// WithWeigher and default to 1; an entry whose weight alone exceeds the
// per-shard share of w is rejected rather than admitted unevictable.
// w <= 0 disables the weight bound (the default, counting entries).
func WithMaxWeight(w int64) Option {
	return func(c *config) { c.maxWeight = w }
}

// WithWeigher installs a function that computes every stored entry's
// weight from its key and value (for example, bytes of both). It is
// generic where Option is not, so the type parameters must match the
// cache being constructed — New panics otherwise. SetWeight overrides the
// weigher for individual entries; weights below 1 are clamped to 1.
// A weigher is only consulted when WithMaxWeight enables weight-bounded
// capacity.
func WithWeigher[K comparable, V any](fn func(K, V) int64) Option {
	return func(c *config) { c.weigher = fn }
}

// WithSweepInterval sets how often the background sweeper scans for
// expired entries, or disables it entirely with d <= 0 (lazy read-side
// expiry still applies; an untouched expired entry then stays resident
// until evicted). The sweeper runs only when the cache can expire
// anything, i.e. WithTTL is set or SetTTL is used; Close stops it.
func WithSweepInterval(d time.Duration) Option {
	return func(c *config) { c.sweep = d; c.sweepSet = true }
}
