package cache

import (
	"fmt"
	"testing"
)

// fnv64 is a deterministic key hash the admission trace tests swap in for
// the cache's randomly seeded default: with a fixed hash, a fixed access
// sequence drives the per-shard sketch (whose seed is already
// deterministic) through exactly the same estimates on every run.
func fnv64(k string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(k); i++ {
		h ^= uint64(k[i])
		h *= 1099511628211
	}
	return h
}

// tinyLFU returns a single-shard TinyLFU cache with a deterministic hash,
// so admission decisions replay identically on every run.
func tinyLFU(capacity int, p Policy) *Cache[string, int] {
	c := New[string, int](capacity, WithPolicy(p), WithShards(1), WithAdmission(TinyLFU))
	c.hash = fnv64
	return c
}

// TestAdmissionRejectsColdCandidate pins the core TinyLFU decision: a key
// seen once must not displace residents seen twice. Each resident was Set
// (one touch) and Get (another), so its estimate is 2; the candidate's
// single Set leaves it at 1 (doorkeeper only), and 1 > 2 fails.
func TestAdmissionRejectsColdCandidate(t *testing.T) {
	c := tinyLFU(3, SIEVE)
	for _, k := range []string{"a", "b", "c"} {
		c.Set(k, 1)
		if _, ok := c.Get(k); !ok {
			t.Fatalf("warm-up Get(%q) missed", k)
		}
	}
	c.Set("d", 4)
	wantAbsent(t, c, "d")
	wantPresent(t, c, "a", "b", "c")
	st := c.Stats()
	if st.AdmissionRejects != 1 {
		t.Fatalf("AdmissionRejects = %d, want 1", st.AdmissionRejects)
	}
	if st.Evictions != 0 {
		t.Fatalf("Evictions = %d, want 0 (rejected insert must not evict)", st.Evictions)
	}
	if st.AdmissionRejects > st.EvictConsidered {
		t.Fatalf("AdmissionRejects %d > EvictConsidered %d", st.AdmissionRejects, st.EvictConsidered)
	}
}

// TestAdmissionAdmitsHotCandidate continues the cold-candidate trace: the
// same rejected key, once it accumulates more touches than the victim
// (misses feed the sketch too), wins the comparison and evicts.
func TestAdmissionAdmitsHotCandidate(t *testing.T) {
	c := tinyLFU(3, SIEVE)
	for _, k := range []string{"a", "b", "c"} {
		c.Set(k, 1)
		c.Get(k)
	}
	c.Set("d", 4) // rejected: estimate 1 vs 2
	wantAbsent(t, c, "d")
	for i := 0; i < 3; i++ {
		c.Get("d") // misses, but each one still counts as a touch
	}
	c.Set("d", 4) // now estimate 5 vs the victim's 2
	wantPresent(t, c, "d")
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", st.Evictions)
	}
	if st.AdmissionRejects != 1 {
		t.Fatalf("AdmissionRejects = %d, want 1 (only the first Set)", st.AdmissionRejects)
	}
}

// TestAdmissionDoorkeeperScan pins the doorkeeper + strict-comparison
// combination that makes TinyLFU scan-proof: every key in a
// first-touch-only scan estimates 1 (doorkeeper, counters untouched), a
// resident Set once also estimates 1, and the strict > breaks the tie for
// residency — so a scan of any length is rejected wholesale, even against
// residents that were never read.
func TestAdmissionDoorkeeperScan(t *testing.T) {
	c := tinyLFU(3, SIEVE)
	c.Set("a", 1)
	c.Set("b", 2)
	c.Set("c", 3)
	for i := 0; i < 10; i++ {
		c.Set(fmt.Sprintf("s%d", i), i)
	}
	wantPresent(t, c, "a", "b", "c")
	st := c.Stats()
	if st.AdmissionRejects != 10 {
		t.Fatalf("AdmissionRejects = %d, want 10 (every scan key)", st.AdmissionRejects)
	}
	if st.Evictions != 0 {
		t.Fatalf("Evictions = %d, want 0", st.Evictions)
	}
	if got := c.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
}

// TestAdmissionFlipsAfterAging pins the decay half of the protocol: a
// saturated resident outvotes a warm candidate, but agings halve the
// resident's estimate until the same candidate wins. The test drives the
// shard's sketch directly (in-package) rather than forcing sample-size
// touches through the cache.
func TestAdmissionFlipsAfterAging(t *testing.T) {
	c := tinyLFU(1, SIEVE)
	c.Set("hot", 1)
	for i := 0; i < 30; i++ {
		c.Get("hot") // saturate: estimate 16
	}
	for i := 0; i < 4; i++ {
		c.Get("d") // warm the candidate
	}
	c.Set("d", 4) // the Set's own touch lands too: estimate 5 vs 16
	wantAbsent(t, c, "d")
	if st := c.Stats(); st.AdmissionRejects != 1 {
		t.Fatalf("AdmissionRejects = %d, want 1 (5 vs saturated 16)", st.AdmissionRejects)
	}

	// Two agings: 16 -> 7 -> 3. The doorkeeper cleared too, so re-warm the
	// candidate (4 touches + the Set's: estimate 5) and retry — 5 > 3
	// admits.
	c.shards[0].adm.sk.Age()
	c.shards[0].adm.sk.Age()
	for i := 0; i < 4; i++ {
		c.Get("d")
	}
	c.Set("d", 4)
	wantPresent(t, c, "d")
	wantAbsent(t, c, "hot")
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", st.Evictions)
	}
}

// TestAdmissionComposesWithPolicies smoke-checks WithAdmission against
// every eviction policy: the cold-scan rejection must hold regardless of
// which policy picks the victim.
func TestAdmissionComposesWithPolicies(t *testing.T) {
	for _, p := range []Policy{SIEVE, S3FIFO, LRU} {
		c := tinyLFU(3, p)
		for _, k := range []string{"a", "b", "c"} {
			c.Set(k, 1)
			c.Get(k)
		}
		c.Set("d", 4)
		if _, ok := c.Get("d"); ok {
			t.Errorf("%v: cold candidate admitted", p)
		}
		if got := c.Len(); got != 3 {
			t.Errorf("%v: Len = %d, want 3", p, got)
		}
		if st := c.Stats(); st.AdmissionRejects == 0 {
			t.Errorf("%v: AdmissionRejects = 0, want > 0", p)
		}
	}
}
