package cache

import "sync/atomic"

// entry is one cached key/value pair plus the intrusive bookkeeping every
// eviction policy needs. The links and region tag are owned by the shard's
// policy and only touched under the shard's exclusive lock; the reference
// bits (visited, freq) are atomics so the scan-resistant policies can
// record hits under the shared read lock without ever upgrading it —
// that lock-avoidance on the hit path is the entire point of SIEVE and
// S3-FIFO, and it is what the S17 benchmarks measure against the locked
// LRU baseline.
type entry[K comparable, V any] struct {
	key     K
	val     V
	hash    uint64 // the key's shard-placement hash, kept for the admission sketch
	weight  int64  // capacity charge (1 unless SetWeight/WithWeigher said otherwise)
	expires int64  // unix nanoseconds; 0 = never expires

	// Intrusive doubly-linked list position: prev points toward the head
	// (newer), next toward the tail (older). Guarded by the shard lock.
	prev, next *entry[K, V]

	visited atomic.Bool  // SIEVE reference bit, set on hit
	freq    atomic.Int32 // S3-FIFO frequency counter, saturating at 3
	region  int8         // S3-FIFO region the entry currently lives in
}

// S3-FIFO regions.
const (
	regionSmall int8 = iota
	regionMain
)

// policy is the per-shard eviction strategy. All methods except hit are
// called with the shard's exclusive lock held; hit is called with at least
// the read lock (exactly the read lock when lockedHits is false), so
// policies whose hit bookkeeping mutates shared links must demand the
// exclusive lock via lockedHits.
type policy[K comparable, V any] interface {
	// lockedHits reports whether hit mutates policy-shared state (LRU's
	// move-to-front) and therefore needs the shard's exclusive lock. The
	// scan-resistant policies return false: their hit is a per-entry
	// atomic store, safe under the shared read lock.
	lockedHits() bool
	// hit records an access to a resident entry.
	hit(e *entry[K, V])
	// add admits a newly inserted entry.
	add(e *entry[K, V])
	// victim returns the entry evict would unlink next, or nil if empty,
	// without unlinking it — the peek the W-TinyLFU admission filter
	// compares the incoming candidate against before anything is
	// removed. Policies may perform the same internal relocations evict
	// does (SIEVE's bit-clearing sweep, S3-FIFO's promotions), so an
	// evict immediately after settles on the same entry in O(1).
	victim() *entry[K, V]
	// evict unlinks and returns the next victim, or nil if empty. It is
	// called only when the shard is over capacity; policies may relocate
	// entries internally (SIEVE's second chance, S3-FIFO's promotions)
	// before settling on one.
	evict() *entry[K, V]
	// remove unlinks a resident entry (explicit Delete or TTL expiry).
	remove(e *entry[K, V])
}

// list is the intrusive doubly-linked list the policies share: head is the
// most recently inserted end, tail the oldest. Entries link themselves, so
// policy bookkeeping on hits and evictions is allocation-free.
type list[K comparable, V any] struct {
	head, tail *entry[K, V]
	n          int
}

func (l *list[K, V]) pushFront(e *entry[K, V]) {
	e.prev = nil
	e.next = l.head
	if l.head != nil {
		l.head.prev = e
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
	l.n++
}

func (l *list[K, V]) remove(e *entry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
	l.n--
}

func (l *list[K, V]) popTail() *entry[K, V] {
	e := l.tail
	if e != nil {
		l.remove(e)
	}
	return e
}
