package cache

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// single returns a single-shard cache so eviction order is deterministic.
func single(capacity int, p Policy) *Cache[string, int] {
	return New[string, int](capacity, WithPolicy(p), WithShards(1))
}

func wantPresent(t *testing.T, c *Cache[string, int], keys ...string) {
	t.Helper()
	for _, k := range keys {
		if _, ok := c.Get(k); !ok {
			t.Errorf("Get(%q) = miss, want hit", k)
		}
	}
}

func wantAbsent(t *testing.T, c *Cache[string, int], keys ...string) {
	t.Helper()
	for _, k := range keys {
		if v, ok := c.Get(k); ok {
			t.Errorf("Get(%q) = %d, want miss", k, v)
		}
	}
}

// TestSIEVEEvictionOrder pins the SIEVE hand walk on a hand-computed
// history: with {a,b,c} resident and only a visited, inserting d must
// sweep past a (clearing its bit) and evict b, the oldest unvisited entry.
func TestSIEVEEvictionOrder(t *testing.T) {
	c := single(3, SIEVE)
	c.Set("a", 1)
	c.Set("b", 2)
	c.Set("c", 3)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("warm-up Get(a) missed")
	}
	c.Set("d", 4)
	wantAbsent(t, c, "b")
	wantPresent(t, c, "a", "c", "d")
	if got := c.Stats().Evictions; got != 1 {
		t.Fatalf("Evictions = %d, want 1", got)
	}
	// a's bit was cleared by the sweep; with everything now visited except
	// a, the hand (parked at c) evicts c next.
	c.Set("d", 40) // refresh d's bit via the update-counts-as-hit path
	c.Set("e", 5)
	wantAbsent(t, c, "c")
	wantPresent(t, c, "a", "d", "e")
}

// TestS3FIFOEvictionOrder pins the S3-FIFO trace: one-hit wonders leave
// through the small queue into the ghost queue, reused entries are
// promoted to main, and a ghost key re-enters straight into main.
func TestS3FIFOEvictionOrder(t *testing.T) {
	c := single(4, S3FIFO) // smallCap = 1
	for i, k := range []string{"a", "b", "c", "d"} {
		c.Set(k, i)
	}
	c.Get("b")
	c.Get("b") // freq(b) = 2: survives probation
	c.Set("e", 4)
	// small over capacity: tail a has freq 0 -> evicted (and ghosted).
	wantAbsent(t, c, "a")
	wantPresent(t, c, "b", "c", "d", "e")
	c.Set("a", 10)
	// a's ghost promotes it straight to main; the eviction pass then pops
	// small's tail b (freq 2 -> promote to main) and evicts c (freq 0).
	wantAbsent(t, c, "c")
	wantPresent(t, c, "a", "b", "d", "e")
	if got := c.Stats().Evictions; got != 2 {
		t.Fatalf("Evictions = %d, want 2", got)
	}
}

// TestLRUEvictionOrder pins classic LRU: a hit saves an entry, the least
// recently used entry goes.
func TestLRUEvictionOrder(t *testing.T) {
	c := single(3, LRU)
	c.Set("a", 1)
	c.Set("b", 2)
	c.Set("c", 3)
	c.Get("a")
	c.Set("d", 4) // b is now least recently used
	wantAbsent(t, c, "b")
	wantPresent(t, c, "a", "c", "d")
}

func TestCapacityIsRespected(t *testing.T) {
	for _, p := range []Policy{SIEVE, S3FIFO, LRU} {
		t.Run(p.String(), func(t *testing.T) {
			c := New[int, int](10, WithPolicy(p), WithShards(4))
			for i := 0; i < 1000; i++ {
				c.Set(i, i)
				if n := c.Len(); n > 10 {
					t.Fatalf("Len = %d after %d inserts, want <= 10", n, i+1)
				}
			}
			if n := c.Len(); n != 10 {
				t.Fatalf("Len = %d at steady state, want 10 (capacity)", n)
			}
		})
	}
}

// TestShardCapacitySplit checks that capacity splits exactly: shard caps
// must sum to the requested capacity even when it does not divide evenly.
func TestShardCapacitySplit(t *testing.T) {
	c := New[int, int](10, WithShards(4))
	sum := 0
	for i := range c.shards {
		if c.shards[i].cap < 1 {
			t.Fatalf("shard %d has capacity %d, want >= 1", i, c.shards[i].cap)
		}
		sum += c.shards[i].cap
	}
	if sum != 10 {
		t.Fatalf("shard capacities sum to %d, want 10", sum)
	}
	// More shards than capacity: the shard count clamps, never the other
	// way around.
	c2 := New[int, int](3, WithShards(16))
	if len(c2.shards) > 3 {
		t.Fatalf("got %d shards for capacity 3, want <= 3", len(c2.shards))
	}
}

func TestDeleteAndLen(t *testing.T) {
	c := single(4, SIEVE)
	c.Set("a", 1)
	c.Set("b", 2)
	if !c.Delete("a") {
		t.Fatal("Delete(a) = false, want true")
	}
	if c.Delete("a") {
		t.Fatal("second Delete(a) = true, want false")
	}
	if n := c.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
	wantAbsent(t, c, "a")
	wantPresent(t, c, "b")
}

func TestTTLLazyExpiry(t *testing.T) {
	c := New[string, int](8, WithShards(1), WithSweepInterval(0))
	defer c.Close()
	c.SetTTL("k", 1, 10*time.Millisecond)
	wantPresent(t, c, "k")
	time.Sleep(20 * time.Millisecond)
	wantAbsent(t, c, "k")
	if n := c.Len(); n != 0 {
		t.Fatalf("Len = %d after lazy expiry, want 0", n)
	}
	if st := c.Stats(); st.Expired != 1 {
		t.Fatalf("Expired = %d, want 1", st.Expired)
	}
	// An expired entry Delete never saw as live reports false.
	c.SetTTL("k", 2, 5*time.Millisecond)
	time.Sleep(10 * time.Millisecond)
	if c.Delete("k") {
		t.Fatal("Delete of expired entry = true, want false")
	}
}

func TestDefaultTTLAndSweeper(t *testing.T) {
	// One shard: with the randomly seeded hash, 32 keys over several
	// capacity-8 shards occasionally overload one and evict instead of
	// expiring, flaking the exact Expired count below.
	c := New[int, int](64, WithShards(1),
		WithTTL(10*time.Millisecond), WithSweepInterval(5*time.Millisecond))
	defer c.Close()
	for i := 0; i < 32; i++ {
		c.Set(i, i)
	}
	deadline := time.Now().Add(2 * time.Second)
	for c.Len() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sweeper left Len = %d, want 0", c.Len())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := c.Stats(); st.Expired != 32 {
		t.Fatalf("Expired = %d, want 32", st.Expired)
	}
}

func TestCloseIdempotent(t *testing.T) {
	c := New[int, int](8, WithTTL(time.Hour))
	c.Set(1, 1) // starts the sweeper
	c.Close()
	c.Close()
	// The cache stays usable after Close; only background expiry stops.
	c.Set(2, 2)
	if _, ok := c.Get(2); !ok {
		t.Fatal("Get after Close missed")
	}
}

func TestStatsPartitionLookups(t *testing.T) {
	c := New[int, int](16, WithShards(2))
	for i := 0; i < 100; i++ {
		c.Set(i%24, i)
		c.Get(i % 32)
	}
	st := c.Stats()
	if st.Hits+st.Misses != st.Lookups() || st.Lookups() != 100 {
		t.Fatalf("Hits(%d) + Misses(%d) != Lookups(%d) == 100", st.Hits, st.Misses, st.Lookups())
	}
	if hr := st.HitRate(); hr <= 0 || hr > 1 {
		t.Fatalf("HitRate = %v, want in (0, 1]", hr)
	}
}

func TestGetManySetMany(t *testing.T) {
	c := New[int, string](32, WithShards(4))
	keys := []int{1, 2, 3, 4, 5}
	vals := []string{"a", "b", "c", "d", "e"}
	c.SetMany(keys, vals)
	got, oks := c.GetMany([]int{5, 99, 1, 3})
	want := []string{"e", "", "a", "c"}
	wantOK := []bool{true, false, true, true}
	for i := range got {
		if got[i] != want[i] || oks[i] != wantOK[i] {
			t.Fatalf("GetMany[%d] = (%q, %v), want (%q, %v)", i, got[i], oks[i], want[i], wantOK[i])
		}
	}
	st := c.Stats()
	if st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("Stats = %+v, want 3 hits / 1 miss", st)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetMany with mismatched lengths did not panic")
		}
	}()
	c.SetMany([]int{1}, nil)
}

func TestGetManyExpiresLazily(t *testing.T) {
	for _, p := range []Policy{SIEVE, LRU} { // read-locked and write-locked paths
		t.Run(p.String(), func(t *testing.T) {
			c := New[int, int](8, WithPolicy(p), WithShards(1), WithSweepInterval(0))
			c.SetTTL(1, 1, 5*time.Millisecond)
			c.SetTTL(2, 2, time.Hour)
			time.Sleep(10 * time.Millisecond)
			_, oks := c.GetMany([]int{1, 2})
			if oks[0] || !oks[1] {
				t.Fatalf("oks = %v, want [false true]", oks)
			}
			if n := c.Len(); n != 1 {
				t.Fatalf("Len = %d after batch expiry, want 1", n)
			}
		})
	}
}

func TestGetOrLoadBasic(t *testing.T) {
	c := New[string, int](8, WithShards(1))
	calls := 0
	load := func(ctx context.Context, k string) (int, error) {
		calls++
		return len(k), nil
	}
	v, err := c.GetOrLoad(context.Background(), "four", load)
	if err != nil || v != 4 {
		t.Fatalf("GetOrLoad = (%d, %v), want (4, nil)", v, err)
	}
	// Second call hits the cache: the loader must not run again.
	v, err = c.GetOrLoad(context.Background(), "four", load)
	if err != nil || v != 4 || calls != 1 {
		t.Fatalf("cached GetOrLoad = (%d, %v) after %d calls, want (4, nil) after 1", v, err, calls)
	}
	// Errors are returned and never cached.
	boom := errors.New("boom")
	_, err = c.GetOrLoad(context.Background(), "bad", func(context.Context, string) (int, error) {
		return 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	wantAbsent2 := func(k string) {
		if _, ok := c.Get(k); ok {
			t.Fatalf("failed load for %q was cached", k)
		}
	}
	wantAbsent2("bad")
}

// TestGetOrLoadSingleflight holds a leader inside the loader, piles
// followers onto the same key, and asserts exactly one loader call with
// every follower counted as suppressed.
func TestGetOrLoadSingleflight(t *testing.T) {
	const followers = 8
	c := New[string, int](8, WithShards(1))
	entered := make(chan struct{})
	release := make(chan struct{})
	var leaderDone sync.WaitGroup
	leaderDone.Add(1)
	go func() {
		defer leaderDone.Done()
		v, err := c.GetOrLoad(context.Background(), "hot", func(context.Context, string) (int, error) {
			close(entered)
			<-release
			return 42, nil
		})
		if err != nil || v != 42 {
			t.Errorf("leader GetOrLoad = (%d, %v), want (42, nil)", v, err)
		}
	}()
	<-entered
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.GetOrLoad(context.Background(), "hot", func(context.Context, string) (int, error) {
				t.Error("follower invoked the loader")
				return 0, nil
			})
			if err != nil || v != 42 {
				t.Errorf("follower GetOrLoad = (%d, %v), want (42, nil)", v, err)
			}
		}()
	}
	// Followers register as suppressed before blocking on the flight, so
	// the gauge tells us when all of them are parked.
	deadline := time.Now().Add(2 * time.Second)
	for c.Stats().StampedeSuppressed < followers {
		if time.Now().After(deadline) {
			t.Fatalf("only %d followers suppressed, want %d", c.Stats().StampedeSuppressed, followers)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	leaderDone.Wait()
	wg.Wait()
	st := c.Stats()
	if st.Loads != 1 || st.StampedeSuppressed != followers {
		t.Fatalf("Loads = %d, StampedeSuppressed = %d, want 1 and %d", st.Loads, st.StampedeSuppressed, followers)
	}
	if st.StampedeSuppressed > st.Misses {
		t.Fatalf("StampedeSuppressed(%d) > Misses(%d)", st.StampedeSuppressed, st.Misses)
	}
}

// TestGetOrLoadFollowerContext cancels a follower's context mid-flight:
// the follower must return the context error while the leader's load
// completes normally.
func TestGetOrLoadFollowerContext(t *testing.T) {
	c := New[string, int](8, WithShards(1))
	entered := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.GetOrLoad(context.Background(), "k", func(context.Context, string) (int, error) {
			close(entered)
			<-release
			return 1, nil
		})
	}()
	<-entered
	ctx, cancel := context.WithCancel(context.Background())
	followerErr := make(chan error, 1)
	go func() {
		_, err := c.GetOrLoad(ctx, "k", nil)
		followerErr <- err
	}()
	for c.Stats().StampedeSuppressed < 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-followerErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("follower err = %v, want context.Canceled", err)
	}
	close(release)
	if v, err := c.GetOrLoad(context.Background(), "k", nil); err != nil || v != 1 {
		t.Fatalf("post-flight GetOrLoad = (%d, %v), want (1, nil)", v, err)
	}
}

// TestGetOrLoadPanic panics inside the leader's loader: the flight must
// still be torn down (no wedged followers, no leaked registration) and
// followers receive ErrLoaderPanic.
func TestGetOrLoadPanic(t *testing.T) {
	c := New[string, int](8, WithShards(1))
	entered := make(chan struct{})
	release := make(chan struct{})
	go func() {
		defer func() {
			if recover() == nil {
				t.Error("loader panic did not propagate to the leader")
			}
		}()
		c.GetOrLoad(context.Background(), "k", func(context.Context, string) (int, error) {
			close(entered)
			<-release
			panic("loader exploded")
		})
	}()
	<-entered
	followerErr := make(chan error, 1)
	go func() {
		_, err := c.GetOrLoad(context.Background(), "k", nil)
		followerErr <- err
	}()
	for c.Stats().StampedeSuppressed < 1 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	if err := <-followerErr; !errors.Is(err, ErrLoaderPanic) {
		t.Fatalf("follower err = %v, want ErrLoaderPanic", err)
	}
	// The flight is gone: a fresh GetOrLoad runs its loader.
	v, err := c.GetOrLoad(context.Background(), "k", func(context.Context, string) (int, error) {
		return 7, nil
	})
	if err != nil || v != 7 {
		t.Fatalf("GetOrLoad after panic = (%d, %v), want (7, nil)", v, err)
	}
}

// TestConcurrentMixed hammers every policy with the full API from many
// goroutines; run under -race this is the shard-locking regression test.
func TestConcurrentMixed(t *testing.T) {
	for _, p := range []Policy{SIEVE, S3FIFO, LRU} {
		t.Run(p.String(), func(t *testing.T) {
			c := New[int, int](128, WithPolicy(p), WithTTL(2*time.Millisecond), WithSweepInterval(time.Millisecond))
			defer c.Close()
			const (
				workers = 8
				ops     = 3000
				keys    = 512
			)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					batchK := make([]int, 8)
					batchV := make([]int, 8)
					for i := 0; i < ops; i++ {
						k := rng.Intn(keys)
						switch rng.Intn(10) {
						case 0:
							c.Delete(k)
						case 1:
							c.SetTTL(k, i, time.Duration(rng.Intn(3))*time.Millisecond)
						case 2:
							c.GetOrLoad(context.Background(), k, func(_ context.Context, k int) (int, error) {
								return k * 2, nil
							})
						case 3:
							for j := range batchK {
								batchK[j] = rng.Intn(keys)
								batchV[j] = j
							}
							c.SetMany(batchK, batchV)
						case 4:
							for j := range batchK {
								batchK[j] = rng.Intn(keys)
							}
							c.GetMany(batchK)
						case 5:
							c.Set(k, i)
						default:
							if v, ok := c.Get(k); ok && v < 0 {
								t.Error("impossible value surfaced")
							}
						}
					}
				}(int64(w))
			}
			wg.Wait()
			if n := c.Len(); n > 128 {
				t.Fatalf("Len = %d, want <= capacity 128", n)
			}
			st := c.Stats()
			if st.Hits+st.Misses != st.Lookups() {
				t.Fatalf("gauge partition broken: %+v", st)
			}
			if st.StampedeSuppressed > st.Misses {
				t.Fatalf("StampedeSuppressed(%d) > Misses(%d)", st.StampedeSuppressed, st.Misses)
			}
		})
	}
}

// TestZeroAndOneCapacity exercises the degenerate sizes every policy must
// survive: capacity 1 means every insert evicts the resident entry.
func TestOneCapacity(t *testing.T) {
	for _, p := range []Policy{SIEVE, S3FIFO, LRU} {
		t.Run(p.String(), func(t *testing.T) {
			c := New[int, int](1, WithPolicy(p))
			for i := 0; i < 100; i++ {
				c.Set(i, i)
				if v, ok := c.Get(i); !ok || v != i {
					t.Fatalf("Get(%d) = (%d, %v) right after Set", i, v, ok)
				}
			}
			if n := c.Len(); n != 1 {
				t.Fatalf("Len = %d, want 1", n)
			}
		})
	}
}

func TestNewPanicsOnZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New[int, int](0)
}

func ExampleCache() {
	c := NewS3FIFO[string, string](128, WithTTL(time.Minute))
	defer c.Close()

	c.Set("greeting", "hello")
	if v, ok := c.Get("greeting"); ok {
		fmt.Println(v)
	}

	v, _ := c.GetOrLoad(context.Background(), "answer",
		func(ctx context.Context, k string) (string, error) {
			return "42", nil // expensive origin fetch, done at most once
		})
	fmt.Println(v)
	// Output:
	// hello
	// 42
}
