package cache

import "github.com/cds-suite/cds/internal/sketch"

// admitter is one shard's W-TinyLFU admission filter: a count-min sketch
// (with doorkeeper and periodic aging — see internal/sketch) fed by every
// lookup and insert on the shard, consulted at the eviction boundary. The
// shard hashes keys once for placement; the same 64-bit hash indexes the
// sketch, so admission costs no extra hashing.
type admitter struct {
	sk *sketch.Sketch
}

// newAdmitter sizes the sketch to the shard: one counter per cacheable
// entry is the standard TinyLFU provisioning (the sketch rounds up to a
// power of two with floor 16), four rows, and the default 10x-width aging
// sample. The seed is deterministic per shard index — all randomness in
// admission comes from the cache's seeded key hashing, which keeps
// single-shard trace tests reproducible.
func newAdmitter(shardCap int, shardIdx uint64) *admitter {
	return &admitter{sk: sketch.New(shardCap, 4, 0x7f4a7c15a1b2c3d4+shardIdx)}
}

// touch records an access to the key hashing to h.
func (a *admitter) touch(h uint64) { a.sk.Touch(h) }

// admit reports whether the candidate key (hash cand) should displace the
// eviction policy's chosen victim (hash victim): admit only when the
// candidate's estimated frequency strictly exceeds the victim's. The
// strict comparison breaks ties in favour of residency, so a cold scan
// (every key estimate <= 1 vs. a resident working set) is rejected
// wholesale instead of cycling the cache.
func (a *admitter) admit(cand, victim uint64) bool {
	return a.sk.Estimate(cand) > a.sk.Estimate(victim)
}
