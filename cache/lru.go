package cache

// lru is the classic least-recently-used policy: a doubly-linked list
// ordered by recency, move-to-front on every hit, evict from the tail. The
// move-to-front mutates shared links, so hits demand the shard's exclusive
// lock (lockedHits) — with WithShards(1) this is exactly the "plain locked
// LRU" every cache paper baselines against, and the S17 benchmarks use it
// that way. Its hit ratio on skewed traces is the reference the
// scan-resistant policies are expected to match while beating it on
// read-path concurrency.
type lru[K comparable, V any] struct {
	l list[K, V]
}

func newLRU[K comparable, V any](int) policy[K, V] {
	return &lru[K, V]{}
}

func (p *lru[K, V]) lockedHits() bool { return true }

func (p *lru[K, V]) hit(e *entry[K, V]) {
	if p.l.head == e {
		return
	}
	p.l.remove(e)
	p.l.pushFront(e)
}

func (p *lru[K, V]) add(e *entry[K, V]) {
	p.l.pushFront(e)
}

func (p *lru[K, V]) victim() *entry[K, V] {
	return p.l.tail
}

func (p *lru[K, V]) evict() *entry[K, V] {
	return p.l.popTail()
}

func (p *lru[K, V]) remove(e *entry[K, V]) {
	p.l.remove(e)
}
