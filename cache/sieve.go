package cache

// sieve implements the SIEVE eviction policy (Zhang, Yang et al., "SIEVE
// is Simpler than LRU: an Efficient Turn-Key Eviction Algorithm for Web
// Caches", NSDI 2024): a FIFO list with a one-bit second chance and a
// "hand" that sweeps from the oldest entry toward the newest. A hit sets
// the entry's visited bit — one atomic store, no list movement, no lock
// upgrade — and eviction walks the hand past visited entries (clearing
// them) until it finds an unvisited victim. Retained entries keep their
// list position, so the hand implicitly partitions the list into a
// frequently-hit old section and a probationary new section; that is what
// makes the policy scan-resistant despite having no explicit segments.
type sieve[K comparable, V any] struct {
	l    list[K, V]
	hand *entry[K, V]
}

func newSieve[K comparable, V any](int) policy[K, V] {
	return &sieve[K, V]{}
}

func (p *sieve[K, V]) lockedHits() bool { return false }

func (p *sieve[K, V]) hit(e *entry[K, V]) {
	e.visited.Store(true)
}

func (p *sieve[K, V]) add(e *entry[K, V]) {
	p.l.pushFront(e)
}

// victim runs the hand walk and parks the hand on the unvisited entry it
// settles on, without unlinking it: evict resumes from there in O(1), and
// the admission filter can inspect the would-be victim first.
func (p *sieve[K, V]) victim() *entry[K, V] {
	e := p.hand
	if e == nil {
		e = p.l.tail
	}
	// Each visited entry is cleared as the hand passes it, so a full lap
	// leaves everything unvisited and the walk terminates in at most 2n
	// steps.
	for e != nil && e.visited.Load() {
		e.visited.Store(false)
		e = e.prev
		if e == nil {
			e = p.l.tail
		}
	}
	p.hand = e // nil when the list is empty
	return e
}

func (p *sieve[K, V]) evict() *entry[K, V] {
	e := p.victim()
	if e == nil {
		return nil
	}
	p.hand = e.prev // may be nil: the next sweep restarts at the tail
	p.l.remove(e)
	return e
}

func (p *sieve[K, V]) remove(e *entry[K, V]) {
	if p.hand == e {
		p.hand = e.prev
	}
	p.l.remove(e)
}
