package cache

// s3fifo implements the S3-FIFO eviction policy (Yang et al., "FIFO
// Queues are All You Need for Cache Eviction", SOSP 2023): three FIFO
// queues instead of an LRU list. New keys enter a small probationary
// queue (~10% of capacity); keys evicted from it with fewer than two hits
// are remembered in a ghost queue (keys only, no values), and a re-insert
// of a ghost key goes straight to the main queue. Eviction from main gives
// entries with a nonzero frequency another lap instead of evicting them.
// The small queue filters one-hit-wonder keys out before they pollute
// main — the scan resistance — while hits are a saturating atomic counter
// update, never a list move, so reads proceed under the shared lock.
type s3fifo[K comparable, V any] struct {
	small, main list[K, V]
	smallCap    int
	ghost       ghost[K]
}

// s3fifoFreqMax saturates the frequency counter: 2 bits of frequency are
// enough to separate the reuse classes, and the cap bounds how long a
// once-hot entry can linger in main after going cold.
const s3fifoFreqMax = 3

func newS3FIFO[K comparable, V any](capacity int) policy[K, V] {
	smallCap := capacity / 10
	if smallCap < 1 {
		smallCap = 1
	}
	return &s3fifo[K, V]{
		smallCap: smallCap,
		ghost:    newGhost[K](capacity),
	}
}

func (p *s3fifo[K, V]) lockedHits() bool { return false }

// hit bumps the saturating frequency counter. The load-then-CAS races
// with concurrent hits and with evict's reset; a lost increment is
// acceptable — the counter is a reuse heuristic, not an invariant.
func (p *s3fifo[K, V]) hit(e *entry[K, V]) {
	if f := e.freq.Load(); f < s3fifoFreqMax {
		e.freq.CompareAndSwap(f, f+1)
	}
}

func (p *s3fifo[K, V]) add(e *entry[K, V]) {
	if p.ghost.take(e.key) {
		// Seen recently enough for its ghost to survive: skip probation.
		e.region = regionMain
		p.main.pushFront(e)
		return
	}
	e.region = regionSmall
	p.small.pushFront(e)
}

// victim performs the promotion/decrement relocations until a settled
// victim sits at the tail of its queue, and returns it without unlinking
// (and without ghosting): evict after it settles on the same entry in
// O(1). Each iteration either returns, moves an entry from small to main,
// or decrements a nonzero frequency in main — all three are bounded, so
// the loop terminates.
func (p *s3fifo[K, V]) victim() *entry[K, V] {
	for {
		if p.small.n > p.smallCap || p.main.n == 0 {
			e := p.small.tail
			if e == nil {
				return nil // both queues empty
			}
			if e.freq.Load() > 1 {
				// Reused while on probation: promote instead of evicting.
				p.small.remove(e)
				e.freq.Store(0)
				e.region = regionMain
				p.main.pushFront(e)
				continue
			}
			return e
		}
		e := p.main.tail
		if e.freq.Load() > 0 {
			// Still warm: one more lap through main.
			p.main.remove(e)
			e.freq.Add(-1)
			p.main.pushFront(e)
			continue
		}
		return e
	}
}

func (p *s3fifo[K, V]) evict() *entry[K, V] {
	e := p.victim()
	if e == nil {
		return nil
	}
	if e.region == regionSmall {
		p.small.remove(e)
		// Evicted from probation: remember the key so a quick re-insert
		// skips straight to main.
		p.ghost.add(e.key)
		return e
	}
	p.main.remove(e)
	return e
}

func (p *s3fifo[K, V]) remove(e *entry[K, V]) {
	if e.region == regionMain {
		p.main.remove(e)
		return
	}
	p.small.remove(e)
}

// ghost is the S3-FIFO ghost queue: a fixed-capacity FIFO of recently
// evicted keys (keys only — ghosts hold no values and do not count toward
// the cache's capacity) with set-membership lookup.
type ghost[K comparable] struct {
	keys map[K]struct{}
	ring []K
	pos  int
	n    int
}

func newGhost[K comparable](capacity int) ghost[K] {
	return ghost[K]{
		keys: make(map[K]struct{}, capacity),
		ring: make([]K, capacity),
	}
}

// add remembers k, displacing the oldest ghost when full.
func (g *ghost[K]) add(k K) {
	if len(g.ring) == 0 {
		return
	}
	if _, ok := g.keys[k]; ok {
		return
	}
	if g.n == len(g.ring) {
		delete(g.keys, g.ring[g.pos])
	} else {
		g.n++
	}
	g.ring[g.pos] = k
	g.pos = (g.pos + 1) % len(g.ring)
	g.keys[k] = struct{}{}
}

// take reports whether k was remembered, forgetting it either way. The
// displaced ring slot keeps the stale key value; membership is decided by
// the map alone, and a slot whose key was taken simply deletes nothing
// when displaced.
func (g *ghost[K]) take(k K) bool {
	if _, ok := g.keys[k]; ok {
		delete(g.keys, k)
		return true
	}
	return false
}
