package cache

import (
	"fmt"
	"testing"
)

// weighted returns a single-shard weight-bounded cache for deterministic
// eviction traces.
func weighted(maxWeight int64, p Policy) *Cache[string, int] {
	return New[string, int](16, WithPolicy(p), WithShards(1), WithMaxWeight(maxWeight))
}

// checkWeightInvariant asserts the weighted-capacity contract the CI
// bench-smoke also watches: resident weight never exceeds the bound, and
// every admission rejection considered a victim first.
func checkWeightInvariant(t *testing.T, c *Cache[string, int]) {
	t.Helper()
	st := c.Stats()
	if c.MaxWeight() > 0 && st.WeightResident > c.MaxWeight() {
		t.Fatalf("WeightResident %d > MaxWeight %d", st.WeightResident, c.MaxWeight())
	}
	if st.AdmissionRejects > st.EvictConsidered {
		t.Fatalf("AdmissionRejects %d > EvictConsidered %d", st.AdmissionRejects, st.EvictConsidered)
	}
}

// TestWeightedBasicAccounting pins SetWeight's gauge arithmetic: inserts
// add, updates adjust by the delta, deletes subtract.
func TestWeightedBasicAccounting(t *testing.T) {
	c := weighted(10, SIEVE)
	c.SetWeight("a", 1, 4)
	c.SetWeight("b", 2, 4)
	if st := c.Stats(); st.WeightResident != 8 {
		t.Fatalf("WeightResident = %d, want 8", st.WeightResident)
	}
	c.SetWeight("a", 1, 2) // shrink in place
	if st := c.Stats(); st.WeightResident != 6 {
		t.Fatalf("after shrink WeightResident = %d, want 6", st.WeightResident)
	}
	c.Delete("b")
	if st := c.Stats(); st.WeightResident != 2 {
		t.Fatalf("after delete WeightResident = %d, want 2", st.WeightResident)
	}
	checkWeightInvariant(t, c)
}

// TestWeightedMultiVictimEviction pins the defining weighted behaviour:
// one heavy insert evicts as many victims as its weight demands. With
// {a:4, b:4} resident under budget 10, inserting c:9 must evict both.
func TestWeightedMultiVictimEviction(t *testing.T) {
	c := weighted(10, SIEVE)
	c.SetWeight("a", 1, 4)
	c.SetWeight("b", 2, 4)
	c.SetWeight("c", 3, 9)
	wantAbsent(t, c, "a", "b")
	wantPresent(t, c, "c")
	st := c.Stats()
	if st.Evictions != 2 {
		t.Fatalf("Evictions = %d, want 2 (one insert, two victims)", st.Evictions)
	}
	if st.WeightResident != 9 {
		t.Fatalf("WeightResident = %d, want 9", st.WeightResident)
	}
	checkWeightInvariant(t, c)
}

// TestWeightedCountBoundDisabled pins the "switch" semantics of
// WithMaxWeight: capacity counts entries no longer — many light entries
// beyond the constructor capacity stay resident as long as their total
// weight fits.
func TestWeightedCountBoundDisabled(t *testing.T) {
	c := New[string, int](4, WithShards(1), WithMaxWeight(100))
	for i := 0; i < 20; i++ {
		c.Set(fmt.Sprintf("k%d", i), i) // default weight 1 each
	}
	if got := c.Len(); got != 20 {
		t.Fatalf("Len = %d, want 20 (count bound must be off)", got)
	}
	if st := c.Stats(); st.Evictions != 0 {
		t.Fatalf("Evictions = %d, want 0", st.Evictions)
	}
	checkWeightInvariant(t, c)
}

// TestWeightedInfeasibleRejected pins the over-budget corner: an entry
// whose weight alone exceeds the shard's budget is rejected (caching it
// would pin the shard over capacity forever), counted as an admission
// rejection, and — crucially — an infeasible *update* removes the old
// value rather than leaving a stale one readable.
func TestWeightedInfeasibleRejected(t *testing.T) {
	c := weighted(10, SIEVE)
	c.SetWeight("big", 1, 11)
	wantAbsent(t, c, "big")
	st := c.Stats()
	if st.AdmissionRejects != 1 {
		t.Fatalf("AdmissionRejects = %d, want 1", st.AdmissionRejects)
	}
	if st.Evictions != 0 {
		t.Fatalf("Evictions = %d, want 0", st.Evictions)
	}

	// The update path: a feasible entry updated to an infeasible weight
	// must disappear, not survive with the stale small value.
	c.SetWeight("grow", 7, 2)
	wantPresent(t, c, "grow")
	c.SetWeight("grow", 8, 11)
	wantAbsent(t, c, "grow")
	if st := c.Stats(); st.WeightResident != 0 {
		t.Fatalf("WeightResident = %d, want 0", st.WeightResident)
	}
	checkWeightInvariant(t, c)
}

// TestWeightedGrowingUpdateSheds pins shedLocked: updating a resident
// entry to a larger weight can push the shard over budget with no insert
// involved, and other residents are evicted until it fits again.
func TestWeightedGrowingUpdateSheds(t *testing.T) {
	c := weighted(10, SIEVE)
	c.SetWeight("a", 1, 4)
	c.SetWeight("b", 2, 4)
	c.SetWeight("a", 1, 7) // 7 + 4 > 10: b must go
	wantAbsent(t, c, "b")
	wantPresent(t, c, "a")
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", st.Evictions)
	}
	if st.WeightResident != 7 {
		t.Fatalf("WeightResident = %d, want 7", st.WeightResident)
	}
	checkWeightInvariant(t, c)
}

// TestWeigher pins WithWeigher: Set (no explicit weight) charges the
// function's result — here the value's magnitude — and SetWeight still
// overrides it per entry.
func TestWeigher(t *testing.T) {
	c := New[string, int](16, WithShards(1), WithMaxWeight(10),
		WithWeigher(func(k string, v int) int64 { return int64(v) }))
	c.Set("a", 3)
	c.Set("b", 4)
	if st := c.Stats(); st.WeightResident != 7 {
		t.Fatalf("WeightResident = %d, want 7", st.WeightResident)
	}
	c.SetWeight("b", 4, 1) // explicit weight wins over the weigher
	if st := c.Stats(); st.WeightResident != 4 {
		t.Fatalf("WeightResident = %d, want 4", st.WeightResident)
	}
	checkWeightInvariant(t, c)
}

// TestWeigherTypeMismatchPanics pins the constructor's guard: WithWeigher
// is generic where Option is not, so mismatched type parameters must fail
// loudly at construction, not silently weigh nothing.
func TestWeigherTypeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted a weigher with mismatched type parameters")
		}
	}()
	New[string, int](8, WithMaxWeight(10),
		WithWeigher(func(k int, v int) int64 { return 1 }))
}

// TestWeightedShardClamp pins the constructor sizing rule: the shard
// count shrinks until every shard owns at least one unit of weight, so no
// shard is born unable to store anything.
func TestWeightedShardClamp(t *testing.T) {
	c := New[string, int](64, WithShards(16), WithMaxWeight(3))
	if got := len(c.shards); got > 3 {
		t.Fatalf("shards = %d, want <= MaxWeight 3", got)
	}
	for i := range c.shards {
		if c.shards[i].maxWeight < 1 {
			t.Fatalf("shard %d weight budget = %d, want >= 1", i, c.shards[i].maxWeight)
		}
	}
}

// TestWeightedWithPolicies runs a small weighted churn against every
// policy and checks the invariant plus basic liveness: the bound holds
// throughout, and the last (heaviest-churned) key is still readable.
func TestWeightedWithPolicies(t *testing.T) {
	for _, p := range []Policy{SIEVE, S3FIFO, LRU} {
		c := weighted(32, p)
		for i := 0; i < 200; i++ {
			k := fmt.Sprintf("k%d", i%10)
			c.SetWeight(k, i, int64(1+i%7))
			c.Get(fmt.Sprintf("k%d", (i+3)%10))
			checkWeightInvariant(t, c)
		}
		if c.Len() == 0 {
			t.Errorf("%v: cache drained to empty under feasible weights", p)
		}
	}
}
