// Package cache provides a sharded concurrent cache with pluggable
// scan-resistant eviction, TTL expiry, and stampede protection.
//
// The cache is a power-of-two array of independently locked shards; keys
// hash to shards with the same seeded maphash the cmap tables use.
// Within a shard, eviction bookkeeping lives intrusively inside the
// entries (doubly-linked list links plus per-entry atomic reference
// bits), so recording a hit allocates nothing and — for the SIEVE and
// S3-FIFO policies — needs only the shard's read lock. The locked LRU
// policy is included as the classic baseline: its move-to-front hits
// demand the exclusive lock, which is precisely the serialisation the
// modern policies exist to avoid.
//
// Three policies are available behind one interface (see Policy):
//
//   - SIEVE (NSDI 2024): FIFO + one-bit second chance + sweeping hand.
//     The default — simplest, and hits are a single atomic bit store.
//   - S3-FIFO (SOSP 2023): small probationary FIFO, main FIFO, and a
//     ghost queue of recently evicted keys. Strongest against scans and
//     one-hit wonders.
//   - LRU: locked move-to-front list; the reference baseline.
//
// Two capacity features layer over the policies. WithAdmission(TinyLFU)
// adds a W-TinyLFU admission filter: every lookup touches a per-shard
// frequency sketch (4-bit count-min counters plus a doorkeeper, aged by
// periodic halving — see internal/sketch), and an insert that would
// force an eviction is admitted only when the sketch estimates the
// candidate strictly more frequent than the would-be victim, so
// one-touch scan keys bounce off the resident working set instead of
// churning it. WithMaxWeight bounds the cache by total entry weight
// rather than entry count: SetWeight (or a WithWeigher function applied
// on every insert) assigns costs, an oversized insert evicts as many
// victims as it needs, and an entry exceeding a shard's whole budget is
// rejected (a rejected update removes the stale entry rather than keep
// serving it). Stats exposes the accounting: WeightResident never
// exceeds MaxWeight, and AdmissionRejects never exceeds EvictConsidered.
//
// Entries may carry a time-to-live (WithTTL for a default, SetTTL per
// entry). Expired entries are misses the moment their deadline passes —
// readers detect and remove them lazily — and a background sweeper
// reclaims untouched expired entries in bounded per-shard batches; Close
// stops it.
//
// GetOrLoad adds cache-aside loading with singleflight semantics: when
// many goroutines miss on the same key at once, one invokes the loader
// and the rest wait for its result, so a hot-key expiry does not stampede
// the backing store. GetMany and SetMany batch operations per shard,
// taking each shard lock once per batch.
//
// The S17 benchmark family (cmd/cdsbench) compares the policies against a
// single-lock LRU and a sync.Map+TTL baseline on Zipf-distributed keys;
// package lincheck checks a single shard against a lossy-map
// linearizability model.
package cache
