// Package cache provides a sharded concurrent cache with pluggable
// scan-resistant eviction, TTL expiry, and stampede protection.
//
// The cache is a power-of-two array of independently locked shards; keys
// hash to shards with the same seeded maphash the cmap tables use.
// Within a shard, eviction bookkeeping lives intrusively inside the
// entries (doubly-linked list links plus per-entry atomic reference
// bits), so recording a hit allocates nothing and — for the SIEVE and
// S3-FIFO policies — needs only the shard's read lock. The locked LRU
// policy is included as the classic baseline: its move-to-front hits
// demand the exclusive lock, which is precisely the serialisation the
// modern policies exist to avoid.
//
// Three policies are available behind one interface (see Policy):
//
//   - SIEVE (NSDI 2024): FIFO + one-bit second chance + sweeping hand.
//     The default — simplest, and hits are a single atomic bit store.
//   - S3-FIFO (SOSP 2023): small probationary FIFO, main FIFO, and a
//     ghost queue of recently evicted keys. Strongest against scans and
//     one-hit wonders.
//   - LRU: locked move-to-front list; the reference baseline.
//
// Entries may carry a time-to-live (WithTTL for a default, SetTTL per
// entry). Expired entries are misses the moment their deadline passes —
// readers detect and remove them lazily — and a background sweeper
// reclaims untouched expired entries in bounded per-shard batches; Close
// stops it.
//
// GetOrLoad adds cache-aside loading with singleflight semantics: when
// many goroutines miss on the same key at once, one invokes the loader
// and the rest wait for its result, so a hot-key expiry does not stampede
// the backing store. GetMany and SetMany batch operations per shard,
// taking each shard lock once per batch.
//
// The S17 benchmark family (cmd/cdsbench) compares the policies against a
// single-lock LRU and a sync.Map+TTL baseline on Zipf-distributed keys;
// package lincheck checks a single shard against a lossy-map
// linearizability model.
package cache
