package cmap

import (
	"sync"
	"testing"

	"github.com/cds-suite/cds/internal/xrand"
	"github.com/cds-suite/cds/reclaim"
)

// TestSplitOrderedReclaimVariants churns store/delete/load traffic over a
// small key space under each deferring configuration, then verifies map
// coherence and that retirement actually ran. Recycling composes with EBR
// only (Range cannot hold hazards), so the HP+recycle cell asserts the
// silent downgrade instead.
func TestSplitOrderedReclaimVariants(t *testing.T) {
	variants := map[string]func() []Option{
		"EBR": func() []Option {
			d := reclaim.NewEBR()
			d.SetAdvanceInterval(4)
			return []Option{WithReclaim(d)}
		},
		"HP": func() []Option {
			d := reclaim.NewHP()
			d.SetScanThreshold(8)
			return []Option{WithReclaim(d)}
		},
		"EBR+recycle": func() []Option {
			d := reclaim.NewEBR()
			d.SetAdvanceInterval(4)
			return []Option{WithReclaim(d), WithRecycling()}
		},
	}
	for name, mkOpts := range variants {
		t.Run(name, func(t *testing.T) {
			opts := mkOpts()
			dom := buildOptions(opts).dom
			m := NewSplitOrdered[int, int](opts...)

			const workers, ops, keyRange = 4, 4000, 64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := xrand.New(uint64(w)*912367 + 11)
					for i := 0; i < ops; i++ {
						k := rng.Intn(keyRange)
						switch rng.Intn(4) {
						case 0, 1:
							m.Store(k, w)
						case 2:
							m.Delete(k)
						default:
							m.Load(k)
						}
					}
				}(w)
			}
			wg.Wait()

			// Quiesce and verify coherence.
			for k := 0; k < keyRange; k++ {
				m.Store(k, k*3)
			}
			for k := 0; k < keyRange; k++ {
				if v, ok := m.Load(k); !ok || v != k*3 {
					t.Fatalf("Load(%d) = (%d, %v), want (%d, true)", k, v, ok, k*3)
				}
			}
			seen := 0
			m.Range(func(k, v int) bool {
				if v != k*3 {
					t.Fatalf("Range saw (%d, %d), want value %d", k, v, k*3)
				}
				seen++
				return true
			})
			if seen != keyRange {
				t.Fatalf("Range visited %d entries, want %d", seen, keyRange)
			}
			for k := 0; k < keyRange; k++ {
				if !m.Delete(k) {
					t.Fatalf("Delete(%d) failed on a present key", k)
				}
			}
			if got := m.Len(); got != 0 {
				t.Fatalf("Len = %d after deleting everything", got)
			}
			if dom.Reclaimed() == 0 {
				t.Fatal("domain reclaimed nothing — retire path inert")
			}
			if dom.Pending() < 0 {
				t.Fatalf("pending gauge negative: %d", dom.Pending())
			}
		})
	}
}

// TestSplitOrderedRecyclingGates verifies the safety gate: recycling with
// an HP domain is silently disabled (Range cannot publish hazards), while
// recycling with EBR is live and actually reuses nodes.
func TestSplitOrderedRecyclingGates(t *testing.T) {
	hp := NewSplitOrdered[int, int](WithReclaim(reclaim.NewHP()), WithRecycling())
	if hp.nodes != nil {
		t.Fatal("recycler enabled under an HP domain")
	}

	d := reclaim.NewEBR()
	d.SetAdvanceInterval(1)
	m := NewSplitOrdered[int, int](WithReclaim(d), WithRecycling())
	if m.nodes == nil {
		t.Fatal("recycler not enabled under an EBR domain")
	}
	for i := 0; i < 5000; i++ {
		m.Store(i&7, i)
		m.Delete(i & 7)
	}
	if m.nodes.Reused() == 0 {
		t.Fatal("recycler never reused a node across 5000 store/delete cycles")
	}
}
