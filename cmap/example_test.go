package cmap_test

import (
	"fmt"
	"sort"
	"sync"

	"github.com/cds-suite/cds/cmap"
)

// The split-ordered map is fully lock-free: loads, stores, and deletes all
// proceed without blocking each other.
func ExampleSplitOrdered() {
	m := cmap.NewSplitOrdered[string, int]()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m.Store(fmt.Sprintf("k%d", i%4), i) // four keys, racing stores
		}(i)
	}
	wg.Wait()

	var keys []string
	m.Range(func(k string, _ int) bool {
		keys = append(keys, k)
		return true
	})
	sort.Strings(keys)
	fmt.Println(keys, m.Len())
	// Output: [k0 k1 k2 k3] 4
}

// The striped map locks one stripe per operation; LoadOrStore gives
// at-most-once initialisation under concurrency.
func ExampleStriped_loadOrStore() {
	m := cmap.NewStriped[string, []int](16)

	var wg sync.WaitGroup
	var initialised sync.Map // track how many goroutines "won"
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, loaded := m.LoadOrStore("config", []int{1, 2, 3})
			if !loaded {
				initialised.Store(i, true)
			}
		}(i)
	}
	wg.Wait()

	winners := 0
	initialised.Range(func(any, any) bool { winners++; return true })
	fmt.Println("initialised exactly once:", winners == 1)
	// Output: initialised exactly once: true
}
