package cmap

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	cds "github.com/cds-suite/cds"
	"github.com/cds-suite/cds/internal/xrand"
)

func implementations() []struct {
	name string
	mk   func() cds.Map[int, string]
} {
	return []struct {
		name string
		mk   func() cds.Map[int, string]
	}{
		{name: "Locked", mk: func() cds.Map[int, string] { return NewLocked[int, string]() }},
		{name: "Striped", mk: func() cds.Map[int, string] { return NewStriped[int, string](16) }},
		{name: "SplitOrdered", mk: func() cds.Map[int, string] { return NewSplitOrdered[int, string]() }},
	}
}

func TestSequentialMapSemantics(t *testing.T) {
	for _, tt := range implementations() {
		t.Run(tt.name, func(t *testing.T) {
			m := tt.mk()
			if _, ok := m.Load(1); ok {
				t.Fatal("empty map Load reported ok")
			}
			if m.Delete(1) {
				t.Fatal("Delete on empty map succeeded")
			}
			m.Store(1, "one")
			if v, ok := m.Load(1); !ok || v != "one" {
				t.Fatalf("Load(1) = (%q, %v), want (one, true)", v, ok)
			}
			m.Store(1, "uno") // overwrite
			if v, _ := m.Load(1); v != "uno" {
				t.Fatalf("Load(1) after overwrite = %q, want uno", v)
			}
			if actual, loaded := m.LoadOrStore(1, "ein"); !loaded || actual != "uno" {
				t.Fatalf("LoadOrStore(existing) = (%q, %v), want (uno, true)", actual, loaded)
			}
			if actual, loaded := m.LoadOrStore(2, "two"); loaded || actual != "two" {
				t.Fatalf("LoadOrStore(new) = (%q, %v), want (two, false)", actual, loaded)
			}
			if got := m.Len(); got != 2 {
				t.Fatalf("Len = %d, want 2", got)
			}
			if !m.Delete(1) || m.Delete(1) {
				t.Fatal("Delete semantics wrong")
			}
			if _, ok := m.Load(1); ok {
				t.Fatal("deleted key still present")
			}
			if got := m.Len(); got != 1 {
				t.Fatalf("Len = %d, want 1", got)
			}
		})
	}
}

func TestMapGrowth(t *testing.T) {
	// Push each implementation through several resize generations.
	for _, tt := range implementations() {
		t.Run(tt.name, func(t *testing.T) {
			m := tt.mk()
			const n = 20000
			for i := 0; i < n; i++ {
				m.Store(i, "v")
			}
			if got := m.Len(); got != n {
				t.Fatalf("Len = %d, want %d", got, n)
			}
			for i := 0; i < n; i++ {
				if _, ok := m.Load(i); !ok {
					t.Fatalf("key %d lost during growth", i)
				}
			}
			for i := 0; i < n; i += 2 {
				if !m.Delete(i) {
					t.Fatalf("Delete(%d) failed", i)
				}
			}
			if got := m.Len(); got != n/2 {
				t.Fatalf("Len = %d, want %d", got, n/2)
			}
			for i := 0; i < n; i++ {
				_, ok := m.Load(i)
				if want := i%2 == 1; ok != want {
					t.Fatalf("Load(%d) = %v, want %v", i, ok, want)
				}
			}
		})
	}
}

func TestMapPropertyMatchesModel(t *testing.T) {
	for _, tt := range implementations() {
		t.Run(tt.name, func(t *testing.T) {
			f := func(ops []int16) bool {
				m := tt.mk()
				model := make(map[int]string)
				for _, raw := range ops {
					k := int(raw % 32)
					v := string(rune('a' + (raw % 26 & 0x7fff)))
					switch raw % 4 {
					case 0:
						m.Store(k, v)
						model[k] = v
					case 1, -1:
						got, ok := m.Load(k)
						wantV, wantOK := model[k]
						if ok != wantOK || (ok && got != wantV) {
							return false
						}
					case 2, -2:
						if m.Delete(k) != (func() bool { _, ok := model[k]; return ok })() {
							return false
						}
						delete(model, k)
					default:
						actual, loaded := m.LoadOrStore(k, v)
						if existing, ok := model[k]; ok {
							if !loaded || actual != existing {
								return false
							}
						} else {
							if loaded || actual != v {
								return false
							}
							model[k] = v
						}
					}
				}
				return m.Len() == len(model)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMapDisjointKeysConcurrent(t *testing.T) {
	for _, tt := range implementations() {
		t.Run(tt.name, func(t *testing.T) {
			m := tt.mk()
			workers := min(8, runtime.GOMAXPROCS(0))
			const ops = 5000
			models := make([]map[int]string, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := xrand.New(uint64(w) + 99)
					model := make(map[int]string)
					for i := 0; i < ops; i++ {
						k := w + workers*rng.Intn(256)
						v := string(rune('a' + rng.Intn(26)))
						switch rng.Intn(4) {
						case 0:
							m.Store(k, v)
							model[k] = v
						case 1:
							got, ok := m.Load(k)
							wantV, wantOK := model[k]
							if ok != wantOK || (ok && got != wantV) {
								t.Errorf("worker %d: Load(%d) = (%q,%v), want (%q,%v)", w, k, got, ok, wantV, wantOK)
								return
							}
						case 2:
							_, wantOK := model[k]
							if m.Delete(k) != wantOK {
								t.Errorf("worker %d: Delete(%d) inconsistent", w, k)
								return
							}
							delete(model, k)
						default:
							actual, loaded := m.LoadOrStore(k, v)
							if existing, ok := model[k]; ok {
								if !loaded || actual != existing {
									t.Errorf("worker %d: LoadOrStore(%d) existing mismatch", w, k)
									return
								}
							} else {
								if loaded {
									t.Errorf("worker %d: LoadOrStore(%d) spurious load", w, k)
									return
								}
								model[k] = v
							}
						}
					}
					models[w] = model
				}(w)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			total := 0
			for w, model := range models {
				total += len(model)
				for k, v := range model {
					got, ok := m.Load(k)
					if !ok || got != v {
						t.Fatalf("worker %d: final Load(%d) = (%q,%v), want (%q,true)", w, k, got, ok, v)
					}
				}
			}
			if got := m.Len(); got != total {
				t.Fatalf("Len = %d, want %d", got, total)
			}
		})
	}
}

func TestMapContendedStress(t *testing.T) {
	for _, tt := range implementations() {
		t.Run(tt.name, func(t *testing.T) {
			m := tt.mk()
			workers := 2 * runtime.GOMAXPROCS(0)
			const ops = 3000
			const keyRange = 16
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := xrand.New(uint64(w)*31 + 7)
					for i := 0; i < ops; i++ {
						k := rng.Intn(keyRange)
						switch rng.Intn(3) {
						case 0:
							m.Store(k, "x")
						case 1:
							m.Delete(k)
						default:
							m.Load(k)
						}
					}
				}(w)
			}
			wg.Wait()

			// Post-conditions: Len agrees with visible keys; every visible
			// key is within range.
			visible := 0
			for k := 0; k < keyRange; k++ {
				if _, ok := m.Load(k); ok {
					visible++
				}
			}
			if got := m.Len(); got != visible {
				t.Fatalf("Len = %d, visible keys = %d", got, visible)
			}
		})
	}
}

func TestRangeSnapshot(t *testing.T) {
	for _, tt := range []struct {
		name string
		mk   func() interface {
			cds.Map[int, string]
			Range(func(int, string) bool)
		}
	}{
		{name: "Locked", mk: func() interface {
			cds.Map[int, string]
			Range(func(int, string) bool)
		} {
			return NewLocked[int, string]()
		}},
		{name: "Striped", mk: func() interface {
			cds.Map[int, string]
			Range(func(int, string) bool)
		} {
			return NewStriped[int, string](8)
		}},
		{name: "SplitOrdered", mk: func() interface {
			cds.Map[int, string]
			Range(func(int, string) bool)
		} {
			return NewSplitOrdered[int, string]()
		}},
	} {
		t.Run(tt.name, func(t *testing.T) {
			m := tt.mk()
			want := map[int]string{1: "a", 2: "b", 3: "c", 4: "d"}
			for k, v := range want {
				m.Store(k, v)
			}
			got := make(map[int]string)
			m.Range(func(k int, v string) bool {
				got[k] = v
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("Range visited %d entries, want %d", len(got), len(want))
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("Range[%d] = %q, want %q", k, got[k], v)
				}
			}
			// Early termination.
			n := 0
			m.Range(func(int, string) bool { n++; return false })
			if n != 1 {
				t.Fatalf("Range ignored early stop: visited %d", n)
			}
		})
	}
}

// TestSplitOrderedHashCollisions injects a degenerate hash function so that
// many distinct keys share one split-order key, exercising the equal-soKey
// scan path.
func TestSplitOrderedHashCollisions(t *testing.T) {
	m := NewSplitOrdered[int, string]()
	m.hash = func(k int) uint64 { return uint64(k % 3) } // 3 hash values only
	const n = 300
	for i := 0; i < n; i++ {
		m.Store(i, "v")
	}
	if got := m.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		if _, ok := m.Load(i); !ok {
			t.Fatalf("collision key %d lost", i)
		}
	}
	for i := 0; i < n; i += 3 {
		if !m.Delete(i) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	for i := 0; i < n; i++ {
		_, ok := m.Load(i)
		if want := i%3 != 0; ok != want {
			t.Fatalf("Load(%d) = %v, want %v", i, ok, want)
		}
	}
}

// TestStripedCollisions does the same for the striped table's chains.
func TestStripedCollisions(t *testing.T) {
	m := NewStriped[int, string](4)
	m.hash = func(k int) uint64 { return 42 } // everything in one bucket
	for i := 0; i < 100; i++ {
		m.Store(i, "v")
	}
	for i := 0; i < 100; i++ {
		if _, ok := m.Load(i); !ok {
			t.Fatalf("key %d lost in single-bucket mode", i)
		}
	}
	for i := 0; i < 100; i++ {
		if !m.Delete(i) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d, want 0", m.Len())
	}
}

func TestSplitOrderedBucketDirectoryGrowth(t *testing.T) {
	m := NewSplitOrdered[int, int]()
	const n = 100000 // forces many bucket-count doublings
	for i := 0; i < n; i++ {
		m.Store(i, i)
	}
	if bc := m.bucketCount.Load(); bc < 1024 {
		t.Fatalf("bucketCount = %d after %d inserts, expected growth", bc, n)
	}
	miss := 0
	for i := 0; i < n; i++ {
		if v, ok := m.Load(i); !ok || v != i {
			miss++
		}
	}
	if miss > 0 {
		t.Fatalf("%d keys lost across directory growth", miss)
	}
}

func TestStripedStringKeys(t *testing.T) {
	m := NewStriped[string, int](8)
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for i, w := range words {
		m.Store(w, i)
	}
	for i, w := range words {
		if v, ok := m.Load(w); !ok || v != i {
			t.Fatalf("Load(%q) = (%d,%v), want (%d,true)", w, v, ok, i)
		}
	}
}
