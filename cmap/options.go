package cmap

import "github.com/cds-suite/cds/reclaim"

// Option configures a map constructor (currently only SplitOrdered
// supports options; the lock-based maps retire nothing).
type Option func(*options)

type options struct {
	dom     reclaim.Domain
	recycle bool
}

// WithReclaim attaches a safe-memory-reclamation domain (reclaim.NewEBR,
// reclaim.NewHP) to the map: physically unlinked item nodes are retired
// through it instead of being left to the garbage collector, and keyed
// operations protect their (pred, curr) window per the domain's protocol.
// Bucket sentinels are never removed, so they are never retired. The
// default is the zero-cost GC path.
func WithReclaim(d reclaim.Domain) Option {
	return func(o *options) { o.dom = d }
}

// WithRecycling additionally pools retired item nodes for reuse. It
// requires an EBR WithReclaim domain: Range's weakly consistent iteration
// cannot hold hazard pointers across its whole walk, so under HP a reused
// node could surface mid-iteration — the option is ignored for protecting
// domains (and for GC, where free callbacks never run).
func WithRecycling() Option {
	return func(o *options) { o.recycle = true }
}

func buildOptions(opts []Option) options {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	if o.dom != nil && !o.dom.Deferred() {
		o.dom = nil // explicit GC domain: same as the default fast path
	}
	if o.dom == nil {
		o.recycle = false
	}
	return o
}
