// Package cmap implements the concurrent hash table designs from the
// survey literature: a single-lock baseline, a lock-striped resizable table
// (fixed stripe array, growing bucket array — the classic striped hash set
// generalised to a map), and the Shalev–Shavit split-ordered lock-free hash
// table (recursive split-ordering over a Harris-style lock-free list).
//
// Hash tables are the survey's example that making a structure concurrent
// is easy until it has to resize: striping keeps the lock array fixed so a
// key's stripe never changes while buckets double underneath, and
// split-ordering removes locking entirely by never moving items at all —
// growth only inserts new bucket sentinels into an ordering cleverly chosen
// (bit-reversed keys) so buckets split in place. Experiments F6 and T2
// regenerate the scalability and skew-sensitivity comparisons.
//
// Progress guarantees: Locked and Striped are blocking (striped readers
// contend only within a stripe); SplitOrdered is lock-free, inheriting the
// Harris list's guarantees bucket by bucket. SplitOrdered accepts
// WithReclaim (package reclaim); recycling composes with EBR only, because
// Range cannot hold hazards across its whole walk.
package cmap
