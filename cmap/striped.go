package cmap

import (
	"sync"
	"sync/atomic"

	"github.com/cds-suite/cds/internal/pad"
	"github.com/cds-suite/cds/internal/pow2"
)

// stripedLoadFactor triggers a bucket-array doubling when
// size > stripedLoadFactor × len(buckets).
const stripedLoadFactor = 4

// Striped is the classic lock-striped hash table: a fixed array of stripe
// locks protects a growing array of buckets. A key's stripe is
// hash mod nstripes, which never changes, while its bucket is
// hash mod nbuckets, which doubles on resize — because nbuckets is always a
// multiple of nstripes, every bucket is consistently owned by exactly one
// stripe. Operations lock one stripe; resize quiesces the table by locking
// all stripes in order (deadlock-free) and rehashing.
//
// Concurrency degrades only when (a) two hot keys share a stripe, or
// (b) a resize holds everything — exactly the trade-offs experiment F6
// measures against the lock-free table.
//
// Progress: blocking.
type Striped[K comparable, V any] struct {
	hash    func(K) uint64
	stripes []paddedRWMutex
	mask    uint64 // len(stripes)-1

	// buckets is read and written only under at least one stripe lock;
	// resize replaces it under all stripe locks.
	buckets [][]stripedEntry[K, V]

	size atomic.Int64
}

type paddedRWMutex struct {
	mu sync.RWMutex
	_  pad.CacheLinePad
}

type stripedEntry[K comparable, V any] struct {
	hash uint64
	key  K
	val  V
}

// NewStriped returns an empty striped map with the given stripe count
// (rounded up to a power of two; <= 0 selects 32). The bucket array starts
// at the stripe count and doubles as the map grows.
func NewStriped[K comparable, V any](stripes int) *Striped[K, V] {
	if stripes <= 0 {
		stripes = 32
	}
	n := pow2.RoundUp(stripes, 1)
	return &Striped[K, V]{
		hash:    newHasher[K]().hash,
		stripes: make([]paddedRWMutex, n),
		mask:    uint64(n - 1),
		buckets: make([][]stripedEntry[K, V], n),
	}
}

// Load returns the value stored for k.
func (c *Striped[K, V]) Load(k K) (v V, ok bool) {
	h := c.hash(k)
	mu := &c.stripes[h&c.mask].mu
	mu.RLock()
	defer mu.RUnlock()
	for _, e := range c.bucketFor(h) {
		if e.hash == h && e.key == k {
			return e.val, true
		}
	}
	return v, false
}

// Store sets the value for k, inserting it if absent.
func (c *Striped[K, V]) Store(k K, v V) {
	h := c.hash(k)
	mu := &c.stripes[h&c.mask].mu
	mu.Lock()
	b := c.bucketIndex(h)
	for i := range c.buckets[b] {
		e := &c.buckets[b][i]
		if e.hash == h && e.key == k {
			e.val = v
			mu.Unlock()
			return
		}
	}
	c.buckets[b] = append(c.buckets[b], stripedEntry[K, V]{hash: h, key: k, val: v})
	grew := c.size.Add(1)
	threshold := int64(stripedLoadFactor * len(c.buckets))
	mu.Unlock()
	if grew > threshold {
		c.resize()
	}
}

// LoadOrStore returns the existing value for k if present; otherwise it
// stores and returns v.
func (c *Striped[K, V]) LoadOrStore(k K, v V) (actual V, loaded bool) {
	h := c.hash(k)
	mu := &c.stripes[h&c.mask].mu
	mu.Lock()
	b := c.bucketIndex(h)
	for i := range c.buckets[b] {
		e := &c.buckets[b][i]
		if e.hash == h && e.key == k {
			actual = e.val
			mu.Unlock()
			return actual, true
		}
	}
	c.buckets[b] = append(c.buckets[b], stripedEntry[K, V]{hash: h, key: k, val: v})
	grew := c.size.Add(1)
	threshold := int64(stripedLoadFactor * len(c.buckets))
	mu.Unlock()
	if grew > threshold {
		c.resize()
	}
	return v, false
}

// Delete removes k, reporting whether it was present.
func (c *Striped[K, V]) Delete(k K) bool {
	h := c.hash(k)
	mu := &c.stripes[h&c.mask].mu
	mu.Lock()
	defer mu.Unlock()
	b := c.bucketIndex(h)
	bucket := c.buckets[b]
	for i := range bucket {
		if bucket[i].hash == h && bucket[i].key == k {
			last := len(bucket) - 1
			bucket[i] = bucket[last]
			var zero stripedEntry[K, V]
			bucket[last] = zero
			c.buckets[b] = bucket[:last]
			c.size.Add(-1)
			return true
		}
	}
	return false
}

// Len reports the number of entries (atomic counter; exact in quiescent
// states).
func (c *Striped[K, V]) Len() int {
	return int(c.size.Load())
}

// Range calls f for every entry until f returns false. It holds all stripe
// read locks for the duration, so the iteration is a consistent snapshot;
// keep f short and never mutate the map from within f (self-deadlock).
func (c *Striped[K, V]) Range(f func(K, V) bool) {
	for i := range c.stripes {
		c.stripes[i].mu.RLock()
	}
	defer func() {
		for i := range c.stripes {
			c.stripes[i].mu.RUnlock()
		}
	}()
	for _, bucket := range c.buckets {
		for _, e := range bucket {
			if !f(e.key, e.val) {
				return
			}
		}
	}
}

// bucketIndex maps a hash to the bucket array; caller holds the key's
// stripe lock. Buckets are a power of two and a multiple of stripes, so
// stripe ownership is stable across resizes.
func (c *Striped[K, V]) bucketIndex(h uint64) uint64 {
	return h & uint64(len(c.buckets)-1)
}

func (c *Striped[K, V]) bucketFor(h uint64) []stripedEntry[K, V] {
	return c.buckets[c.bucketIndex(h)]
}

// resize grows the bucket array until the load factor is satisfied again.
// Acquiring every stripe in index order makes concurrent resizes
// deadlock-free and mutually exclusive.
//
// The loop (rather than a single doubling guarded by an expected length)
// is what makes racing growers safe: when many writers cross the threshold
// together, the size they collectively reached may demand more than one
// doubling, and the writers that lose the race must not silently drop the
// growth they observed. Each resizer re-derives the need from the current
// size under all locks — a stale observation then costs a no-op, never an
// under-sized table.
func (c *Striped[K, V]) resize() {
	for i := range c.stripes {
		c.stripes[i].mu.Lock()
	}
	defer func() {
		for i := range c.stripes {
			c.stripes[i].mu.Unlock()
		}
	}()
	for int64(stripedLoadFactor*len(c.buckets)) < c.size.Load() {
		next := make([][]stripedEntry[K, V], 2*len(c.buckets))
		nmask := uint64(len(next) - 1)
		for _, bucket := range c.buckets {
			for _, e := range bucket {
				idx := e.hash & nmask
				next[idx] = append(next[idx], e)
			}
		}
		c.buckets = next
	}
}
