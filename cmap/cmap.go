package cmap

import (
	"hash/maphash"
	"sync"

	cds "github.com/cds-suite/cds"
)

// Compile-time interface compliance checks.
var (
	_ cds.Map[int, int] = (*Locked[int, int])(nil)
	_ cds.Map[int, int] = (*Striped[int, int])(nil)
	_ cds.Map[int, int] = (*SplitOrdered[int, int])(nil)
)

// Locked is the coarse baseline: one RWMutex around a built-in map.
// Readers share; any write excludes everything.
//
// Progress: blocking.
type Locked[K comparable, V any] struct {
	mu sync.RWMutex
	m  map[K]V
}

// NewLocked returns an empty coarse-locked map.
func NewLocked[K comparable, V any]() *Locked[K, V] {
	return &Locked[K, V]{m: make(map[K]V)}
}

// Load returns the value stored for k.
func (c *Locked[K, V]) Load(k K) (v V, ok bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok = c.m[k]
	return v, ok
}

// Store sets the value for k.
func (c *Locked[K, V]) Store(k K, v V) {
	c.mu.Lock()
	c.m[k] = v
	c.mu.Unlock()
}

// LoadOrStore returns the existing value for k if present; otherwise it
// stores and returns v.
func (c *Locked[K, V]) LoadOrStore(k K, v V) (actual V, loaded bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if existing, ok := c.m[k]; ok {
		return existing, true
	}
	c.m[k] = v
	return v, false
}

// Delete removes k, reporting whether it was present.
func (c *Locked[K, V]) Delete(k K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[k]; !ok {
		return false
	}
	delete(c.m, k)
	return true
}

// Len reports the number of entries.
func (c *Locked[K, V]) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Range calls f for every entry until f returns false, holding the read
// lock throughout (a consistent snapshot; keep f short).
func (c *Locked[K, V]) Range(f func(K, V) bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for k, v := range c.m {
		if !f(k, v) {
			return
		}
	}
}

// NewHash returns a 64-bit hash function over K seeded randomly per call,
// the same hashing the package's own tables use (hash-flooding resistance,
// and independent tables get independent collision patterns). It exists so
// structures layered on the map machinery — the sharded cache in package
// cache is the canonical client — share one hashing discipline instead of
// re-deriving it.
func NewHash[K comparable]() func(K) uint64 {
	return newHasher[K]().hash
}

// hasher produces 64-bit hashes of comparable keys using a per-structure
// random seed (hash-flooding resistance, and independent tables get
// independent collision patterns).
type hasher[K comparable] struct {
	seed maphash.Seed
}

func newHasher[K comparable]() hasher[K] {
	return hasher[K]{seed: maphash.MakeSeed()}
}

func (h hasher[K]) hash(k K) uint64 {
	return maphash.Comparable(h.seed, k)
}
