package cmap

import (
	"math/bits"
	"sync/atomic"

	"github.com/cds-suite/cds/contend"
	"github.com/cds-suite/cds/reclaim"
)

const (
	// soMaxSegments bounds the bucket directory at 2^soMaxSegments-1
	// buckets (segment s holds 2^s slots).
	soMaxSegments = 26
	// soLoadFactor triggers a bucket-count doubling when
	// size > soLoadFactor × bucketCount.
	soLoadFactor = 2
)

// SplitOrdered is the lock-free extensible hash table of Shalev & Shavit
// ("Split-Ordered Lists: Lock-Free Extensible Hash Tables", JACM 2006).
//
// All items live in a single Harris-style lock-free linked list, ordered by
// the bit-reversal of their hash. In that order, the items of bucket b
// under table size 2^i form a contiguous run, and doubling the table splits
// each run in place: growth never moves an item — it only inserts a new
// bucket sentinel node at the split point ("recursive split-ordering").
// The bucket directory is a lazily allocated array of pointers to sentinel
// nodes, initialised on first touch by inserting the sentinel via the
// bucket's parent (the index with its top bit cleared).
//
// Key encoding: a regular item hashes to h and gets split-order key
// reverse(h) | 1; the sentinel of bucket b gets reverse(b), whose low bit
// is 0 — sentinels sort immediately before the items of their bucket and
// can never collide with an item.
//
// Memory reclamation (WithReclaim): deleted item nodes are retired by
// whichever operation wins the physical-unlink CAS (exactly once — see
// list.Harris for the argument); sentinels are never removed and so never
// retired. Under HP the keyed operations protect their (pred, curr)
// window via Michael's two-hazard discipline; Range publishes nothing
// (its weakly consistent walk cannot hold hazards across the whole list),
// which is why WithRecycling is EBR-only.
//
// Linearization points: Load at its last ref load; Store (update) at its
// value store; Store/LoadOrStore (insert) at the link CAS; Delete at the
// marking CAS.
//
// Progress: lock-free for all operations (Load is wait-free bounded by
// bucket-run length under GC and EBR).
type SplitOrdered[K comparable, V any] struct {
	hash        func(K) uint64
	segments    [soMaxSegments]atomic.Pointer[soSegment[K, V]]
	bucketCount atomic.Uint64 // current table size, always a power of two
	size        atomic.Int64
	mem         *reclaim.Pool
	nodes       *reclaim.Recycler[soNode[K, V]]
}

type soSegment[K comparable, V any] struct {
	slots []atomic.Pointer[soNode[K, V]]
}

type soNode[K comparable, V any] struct {
	soKey uint64 // split-order key; LSB=1 ⇒ regular item, LSB=0 ⇒ sentinel
	key   K      // zero for sentinels
	val   atomic.Pointer[V]
	ref   atomic.Pointer[soRef[K, V]]
}

// soRef is an immutable (successor, mark) pair, as in list.Harris.
type soRef[K comparable, V any] struct {
	next   *soNode[K, V]
	marked bool
}

// NewSplitOrdered returns an empty split-ordered hash map with an initial
// table size of 2 buckets. See WithReclaim and WithRecycling for the
// memory-reclamation options.
func NewSplitOrdered[K comparable, V any](opts ...Option) *SplitOrdered[K, V] {
	m := &SplitOrdered[K, V]{hash: newHasher[K]().hash}
	m.bucketCount.Store(2)
	// Bucket 0's sentinel is the list head: soKey 0.
	head := &soNode[K, V]{}
	head.ref.Store(&soRef[K, V]{})
	seg0 := &soSegment[K, V]{slots: make([]atomic.Pointer[soNode[K, V]], 1)}
	seg0.slots[0].Store(head)
	m.segments[0].Store(seg0)

	o := buildOptions(opts)
	if o.dom != nil {
		m.mem = reclaim.NewPool(o.dom, 2)
		if o.recycle {
			g := m.mem.Get()
			if !g.Protects() { // Range cannot hold hazards: EBR only
				m.nodes = reclaim.NewRecycler(func(n *soNode[K, V]) {
					var zeroK K
					n.soKey = 0
					n.key = zeroK
					n.val.Store(nil)
					n.ref.Store(nil)
				})
			}
			m.mem.Put(g)
		}
	}
	return m
}

// acquire returns a guard with its section entered, or nil when the map
// runs on plain GC reclamation.
func (m *SplitOrdered[K, V]) acquire() reclaim.Guard {
	if m.mem == nil {
		return nil
	}
	g := m.mem.Get()
	g.Enter()
	return g
}

func (m *SplitOrdered[K, V]) release(g reclaim.Guard) {
	if g == nil {
		return
	}
	g.Exit()
	m.mem.Put(g)
}

// retire hands a successfully unlinked item node to the guard's domain.
func (m *SplitOrdered[K, V]) retire(g reclaim.Guard, n *soNode[K, V]) {
	if g == nil {
		return
	}
	reclaim.Retire(g, m.nodes, n)
}

func soRegularKey(h uint64) uint64  { return bits.Reverse64(h) | 1 }
func soSentinelKey(b uint64) uint64 { return bits.Reverse64(b) }

// bucketSlot returns the directory slot for bucket b, allocating its
// segment on demand.
func (m *SplitOrdered[K, V]) bucketSlot(b uint64) *atomic.Pointer[soNode[K, V]] {
	s := bits.Len64(b+1) - 1
	seg := m.segments[s].Load()
	if seg == nil {
		fresh := &soSegment[K, V]{slots: make([]atomic.Pointer[soNode[K, V]], 1<<s)}
		if m.segments[s].CompareAndSwap(nil, fresh) {
			seg = fresh
		} else {
			seg = m.segments[s].Load()
		}
	}
	return &seg.slots[b+1-(1<<uint(s))]
}

// getBucket returns bucket b's sentinel node, initialising the bucket (and
// recursively its parents) if this is its first use.
func (m *SplitOrdered[K, V]) getBucket(g reclaim.Guard, b uint64) *soNode[K, V] {
	slot := m.bucketSlot(b)
	if n := slot.Load(); n != nil {
		return n
	}
	return m.initBucket(g, b, slot)
}

func (m *SplitOrdered[K, V]) initBucket(g reclaim.Guard, b uint64, slot *atomic.Pointer[soNode[K, V]]) *soNode[K, V] {
	// Parent: clear the most significant set bit. Bucket 0 exists from
	// construction, so the recursion terminates.
	parent := b &^ (uint64(1) << (bits.Len64(b) - 1))
	parentSentinel := m.getBucket(g, parent)

	soKey := soSentinelKey(b)
	var bo contend.Backoff
	for {
		pred, predRef, curr, found := m.find(g, parentSentinel, soKey, nil)
		if found {
			// Another initialiser (or an earlier epoch) inserted it.
			slot.CompareAndSwap(nil, curr)
			return slot.Load()
		}
		// Sentinels are immortal: always fresh allocations, never pooled.
		n := &soNode[K, V]{soKey: soKey}
		n.ref.Store(&soRef[K, V]{next: curr})
		if pred.ref.CompareAndSwap(predRef, &soRef[K, V]{next: n}) {
			slot.CompareAndSwap(nil, n)
			return slot.Load()
		}
		bo.Pause() // lost the window; back off before re-resolving it
	}
}

// find locates the window for soKey starting at start, snipping marked
// nodes on the way (helping; the snipper retires them into g). For regular
// keys, key must point at the lookup key and find scans through
// hash-colliding items until it matches key equality; for sentinels key is
// nil and soKey equality suffices.
//
// Returns pred/predRef (an unmarked snapshot with predRef.next == curr) and
// curr: the matching node when found, otherwise the first node with
// soKey strictly greater (insertion point). Under a protecting guard, pred
// lives in hazard slot 0 and curr in slot 1 for the window returned; the
// start sentinel needs no protection (sentinels are immortal).
func (m *SplitOrdered[K, V]) find(g reclaim.Guard, start *soNode[K, V], soKey uint64, key *K) (pred *soNode[K, V], predRef *soRef[K, V], curr *soNode[K, V], found bool) {
	hp := g != nil && g.Protects()
retry:
	//cdsvet:ignore spinpace helping traversal: a restart follows a snip or revalidation failure, both of which prove another operation progressed
	for {
		pred = start
		predRef = pred.ref.Load()
		if hp {
			g.Protect(0, nil)
		}
		curr = predRef.next
		//cdsvet:ignore spinpace helping traversal: each iteration advances curr or snips a marked node, so the walk is bounded by list length
		for {
			if curr == nil {
				return pred, predRef, nil, false
			}
			if hp {
				// Publish curr, then revalidate pred's record (see
				// list.Harris.find for why this orders the publication
				// before any retirement of curr).
				g.Protect(1, curr)
				if pred.ref.Load() != predRef {
					continue retry
				}
			}
			currRef := curr.ref.Load()
			if currRef.marked {
				newRef := &soRef[K, V]{next: currRef.next}
				if !pred.ref.CompareAndSwap(predRef, newRef) {
					continue retry
				}
				predRef = newRef
				m.retire(g, curr)
				curr = currRef.next
				continue
			}
			switch {
			case curr.soKey > soKey:
				return pred, predRef, curr, false
			case curr.soKey == soKey:
				if key == nil || curr.key == *key {
					return pred, predRef, curr, true
				}
				// Hash collision: different key, same split-order key.
				// Keep scanning the run of equal keys.
			}
			pred, predRef = curr, currRef
			if hp {
				g.Protect(0, curr) // pred moves into slot 0
			}
			curr = currRef.next
		}
	}
}

// startFor returns the sentinel to search from for hash h under the
// current table size.
func (m *SplitOrdered[K, V]) startFor(g reclaim.Guard, h uint64) *soNode[K, V] {
	b := h & (m.bucketCount.Load() - 1)
	return m.getBucket(g, b)
}

// Load returns the value stored for k.
func (m *SplitOrdered[K, V]) Load(k K) (v V, ok bool) {
	g := m.acquire()
	defer m.release(g)
	h := m.hash(k)
	_, _, curr, found := m.find(g, m.startFor(g, h), soRegularKey(h), &k)
	if !found {
		return v, false
	}
	return *curr.val.Load(), true
}

// Store sets the value for k, inserting it if absent.
func (m *SplitOrdered[K, V]) Store(k K, v V) {
	m.upsert(k, v, true)
}

// LoadOrStore returns the existing value for k if present; otherwise it
// stores and returns v.
func (m *SplitOrdered[K, V]) LoadOrStore(k K, v V) (actual V, loaded bool) {
	return m.upsert(k, v, false)
}

// upsert implements Store (overwrite=true) and LoadOrStore (overwrite=false).
func (m *SplitOrdered[K, V]) upsert(k K, v V, overwrite bool) (actual V, loaded bool) {
	g := m.acquire()
	defer m.release(g)
	h := m.hash(k)
	soKey := soRegularKey(h)
	var b contend.Backoff
	var n *soNode[K, V] // lazily prepared insert node, reused across retries
	for {
		start := m.startFor(g, h)
		pred, predRef, curr, found := m.find(g, start, soKey, &k)
		if found {
			if n != nil {
				m.nodes.Put(n) // never published; straight back to the pool
			}
			if !overwrite {
				return *curr.val.Load(), true
			}
			curr.val.Store(&v)
			// If a concurrent Delete marked the node we cannot tell whether
			// it observed our value; retry so the Store takes effect after
			// the Delete in every linearization.
			if curr.ref.Load().marked {
				n = nil
				continue
			}
			return v, true
		}
		if n == nil {
			n = m.nodes.Get()
			n.soKey = soKey
			n.key = k
		}
		n.val.Store(&v)
		n.ref.Store(&soRef[K, V]{next: curr})
		if pred.ref.CompareAndSwap(predRef, &soRef[K, V]{next: n}) {
			m.grew()
			return v, false
		}
		b.Pause() // lost the window; back off before re-resolving it
	}
}

// Delete removes k, reporting whether it was present.
func (m *SplitOrdered[K, V]) Delete(k K) bool {
	g := m.acquire()
	defer m.release(g)
	h := m.hash(k)
	soKey := soRegularKey(h)
	var b contend.Backoff
	for {
		start := m.startFor(g, h)
		pred, predRef, curr, found := m.find(g, start, soKey, &k)
		if !found {
			return false
		}
		currRef := curr.ref.Load()
		if currRef.marked {
			continue // raced with another deleter; re-resolve via find
		}
		if !curr.ref.CompareAndSwap(currRef, &soRef[K, V]{next: currRef.next, marked: true}) {
			b.Pause() // lost the marking race; back off before retrying
			continue
		}
		// Physical unlink is best-effort; find() helps later on failure,
		// and whoever's unlink CAS succeeds does the retiring.
		if pred.ref.CompareAndSwap(predRef, &soRef[K, V]{next: currRef.next}) {
			m.retire(g, curr)
		}
		m.size.Add(-1)
		return true
	}
}

// Len reports the number of entries (atomic counter; exact in quiescent
// states).
func (m *SplitOrdered[K, V]) Len() int {
	return int(m.size.Load())
}

// Range calls f for every entry until f returns false. The iteration is
// weakly consistent: it reflects some interleaving of concurrent updates,
// never locks, and never blocks writers. Under EBR the whole walk runs
// inside one pinned section; under HP it publishes no hazards (node
// recycling is disabled there, so retired nodes remain type-stable
// GC-managed memory the walk may harmlessly read through).
func (m *SplitOrdered[K, V]) Range(f func(K, V) bool) {
	g := m.acquire()
	defer m.release(g)
	head := m.getBucket(g, 0)
	for curr := head.ref.Load().next; curr != nil; {
		ref := curr.ref.Load()
		if !ref.marked && curr.soKey&1 == 1 {
			if !f(curr.key, *curr.val.Load()) {
				return
			}
		}
		curr = ref.next
	}
}

// grew bumps the size and doubles the bucket count when the load factor
// exceeds the threshold. The doubling is a single CAS: directory segments
// and sentinels materialise lazily afterwards.
func (m *SplitOrdered[K, V]) grew() {
	sz := m.size.Add(1)
	n := m.bucketCount.Load()
	if sz > int64(n)*soLoadFactor && n < (1<<(soMaxSegments-1)) {
		m.bucketCount.CompareAndSwap(n, 2*n)
	}
}
