package cmap

import (
	"runtime"
	"sync"
	"testing"
)

// TestStripedResizeNoLostGrowth pins the fix for the racing-growers bug:
// when many writers cross the resize threshold together, the table must end
// up sized for the size they collectively reached, not for the single
// doubling the first winner performed. A burst of concurrent writers grows
// the map from its minimum geometry through several doublings at once; at
// quiescence the load-factor invariant must hold.
func TestStripedResizeNoLostGrowth(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	const (
		writers = 8
		perW    = 4096
	)
	m := NewStriped[int, int](1) // minimum stripes → smallest initial bucket array
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := w * perW
			for i := 0; i < perW; i++ {
				m.Store(base+i, i)
			}
		}(w)
	}
	wg.Wait()
	if got, want := m.Len(), writers*perW; got != want {
		t.Fatalf("Len() = %d, want %d", got, want)
	}
	if size, buckets := m.size.Load(), len(m.buckets); size > int64(stripedLoadFactor*buckets) {
		t.Fatalf("lost growth: %d entries in %d buckets exceeds load factor %d",
			size, buckets, stripedLoadFactor)
	}
}

// TestStripedResizeRace hammers Store/Range/Delete across forced resizes
// under the race detector and verifies no entries are lost or duplicated:
// every key stored by the steady writers is present exactly once afterwards,
// and the churn writer's keys are all gone.
func TestStripedResizeRace(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	const (
		writers = 4
		perW    = 2000
		churnN  = 500
		rounds  = 4
	)
	m := NewStriped[int, int](2) // tiny start: every writer drives resizes
	var wg sync.WaitGroup
	// Steady writers: disjoint key ranges, kept forever.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := (w + 1) << 20
			for i := 0; i < perW; i++ {
				m.Store(base+i, base+i)
			}
		}(w)
	}
	// Churn writer: inserts and deletes its own scratch range while the
	// table is resizing under it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			for i := 0; i < churnN; i++ {
				m.Store(-i-1, i)
			}
			for i := 0; i < churnN; i++ {
				if !m.Delete(-i - 1) {
					t.Error("churn key vanished before delete")
					return
				}
			}
		}
	}()
	// Ranger: consistent snapshots must never show a duplicate key.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < 50; r++ {
			seen := make(map[int]bool)
			m.Range(func(k, _ int) bool {
				if seen[k] {
					t.Errorf("Range observed key %d twice", k)
					return false
				}
				seen[k] = true
				return true
			})
		}
	}()
	wg.Wait()

	if got, want := m.Len(), writers*perW; got != want {
		t.Fatalf("Len() = %d, want %d (lost or duplicated entries)", got, want)
	}
	for w := 0; w < writers; w++ {
		base := (w + 1) << 20
		for i := 0; i < perW; i++ {
			if v, ok := m.Load(base + i); !ok || v != base+i {
				t.Fatalf("key %d: got (%d, %v), want (%d, true)", base+i, v, ok, base+i)
			}
		}
	}
	count := 0
	seen := make(map[int]bool, writers*perW)
	m.Range(func(k, _ int) bool {
		if seen[k] {
			t.Fatalf("final Range observed key %d twice", k)
		}
		seen[k] = true
		count++
		return true
	})
	if count != writers*perW {
		t.Fatalf("final Range visited %d entries, want %d", count, writers*perW)
	}
}
