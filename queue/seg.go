package queue

import (
	"sync/atomic"

	"github.com/cds-suite/cds/contend"
	"github.com/cds-suite/cds/internal/pad"
	"github.com/cds-suite/cds/internal/pow2"
	"github.com/cds-suite/cds/reclaim"
)

// This file holds the machinery shared by the segmented ring queues (LCRQ
// and its MPSC specialisation): the fixed-size ring segment, the cursor
// encoding with its closed bit, and the enqueue / segment-advance /
// retirement protocol. The design follows the LCRQ lineage (Morrison &
// Afek, PPoPP 2013) adapted to Go's single-word atomics: instead of the
// paper's double-width CAS on (value, index) cells, each slot carries the
// per-slot publication state word already proven in the MPMC ring, and a
// dequeuer that overtakes an in-flight enqueuer abandons the slot with one
// CAS rather than waiting on it.
//
// The common case is exactly the survey's promise for FAA queues: an
// enqueue is one fetch-and-add on the tail segment's cursor plus one
// uncontended CAS publishing the slot; a dequeue is one fetch-and-add on
// the head segment's cursor plus one load/store pair consuming it. The
// hot cursors are line-padded, and — unlike the Michael–Scott queue —
// elements cost no per-node allocation and no per-node retirement: memory
// management happens at segment granularity, so a reclamation domain sees
// one Retire per segSize elements instead of one per element.

// Default and minimum segment capacities. 256 slots amortises the append
// slow path to <0.5% of enqueues while keeping a segment (~4KB for int
// slots) small enough that a mostly-empty queue wastes little; the A5
// ablation sweeps {64, 256, 1024}.
const (
	defaultSegSize = 256
	minSegSize     = 2
)

// segClosedBit seals a segment's enqueue cursor: once set, every
// fetch-and-add returns a value with the bit set and the claim fails, so
// enqueuers move on to (or append) the next segment. The bit rides in the
// cursor word itself so closing needs no extra load on the fast path.
const segClosedBit = uint64(1) << 63

// segCursor extracts the claim count from an enqueue-cursor word.
func segCursor(c uint64) uint64 { return c &^ segClosedBit }

// segIsClosed reports whether the cursor word carries the closed bit.
func segIsClosed(c uint64) bool { return c&segClosedBit != 0 }

// segClose returns the cursor word with the closed bit set.
func segClose(c uint64) uint64 { return c | segClosedBit }

// Per-slot publication states. A slot in a fresh segment is used at most
// once before the segment is retired (cursors never wrap within a
// segment), so the state machine needs no lap numbers:
//
//	empty ──publish CAS──▶ committed ──consume──▶ taken
//	  └───abandon CAS (overtaking dequeuer)──▶ abandoned
//
// The two CASes race; exactly one wins. A losing publisher re-FAAs for a
// fresh slot, a losing abandoner consumes the value after all.
const (
	slotEmpty uint32 = iota
	slotCommitted
	slotTaken
	slotAbandoned
)

// tantrumBudget is how many abandoned publications an enqueuer tolerates
// before it seals the segment (LCRQ's "tantrum") and appends a fresh one,
// bounding the retry loop and making enqueue lock-free: the append
// linearizes at a CAS that can only fail because another append succeeded.
const tantrumBudget = 8

// deqSpinPauses is how many backoff pauses a dequeuer grants an in-flight
// publisher before abandoning the slot. The publication window is two
// instructions wide, so the budget is small; it exists because abandoning
// costs both sides a retry, which matters when a publisher is merely
// descheduled for a moment.
const deqSpinPauses = 4

// segment is one fixed-size ring in the linked list. Slots are deliberately
// unpadded (the LCRQ layout): neighbouring slots share lines, but each slot
// is touched by exactly two parties ever — its publisher and its claimant —
// and the FAA cursors spread them out, so dense layout wins the cache
// behaviour that is the point of a ring segment.
type segment[T any] struct {
	enq   atomic.Uint64 // claim count | segClosedBit
	_     pad.CacheLinePad
	deq   atomic.Uint64 // dequeue claim count
	_     pad.CacheLinePad
	next  atomic.Pointer[segment[T]]
	_     pad.CacheLinePad
	slots []segSlot[T]
}

type segSlot[T any] struct {
	state atomic.Uint32
	value T
}

// resetSegment restores a retired segment to a publishable state; it runs
// under the Recycler before the segment re-enters the pool, and on the
// give-back path for segments prepared for an append that lost its CAS.
func resetSegment[T any](s *segment[T]) {
	s.enq.Store(0)
	s.deq.Store(0)
	s.next.Store(nil)
	var zero T
	for i := range s.slots {
		s.slots[i].state.Store(slotEmpty)
		s.slots[i].value = zero
	}
}

// segCounters are the always-on gauges behind SegStats. Every counter
// lives on the slow path (segment transitions, lost races), so the FAA
// fast path pays nothing for them.
type segCounters struct {
	alloc   atomic.Int64 // segments published into the list (incl. the seed)
	retired atomic.Int64 // segments handed to the reclamation domain
	freed   atomic.Int64 // free callbacks run (recycled to the pool or dropped)
	closed  atomic.Int64 // tantrum seals
	enqSlow atomic.Int64 // enqueue attempts that left the FAA fast path
	deqSlow atomic.Int64 // dequeue claims lost to abandonment
}

// SegStats is a snapshot of a segmented queue's structural counters, the
// S18 gauges. Conservation holds by construction at quiescence:
//
//	SegsAllocated == SegsRecycled + SegsLive + SegsRetiredPending
//
// Under the default GC domain free callbacks never run, so retired
// segments count as pending forever — the domain's way of saying the
// garbage collector owns them now.
type SegStats struct {
	// SegsAllocated counts segments ever published into the queue's list,
	// including the seed segment (segments prepared for an append that
	// lost its race are handed back and never counted).
	SegsAllocated int64
	// SegsRecycled counts segments whose reclamation free callback ran:
	// returned to the Recycler pool when recycling is on, dropped to the
	// collector otherwise.
	SegsRecycled int64
	// SegsReused counts allocations served from the Recycler pool.
	SegsReused int64
	// SegsClosed counts tantrum seals — segments closed early because an
	// enqueuer kept losing its slot to overtaking dequeuers.
	SegsClosed int64
	// SegsLive is the linked-list population: allocated minus retired.
	SegsLive int64
	// SegsRetiredPending is retired-but-not-yet-freed — the segment-level
	// pending_garbage gauge.
	SegsRetiredPending int64
	// EnqSlowpath counts enqueue attempts that left the one-FAA fast path:
	// abandoned publications plus append rounds. The FAA fast-path
	// fraction of an N-enqueue run is (N-EnqSlowpath)/N.
	EnqSlowpath int64
	// DeqAbandoned counts dequeue claims resolved by abandoning an
	// unpublished slot (the dequeuer retried with a fresh claim).
	DeqAbandoned int64
}

// segCore is the state and protocol shared by LCRQ and MPSC: the head and
// tail segment pointers, the segment size, the reclamation wiring, and the
// multi-producer enqueue side (both variants are multi-producer; they
// differ only in the dequeue cursor discipline).
type segCore[T any] struct {
	head  atomic.Pointer[segment[T]]
	_     pad.CacheLinePad
	tail  atomic.Pointer[segment[T]]
	_     pad.CacheLinePad
	size  uint64
	mem   *reclaim.Pool
	segs  *reclaim.Recycler[segment[T]]
	count atomic.Int64 // maintained only when recycling (Len cannot traverse reused segments)
	//cdsvet:ignore padlayout count and the stats gauges are touched only on segment-boundary crossings; the pads above isolate head and tail, the per-operation hot words
	stats segCounters
}

func (q *segCore[T]) init(o options) {
	n := o.segSize
	if n <= 0 {
		n = defaultSegSize
	}
	q.size = uint64(pow2.RoundUp(n, minSegSize))
	if o.dom != nil {
		q.mem = reclaim.NewPool(o.dom, 1)
		if o.recycle {
			q.segs = reclaim.NewRecycler(resetSegment[T])
		}
	}
	seed := q.newSegment()
	q.stats.alloc.Add(1)
	q.head.Store(seed)
	q.tail.Store(seed)
}

// newSegment returns a publishable segment, recycled when one is free.
func (q *segCore[T]) newSegment() *segment[T] {
	s := q.segs.Get() // a nil recycler allocates
	if s.slots == nil {
		s.slots = make([]segSlot[T], q.size)
	}
	return s
}

// loadSeg reads a segment pointer for dereferencing: a plain load on the
// GC fast path (g == nil), the publish-and-revalidate dance under a
// reclamation guard. Hazard slot 0 is the only slot either operation needs
// — the advance paths compare successor pointers but never dereference
// them until the next iteration re-protects.
func loadSeg[T any](g reclaim.Guard, src *atomic.Pointer[segment[T]]) *segment[T] {
	if g == nil {
		return src.Load()
	}
	return reclaim.Load(g, 0, src)
}

// enqueue is the shared multi-producer enqueue. The caller holds g's
// section (g may be nil on the GC fast path).
func (q *segCore[T]) enqueue(g reclaim.Guard, v T) {
	var b contend.Backoff
	fails := 0
	for {
		seg := loadSeg(g, &q.tail)
		if next := seg.next.Load(); next != nil {
			// Tail lagging behind a completed append: help swing it.
			q.tail.CompareAndSwap(seg, next)
			continue
		}
		t := seg.enq.Add(1) - 1
		if !segIsClosed(t) && t < q.size {
			slot := &seg.slots[t]
			slot.value = v
			if slot.state.CompareAndSwap(slotEmpty, slotCommitted) {
				// Linearized: the publication made v visible to the
				// dequeuer holding (or about to take) this claim.
				if q.segs != nil {
					q.count.Add(1)
				}
				return
			}
			// An overtaking dequeuer abandoned the slot before we
			// published. Scrap the claim and take a fresh ticket; after
			// tantrumBudget losses, seal the segment so the retry lands
			// in a fresh ring instead of feeding the same race.
			var zero T
			slot.value = zero
			q.stats.enqSlow.Add(1)
			fails++
			if fails >= tantrumBudget {
				if !segIsClosed(seg.enq.Or(segClosedBit)) {
					q.stats.closed.Add(1)
				}
			}
			b.Pause()
			continue
		}
		// Segment exhausted or sealed: append a fresh segment carrying v.
		q.stats.enqSlow.Add(1)
		if q.appendWith(seg, v) {
			if q.segs != nil {
				q.count.Add(1)
			}
			return
		}
		b.Pause()
	}
}

// appendWith links a fresh segment whose slot 0 already holds v after seg,
// linearizing the enqueue at the successful next CAS. A lost race hands
// the prepared segment back unpublished and reports false so the caller
// retries in whichever segment won.
func (q *segCore[T]) appendWith(seg *segment[T], v T) bool {
	ns := q.newSegment()
	ns.slots[0].value = v
	ns.slots[0].state.Store(slotCommitted)
	ns.enq.Store(1)
	if seg.next.CompareAndSwap(nil, ns) {
		q.stats.alloc.Add(1)
		q.tail.CompareAndSwap(seg, ns)
		return true
	}
	if q.segs != nil {
		q.segs.Put(ns) // give-back: reset and pooled, never published
	}
	if next := seg.next.Load(); next != nil {
		q.tail.CompareAndSwap(seg, next)
	}
	return false
}

// advanceHead moves the head past a drained segment and retires it. The
// tail is helped past first: a segment is retired only after both cursors
// have moved beyond it, the invariant (inherited from the Michael–Scott
// discipline) that makes hazard revalidation against q.tail sound.
func (q *segCore[T]) advanceHead(g reclaim.Guard, seg, next *segment[T]) {
	if q.tail.Load() == seg {
		q.tail.CompareAndSwap(seg, next)
	}
	if q.head.CompareAndSwap(seg, next) {
		q.retire(g, seg)
	}
}

// retire hands a drained segment to the reclamation domain — the winning
// head CAS calls it exactly once per segment. One guard per segSize
// elements is the reclamation economy over per-node queues.
func (q *segCore[T]) retire(g reclaim.Guard, s *segment[T]) {
	q.stats.retired.Add(1)
	if g == nil {
		return // GC domain: the collector owns it now
	}
	freed := &q.stats.freed
	if segs := q.segs; segs != nil {
		g.Retire(s, func() {
			freed.Add(1)
			segs.Put(s)
		})
		return
	}
	g.Retire(s, func() { freed.Add(1) })
}

// takeSlot consumes a claimed slot: wait briefly for an in-flight
// publication, then abandon. Exactly one of {publisher, claimant} wins the
// empty-state CAS; a claimant that loses it consumes the value after all.
func takeSlot[T any](s *segSlot[T]) (v T, ok bool) {
	var b contend.Backoff
	for i := 0; ; i++ {
		switch s.state.Load() {
		case slotCommitted:
			goto take
		case slotAbandoned:
			return v, false
		}
		if i >= deqSpinPauses {
			if s.state.CompareAndSwap(slotEmpty, slotAbandoned) {
				return v, false
			}
			if s.state.Load() != slotCommitted {
				return v, false // lost to another abandonment, not a publication
			}
			goto take
		}
		b.Pause()
	}
take:
	v = s.value
	var zero T
	s.value = zero // release the reference for the GC
	s.state.Store(slotTaken)
	return v, true
}

// emptyAt reports whether a head-segment observation (deq claim count h
// loaded before enqueue-cursor word e) proves the queue empty: no
// claimable slot remains and the segment is still open, so nothing was
// ever appended after it. Loading h first makes the check conservative —
// the dequeue cursor is monotone, so the true claim count at the e load
// was at least h.
func (q *segCore[T]) emptyAt(h, e uint64) bool {
	return h >= min(segCursor(e), q.size) && !segIsClosed(e) && segCursor(e) < q.size
}

// Len counts committed-but-unconsumed slots by traversing the segment
// list. Exact only in quiescent states, like every concurrent Len in the
// module. With segment recycling enabled it is served from a counter
// instead: a traversal could follow a reused segment into the wrong
// incarnation.
func (q *segCore[T]) Len() int {
	if q.segs != nil {
		return int(q.count.Load())
	}
	n := 0
	for s := q.head.Load(); s != nil; s = s.next.Load() {
		for i := range s.slots {
			if s.slots[i].state.Load() == slotCommitted {
				n++
			}
		}
	}
	return n
}

// Empty reports whether the queue was observed empty: an O(1) peek at the
// head segment's cursors where Len would traverse every segment. Pollers
// (the pool's pre-park re-check) use it as a cheap non-emptiness probe;
// like Len it is exact only in quiescent states.
func (q *segCore[T]) Empty() bool {
	seg := q.head.Load()
	h := seg.deq.Load()
	e := seg.enq.Load()
	return h >= min(segCursor(e), q.size) && seg.next.Load() == nil
}

// Stats snapshots the structural gauges. Counters are monotone; under
// concurrency the snapshot is approximate in the usual Len sense.
func (q *segCore[T]) Stats() SegStats {
	alloc := q.stats.alloc.Load()
	retired := q.stats.retired.Load()
	freed := q.stats.freed.Load()
	return SegStats{
		SegsAllocated:      alloc,
		SegsRecycled:       freed,
		SegsReused:         q.segs.Reused(),
		SegsClosed:         q.stats.closed.Load(),
		SegsLive:           alloc - retired,
		SegsRetiredPending: retired - freed,
		EnqSlowpath:        q.stats.enqSlow.Load(),
		DeqAbandoned:       q.stats.deqSlow.Load(),
	}
}

// SegmentSize reports the (power-of-two rounded) slots per segment.
func (q *segCore[T]) SegmentSize() int { return int(q.size) }
