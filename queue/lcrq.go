package queue

import (
	"github.com/cds-suite/cds/reclaim"
)

// LCRQ is an unbounded MPMC queue in the LCRQ lineage (Morrison & Afek,
// PPoPP 2013): a linked list of fixed-size ring segments where the common
// case costs one fetch-and-add on a segment cursor plus one slot
// publication — no per-element allocation and no CAS-contended hot
// pointer, which is why FAA queues beat Michael–Scott-style linked queues
// by multiples at high thread counts (see the lock-free survey and the
// S18 bench family). Go has no double-width CAS, so slots carry the
// per-slot publication state word proven in the bounded MPMC ring
// instead of the paper's (value, index) cells; a dequeuer that overtakes
// an in-flight enqueuer abandons the slot with one CAS and both sides
// re-FAA.
//
// When a segment fills — or an enqueuer loses tantrumBudget publications
// to overtaking dequeuers — the segment's cursor is sealed with a closed
// bit and a fresh segment is appended, the enqueued value pre-committed
// in its slot 0. Drained segments are unlinked by dequeuers and retired
// whole through the reclaim domain: one guard operation and one Retire
// per SegmentSize elements, orders of magnitude fewer than per-node MS.
// WithRecycling additionally pools retired segments for reuse.
//
// Linearization points: Enqueue at its successful slot-publication CAS
// (or, on the append path, at the successful next-pointer CAS that links
// the pre-filled segment); TryDequeue at the fetch-and-add that claims a
// slot an enqueuer published or will publish; an empty TryDequeue at its
// load of the head segment's enqueue cursor, taken after the dequeue
// cursor so the no-claimable-slot observation is conservative.
//
// The zero value is NOT usable; construct with NewLCRQ. See
// WithSegmentSize for the capacity knob and Stats for the structural
// gauges. Progress: lock-free (a stalled enqueuer can force at most
// tantrumBudget retries before the segment seals; a sealed segment's
// append can only fail because another append succeeded).
type LCRQ[T any] struct {
	segCore[T]
}

// NewLCRQ returns an empty segmented queue. See WithReclaim,
// WithRecycling, and WithSegmentSize.
func NewLCRQ[T any](opts ...Option) *LCRQ[T] {
	q := &LCRQ[T]{}
	q.init(buildOptions(opts))
	return q
}

// Enqueue adds v at the tail.
func (q *LCRQ[T]) Enqueue(v T) {
	if q.mem == nil {
		q.enqueue(nil, v)
		return
	}
	g := q.mem.Get()
	g.Enter()
	q.enqueue(g, v)
	g.Exit()
	q.mem.Put(g)
}

// TryDequeue removes and returns the head element; ok is false if the
// queue was observed empty.
func (q *LCRQ[T]) TryDequeue() (v T, ok bool) {
	if q.mem == nil {
		return q.dequeue(nil)
	}
	g := q.mem.Get()
	g.Enter()
	v, ok = q.dequeue(g)
	g.Exit()
	q.mem.Put(g)
	return v, ok
}

// dequeue is the shared multi-consumer dequeue. The caller holds g's
// section (g may be nil on the GC fast path).
func (q *LCRQ[T]) dequeue(g reclaim.Guard) (v T, ok bool) {
	for {
		seg := loadSeg(g, &q.head)
		// Read deq before enq: the dequeue cursor is monotone, so if the
		// enq load then shows no slot beyond h, there was an instant
		// during the enq load at which every published slot was claimed.
		h := seg.deq.Load()
		e := seg.enq.Load()
		if h >= min(segCursor(e), q.size) {
			if q.emptyAt(h, e) {
				return v, false // open and drained: the queue is empty
			}
			// Sealed (closed or full) and drained: advance past it — or,
			// if the winning append has not linked its segment yet,
			// nothing is published anywhere and empty is still correct.
			next := seg.next.Load()
			if next == nil {
				return v, false
			}
			q.advanceHead(g, seg, next)
			continue
		}
		t := seg.deq.Add(1) - 1
		if t >= q.size {
			continue // overshot a drained segment; re-examine from the top
		}
		if val, taken := takeSlot(&seg.slots[t]); taken {
			if q.segs != nil {
				q.count.Add(-1)
			}
			return val, true
		}
		// We overtook the enqueuer holding ticket t and abandoned its
		// slot; it will re-FAA, and so do we.
		q.stats.deqSlow.Add(1)
	}
}
