package queue_test

import (
	"fmt"
	"sync"

	"github.com/cds-suite/cds/queue"
)

// The Michael–Scott queue is the standard unbounded lock-free MPMC FIFO.
func ExampleMS() {
	q := queue.NewMS[int]()

	var wg sync.WaitGroup
	for i := 1; i <= 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q.Enqueue(i)
		}(i)
	}
	wg.Wait()

	sum := 0
	for {
		v, ok := q.TryDequeue()
		if !ok {
			break
		}
		sum += v
	}
	fmt.Println("sum:", sum)
	// Output: sum: 6
}

// The bounded MPMC ring rejects enqueues once full — backpressure without
// blocking.
func ExampleMPMC() {
	q := queue.NewMPMC[string](2)
	fmt.Println(q.TryEnqueue("a"))
	fmt.Println(q.TryEnqueue("b"))
	fmt.Println(q.TryEnqueue("c")) // full
	v, _ := q.TryDequeue()
	fmt.Println(v)
	// Output:
	// true
	// true
	// false
	// a
}

// The SPSC ring serves exactly one producer and one consumer with
// wait-free operations — the cheapest possible handoff.
func ExampleSPSC() {
	q := queue.NewSPSC[int](8)
	done := make(chan int)
	go func() { // the single consumer
		total := 0
		for received := 0; received < 3; {
			if v, ok := q.TryDequeue(); ok {
				total += v
				received++
			}
		}
		done <- total
	}()
	for _, v := range []int{10, 20, 30} { // the single producer
		for !q.TryEnqueue(v) {
		}
	}
	fmt.Println(<-done)
	// Output: 60
}
