package queue

import (
	"fmt"
	"sync/atomic"

	"github.com/cds-suite/cds/internal/pad"
	"github.com/cds-suite/cds/internal/pow2"
)

// MPMC is a bounded multi-producer/multi-consumer queue over a circular
// array, in the style popularised by Dmitry Vyukov. Each slot carries a
// sequence number: producers claim a ticket from the enqueue cursor with
// fetch-and-add-like CAS and wait for their slot's sequence to say "free",
// consumers do the symmetric dance on the dequeue cursor. Compared with the
// linked queues, all data lives in one flat array (no allocation per
// element, dense cache behaviour) at the cost of a fixed capacity.
//
// Linearization points: TryEnqueue at the successful enqueue-cursor CAS;
// TryDequeue at the successful dequeue-cursor CAS; full/empty returns at
// the slot-sequence load that observed the condition.
//
// Progress: not strictly lock-free — a producer that claims a slot and
// stalls before publishing delays the consumer of that slot — but every
// cursor operation is bounded and the design is the standard "practically
// non-blocking" bounded queue used in high-performance systems.
type MPMC[T any] struct {
	buf     []mpmcSlot[T]
	mask    uint64
	_       pad.CacheLinePad
	enqueue atomic.Uint64
	_       pad.CacheLinePad
	dequeue atomic.Uint64
	_       pad.CacheLinePad
}

type mpmcSlot[T any] struct {
	sequence atomic.Uint64
	value    T
	_        pad.CacheLinePad
}

// NewMPMC returns an empty bounded queue with the given capacity, rounded
// up to a power of two (minimum 2).
func NewMPMC[T any](capacity int) *MPMC[T] {
	n := pow2.RoundUp(capacity, 2)
	q := &MPMC[T]{
		buf:  make([]mpmcSlot[T], n),
		mask: uint64(n - 1),
	}
	for i := range q.buf {
		q.buf[i].sequence.Store(uint64(i))
	}
	return q
}

// TryEnqueue adds v at the tail; it reports false if the queue was full.
func (q *MPMC[T]) TryEnqueue(v T) bool {
	for {
		pos := q.enqueue.Load()
		slot := &q.buf[pos&q.mask]
		seq := slot.sequence.Load()
		switch {
		case seq == pos:
			// Slot free for this lap: claim the ticket.
			if q.enqueue.CompareAndSwap(pos, pos+1) {
				slot.value = v
				slot.sequence.Store(pos + 1) // publish to consumers
				return true
			}
		case seq < pos:
			// Slot still occupied by the previous lap: queue is full.
			return false
		default:
			// Another producer advanced the cursor; reload and retry.
		}
	}
}

// TryDequeue removes and returns the head element; ok is false if the
// queue was empty.
func (q *MPMC[T]) TryDequeue() (v T, ok bool) {
	for {
		pos := q.dequeue.Load()
		slot := &q.buf[pos&q.mask]
		seq := slot.sequence.Load()
		switch {
		case seq == pos+1:
			// Slot published for this lap: claim it.
			if q.dequeue.CompareAndSwap(pos, pos+1) {
				v = slot.value
				var zero T
				slot.value = zero // release reference for the GC
				// Free the slot for the producers' next lap.
				slot.sequence.Store(pos + q.mask + 1)
				return v, true
			}
		case seq < pos+1:
			return v, false // nothing published yet: empty
		default:
			// Another consumer advanced the cursor; reload and retry.
		}
	}
}

// Cap reports the fixed capacity.
func (q *MPMC[T]) Cap() int { return len(q.buf) }

// Len reports the difference of the cursors: the number of claimed-and-not-
// yet-consumed slots. Exact in quiescent states.
func (q *MPMC[T]) Len() int {
	// Order matters: loading dequeue first can otherwise yield negative
	// values when producers race ahead between the two loads.
	deq := q.dequeue.Load()
	enq := q.enqueue.Load()
	if enq < deq {
		return 0
	}
	n := int(enq - deq)
	if n > len(q.buf) {
		n = len(q.buf)
	}
	return n
}

// String describes the queue state for debugging.
func (q *MPMC[T]) String() string {
	return fmt.Sprintf("MPMC(cap=%d len=%d)", q.Cap(), q.Len())
}
