package queue

import (
	"fmt"
	"sync/atomic"

	"github.com/cds-suite/cds/contend"
	"github.com/cds-suite/cds/internal/pad"
	"github.com/cds-suite/cds/internal/pow2"
)

// MPMC is a bounded multi-producer/multi-consumer queue over a circular
// array, in the style popularised by Dmitry Vyukov. Each slot carries a
// sequence number: producers claim a ticket from the enqueue cursor with
// fetch-and-add-like CAS and wait for their slot's sequence to say "free",
// consumers do the symmetric dance on the dequeue cursor. Compared with the
// linked queues, all data lives in one flat array (no allocation per
// element, dense cache behaviour) at the cost of a fixed capacity.
//
// Linearization points: TryEnqueue at the successful enqueue-cursor CAS;
// TryDequeue at the successful dequeue-cursor CAS; an empty return at the
// enqueue-cursor load that found no claim beyond the dequeue view, a full
// return at the dequeue-cursor load that found a full lap of unconsumed
// claims. The slot-sequence observation alone is not enough for either
// verdict: a lagging sequence can mean an in-flight publication (or, for
// full, an in-flight consumption) at the head of the line, and reporting
// empty while completed enqueues sit in later slots would not be
// linearizable — the cursor re-check distinguishes the two.
//
// Progress: not strictly lock-free — a producer that claims a slot and
// stalls before publishing delays the consumer of that slot, and a
// consumer that stalls between its claim and its sequence store delays
// the producer reusing that slot — but every cursor operation is bounded
// and the design is the standard "practically non-blocking" bounded
// queue used in high-performance systems.
type MPMC[T any] struct {
	buf     []mpmcSlot[T]
	mask    uint64
	_       pad.CacheLinePad
	enqueue atomic.Uint64
	_       pad.CacheLinePad
	dequeue atomic.Uint64
	_       pad.CacheLinePad
	//cdsvet:ignore padlayout CAS-miss telemetry counters share one line by design; they are only touched on the contended slow path the pads keep off the cursors
	stats mpmcCounters
}

// mpmcCounters sit behind Stats; they are touched only on the CAS-miss
// slow path, so the uncontended fast path pays nothing for them.
type mpmcCounters struct {
	enqMisses atomic.Int64
	deqMisses atomic.Int64
	backoffs  atomic.Int64
}

// MPMCStats is a snapshot of the ring's contention counters (the S2
// gauges): cursor-CAS misses per side, and how many retries — repeat
// CAS misses plus waits on an in-flight peer's slot publication or
// release — were paced with a backoff pause rather than spun hot.
type MPMCStats struct {
	EnqCASMisses int64
	DeqCASMisses int64
	Backoffs     int64
}

// Stats snapshots the contention counters. Counters are monotone.
func (q *MPMC[T]) Stats() MPMCStats {
	return MPMCStats{
		EnqCASMisses: q.stats.enqMisses.Load(),
		DeqCASMisses: q.stats.deqMisses.Load(),
		Backoffs:     q.stats.backoffs.Load(),
	}
}

type mpmcSlot[T any] struct {
	sequence atomic.Uint64
	value    T
	_        pad.CacheLinePad
}

// NewMPMC returns an empty bounded queue with the given capacity, rounded
// up to a power of two (minimum 2).
func NewMPMC[T any](capacity int) *MPMC[T] {
	n := pow2.RoundUp(capacity, 2)
	q := &MPMC[T]{
		buf:  make([]mpmcSlot[T], n),
		mask: uint64(n - 1),
	}
	for i := range q.buf {
		q.buf[i].sequence.Store(uint64(i))
	}
	return q
}

// TryEnqueue adds v at the tail; it reports false if the queue was full.
func (q *MPMC[T]) TryEnqueue(v T) bool {
	var b contend.Backoff
	misses := 0
	pos := q.enqueue.Load()
	for {
		slot := &q.buf[pos&q.mask]
		seq := slot.sequence.Load()
		switch {
		case seq == pos:
			// Slot free for this lap: claim the ticket.
			if q.enqueue.CompareAndSwap(pos, pos+1) {
				slot.value = v
				slot.sequence.Store(pos + 1) // publish to consumers
				return true
			}
			// Lost the ticket race. Go's CAS reports failure without
			// returning the witnessed value (unlike C++'s
			// compare_exchange), so one cursor reload per miss is the
			// floor — but only one: no spin back to a cold re-read, and
			// repeated misses pace the retry instead of hammering the
			// contended line.
			q.stats.enqMisses.Add(1)
			misses++
			if misses > 1 {
				q.stats.backoffs.Add(1)
				b.Pause()
			}
			pos = q.enqueue.Load()
		case seq < pos:
			// Slot not yet freed for this lap. That proves the queue full
			// only if a whole lap of claims is unconsumed; otherwise either
			// the slot's consumer is mid-claim (dequeue-cursor CAS done,
			// sequence store pending — wait it out, per the documented
			// caveat that a stalled peer delays this slot and only this
			// slot) or our cursor view is a whole lap stale (the signed
			// delta goes negative) and a reload fixes it.
			if int64(pos-q.dequeue.Load()) >= int64(len(q.buf)) {
				return false // full linearizes at the dequeue-cursor load
			}
			pos = q.enqueue.Load()
			q.stats.backoffs.Add(1)
			b.Pause()
		default:
			// Another producer advanced the cursor past our stale view.
			pos = q.enqueue.Load()
		}
	}
}

// TryDequeue removes and returns the head element; ok is false if the
// queue was empty.
func (q *MPMC[T]) TryDequeue() (v T, ok bool) {
	var b contend.Backoff
	misses := 0
	pos := q.dequeue.Load()
	for {
		slot := &q.buf[pos&q.mask]
		seq := slot.sequence.Load()
		switch {
		case seq == pos+1:
			// Slot published for this lap: claim it.
			if q.dequeue.CompareAndSwap(pos, pos+1) {
				v = slot.value
				var zero T
				slot.value = zero // release reference for the GC
				// Free the slot for the producers' next lap.
				slot.sequence.Store(pos + q.mask + 1)
				return v, true
			}
			// Lost the claim race: one reload, paced after repeat misses
			// (see TryEnqueue for why the reload itself is unavoidable).
			q.stats.deqMisses.Add(1)
			misses++
			if misses > 1 {
				q.stats.backoffs.Add(1)
				b.Pause()
			}
			pos = q.dequeue.Load()
		case seq < pos+1:
			// Slot not yet published for this lap. That proves the queue
			// empty only if no enqueuer has claimed a ticket beyond our
			// view — a producer that claimed this very slot and stalled
			// before its sequence store would otherwise make us report
			// empty while its completed successors sit in later slots.
			if q.enqueue.Load() == pos {
				return v, false // empty linearizes at the enqueue-cursor load
			}
			pos = q.dequeue.Load()
			q.stats.backoffs.Add(1)
			b.Pause()
		default:
			// Another consumer advanced the cursor past our stale view.
			pos = q.dequeue.Load()
		}
	}
}

// Cap reports the fixed capacity.
func (q *MPMC[T]) Cap() int { return len(q.buf) }

// Len reports the difference of the cursors: the number of claimed-and-not-
// yet-consumed slots. Exact in quiescent states.
func (q *MPMC[T]) Len() int {
	// Order matters: loading dequeue first can otherwise yield negative
	// values when producers race ahead between the two loads.
	deq := q.dequeue.Load()
	enq := q.enqueue.Load()
	// The unsigned difference is correct even when the cursors straddle a
	// uint64 wraparound (a direct enq < deq comparison is not); a racing
	// dequeuer that got ahead between the two loads shows up as a huge
	// difference that is negative in two's complement.
	d := int64(enq - deq)
	if d < 0 {
		return 0
	}
	if d > int64(len(q.buf)) {
		return len(q.buf)
	}
	return int(d)
}

// String describes the queue state for debugging.
func (q *MPMC[T]) String() string {
	return fmt.Sprintf("MPMC(cap=%d len=%d)", q.Cap(), q.Len())
}
