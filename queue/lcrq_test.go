package queue

import (
	"sync"
	"testing"

	"github.com/cds-suite/cds/reclaim"
)

// segOpts prepends a small segment size so the stress runs churn through
// hundreds of segments instead of staying inside the seed.
func segOpts(opts []Option) []Option {
	return append([]Option{WithSegmentSize(4)}, opts...)
}

func TestLCRQPlain(t *testing.T) {
	q := NewLCRQ[int](WithSegmentSize(4))
	for i := 0; i < 100; i++ {
		q.Enqueue(i)
	}
	if got := q.Len(); got != 100 {
		t.Fatalf("Len = %d, want 100", got)
	}
	for i := 0; i < 100; i++ {
		v, ok := q.TryDequeue()
		if !ok || v != i {
			t.Fatalf("TryDequeue = %d,%v, want %d,true", v, ok, i)
		}
	}
	if _, ok := q.TryDequeue(); ok {
		t.Fatal("expected empty")
	}
	if !q.Empty() {
		t.Fatal("Empty() = false after drain")
	}
	s := q.Stats()
	if s.SegsAllocated < 100/4 {
		t.Fatalf("SegsAllocated = %d, want >= 25 with 4-slot segments", s.SegsAllocated)
	}
	if s.SegsLive < 1 {
		t.Fatalf("SegsLive = %d, want >= 1 (the head)", s.SegsLive)
	}
}

func TestLCRQReclaimVariants(t *testing.T) {
	for name, mkOpts := range reclaimVariants() {
		t.Run(name, func(t *testing.T) {
			opts := segOpts(mkOpts())
			stressQueue(t, NewLCRQ[int](opts...), domainOf(opts))
		})
	}
}

// TestMPSCReclaimVariants is the single-consumer analogue of stressQueue:
// producers enqueue disjoint ranges while one consumer drains, and every
// value must come out exactly once.
func TestMPSCReclaimVariants(t *testing.T) {
	for name, mkOpts := range reclaimVariants() {
		t.Run(name, func(t *testing.T) {
			opts := segOpts(mkOpts())
			dom := domainOf(opts)
			q := NewMPSC[int](opts...)
			const producers, ops = 4, 5000
			var wg sync.WaitGroup
			for w := 0; w < producers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < ops; i++ {
						q.Enqueue(w*ops + i)
					}
				}(w)
			}
			produced := make(chan struct{})
			go func() { wg.Wait(); close(produced) }()
			seen := make(map[int]bool, producers*ops)
			done := false
			for !done {
				v, ok := q.TryDequeue()
				if !ok {
					select {
					case <-produced:
						// One last sweep after all producers finished.
						for {
							v, ok := q.TryDequeue()
							if !ok {
								break
							}
							if seen[v] {
								t.Fatalf("value %d delivered twice", v)
							}
							seen[v] = true
						}
						done = true
					default:
					}
					continue
				}
				if seen[v] {
					t.Fatalf("value %d delivered twice", v)
				}
				seen[v] = true
			}
			if len(seen) != producers*ops {
				t.Fatalf("conservation broken: %d values out, want %d", len(seen), producers*ops)
			}
			if q.Len() != 0 {
				t.Fatalf("Len = %d after drain, want 0", q.Len())
			}
			if dom.Reclaimed() == 0 {
				t.Fatal("domain reclaimed nothing — segment retire path inert")
			}
		})
	}
}

// TestLCRQTantrumClose forces the closed-bit path deterministically: with
// the first half of a 16-slot segment pre-abandoned (simulating
// overtaking dequeuers), a single enqueuer must burn through
// tantrumBudget failed publications, seal the segment, and land its value
// in a fresh one.
func TestLCRQTantrumClose(t *testing.T) {
	q := NewLCRQ[int](WithSegmentSize(16))
	seed := q.tail.Load()
	for i := 0; i < tantrumBudget; i++ {
		if !seed.slots[i].state.CompareAndSwap(slotEmpty, slotAbandoned) {
			t.Fatalf("slot %d not empty in fresh segment", i)
		}
	}
	q.Enqueue(42)
	if !segIsClosed(seed.enq.Load()) {
		t.Fatal("segment not sealed after tantrumBudget failed publications")
	}
	s := q.Stats()
	if s.SegsClosed != 1 {
		t.Fatalf("SegsClosed = %d, want 1", s.SegsClosed)
	}
	if s.EnqSlowpath < int64(tantrumBudget) {
		t.Fatalf("EnqSlowpath = %d, want >= %d", s.EnqSlowpath, tantrumBudget)
	}
	if s.SegsAllocated != 2 {
		t.Fatalf("SegsAllocated = %d, want 2 (seed + appended)", s.SegsAllocated)
	}
	v, ok := q.TryDequeue()
	if !ok || v != 42 {
		t.Fatalf("TryDequeue = %d,%v, want 42,true", v, ok)
	}
	if _, ok := q.TryDequeue(); ok {
		t.Fatal("expected empty after the sealed segment drained")
	}
}

// TestLCRQRecyclingReuses pins the allocation win at segment granularity.
func TestLCRQRecyclingReuses(t *testing.T) {
	d := reclaim.NewEBR()
	d.SetAdvanceInterval(1)
	q := NewLCRQ[int](WithReclaim(d), WithRecycling(), WithSegmentSize(4))
	for i := 0; i < 5000; i++ {
		q.Enqueue(i)
		q.TryDequeue()
	}
	if q.segs.Reused() == 0 {
		t.Fatal("recycler never reused a segment across 5000 enq/deq cycles")
	}
}

// drainReclaim pushes a deferred domain to quiescence: parked guards are
// released (their buffered retirements become domain orphans) and the
// backend's own drain hook runs until nothing is pending. Bounded so a
// leak fails the test instead of hanging it.
func drainReclaim(t *testing.T, p *reclaim.Pool, dom reclaim.Domain) {
	t.Helper()
	p.Drain()
	for i := 0; i < 100; i++ {
		if dom.Pending() == 0 {
			return
		}
		switch d := dom.(type) {
		case *reclaim.EBR:
			d.Collector().TryAdvance() // ages orphan bags out, then frees them
		case *reclaim.HP:
			d.HazardDomain().Drain() // scans the ownerless retire list
		default:
			t.Fatalf("no drain hook for domain %q", dom.Name())
		}
	}
	t.Fatalf("domain did not drain: %d objects still pending at quiescence", dom.Pending())
}

// TestLCRQStatsConservation checks the S18 gauge identity the CI smoke
// validation asserts — allocated == recycled + live + retired-pending —
// and that pending garbage drains to 0 at quiescence (no leaked
// segments).
func TestLCRQStatsConservation(t *testing.T) {
	for name, mkOpts := range reclaimVariants() {
		t.Run(name, func(t *testing.T) {
			opts := segOpts(mkOpts())
			dom := domainOf(opts)
			q := NewLCRQ[int](opts...)
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 4000; i++ {
						q.Enqueue(w*4000 + i)
						q.TryDequeue()
					}
				}(w)
			}
			wg.Wait()
			for {
				if _, ok := q.TryDequeue(); !ok {
					break
				}
			}
			drainReclaim(t, q.mem, dom)
			s := q.Stats()
			if s.SegsAllocated != s.SegsRecycled+s.SegsLive+s.SegsRetiredPending {
				t.Fatalf("segment conservation broken: %+v", s)
			}
			if s.SegsRetiredPending != 0 {
				t.Fatalf("SegsRetiredPending = %d at quiescence, want 0", s.SegsRetiredPending)
			}
			if s.SegsLive < 1 {
				t.Fatalf("SegsLive = %d, want >= 1", s.SegsLive)
			}
			if s.EnqSlowpath < 0 || s.DeqAbandoned < 0 {
				t.Fatalf("negative op gauges: %+v", s)
			}
		})
	}
}

// TestLCRQStalledConsumerPendingBounded pins the hazard-pointer promise at
// segment granularity: a consumer stalled mid-operation (guard held, head
// segment published in its hazard slot) must not stop the rest of the
// retired segments from being freed — pending garbage stays bounded by
// the one protected segment plus the scan threshold while the queue
// churns hundreds of segments past it.
func TestLCRQStalledConsumerPendingBounded(t *testing.T) {
	d := reclaim.NewHP()
	d.SetScanThreshold(1)
	q := NewLCRQ[int](WithReclaim(d), WithRecycling(), WithSegmentSize(4))

	// The stalled consumer: protect the current head and go quiet.
	g := q.mem.Get()
	g.Enter()
	stalled := reclaim.Load(g, 0, &q.head)
	_ = stalled

	const churn = 2000 // ~500 retired segments at 4 slots each
	for i := 0; i < churn; i++ {
		q.Enqueue(i)
		v, ok := q.TryDequeue()
		if !ok || v != i {
			t.Fatalf("churn broken at %d: got %d,%v", i, v, ok)
		}
	}
	if p := d.Pending(); p > 8 {
		t.Fatalf("pending garbage not bounded under a stalled consumer: %d segments", p)
	}

	// The consumer wakes; everything must now drain to zero.
	g.Exit()
	q.mem.Put(g)
	drainReclaim(t, q.mem, d)
	if s := q.Stats(); s.SegsRetiredPending != 0 {
		t.Fatalf("SegsRetiredPending = %d after stall released, want 0", s.SegsRetiredPending)
	}
}
