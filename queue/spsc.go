package queue

import (
	"sync/atomic"

	"github.com/cds-suite/cds/internal/pad"
	"github.com/cds-suite/cds/internal/pow2"
)

// SPSC is a single-producer/single-consumer bounded ring buffer: the
// wait-free fast path of the queue family. With exactly one goroutine on
// each end, head and tail are each written by only one party, so the only
// synchronization is a pair of acquire/release cursor publications — no CAS
// anywhere. Producers and consumers cache the remote cursor and refresh it
// only when the cached value suggests full/empty, which removes almost all
// coherence traffic in steady state (the "cached cursor" refinement of the
// Lamport ring).
//
// Exactly one goroutine may call TryEnqueue and one TryDequeue at a time;
// violating this is a correctness bug (use MPMC instead).
//
// Progress: wait-free for both parties.
type SPSC[T any] struct {
	buf  []T
	mask uint64
	_    pad.CacheLinePad

	head       atomic.Uint64 // next slot to consume; written by consumer
	cachedTail uint64        // consumer's snapshot of tail
	_          pad.CacheLinePad

	tail       atomic.Uint64 // next slot to fill; written by producer
	cachedHead uint64        // producer's snapshot of head
	_          pad.CacheLinePad
}

// NewSPSC returns an empty SPSC ring with the given capacity, rounded up
// to a power of two (minimum 2).
func NewSPSC[T any](capacity int) *SPSC[T] {
	n := pow2.RoundUp(capacity, 2)
	return &SPSC[T]{
		buf:  make([]T, n),
		mask: uint64(n - 1),
	}
}

// TryEnqueue adds v at the tail; it reports false if the ring was full.
// Producer-side only.
func (q *SPSC[T]) TryEnqueue(v T) bool {
	tail := q.tail.Load() // own cursor: plain read would do, Load keeps vet happy
	if tail-q.cachedHead > q.mask {
		q.cachedHead = q.head.Load()
		if tail-q.cachedHead > q.mask {
			return false
		}
	}
	q.buf[tail&q.mask] = v
	q.tail.Store(tail + 1) // publish
	return true
}

// TryDequeue removes and returns the head element; ok is false if the ring
// was empty. Consumer-side only.
func (q *SPSC[T]) TryDequeue() (v T, ok bool) {
	head := q.head.Load()
	if head == q.cachedTail {
		q.cachedTail = q.tail.Load()
		if head == q.cachedTail {
			return v, false
		}
	}
	v = q.buf[head&q.mask]
	var zero T
	q.buf[head&q.mask] = zero // release reference for the GC
	q.head.Store(head + 1)
	return v, true
}

// Cap reports the fixed capacity.
func (q *SPSC[T]) Cap() int { return len(q.buf) }

// Len reports tail−head. Exact in quiescent states.
func (q *SPSC[T]) Len() int {
	head := q.head.Load()
	tail := q.tail.Load()
	if tail < head {
		return 0
	}
	n := int(tail - head)
	if n > len(q.buf) {
		n = len(q.buf)
	}
	return n
}
