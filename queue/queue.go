package queue

import (
	"sync"

	cds "github.com/cds-suite/cds"
)

// Compile-time interface compliance checks.
var (
	_ cds.Queue[int]        = (*Mutex[int])(nil)
	_ cds.Queue[int]        = (*TwoLock[int])(nil)
	_ cds.Queue[int]        = (*MS[int])(nil)
	_ cds.Queue[int]        = (*Elimination[int])(nil)
	_ cds.Queue[int]        = (*LCRQ[int])(nil)
	_ cds.Queue[int]        = (*MPSC[int])(nil)
	_ cds.BoundedQueue[int] = (*MPMC[int])(nil)
	_ cds.BoundedQueue[int] = (*SPSC[int])(nil)
)

// Mutex is the coarse-locked baseline queue: a growable ring buffer guarded
// by one sync.Mutex. Enqueuers and dequeuers serialise on the same lock.
//
// The zero value is an empty queue. Progress: blocking.
type Mutex[T any] struct {
	mu    sync.Mutex
	buf   []T
	head  int
	count int
}

// NewMutex returns an empty coarse-locked queue.
func NewMutex[T any]() *Mutex[T] {
	return &Mutex[T]{}
}

// Enqueue adds v at the tail.
func (q *Mutex[T]) Enqueue(v T) {
	q.mu.Lock()
	if q.count == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.count)%len(q.buf)] = v
	q.count++
	q.mu.Unlock()
}

// TryDequeue removes and returns the head element; ok is false if the queue
// was empty.
func (q *Mutex[T]) TryDequeue() (v T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.count == 0 {
		return v, false
	}
	v = q.buf[q.head]
	var zero T
	q.buf[q.head] = zero // release reference for the GC
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	return v, true
}

// Len reports the number of elements.
func (q *Mutex[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.count
}

// grow doubles the ring capacity. Caller holds q.mu.
func (q *Mutex[T]) grow() {
	newCap := 2 * len(q.buf)
	if newCap == 0 {
		newCap = 8
	}
	buf := make([]T, newCap)
	for i := 0; i < q.count; i++ {
		buf[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = buf
	q.head = 0
}
