package queue

import "github.com/cds-suite/cds/reclaim"

// Option configures a queue constructor.
type Option func(*options)

type options struct {
	dom     reclaim.Domain
	recycle bool
	segSize int
}

// WithReclaim attaches a safe-memory-reclamation domain (reclaim.NewEBR,
// reclaim.NewHP) to the queue: dequeued dummy nodes are retired through it
// instead of being left to the garbage collector, and operations protect
// the head/tail/next window per the domain's protocol (Michael's
// two-hazard scheme under HP). The default is the zero-cost GC path.
func WithReclaim(d reclaim.Domain) Option {
	return func(o *options) { o.dom = d }
}

// WithRecycling additionally pools retired nodes for reuse, so enqueues on
// the hot path reallocate from the pool instead of the heap. Requires a
// deferring WithReclaim domain (EBR or HP) and is ignored otherwise.
func WithRecycling() Option {
	return func(o *options) { o.recycle = true }
}

// WithSegmentSize sets the slots per ring segment for the segmented
// queues (LCRQ, MPSC); other variants ignore it. Rounded up to a power of
// two, minimum 2, default 256. Larger segments amortise the append slow
// path further but hold more memory per live segment; the A5 ablation
// sweeps the trade-off.
func WithSegmentSize(n int) Option {
	return func(o *options) { o.segSize = n }
}

func buildOptions(opts []Option) options {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	if o.dom != nil && !o.dom.Deferred() {
		o.dom = nil // explicit GC domain: same as the default fast path
	}
	if o.dom == nil {
		o.recycle = false
	}
	return o
}
