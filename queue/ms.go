package queue

import (
	"sync/atomic"

	"github.com/cds-suite/cds/contend"
)

// MS is the Michael & Scott lock-free queue (PODC 1996), the algorithm
// behind java.util.concurrent's ConcurrentLinkedQueue: a linked list with a
// dummy node where enqueue CASes the tail node's next pointer and then
// swings the tail, and dequeue CASes the head forward. The tail is allowed
// to lag by one node; every operation helps complete a stalled enqueue it
// observes (the "helping" technique that makes the algorithm lock-free
// rather than merely non-blocking in the common case).
//
// Linearization points: Enqueue at its successful next-pointer CAS;
// TryDequeue at its successful head CAS; empty TryDequeue at the load of
// head.next == nil while head == tail.
//
// ABA safety: nodes are never recycled (see Treiber stack note); the GC
// guarantees a pointer compares equal only to the same allocation.
//
// The zero value is NOT usable; construct with NewMS. Progress: lock-free.
type MS[T any] struct {
	head atomic.Pointer[msNode[T]]
	tail atomic.Pointer[msNode[T]]
}

type msNode[T any] struct {
	value T
	next  atomic.Pointer[msNode[T]]
}

// NewMS returns an empty Michael–Scott queue.
func NewMS[T any]() *MS[T] {
	q := &MS[T]{}
	dummy := &msNode[T]{}
	q.head.Store(dummy)
	q.tail.Store(dummy)
	return q
}

// Enqueue adds v at the tail.
func (q *MS[T]) Enqueue(v T) {
	n := &msNode[T]{value: v}
	var b contend.Backoff
	for {
		tail := q.tail.Load()
		next := tail.next.Load()
		if tail != q.tail.Load() {
			continue // tail moved under us; re-read
		}
		if next != nil {
			// Tail is lagging: help swing it, then retry.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if tail.next.CompareAndSwap(nil, n) {
			// Linearized. Swinging the tail may fail if someone helped.
			q.tail.CompareAndSwap(tail, n)
			return
		}
		b.Pause()
	}
}

// TryDequeue removes and returns the head element; ok is false if the queue
// was observed empty.
func (q *MS[T]) TryDequeue() (v T, ok bool) {
	var b contend.Backoff
	for {
		head := q.head.Load()
		tail := q.tail.Load()
		next := head.next.Load()
		if head != q.head.Load() {
			continue
		}
		if head == tail {
			if next == nil {
				return v, false // empty
			}
			// Tail lagging behind a completed enqueue: help it.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		// Read the value before the CAS; if the CAS fails the value is
		// simply discarded. Values are written once, before publication,
		// so this read can never be torn.
		val := next.value
		if q.head.CompareAndSwap(head, next) {
			return val, true
		}
		b.Pause()
	}
}

// Len counts elements by traversing from the head. The count is exact only
// in quiescent states; under concurrency it is best-effort.
func (q *MS[T]) Len() int {
	n := 0
	for node := q.head.Load().next.Load(); node != nil; node = node.next.Load() {
		n++
	}
	return n
}
