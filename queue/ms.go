package queue

import (
	"sync/atomic"

	"github.com/cds-suite/cds/contend"
	"github.com/cds-suite/cds/reclaim"
)

// MS is the Michael & Scott lock-free queue (PODC 1996), the algorithm
// behind java.util.concurrent's ConcurrentLinkedQueue: a linked list with a
// dummy node where enqueue CASes the tail node's next pointer and then
// swings the tail, and dequeue CASes the head forward. The tail is allowed
// to lag by one node; every operation helps complete a stalled enqueue it
// observes (the "helping" technique that makes the algorithm lock-free
// rather than merely non-blocking in the common case).
//
// Linearization points: Enqueue at its successful next-pointer CAS;
// TryDequeue at its successful head CAS; empty TryDequeue at the load of
// head.next == nil while head == tail.
//
// ABA safety: by default nodes are never recycled (see Treiber stack note);
// the GC guarantees a pointer compares equal only to the same allocation.
// Constructed WithReclaim, retired dummies go through the domain instead,
// following Michael's published hazard discipline under HP: the head (or
// tail) is published in slot 0 and revalidated, and a dequeue publishes
// next in slot 1 then re-checks that head is still the head — next can
// only be retired after it has itself become the head and been dequeued,
// so an unchanged head proves the publication was in time. That ordering
// is what makes WithRecycling's node reuse sound.
//
// The zero value is NOT usable; construct with NewMS. Progress: lock-free.
type MS[T any] struct {
	head  atomic.Pointer[msNode[T]]
	tail  atomic.Pointer[msNode[T]]
	mem   *reclaim.Pool
	nodes *reclaim.Recycler[msNode[T]]
	size  atomic.Int64 // maintained only when recycling (Len cannot traverse reused nodes)
}

type msNode[T any] struct {
	value T
	next  atomic.Pointer[msNode[T]]
}

// NewMS returns an empty Michael–Scott queue. See WithReclaim and
// WithRecycling for the memory-reclamation options.
func NewMS[T any](opts ...Option) *MS[T] {
	q := &MS[T]{}
	q.initReclaim(buildOptions(opts))
	dummy := &msNode[T]{}
	q.head.Store(dummy)
	q.tail.Store(dummy)
	return q
}

func (q *MS[T]) initReclaim(o options) {
	if o.dom == nil {
		return
	}
	q.mem = reclaim.NewPool(o.dom, 2)
	if o.recycle {
		q.nodes = reclaim.NewRecycler(func(n *msNode[T]) {
			var zero T
			n.value = zero
			n.next.Store(nil)
		})
	}
}

// Enqueue adds v at the tail.
func (q *MS[T]) Enqueue(v T) {
	n := q.nodes.Get()
	n.value = v
	if q.mem == nil {
		q.enqueueFast(n)
		return
	}
	g := q.mem.Get()
	g.Enter()
	q.enqueue(g, n)
	g.Exit()
	q.mem.Put(g)
}

func (q *MS[T]) enqueueFast(n *msNode[T]) {
	var b contend.Backoff
	for {
		tail := q.tail.Load()
		next := tail.next.Load()
		if tail != q.tail.Load() {
			continue // tail moved under us; re-read
		}
		if next != nil {
			// Tail is lagging: help swing it, then retry.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if tail.next.CompareAndSwap(nil, n) {
			// Linearized. Swinging the tail may fail if someone helped.
			q.tail.CompareAndSwap(tail, n)
			return
		}
		b.Pause()
	}
}

// enqueue is the guarded enqueue: the tail is load-protected in slot 0
// before its next pointer is touched. The caller holds g's section.
func (q *MS[T]) enqueue(g reclaim.Guard, n *msNode[T]) {
	var b contend.Backoff
	for {
		tail := reclaim.Load(g, 0, &q.tail)
		next := tail.next.Load()
		if tail != q.tail.Load() {
			continue
		}
		if next != nil {
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if tail.next.CompareAndSwap(nil, n) {
			q.tail.CompareAndSwap(tail, n)
			if q.nodes != nil {
				q.size.Add(1)
			}
			return
		}
		b.Pause()
	}
}

// TryDequeue removes and returns the head element; ok is false if the queue
// was observed empty.
func (q *MS[T]) TryDequeue() (v T, ok bool) {
	if q.mem == nil {
		return q.tryDequeueFast()
	}
	g := q.mem.Get()
	g.Enter()
	v, ok = q.tryDequeue(g)
	g.Exit()
	q.mem.Put(g)
	return v, ok
}

func (q *MS[T]) tryDequeueFast() (v T, ok bool) {
	var b contend.Backoff
	for {
		head := q.head.Load()
		tail := q.tail.Load()
		next := head.next.Load()
		if head != q.head.Load() {
			continue
		}
		if head == tail {
			if next == nil {
				return v, false // empty
			}
			// Tail lagging behind a completed enqueue: help it.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		// Read the value before the CAS; if the CAS fails the value is
		// simply discarded. Values are written once, before publication,
		// so this read can never be torn.
		val := next.value
		if q.head.CompareAndSwap(head, next) {
			return val, true
		}
		b.Pause()
	}
}

// tryDequeue is the guarded dequeue: head in slot 0, next in slot 1, with
// the head re-check that orders the slot-1 publication before any possible
// retirement of next. The caller holds g's section.
func (q *MS[T]) tryDequeue(g reclaim.Guard) (v T, ok bool) {
	var b contend.Backoff
	for {
		head := reclaim.Load(g, 0, &q.head)
		tail := q.tail.Load()
		next := head.next.Load()
		if g.Protects() {
			g.Protect(1, next)
			// next is retired only after the head has moved past it; an
			// unchanged head therefore proves our publication preceded
			// any retirement, so the retirer's scan will see slot 1.
			if q.head.Load() != head {
				continue
			}
		} else if head != q.head.Load() {
			continue
		}
		if head == tail {
			if next == nil {
				return v, false // empty
			}
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		val := next.value
		if q.head.CompareAndSwap(head, next) {
			if q.nodes != nil {
				q.size.Add(-1)
			}
			// The old dummy is unreachable from the queue; retire it.
			reclaim.Retire(g, q.nodes, head)
			return val, true
		}
		b.Pause()
	}
}

// Len counts elements by traversing from the head. The count is exact only
// in quiescent states; under concurrency it is best-effort. With node
// recycling enabled it is served from a counter instead: a traversal
// could follow a reused node into the wrong incarnation.
func (q *MS[T]) Len() int {
	if q.nodes != nil {
		return int(q.size.Load())
	}
	n := 0
	for node := q.head.Load().next.Load(); node != nil; node = node.next.Load() {
		n++
	}
	return n
}

// Empty reports whether the queue was observed empty: an O(1) peek at
// the dummy head's successor, where Len would traverse every node.
// Pollers (the pool's pre-park re-check) use it as a cheap non-emptiness
// probe; like Len it is exact only in quiescent states.
func (q *MS[T]) Empty() bool {
	return q.head.Load().next.Load() == nil
}
