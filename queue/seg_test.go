package queue

import (
	"math/rand"
	"testing"
)

// TestSegCursorEncoding pins the closed-bit encoding properties the
// segmented queues rely on: round-trip (closing never perturbs the claim
// count), idempotence, and detection.
func TestSegCursorEncoding(t *testing.T) {
	cases := []uint64{
		0, 1, 2, 255, 256, 1 << 20,
		(1 << 62) - 1, 1 << 62, (1 << 63) - 1, // full 63-bit cursor range
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10_000; i++ {
		cases = append(cases, rng.Uint64()&^segClosedBit)
	}
	for _, c := range cases {
		if segIsClosed(c) {
			t.Fatalf("open cursor %#x reads as closed", c)
		}
		closed := segClose(c)
		if !segIsClosed(closed) {
			t.Fatalf("segClose(%#x) not detected as closed", c)
		}
		if got := segCursor(closed); got != c {
			t.Fatalf("cursor does not round-trip through close: %#x -> %#x", c, got)
		}
		if again := segClose(closed); again != closed {
			t.Fatalf("segClose not idempotent at %#x", c)
		}
	}
}

// TestSegCursorMonotoneAcrossIncrements checks that fetch-and-add
// increments on a sealed cursor keep the closed bit and keep the claim
// count monotone right up to the top of the 63-bit range — the property
// that makes "FAA on a closed segment always fails the claim" sound no
// matter how many enqueuers pile on after the seal.
func TestSegCursorMonotoneAcrossIncrements(t *testing.T) {
	starts := []uint64{0, 1, 255, (1 << 63) - 1<<12} // incl. near the bit boundary
	for _, start := range starts {
		c := segClose(start)
		prev := segCursor(c)
		for i := 0; i < 1<<12-1; i++ {
			c++ // what a racing enq.Add(1) does to the sealed word
			if !segIsClosed(c) {
				t.Fatalf("closed bit lost after %d increments from %#x", i+1, start)
			}
			cur := segCursor(c)
			if cur != prev+1 {
				t.Fatalf("cursor not monotone: %#x then %#x", prev, cur)
			}
			prev = cur
		}
	}
}

// TestSegmentSizeRounding pins the constructor's capacity discipline.
func TestSegmentSizeRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, defaultSegSize}, {-3, defaultSegSize},
		{1, 2}, {2, 2}, {3, 4}, {64, 64}, {65, 128}, {1000, 1024},
	} {
		q := NewLCRQ[int](WithSegmentSize(tc.in))
		if got := q.SegmentSize(); got != tc.want {
			t.Fatalf("SegmentSize(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestMPMCLapSlotDiscipline drives the bounded ring's lap/slot sequence
// math across uint64 cursor wraparound: with both cursors fast-forwarded
// to just below 2^64 (a lap boundary, since capacity divides 2^64), the
// slot extraction pos&mask must stay in range, the per-slot sequence must
// advance by exactly one capacity per lap, and FIFO order must survive
// the wrap.
func TestMPMCLapSlotDiscipline(t *testing.T) {
	q := NewMPMC[int](4)
	n := uint64(q.Cap())
	start := -(2 * n) // two laps before the wrap; a multiple of n
	q.enqueue.Store(start)
	q.dequeue.Store(start)
	for i := range q.buf {
		q.buf[i].sequence.Store(start + uint64(i))
	}
	// Four laps of half-full operation straddle the wraparound.
	next := 0
	for lap := 0; lap < 4; lap++ {
		for i := 0; i < int(n)/2; i++ {
			if !q.TryEnqueue(lap*int(n) + i) {
				t.Fatalf("lap %d: TryEnqueue full at i=%d", lap, i)
			}
		}
		if got := q.Len(); got != int(n)/2 {
			t.Fatalf("lap %d: Len = %d, want %d", lap, got, n/2)
		}
		for i := 0; i < int(n)/2; i++ {
			v, ok := q.TryDequeue()
			if !ok {
				t.Fatalf("lap %d: TryDequeue empty at i=%d", lap, i)
			}
			if v != lap*int(n)+i {
				t.Fatalf("FIFO broken across wraparound: got %d, want %d", v, lap*int(n)+i)
			}
			next++
		}
	}
	if _, ok := q.TryDequeue(); ok {
		t.Fatal("queue should be empty after matched laps")
	}
	// Sequence words themselves must have marched exactly one capacity per
	// enqueue/dequeue cycle: 4 half-full laps push 8 pairs through a
	// 4-slot ring, so every slot cycled twice and carries start + i + 2n.
	for i := range q.buf {
		want := start + uint64(i) + 2*n
		if got := q.buf[i].sequence.Load(); got != want {
			t.Fatalf("slot %d sequence = %#x, want %#x", i, got, want)
		}
	}
}

// TestMPMCBackoffGauges pins the satellite fix observably: under a
// producer/consumer pile-up on a tiny ring the paced-retry counter must
// register (repeat CAS misses and waits on an in-flight peer's slot both
// take the backoff path), and the counters must stay non-negative.
func TestMPMCBackoffGauges(t *testing.T) {
	q := NewMPMC[int](2) // tiny ring maximises ticket collisions
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 20_000; i++ {
				if !q.TryEnqueue(i) {
					q.TryDequeue()
				}
			}
		}()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	s := q.Stats()
	if s.EnqCASMisses < 0 || s.DeqCASMisses < 0 || s.Backoffs < 0 {
		t.Fatalf("negative gauge: %+v", s)
	}
	if s.EnqCASMisses+s.DeqCASMisses+s.Backoffs == 0 {
		t.Skip("no contention observed (single-core scheduling); gauges untestable here")
	}
}
