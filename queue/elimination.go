package queue

import (
	"github.com/cds-suite/cds/contend"
	"github.com/cds-suite/cds/reclaim"
)

// elimEnqAttempts bounds how many direct CAS attempts an Elimination
// enqueue makes before offering its value to the handoff array. One failed
// attempt already signals tail contention; a couple more keep the fast
// path dominant when contention is transient.
const elimEnqAttempts = 3

// Elimination is a Michael–Scott queue with FIFO elimination in the style
// of Moir, Nussbaum, Shalev & Shavit (SPAA 2005): a contended enqueue
// publishes its value to a contend.HandoffArray, and a dequeue that finds
// the queue empty takes a pending offer directly — the pair cancels
// without either operation touching the queue's head or tail.
//
// Unlike a stack, a queue admits elimination only in the empty state: a
// dequeue must return the oldest element, so pairing it with a *newer*
// concurrent enqueue is legal only if nothing sits between them — i.e. the
// queue is empty at the moment the pair linearizes. The handoff's
// validation hook enforces exactly that: after claiming an offer, the
// dequeuer re-verifies that the head it observed empty is unchanged and
// still has no successor. With default GC reclamation nodes are never
// recycled, so an unchanged head pointer with a nil next proves the queue
// was continuously empty between the two observations; WithReclaim keeps
// the same proof intact because the head is guard-protected across the
// validation — a protected node cannot be retired, much less reused, so
// pointer identity still certifies continuity. A failed validation aborts
// the handoff and the enqueuer falls back to the queue.
//
// The elimination path shines on the symmetric high-contention mix where
// the queue hovers near empty — precisely where the plain MS queue's head
// and tail CASes collapse onto the same cache lines (scenario S-contend).
//
// The zero value is NOT usable; construct with NewElimination.
// Progress: lock-free (every path bounds its handoff visit and falls back
// to the MS CAS loops).
type Elimination[T any] struct {
	q   MS[T]
	arr *contend.HandoffArray[T]
}

// NewElimination returns an empty elimination-backed Michael–Scott queue
// with the given handoff-array width and per-offer spin budget. Values
// <= 0 select the contend defaults (width 8, 128 spins). WithReclaim and
// WithRecycling configure the backing queue's memory reclamation; values
// eliminated through the handoff array never materialise a node at all.
func NewElimination[T any](width, spins int, opts ...Option) *Elimination[T] {
	q := &Elimination[T]{arr: contend.NewHandoffArray[T](width, spins)}
	q.q.initReclaim(buildOptions(opts))
	dummy := &msNode[T]{}
	q.q.head.Store(dummy)
	q.q.tail.Store(dummy)
	return q
}

// Enqueue adds v at the tail, or hands it directly to a dequeuer that
// caught the queue empty.
func (q *Elimination[T]) Enqueue(v T) {
	if q.q.mem == nil {
		q.enqueueFast(v)
		return
	}
	n := q.q.nodes.Get()
	n.value = v
	g := q.q.mem.Get()
	for {
		g.Enter()
		if q.tryEnqueueAttempts(g, n) {
			g.Exit()
			q.q.mem.Put(g)
			return
		}
		g.Exit() // do not stay pinned across the handoff spin
		if q.arr.TryGive(v) {
			q.q.nodes.Put(n) // never published; straight back to the pool
			q.q.mem.Put(g)
			return
		}
	}
}

func (q *Elimination[T]) enqueueFast(v T) {
	n := &msNode[T]{value: v}
	for {
		// Bounded direct attempts on the queue (the MS protocol).
		for attempt := 0; attempt < elimEnqAttempts; attempt++ {
			tail := q.q.tail.Load()
			next := tail.next.Load()
			if tail != q.q.tail.Load() {
				continue // tail moved under us; re-read
			}
			if next != nil {
				// Tail is lagging: help swing it, then retry.
				q.q.tail.CompareAndSwap(tail, next)
				continue
			}
			if tail.next.CompareAndSwap(nil, n) {
				// Linearized. Swinging the tail may fail if someone helped.
				q.q.tail.CompareAndSwap(tail, n)
				return
			}
		}
		// Contention: back off into the handoff array. A successful give
		// means an empty-queue dequeuer consumed v; the pair is linearized
		// at its validation instant.
		if q.arr.TryGive(v) {
			return
		}
	}
}

// tryEnqueueAttempts makes the bounded guarded MS attempts, reporting
// whether n was linked. The caller holds g's section.
func (q *Elimination[T]) tryEnqueueAttempts(g reclaim.Guard, n *msNode[T]) bool {
	for attempt := 0; attempt < elimEnqAttempts; attempt++ {
		tail := reclaim.Load(g, 0, &q.q.tail)
		next := tail.next.Load()
		if tail != q.q.tail.Load() {
			continue
		}
		if next != nil {
			q.q.tail.CompareAndSwap(tail, next)
			continue
		}
		if tail.next.CompareAndSwap(nil, n) {
			q.q.tail.CompareAndSwap(tail, n)
			if q.q.nodes != nil {
				q.q.size.Add(1)
			}
			return true
		}
	}
	return false
}

// TryDequeue removes and returns the head element; ok is false if the
// queue was observed empty and no enqueue could be eliminated against.
func (q *Elimination[T]) TryDequeue() (v T, ok bool) {
	if q.q.mem == nil {
		return q.tryDequeueFast()
	}
	g := q.q.mem.Get()
	g.Enter()
	v, ok = q.tryDequeueGuarded(g)
	g.Exit()
	q.q.mem.Put(g)
	return v, ok
}

func (q *Elimination[T]) tryDequeueFast() (v T, ok bool) {
	var b contend.Backoff
	for {
		head := q.q.head.Load()
		tail := q.q.tail.Load()
		next := head.next.Load()
		if head != q.q.head.Load() {
			continue
		}
		if head == tail {
			if next == nil {
				// Empty. Take a pending enqueue if the queue provably stays
				// empty through the handoff: head pointers advance through
				// fresh nodes only, so head==head ∧ head.next==nil at
				// validation time rules out any interleaved enqueue.
				if v, ok = q.arr.TryTake(func() bool {
					return q.q.head.Load() == head && head.next.Load() == nil
				}); ok {
					return v, true
				}
				return v, false // linearized empty at the loads above
			}
			// Tail lagging behind a completed enqueue: help it.
			q.q.tail.CompareAndSwap(tail, next)
			continue
		}
		val := next.value
		if q.q.head.CompareAndSwap(head, next) {
			return val, true
		}
		// Non-empty contention: elimination cannot help a dequeue here
		// (pairing needs an empty queue), so back off as plain MS does.
		b.Pause()
	}
}

// tryDequeueGuarded mirrors tryDequeueFast under a guard: head in slot 0,
// next in slot 1 (Michael's discipline, see MS.tryDequeue), with the head
// kept protected across the handoff validation so its nil-next re-check
// never touches reused memory. The caller holds g's section.
func (q *Elimination[T]) tryDequeueGuarded(g reclaim.Guard) (v T, ok bool) {
	var b contend.Backoff
	for {
		head := reclaim.Load(g, 0, &q.q.head)
		tail := q.q.tail.Load()
		next := head.next.Load()
		if g.Protects() {
			g.Protect(1, next)
			if q.q.head.Load() != head {
				continue
			}
		} else if head != q.q.head.Load() {
			continue
		}
		if head == tail {
			if next == nil {
				if v, ok = q.arr.TryTake(func() bool {
					return q.q.head.Load() == head && head.next.Load() == nil
				}); ok {
					return v, true
				}
				return v, false
			}
			q.q.tail.CompareAndSwap(tail, next)
			continue
		}
		val := next.value
		if q.q.head.CompareAndSwap(head, next) {
			if q.q.nodes != nil {
				q.q.size.Add(-1)
			}
			reclaim.Retire(g, q.q.nodes, head)
			return val, true
		}
		b.Pause()
	}
}

// Len counts elements by traversing from the head (see MS.Len caveats);
// values in flight through the handoff array are not counted, matching
// their linearization (an eliminated pair never makes the queue non-empty).
func (q *Elimination[T]) Len() int {
	return q.q.Len()
}
