package queue

import (
	"github.com/cds-suite/cds/contend"
)

// elimEnqAttempts bounds how many direct CAS attempts an Elimination
// enqueue makes before offering its value to the handoff array. One failed
// attempt already signals tail contention; a couple more keep the fast
// path dominant when contention is transient.
const elimEnqAttempts = 3

// Elimination is a Michael–Scott queue with FIFO elimination in the style
// of Moir, Nussbaum, Shalev & Shavit (SPAA 2005): a contended enqueue
// publishes its value to a contend.HandoffArray, and a dequeue that finds
// the queue empty takes a pending offer directly — the pair cancels
// without either operation touching the queue's head or tail.
//
// Unlike a stack, a queue admits elimination only in the empty state: a
// dequeue must return the oldest element, so pairing it with a *newer*
// concurrent enqueue is legal only if nothing sits between them — i.e. the
// queue is empty at the moment the pair linearizes. The handoff's
// validation hook enforces exactly that: after claiming an offer, the
// dequeuer re-verifies that the head it observed empty is unchanged and
// still has no successor. Nodes are never recycled, so an unchanged head
// pointer with a nil next proves the queue was continuously empty between
// the two observations, making it legal to linearize the enqueue and the
// dequeue back-to-back at the validation instant. A failed validation
// aborts the handoff and the enqueuer falls back to the queue.
//
// The elimination path shines on the symmetric high-contention mix where
// the queue hovers near empty — precisely where the plain MS queue's head
// and tail CASes collapse onto the same cache lines (scenario S-contend).
//
// The zero value is NOT usable; construct with NewElimination.
// Progress: lock-free (every path bounds its handoff visit and falls back
// to the MS CAS loops).
type Elimination[T any] struct {
	q   MS[T]
	arr *contend.HandoffArray[T]
}

// NewElimination returns an empty elimination-backed Michael–Scott queue
// with the given handoff-array width and per-offer spin budget. Values
// <= 0 select the contend defaults (width 8, 128 spins).
func NewElimination[T any](width, spins int) *Elimination[T] {
	q := &Elimination[T]{arr: contend.NewHandoffArray[T](width, spins)}
	dummy := &msNode[T]{}
	q.q.head.Store(dummy)
	q.q.tail.Store(dummy)
	return q
}

// Enqueue adds v at the tail, or hands it directly to a dequeuer that
// caught the queue empty.
func (q *Elimination[T]) Enqueue(v T) {
	n := &msNode[T]{value: v}
	for {
		// Bounded direct attempts on the queue (the MS protocol).
		for attempt := 0; attempt < elimEnqAttempts; attempt++ {
			tail := q.q.tail.Load()
			next := tail.next.Load()
			if tail != q.q.tail.Load() {
				continue // tail moved under us; re-read
			}
			if next != nil {
				// Tail is lagging: help swing it, then retry.
				q.q.tail.CompareAndSwap(tail, next)
				continue
			}
			if tail.next.CompareAndSwap(nil, n) {
				// Linearized. Swinging the tail may fail if someone helped.
				q.q.tail.CompareAndSwap(tail, n)
				return
			}
		}
		// Contention: back off into the handoff array. A successful give
		// means an empty-queue dequeuer consumed v; the pair is linearized
		// at its validation instant.
		if q.arr.TryGive(v) {
			return
		}
	}
}

// TryDequeue removes and returns the head element; ok is false if the
// queue was observed empty and no enqueue could be eliminated against.
func (q *Elimination[T]) TryDequeue() (v T, ok bool) {
	var b contend.Backoff
	for {
		head := q.q.head.Load()
		tail := q.q.tail.Load()
		next := head.next.Load()
		if head != q.q.head.Load() {
			continue
		}
		if head == tail {
			if next == nil {
				// Empty. Take a pending enqueue if the queue provably stays
				// empty through the handoff: head pointers advance through
				// fresh nodes only, so head==head ∧ head.next==nil at
				// validation time rules out any interleaved enqueue.
				if v, ok = q.arr.TryTake(func() bool {
					return q.q.head.Load() == head && head.next.Load() == nil
				}); ok {
					return v, true
				}
				return v, false // linearized empty at the loads above
			}
			// Tail lagging behind a completed enqueue: help it.
			q.q.tail.CompareAndSwap(tail, next)
			continue
		}
		val := next.value
		if q.q.head.CompareAndSwap(head, next) {
			return val, true
		}
		// Non-empty contention: elimination cannot help a dequeue here
		// (pairing needs an empty queue), so back off as plain MS does.
		b.Pause()
	}
}

// Len counts elements by traversing from the head (see MS.Len caveats);
// values in flight through the handoff array are not counted, matching
// their linearization (an eliminated pair never makes the queue non-empty).
func (q *Elimination[T]) Len() int {
	return q.q.Len()
}
