package queue

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	cds "github.com/cds-suite/cds"
)

func unboundedImpls() map[string]func() cds.Queue[int] {
	return map[string]func() cds.Queue[int]{
		"Mutex":   func() cds.Queue[int] { return NewMutex[int]() },
		"TwoLock": func() cds.Queue[int] { return NewTwoLock[int]() },
		"MS":      func() cds.Queue[int] { return NewMS[int]() },
		"ElimMS":  func() cds.Queue[int] { return NewElimination[int](2, 16) },
	}
}

func TestSequentialFIFO(t *testing.T) {
	for name, mk := range unboundedImpls() {
		t.Run(name, func(t *testing.T) {
			q := mk()
			if _, ok := q.TryDequeue(); ok {
				t.Fatal("TryDequeue on empty queue reported ok")
			}
			for i := 0; i < 100; i++ {
				q.Enqueue(i)
			}
			if got := q.Len(); got != 100 {
				t.Fatalf("Len = %d, want 100", got)
			}
			for i := 0; i < 100; i++ {
				v, ok := q.TryDequeue()
				if !ok || v != i {
					t.Fatalf("TryDequeue = (%d, %v), want (%d, true)", v, ok, i)
				}
			}
			if _, ok := q.TryDequeue(); ok {
				t.Fatal("TryDequeue on drained queue reported ok")
			}
			if got := q.Len(); got != 0 {
				t.Fatalf("Len after drain = %d, want 0", got)
			}
		})
	}
}

func TestSequentialFIFOBounded(t *testing.T) {
	for name, q := range map[string]cds.BoundedQueue[int]{
		"MPMC": NewMPMC[int](16),
		"SPSC": NewSPSC[int](16),
	} {
		t.Run(name, func(t *testing.T) {
			if q.Cap() != 16 {
				t.Fatalf("Cap = %d, want 16", q.Cap())
			}
			if _, ok := q.TryDequeue(); ok {
				t.Fatal("TryDequeue on empty queue reported ok")
			}
			for i := 0; i < 16; i++ {
				if !q.TryEnqueue(i) {
					t.Fatalf("TryEnqueue(%d) failed below capacity", i)
				}
			}
			if q.TryEnqueue(99) {
				t.Fatal("TryEnqueue succeeded on full queue")
			}
			if got := q.Len(); got != 16 {
				t.Fatalf("Len = %d, want 16", got)
			}
			for i := 0; i < 16; i++ {
				v, ok := q.TryDequeue()
				if !ok || v != i {
					t.Fatalf("TryDequeue = (%d, %v), want (%d, true)", v, ok, i)
				}
			}
			if _, ok := q.TryDequeue(); ok {
				t.Fatal("TryDequeue on drained queue reported ok")
			}
		})
	}
}

func TestBoundedWraparound(t *testing.T) {
	// Many laps around a small ring exercise sequence-number reuse.
	for name, q := range map[string]cds.BoundedQueue[int]{
		"MPMC": NewMPMC[int](4),
		"SPSC": NewSPSC[int](4),
	} {
		t.Run(name, func(t *testing.T) {
			next := 0
			for lap := 0; lap < 1000; lap++ {
				for i := 0; i < 3; i++ {
					if !q.TryEnqueue(lap*3 + i) {
						t.Fatalf("lap %d: enqueue failed", lap)
					}
				}
				for i := 0; i < 3; i++ {
					v, ok := q.TryDequeue()
					if !ok || v != next {
						t.Fatalf("lap %d: dequeue = (%d, %v), want (%d, true)", lap, v, ok, next)
					}
					next++
				}
			}
		})
	}
}

func TestCapacityRounding(t *testing.T) {
	for give, want := range map[int]int{0: 2, 1: 2, 2: 2, 3: 4, 5: 8, 8: 8, 1000: 1024} {
		if got := NewMPMC[int](give).Cap(); got != want {
			t.Errorf("NewMPMC(%d).Cap() = %d, want %d", give, got, want)
		}
		if got := NewSPSC[int](give).Cap(); got != want {
			t.Errorf("NewSPSC(%d).Cap() = %d, want %d", give, got, want)
		}
	}
}

func TestPropertyMatchesModelQueue(t *testing.T) {
	for name, mk := range unboundedImpls() {
		t.Run(name, func(t *testing.T) {
			f := func(ops []int16) bool {
				q := mk()
				var model []int16
				for _, op := range ops {
					if op >= 0 {
						q.Enqueue(int(op))
						model = append(model, op)
					} else {
						v, ok := q.TryDequeue()
						if len(model) == 0 {
							if ok {
								return false
							}
							continue
						}
						want := model[0]
						model = model[1:]
						if !ok || v != int(want) {
							return false
						}
					}
				}
				return q.Len() == len(model)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConcurrentConservationQueue checks exactly-once delivery across
// concurrent producers and consumers for the MPMC-capable queues.
func TestConcurrentConservationQueue(t *testing.T) {
	type testCase struct {
		enqueue func(int)
		dequeue func() (int, bool)
	}
	producers := runtime.GOMAXPROCS(0)
	consumers := runtime.GOMAXPROCS(0)
	const perProducer = 20000
	total := producers * perProducer

	mpmc := NewMPMC[int](1024)
	cases := map[string]testCase{
		"Mutex": func() testCase {
			q := NewMutex[int]()
			return testCase{q.Enqueue, q.TryDequeue}
		}(),
		"TwoLock": func() testCase {
			q := NewTwoLock[int]()
			return testCase{q.Enqueue, q.TryDequeue}
		}(),
		"MS": func() testCase {
			q := NewMS[int]()
			return testCase{q.Enqueue, q.TryDequeue}
		}(),
		"MPMC": {
			enqueue: func(v int) {
				for !mpmc.TryEnqueue(v) {
					runtime.Gosched()
				}
			},
			dequeue: mpmc.TryDequeue,
		},
	}

	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					base := p * perProducer
					for i := 0; i < perProducer; i++ {
						tc.enqueue(base + i)
					}
				}(p)
			}

			var consumed atomic.Int64
			results := make(chan int, total)
			var cwg sync.WaitGroup
			for c := 0; c < consumers; c++ {
				cwg.Add(1)
				go func() {
					defer cwg.Done()
					for consumed.Load() < int64(total) {
						if v, ok := tc.dequeue(); ok {
							consumed.Add(1)
							results <- v
						}
					}
				}()
			}
			wg.Wait()
			cwg.Wait()
			close(results)

			seen := make([]bool, total)
			n := 0
			for v := range results {
				if v < 0 || v >= total {
					t.Fatalf("dequeued out-of-range value %d", v)
				}
				if seen[v] {
					t.Fatalf("value %d dequeued twice", v)
				}
				seen[v] = true
				n++
			}
			if n != total {
				t.Fatalf("dequeued %d values, want %d", n, total)
			}
		})
	}
}

// TestPerProducerOrder: FIFO queues must preserve each producer's program
// order even under MPMC concurrency.
func TestPerProducerOrder(t *testing.T) {
	producers := 4
	const perProducer = 30000
	mpmc := NewMPMC[int](512)

	cases := map[string]struct {
		enqueue func(int)
		dequeue func() (int, bool)
	}{
		"TwoLock": func() struct {
			enqueue func(int)
			dequeue func() (int, bool)
		} {
			q := NewTwoLock[int]()
			return struct {
				enqueue func(int)
				dequeue func() (int, bool)
			}{q.Enqueue, q.TryDequeue}
		}(),
		"MS": func() struct {
			enqueue func(int)
			dequeue func() (int, bool)
		} {
			q := NewMS[int]()
			return struct {
				enqueue func(int)
				dequeue func() (int, bool)
			}{q.Enqueue, q.TryDequeue}
		}(),
		"MPMC": {
			enqueue: func(v int) {
				for !mpmc.TryEnqueue(v) {
					runtime.Gosched()
				}
			},
			dequeue: mpmc.TryDequeue,
		},
	}

	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 0; i < perProducer; i++ {
						tc.enqueue(p*perProducer + i) // value encodes (producer, seq)
					}
				}(p)
			}

			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()

			lastSeq := make([]int, producers)
			for i := range lastSeq {
				lastSeq[i] = -1
			}
			got := 0
			for got < producers*perProducer {
				v, ok := tc.dequeue()
				if !ok {
					select {
					case <-done:
						// Producers finished; drain what remains.
						if v, ok = tc.dequeue(); !ok {
							t.Fatalf("queue empty after %d/%d values", got, producers*perProducer)
						}
					default:
						continue
					}
				}
				p, seq := v/perProducer, v%perProducer
				if seq <= lastSeq[p] {
					t.Fatalf("producer %d order violated: seq %d after %d", p, seq, lastSeq[p])
				}
				lastSeq[p] = seq
				got++
			}
		})
	}
}

// TestSPSCConcurrent runs the ring at full tilt with one producer and one
// consumer and verifies the exact sequence comes out.
func TestSPSCConcurrent(t *testing.T) {
	q := NewSPSC[int](64)
	const total = 1 << 20
	done := make(chan error, 1)
	go func() {
		for i := 0; i < total; i++ {
			for !q.TryEnqueue(i) {
				runtime.Gosched()
			}
		}
		done <- nil
	}()
	for i := 0; i < total; i++ {
		var v int
		var ok bool
		for {
			if v, ok = q.TryDequeue(); ok {
				break
			}
			runtime.Gosched()
		}
		if v != i {
			t.Fatalf("dequeued %d, want %d", v, i)
		}
	}
	<-done
	if _, ok := q.TryDequeue(); ok {
		t.Fatal("ring should be empty")
	}
}

func TestMPMCFullEmptyTransitions(t *testing.T) {
	q := NewMPMC[string](2)
	if !q.TryEnqueue("a") || !q.TryEnqueue("b") {
		t.Fatal("fill failed")
	}
	if q.TryEnqueue("c") {
		t.Fatal("enqueue on full succeeded")
	}
	if v, ok := q.TryDequeue(); !ok || v != "a" {
		t.Fatalf("got (%q, %v), want (a, true)", v, ok)
	}
	if !q.TryEnqueue("c") {
		t.Fatal("enqueue after dequeue failed")
	}
	for _, want := range []string{"b", "c"} {
		if v, ok := q.TryDequeue(); !ok || v != want {
			t.Fatalf("got (%q, %v), want (%q, true)", v, ok, want)
		}
	}
}

// TestMPMCNoFalseEmptyInPairs pins the empty-report linearizability fix:
// each worker runs strict enqueue-then-dequeue pairs, so at the instant
// of any TryDequeue the caller's own unmatched enqueue (at least) is in
// the queue and a false return is impossible. The pre-fix code could
// report empty here when a producer stalled between its cursor claim and
// its sequence store while completed enqueues sat in later slots — the
// interleaving the lincheck MPMC windows flagged.
func TestMPMCNoFalseEmptyInPairs(t *testing.T) {
	const workers, pairs = 8, 20000
	q := NewMPMC[int](1024) // capacity >> workers: never full
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < pairs; i++ {
				if !q.TryEnqueue(w) {
					t.Errorf("worker %d: enqueue %d reported full", w, i)
					return
				}
				if _, ok := q.TryDequeue(); !ok {
					t.Errorf("worker %d: dequeue %d reported empty with own enqueue unmatched", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestQueueLenUnderConcurrency(t *testing.T) {
	// Len must never go negative or exceed capacity for bounded queues.
	q := NewMPMC[int](64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				q.TryEnqueue(1)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				q.TryDequeue()
			}
		}
	}()
	for i := 0; i < 10000; i++ {
		if n := q.Len(); n < 0 || n > q.Cap() {
			t.Fatalf("Len = %d out of [0,%d]", n, q.Cap())
		}
	}
	close(stop)
	wg.Wait()
}

func TestMSEmpty(t *testing.T) {
	q := NewMS[int]()
	if !q.Empty() {
		t.Fatal("new queue not Empty")
	}
	q.Enqueue(1)
	if q.Empty() {
		t.Fatal("non-empty queue reported Empty")
	}
	q.TryDequeue()
	if !q.Empty() {
		t.Fatal("drained queue not Empty")
	}
}
