// Package queue implements the concurrent FIFO queue algorithms from the
// survey literature: a coarse-locked queue, the Michael–Scott two-lock
// queue, the Michael–Scott lock-free queue (PODC 1996), an
// elimination-backed variant of it (Moir, Nussbaum, Shalev & Shavit, SPAA
// 2005), a bounded array-based MPMC queue (Vyukov-style), a
// single-producer/single-consumer ring, and a segmented FAA-based queue
// (LCRQ, after Morrison & Afek, PPoPP 2013) with a single-consumer MPSC
// specialization.
//
// Queues are the survey's canonical illustration that a structure with two
// access points (head and tail) admits more parallelism than a stack: the
// two-lock queue lets one enqueuer and one dequeuer run concurrently, and
// the lock-free queue removes the locks entirely. The bounded ring trades
// unbounded growth for per-slot sequence numbers and the throughput of
// array locality. Experiment F4 regenerates the classic comparison.
//
// The segmented queues (LCRQ, MPSC) chase the next bottleneck: on MS every
// operation races one CAS on a shared word, so under contention most
// attempts fail and retry. LCRQ replaces that race with a fetch-and-add —
// every enqueuer is assigned a distinct slot ticket in the current
// fixed-size segment and publishes into its slot privately; dequeuers
// claim tickets the same way. FAA always succeeds, so the common case is
// one uncontended RMW plus one slot CAS regardless of how many threads
// pile on. CAS appears only on the rare paths: sealing a contended or full
// segment (the "tantrum" closed bit) and appending a fresh one. Segments
// retire through the reclamation layer at segment granularity — one
// retire per SegmentSize operations instead of one per node — and recycle
// through the same Recycler machinery as the node-based structures. The
// MPSC variant additionally exploits a single-consumer topology (e.g. an
// executor's injection lane) by replacing the dequeue-side FAA with a
// plain store. Experiment S18 and ablation A5 measure the family;
// LCRQ.Stats exposes the segment-lifecycle and fast-path/slow-path
// counters those benchmarks report as gauges.
//
// Progress guarantees: Mutex and TwoLock are blocking; MS and Elimination
// are lock-free (every failed CAS implies system-wide progress, with the
// helping rule completing stalled enqueues); SPSC is wait-free for its two
// designated threads; MPMC is bounded-nonblocking (a stalled producer can
// delay the consumer of its slot — and a stalled consumer the producer
// reusing its slot — but only that slot); LCRQ and MPSC are
// lock-free (a failed publication marks the slot or seals the segment, so
// some operation always completes). All operations are linearizable, with
// linearization points documented per type. The
// lock-free queues accept WithReclaim/WithRecycling (package reclaim) for
// explicit memory reclamation following Michael's two-hazard discipline.
//
// The blocking counterpart — a dequeue that waits on empty instead of
// failing — is the dual queue in package dual, which reuses this
// package's MPMC ring for its bounded variant.
package queue
