// Package queue implements the concurrent FIFO queue algorithms from the
// survey literature: a coarse-locked queue, the Michael–Scott two-lock
// queue, the Michael–Scott lock-free queue (PODC 1996), an
// elimination-backed variant of it (Moir, Nussbaum, Shalev & Shavit, SPAA
// 2005), a bounded array-based MPMC queue (Vyukov-style), and a
// single-producer/single-consumer ring.
//
// Queues are the survey's canonical illustration that a structure with two
// access points (head and tail) admits more parallelism than a stack: the
// two-lock queue lets one enqueuer and one dequeuer run concurrently, and
// the lock-free queue removes the locks entirely. The bounded ring trades
// unbounded growth for per-slot sequence numbers and the throughput of
// array locality. Experiment F4 regenerates the classic comparison.
//
// Progress guarantees: Mutex and TwoLock are blocking; MS and Elimination
// are lock-free (every failed CAS implies system-wide progress, with the
// helping rule completing stalled enqueues); SPSC is wait-free for its two
// designated threads; MPMC is bounded-nonblocking (a stalled producer can
// delay the consumer of its slot, and only that slot). All operations are
// linearizable, with linearization points documented per type. The
// lock-free queues accept WithReclaim/WithRecycling (package reclaim) for
// explicit memory reclamation following Michael's two-hazard discipline.
//
// The blocking counterpart — a dequeue that waits on empty instead of
// failing — is the dual queue in package dual, which reuses this
// package's MPMC ring for its bounded variant.
package queue
