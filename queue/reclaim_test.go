package queue

import (
	"sync"
	"testing"

	"github.com/cds-suite/cds/reclaim"
)

func reclaimVariants() map[string]func() []Option {
	return map[string]func() []Option{
		"EBR": func() []Option {
			d := reclaim.NewEBR()
			d.SetAdvanceInterval(4)
			return []Option{WithReclaim(d)}
		},
		"HP": func() []Option {
			d := reclaim.NewHP()
			d.SetScanThreshold(8)
			return []Option{WithReclaim(d)}
		},
		"EBR+recycle": func() []Option {
			d := reclaim.NewEBR()
			d.SetAdvanceInterval(4)
			return []Option{WithReclaim(d), WithRecycling()}
		},
		"HP+recycle": func() []Option {
			d := reclaim.NewHP()
			d.SetScanThreshold(8)
			return []Option{WithReclaim(d), WithRecycling()}
		},
	}
}

func domainOf(opts []Option) reclaim.Domain {
	return buildOptions(opts).dom
}

// stressQueue drives a symmetric enqueue/dequeue mix and then drains,
// verifying conservation: every enqueued value is dequeued exactly once.
func stressQueue(t *testing.T, q interface {
	Enqueue(int)
	TryDequeue() (int, bool)
	Len() int
}, dom reclaim.Domain) {
	t.Helper()
	const workers, ops = 4, 5000
	var wg sync.WaitGroup
	var got [workers][]int
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				q.Enqueue(w*ops + i)
				if v, ok := q.TryDequeue(); ok {
					got[w] = append(got[w], v)
				}
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[int]bool, workers*ops)
	total := 0
	record := func(v int) {
		if seen[v] {
			t.Fatalf("value %d delivered twice", v)
		}
		seen[v] = true
		total++
	}
	for w := range got {
		for _, v := range got[w] {
			record(v)
		}
	}
	for {
		v, ok := q.TryDequeue()
		if !ok {
			break
		}
		record(v)
	}
	if total != workers*ops {
		t.Fatalf("conservation broken: %d values out, want %d", total, workers*ops)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain, want 0", q.Len())
	}
	if dom.Reclaimed() == 0 {
		t.Fatal("domain reclaimed nothing — retire path inert")
	}
	if dom.Pending() < 0 {
		t.Fatalf("pending gauge negative: %d", dom.Pending())
	}
}

func TestMSReclaimVariants(t *testing.T) {
	for name, mkOpts := range reclaimVariants() {
		t.Run(name, func(t *testing.T) {
			opts := mkOpts()
			stressQueue(t, NewMS[int](opts...), domainOf(opts))
		})
	}
}

func TestEliminationReclaimVariants(t *testing.T) {
	for name, mkOpts := range reclaimVariants() {
		t.Run(name, func(t *testing.T) {
			opts := mkOpts()
			// Narrow handoff array and short spins so FIFO elimination
			// fires alongside the reclaim machinery.
			stressQueue(t, NewElimination[int](2, 16, opts...), domainOf(opts))
		})
	}
}

// TestMSRecyclingReuses pins the allocation win on the queue hot path.
func TestMSRecyclingReuses(t *testing.T) {
	d := reclaim.NewEBR()
	d.SetAdvanceInterval(1)
	q := NewMS[int](WithReclaim(d), WithRecycling())
	for i := 0; i < 5000; i++ {
		q.Enqueue(i)
		q.TryDequeue()
	}
	if q.nodes.Reused() == 0 {
		t.Fatal("recycler never reused a node across 5000 enq/deq cycles")
	}
}
