package queue

import (
	"sync"
	"sync/atomic"
)

// TwoLock is the Michael & Scott two-lock queue (PODC 1996): a linked list
// with a dummy head node, one lock for enqueuers and a separate lock for
// dequeuers. Because the dummy node keeps head and tail from ever aliasing
// a live node simultaneously, an enqueue and a dequeue can proceed fully in
// parallel; only operations on the same end serialise.
//
// Linearization points: Enqueue at the store linking the new node (under
// the tail lock); TryDequeue at the head advance (under the head lock);
// empty TryDequeue at its read of head.next.
//
// Progress: blocking (two independent locks).
type TwoLock[T any] struct {
	headMu sync.Mutex // protects head (dequeuers)
	tailMu sync.Mutex // protects tail (enqueuers)
	head   *tlNode[T] // dummy node; head.next is the real front
	tail   *tlNode[T]
}

type tlNode[T any] struct {
	value T
	next  atomic.Pointer[tlNode[T]]
}

// NewTwoLock returns an empty two-lock queue.
func NewTwoLock[T any]() *TwoLock[T] {
	dummy := &tlNode[T]{}
	return &TwoLock[T]{head: dummy, tail: dummy}
}

// Enqueue adds v at the tail.
func (q *TwoLock[T]) Enqueue(v T) {
	n := &tlNode[T]{value: v}
	q.tailMu.Lock()
	// The link store is atomic because a concurrent dequeuer reads
	// head.next under the *other* lock, and Len traverses locklessly.
	q.tail.next.Store(n)
	q.tail = n
	q.tailMu.Unlock()
}

// TryDequeue removes and returns the head element; ok is false if the queue
// was empty.
func (q *TwoLock[T]) TryDequeue() (v T, ok bool) {
	q.headMu.Lock()
	next := q.head.next.Load()
	if next == nil {
		q.headMu.Unlock()
		return v, false
	}
	v = next.value
	q.head = next
	q.headMu.Unlock()
	return v, true
}

// Len counts elements by traversing from head to tail. The count is exact
// only in quiescent states; under concurrency it is best-effort.
func (q *TwoLock[T]) Len() int {
	q.headMu.Lock()
	head := q.head
	q.headMu.Unlock()
	n := 0
	for node := head.next.Load(); node != nil; node = node.next.Load() {
		n++
	}
	return n
}
