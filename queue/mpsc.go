package queue

import (
	"github.com/cds-suite/cds/reclaim"
)

// MPSC is the single-consumer specialisation of LCRQ: enqueues are the
// same multi-producer FAA-plus-publication protocol, but the sole
// consumer owns the dequeue cursor outright, so a dequeue claims its slot
// with a plain load/store pair — no fetch-and-add, no CAS — and advances
// the head with CASes that cannot fail. The consumer can still overtake
// an in-flight producer (the enqueue cursor moves before the slot
// publishes); it grants the same brief grace as LCRQ, then abandons the
// slot so neither side waits unboundedly.
//
// All dequeue-side calls — TryDequeue, Len under recycling — must come
// from one goroutine at a time; enqueues may come from any number of
// goroutines. This is the shape of a work-stealing pool's wake-one
// consumer, a single-reader event loop, or an actor mailbox. For the
// pool's injection lane — where every worker dequeues — the pool wires
// the full LCRQ instead; see pool.WithInjectionLane.
//
// Linearization points match LCRQ except the dequeue claim, which
// linearizes at the consumer's cursor store. The zero value is NOT
// usable; construct with NewMPSC. Progress: enqueue lock-free, dequeue
// wait-free apart from the bounded publication grace.
type MPSC[T any] struct {
	segCore[T]
}

// NewMPSC returns an empty single-consumer segmented queue. See
// WithReclaim, WithRecycling, and WithSegmentSize.
func NewMPSC[T any](opts ...Option) *MPSC[T] {
	q := &MPSC[T]{}
	q.init(buildOptions(opts))
	return q
}

// Enqueue adds v at the tail. Safe for any number of concurrent callers.
func (q *MPSC[T]) Enqueue(v T) {
	if q.mem == nil {
		q.enqueue(nil, v)
		return
	}
	g := q.mem.Get()
	g.Enter()
	q.enqueue(g, v)
	g.Exit()
	q.mem.Put(g)
}

// TryDequeue removes and returns the head element; ok is false if the
// queue was observed empty. Single consumer only.
func (q *MPSC[T]) TryDequeue() (v T, ok bool) {
	if q.mem == nil {
		return q.dequeue(nil)
	}
	g := q.mem.Get()
	g.Enter()
	v, ok = q.dequeue(g)
	g.Exit()
	q.mem.Put(g)
	return v, ok
}

// dequeue is the single-consumer dequeue: h is owned by this goroutine,
// so the claim is a plain store and no other dequeuer can overshoot or
// abandon ahead of us.
func (q *MPSC[T]) dequeue(g reclaim.Guard) (v T, ok bool) {
	for {
		seg := loadSeg(g, &q.head)
		h := seg.deq.Load() // sole writer: ourselves
		e := seg.enq.Load()
		if h >= min(segCursor(e), q.size) {
			if q.emptyAt(h, e) {
				return v, false
			}
			next := seg.next.Load()
			if next == nil {
				return v, false // sealed, append not linked yet
			}
			q.advanceHead(g, seg, next)
			continue
		}
		slot := &seg.slots[h]
		seg.deq.Store(h + 1)
		if val, taken := takeSlot(slot); taken {
			if q.segs != nil {
				q.count.Add(-1)
			}
			return val, true
		}
		q.stats.deqSlow.Add(1)
	}
}
