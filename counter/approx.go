package counter

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/cds-suite/cds/internal/pow2"
	"github.com/cds-suite/cds/internal/xrand"
)

// Approx is a "sloppy" counter (Boyd-Wickizer et al.): updates accumulate in
// per-shard buffers and are flushed to a shared global only when a buffer's
// magnitude reaches a threshold. Load reads the single global word, so reads
// are O(1) — the opposite trade-off from Sharded, whose reads scan every
// shard. The price is bounded staleness: Load can lag the true count by at
// most shards × (threshold-1) in magnitude.
//
// Progress: Add is wait-free; Load is wait-free with bounded error.
type Approx struct {
	global    atomic.Int64
	threshold int64
	shards    []paddedInt64
	mask      uint64
	states    sync.Pool
}

// NewApprox returns a sloppy counter with the given shard count (<= 0
// selects 4×GOMAXPROCS, rounded up to a power of two) and flush threshold
// (<= 0 selects 64). Larger thresholds scale updates better and make reads
// staler.
func NewApprox(shards int, threshold int64) *Approx {
	if shards <= 0 {
		shards = 4 * runtime.GOMAXPROCS(0)
	}
	if threshold <= 0 {
		threshold = 64
	}
	n := pow2.RoundUp(shards, 1)
	c := &Approx{
		threshold: threshold,
		shards:    make([]paddedInt64, n),
		mask:      uint64(n - 1),
	}
	var seed atomic.Uint64
	c.states.New = func() any {
		s := seed.Add(0x9e3779b97f4a7c15)
		return &s
	}
	return c
}

// Inc adds 1.
func (c *Approx) Inc() { c.Add(1) }

// Add adds delta to a local shard, flushing the shard to the global counter
// when its buffered magnitude reaches the threshold.
func (c *Approx) Add(delta int64) {
	s := c.states.Get().(*uint64)
	idx := xrand.SplitMix64(s) & c.mask
	c.states.Put(s)

	shard := &c.shards[idx].n
	v := shard.Add(delta)
	if v >= c.threshold || v <= -c.threshold {
		// Claim the buffered amount and push it to the global. A concurrent
		// adder may interleave; the subtraction keeps the sum invariant
		// global + Σshards == true count.
		shard.Add(-v)
		c.global.Add(v)
	}
}

// Load returns the global counter: the true count minus whatever is still
// buffered in shards (at most MaxError in magnitude).
func (c *Approx) Load() int64 {
	return c.global.Load()
}

// LoadExact folds the shard buffers in as well. Like Sharded.Load it is
// exact only in quiescent states; it exists for tests and final readings.
func (c *Approx) LoadExact() int64 {
	sum := c.global.Load()
	for i := range c.shards {
		sum += c.shards[i].n.Load()
	}
	return sum
}

// MaxError returns the worst-case magnitude by which Load may lag the true
// count: shards × (threshold − 1), plus transient in-flight updates.
func (c *Approx) MaxError() int64 {
	return int64(len(c.shards)) * (c.threshold - 1)
}

// Threshold returns the flush threshold.
func (c *Approx) Threshold() int64 { return c.threshold }
