// Package counter implements the shared-counter designs from the concurrent
// data structures literature: a mutex-guarded counter, a single atomic
// fetch-and-add counter, a cache-line-striped (sharded) counter, a software
// combining tree (via contend.CombiningTree), and a statistical approximate
// counter.
//
// Shared counters are the survey's smallest case study in the
// contention/accuracy trade-off: a single fetch-and-add word saturates at
// the coherence throughput of one cache line, while distributing the count
// (striping, combining, approximation) recovers scalability at the cost of
// more expensive or weaker reads. Experiment F2 regenerates the classic
// comparison, and ablation A4 sweeps the shard count.
//
// Progress guarantees: Locked is blocking; Atomic is wait-free; Sharded's
// Add is wait-free while its Load is a non-atomic sum (linearizable only
// in quiescence); Combining is blocking in the combining sense (waiters
// ride the combiner's ascent); Approx trades bounded relative error for a
// wait-free O(1) read.
package counter
