package counter

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/cds-suite/cds/internal/pad"
	"github.com/cds-suite/cds/internal/pow2"
	"github.com/cds-suite/cds/internal/xrand"
)

// Sharded is a striped counter: updates hit one of several cache-line-padded
// slots and Load sums the slots. This is the LongAdder/statistical-counter
// design: updates scale nearly linearly with cores because disjoint slots
// live on disjoint cache lines, while reads do O(shards) work and return a
// value that is exact only in quiescent states (Load is not a linearizable
// snapshot; it returns some value the counter passed through during the
// scan).
//
// Shard selection needs per-thread state, which portable Go lacks; Add
// borrows a PRNG from a sync.Pool (per-P caches make this nearly
// contention-free). Hot loops should hoist the state with Handle, which
// pins selection state to the caller.
//
// Progress: Add is wait-free (pool fast path aside); Load is wait-free but
// weakly consistent.
type Sharded struct {
	shards []paddedInt64
	mask   uint64
	states sync.Pool
}

type paddedInt64 struct {
	n atomic.Int64
	_ pad.CacheLinePad
}

// NewSharded returns a striped counter with the given number of shards,
// rounded up to a power of two. shards <= 0 selects 4×GOMAXPROCS, the
// conventional over-provisioning that keeps collision probability low.
func NewSharded(shards int) *Sharded {
	if shards <= 0 {
		shards = 4 * runtime.GOMAXPROCS(0)
	}
	n := pow2.RoundUp(shards, 1)
	c := &Sharded{
		shards: make([]paddedInt64, n),
		mask:   uint64(n - 1),
	}
	var seed atomic.Uint64
	c.states.New = func() any {
		s := seed.Add(0x9e3779b97f4a7c15)
		return &s
	}
	return c
}

// Inc adds 1.
func (c *Sharded) Inc() { c.Add(1) }

// Add adds delta to one shard.
func (c *Sharded) Add(delta int64) {
	s := c.states.Get().(*uint64)
	idx := xrand.SplitMix64(s) & c.mask
	c.shards[idx].n.Add(delta)
	c.states.Put(s)
}

// Load returns the sum of all shards. The result is exact when no updates
// are concurrent; under concurrency it is some valid value between the
// counts at the start and end of the scan.
func (c *Sharded) Load() int64 {
	var sum int64
	for i := range c.shards {
		sum += c.shards[i].n.Load()
	}
	return sum
}

// Handle returns an update handle with private shard-selection state. A
// Handle must be used by one goroutine at a time; the updates it performs
// are visible to every Load.
func (c *Sharded) Handle() *ShardedHandle {
	s := c.states.Get().(*uint64)
	state := *s
	c.states.Put(s)
	return &ShardedHandle{c: c, state: state}
}

// ShardedHandle performs updates against a Sharded counter with
// goroutine-private selection state, avoiding all shared selection traffic.
type ShardedHandle struct {
	c     *Sharded
	state uint64
}

// Inc adds 1.
func (h *ShardedHandle) Inc() { h.Add(1) }

// Add adds delta to one shard of the underlying counter.
func (h *ShardedHandle) Add(delta int64) {
	idx := xrand.SplitMix64(&h.state) & h.c.mask
	h.c.shards[idx].n.Add(delta)
}
