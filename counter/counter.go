package counter

import (
	"sync"
	"sync/atomic"

	cds "github.com/cds-suite/cds"
)

// Compile-time interface compliance checks.
var (
	_ cds.Counter = (*Locked)(nil)
	_ cds.Counter = (*Atomic)(nil)
	_ cds.Counter = (*Sharded)(nil)
	_ cds.Counter = (*CombiningTree)(nil)
	_ cds.Counter = (*Approx)(nil)
)

// Locked is a mutex-guarded counter: the coarse-locking baseline. Every
// operation serialises through one sync.Mutex.
//
// The zero value is a Locked counter at 0. Progress: blocking.
type Locked struct {
	mu sync.Mutex
	n  int64
}

// Inc adds 1.
func (c *Locked) Inc() { c.Add(1) }

// Add adds delta.
func (c *Locked) Add(delta int64) {
	c.mu.Lock()
	c.n += delta
	c.mu.Unlock()
}

// Load returns the current value.
func (c *Locked) Load() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Atomic is a single-word fetch-and-add counter. Updates are wait-free and
// exact but all hit one cache line, so update throughput stops scaling past
// a few cores.
//
// The zero value is an Atomic counter at 0. Progress: wait-free.
type Atomic struct {
	n atomic.Int64
}

// Inc adds 1.
func (c *Atomic) Inc() { c.n.Add(1) }

// Add adds delta.
func (c *Atomic) Add(delta int64) { c.n.Add(delta) }

// Load returns the current value.
func (c *Atomic) Load() int64 { return c.n.Load() }
