package counter

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	cds "github.com/cds-suite/cds"
	"github.com/cds-suite/cds/contend"
)

func testSequential(t *testing.T, c cds.Counter) {
	t.Helper()
	if got := c.Load(); got != 0 {
		t.Fatalf("fresh counter Load = %d, want 0", got)
	}
	c.Inc()
	c.Inc()
	c.Add(5)
	c.Add(-3)
	if got := c.Load(); got != 4 {
		t.Fatalf("Load = %d, want 4", got)
	}
}

func testConcurrentSum(t *testing.T, c cds.Counter, exact func() int64) {
	t.Helper()
	workers := 2 * runtime.GOMAXPROCS(0)
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if i%3 == 0 {
					c.Add(2)
				} else {
					c.Inc()
				}
			}
		}(w)
	}
	wg.Wait()
	// Each worker adds: ceil(perWorker/3) twos and the rest ones.
	twos := (perWorker + 2) / 3
	want := int64(workers) * int64(2*twos+(perWorker-twos))
	if got := exact(); got != want {
		t.Fatalf("final count = %d, want %d", got, want)
	}
}

func TestCountersSequential(t *testing.T) {
	tests := []struct {
		name string
		c    cds.Counter
	}{
		{name: "Locked", c: new(Locked)},
		{name: "Atomic", c: new(Atomic)},
		{name: "Sharded", c: NewSharded(8)},
		{name: "CombiningTree", c: NewCombiningTree(8)},
		{name: "Combining", c: NewCombining()},
		{name: "Combining/CC-Synch", c: NewCombining(WithBackend(contend.BackendCCSynch))},
		{name: "Combining/DSM-Synch", c: NewCombining(WithBackend(contend.BackendDSMSynch))},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			testSequential(t, tt.c)
		})
	}
	t.Run("Approx", func(t *testing.T) {
		c := NewApprox(4, 16)
		c.Inc()
		c.Inc()
		c.Add(5)
		c.Add(-3)
		if got := c.LoadExact(); got != 4 {
			t.Fatalf("LoadExact = %d, want 4", got)
		}
	})
}

func TestCountersConcurrent(t *testing.T) {
	t.Run("Locked", func(t *testing.T) {
		c := new(Locked)
		testConcurrentSum(t, c, c.Load)
	})
	t.Run("Atomic", func(t *testing.T) {
		c := new(Atomic)
		testConcurrentSum(t, c, c.Load)
	})
	t.Run("Sharded", func(t *testing.T) {
		c := NewSharded(0)
		testConcurrentSum(t, c, c.Load)
	})
	t.Run("Approx", func(t *testing.T) {
		c := NewApprox(0, 64)
		testConcurrentSum(t, c, c.LoadExact)
	})
	t.Run("CombiningTree", func(t *testing.T) {
		c := NewCombiningTree(2 * runtime.GOMAXPROCS(0))
		testConcurrentSum(t, c, c.Load)
	})
	for _, be := range contend.Backends() {
		t.Run("Combining/"+be.String(), func(t *testing.T) {
			c := NewCombining(WithBackend(be))
			testConcurrentSum(t, c, c.Load)
			if st := c.Stats(); st.Ops == 0 || st.Batches == 0 {
				t.Fatalf("backend gauges empty after traffic: %+v", st)
			}
		})
	}
}

func TestCombiningFetchAddDistinct(t *testing.T) {
	// FetchAdd priors within one counter must be unique: each operation
	// observes the value immediately before its own position in a batch.
	for _, be := range contend.Backends() {
		t.Run(be.String(), func(t *testing.T) {
			c := NewCombining(WithBackend(be))
			const workers, perW = 8, 200
			var (
				wg   sync.WaitGroup
				mu   sync.Mutex
				seen = make(map[int64]bool, workers*perW)
			)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					priors := make([]int64, 0, perW)
					for i := 0; i < perW; i++ {
						priors = append(priors, c.FetchAdd(1))
					}
					mu.Lock()
					defer mu.Unlock()
					for _, p := range priors {
						if seen[p] {
							t.Errorf("duplicate FetchAdd prior %d", p)
						}
						seen[p] = true
					}
				}()
			}
			wg.Wait()
			if got := c.Load(); got != workers*perW {
				t.Fatalf("Load = %d, want %d", got, workers*perW)
			}
		})
	}
}

func TestShardedHandle(t *testing.T) {
	c := NewSharded(8)
	workers := runtime.GOMAXPROCS(0)
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := c.Handle()
			for i := 0; i < perWorker; i++ {
				h.Inc()
			}
		}()
	}
	wg.Wait()
	if got, want := c.Load(), int64(workers*perWorker); got != want {
		t.Fatalf("Load = %d, want %d", got, want)
	}
}

func TestShardedPowerOfTwoShards(t *testing.T) {
	for give, want := range map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 8: 8, 9: 16} {
		c := NewSharded(give)
		if len(c.shards) != want {
			t.Fatalf("NewSharded(%d) created %d shards, want %d", give, len(c.shards), want)
		}
	}
}

func TestApproxBoundedError(t *testing.T) {
	c := NewApprox(4, 16)
	total := int64(0)
	for i := 0; i < 10000; i++ {
		c.Inc()
		total++
		if lag := total - c.Load(); lag < 0 || lag > c.MaxError()+1 {
			t.Fatalf("after %d incs, Load lags by %d, bound %d", total, lag, c.MaxError())
		}
	}
	if got := c.LoadExact(); got != total {
		t.Fatalf("LoadExact = %d, want %d", got, total)
	}
}

func TestApproxNegativeFlush(t *testing.T) {
	c := NewApprox(2, 8)
	for i := 0; i < 1000; i++ {
		c.Add(-1)
	}
	if got := c.LoadExact(); got != -1000 {
		t.Fatalf("LoadExact = %d, want -1000", got)
	}
	if c.Load() > -1000+c.MaxError() {
		// Most of the decrements must have been flushed to the global.
		t.Fatalf("Load = %d has not flushed within bound %d", c.Load(), c.MaxError())
	}
}

func TestCombiningTreeFetchAdd(t *testing.T) {
	// FetchAdd results across all threads must be distinct and form the set
	// {0, 1, ..., total-1} when every delta is 1: the tree linearizes
	// increments and hands each thread a unique prior value.
	const workers, perWorker = 8, 500
	tree := NewCombiningTree(workers)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		seen = make(map[int64]bool, workers*perWorker)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := tree.Handle(w)
			priors := make([]int64, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				priors = append(priors, h.FetchAdd(1))
			}
			mu.Lock()
			defer mu.Unlock()
			for _, p := range priors {
				if seen[p] {
					t.Errorf("duplicate FetchAdd prior %d", p)
				}
				seen[p] = true
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for i := int64(0); i < workers*perWorker; i++ {
		if !seen[i] {
			t.Fatalf("prior value %d never returned", i)
		}
	}
	if got := tree.Load(); got != workers*perWorker {
		t.Fatalf("Load = %d, want %d", got, workers*perWorker)
	}
}

func TestCombiningTreeWidthOne(t *testing.T) {
	tree := NewCombiningTree(1)
	h := tree.Handle(0)
	for i := int64(0); i < 100; i++ {
		if got := h.FetchAdd(1); got != i {
			t.Fatalf("FetchAdd prior = %d, want %d", got, i)
		}
	}
}

func TestCombiningTreeHandleValidation(t *testing.T) {
	tree := NewCombiningTree(4)
	for _, id := range []int{-1, 4, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Handle(%d) did not panic", id)
				}
			}()
			tree.Handle(id)
		}()
	}
}

func TestNewCombiningTreeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCombiningTree(0) did not panic")
		}
	}()
	NewCombiningTree(0)
}

func TestCounterPropertyMatchesModel(t *testing.T) {
	// Sequential property check: any sequence of deltas applied to each
	// implementation matches the plain sum.
	f := func(deltas []int16) bool {
		impls := []cds.Counter{
			new(Locked), new(Atomic), NewSharded(4), NewCombiningTree(2),
		}
		var want int64
		for _, d := range deltas {
			want += int64(d)
		}
		for _, c := range impls {
			for _, d := range deltas {
				c.Add(int64(d))
			}
			if c.Load() != want {
				return false
			}
		}
		// Approx via exact read.
		a := NewApprox(2, 4)
		for _, d := range deltas {
			a.Add(int64(d))
		}
		return a.LoadExact() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
