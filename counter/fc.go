package counter

import (
	cds "github.com/cds-suite/cds"
	"github.com/cds-suite/cds/contend"
)

var _ cds.Counter = (*Combining)(nil)

// Combining is a delegation-based counter: a plain int64 made concurrent
// through a contend.Delegator backend (flat combining by default; CC-Synch
// or DSM-Synch via WithBackend). Where CombiningTree combines requests
// pairwise on the way up a static tree — requiring threads to hold
// per-slot handles — Combining delegates them to a single temporary
// combiner, needs no handle discipline, and supports the same
// fetch-and-add shape through closure captures.
//
// A counter is the smallest possible combining payload, which makes it the
// cleanest lens on the backends themselves: any throughput difference
// between flat combining, CC-Synch and DSM-Synch here is pure delegation
// overhead, with no structure work to hide it. A plain counter.Atomic is
// faster at low thread counts; the combining variants exist for the
// saturated regime and for reading the backend gauges.
//
// Progress: blocking in the small (a stalled combiner delays its batch) but
// the combiner role is held only for a bounded batch.
type Combining struct {
	d contend.Delegator[*int64]
}

// Option configures the combining counter at construction.
type Option func(*fcConfig)

type fcConfig struct {
	backend contend.Backend
}

// WithBackend selects the combining backend (flat combining default,
// CC-Synch, DSM-Synch); see contend.Backend.
func WithBackend(b contend.Backend) Option {
	return func(c *fcConfig) { c.backend = b }
}

// NewCombining returns a combining counter at zero.
func NewCombining(opts ...Option) *Combining {
	var cfg fcConfig
	for _, o := range opts {
		o(&cfg)
	}
	return &Combining{d: contend.NewDelegator(cfg.backend, new(int64))}
}

// Inc adds 1.
func (c *Combining) Inc() { c.Add(1) }

// Add adds delta (which may be negative), batched with concurrent updates
// by the current combiner.
func (c *Combining) Add(delta int64) {
	c.d.Do(func(n *int64) { *n += delta })
}

// FetchAdd adds delta and returns the value immediately before this
// operation was applied within its batch.
func (c *Combining) FetchAdd(delta int64) int64 {
	var prior int64
	c.d.Do(func(n *int64) {
		prior = *n
		*n += delta
	})
	return prior
}

// Load returns the current value. The read is an operation like any other:
// it is serialised into a batch, so it is linearizable (unlike the sharded
// counters' quiescent sums).
func (c *Combining) Load() int64 {
	var v int64
	c.d.Do(func(n *int64) { v = *n })
	return v
}

// Stats reports the combining-backend gauges (batches, ops, handoffs).
func (c *Combining) Stats() contend.DelegatorStats { return c.d.Stats() }
