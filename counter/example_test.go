package counter_test

import (
	"fmt"
	"sync"

	"github.com/cds-suite/cds/counter"
)

// Sharded counters scale updates linearly with cores; hot loops hold a
// Handle so shard selection costs nothing.
func ExampleSharded() {
	c := counter.NewSharded(0)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := c.Handle()
			for i := 0; i < 1000; i++ {
				h.Inc()
			}
		}()
	}
	wg.Wait()
	fmt.Println(c.Load())
	// Output: 8000
}

// The sloppy counter trades read freshness for O(1) reads: Load may lag by
// at most MaxError, while LoadExact folds the shard buffers in.
func ExampleApprox() {
	c := counter.NewApprox(4, 16)
	for i := 0; i < 1000; i++ {
		c.Inc()
	}
	lag := c.LoadExact() - c.Load()
	fmt.Println(c.LoadExact(), lag >= 0 && lag <= c.MaxError())
	// Output: 1000 true
}

// The combining tree turns k colliding increments into one traversal — a
// win only under saturation, which is exactly what experiment F2 shows.
func ExampleCombiningTree() {
	tree := counter.NewCombiningTree(4)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := tree.Handle(w)
			for i := 0; i < 100; i++ {
				h.Inc()
			}
		}(w)
	}
	wg.Wait()
	fmt.Println(tree.Load())
	// Output: 400
}
