package counter

import "github.com/cds-suite/cds/contend"

// CombiningTree adapts contend.CombiningTree — the software combining tree
// of Goodman, Vernon & Woest (as presented in Herlihy & Shavit ch. 12) —
// to the cds.Counter interface. Threads are statically assigned to leaves,
// two per leaf; when two threads meet at a node on their way to the root,
// one combines both requests and carries the sum upward while the other
// waits for the result to be distributed back down. Under saturation the
// root applies many increments per lock acquisition, turning a sequential
// bottleneck into O(p/log p)-ish amortised cost; under low load the tree's
// per-level handshakes make it slower than a plain atomic — the classic
// combining trade-off that experiment F2 shows.
//
// Threads interact through per-thread handles obtained from Handle(id).
//
// Progress: blocking (waiting threads park on per-node condition variables).
type CombiningTree struct {
	tree *contend.CombiningTree
	// handlePool serves the cds.Counter convenience methods (Inc/Add):
	// checking a handle out of the pool guarantees each slot is used by one
	// goroutine at a time, preserving the two-threads-per-leaf invariant
	// the algorithm depends on.
	handlePool chan *CombiningHandle
}

// NewCombiningTree returns a combining tree serving the given number of
// threads (handles). width <= 0 panics: the tree shape is fixed at
// construction.
func NewCombiningTree(width int) *CombiningTree {
	t := &CombiningTree{
		tree:       contend.NewCombiningTree(width),
		handlePool: make(chan *CombiningHandle, width),
	}
	for id := 0; id < width; id++ {
		t.handlePool <- t.Handle(id)
	}
	return t
}

// Width returns the number of thread slots the tree was built for.
func (t *CombiningTree) Width() int { return t.tree.Width() }

// Handle returns the update handle for thread slot id in [0, Width()). Each
// slot must be used by at most one goroutine at a time; two slots share each
// leaf, which is what creates combining opportunities.
func (t *CombiningTree) Handle(id int) *CombiningHandle {
	return &CombiningHandle{h: t.tree.Handle(id)}
}

// Inc adds 1 to the counter via a pooled handle; for hot paths, hold a
// dedicated Handle per worker instead.
func (t *CombiningTree) Inc() { t.Add(1) }

// Add adds delta via a pooled handle. If all Width() slots are busy the
// caller waits for one to free up, which also bounds the tree's concurrency
// at its design width.
func (t *CombiningTree) Add(delta int64) {
	h := <-t.handlePool
	h.Add(delta)
	t.handlePool <- h
}

// Load returns the current value: the total accumulated at the root. Exact
// in quiescent states; concurrent in-flight batches may be missing.
func (t *CombiningTree) Load() int64 {
	return t.tree.Load()
}

// CombiningHandle is a per-thread-slot accessor to the tree.
type CombiningHandle struct {
	h *contend.CombiningHandle
}

// Inc adds 1.
func (h *CombiningHandle) Inc() { h.h.Add(1) }

// Add adds delta, combining with concurrent operations that meet it on the
// way to the root. It returns when the delta is reflected at the root.
func (h *CombiningHandle) Add(delta int64) { h.h.Add(delta) }

// FetchAdd adds delta and returns the counter value immediately before this
// operation's combined batch was applied (the classic fetch-and-add result
// for this thread's position within the batch).
func (h *CombiningHandle) FetchAdd(delta int64) int64 { return h.h.FetchAdd(delta) }
