// Package fc offers flat-combining containers (Hendler, Incze, Shavit &
// Tzafrir, SPAA 2010): a queue and a stack whose concurrency comes from
// contend.Combiner, the module's shared flat-combining core. Instead of
// every thread fighting for the lock of a shared structure, threads publish
// their operations into a lock-free list and a single temporary "combiner"
// applies a whole batch against the plain sequential structure.
//
// The counter-intuitive result the paper established — and experiment F2/F4
// can show — is that one thread applying k operations back-to-back against
// warm caches often beats k threads applying one operation each through a
// contended lock or CAS, because the structure's cache lines stay resident
// with the combiner.
//
// The combining machinery itself (publication list, combiner role,
// completion records) lives in package contend; this package contributes
// the sequential queue/stack cores and the cds-interface adapters. The
// flat-combining priority queue and deque live with their families, in
// pqueue.FC and deque.FC.
//
// Progress guarantees: blocking in the combining sense — one thread holds
// the combiner role while the rest spin on their publication records; the
// batch application bounds every waiter's delay by the batch length.
//
// # Deprecated aliases
//
// Combiner and NewCombiner are deprecated aliases kept from the migration
// of the combining core into package contend; godoc and gopls surface the
// markers, and new code should use contend.Combiner / contend.NewCombiner
// directly.
package fc
