package fc

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/cds-suite/cds/contend"
)

func TestCombinerAppliesAll(t *testing.T) {
	type counter struct{ n int }
	c := NewCombiner(&counter{})
	workers := 2 * runtime.GOMAXPROCS(0)
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Do(func(s *counter) { s.n++ })
			}
		}()
	}
	wg.Wait()
	var got int
	c.Do(func(s *counter) { got = s.n })
	if want := workers * perWorker; got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
}

func TestCombinerResultsVisible(t *testing.T) {
	type box struct{ v int }
	c := NewCombiner(&box{v: 7})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				var read int
				c.Do(func(s *box) { read = s.v })
				if read != 7 {
					t.Errorf("read %d, want 7", read)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestCombinerSubmissionOrderPerThread(t *testing.T) {
	// Operations submitted by one goroutine apply in program order.
	type log struct{ seen []int }
	c := NewCombiner(&log{})
	var wg sync.WaitGroup
	workers := 4
	const per = 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v := w*per + i
				c.Do(func(s *log) { s.seen = append(s.seen, v) })
			}
		}(w)
	}
	wg.Wait()
	var snapshot []int
	c.Do(func(s *log) { snapshot = append([]int(nil), s.seen...) })
	if len(snapshot) != workers*per {
		t.Fatalf("applied %d ops, want %d", len(snapshot), workers*per)
	}
	last := make([]int, workers)
	for i := range last {
		last[i] = -1
	}
	for _, v := range snapshot {
		w, seq := v/per, v%per
		if seq <= last[w] {
			t.Fatalf("worker %d: op %d applied after %d", w, seq, last[w])
		}
		last[w] = seq
	}
}

func TestFCQueueFIFO(t *testing.T) {
	for _, be := range contend.Backends() {
		t.Run(be.String(), func(t *testing.T) {
			q := NewQueue[int](WithBackend(be))
			if _, ok := q.TryDequeue(); ok {
				t.Fatal("empty queue dequeued")
			}
			for i := 0; i < 100; i++ {
				q.Enqueue(i)
			}
			if q.Len() != 100 {
				t.Fatalf("Len = %d", q.Len())
			}
			for i := 0; i < 100; i++ {
				v, ok := q.TryDequeue()
				if !ok || v != i {
					t.Fatalf("TryDequeue = (%d,%v), want (%d,true)", v, ok, i)
				}
			}
			if st := q.Stats(); st.Ops == 0 || st.Batches == 0 {
				t.Fatalf("backend gauges empty after traffic: %+v", st)
			}
		})
	}
}

func TestFCStackLIFO(t *testing.T) {
	for _, be := range contend.Backends() {
		t.Run(be.String(), func(t *testing.T) {
			s := NewStack[string](WithBackend(be))
			for _, v := range []string{"a", "b", "c"} {
				s.Push(v)
			}
			for _, want := range []string{"c", "b", "a"} {
				v, ok := s.TryPop()
				if !ok || v != want {
					t.Fatalf("TryPop = (%q,%v), want (%q,true)", v, ok, want)
				}
			}
			if _, ok := s.TryPop(); ok {
				t.Fatal("empty stack popped")
			}
		})
	}
}

func TestFCQueueConcurrentConservation(t *testing.T) {
	for _, be := range contend.Backends() {
		t.Run(be.String(), func(t *testing.T) {
			testFCQueueConservation(t, be)
		})
	}
}

func testFCQueueConservation(t *testing.T, be contend.Backend) {
	q := NewQueue[int](WithBackend(be))
	producers := runtime.GOMAXPROCS(0)
	const perProducer = 10000
	total := producers * perProducer

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Enqueue(p*perProducer + i)
			}
		}(p)
	}
	var consumed atomic.Int64
	seen := make([]atomic.Bool, total)
	var cwg sync.WaitGroup
	for cidx := 0; cidx < producers; cidx++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for consumed.Load() < int64(total) {
				if v, ok := q.TryDequeue(); ok {
					if seen[v].Swap(true) {
						t.Errorf("value %d dequeued twice", v)
						return
					}
					consumed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	cwg.Wait()
	if t.Failed() {
		return
	}
	for i := range seen {
		if !seen[i].Load() {
			t.Fatalf("value %d lost", i)
		}
	}
}
