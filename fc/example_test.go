package fc_test

import (
	"fmt"
	"sync"

	"github.com/cds-suite/cds/fc"
)

// A Combiner makes any sequential structure concurrent: operations are
// submitted as closures and applied in batches by one combiner thread.
// Results come out through captured variables.
func ExampleCombiner() {
	type scoreboard struct {
		scores map[string]int
	}
	c := fc.NewCombiner(&scoreboard{scores: make(map[string]int)})

	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Do(func(s *scoreboard) { s.scores["total"]++ })
		}()
	}
	wg.Wait()

	var total int
	c.Do(func(s *scoreboard) { total = s.scores["total"] })
	fmt.Println(total)
	// Output: 10
}

// The flat-combining queue behaves like any other cds.Queue.
func ExampleQueue() {
	q := fc.NewQueue[rune]()
	for _, r := range "abc" {
		q.Enqueue(r)
	}
	for {
		r, ok := q.TryDequeue()
		if !ok {
			break
		}
		fmt.Print(string(r))
	}
	fmt.Println()
	// Output: abc
}
