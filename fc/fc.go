package fc

import (
	cds "github.com/cds-suite/cds"
	"github.com/cds-suite/cds/contend"
)

// Combiner wraps a sequential structure with flat-combining concurrency.
//
// Deprecated: use contend.Combiner directly; this alias remains so existing
// callers keep compiling while the combining core lives in package contend.
type Combiner[S any] = contend.Combiner[S]

// NewCombiner returns a Combiner around the given sequential structure.
//
// Deprecated: use contend.NewCombiner.
func NewCombiner[S any](seq S) *Combiner[S] {
	return contend.NewCombiner(seq)
}

// Option configures a combining container at construction.
type Option func(*config)

type config struct {
	backend contend.Backend
}

// WithBackend selects the combining backend the container delegates
// through: flat combining (the default), CC-Synch, or DSM-Synch. See
// contend.Backend for when each wins.
func WithBackend(b contend.Backend) Option {
	return func(c *config) { c.backend = b }
}

func buildConfig(opts []Option) config {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// Queue is a FIFO queue built from a plain slice ring via a combining
// backend — the combining counterpart to the queues in package queue.
type Queue[T any] struct {
	c contend.Delegator[*seqQueue[T]]
}

type seqQueue[T any] struct {
	buf   []T
	head  int
	count int
}

var _ cds.Queue[int] = (*Queue[int])(nil)

// NewQueue returns an empty combining queue, flat-combining by default;
// see WithBackend.
func NewQueue[T any](opts ...Option) *Queue[T] {
	cfg := buildConfig(opts)
	return &Queue[T]{c: contend.NewDelegator(cfg.backend, &seqQueue[T]{})}
}

// Stats reports the combining-backend gauges (batches, ops, handoffs).
func (q *Queue[T]) Stats() contend.DelegatorStats { return q.c.Stats() }

// Enqueue adds v at the tail.
func (q *Queue[T]) Enqueue(v T) {
	q.c.Do(func(s *seqQueue[T]) { s.push(v) })
}

// TryDequeue removes and returns the head element; ok is false if the
// queue was empty.
func (q *Queue[T]) TryDequeue() (v T, ok bool) {
	q.c.Do(func(s *seqQueue[T]) { v, ok = s.pop() })
	return v, ok
}

// Len reports the number of elements.
func (q *Queue[T]) Len() int {
	var n int
	q.c.Do(func(s *seqQueue[T]) { n = s.count })
	return n
}

func (s *seqQueue[T]) push(v T) {
	if s.count == len(s.buf) {
		newCap := 2 * len(s.buf)
		if newCap == 0 {
			newCap = 8
		}
		buf := make([]T, newCap)
		for i := 0; i < s.count; i++ {
			buf[i] = s.buf[(s.head+i)%len(s.buf)]
		}
		s.buf = buf
		s.head = 0
	}
	s.buf[(s.head+s.count)%len(s.buf)] = v
	s.count++
}

func (s *seqQueue[T]) pop() (v T, ok bool) {
	if s.count == 0 {
		return v, false
	}
	v = s.buf[s.head]
	var zero T
	s.buf[s.head] = zero
	s.head = (s.head + 1) % len(s.buf)
	s.count--
	return v, true
}

// Stack is a LIFO stack via a combining backend.
type Stack[T any] struct {
	c contend.Delegator[*seqStack[T]]
}

type seqStack[T any] struct {
	items []T
}

var _ cds.Stack[int] = (*Stack[int])(nil)

// NewStack returns an empty combining stack, flat-combining by default;
// see WithBackend.
func NewStack[T any](opts ...Option) *Stack[T] {
	cfg := buildConfig(opts)
	return &Stack[T]{c: contend.NewDelegator(cfg.backend, &seqStack[T]{})}
}

// Stats reports the combining-backend gauges (batches, ops, handoffs).
func (s *Stack[T]) Stats() contend.DelegatorStats { return s.c.Stats() }

// Push adds v to the top of the stack.
func (s *Stack[T]) Push(v T) {
	s.c.Do(func(q *seqStack[T]) { q.items = append(q.items, v) })
}

// TryPop removes and returns the top element; ok is false if the stack was
// empty.
func (s *Stack[T]) TryPop() (v T, ok bool) {
	s.c.Do(func(q *seqStack[T]) {
		if len(q.items) == 0 {
			return
		}
		v = q.items[len(q.items)-1]
		var zero T
		q.items[len(q.items)-1] = zero
		q.items = q.items[:len(q.items)-1]
		ok = true
	})
	return v, ok
}

// Len reports the number of elements.
func (s *Stack[T]) Len() int {
	var n int
	s.c.Do(func(q *seqStack[T]) { n = len(q.items) })
	return n
}
