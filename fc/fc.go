// Package fc implements combining-based synchronization in the style of
// flat combining (Hendler, Incze, Shavit & Tzafrir, SPAA 2010): instead of
// every thread fighting for the lock of a shared structure, threads publish
// their operations into a lock-free list and a single temporary "combiner"
// applies a whole batch against the plain sequential structure.
//
// The counter-intuitive result the paper established — and experiment F2/F4
// can show — is that one thread applying k operations back-to-back against
// warm caches often beats k threads applying one operation each through a
// contended lock or CAS, because the structure's cache lines stay resident
// with the combiner.
//
// This implementation uses the detached-publication-list variant (as in
// Oyama et al.'s delegation scheme): each operation publishes a fresh
// record, and the combiner claims the whole pending list with one atomic
// swap. It keeps every property that matters for the experiments
// (batching, single-writer cache affinity) while avoiding the record
// lifecycle management of the original.
package fc

import (
	"runtime"
	"sync/atomic"

	cds "github.com/cds-suite/cds"
)

// Combiner wraps a sequential structure S with combining-based concurrency.
// S is typically a pointer to an unsynchronised container; Do submits a
// closure that the (single) combiner thread applies.
//
// Progress: the structure's operations are applied by whichever thread
// holds the combiner role; waiting threads spin until their record is
// served. Lock-free in aggregate: the combiner role is claimed by CAS and
// held only for a bounded batch.
type Combiner[S any] struct {
	seq  S
	head atomic.Pointer[record[S]]
	busy atomic.Bool
}

type record[S any] struct {
	apply func(S)
	next  *record[S]
	done  atomic.Bool
}

// NewCombiner returns a Combiner around the given sequential structure.
// After construction the structure must only be accessed through Do.
func NewCombiner[S any](seq S) *Combiner[S] {
	return &Combiner[S]{seq: seq}
}

// Do submits apply and returns after it has executed against the
// structure. Results travel out through the closure's captured variables,
// which are safe to read once Do returns (the combiner's completion store
// synchronises with the caller's observation of it).
func (c *Combiner[S]) Do(apply func(S)) {
	r := &record[S]{apply: apply}
	for {
		old := c.head.Load()
		r.next = old
		if c.head.CompareAndSwap(old, r) {
			break
		}
	}
	spins := 0
	for {
		if r.done.Load() {
			return
		}
		if c.busy.CompareAndSwap(false, true) {
			c.combine()
			c.busy.Store(false)
			if r.done.Load() {
				return
			}
			// Our record was claimed by a previous combiner that has not
			// finished applying it yet; keep waiting.
		}
		spins++
		if spins%64 == 0 {
			runtime.Gosched()
		}
	}
}

// combine claims the pending list and applies it. Caller holds busy.
// Records are served in submission order (the CAS-push builds a LIFO list,
// so it is reversed first); FIFO service keeps combining fair and makes
// per-thread operation order match submission order.
func (c *Combiner[S]) combine() {
	batch := c.head.Swap(nil)
	if batch == nil {
		return
	}
	var rev *record[S]
	for batch != nil {
		next := batch.next
		batch.next = rev
		rev = batch
		batch = next
	}
	for r := rev; r != nil; {
		next := r.next // r may be reused/collected once done is set
		r.apply(c.seq)
		r.done.Store(true)
		r = next
	}
}

// Queue is a FIFO queue built from a plain slice ring via a Combiner —
// the flat-combining counterpart to the queues in package queue.
type Queue[T any] struct {
	c *Combiner[*seqQueue[T]]
}

type seqQueue[T any] struct {
	buf   []T
	head  int
	count int
}

var _ cds.Queue[int] = (*Queue[int])(nil)

// NewQueue returns an empty flat-combining queue.
func NewQueue[T any]() *Queue[T] {
	return &Queue[T]{c: NewCombiner(&seqQueue[T]{})}
}

// Enqueue adds v at the tail.
func (q *Queue[T]) Enqueue(v T) {
	q.c.Do(func(s *seqQueue[T]) { s.push(v) })
}

// TryDequeue removes and returns the head element; ok is false if the
// queue was empty.
func (q *Queue[T]) TryDequeue() (v T, ok bool) {
	q.c.Do(func(s *seqQueue[T]) { v, ok = s.pop() })
	return v, ok
}

// Len reports the number of elements.
func (q *Queue[T]) Len() int {
	var n int
	q.c.Do(func(s *seqQueue[T]) { n = s.count })
	return n
}

func (s *seqQueue[T]) push(v T) {
	if s.count == len(s.buf) {
		newCap := 2 * len(s.buf)
		if newCap == 0 {
			newCap = 8
		}
		buf := make([]T, newCap)
		for i := 0; i < s.count; i++ {
			buf[i] = s.buf[(s.head+i)%len(s.buf)]
		}
		s.buf = buf
		s.head = 0
	}
	s.buf[(s.head+s.count)%len(s.buf)] = v
	s.count++
}

func (s *seqQueue[T]) pop() (v T, ok bool) {
	if s.count == 0 {
		return v, false
	}
	v = s.buf[s.head]
	var zero T
	s.buf[s.head] = zero
	s.head = (s.head + 1) % len(s.buf)
	s.count--
	return v, true
}

// Stack is a LIFO stack via a Combiner.
type Stack[T any] struct {
	c *Combiner[*seqStack[T]]
}

type seqStack[T any] struct {
	items []T
}

var _ cds.Stack[int] = (*Stack[int])(nil)

// NewStack returns an empty flat-combining stack.
func NewStack[T any]() *Stack[T] {
	return &Stack[T]{c: NewCombiner(&seqStack[T]{})}
}

// Push adds v to the top of the stack.
func (s *Stack[T]) Push(v T) {
	s.c.Do(func(q *seqStack[T]) { q.items = append(q.items, v) })
}

// TryPop removes and returns the top element; ok is false if the stack was
// empty.
func (s *Stack[T]) TryPop() (v T, ok bool) {
	s.c.Do(func(q *seqStack[T]) {
		if len(q.items) == 0 {
			return
		}
		v = q.items[len(q.items)-1]
		var zero T
		q.items[len(q.items)-1] = zero
		q.items = q.items[:len(q.items)-1]
		ok = true
	})
	return v, ok
}

// Len reports the number of elements.
func (s *Stack[T]) Len() int {
	var n int
	s.c.Do(func(q *seqStack[T]) { n = len(q.items) })
	return n
}
