// Package cds defines the shared contracts for the concurrent data structure
// families implemented in this module.
//
// Each sub-package provides several implementations of one family — for
// example package queue ships a coarse-locked queue, the Michael–Scott
// two-lock queue, the Michael–Scott lock-free queue, and bounded ring
// buffers — all satisfying the same minimal interface declared here. The
// interfaces are intentionally small: they capture the operations whose
// concurrent semantics the survey literature analyses, not every convenience
// accessor a sequential container would offer.
//
// Cross-cutting machinery lives in its own packages: contend is the shared
// contention-management layer (randomized exponential backoff, elimination
// and validated-handoff arrays, flat-combining and combining-tree cores)
// that the structure families draw their under-contention behaviour from;
// reclaim is the safe-memory-reclamation layer (epoch-based reclamation,
// hazard pointers, or the default zero-cost GC-noop behind one
// Domain/Guard interface, with optional retired-node recycling) that the
// lock-free structures wire in via their WithReclaim constructor option;
// dual is the blocking family (partial operations as dual data
// structures over parking-based waiter management, satisfying
// BlockingQueue); pool is the work-stealing task executor built on the
// deque family (satisfying Pool); and lincheck is the linearizability
// checker the integration tests verify them with. ARCHITECTURE.md maps
// the layers.
//
// # Progress guarantees
//
// Implementations document their progress property using the standard
// taxonomy:
//
//   - blocking: a suspended thread can prevent others from making progress
//     (all lock-based structures);
//   - lock-free: some operation completes in a finite number of steps
//     system-wide, regardless of scheduling (e.g. Treiber stack,
//     Michael–Scott queue, Harris list);
//   - wait-free: every operation completes in a bounded number of its own
//     steps (e.g. the sharded counter's Add).
//
// # Linearizability
//
// Unless documented otherwise every operation is linearizable: it appears to
// take effect atomically at some instant (the linearization point) between
// its invocation and response. Implementations call out their linearization
// points in doc comments, and package lincheck provides a checker used by the
// integration tests to validate recorded histories against sequential models.
package cds

import "context"

// Stack is a last-in-first-out container.
//
// Push never fails on unbounded implementations. TryPop reports ok=false when
// the stack is observed empty; for linearizable implementations the emptiness
// check is itself linearizable.
type Stack[T any] interface {
	// Push adds v to the top of the stack.
	Push(v T)
	// TryPop removes and returns the most recently pushed element.
	// ok is false if the stack was empty.
	TryPop() (v T, ok bool)
	// Len reports the number of elements. On concurrent implementations the
	// value is a linearizable snapshot only in quiescent states; under
	// concurrency it is a best-effort approximation intended for monitoring.
	Len() int
}

// Queue is a first-in-first-out container.
type Queue[T any] interface {
	// Enqueue adds v to the tail of the queue.
	Enqueue(v T)
	// TryDequeue removes and returns the element at the head.
	// ok is false if the queue was empty.
	TryDequeue() (v T, ok bool)
	// Len reports the number of elements (see Stack.Len caveats).
	Len() int
}

// BlockingQueue is a queue with partial (blocking) operations: where the
// Try-variants report failure on an unmet precondition, Put and Take wait
// for it instead — Take on an empty queue waits for an enqueue, Put on a
// bounded or synchronous queue waits for room or for a taker. Package dual
// provides the implementations (dual data structures and parking-based
// waiter management); cancellation is by context, and a cancelled
// operation returns the context's error after withdrawing its reservation.
type BlockingQueue[T any] interface {
	// Put adds v, blocking while the queue cannot accept it. It returns
	// ctx's error if cancelled first; a nil error means v was delivered.
	Put(ctx context.Context, v T) error
	// Take removes and returns the element at the head, blocking while
	// none is available. It returns ctx's error if cancelled first.
	Take(ctx context.Context) (v T, err error)
	// Len reports the number of buffered elements (see Stack.Len caveats);
	// waiting operations are not counted.
	Len() int
}

// Pool is a task executor: tasks submitted to the pool run asynchronously
// on its workers, exactly once each. The pools literature deliberately
// promises no FIFO order between independent tasks — that relaxation is
// what lets implementations replace one contended queue with per-worker
// deques and stealing (package pool).
type Pool[T any] interface {
	// Submit hands t to the pool. It reports false — and t will never
	// run — once shutdown has begun; a true return means the pool has
	// accepted responsibility for running t exactly once (or abandoning
	// it if a cancelled Shutdown stops the pool first).
	Submit(t T) bool
	// Shutdown stops the pool: new submissions are rejected, the workers
	// finish every accepted task, and the call returns nil once they have
	// exited (drain). If ctx is cancelled first, the remaining tasks are
	// abandoned and ctx's error is returned.
	Shutdown(ctx context.Context) error
}

// BoundedQueue is a Queue variant with finite capacity: offers can fail.
type BoundedQueue[T any] interface {
	// TryEnqueue adds v to the tail; it reports false if the queue was full.
	TryEnqueue(v T) bool
	// TryDequeue removes and returns the element at the head.
	TryDequeue() (v T, ok bool)
	// Cap reports the fixed capacity.
	Cap() int
	// Len reports the number of elements (see Stack.Len caveats).
	Len() int
}

// Deque is a double-ended queue. The work-stealing deque in package deque
// restricts PushBottom/PopBottom to the owner goroutine and PopTop to
// thieves; symmetric implementations allow all four ends.
type Deque[T any] interface {
	// PushBottom adds v at the bottom (owner end).
	PushBottom(v T)
	// TryPopBottom removes from the bottom (owner end).
	TryPopBottom() (v T, ok bool)
	// TryPopTop removes from the top (steal end).
	TryPopTop() (v T, ok bool)
	// Len reports the number of elements (see Stack.Len caveats).
	Len() int
}

// Set is a collection of unique keys.
type Set[K any] interface {
	// Add inserts k, reporting false if k was already present.
	Add(k K) bool
	// Remove deletes k, reporting false if k was absent.
	Remove(k K) bool
	// Contains reports whether k is present.
	Contains(k K) bool
	// Len reports the number of keys (see Stack.Len caveats).
	Len() int
}

// Map is an association of unique keys to values.
type Map[K any, V any] interface {
	// Load returns the value stored for k.
	Load(k K) (v V, ok bool)
	// Store sets the value for k, inserting it if absent.
	Store(k K, v V)
	// LoadOrStore returns the existing value for k if present; otherwise it
	// stores and returns v. loaded is true if the value was already present.
	LoadOrStore(k K, v V) (actual V, loaded bool)
	// Delete removes k, reporting whether it was present.
	Delete(k K) bool
	// Len reports the number of entries (see Stack.Len caveats).
	Len() int
}

// Cache is a bounded, lossy Map: Set may evict another entry to stay
// within capacity, and any entry may disappear between operations (evicted
// by a concurrent Set, or expired by its TTL). Get reporting ok=false is
// therefore always a legal outcome; what a cache still guarantees is value
// integrity — a hit returns the value most recently Set for that key — and
// that an evicted or expired key stays absent until Set again. Package
// cache provides the implementations (sharded, with pluggable eviction
// policies, TTL expiry, and a singleflight loader); package lincheck's
// CacheModel is the machine-checkable form of this relaxed contract.
type Cache[K any, V any] interface {
	// Get returns the value cached for k. ok is false on a miss — the key
	// was never Set, was evicted, or expired.
	Get(k K) (v V, ok bool)
	// Set caches v for k, evicting other entries if the cache is full.
	Set(k K, v V)
	// Delete removes k, reporting whether it was present (and unexpired).
	Delete(k K) bool
	// Len reports the number of live entries (see Stack.Len caveats).
	Len() int
}

// PriorityQueue delivers the minimum element first, per the Less function the
// implementation was constructed with.
type PriorityQueue[T any] interface {
	// Insert adds v.
	Insert(v T)
	// TryDeleteMin removes and returns the minimum element.
	// ok is false if the queue was empty.
	TryDeleteMin() (v T, ok bool)
	// Len reports the number of elements (see Stack.Len caveats).
	Len() int
}

// Counter is a shared integer counter. Implementations trade read accuracy
// and cost against update scalability; see package counter.
type Counter interface {
	// Inc adds 1.
	Inc()
	// Add adds delta (which may be negative).
	Add(delta int64)
	// Load returns the current value. Sharded implementations return a sum
	// that is linearizable only in quiescent states.
	Load() int64
}
