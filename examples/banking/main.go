// Banking: concurrent transfers with STM — the composability showcase.
// Moving money touches two accounts atomically; with fine-grained locks
// that means lock ordering, with a global lock it means serialisation, and
// with STM it is just a transaction. A continuous auditor sums every
// account transactionally and must always observe the exact total: a
// single torn observation would print immediately.
//
// Run with:
//
//	go run ./examples/banking
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cds-suite/cds/internal/xrand"
	"github.com/cds-suite/cds/stm"
)

const (
	accounts       = 4096
	initialBalance = 1000
	transfersPer   = 50000
)

func main() {
	banks := make([]*stm.TVar[int], accounts)
	for i := range banks {
		banks[i] = stm.NewTVar(initialBalance)
	}
	workers := runtime.GOMAXPROCS(0)

	var (
		wg        sync.WaitGroup
		audits    atomic.Int64
		violation atomic.Bool
		stopAudit = make(chan struct{})
		auditWG   sync.WaitGroup
	)

	// Auditor: transactional full-sum snapshots, concurrent with transfers.
	auditWG.Add(1)
	go func() {
		defer auditWG.Done()
		for {
			select {
			case <-stopAudit:
				return
			default:
			}
			total := 0
			stm.Atomically(func(tx *stm.Txn) {
				total = 0
				for _, acc := range banks {
					total += acc.Read(tx)
				}
			})
			audits.Add(1)
			if total != accounts*initialBalance {
				violation.Store(true)
				fmt.Printf("AUDIT VIOLATION: total=%d want=%d\n", total, accounts*initialBalance)
				return
			}
		}
	}()

	t0 := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(uint64(w) + 1)
			for i := 0; i < transfersPer; i++ {
				from := rng.Intn(accounts)
				to := rng.Intn(accounts)
				if from == to {
					to = (to + 1) % accounts
				}
				amount := rng.Intn(100)
				stm.Atomically(func(tx *stm.Txn) {
					f := banks[from].Read(tx)
					if f < amount {
						return // insufficient funds: empty commit
					}
					banks[from].Write(tx, f-amount)
					banks[to].Write(tx, banks[to].Read(tx)+amount)
				})
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	close(stopAudit)
	auditWG.Wait()

	final := 0
	for _, acc := range banks {
		final += acc.Load()
	}
	transfers := workers * transfersPer
	fmt.Printf("transfers: %d in %.0fms (%.2f M tx/s)\n",
		transfers, elapsed.Seconds()*1000, float64(transfers)/elapsed.Seconds()/1e6)
	fmt.Printf("audits:    %d concurrent full-ledger snapshots, all consistent: %v\n",
		audits.Load(), !violation.Load())
	fmt.Printf("total:     %d (expected %d)\n", final, accounts*initialBalance)
	if final != accounts*initialBalance || violation.Load() {
		fmt.Println("MONEY WAS NOT CONSERVED")
	}
}
