// Jobqueue: a worker pool fed through blocking queues — the service
// pattern (thread pools, RPC dispatch, build farms) the dual structures
// exist for. Producers submit jobs through a bounded blocking queue, so a
// slow pool exerts backpressure instead of growing without bound;
// workers Take jobs, blocking while idle instead of spinning; and
// shutdown is a context cancellation that every parked waiter observes,
// withdrawing its reservation — no sentinel values, no closed-channel
// panics, no drain races. The same pool runs once over dual.Bounded and
// once over the synchronous queue, where the handoff itself throttles
// producers to the workers' pace.
//
// Run with:
//
//	go run ./examples/jobqueue
package main

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	cds "github.com/cds-suite/cds"
	"github.com/cds-suite/cds/dual"
	"github.com/cds-suite/cds/internal/exampleenv"
	"github.com/cds-suite/cds/internal/xrand"
)

const (
	producers = 4
	workers   = 4
	capacity  = 64
)

// jobs is the total submission volume; CDS_EXAMPLE_OPS overrides it so CI
// can smoke-run the example.
var jobs = exampleenv.Ops(200_000)

type job struct {
	id   int
	seed uint64
}

type statser interface{ Stats() dual.Stats }

func main() {
	run("bounded backpressure", dual.NewBounded[job](capacity))
	run("synchronous handoff", dual.NewSync[job](0, 0))
}

func run(name string, q cds.BlockingQueue[job]) {
	ctx, cancel := context.WithCancel(context.Background())
	var produced, processed, rejected atomic.Int64
	var sink atomic.Uint64

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Blocks while no work is pending; returns the moment the
				// pool is shut down, even mid-park.
				j, err := q.Take(ctx)
				if err != nil {
					return
				}
				s := j.seed
				for i := 0; i < 64; i++ { // simulate real per-job work
					xrand.SplitMix64(&s)
				}
				sink.Add(s)
				processed.Add(1)
			}
		}()
	}

	start := time.Now()
	var pg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pg.Add(1)
		go func(p int) {
			defer pg.Done()
			for i := p; i < jobs; i += producers {
				// A full queue blocks the producer: backpressure, not
				// unbounded buffering. The deadline turns a wedged pool
				// into a visible rejection instead of a silent hang.
				pctx, pcancel := context.WithTimeout(ctx, 10*time.Millisecond)
				if err := q.Put(pctx, job{id: i, seed: uint64(i)}); err != nil {
					rejected.Add(1)
				} else {
					produced.Add(1)
				}
				pcancel()
			}
		}(p)
	}
	pg.Wait()

	// Drain: workers finish the buffered jobs, then the cancellation
	// unparks every idle worker for a clean exit.
	for q.Len() > 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	wg.Wait()

	elapsed := time.Since(start)
	fmt.Printf("== %s\n", name)
	fmt.Printf("   produced %d, processed %d, rejected %d in %v (%.2f Mjobs/s)\n",
		produced.Load(), processed.Load(), rejected.Load(), elapsed,
		float64(processed.Load())/elapsed.Seconds()/1e6)
	if s, ok := q.(statser); ok {
		st := s.Stats()
		fmt.Printf("   waits: %d reservations, %d fulfilled, %d parks, %d cancelled, %d fast handoffs\n",
			st.Reservations, st.Fulfilled, st.Parks, st.Cancelled, st.Handoffs)
	}
	if processed.Load() != produced.Load() {
		panic("jobs lost: processed != produced")
	}
	_ = sink.Load()
}
