// Pipeline: a staged processing pipeline connected by SPSC rings — the
// data-plane pattern (packet processing, audio, log shipping) where each
// stage is one goroutine and the queues between stages must cost nanoseconds,
// not microseconds. Each stage pair has exactly one producer and one
// consumer, which is precisely the contract the wait-free SPSC ring
// exploits. The same topology over a locked queue shows what the relaxed
// contract buys.
//
// Run with:
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"time"

	"github.com/cds-suite/cds/internal/exampleenv"
	"github.com/cds-suite/cds/internal/xrand"
	"github.com/cds-suite/cds/queue"
)

const (
	ringSize  = 1024
	numStages = 3 // parse → transform → aggregate
)

// items is the pipeline volume; CDS_EXAMPLE_OPS overrides it so CI can
// smoke-run the example without paying for the full demonstration.
var items = exampleenv.Ops(2_000_000)

// message flows through the pipeline, accumulating stage work.
type message struct {
	id  int
	sum uint64
}

func main() {
	spsc := runPipeline("SPSC rings", func() pipe {
		q := queue.NewSPSC[message](ringSize)
		return pipe{push: q.TryEnqueue, pop: q.TryDequeue}
	})
	locked := runPipeline("locked queue", func() pipe {
		q := queue.NewMutex[message]()
		return pipe{
			push: func(m message) bool {
				if q.Len() >= ringSize { // match the bounded behaviour
					return false
				}
				q.Enqueue(m)
				return true
			},
			pop: q.TryDequeue,
		}
	})
	fmt.Printf("speedup: %.2fx\n", locked.Seconds()/spsc.Seconds())
}

type pipe struct {
	push func(message) bool
	pop  func() (message, bool)
}

func runPipeline(label string, mkPipe func() pipe) time.Duration {
	pipes := make([]pipe, numStages-1)
	for i := range pipes {
		pipes[i] = mkPipe()
	}

	done := make(chan uint64)
	// Interior stages: transform and forward.
	for s := 0; s < numStages-2; s++ {
		go func(in, out pipe) {
			for i := 0; i < items; i++ {
				var m message
				for {
					var ok bool
					if m, ok = in.pop(); ok {
						break
					}
				}
				m.sum = xrand.SplitMix64(&m.sum)
				for !out.push(m) {
				}
			}
		}(pipes[s], pipes[s+1])
	}
	// Sink stage: aggregate.
	go func(in pipe) {
		var total uint64
		for i := 0; i < items; i++ {
			for {
				if m, ok := in.pop(); ok {
					total += m.sum
					break
				}
			}
		}
		done <- total
	}(pipes[numStages-2])

	// Source stage: generate.
	t0 := time.Now()
	src := pipes[0]
	for i := 0; i < items; i++ {
		m := message{id: i, sum: uint64(i)}
		for !src.push(m) {
		}
	}
	total := <-done
	elapsed := time.Since(t0)
	fmt.Printf("%-13s %d items in %6.0fms (%.2f M items/s), checksum %x\n",
		label+":", items, elapsed.Seconds()*1000,
		float64(items)/elapsed.Seconds()/1e6, total)
	return elapsed
}
