// Quickstart: a tour of the cds public API — one structure from each
// family, exercised concurrently with its invariants checked at the end.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"sync"

	"github.com/cds-suite/cds/cmap"
	"github.com/cds-suite/cds/counter"
	"github.com/cds-suite/cds/list"
	"github.com/cds-suite/cds/queue"
	"github.com/cds-suite/cds/stack"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	const workers = 8
	const perWorker = 10000

	// A lock-free Treiber stack: push from all workers, pop everything.
	s := stack.NewTreiber[int]()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s.Push(w*perWorker + i)
			}
		}(w)
	}
	wg.Wait()
	popped := 0
	for {
		if _, ok := s.TryPop(); !ok {
			break
		}
		popped++
	}
	fmt.Printf("stack.Treiber:       pushed %d, popped %d\n", workers*perWorker, popped)
	if popped != workers*perWorker {
		return fmt.Errorf("stack lost %d elements", workers*perWorker-popped)
	}

	// A Michael–Scott queue: producers and consumers running together.
	q := queue.NewMS[int]()
	var produced, consumed sync.WaitGroup
	results := make(chan int, workers*perWorker)
	for w := 0; w < workers/2; w++ {
		produced.Add(1)
		go func(w int) {
			defer produced.Done()
			for i := 0; i < perWorker; i++ {
				q.Enqueue(i)
			}
		}(w)
	}
	stop := make(chan struct{})
	for w := 0; w < workers/2; w++ {
		consumed.Add(1)
		go func() {
			defer consumed.Done()
			for {
				if v, ok := q.TryDequeue(); ok {
					results <- v
					continue
				}
				select {
				case <-stop:
					// Drain anything left after producers finished.
					for {
						v, ok := q.TryDequeue()
						if !ok {
							return
						}
						results <- v
					}
				default:
				}
			}
		}()
	}
	produced.Wait()
	close(stop)
	consumed.Wait()
	close(results)
	n := 0
	for range results {
		n++
	}
	fmt.Printf("queue.MS:            enqueued %d, dequeued %d\n", workers/2*perWorker, n)
	if n != workers/2*perWorker {
		return fmt.Errorf("queue lost %d elements", workers/2*perWorker-n)
	}

	// A lock-free hash map with concurrent mixed operations.
	m := cmap.NewSplitOrdered[string, int]()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := fmt.Sprintf("key-%d", i%1000)
				if i%3 == 0 {
					m.Store(key, i)
				} else {
					m.Load(key)
				}
			}
		}(w)
	}
	wg.Wait()
	fmt.Printf("cmap.SplitOrdered:   %d live keys after mixed workload\n", m.Len())

	// A sorted lock-free set.
	set := list.NewHarris[int]()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				set.Add(i) // heavy duplicate contention on purpose
			}
		}(w)
	}
	wg.Wait()
	fmt.Printf("list.Harris:         %d unique keys (expected 1000)\n", set.Len())
	if set.Len() != 1000 {
		return fmt.Errorf("set has %d keys, want 1000", set.Len())
	}

	// A scalable sharded counter.
	c := counter.NewSharded(0)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := c.Handle()
			for i := 0; i < perWorker; i++ {
				h.Inc()
			}
		}()
	}
	wg.Wait()
	fmt.Printf("counter.Sharded:     %d increments recorded\n", c.Load())
	if c.Load() != int64(workers*perWorker) {
		return fmt.Errorf("counter = %d, want %d", c.Load(), workers*perWorker)
	}

	fmt.Println("quickstart: all structures behaved.")
	return nil
}
