// Webcache: a read-heavy bounded cache in front of a slow "origin", the
// canonical deployment of the cache package. Earlier revisions of this
// example rolled their own cache on a raw concurrent map, which had two
// real bugs this rewrite retires:
//
//   - the per-client request split used requests/clients and silently
//     dropped the remainder, so the reported totals never matched the
//     requested load on client counts that do not divide it;
//   - expired entries were overwritten but never removed, so with a key
//     space larger than capacity the "cache" grew without bound.
//
// The cache package fixes the second structurally: capacity-bounded
// shards evict with SIEVE, TTL expiry removes stale entries (lazily on
// read plus a background sweeper), and GetOrLoad collapses concurrent
// misses on a hot key into one origin fetch. This revision also uses the
// two capacity features a real web cache needs:
//
//   - weighted entries: origin objects are not uniformly sized (most are
//     small, a few are giants), so the cache is bounded by a byte budget
//     (WithMaxWeight + WithWeigher) rather than an entry count — one
//     giant displaces many small objects instead of occupying one slot;
//   - TinyLFU admission (WithAdmission): the long Zipf tail is full of
//     one-touch keys, and admitting each one would evict an object with
//     a real reuse chance. The frequency sketch turns those cold inserts
//     away at the eviction boundary instead.
//
// The example asserts the regression properties at the end of the run —
// accounting must balance exactly, the steady-state size must stay within
// capacity even though the key space is orders of magnitude larger, and
// the weight/admission gauges must respect their invariants (resident
// weight <= budget, rejects <= victims considered).
//
// The simulated clients draw keys from a Zipfian distribution, as real
// content popularity does.
//
// Run with:
//
//	go run ./examples/webcache
package main

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"github.com/cds-suite/cds/cache"
	"github.com/cds-suite/cds/internal/exampleenv"
	"github.com/cds-suite/cds/internal/xrand"
	"github.com/cds-suite/cds/internal/zipf"
)

// requests is the simulated load; CDS_EXAMPLE_OPS overrides it so CI can
// smoke-run the example without paying for the full demonstration.
var requests = exampleenv.Ops(200000)

// payloadSize is the origin object's size for a key: deterministic,
// mostly small (64..1023 bytes), with ~1 in 128 keys a 16 KiB giant.
// The heavy tail is what makes a byte budget differ from an entry count.
func payloadSize(key uint64) int {
	s := key + 1
	h := xrand.SplitMix64(&s)
	if h%128 == 0 {
		return 16 << 10
	}
	return 64 + int(h%960)
}

// splitRequests divides total across clients so every request is issued:
// each client gets the base share and the first total%clients clients
// carry one extra, instead of truncating the remainder away.
func splitRequests(total, clients int) []int {
	shares := make([]int, clients)
	base, extra := total/clients, total%clients
	for i := range shares {
		shares[i] = base
		if i < extra {
			shares[i]++
		}
	}
	return shares
}

// runStats is what one simulation reports; main prints it, the smoke test
// asserts on it.
type runStats struct {
	stats     cache.Stats
	size      int
	maxWeight int64
	elapsed   time.Duration
}

// run drives clients workers through the cache for the given total
// request count and returns the final accounting.
func run(total, clients, keySpace, capacity int, budget int64, ttl time.Duration) runStats {
	c := cache.New[uint64, string](capacity,
		cache.WithTTL(ttl),
		cache.WithMaxWeight(budget),
		cache.WithWeigher(func(_ uint64, v string) int64 { return int64(len(v)) }),
		cache.WithAdmission(cache.TinyLFU),
	)
	defer c.Close()

	origin := func(_ context.Context, key uint64) (string, error) {
		// A "slow" origin: a microsecond-ish of fake CPU work. A spin is
		// used instead of time.Sleep because the sleep's ~1ms timer
		// granularity would dominate the whole simulation.
		x := key
		for i := 0; i < 2000; i++ {
			x = x*6364136223846793005 + 1442695040888963407
		}
		if x == 0 { // never true; defeats dead-code elimination
			return "", nil
		}
		header := fmt.Sprintf("content-%d:", key)
		return header + strings.Repeat("x", payloadSize(key)-len(header)), nil
	}

	t0 := time.Now()
	var wg sync.WaitGroup
	for cl, share := range splitRequests(total, clients) {
		wg.Add(1)
		go func(cl, share int) {
			defer wg.Done()
			keys, err := zipf.New(uint64(keySpace), 0.99, uint64(cl)+1)
			if err != nil {
				panic(err) // static parameters; cannot fail
			}
			for i := 0; i < share; i++ {
				if _, err := c.GetOrLoad(context.Background(), keys.Next(), origin); err != nil {
					panic(err) // origin never fails in the simulation
				}
			}
		}(cl, share)
	}
	wg.Wait()

	return runStats{
		stats:     c.Stats(),
		size:      c.Len(),
		maxWeight: c.MaxWeight(),
		elapsed:   time.Since(t0),
	}
}

// check verifies the two regression properties the old example violated,
// plus the weight/admission invariants the byte-budgeted rewrite added.
func (r runStats) check(total, capacity int) error {
	if got := r.stats.Lookups(); got != int64(total) {
		return fmt.Errorf("accounting: hits(%d) + misses(%d) = %d, want exactly %d requests",
			r.stats.Hits, r.stats.Misses, got, total)
	}
	if r.size > capacity {
		return fmt.Errorf("unbounded growth: %d resident entries, capacity %d", r.size, capacity)
	}
	if r.stats.WeightResident > r.maxWeight {
		return fmt.Errorf("weight overrun: %d resident bytes, budget %d",
			r.stats.WeightResident, r.maxWeight)
	}
	if r.stats.AdmissionRejects > r.stats.EvictConsidered {
		return fmt.Errorf("admission accounting: %d rejects > %d victims considered",
			r.stats.AdmissionRejects, r.stats.EvictConsidered)
	}
	return nil
}

func main() {
	const (
		keySpace = 100000
		capacity = 4096    // deliberately far smaller than the key space
		budget   = 1 << 20 // 1 MiB byte budget: binds before the entry count does
		ttl      = 500 * time.Millisecond
	)
	clients := runtime.GOMAXPROCS(0)

	r := run(requests, clients, keySpace, capacity, budget, ttl)
	st := r.stats

	total := st.Lookups()
	fmt.Printf("requests:   %d in %.0fms (%.2f M req/s)\n",
		total, r.elapsed.Seconds()*1000, float64(total)/r.elapsed.Seconds()/1e6)
	fmt.Printf("hit rate:   %.1f%% (%d hits, %d misses)\n",
		100*st.HitRate(), st.Hits, st.Misses)
	fmt.Printf("origin:     %d fetches (%d stampedes suppressed)\n",
		st.Loads, st.StampedeSuppressed)
	fmt.Printf("cache size: %d entries (capacity %d, %d evicted, %d expired)\n",
		r.size, capacity, st.Evictions, st.Expired)
	fmt.Printf("weight:     %d / %d bytes resident\n", st.WeightResident, r.maxWeight)
	fmt.Printf("admission:  %d cold inserts rejected (%d victims considered)\n",
		st.AdmissionRejects, st.EvictConsidered)

	if err := r.check(requests, capacity); err != nil {
		fmt.Fprintln(os.Stderr, "FAIL:", err)
		os.Exit(1)
	}
}
