// Webcache: a read-heavy bounded cache in front of a slow "origin", the
// canonical deployment of the cache package. Earlier revisions of this
// example rolled their own cache on a raw concurrent map, which had two
// real bugs this rewrite retires:
//
//   - the per-client request split used requests/clients and silently
//     dropped the remainder, so the reported totals never matched the
//     requested load on client counts that do not divide it;
//   - expired entries were overwritten but never removed, so with a key
//     space larger than capacity the "cache" grew without bound.
//
// The cache package fixes the second structurally: capacity-bounded
// shards evict with SIEVE, TTL expiry removes stale entries (lazily on
// read plus a background sweeper), and GetOrLoad collapses concurrent
// misses on a hot key into one origin fetch. The example asserts both
// properties at the end of the run — accounting must balance exactly, and
// the steady-state size must stay within capacity even though the key
// space is orders of magnitude larger.
//
// The simulated clients draw keys from a Zipfian distribution, as real
// content popularity does.
//
// Run with:
//
//	go run ./examples/webcache
package main

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"github.com/cds-suite/cds/cache"
	"github.com/cds-suite/cds/internal/exampleenv"
	"github.com/cds-suite/cds/internal/zipf"
)

// requests is the simulated load; CDS_EXAMPLE_OPS overrides it so CI can
// smoke-run the example without paying for the full demonstration.
var requests = exampleenv.Ops(200000)

// splitRequests divides total across clients so every request is issued:
// each client gets the base share and the first total%clients clients
// carry one extra, instead of truncating the remainder away.
func splitRequests(total, clients int) []int {
	shares := make([]int, clients)
	base, extra := total/clients, total%clients
	for i := range shares {
		shares[i] = base
		if i < extra {
			shares[i]++
		}
	}
	return shares
}

// runStats is what one simulation reports; main prints it, the smoke test
// asserts on it.
type runStats struct {
	stats   cache.Stats
	size    int
	elapsed time.Duration
}

// run drives clients workers through the cache for the given total
// request count and returns the final accounting.
func run(total, clients, keySpace, capacity int, ttl time.Duration) runStats {
	c := cache.New[uint64, string](capacity, cache.WithTTL(ttl))
	defer c.Close()

	origin := func(_ context.Context, key uint64) (string, error) {
		// A "slow" origin: a microsecond-ish of fake CPU work. A spin is
		// used instead of time.Sleep because the sleep's ~1ms timer
		// granularity would dominate the whole simulation.
		x := key
		for i := 0; i < 2000; i++ {
			x = x*6364136223846793005 + 1442695040888963407
		}
		if x == 0 { // never true; defeats dead-code elimination
			return "", nil
		}
		return fmt.Sprintf("content-%d", key), nil
	}

	t0 := time.Now()
	var wg sync.WaitGroup
	for cl, share := range splitRequests(total, clients) {
		wg.Add(1)
		go func(cl, share int) {
			defer wg.Done()
			keys, err := zipf.New(uint64(keySpace), 0.99, uint64(cl)+1)
			if err != nil {
				panic(err) // static parameters; cannot fail
			}
			for i := 0; i < share; i++ {
				if _, err := c.GetOrLoad(context.Background(), keys.Next(), origin); err != nil {
					panic(err) // origin never fails in the simulation
				}
			}
		}(cl, share)
	}
	wg.Wait()

	return runStats{
		stats:   c.Stats(),
		size:    c.Len(),
		elapsed: time.Since(t0),
	}
}

// check verifies the two regression properties the old example violated.
func (r runStats) check(total, capacity int) error {
	if got := r.stats.Lookups(); got != int64(total) {
		return fmt.Errorf("accounting: hits(%d) + misses(%d) = %d, want exactly %d requests",
			r.stats.Hits, r.stats.Misses, got, total)
	}
	if r.size > capacity {
		return fmt.Errorf("unbounded growth: %d resident entries, capacity %d", r.size, capacity)
	}
	return nil
}

func main() {
	const (
		keySpace = 100000
		capacity = 4096 // deliberately far smaller than the key space
		ttl      = 500 * time.Millisecond
	)
	clients := runtime.GOMAXPROCS(0)

	r := run(requests, clients, keySpace, capacity, ttl)
	st := r.stats

	total := st.Lookups()
	fmt.Printf("requests:   %d in %.0fms (%.2f M req/s)\n",
		total, r.elapsed.Seconds()*1000, float64(total)/r.elapsed.Seconds()/1e6)
	fmt.Printf("hit rate:   %.1f%% (%d hits, %d misses)\n",
		100*st.HitRate(), st.Hits, st.Misses)
	fmt.Printf("origin:     %d fetches (%d stampedes suppressed)\n",
		st.Loads, st.StampedeSuppressed)
	fmt.Printf("cache size: %d entries (capacity %d, %d evicted, %d expired)\n",
		r.size, capacity, st.Evictions, st.Expired)

	if err := r.check(requests, capacity); err != nil {
		fmt.Fprintln(os.Stderr, "FAIL:", err)
		os.Exit(1)
	}
}
