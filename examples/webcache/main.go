// Webcache: a read-heavy concurrent cache in front of a slow "origin",
// the canonical deployment of a concurrent hash map. The cache layer is a
// lock-free split-ordered map (so cache hits never serialise), hit/miss
// accounting uses sharded counters (so stats never become the bottleneck —
// a direct instance of the survey's functionality-vs-performance point),
// and entries carry a TTL checked on read.
//
// The simulated clients draw keys from a Zipfian distribution, as real
// content popularity does.
//
// Run with:
//
//	go run ./examples/webcache
package main

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/cds-suite/cds/cmap"
	"github.com/cds-suite/cds/counter"
	"github.com/cds-suite/cds/internal/exampleenv"
	"github.com/cds-suite/cds/internal/zipf"
)

// requests is the simulated load; CDS_EXAMPLE_OPS overrides it so CI can
// smoke-run the example without paying for the full demonstration.
var requests = exampleenv.Ops(200000)

type entry struct {
	value   string
	expires time.Time
}

type cache struct {
	entries *cmap.SplitOrdered[uint64, entry]
	hits    *counter.Sharded
	misses  *counter.Sharded
	ttl     time.Duration
}

func newCache(ttl time.Duration) *cache {
	return &cache{
		entries: cmap.NewSplitOrdered[uint64, entry](),
		hits:    counter.NewSharded(0),
		misses:  counter.NewSharded(0),
		ttl:     ttl,
	}
}

// get returns the cached value or fetches it from the origin.
func (c *cache) get(key uint64, origin func(uint64) string) string {
	if e, ok := c.entries.Load(key); ok && time.Now().Before(e.expires) {
		c.hits.Inc()
		return e.value
	}
	c.misses.Inc()
	v := origin(key)
	c.entries.Store(key, entry{value: v, expires: time.Now().Add(c.ttl)})
	return v
}

func main() {
	const (
		keySpace = 100000
		ttl      = 500 * time.Millisecond
	)
	clients := runtime.GOMAXPROCS(0)

	c := newCache(ttl)
	origin := func(key uint64) string {
		// A "slow" origin: a microsecond-ish of fake work.
		time.Sleep(2 * time.Microsecond)
		return fmt.Sprintf("content-%d", key)
	}

	t0 := time.Now()
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			keys, err := zipf.New(keySpace, 0.99, uint64(cl)+1)
			if err != nil {
				panic(err) // static parameters; cannot fail
			}
			for i := 0; i < requests/clients; i++ {
				_ = c.get(keys.Next(), origin)
			}
		}(cl)
	}
	wg.Wait()
	elapsed := time.Since(t0)

	hits, misses := c.hits.Load(), c.misses.Load()
	total := hits + misses
	fmt.Printf("requests:   %d in %.0fms (%.2f M req/s)\n",
		total, elapsed.Seconds()*1000, float64(total)/elapsed.Seconds()/1e6)
	fmt.Printf("hit rate:   %.1f%% (%d hits, %d misses)\n",
		100*float64(hits)/float64(total), hits, misses)
	fmt.Printf("cache size: %d entries\n", c.entries.Len())
}
