package main

import (
	"testing"
	"time"
)

// TestSplitRequestsKeepsRemainder is the regression test for the dropped
// requests%clients remainder: every split must cover the total exactly,
// with shares differing by at most one.
func TestSplitRequestsKeepsRemainder(t *testing.T) {
	for _, tc := range []struct{ total, clients int }{
		{100, 3}, {7, 4}, {10000, 7}, {5, 8}, {1, 1}, {9, 3},
	} {
		shares := splitRequests(tc.total, tc.clients)
		if len(shares) != tc.clients {
			t.Fatalf("split(%d, %d): %d shares", tc.total, tc.clients, len(shares))
		}
		sum, min, max := 0, shares[0], shares[0]
		for _, s := range shares {
			sum += s
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		if sum != tc.total {
			t.Errorf("split(%d, %d) sums to %d, dropping %d requests",
				tc.total, tc.clients, sum, tc.total-sum)
		}
		if max-min > 1 {
			t.Errorf("split(%d, %d) is uneven: min %d, max %d", tc.total, tc.clients, min, max)
		}
	}
}

// TestRunSmoke runs the simulation at smoke scale and asserts the
// regression properties: exact hit/miss accounting (no dropped requests),
// a steady-state size bounded by capacity despite a key space far larger
// than the cache, and the weight/admission invariants of the
// byte-budgeted configuration.
func TestRunSmoke(t *testing.T) {
	const (
		total    = 5003 // prime: never divides evenly across clients
		clients  = 4
		keySpace = 10000
		capacity = 256
		budget   = 64 << 10 // small enough that the byte budget binds
	)
	r := run(total, clients, keySpace, capacity, budget, 50*time.Millisecond)
	if err := r.check(total, capacity); err != nil {
		t.Fatal(err)
	}
	if r.stats.Loads == 0 {
		t.Fatal("simulation performed no origin fetches")
	}
	if r.stats.WeightResident == 0 {
		t.Fatal("simulation left no resident weight despite caching loads")
	}
}
