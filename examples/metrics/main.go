// Metrics: a high-frequency metrics subsystem — the classic use case for
// relaxed counters. Request threads bump sharded counters (scalable, exact
// in quiescence) and a sloppy counter (O(1) reads, bounded error), while a
// seqlock publishes consistent multi-field snapshots to a reporter thread
// without ever blocking the writers.
//
// Run with:
//
//	go run ./examples/metrics
package main

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/cds-suite/cds/counter"
	"github.com/cds-suite/cds/internal/xrand"
	"github.com/cds-suite/cds/locks"
)

func main() {
	var (
		requests = counter.NewSharded(0)
		errors   = counter.NewSharded(0)
		inflight = counter.NewApprox(0, 32)
		snapshot = locks.NewSeqWords(2) // {requests, errors} published pairs
	)

	workers := runtime.GOMAXPROCS(0)
	const perWorker = 200000

	var wg sync.WaitGroup
	stopReporter := make(chan struct{})
	var reporterWG sync.WaitGroup

	// Reporter: reads consistent snapshots while writers run at full speed.
	reporterWG.Add(1)
	go func() {
		defer reporterWG.Done()
		out := make([]uint64, 2)
		ticker := time.NewTicker(20 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stopReporter:
				return
			case <-ticker.C:
				snapshot.Read(out)
				if out[0] < out[1] {
					// Never valid: errors cannot exceed requests. The
					// seqlock guarantees we cannot observe a torn pair.
					fmt.Printf("TORN SNAPSHOT: requests=%d errors=%d\n", out[0], out[1])
					return
				}
				fmt.Printf("  snapshot: %9d requests, %7d errors, ~%d in flight\n",
					out[0], out[1], inflight.Load())
			}
		}
	}()

	t0 := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := requests.Handle()
			eh := errors.Handle()
			rng := xrand.New(uint64(w) + 1)
			for i := 0; i < perWorker; i++ {
				inflight.Add(1)
				h.Inc()
				if rng.Uint64n(100) < 3 { // 3% error rate
					eh.Inc()
				}
				if i%1024 == 0 {
					// Periodically publish a consistent (requests, errors)
					// pair for the reporter.
					snapshot.Write([]uint64{uint64(requests.Load()), uint64(errors.Load())})
				}
				inflight.Add(-1)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	close(stopReporter)
	reporterWG.Wait()

	total := requests.Load()
	errs := errors.Load()
	fmt.Printf("final:    %d requests (%.1f M/s), %d errors (%.2f%%), in-flight drained to %d\n",
		total, float64(total)/elapsed.Seconds()/1e6,
		errs, 100*float64(errs)/float64(total), inflight.LoadExact())
}
