// Scheduler: a fork-join computation on pool.WorkStealing — the executor
// that grew out of this example's original hand-rolled deque loop. Each
// pool worker owns a Chase–Lev deque: tasks forked with Worker.Spawn push
// to the spawning worker's bottom and pop back LIFO (cache-warm), while
// idle workers steal FIFO from victims' tops and park when the whole pool
// runs dry. The same computation runs on a single shared locked queue for
// comparison, and the pool's scheduling gauges (local hits, steals,
// parks) show where the speedup comes from.
//
// The task graph is a recursive pseudo-work tree: every task either
// spawns two children or burns a few hundred nanoseconds, a stand-in for
// fork/join workloads (parallel quicksort, tree traversals).
//
// Run with:
//
//	go run ./examples/scheduler
package main

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cds-suite/cds/internal/exampleenv"
	"github.com/cds-suite/cds/internal/xrand"
	"github.com/cds-suite/cds/pool"
	"github.com/cds-suite/cds/queue"
)

// task is one unit of work: depth controls whether it forks or computes.
type task struct {
	depth int
	seed  uint64
}

const (
	leafSpins  = 300
	numWorkers = 0 // 0 = GOMAXPROCS
)

// forkDepth sizes the tree to ~CDS_EXAMPLE_OPS leaves (default 2^14).
var forkDepth = bits.Len(uint(exampleenv.Ops(1<<14))) - 1

func main() {
	workers := numWorkers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	stealing, stats := runWorkStealing(workers)
	shared := runSharedQueue(workers)

	fmt.Printf("work-stealing (pool):  %8.2fms\n", stealing.Seconds()*1000)
	fmt.Printf("shared locked queue:   %8.2fms\n", shared.Seconds()*1000)
	fmt.Printf("speedup: %.2fx\n", shared.Seconds()/stealing.Seconds())
	fmt.Printf("pool gauges: local=%d steals=%d inject=%d parks=%d\n",
		stats.LocalHits, stats.Steals, stats.InjectHits, stats.Parks)
}

// leafWork simulates a small computation.
func leafWork(seed uint64) uint64 {
	v := seed
	for i := 0; i < leafSpins; i++ {
		v = xrand.SplitMix64(&v)
	}
	return v
}

// runWorkStealing executes the task tree on the work-stealing executor:
// Submit injects the root, Spawn forks children onto the running worker's
// own deque, and Shutdown's drain is the join.
func runWorkStealing(workers int) (time.Duration, pool.Stats) {
	var sink atomic.Uint64
	p := pool.NewWorkStealing(func(w *pool.Worker[task], t task) {
		if t.depth == 0 {
			sink.Add(leafWork(t.seed))
			return
		}
		w.Spawn(task{depth: t.depth - 1, seed: t.seed*2 + 1})
		w.Spawn(task{depth: t.depth - 1, seed: t.seed * 2})
	}, pool.WithWorkers(workers))

	t0 := time.Now()
	p.Submit(task{depth: forkDepth, seed: 42})
	if err := p.Shutdown(context.Background()); err != nil {
		panic(err) // background context: a drain cannot be cancelled
	}
	elapsed := time.Since(t0)
	_ = sink.Load()
	return elapsed, p.Stats()
}

// runSharedQueue executes the same tree through one coarse-locked queue.
func runSharedQueue(workers int) time.Duration {
	q := queue.NewMutex[task]()
	var (
		pending atomic.Int64
		sink    atomic.Uint64
	)
	pending.Store(1)
	q.Enqueue(task{depth: forkDepth, seed: 42})

	t0 := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t, ok := q.TryDequeue()
				if !ok {
					if pending.Load() == 0 {
						return
					}
					continue
				}
				if t.depth == 0 {
					sink.Add(leafWork(t.seed))
					pending.Add(-1)
					continue
				}
				q.Enqueue(task{depth: t.depth - 1, seed: t.seed * 2})
				q.Enqueue(task{depth: t.depth - 1, seed: t.seed*2 + 1})
				pending.Add(1)
			}
		}()
	}
	wg.Wait()
	_ = sink.Load()
	return time.Since(t0)
}
