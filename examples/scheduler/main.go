// Scheduler: a work-stealing task scheduler built on the Chase–Lev deque —
// the workload that motivated the deque's design. Each worker owns a deque;
// it pushes spawned subtasks at the bottom and pops them LIFO (cache-warm),
// while idle workers steal FIFO from the top of victims' deques. The same
// computation runs on a single shared locked queue for comparison.
//
// The task graph is a recursive pseudo-work tree: every task either spawns
// two children or burns a few hundred nanoseconds, a stand-in for fork/join
// workloads (parallel quicksort, tree traversals).
//
// Run with:
//
//	go run ./examples/scheduler
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cds-suite/cds/deque"
	"github.com/cds-suite/cds/internal/xrand"
	"github.com/cds-suite/cds/queue"
)

// task is one unit of work: depth controls whether it forks or computes.
type task struct {
	depth int
	seed  uint64
}

const (
	forkDepth  = 14 // 2^14 leaf tasks
	leafSpins  = 300
	numWorkers = 0 // 0 = GOMAXPROCS
)

func main() {
	workers := numWorkers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	stealing := runWorkStealing(workers)
	shared := runSharedQueue(workers)

	fmt.Printf("work-stealing (Chase–Lev): %8.2fms\n", stealing.Seconds()*1000)
	fmt.Printf("shared locked queue:       %8.2fms\n", shared.Seconds()*1000)
	fmt.Printf("speedup: %.2fx\n", shared.Seconds()/stealing.Seconds())
}

// leafWork simulates a small computation.
func leafWork(seed uint64) uint64 {
	v := seed
	for i := 0; i < leafSpins; i++ {
		v = xrand.SplitMix64(&v)
	}
	return v
}

// runWorkStealing executes the task tree on per-worker deques with
// stealing.
func runWorkStealing(workers int) time.Duration {
	deques := make([]*deque.ChaseLev[task], workers)
	for i := range deques {
		deques[i] = deque.NewChaseLev[task](256)
	}
	var (
		pending atomic.Int64 // tasks spawned but not finished
		sink    atomic.Uint64
	)
	pending.Store(1)
	deques[0].PushBottom(task{depth: forkDepth, seed: 42})

	t0 := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			my := deques[w]
			rng := xrand.New(uint64(w) + 1)
			for {
				t, ok := my.TryPopBottom()
				if !ok {
					// Steal from a random victim.
					victim := rng.Intn(workers)
					if victim == w {
						if pending.Load() == 0 {
							return
						}
						continue
					}
					t, ok = deques[victim].TryPopTop()
					if !ok {
						if pending.Load() == 0 {
							return
						}
						continue
					}
				}
				if t.depth == 0 {
					sink.Add(leafWork(t.seed))
					pending.Add(-1)
					continue
				}
				// Fork: push both children (net +1 pending).
				my.PushBottom(task{depth: t.depth - 1, seed: t.seed*2 + 1})
				my.PushBottom(task{depth: t.depth - 1, seed: t.seed * 2})
				pending.Add(1)
			}
		}(w)
	}
	wg.Wait()
	_ = sink.Load()
	return time.Since(t0)
}

// runSharedQueue executes the same tree through one coarse-locked queue.
func runSharedQueue(workers int) time.Duration {
	q := queue.NewMutex[task]()
	var (
		pending atomic.Int64
		sink    atomic.Uint64
	)
	pending.Store(1)
	q.Enqueue(task{depth: forkDepth, seed: 42})

	t0 := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t, ok := q.TryDequeue()
				if !ok {
					if pending.Load() == 0 {
						return
					}
					continue
				}
				if t.depth == 0 {
					sink.Add(leafWork(t.seed))
					pending.Add(-1)
					continue
				}
				q.Enqueue(task{depth: t.depth - 1, seed: t.seed * 2})
				q.Enqueue(task{depth: t.depth - 1, seed: t.seed*2 + 1})
				pending.Add(1)
			}
		}()
	}
	wg.Wait()
	_ = sink.Load()
	return time.Since(t0)
}
