package lincheck

import "testing"

// h builds an operation quickly for hand-written histories.
func h(client int, input, output any, call, ret int64) Operation {
	return Operation{ClientID: client, Input: input, Output: output, Call: call, Return: ret}
}

func TestEmptyHistory(t *testing.T) {
	if res := Check(RegisterModel(), nil); !res.Ok {
		t.Fatalf("empty history rejected: %s", res.Info)
	}
}

func TestSequentialRegister(t *testing.T) {
	history := []Operation{
		h(0, RegisterWrite{Value: 5}, nil, 1, 2),
		h(0, RegisterRead{}, 5, 3, 4),
		h(0, RegisterWrite{Value: 9}, nil, 5, 6),
		h(0, RegisterRead{}, 9, 7, 8),
	}
	if res := Check(RegisterModel(), history); !res.Ok {
		t.Fatalf("legal sequential history rejected: %s", res.Info)
	}
}

func TestStaleReadRejected(t *testing.T) {
	// Read of 0 strictly after a write of 5 completed: not linearizable.
	history := []Operation{
		h(0, RegisterWrite{Value: 5}, nil, 1, 2),
		h(1, RegisterRead{}, 0, 3, 4),
	}
	if res := Check(RegisterModel(), history); res.Ok {
		t.Fatal("stale read accepted")
	}
}

func TestOverlappingReadMayGoEitherWay(t *testing.T) {
	// A read overlapping a write may return either the old or new value.
	for _, readVal := range []int{0, 5} {
		history := []Operation{
			h(0, RegisterWrite{Value: 5}, nil, 1, 10),
			h(1, RegisterRead{}, readVal, 2, 9),
		}
		if res := Check(RegisterModel(), history); !res.Ok {
			t.Fatalf("overlapping read of %d rejected: %s", readVal, res.Info)
		}
	}
}

func TestFutureReadRejected(t *testing.T) {
	// Read returns 5 strictly before any write of 5 begins.
	history := []Operation{
		h(0, RegisterRead{}, 5, 1, 2),
		h(1, RegisterWrite{Value: 5}, nil, 3, 4),
	}
	if res := Check(RegisterModel(), history); res.Ok {
		t.Fatal("future read accepted")
	}
}

func TestCounterInterleavings(t *testing.T) {
	// Two concurrent +1s and a later load of 2: linearizable.
	ok := []Operation{
		h(0, CounterAdd{Delta: 1}, nil, 1, 5),
		h(1, CounterAdd{Delta: 1}, nil, 2, 6),
		h(2, CounterLoad{}, int64(2), 7, 8),
	}
	if res := Check(CounterModel(), ok); !res.Ok {
		t.Fatalf("legal counter history rejected: %s", res.Info)
	}
	// Load of 3 with only two increments: impossible.
	bad := []Operation{
		h(0, CounterAdd{Delta: 1}, nil, 1, 5),
		h(1, CounterAdd{Delta: 1}, nil, 2, 6),
		h(2, CounterLoad{}, int64(3), 7, 8),
	}
	if res := Check(CounterModel(), bad); res.Ok {
		t.Fatal("impossible counter load accepted")
	}
}

func TestQueueFIFOViolationCaught(t *testing.T) {
	// Enqueue 1 then 2 sequentially; dequeues observing 2 before 1
	// sequentially violate FIFO.
	bad := []Operation{
		h(0, QueueEnqueue{Value: 1}, nil, 1, 2),
		h(0, QueueEnqueue{Value: 2}, nil, 3, 4),
		h(1, QueueDequeue{}, ValueOK{Value: 2, OK: true}, 5, 6),
		h(1, QueueDequeue{}, ValueOK{Value: 1, OK: true}, 7, 8),
	}
	if res := Check(QueueModel(), bad); res.Ok {
		t.Fatal("FIFO violation accepted")
	}
	good := []Operation{
		h(0, QueueEnqueue{Value: 1}, nil, 1, 2),
		h(0, QueueEnqueue{Value: 2}, nil, 3, 4),
		h(1, QueueDequeue{}, ValueOK{Value: 1, OK: true}, 5, 6),
		h(1, QueueDequeue{}, ValueOK{Value: 2, OK: true}, 7, 8),
	}
	if res := Check(QueueModel(), good); !res.Ok {
		t.Fatalf("legal FIFO history rejected: %s", res.Info)
	}
}

func TestQueueConcurrentEnqueueOrderFree(t *testing.T) {
	// Concurrent enqueues can linearize in either order, so either dequeue
	// order must be accepted.
	for _, first := range []int{1, 2} {
		second := 3 - first
		history := []Operation{
			h(0, QueueEnqueue{Value: 1}, nil, 1, 10),
			h(1, QueueEnqueue{Value: 2}, nil, 2, 9),
			h(2, QueueDequeue{}, ValueOK{Value: first, OK: true}, 11, 12),
			h(2, QueueDequeue{}, ValueOK{Value: second, OK: true}, 13, 14),
		}
		if res := Check(QueueModel(), history); !res.Ok {
			t.Fatalf("valid dequeue order %d,%d rejected: %s", first, second, res.Info)
		}
	}
}

func TestStackLIFO(t *testing.T) {
	good := []Operation{
		h(0, StackPush{Value: 1}, nil, 1, 2),
		h(0, StackPush{Value: 2}, nil, 3, 4),
		h(1, StackPop{}, ValueOK{Value: 2, OK: true}, 5, 6),
		h(1, StackPop{}, ValueOK{Value: 1, OK: true}, 7, 8),
	}
	if res := Check(StackModel(), good); !res.Ok {
		t.Fatalf("legal LIFO history rejected: %s", res.Info)
	}
	bad := []Operation{
		h(0, StackPush{Value: 1}, nil, 1, 2),
		h(0, StackPush{Value: 2}, nil, 3, 4),
		h(1, StackPop{}, ValueOK{Value: 1, OK: true}, 5, 6),
		h(1, StackPop{}, ValueOK{Value: 2, OK: true}, 7, 8),
	}
	if res := Check(StackModel(), bad); res.Ok {
		t.Fatal("LIFO violation accepted")
	}
}

func TestDequeSemantics(t *testing.T) {
	// Push 1 then 2 at the bottom: the top (steal end) must yield 1, the
	// bottom 2.
	good := []Operation{
		h(0, DequePushBottom{Value: 1}, nil, 1, 2),
		h(0, DequePushBottom{Value: 2}, nil, 3, 4),
		h(1, DequePopTop{}, ValueOK{Value: 1, OK: true}, 5, 6),
		h(0, DequePopBottom{}, ValueOK{Value: 2, OK: true}, 7, 8),
		h(0, DequePopBottom{}, ValueOK{OK: false}, 9, 10),
	}
	if res := Check(DequeModel(), good); !res.Ok {
		t.Fatalf("legal deque history rejected: %s", res.Info)
	}
	// A steal returning the freshest element while an older one remains
	// sequentially before it is a top/bottom mix-up.
	bad := []Operation{
		h(0, DequePushBottom{Value: 1}, nil, 1, 2),
		h(0, DequePushBottom{Value: 2}, nil, 3, 4),
		h(1, DequePopTop{}, ValueOK{Value: 2, OK: true}, 5, 6),
		h(1, DequePopTop{}, ValueOK{Value: 1, OK: true}, 7, 8),
	}
	if res := Check(DequeModel(), bad); res.Ok {
		t.Fatal("steal-order violation accepted")
	}
	// An element must not be taken from both ends.
	double := []Operation{
		h(0, DequePushBottom{Value: 1}, nil, 1, 2),
		h(1, DequePopTop{}, ValueOK{Value: 1, OK: true}, 3, 4),
		h(0, DequePopBottom{}, ValueOK{Value: 1, OK: true}, 5, 6),
	}
	if res := Check(DequeModel(), double); res.Ok {
		t.Fatal("double delivery accepted")
	}
}

func TestPQSemantics(t *testing.T) {
	// DeleteMin must deliver ascending values regardless of insert order.
	good := []Operation{
		h(0, PQInsert{Value: 5}, nil, 1, 2),
		h(0, PQInsert{Value: 3}, nil, 3, 4),
		h(1, PQDeleteMin{}, ValueOK{Value: 3, OK: true}, 5, 6),
		h(1, PQDeleteMin{}, ValueOK{Value: 5, OK: true}, 7, 8),
		h(1, PQDeleteMin{}, ValueOK{OK: false}, 9, 10),
	}
	if res := Check(PQModel(), good); !res.Ok {
		t.Fatalf("legal priority-queue history rejected: %s", res.Info)
	}
	bad := []Operation{
		h(0, PQInsert{Value: 5}, nil, 1, 2),
		h(0, PQInsert{Value: 3}, nil, 3, 4),
		h(1, PQDeleteMin{}, ValueOK{Value: 5, OK: true}, 5, 6),
	}
	if res := Check(PQModel(), bad); res.Ok {
		t.Fatal("non-minimum delivery accepted")
	}
	// Duplicates are a multiset: both instances come out.
	dup := []Operation{
		h(0, PQInsert{Value: 2}, nil, 1, 2),
		h(0, PQInsert{Value: 2}, nil, 3, 4),
		h(1, PQDeleteMin{}, ValueOK{Value: 2, OK: true}, 5, 6),
		h(1, PQDeleteMin{}, ValueOK{Value: 2, OK: true}, 7, 8),
	}
	if res := Check(PQModel(), dup); !res.Ok {
		t.Fatalf("duplicate minima rejected: %s", res.Info)
	}
}

func TestSetSemantics(t *testing.T) {
	good := []Operation{
		h(0, SetAdd{Key: 1}, true, 1, 2),
		h(1, SetAdd{Key: 1}, false, 3, 4),
		h(0, SetContains{Key: 1}, true, 5, 6),
		h(1, SetRemove{Key: 1}, true, 7, 8),
		h(0, SetRemove{Key: 1}, false, 9, 10),
		h(1, SetContains{Key: 1}, false, 11, 12),
	}
	if res := Check(SetModel(), good); !res.Ok {
		t.Fatalf("legal set history rejected: %s", res.Info)
	}
	bad := []Operation{
		h(0, SetAdd{Key: 1}, true, 1, 2),
		h(1, SetContains{Key: 1}, false, 3, 4), // must see it
	}
	if res := Check(SetModel(), bad); res.Ok {
		t.Fatal("lost insert accepted")
	}
}

func TestMapSemantics(t *testing.T) {
	good := []Operation{
		h(0, MapStore{Key: 1, Value: 10}, nil, 1, 2),
		h(1, MapLoad{Key: 1}, ValueOK{Value: 10, OK: true}, 3, 4),
		h(0, MapStore{Key: 1, Value: 20}, nil, 5, 6),
		h(1, MapLoad{Key: 1}, ValueOK{Value: 20, OK: true}, 7, 8),
		h(0, MapDelete{Key: 1}, true, 9, 10),
		h(1, MapLoad{Key: 1}, ValueOK{}, 11, 12),
	}
	if res := Check(MapModel(), good); !res.Ok {
		t.Fatalf("legal map history rejected: %s", res.Info)
	}
	bad := []Operation{
		h(0, MapStore{Key: 1, Value: 10}, nil, 1, 2),
		h(0, MapStore{Key: 1, Value: 20}, nil, 3, 4),
		h(1, MapLoad{Key: 1}, ValueOK{Value: 10, OK: true}, 5, 6), // stale
	}
	if res := Check(MapModel(), bad); res.Ok {
		t.Fatal("stale map read accepted")
	}
}

func TestCacheModelLossySemantics(t *testing.T) {
	// Eviction may drop any entry: a miss on a stored key is legal...
	good := []Operation{
		h(0, CacheSet{Key: 1, Value: 10}, nil, 1, 2),
		h(1, CacheGet{Key: 1}, ValueOK{}, 3, 4), // evicted: legal miss
		h(1, CacheGet{Key: 1}, ValueOK{}, 5, 6), // ...and it stays gone
		h(0, CacheSet{Key: 1, Value: 20}, nil, 7, 8),
		h(1, CacheGet{Key: 1}, ValueOK{Value: 20, OK: true}, 9, 10),
	}
	if res := Check(CacheModel(), good); !res.Ok {
		t.Fatalf("legal lossy history rejected: %s", res.Info)
	}
	// ...but a dropped key must not resurrect without a Set.
	bad := []Operation{
		h(0, CacheSet{Key: 1, Value: 10}, nil, 1, 2),
		h(1, CacheGet{Key: 1}, ValueOK{}, 3, 4),
		h(1, CacheGet{Key: 1}, ValueOK{Value: 10, OK: true}, 5, 6),
	}
	if res := Check(CacheModel(), bad); res.Ok {
		t.Fatal("resurrected entry accepted")
	}
	// A hit must return the latest value, lossiness notwithstanding.
	bad = []Operation{
		h(0, CacheSet{Key: 1, Value: 10}, nil, 1, 2),
		h(0, CacheSet{Key: 1, Value: 20}, nil, 3, 4),
		h(1, CacheGet{Key: 1}, ValueOK{Value: 10, OK: true}, 5, 6),
	}
	if res := Check(CacheModel(), bad); res.Ok {
		t.Fatal("stale cache read accepted")
	}
	// Delete(true) needs a live entry; a hit cannot follow the delete.
	good = []Operation{
		h(0, CacheSet{Key: 1, Value: 10}, nil, 1, 2),
		h(0, CacheDelete{Key: 1}, true, 3, 4),
		h(1, CacheGet{Key: 1}, ValueOK{}, 5, 6),
		h(0, CacheDelete{Key: 1}, false, 7, 8), // already gone
	}
	if res := Check(CacheModel(), good); !res.Ok {
		t.Fatalf("legal delete history rejected: %s", res.Info)
	}
	bad = []Operation{
		h(0, CacheDelete{Key: 1}, true, 1, 2), // never stored
	}
	if res := Check(CacheModel(), bad); res.Ok {
		t.Fatal("delete of never-stored key accepted")
	}
	// Delete(false) marks the entry evicted: it must stay gone too.
	bad = []Operation{
		h(0, CacheSet{Key: 1, Value: 10}, nil, 1, 2),
		h(0, CacheDelete{Key: 1}, false, 3, 4),
		h(1, CacheGet{Key: 1}, ValueOK{Value: 10, OK: true}, 5, 6),
	}
	if res := Check(CacheModel(), bad); res.Ok {
		t.Fatal("entry survived an observed eviction")
	}
}

// TestCacheModelWeightRejection pins how the weighted cache's rejection
// paths map onto the lossy model: a Set whose weight exceeds the budget
// linearizes as Set-then-immediate-loss (legal), a rejected *update* must
// take the old value with it (a later hit on it is a stale read), and a
// multi-victim eviction is just several independent losses, each of which
// must stay gone.
func TestCacheModelWeightRejection(t *testing.T) {
	// An over-weight insert never becomes readable: Set, then misses
	// forever (until re-Set) — the history the weighted cache produces.
	good := []Operation{
		h(0, CacheSet{Key: 1, Value: 10}, nil, 1, 2), // weight > budget: rejected
		h(1, CacheGet{Key: 1}, ValueOK{}, 3, 4),
		h(1, CacheGet{Key: 1}, ValueOK{}, 5, 6),
	}
	if res := Check(CacheModel(), good); !res.Ok {
		t.Fatalf("weight-rejected insert history rejected: %s", res.Info)
	}
	// A rejected update removes the old entry. If the implementation kept
	// it, a later Get would return the value the second Set overwrote —
	// exactly the stale-read history the model must refuse.
	bad := []Operation{
		h(0, CacheSet{Key: 1, Value: 10}, nil, 1, 2),               // admitted
		h(1, CacheGet{Key: 1}, ValueOK{Value: 10, OK: true}, 3, 4), // resident
		h(0, CacheSet{Key: 1, Value: 20}, nil, 5, 6),               // update outgrew the budget
		h(1, CacheGet{Key: 1}, ValueOK{Value: 10, OK: true}, 7, 8), // stale survivor: illegal
	}
	if res := Check(CacheModel(), bad); res.Ok {
		t.Fatal("stale value surviving a weight-rejected update accepted")
	}
	// The same history with the rejected update observed as a miss is the
	// correct outcome.
	good = []Operation{
		h(0, CacheSet{Key: 1, Value: 10}, nil, 1, 2),
		h(1, CacheGet{Key: 1}, ValueOK{Value: 10, OK: true}, 3, 4),
		h(0, CacheSet{Key: 1, Value: 20}, nil, 5, 6),
		h(1, CacheGet{Key: 1}, ValueOK{}, 7, 8),
	}
	if res := Check(CacheModel(), good); !res.Ok {
		t.Fatalf("weight-rejected update history rejected: %s", res.Info)
	}
	// One heavy insert evicting two victims: both losses are legal, and
	// both keys must then stay gone while the heavy entry serves hits.
	good = []Operation{
		h(0, CacheSet{Key: 1, Value: 10}, nil, 1, 2),
		h(0, CacheSet{Key: 2, Value: 20}, nil, 3, 4),
		h(0, CacheSet{Key: 3, Value: 30}, nil, 5, 6), // heavy: evicts 1 and 2
		h(1, CacheGet{Key: 1}, ValueOK{}, 7, 8),
		h(1, CacheGet{Key: 2}, ValueOK{}, 9, 10),
		h(1, CacheGet{Key: 3}, ValueOK{Value: 30, OK: true}, 11, 12),
		h(1, CacheGet{Key: 1}, ValueOK{}, 13, 14), // evicted keys stay gone
	}
	if res := Check(CacheModel(), good); !res.Ok {
		t.Fatalf("multi-victim eviction history rejected: %s", res.Info)
	}
	bad = []Operation{
		h(0, CacheSet{Key: 1, Value: 10}, nil, 1, 2),
		h(0, CacheSet{Key: 3, Value: 30}, nil, 3, 4), // heavy: evicts 1
		h(1, CacheGet{Key: 1}, ValueOK{}, 5, 6),
		h(1, CacheGet{Key: 1}, ValueOK{Value: 10, OK: true}, 7, 8), // resurrection: illegal
	}
	if res := Check(CacheModel(), bad); res.Ok {
		t.Fatal("victim resurrected after a multi-victim eviction accepted")
	}
}

func TestInvalidOperationTimes(t *testing.T) {
	bad := []Operation{h(0, RegisterRead{}, 0, 5, 5)}
	if res := Check(RegisterModel(), bad); res.Ok {
		t.Fatal("Call >= Return accepted")
	}
}

func TestAmbiguousPendingWindowRegression(t *testing.T) {
	// Three mutually overlapping counter ops where only one interleaving
	// is legal: exercises backtracking through the cache.
	history := []Operation{
		h(0, CounterAdd{Delta: 5}, nil, 1, 100),
		h(1, CounterLoad{}, int64(5), 2, 99),
		h(2, CounterAdd{Delta: -5}, nil, 3, 98),
		h(0, CounterLoad{}, int64(0), 101, 102),
	}
	// Legal: Add(5); Load=5; Add(-5); Load=0.
	if res := Check(CounterModel(), history); !res.Ok {
		t.Fatalf("backtracking case rejected: %s", res.Info)
	}
}

func TestSyncQueueRendezvousPairing(t *testing.T) {
	// A fulfilled put paired with an overlapping take: legal.
	history := []Operation{
		h(0, SyncPut{Value: 7}, true, 1, 10),
		h(1, SyncTake{}, ValueOK{Value: 7, OK: true}, 2, 9),
	}
	if res := Check(SyncQueueModel(), history); !res.Ok {
		t.Fatalf("legal rendezvous rejected: %s", res.Info)
	}
	// A take of a value nobody put: manufactured data.
	history = []Operation{
		h(0, SyncPut{Value: 7}, true, 1, 10),
		h(1, SyncTake{}, ValueOK{Value: 8, OK: true}, 2, 9),
	}
	if res := Check(SyncQueueModel(), history); res.Ok {
		t.Fatal("take of wrong value accepted")
	}
	// Cancelled halves are no-ops: legal in any state.
	history = []Operation{
		h(0, SyncPut{Value: 7}, false, 1, 2),
		h(1, SyncTake{}, ValueOK{}, 3, 4),
	}
	if res := Check(SyncQueueModel(), history); !res.Ok {
		t.Fatalf("cancelled halves rejected: %s", res.Info)
	}
	// Two fulfilled puts strictly before a single take: the second put
	// had no free slot in any real-time-respecting order.
	history = []Operation{
		h(0, SyncPut{Value: 1}, true, 1, 2),
		h(1, SyncPut{Value: 2}, true, 3, 4),
		h(2, SyncTake{}, ValueOK{Value: 1, OK: true}, 5, 6),
	}
	if res := Check(SyncQueueModel(), history); res.Ok {
		t.Fatal("two sequential fulfilled puts with one take accepted")
	}
	// A lone trailing fulfilled put is accepted: linearizability cannot
	// demand a partner that would only appear later; the integration
	// tests' conservation checks cover the missing-partner case.
	history = []Operation{
		h(0, SyncPut{Value: 7}, true, 1, 2),
	}
	if res := Check(SyncQueueModel(), history); !res.Ok {
		t.Fatalf("trailing in-transit put rejected: %s", res.Info)
	}
}

func TestPoolModelConservation(t *testing.T) {
	// Legal: submit two tasks, run each exactly once, in either order.
	history := []Operation{
		h(0, PoolSubmit{ID: 1}, true, 1, 2),
		h(0, PoolSubmit{ID: 2}, true, 3, 4),
		h(1, PoolExec{ID: 2}, nil, 5, 6),
		h(2, PoolExec{ID: 1}, nil, 7, 8),
	}
	if res := Check(PoolModel(), history); !res.Ok {
		t.Fatalf("legal out-of-order execution rejected: %s", res.Info)
	}
	// A task that runs twice breaks conservation.
	history = []Operation{
		h(0, PoolSubmit{ID: 1}, true, 1, 2),
		h(1, PoolExec{ID: 1}, nil, 3, 4),
		h(2, PoolExec{ID: 1}, nil, 5, 6),
	}
	if res := Check(PoolModel(), history); res.Ok {
		t.Fatal("double execution accepted")
	}
	// A task that runs strictly before its submission window opens.
	history = []Operation{
		h(1, PoolExec{ID: 1}, nil, 1, 2),
		h(0, PoolSubmit{ID: 1}, true, 3, 4),
	}
	if res := Check(PoolModel(), history); res.Ok {
		t.Fatal("execution before submission accepted")
	}
	// Overlapping submit and exec: the exec may linearize after the
	// submit inside the shared window.
	history = []Operation{
		h(0, PoolSubmit{ID: 1}, true, 1, 10),
		h(1, PoolExec{ID: 1}, nil, 2, 9),
	}
	if res := Check(PoolModel(), history); !res.Ok {
		t.Fatalf("overlapping submit/exec rejected: %s", res.Info)
	}
	// A rejected submission is a no-op; running the task anyway is a bug.
	history = []Operation{
		h(0, PoolSubmit{ID: 1}, false, 1, 2),
		h(1, PoolExec{ID: 1}, nil, 3, 4),
	}
	if res := Check(PoolModel(), history); res.Ok {
		t.Fatal("execution of a rejected task accepted")
	}
}
