package lincheck_test

import (
	"fmt"

	"github.com/cds-suite/cds/lincheck"
)

// Check validates a recorded history against a sequential model. Here two
// overlapping operations permit a linearization, but a stale read after a
// completed write does not.
func ExampleCheck() {
	// A write of 5 fully precedes a read: the read must return 5.
	stale := []lincheck.Operation{
		{ClientID: 0, Input: lincheck.RegisterWrite{Value: 5}, Call: 1, Return: 2},
		{ClientID: 1, Input: lincheck.RegisterRead{}, Output: 0, Call: 3, Return: 4},
	}
	fmt.Println("stale read ok?", lincheck.Check(lincheck.RegisterModel(), stale).Ok)

	// The same read overlapping the write may return the old value.
	overlapping := []lincheck.Operation{
		{ClientID: 0, Input: lincheck.RegisterWrite{Value: 5}, Call: 1, Return: 4},
		{ClientID: 1, Input: lincheck.RegisterRead{}, Output: 0, Call: 2, Return: 3},
	}
	fmt.Println("overlapping read ok?", lincheck.Check(lincheck.RegisterModel(), overlapping).Ok)
	// Output:
	// stale read ok? false
	// overlapping read ok? true
}

// Recorder captures histories from live concurrent runs.
func ExampleRecorder() {
	rec := lincheck.NewRecorder(1)
	p := rec.Begin(0, lincheck.QueueEnqueue{Value: 7})
	// ... perform the real operation here ...
	p.End(nil)

	history := rec.History()
	fmt.Println(len(history), history[0].Call < history[0].Return)
	// Output: 1 true
}
