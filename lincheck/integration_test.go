package lincheck_test

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	cds "github.com/cds-suite/cds"
	"github.com/cds-suite/cds/cache"
	"github.com/cds-suite/cds/cmap"
	"github.com/cds-suite/cds/contend"
	"github.com/cds-suite/cds/counter"
	"github.com/cds-suite/cds/deque"
	"github.com/cds-suite/cds/dual"
	"github.com/cds-suite/cds/internal/xrand"
	"github.com/cds-suite/cds/lincheck"
	"github.com/cds-suite/cds/list"
	"github.com/cds-suite/cds/pool"
	"github.com/cds-suite/cds/pqueue"
	"github.com/cds-suite/cds/queue"
	"github.com/cds-suite/cds/reclaim"
	"github.com/cds-suite/cds/skiplist"
	"github.com/cds-suite/cds/stack"
	"github.com/cds-suite/cds/stm"
)

// Reclamation-enabled variants run with aggressive thresholds (advance or
// scan on nearly every retire) so nodes are retired — and, where recycling
// is on, actually reused — inside the tiny recorded windows. Any
// linearizability violation introduced by premature reuse (an ABA the
// guard protocol failed to prevent) shows up as an impossible history.
func ebrAggressive() *reclaim.EBR {
	d := reclaim.NewEBR()
	d.SetAdvanceInterval(1)
	return d
}

func hpAggressive() *reclaim.HP {
	d := reclaim.NewHP()
	d.SetScanThreshold(1)
	return d
}

// The integration strategy: many small windows (few clients, few ops each)
// recorded from the real structures under genuine concurrency, each window
// checked exhaustively. Small windows keep the exponential checker fast
// while still catching ordering bugs, which manifest within tiny
// neighbourhoods of conflicting operations.
const (
	linClients    = 3
	linOpsPerCli  = 4
	linRounds     = 40
	linKeyRange   = 3 // tiny key space maximises conflicts
	linValueRange = 4
)

func runWindows(t *testing.T, model lincheck.Model, mkOps func(round int) func(client int, rng *xrand.Rand, rec *lincheck.Recorder)) {
	t.Helper()
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs parallelism to record meaningful histories")
	}
	for round := 0; round < linRounds; round++ {
		rec := lincheck.NewRecorder(linClients)
		ops := mkOps(round)
		var wg sync.WaitGroup
		for c := 0; c < linClients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rng := xrand.New(uint64(round*linClients+c) + 1)
				ops(c, rng, rec)
			}(c)
		}
		wg.Wait()
		if res := lincheck.Check(model, rec.History()); !res.Ok {
			t.Fatalf("round %d: %s", round, res.Info)
		}
	}
}

func TestLinearizableStacks(t *testing.T) {
	impls := map[string]func() cds.Stack[int]{
		"Mutex":       func() cds.Stack[int] { return stack.NewMutex[int]() },
		"Treiber":     func() cds.Stack[int] { return stack.NewTreiber[int]() },
		"Elimination": func() cds.Stack[int] { return stack.NewElimination[int](2, 16) },
	}
	for name, mk := range impls {
		t.Run(name, func(t *testing.T) {
			runWindows(t, lincheck.StackModel(), func(int) func(int, *xrand.Rand, *lincheck.Recorder) {
				s := mk()
				return func(client int, rng *xrand.Rand, rec *lincheck.Recorder) {
					for i := 0; i < linOpsPerCli; i++ {
						if rng.Intn(2) == 0 {
							v := rng.Intn(linValueRange)
							p := rec.Begin(client, lincheck.StackPush{Value: v})
							s.Push(v)
							p.End(nil)
						} else {
							p := rec.Begin(client, lincheck.StackPop{})
							v, ok := s.TryPop()
							p.End(lincheck.ValueOK{Value: v, OK: ok})
						}
					}
				}
			})
		})
	}
}

func TestLinearizableQueues(t *testing.T) {
	impls := map[string]func() cds.Queue[int]{
		"Mutex":   func() cds.Queue[int] { return queue.NewMutex[int]() },
		"TwoLock": func() cds.Queue[int] { return queue.NewTwoLock[int]() },
		"MS":      func() cds.Queue[int] { return queue.NewMS[int]() },
		// The narrow handoff array and small spin budget force the
		// elimination path to fire inside the tiny windows: FIFO
		// elimination is only legal on an empty queue, which is precisely
		// the validation the checker would catch cheating on.
		"ElimMS": func() cds.Queue[int] { return queue.NewElimination[int](2, 16) },
		"MS+EBR": func() cds.Queue[int] {
			return queue.NewMS[int](queue.WithReclaim(ebrAggressive()), queue.WithRecycling())
		},
		"MS+HP": func() cds.Queue[int] {
			return queue.NewMS[int](queue.WithReclaim(hpAggressive()), queue.WithRecycling())
		},
		// Segment size 2 forces the close/append transition every couple of
		// enqueues, so the exhaustive windows repeatedly cross segment
		// boundaries — the linearization-sensitive path (the append CAS, and
		// empty verdicts racing a seal). The EBR/HP variants recycle, so a
		// premature segment reuse inside a window is an ABA the checker
		// would flag as an impossible history.
		"LCRQ": func() cds.Queue[int] {
			return queue.NewLCRQ[int](queue.WithSegmentSize(2))
		},
		"LCRQ+EBR": func() cds.Queue[int] {
			return queue.NewLCRQ[int](queue.WithSegmentSize(2),
				queue.WithReclaim(ebrAggressive()), queue.WithRecycling())
		},
		"LCRQ+HP": func() cds.Queue[int] {
			return queue.NewLCRQ[int](queue.WithSegmentSize(2),
				queue.WithReclaim(hpAggressive()), queue.WithRecycling())
		},
	}
	for name, mk := range impls {
		t.Run(name, func(t *testing.T) {
			runWindows(t, lincheck.QueueModel(), func(int) func(int, *xrand.Rand, *lincheck.Recorder) {
				q := mk()
				return func(client int, rng *xrand.Rand, rec *lincheck.Recorder) {
					for i := 0; i < linOpsPerCli; i++ {
						if rng.Intn(2) == 0 {
							v := rng.Intn(linValueRange)
							p := rec.Begin(client, lincheck.QueueEnqueue{Value: v})
							q.Enqueue(v)
							p.End(nil)
						} else {
							p := rec.Begin(client, lincheck.QueueDequeue{})
							v, ok := q.TryDequeue()
							p.End(lincheck.ValueOK{Value: v, OK: ok})
						}
					}
				}
			})
		})
	}
}

func TestLinearizableBoundedQueues(t *testing.T) {
	t.Run("MPMC", func(t *testing.T) {
		runWindows(t, lincheck.QueueModel(), func(int) func(int, *xrand.Rand, *lincheck.Recorder) {
			q := queue.NewMPMC[int](64) // capacity >> window size: never full
			return func(client int, rng *xrand.Rand, rec *lincheck.Recorder) {
				for i := 0; i < linOpsPerCli; i++ {
					if rng.Intn(2) == 0 {
						v := rng.Intn(linValueRange)
						p := rec.Begin(client, lincheck.QueueEnqueue{Value: v})
						q.TryEnqueue(v)
						p.End(nil)
					} else {
						p := rec.Begin(client, lincheck.QueueDequeue{})
						v, ok := q.TryDequeue()
						p.End(lincheck.ValueOK{Value: v, OK: ok})
					}
				}
			}
		})
	})
}

// TestLinearizableMPSCQueues respects the MPSC contract inside the
// windows: clients 0..n-2 are enqueue-only producers and the last client
// is the sole dequeuer (the plain-store dequeue cursor is only sound
// single-consumer). The model is still the full QueueModel — the
// specialization must not cost FIFO or exactly-once delivery. Segment
// size 2 keeps every window crossing segment boundaries, and the EBR/HP
// variants recycle those segments aggressively.
func TestLinearizableMPSCQueues(t *testing.T) {
	impls := map[string]func() *queue.MPSC[int]{
		"MPSC": func() *queue.MPSC[int] {
			return queue.NewMPSC[int](queue.WithSegmentSize(2))
		},
		"MPSC+EBR": func() *queue.MPSC[int] {
			return queue.NewMPSC[int](queue.WithSegmentSize(2),
				queue.WithReclaim(ebrAggressive()), queue.WithRecycling())
		},
		"MPSC+HP": func() *queue.MPSC[int] {
			return queue.NewMPSC[int](queue.WithSegmentSize(2),
				queue.WithReclaim(hpAggressive()), queue.WithRecycling())
		},
	}
	for name, mk := range impls {
		t.Run(name, func(t *testing.T) {
			runWindows(t, lincheck.QueueModel(), func(int) func(int, *xrand.Rand, *lincheck.Recorder) {
				q := mk()
				return func(client int, rng *xrand.Rand, rec *lincheck.Recorder) {
					for i := 0; i < linOpsPerCli; i++ {
						if client != linClients-1 {
							v := rng.Intn(linValueRange)
							p := rec.Begin(client, lincheck.QueueEnqueue{Value: v})
							q.Enqueue(v)
							p.End(nil)
							continue
						}
						p := rec.Begin(client, lincheck.QueueDequeue{})
						v, ok := q.TryDequeue()
						p.End(lincheck.ValueOK{Value: v, OK: ok})
					}
				}
			})
		})
	}
}

func TestLinearizableSets(t *testing.T) {
	impls := map[string]func() cds.Set[int]{
		"list.Coarse":       func() cds.Set[int] { return list.NewCoarse[int]() },
		"list.Fine":         func() cds.Set[int] { return list.NewFine[int]() },
		"list.Optimistic":   func() cds.Set[int] { return list.NewOptimistic[int]() },
		"list.Lazy":         func() cds.Set[int] { return list.NewLazy[int]() },
		"list.Harris":       func() cds.Set[int] { return list.NewHarris[int]() },
		"skiplist.Lazy":     func() cds.Set[int] { return skiplist.NewLazy[int]() },
		"skiplist.LockFree": func() cds.Set[int] { return skiplist.NewLockFree[int]() },
		"list.Harris+EBR": func() cds.Set[int] {
			return list.NewHarris[int](list.WithReclaim(ebrAggressive()), list.WithRecycling())
		},
		"list.Harris+HP": func() cds.Set[int] {
			return list.NewHarris[int](list.WithReclaim(hpAggressive()), list.WithRecycling())
		},
		"skiplist.LockFree+EBR": func() cds.Set[int] {
			return skiplist.NewLockFree[int](skiplist.WithReclaim(ebrAggressive()))
		},
		"skiplist.LockFree+HP": func() cds.Set[int] {
			return skiplist.NewLockFree[int](skiplist.WithReclaim(hpAggressive()))
		},
	}
	for name, mk := range impls {
		t.Run(name, func(t *testing.T) {
			runWindows(t, lincheck.SetModel(), func(int) func(int, *xrand.Rand, *lincheck.Recorder) {
				s := mk()
				return func(client int, rng *xrand.Rand, rec *lincheck.Recorder) {
					for i := 0; i < linOpsPerCli; i++ {
						k := rng.Intn(linKeyRange)
						switch rng.Intn(3) {
						case 0:
							p := rec.Begin(client, lincheck.SetAdd{Key: k})
							p.End(s.Add(k))
						case 1:
							p := rec.Begin(client, lincheck.SetRemove{Key: k})
							p.End(s.Remove(k))
						default:
							p := rec.Begin(client, lincheck.SetContains{Key: k})
							p.End(s.Contains(k))
						}
					}
				}
			})
		})
	}
}

func TestLinearizableMaps(t *testing.T) {
	impls := map[string]func() cds.Map[int, int]{
		"Locked":       func() cds.Map[int, int] { return cmap.NewLocked[int, int]() },
		"Striped":      func() cds.Map[int, int] { return cmap.NewStriped[int, int](8) },
		"SplitOrdered": func() cds.Map[int, int] { return cmap.NewSplitOrdered[int, int]() },
		"SplitOrdered+EBR": func() cds.Map[int, int] {
			return cmap.NewSplitOrdered[int, int](cmap.WithReclaim(ebrAggressive()), cmap.WithRecycling())
		},
		"SplitOrdered+HP": func() cds.Map[int, int] {
			return cmap.NewSplitOrdered[int, int](cmap.WithReclaim(hpAggressive()))
		},
	}
	for name, mk := range impls {
		t.Run(name, func(t *testing.T) {
			runWindows(t, lincheck.MapModel(), func(int) func(int, *xrand.Rand, *lincheck.Recorder) {
				m := mk()
				return func(client int, rng *xrand.Rand, rec *lincheck.Recorder) {
					for i := 0; i < linOpsPerCli; i++ {
						k := rng.Intn(linKeyRange)
						switch rng.Intn(3) {
						case 0:
							v := rng.Intn(linValueRange)
							p := rec.Begin(client, lincheck.MapStore{Key: k, Value: v})
							m.Store(k, v)
							p.End(nil)
						case 1:
							p := rec.Begin(client, lincheck.MapLoad{Key: k})
							v, ok := m.Load(k)
							p.End(lincheck.ValueOK{Value: v, OK: ok})
						default:
							p := rec.Begin(client, lincheck.MapDelete{Key: k})
							p.End(m.Delete(k))
						}
					}
				}
			})
		})
	}
}

// TestLinearizableCaches records windows from one shard of the bounded
// cache (WithShards(1) pins every key to a single lock domain) under each
// eviction policy, checked against the lossy-map CacheModel. The capacity
// sits below the key range so evictions fire inside the windows: the
// checker then verifies the lossy contract — hits return the latest
// value, an observed miss means the key stays absent until re-Set — while
// *which* victim each policy picks is pinned separately by the
// deterministic unit traces in package cache.
func TestLinearizableCaches(t *testing.T) {
	impls := map[string]func() cds.Cache[int, int]{
		"SIEVE":  func() cds.Cache[int, int] { return cache.New[int, int](2, cache.WithShards(1)) },
		"S3FIFO": func() cds.Cache[int, int] { return cache.NewS3FIFO[int, int](2, cache.WithShards(1)) },
		"LRU":    func() cds.Cache[int, int] { return cache.NewLRU[int, int](2, cache.WithShards(1)) },
	}
	for name, mk := range impls {
		t.Run(name, func(t *testing.T) {
			runWindows(t, lincheck.CacheModel(), func(int) func(int, *xrand.Rand, *lincheck.Recorder) {
				c := mk()
				return func(client int, rng *xrand.Rand, rec *lincheck.Recorder) {
					for i := 0; i < linOpsPerCli; i++ {
						k := rng.Intn(linKeyRange)
						switch rng.Intn(4) {
						case 0:
							p := rec.Begin(client, lincheck.CacheDelete{Key: k})
							p.End(c.Delete(k))
						case 1, 2:
							v := rng.Intn(linValueRange)
							p := rec.Begin(client, lincheck.CacheSet{Key: k, Value: v})
							c.Set(k, v)
							p.End(nil)
						default:
							p := rec.Begin(client, lincheck.CacheGet{Key: k})
							v, ok := c.Get(k)
							p.End(lincheck.ValueOK{Value: v, OK: ok})
						}
					}
				}
			})
		})
	}
}

// TestLinearizableWeightedCaches re-runs the cache windows with the
// capacity bound switched to weights (WithMaxWeight) and random per-entry
// weights, under every policy and with TinyLFU admission layered on top.
// The weighted paths the checker exercises beyond the plain windows: one
// Set may evict several victims (all must linearize as losses that stay
// gone), an entry whose weight exceeds the budget is rejected (legal only
// as Set-then-immediate-loss — a later hit on the *old* value would be a
// stale read the model rejects), and TinyLFU admission rejections
// likewise linearize as instant losses.
func TestLinearizableWeightedCaches(t *testing.T) {
	impls := map[string]func() *cache.Cache[int, int]{
		"SIEVE": func() *cache.Cache[int, int] {
			return cache.New[int, int](8, cache.WithShards(1), cache.WithMaxWeight(4))
		},
		"S3FIFO": func() *cache.Cache[int, int] {
			return cache.New[int, int](8, cache.WithShards(1), cache.WithMaxWeight(4),
				cache.WithPolicy(cache.S3FIFO))
		},
		"LRU": func() *cache.Cache[int, int] {
			return cache.New[int, int](8, cache.WithShards(1), cache.WithMaxWeight(4),
				cache.WithPolicy(cache.LRU))
		},
		"SIEVE+TinyLFU": func() *cache.Cache[int, int] {
			return cache.New[int, int](8, cache.WithShards(1), cache.WithMaxWeight(4),
				cache.WithAdmission(cache.TinyLFU))
		},
	}
	for name, mk := range impls {
		t.Run(name, func(t *testing.T) {
			runWindows(t, lincheck.CacheModel(), func(int) func(int, *xrand.Rand, *lincheck.Recorder) {
				c := mk()
				return func(client int, rng *xrand.Rand, rec *lincheck.Recorder) {
					for i := 0; i < linOpsPerCli; i++ {
						k := rng.Intn(linKeyRange)
						switch rng.Intn(4) {
						case 0:
							p := rec.Begin(client, lincheck.CacheDelete{Key: k})
							p.End(c.Delete(k))
						case 1, 2:
							v := rng.Intn(linValueRange)
							// Weights 1..3 fit the budget of 4 (a 3 evicts
							// several weight-1 residents); 5 exceeds it and
							// must reject — including removing an existing
							// entry rather than leaving its stale value.
							w := int64(1 + rng.Intn(5))
							if w == 4 {
								w = 5
							}
							p := rec.Begin(client, lincheck.CacheSet{Key: k, Value: v})
							c.SetWeight(k, v, w)
							p.End(nil)
						default:
							p := rec.Begin(client, lincheck.CacheGet{Key: k})
							v, ok := c.Get(k)
							p.End(lincheck.ValueOK{Value: v, OK: ok})
						}
					}
				}
			})
		})
	}
}

func TestLinearizableCounters(t *testing.T) {
	impls := map[string]func() cds.Counter{
		"Locked": func() cds.Counter { return new(counter.Locked) },
		"Atomic": func() cds.Counter { return new(counter.Atomic) },
	}
	for name, mk := range impls {
		t.Run(name, func(t *testing.T) {
			runWindows(t, lincheck.CounterModel(), func(int) func(int, *xrand.Rand, *lincheck.Recorder) {
				c := mk()
				return func(client int, rng *xrand.Rand, rec *lincheck.Recorder) {
					for i := 0; i < linOpsPerCli; i++ {
						if rng.Intn(2) == 0 {
							d := int64(rng.Intn(3) - 1)
							p := rec.Begin(client, lincheck.CounterAdd{Delta: d})
							c.Add(d)
							p.End(nil)
						} else {
							p := rec.Begin(client, lincheck.CounterLoad{})
							p.End(c.Load())
						}
					}
				}
			})
		})
	}
}

// TestLinearizableDeques covers the work-stealing family. Chase-Lev
// restricts PushBottom/TryPopBottom to one owner goroutine, so client 0
// plays the owner (mixing pushes and bottom pops) while the remaining
// clients are thieves racing TryPopTop — the steal/take races on the last
// element are exactly the windows the checker must see.
func TestLinearizableDeques(t *testing.T) {
	impls := map[string]func() cds.Deque[int]{
		"Mutex":    func() cds.Deque[int] { return deque.NewMutex[int]() },
		"ChaseLev": func() cds.Deque[int] { return deque.NewChaseLev[int](8) },
		"FC":       func() cds.Deque[int] { return deque.NewFC[int]() },
		// The combining-backend variants re-verify the same sequential deque
		// under the CC-Synch/DSM-Synch delegation protocols: the windows
		// exercise the tail-swap/handoff transitions under real concurrency.
		"FC/CC-Synch": func() cds.Deque[int] {
			return deque.NewFC[int](deque.WithBackend(contend.BackendCCSynch))
		},
		"FC/DSM-Synch": func() cds.Deque[int] {
			return deque.NewFC[int](deque.WithBackend(contend.BackendDSMSynch))
		},
	}
	for name, mk := range impls {
		t.Run(name, func(t *testing.T) {
			runWindows(t, lincheck.DequeModel(), func(int) func(int, *xrand.Rand, *lincheck.Recorder) {
				d := mk()
				return func(client int, rng *xrand.Rand, rec *lincheck.Recorder) {
					for i := 0; i < linOpsPerCli; i++ {
						switch {
						case client != 0:
							p := rec.Begin(client, lincheck.DequePopTop{})
							v, ok := d.TryPopTop()
							p.End(lincheck.ValueOK{Value: v, OK: ok})
						case rng.Intn(2) == 0:
							v := rng.Intn(linValueRange)
							p := rec.Begin(client, lincheck.DequePushBottom{Value: v})
							d.PushBottom(v)
							p.End(nil)
						default:
							p := rec.Begin(client, lincheck.DequePopBottom{})
							v, ok := d.TryPopBottom()
							p.End(lincheck.ValueOK{Value: v, OK: ok})
						}
					}
				}
			})
		})
	}
}

// TestLinearizablePriorityQueues draws values from the tiny range so that
// duplicate minima are common: the multiset model must accept any of the
// tied instances while still rejecting out-of-order deliveries.
func TestLinearizablePriorityQueues(t *testing.T) {
	impls := map[string]func() cds.PriorityQueue[int]{
		"LockedHeap": func() cds.PriorityQueue[int] {
			return pqueue.NewHeap[int](func(a, b int) bool { return a < b })
		},
		"SkipListPQ": func() cds.PriorityQueue[int] { return pqueue.NewSkipList[int]() },
		"FCHeap": func() cds.PriorityQueue[int] {
			return pqueue.NewFC[int](func(a, b int) bool { return a < b })
		},
		"FCHeap/CC-Synch": func() cds.PriorityQueue[int] {
			return pqueue.NewFC[int](func(a, b int) bool { return a < b },
				pqueue.WithBackend(contend.BackendCCSynch))
		},
		"FCHeap/DSM-Synch": func() cds.PriorityQueue[int] {
			return pqueue.NewFC[int](func(a, b int) bool { return a < b },
				pqueue.WithBackend(contend.BackendDSMSynch))
		},
	}
	for name, mk := range impls {
		t.Run(name, func(t *testing.T) {
			runWindows(t, lincheck.PQModel(), func(int) func(int, *xrand.Rand, *lincheck.Recorder) {
				pq := mk()
				return func(client int, rng *xrand.Rand, rec *lincheck.Recorder) {
					for i := 0; i < linOpsPerCli; i++ {
						if rng.Intn(2) == 0 {
							v := rng.Intn(linValueRange)
							p := rec.Begin(client, lincheck.PQInsert{Value: v})
							pq.Insert(v)
							p.End(nil)
						} else {
							p := rec.Begin(client, lincheck.PQDeleteMin{})
							v, ok := pq.TryDeleteMin()
							p.End(lincheck.ValueOK{Value: v, OK: ok})
						}
					}
				}
			})
		})
	}
}

// TestLinearizableSTMCounter checks STM atomicity through the counter
// model: racing read-modify-write transactions must never lose an update,
// which is precisely what a torn TL2 commit would produce.
func TestLinearizableSTMCounter(t *testing.T) {
	runWindows(t, lincheck.CounterModel(), func(int) func(int, *xrand.Rand, *lincheck.Recorder) {
		v := stm.NewTVar(int64(0))
		return func(client int, rng *xrand.Rand, rec *lincheck.Recorder) {
			for i := 0; i < linOpsPerCli; i++ {
				if rng.Intn(2) == 0 {
					d := int64(rng.Intn(3) - 1)
					p := rec.Begin(client, lincheck.CounterAdd{Delta: d})
					stm.Atomically(func(tx *stm.Txn) {
						v.Write(tx, v.Read(tx)+d)
					})
					p.End(nil)
				} else {
					p := rec.Begin(client, lincheck.CounterLoad{})
					p.End(v.Load())
				}
			}
		}
	})
}

// TestLinearizableSTMSnapshot drives two TVars that are always written
// together: transactional reads must observe them equal (the TL2 snapshot
// guarantee). A torn read records the sentinel -1, which the register
// model rejects because -1 is never written.
func TestLinearizableSTMSnapshot(t *testing.T) {
	runWindows(t, lincheck.RegisterModel(), func(int) func(int, *xrand.Rand, *lincheck.Recorder) {
		a, b := stm.NewTVar(0), stm.NewTVar(0)
		return func(client int, rng *xrand.Rand, rec *lincheck.Recorder) {
			for i := 0; i < linOpsPerCli; i++ {
				if rng.Intn(2) == 0 {
					v := rng.Intn(linValueRange)
					p := rec.Begin(client, lincheck.RegisterWrite{Value: v})
					stm.Atomically(func(tx *stm.Txn) {
						a.Write(tx, v)
						b.Write(tx, v)
					})
					p.End(nil)
				} else {
					p := rec.Begin(client, lincheck.RegisterRead{})
					var x, y int
					stm.Atomically(func(tx *stm.Txn) {
						x, y = a.Read(tx), b.Read(tx)
					})
					out := x
					if x != y {
						out = -1 // torn snapshot: unwritable value fails the check
					}
					p.End(out)
				}
			}
		}
	})
}

// TestCheckerCatchesRealBug feeds the checker a deliberately broken
// "stack" (a queue pretending to be a stack) and requires a rejection —
// guarding against the checker silently accepting everything.
func TestCheckerCatchesRealBug(t *testing.T) {
	q := queue.NewMutex[int]() // FIFO masquerading as a stack
	rec := lincheck.NewRecorder(1)
	push := func(v int) {
		p := rec.Begin(0, lincheck.StackPush{Value: v})
		q.Enqueue(v)
		p.End(nil)
	}
	pop := func() {
		p := rec.Begin(0, lincheck.StackPop{})
		v, ok := q.TryDequeue()
		p.End(lincheck.ValueOK{Value: v, OK: ok})
	}
	push(1)
	push(2)
	pop() // returns 1; a stack must return 2
	pop()
	if res := lincheck.Check(lincheck.StackModel(), rec.History()); res.Ok {
		t.Fatal("checker accepted FIFO behaviour as a stack")
	} else if res.Info == "" {
		t.Fatal("rejection carried no diagnostic")
	} else {
		_ = fmt.Sprintf("%s", res.Info) // diagnostic is renderable
	}
}

// Dual (blocking) structures: every blocking operation carries a timeout
// so a bug can wedge an operation without wedging the suite. A timed-out
// Take linearizes as a failed TryDequeue — the reservation it withdrew
// was installed at an instant the queue held no data — so the plain
// QueueModel applies. Client 0 is a dedicated producer with as many
// enqueues as the other clients have takes, so every take that does not
// time out can be fed.
func TestLinearizableDualQueues(t *testing.T) {
	impls := map[string]func() cds.BlockingQueue[int]{
		"DualMS": func() cds.BlockingQueue[int] { return dual.NewMSQueue[int]() },
		"DualMS+EBR": func() cds.BlockingQueue[int] {
			return dual.NewMSQueue[int](dual.WithReclaim(ebrAggressive()))
		},
		"DualMS+HP": func() cds.BlockingQueue[int] {
			return dual.NewMSQueue[int](dual.WithReclaim(hpAggressive()))
		},
	}
	const takeTimeout = 20 * time.Millisecond
	for name, mk := range impls {
		t.Run(name, func(t *testing.T) {
			runWindows(t, lincheck.QueueModel(), func(int) func(int, *xrand.Rand, *lincheck.Recorder) {
				q := mk()
				return func(client int, rng *xrand.Rand, rec *lincheck.Recorder) {
					for i := 0; i < linOpsPerCli; i++ {
						if client == 0 {
							v := rng.Intn(linValueRange)
							p := rec.Begin(client, lincheck.QueueEnqueue{Value: v})
							if err := q.Put(context.Background(), v); err != nil {
								t.Errorf("Put: %v", err)
							}
							p.End(nil)
							continue
						}
						if rng.Intn(2) == 0 {
							ctx, cancel := context.WithTimeout(context.Background(), takeTimeout)
							p := rec.Begin(client, lincheck.QueueDequeue{})
							v, err := q.Take(ctx)
							p.End(lincheck.ValueOK{Value: v, OK: err == nil})
							cancel()
						} else {
							p := rec.Begin(client, lincheck.QueueDequeue{})
							v, ok := q.(*dual.MSQueue[int]).TryDequeue()
							p.End(lincheck.ValueOK{Value: v, OK: ok})
						}
					}
				}
			})
		})
	}
}

// The synchronous queue: every client mixes puts and takes under short
// timeouts; whichever halves pair up must pair consistently (no
// manufactured or duplicated values), which SyncQueueModel enforces.
func TestLinearizableSyncQueue(t *testing.T) {
	impls := map[string]func() cds.BlockingQueue[int]{
		// A narrow, short-spin handoff array forces traffic onto both the
		// fast path and the parked slow path inside the tiny windows.
		"Sync": func() cds.BlockingQueue[int] { return dual.NewSync[int](2, 16) },
		"Sync+EBR": func() cds.BlockingQueue[int] {
			return dual.NewSync[int](2, 16, dual.WithReclaim(ebrAggressive()))
		},
		"Sync+HP": func() cds.BlockingQueue[int] {
			return dual.NewSync[int](2, 16, dual.WithReclaim(hpAggressive()))
		},
	}
	const rvTimeout = 20 * time.Millisecond
	for name, mk := range impls {
		t.Run(name, func(t *testing.T) {
			runWindows(t, lincheck.SyncQueueModel(), func(int) func(int, *xrand.Rand, *lincheck.Recorder) {
				s := mk()
				return func(client int, rng *xrand.Rand, rec *lincheck.Recorder) {
					for i := 0; i < linOpsPerCli; i++ {
						ctx, cancel := context.WithTimeout(context.Background(), rvTimeout)
						if (client+i)%2 == 0 {
							v := rng.Intn(linValueRange)
							p := rec.Begin(client, lincheck.SyncPut{Value: v})
							err := s.Put(ctx, v)
							p.End(err == nil)
						} else {
							p := rec.Begin(client, lincheck.SyncTake{})
							v, err := s.Take(ctx)
							p.End(lincheck.ValueOK{Value: v, OK: err == nil})
						}
						cancel()
					}
				}
			})
		})
	}
}

// TestPoolTaskConservation records real executor histories against the
// task-bag model: PoolSubmit windows from producer goroutines, PoolExec
// windows bracketing each handler invocation on the pool's own workers.
// Half the rounds race a drain-Shutdown against the producers, so the
// histories include rejected submissions — the model proves every
// accepted task ran exactly once, no rejected task ran, and nothing ran
// before its submission.
func TestPoolTaskConservation(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs parallelism to record meaningful histories")
	}
	const (
		rounds       = 30
		submitters   = 2
		perSubmitter = 4
		workers      = 2
	)
	for round := 0; round < rounds; round++ {
		rec := lincheck.NewRecorder(submitters + workers)
		p := pool.NewWorkStealing(func(w *pool.Worker[int], id int) {
			// Each worker goroutine is its own recorder client; the
			// window is the handler invocation itself.
			rec.Begin(submitters+w.ID(), lincheck.PoolExec{ID: id}).End(nil)
		}, pool.WithWorkers(workers))

		var wg sync.WaitGroup
		for s := 0; s < submitters; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				for i := 0; i < perSubmitter; i++ {
					id := s*perSubmitter + i
					pd := rec.Begin(s, lincheck.PoolSubmit{ID: id})
					ok := p.Submit(id)
					pd.End(ok)
				}
			}(s)
		}
		if round%2 == 1 {
			// Race the drain against the producers: later submissions
			// are rejected and must never execute.
			runtime.Gosched()
		} else {
			wg.Wait()
		}
		if err := p.Shutdown(context.Background()); err != nil {
			t.Fatalf("round %d: Shutdown: %v", round, err)
		}
		wg.Wait()
		if res := lincheck.Check(lincheck.PoolModel(), rec.History()); !res.Ok {
			t.Fatalf("round %d: %s", round, res.Info)
		}
	}
}
