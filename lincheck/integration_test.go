package lincheck_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	cds "github.com/cds-suite/cds"
	"github.com/cds-suite/cds/cmap"
	"github.com/cds-suite/cds/counter"
	"github.com/cds-suite/cds/internal/xrand"
	"github.com/cds-suite/cds/lincheck"
	"github.com/cds-suite/cds/list"
	"github.com/cds-suite/cds/queue"
	"github.com/cds-suite/cds/skiplist"
	"github.com/cds-suite/cds/stack"
)

// The integration strategy: many small windows (few clients, few ops each)
// recorded from the real structures under genuine concurrency, each window
// checked exhaustively. Small windows keep the exponential checker fast
// while still catching ordering bugs, which manifest within tiny
// neighbourhoods of conflicting operations.
const (
	linClients    = 3
	linOpsPerCli  = 4
	linRounds     = 40
	linKeyRange   = 3 // tiny key space maximises conflicts
	linValueRange = 4
)

func runWindows(t *testing.T, model lincheck.Model, mkOps func(round int) func(client int, rng *xrand.Rand, rec *lincheck.Recorder)) {
	t.Helper()
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs parallelism to record meaningful histories")
	}
	for round := 0; round < linRounds; round++ {
		rec := lincheck.NewRecorder(linClients)
		ops := mkOps(round)
		var wg sync.WaitGroup
		for c := 0; c < linClients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rng := xrand.New(uint64(round*linClients+c) + 1)
				ops(c, rng, rec)
			}(c)
		}
		wg.Wait()
		if res := lincheck.Check(model, rec.History()); !res.Ok {
			t.Fatalf("round %d: %s", round, res.Info)
		}
	}
}

func TestLinearizableStacks(t *testing.T) {
	impls := map[string]func() cds.Stack[int]{
		"Mutex":       func() cds.Stack[int] { return stack.NewMutex[int]() },
		"Treiber":     func() cds.Stack[int] { return stack.NewTreiber[int]() },
		"Elimination": func() cds.Stack[int] { return stack.NewElimination[int](2, 16) },
	}
	for name, mk := range impls {
		t.Run(name, func(t *testing.T) {
			runWindows(t, lincheck.StackModel(), func(int) func(int, *xrand.Rand, *lincheck.Recorder) {
				s := mk()
				return func(client int, rng *xrand.Rand, rec *lincheck.Recorder) {
					for i := 0; i < linOpsPerCli; i++ {
						if rng.Intn(2) == 0 {
							v := rng.Intn(linValueRange)
							p := rec.Begin(client, lincheck.StackPush{Value: v})
							s.Push(v)
							p.End(nil)
						} else {
							p := rec.Begin(client, lincheck.StackPop{})
							v, ok := s.TryPop()
							p.End(lincheck.ValueOK{Value: v, OK: ok})
						}
					}
				}
			})
		})
	}
}

func TestLinearizableQueues(t *testing.T) {
	impls := map[string]func() cds.Queue[int]{
		"Mutex":   func() cds.Queue[int] { return queue.NewMutex[int]() },
		"TwoLock": func() cds.Queue[int] { return queue.NewTwoLock[int]() },
		"MS":      func() cds.Queue[int] { return queue.NewMS[int]() },
	}
	for name, mk := range impls {
		t.Run(name, func(t *testing.T) {
			runWindows(t, lincheck.QueueModel(), func(int) func(int, *xrand.Rand, *lincheck.Recorder) {
				q := mk()
				return func(client int, rng *xrand.Rand, rec *lincheck.Recorder) {
					for i := 0; i < linOpsPerCli; i++ {
						if rng.Intn(2) == 0 {
							v := rng.Intn(linValueRange)
							p := rec.Begin(client, lincheck.QueueEnqueue{Value: v})
							q.Enqueue(v)
							p.End(nil)
						} else {
							p := rec.Begin(client, lincheck.QueueDequeue{})
							v, ok := q.TryDequeue()
							p.End(lincheck.ValueOK{Value: v, OK: ok})
						}
					}
				}
			})
		})
	}
}

func TestLinearizableBoundedQueues(t *testing.T) {
	t.Run("MPMC", func(t *testing.T) {
		runWindows(t, lincheck.QueueModel(), func(int) func(int, *xrand.Rand, *lincheck.Recorder) {
			q := queue.NewMPMC[int](64) // capacity >> window size: never full
			return func(client int, rng *xrand.Rand, rec *lincheck.Recorder) {
				for i := 0; i < linOpsPerCli; i++ {
					if rng.Intn(2) == 0 {
						v := rng.Intn(linValueRange)
						p := rec.Begin(client, lincheck.QueueEnqueue{Value: v})
						q.TryEnqueue(v)
						p.End(nil)
					} else {
						p := rec.Begin(client, lincheck.QueueDequeue{})
						v, ok := q.TryDequeue()
						p.End(lincheck.ValueOK{Value: v, OK: ok})
					}
				}
			}
		})
	})
}

func TestLinearizableSets(t *testing.T) {
	impls := map[string]func() cds.Set[int]{
		"list.Coarse":       func() cds.Set[int] { return list.NewCoarse[int]() },
		"list.Fine":         func() cds.Set[int] { return list.NewFine[int]() },
		"list.Optimistic":   func() cds.Set[int] { return list.NewOptimistic[int]() },
		"list.Lazy":         func() cds.Set[int] { return list.NewLazy[int]() },
		"list.Harris":       func() cds.Set[int] { return list.NewHarris[int]() },
		"skiplist.Lazy":     func() cds.Set[int] { return skiplist.NewLazy[int]() },
		"skiplist.LockFree": func() cds.Set[int] { return skiplist.NewLockFree[int]() },
	}
	for name, mk := range impls {
		t.Run(name, func(t *testing.T) {
			runWindows(t, lincheck.SetModel(), func(int) func(int, *xrand.Rand, *lincheck.Recorder) {
				s := mk()
				return func(client int, rng *xrand.Rand, rec *lincheck.Recorder) {
					for i := 0; i < linOpsPerCli; i++ {
						k := rng.Intn(linKeyRange)
						switch rng.Intn(3) {
						case 0:
							p := rec.Begin(client, lincheck.SetAdd{Key: k})
							p.End(s.Add(k))
						case 1:
							p := rec.Begin(client, lincheck.SetRemove{Key: k})
							p.End(s.Remove(k))
						default:
							p := rec.Begin(client, lincheck.SetContains{Key: k})
							p.End(s.Contains(k))
						}
					}
				}
			})
		})
	}
}

func TestLinearizableMaps(t *testing.T) {
	impls := map[string]func() cds.Map[int, int]{
		"Locked":       func() cds.Map[int, int] { return cmap.NewLocked[int, int]() },
		"Striped":      func() cds.Map[int, int] { return cmap.NewStriped[int, int](8) },
		"SplitOrdered": func() cds.Map[int, int] { return cmap.NewSplitOrdered[int, int]() },
	}
	for name, mk := range impls {
		t.Run(name, func(t *testing.T) {
			runWindows(t, lincheck.MapModel(), func(int) func(int, *xrand.Rand, *lincheck.Recorder) {
				m := mk()
				return func(client int, rng *xrand.Rand, rec *lincheck.Recorder) {
					for i := 0; i < linOpsPerCli; i++ {
						k := rng.Intn(linKeyRange)
						switch rng.Intn(3) {
						case 0:
							v := rng.Intn(linValueRange)
							p := rec.Begin(client, lincheck.MapStore{Key: k, Value: v})
							m.Store(k, v)
							p.End(nil)
						case 1:
							p := rec.Begin(client, lincheck.MapLoad{Key: k})
							v, ok := m.Load(k)
							p.End(lincheck.ValueOK{Value: v, OK: ok})
						default:
							p := rec.Begin(client, lincheck.MapDelete{Key: k})
							p.End(m.Delete(k))
						}
					}
				}
			})
		})
	}
}

func TestLinearizableCounters(t *testing.T) {
	impls := map[string]func() cds.Counter{
		"Locked": func() cds.Counter { return new(counter.Locked) },
		"Atomic": func() cds.Counter { return new(counter.Atomic) },
	}
	for name, mk := range impls {
		t.Run(name, func(t *testing.T) {
			runWindows(t, lincheck.CounterModel(), func(int) func(int, *xrand.Rand, *lincheck.Recorder) {
				c := mk()
				return func(client int, rng *xrand.Rand, rec *lincheck.Recorder) {
					for i := 0; i < linOpsPerCli; i++ {
						if rng.Intn(2) == 0 {
							d := int64(rng.Intn(3) - 1)
							p := rec.Begin(client, lincheck.CounterAdd{Delta: d})
							c.Add(d)
							p.End(nil)
						} else {
							p := rec.Begin(client, lincheck.CounterLoad{})
							p.End(c.Load())
						}
					}
				}
			})
		})
	}
}

// TestCheckerCatchesRealBug feeds the checker a deliberately broken
// "stack" (a queue pretending to be a stack) and requires a rejection —
// guarding against the checker silently accepting everything.
func TestCheckerCatchesRealBug(t *testing.T) {
	q := queue.NewMutex[int]() // FIFO masquerading as a stack
	rec := lincheck.NewRecorder(1)
	push := func(v int) {
		p := rec.Begin(0, lincheck.StackPush{Value: v})
		q.Enqueue(v)
		p.End(nil)
	}
	pop := func() {
		p := rec.Begin(0, lincheck.StackPop{})
		v, ok := q.TryDequeue()
		p.End(lincheck.ValueOK{Value: v, OK: ok})
	}
	push(1)
	push(2)
	pop() // returns 1; a stack must return 2
	pop()
	if res := lincheck.Check(lincheck.StackModel(), rec.History()); res.Ok {
		t.Fatal("checker accepted FIFO behaviour as a stack")
	} else if res.Info == "" {
		t.Fatal("rejection carried no diagnostic")
	} else {
		_ = fmt.Sprintf("%s", res.Info) // diagnostic is renderable
	}
}
