package lincheck

import (
	"fmt"
	"sort"
)

// Model is a sequential specification of a data type. States are treated
// as immutable values: Step returns the successor state and never mutates
// its input.
type Model struct {
	// Init returns the initial state.
	Init func() any
	// Step applies an operation: given the state before it, the
	// operation's input and its observed output, it reports whether the
	// output is legal and what state results.
	Step func(state, input, output any) (ok bool, next any)
	// Equal compares states for the memoization cache. nil means states
	// are comparable with == (true for ints, strings, small structs).
	Equal func(a, b any) bool
	// Describe renders an operation for counterexample messages.
	// nil falls back to fmt.Sprintf("%v -> %v").
	Describe func(input, output any) string
}

// Operation is one completed call in a history.
type Operation struct {
	// ClientID identifies the calling goroutine (informational).
	ClientID int
	// Input describes the call (model-specific).
	Input any
	// Output describes the response (model-specific).
	Output any
	// Call and Return are the invocation/response timestamps. Any
	// monotonic logical clock works: the checker uses only their order.
	Call   int64
	Return int64
}

// Result reports the outcome of a check.
type Result struct {
	// Ok is true if the history is linearizable with respect to the model.
	Ok bool
	// Info holds a short human-readable explanation when Ok is false.
	Info string
}

// Check searches for a linearization of history against model. Histories
// must contain only completed operations with Call < Return.
func Check(model Model, history []Operation) Result {
	if err := validate(history); err != nil {
		return Result{Ok: false, Info: err.Error()}
	}
	if len(history) == 0 {
		return Result{Ok: true}
	}
	if model.Equal == nil {
		model.Equal = func(a, b any) bool { return a == b }
	}

	entries := buildEntries(history)
	if linearize(model, entries, len(history)) {
		return Result{Ok: true}
	}
	return Result{Ok: false, Info: describeFailure(model, history)}
}

func validate(history []Operation) error {
	for i, op := range history {
		if op.Call >= op.Return {
			return fmt.Errorf("lincheck: operation %d has Call %d >= Return %d", i, op.Call, op.Return)
		}
	}
	return nil
}

// entry is a node of the doubly linked event list. Call entries carry a
// match pointer to their return entry; return entries have match == nil.
type entry struct {
	id         int
	input      any
	output     any
	match      *entry // return entry for calls; nil for returns
	prev, next *entry
}

// buildEntries lays out call/return events in time order as a linked list
// with a sentinel head. Ties sort calls before returns, which widens
// overlap windows (permissive: never yields a false "not linearizable").
func buildEntries(history []Operation) *entry {
	type event struct {
		time   int64
		isCall bool
		id     int
	}
	events := make([]event, 0, 2*len(history))
	for id, op := range history {
		events = append(events,
			event{time: op.Call, isCall: true, id: id},
			event{time: op.Return, isCall: false, id: id},
		)
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].time != events[j].time {
			return events[i].time < events[j].time
		}
		return events[i].isCall && !events[j].isCall
	})

	head := &entry{id: -1} // sentinel
	tail := head
	returns := make(map[int]*entry, len(history))
	calls := make(map[int]*entry, len(history))
	for _, ev := range events {
		e := &entry{id: ev.id}
		if ev.isCall {
			e.input = history[ev.id].Input
			e.output = history[ev.id].Output
			calls[ev.id] = e
		} else {
			returns[ev.id] = e
		}
		tail.next = e
		e.prev = tail
		tail = e
	}
	for id, c := range calls {
		c.match = returns[id]
	}
	return head
}

// lift removes a call entry and its matching return from the list.
func lift(e *entry) {
	e.prev.next = e.next
	if e.next != nil {
		e.next.prev = e.prev
	}
	m := e.match
	m.prev.next = m.next
	if m.next != nil {
		m.next.prev = m.prev
	}
}

// unlift reinserts a lifted entry pair (inverse of lift).
func unlift(e *entry) {
	m := e.match
	m.prev.next = m
	if m.next != nil {
		m.next.prev = m
	}
	e.prev.next = e
	if e.next != nil {
		e.next.prev = e
	}
}

type stackFrame struct {
	e     *entry
	state any
}

// linearize is the WGL search with (linearized-set, state) memoization.
func linearize(model Model, head *entry, n int) bool {
	type cacheEntry struct {
		set   bitset
		state any
	}
	var (
		state      = model.Init()
		linearized = newBitset(n)
		cache      = make(map[uint64][]cacheEntry)
		stack      []stackFrame
	)
	cacheHas := func(set bitset, st any) bool {
		h := set.hash()
		for _, ce := range cache[h] {
			if ce.set.equals(set) && model.Equal(ce.state, st) {
				return true
			}
		}
		cache[h] = append(cache[h], cacheEntry{set: set.clone(), state: st})
		return false
	}

	e := head.next
	for head.next != nil {
		if e == nil {
			// Hit the end without linearizing everything: backtrack.
			if len(stack) == 0 {
				return false
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			state = top.state
			linearized.clear(top.e.id)
			unlift(top.e)
			e = top.e.next
			continue
		}
		if e.match != nil {
			// Call entry: try to linearize this operation now.
			ok, next := model.Step(state, e.input, e.output)
			if ok {
				linearized.set(e.id)
				if !cacheHas(linearized, next) {
					stack = append(stack, stackFrame{e: e, state: state})
					state = next
					lift(e)
					e = head.next
					continue
				}
				linearized.clear(e.id)
			}
			e = e.next
			continue
		}
		// Return entry: every linearization must place some pending call
		// before this point; none worked, so backtrack.
		e = nil
	}
	return true
}

func describeFailure(model Model, history []Operation) string {
	describe := model.Describe
	if describe == nil {
		describe = func(in, out any) string { return fmt.Sprintf("%v -> %v", in, out) }
	}
	// Render the history sorted by call time for readability.
	idx := make([]int, len(history))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return history[idx[a]].Call < history[idx[b]].Call })
	s := "history not linearizable:"
	for _, i := range idx {
		op := history[i]
		s += fmt.Sprintf("\n  client %d: %s [%d,%d]", op.ClientID, describe(op.Input, op.Output), op.Call, op.Return)
	}
	return s
}

// bitset is a fixed-size bit vector used as the linearized-ops key.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)   { b[i/64] |= 1 << (i % 64) }
func (b bitset) clear(i int) { b[i/64] &^= 1 << (i % 64) }

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

func (b bitset) equals(o bitset) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

func (b bitset) hash() uint64 {
	h := uint64(14695981039346656037)
	for _, w := range b {
		h ^= w
		h *= 1099511628211
	}
	return h
}
