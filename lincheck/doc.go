// Package lincheck is a linearizability checker in the style of Wing &
// Gong (1993) with Lowe's memoization refinements — the algorithm behind
// tools like Knossos and Porcupine, reimplemented on the standard library.
//
// Linearizability is the correctness condition all structures in this
// module target: every operation appears to take effect atomically at some
// instant between its invocation and its response. The checker takes a
// recorded concurrent history (package-level Recorder) and a sequential
// model of the data type and searches for a witness ordering: a
// permutation of the operations that (a) respects real-time order and
// (b) is legal for the sequential model. The search is exponential in the
// worst case, so histories should stay small (tens of operations); the
// integration tests in this module check many small windows rather than
// one big one.
//
// Bundled sequential models cover registers, counters, sets, maps, FIFO
// queues, stacks, deques, priority queues (multiset semantics), and —
// for the blocking family in package dual — the synchronous-queue
// rendezvous model (SyncQueueModel), where cancelled partial operations
// are modelled as no-ops and a timed-out blocking dequeue is equivalent
// to a failed try-dequeue. The checker itself is validated against
// deliberately broken structures in its unit tests.
package lincheck
