package lincheck

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Op kinds shared by the bundled models. Inputs are small structs so that
// histories print legibly in counterexamples.
type (
	// RegisterRead reads the register; output is the value (int).
	RegisterRead struct{}
	// RegisterWrite writes Value; output is ignored.
	RegisterWrite struct{ Value int }

	// CounterAdd adds Delta; output is ignored.
	CounterAdd struct{ Delta int64 }
	// CounterLoad reads the counter; output is the value (int64).
	CounterLoad struct{}

	// SetAdd adds Key; output is the bool the operation returned.
	SetAdd struct{ Key int }
	// SetRemove removes Key; output is the returned bool.
	SetRemove struct{ Key int }
	// SetContains queries Key; output is the returned bool.
	SetContains struct{ Key int }

	// MapStore stores Key→Value; output is ignored.
	MapStore struct {
		Key   int
		Value int
	}
	// MapLoad loads Key; output is mapLoadResult.
	MapLoad struct{ Key int }
	// MapDelete deletes Key; output is the returned bool.
	MapDelete struct{ Key int }

	// QueueEnqueue enqueues Value; output is ignored.
	QueueEnqueue struct{ Value int }
	// QueueDequeue dequeues; output is queuePopResult.
	QueueDequeue struct{}

	// StackPush pushes Value; output is ignored.
	StackPush struct{ Value int }
	// StackPop pops; output is queuePopResult.
	StackPop struct{}

	// DequePushBottom pushes Value at the owner end; output is ignored.
	DequePushBottom struct{ Value int }
	// DequePopBottom pops from the owner end; output is ValueOK.
	DequePopBottom struct{}
	// DequePopTop steals from the top end; output is ValueOK.
	DequePopTop struct{}

	// PQInsert inserts Value; output is ignored.
	PQInsert struct{ Value int }
	// PQDeleteMin removes the minimum; output is ValueOK.
	PQDeleteMin struct{}

	// SyncPut offers Value on a synchronous queue; output is the bool
	// reporting whether a taker accepted it (false = cancelled).
	SyncPut struct{ Value int }
	// SyncTake receives from a synchronous queue; output is ValueOK
	// (ok=false = cancelled before a putter arrived).
	SyncTake struct{}

	// PoolSubmit hands task ID to an executor; output is the bool Submit
	// returned (false = rejected by a shutting-down pool).
	PoolSubmit struct{ ID int }
	// PoolExec records the executor running task ID; output is ignored.
	// The window is the handler invocation, bracketed by the worker.
	PoolExec struct{ ID int }

	// CacheGet looks Key up in a cache; output is ValueOK.
	CacheGet struct{ Key int }
	// CacheSet stores Key→Value in a cache; output is ignored.
	CacheSet struct {
		Key   int
		Value int
	}
	// CacheDelete removes Key from a cache; output is the returned bool.
	CacheDelete struct{ Key int }
)

// ValueOK is the output shape for operations returning (value, ok).
type ValueOK struct {
	Value int
	OK    bool
}

// RegisterModel models an integer register with initial value 0.
func RegisterModel() Model {
	return Model{
		Init: func() any { return 0 },
		Step: func(state, input, output any) (bool, any) {
			s := state.(int)
			switch in := input.(type) {
			case RegisterWrite:
				return true, in.Value
			case RegisterRead:
				return output.(int) == s, s
			default:
				return false, s
			}
		},
	}
}

// CounterModel models an int64 counter starting at 0.
func CounterModel() Model {
	return Model{
		Init: func() any { return int64(0) },
		Step: func(state, input, output any) (bool, any) {
			s := state.(int64)
			switch in := input.(type) {
			case CounterAdd:
				return true, s + in.Delta
			case CounterLoad:
				return output.(int64) == s, s
			default:
				return false, s
			}
		},
	}
}

// SetModel models a set of ints. State is the canonical sorted-keys
// string, which keeps states comparable for the cache.
func SetModel() Model {
	return Model{
		Init: func() any { return "" },
		Step: func(state, input, output any) (bool, any) {
			keys := decodeSet(state.(string))
			switch in := input.(type) {
			case SetAdd:
				_, present := keys[in.Key]
				if output.(bool) == present {
					return false, state // Add returns true iff newly added
				}
				keys[in.Key] = struct{}{}
				return true, encodeSet(keys)
			case SetRemove:
				_, present := keys[in.Key]
				if output.(bool) != present {
					return false, state
				}
				delete(keys, in.Key)
				return true, encodeSet(keys)
			case SetContains:
				_, present := keys[in.Key]
				return output.(bool) == present, state
			default:
				return false, state
			}
		},
	}
}

// MapModel models a map[int]int. State is a canonical "k=v,..." string.
func MapModel() Model {
	return Model{
		Init: func() any { return "" },
		Step: func(state, input, output any) (bool, any) {
			m := decodeMap(state.(string))
			switch in := input.(type) {
			case MapStore:
				m[in.Key] = in.Value
				return true, encodeMap(m)
			case MapLoad:
				v, ok := m[in.Key]
				got := output.(ValueOK)
				return got.OK == ok && (!ok || got.Value == v), state
			case MapDelete:
				_, ok := m[in.Key]
				if output.(bool) != ok {
					return false, state
				}
				delete(m, in.Key)
				return true, encodeMap(m)
			default:
				return false, state
			}
		},
	}
}

// QueueModel models a FIFO queue of ints. State is "v1,v2,..." front first.
func QueueModel() Model {
	return Model{
		Init: func() any { return "" },
		Step: func(state, input, output any) (bool, any) {
			s := state.(string)
			switch in := input.(type) {
			case QueueEnqueue:
				return true, pushBack(s, in.Value)
			case QueueDequeue:
				got := output.(ValueOK)
				if s == "" {
					return !got.OK, s
				}
				front, rest := popFront(s)
				if !got.OK || got.Value != front {
					return false, s
				}
				return true, rest
			default:
				return false, s
			}
		},
	}
}

// SyncQueueModel models a synchronous queue (rendezvous channel) of ints.
// Sequentially a rendezvous is a fulfilled SyncPut immediately drained by
// a SyncTake, so the state is the single in-transit value ("" = none): a
// fulfilled put is legal only when no value is in transit, a successful
// take only when one is — forcing the checker to pair them up. Cancelled
// operations (output false) never transferred anything and are legal in
// any state; this is sound (a cancelled half observed the absence of a
// partner at its withdrawal point) and keeps the recorded histories total.
//
// The model deliberately does not impose FIFO order across waiting
// putters: implementations with an elimination-style fast path (dual.Sync)
// pair opposite operations without global ordering, which is the
// documented fairness contract. One blind spot is inherent: a fulfilled
// put whose taker lies outside the recorded window linearizes as a
// trailing in-transit value, so value-conservation bugs need a
// counting check alongside the linearizability one (synchronizing
// objects require strictly stronger conditions than linearizability to
// pin down completely).
func SyncQueueModel() Model {
	return Model{
		Init: func() any { return "" },
		Step: func(state, input, output any) (bool, any) {
			s := state.(string)
			switch in := input.(type) {
			case SyncPut:
				if !output.(bool) {
					return true, s // cancelled: nothing transferred
				}
				if s != "" {
					return false, s // a fulfilled put needs a free slot
				}
				return true, strconv.Itoa(in.Value)
			case SyncTake:
				got := output.(ValueOK)
				if !got.OK {
					return true, s // cancelled
				}
				if s == "" || strconv.Itoa(got.Value) != s {
					return false, s
				}
				return true, ""
			default:
				return false, s
			}
		},
	}
}

// PoolModel models a task pool as the relaxed structure the survey's
// pools discussion describes: a bag with task-conservation semantics.
// State is the canonical sorted-set string of accepted-but-not-yet-run
// task IDs. A successful PoolSubmit adds its (unique) ID; a rejected one
// is a no-op; PoolExec is legal only for an ID currently in the bag and
// removes it. Order between tasks is deliberately unconstrained — that is
// the relaxation executors exploit — so the model checks exactly the
// executor contract: every accepted task runs exactly once, never before
// its submission, and rejected tasks never run.
func PoolModel() Model {
	return Model{
		Init: func() any { return "" },
		Step: func(state, input, output any) (bool, any) {
			s := state.(string)
			switch in := input.(type) {
			case PoolSubmit:
				if !output.(bool) {
					return true, s // rejected: the pool took no responsibility
				}
				keys := decodeSet(s)
				if _, dup := keys[in.ID]; dup {
					return false, s // IDs are unique by construction
				}
				keys[in.ID] = struct{}{}
				return true, encodeSet(keys)
			case PoolExec:
				keys := decodeSet(s)
				if _, ok := keys[in.ID]; !ok {
					return false, s // ran before submission, twice, or after rejection
				}
				delete(keys, in.ID)
				return true, encodeSet(keys)
			default:
				return false, s
			}
		},
	}
}

// CacheModel models a bounded cache as a lossy map — the specification
// the cds.Cache interface documents. State is the canonical "k=v,..."
// string of keys the cache is still obliged to hold. A Set always stores;
// a Get that hits must return the stored value; but because eviction and
// TTL expiry may drop any entry at any moment, a miss is legal for every
// key — and observing one removes the key from the model, pinning the
// contract that a dropped key stays absent until the next Set (the
// implementation deletes lazily-expired entries on the miss path, so a
// hit after an unexplained miss with no intervening Set is a real bug,
// and so is a hit returning a stale value). Delete(true) needs a live
// entry; Delete(false) is legal anywhere (the entry may have just been
// evicted) and likewise clears the obligation.
//
// What this model deliberately cannot see: *which* entry eviction picks
// (policy order is pinned by the deterministic unit traces in package
// cache, not by linearizability) and capacity itself. What it does
// verify, under the concurrent histories the checker enumerates, is that
// per-key reads/writes/deletes linearize against a map that only ever
// loses keys — no resurrection, no stale values, no lost updates.
func CacheModel() Model {
	return Model{
		Init: func() any { return "" },
		Step: func(state, input, output any) (bool, any) {
			m := decodeMap(state.(string))
			switch in := input.(type) {
			case CacheSet:
				m[in.Key] = in.Value
				return true, encodeMap(m)
			case CacheGet:
				got := output.(ValueOK)
				v, ok := m[in.Key]
				if got.OK {
					return ok && got.Value == v, state
				}
				if ok {
					delete(m, in.Key) // evicted/expired: stays gone
					return true, encodeMap(m)
				}
				return true, state
			case CacheDelete:
				_, ok := m[in.Key]
				if output.(bool) && !ok {
					return false, state // deleted an entry it never had
				}
				if ok {
					delete(m, in.Key)
					return true, encodeMap(m)
				}
				return true, state
			default:
				return false, state
			}
		},
	}
}

// StackModel models a LIFO stack of ints. State is "v1,v2,..." bottom first.
func StackModel() Model {
	return Model{
		Init: func() any { return "" },
		Step: func(state, input, output any) (bool, any) {
			s := state.(string)
			switch in := input.(type) {
			case StackPush:
				return true, pushBack(s, in.Value)
			case StackPop:
				got := output.(ValueOK)
				if s == "" {
					return !got.OK, s
				}
				top, rest := popBack(s)
				if !got.OK || got.Value != top {
					return false, s
				}
				return true, rest
			default:
				return false, s
			}
		},
	}
}

// DequeModel models a double-ended queue of ints. State is "v1,v2,..."
// with the top (steal end) first and the bottom (owner end) last:
// PushBottom appends, PopBottom takes the last element, PopTop the first.
func DequeModel() Model {
	return Model{
		Init: func() any { return "" },
		Step: func(state, input, output any) (bool, any) {
			s := state.(string)
			switch in := input.(type) {
			case DequePushBottom:
				return true, pushBack(s, in.Value)
			case DequePopBottom:
				got := output.(ValueOK)
				if s == "" {
					return !got.OK, s
				}
				bottom, rest := popBack(s)
				if !got.OK || got.Value != bottom {
					return false, s
				}
				return true, rest
			case DequePopTop:
				got := output.(ValueOK)
				if s == "" {
					return !got.OK, s
				}
				top, rest := popFront(s)
				if !got.OK || got.Value != top {
					return false, s
				}
				return true, rest
			default:
				return false, s
			}
		},
	}
}

// PQModel models a min-priority queue of ints (a multiset: duplicates are
// kept). State is the canonical ascending "v1,v2,..." string, so DeleteMin
// always takes the front; among equal minima any instance is acceptable,
// which the canonical form makes indistinguishable — exactly the freedom
// linearizable priority queues exploit.
func PQModel() Model {
	return Model{
		Init: func() any { return "" },
		Step: func(state, input, output any) (bool, any) {
			s := state.(string)
			switch in := input.(type) {
			case PQInsert:
				return true, insertSorted(s, in.Value)
			case PQDeleteMin:
				got := output.(ValueOK)
				if s == "" {
					return !got.OK, s
				}
				min, rest := popFront(s)
				if !got.OK || got.Value != min {
					return false, s
				}
				return true, rest
			default:
				return false, s
			}
		},
	}
}

// insertSorted inserts v into an ascending "v1,v2,..." multiset string.
func insertSorted(s string, v int) string {
	if s == "" {
		return strconv.Itoa(v)
	}
	parts := strings.Split(s, ",")
	vals := make([]int, 0, len(parts)+1)
	for _, p := range parts {
		n, _ := strconv.Atoi(p)
		vals = append(vals, n)
	}
	i := sort.SearchInts(vals, v)
	vals = append(vals, 0)
	copy(vals[i+1:], vals[i:])
	vals[i] = v
	out := make([]string, len(vals))
	for j, n := range vals {
		out[j] = strconv.Itoa(n)
	}
	return strings.Join(out, ",")
}

func pushBack(s string, v int) string {
	if s == "" {
		return strconv.Itoa(v)
	}
	return s + "," + strconv.Itoa(v)
}

func popFront(s string) (int, string) {
	head, rest, found := strings.Cut(s, ",")
	v, _ := strconv.Atoi(head)
	if !found {
		return v, ""
	}
	return v, rest
}

func popBack(s string) (int, string) {
	i := strings.LastIndexByte(s, ',')
	if i < 0 {
		v, _ := strconv.Atoi(s)
		return v, ""
	}
	v, _ := strconv.Atoi(s[i+1:])
	return v, s[:i]
}

func decodeSet(s string) map[int]struct{} {
	keys := make(map[int]struct{})
	if s == "" {
		return keys
	}
	for _, part := range strings.Split(s, ",") {
		k, _ := strconv.Atoi(part)
		keys[k] = struct{}{}
	}
	return keys
}

func encodeSet(keys map[int]struct{}) string {
	ks := make([]int, 0, len(keys))
	for k := range keys {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	parts := make([]string, len(ks))
	for i, k := range ks {
		parts[i] = strconv.Itoa(k)
	}
	return strings.Join(parts, ",")
}

func decodeMap(s string) map[int]int {
	m := make(map[int]int)
	if s == "" {
		return m
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(part, "=", 2)
		k, _ := strconv.Atoi(kv[0])
		v, _ := strconv.Atoi(kv[1])
		m[k] = v
	}
	return m
}

func encodeMap(m map[int]int) string {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	parts := make([]string, len(ks))
	for i, k := range ks {
		parts[i] = fmt.Sprintf("%d=%d", k, m[k])
	}
	return strings.Join(parts, ",")
}
