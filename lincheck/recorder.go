package lincheck

import "sync/atomic"

// Recorder captures a concurrent history: goroutines bracket each
// operation with Begin/End, and the recorder timestamps both sides with a
// shared logical clock. The clock is a single atomic counter — cheap,
// strictly monotonic, and shared, so the recorded order is exactly the
// real-time order the checker needs. (A contended counter perturbs timing
// slightly, which only makes histories easier to linearize, never harder —
// it cannot mask a real violation that the recorded order exhibits.)
//
// A Recorder may be shared by any number of goroutines.
type Recorder struct {
	clock atomic.Int64
	ops   []clientLog
}

type clientLog struct {
	ops []Operation
	_   [48]byte // keep client logs off each other's cache lines
}

// NewRecorder returns a recorder for the given number of clients
// (goroutines). Each client must use its own ID in [0, clients).
func NewRecorder(clients int) *Recorder {
	return &Recorder{ops: make([]clientLog, clients)}
}

// Begin records the invocation of an operation by the client and returns
// a pending handle to complete with End.
func (r *Recorder) Begin(client int, input any) Pending {
	return Pending{
		r:      r,
		client: client,
		input:  input,
		call:   r.clock.Add(1),
	}
}

// Pending is an in-flight operation started with Begin.
type Pending struct {
	r      *Recorder
	client int
	input  any
	call   int64
}

// End completes the operation with its observed output.
func (p Pending) End(output any) {
	log := &p.r.ops[p.client]
	log.ops = append(log.ops, Operation{
		ClientID: p.client,
		Input:    p.input,
		Output:   output,
		Call:     p.call,
		Return:   p.r.clock.Add(1),
	})
}

// History returns all completed operations.
func (r *Recorder) History() []Operation {
	var all []Operation
	for i := range r.ops {
		all = append(all, r.ops[i].ops...)
	}
	return all
}

// Reset clears the recorded operations (the clock keeps running, which is
// harmless: only relative order matters).
func (r *Recorder) Reset() {
	for i := range r.ops {
		r.ops[i].ops = nil
	}
}
