package stack_test

import (
	"fmt"
	"sync"

	"github.com/cds-suite/cds/stack"
)

// The Treiber stack is the default lock-free LIFO: safe for any number of
// concurrent pushers and poppers.
func ExampleTreiber() {
	s := stack.NewTreiber[string]()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.Push(fmt.Sprintf("job-%d", i))
		}(i)
	}
	wg.Wait()

	n := 0
	for {
		if _, ok := s.TryPop(); !ok {
			break
		}
		n++
	}
	fmt.Println(n, "jobs drained")
	// Output: 4 jobs drained
}

// The elimination stack behaves identically to Treiber's; under heavy
// contention concurrent push/pop pairs cancel in the elimination array
// instead of fighting for the top pointer.
func ExampleElimination() {
	s := stack.NewElimination[int](0, 0) // default width and spin budget
	s.Push(1)
	s.Push(2)
	v, ok := s.TryPop()
	fmt.Println(v, ok)
	// Output: 2 true
}
