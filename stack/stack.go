package stack

import (
	"sync"

	cds "github.com/cds-suite/cds"
)

// Compile-time interface compliance checks.
var (
	_ cds.Stack[int] = (*Mutex[int])(nil)
	_ cds.Stack[int] = (*Treiber[int])(nil)
	_ cds.Stack[int] = (*Elimination[int])(nil)
)

// Mutex is the coarse-locked baseline stack: a slice guarded by one
// sync.Mutex. Simple, exact, and serial — the reference point for every
// scalability figure.
//
// The zero value is an empty stack. Progress: blocking.
type Mutex[T any] struct {
	mu    sync.Mutex
	items []T
}

// NewMutex returns an empty coarse-locked stack.
func NewMutex[T any]() *Mutex[T] {
	return &Mutex[T]{}
}

// Push adds v to the top of the stack.
func (s *Mutex[T]) Push(v T) {
	s.mu.Lock()
	s.items = append(s.items, v)
	s.mu.Unlock()
}

// TryPop removes and returns the top element; ok is false if the stack was
// empty.
func (s *Mutex[T]) TryPop() (v T, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.items) == 0 {
		return v, false
	}
	v = s.items[len(s.items)-1]
	var zero T
	s.items[len(s.items)-1] = zero // release reference for the GC
	s.items = s.items[:len(s.items)-1]
	return v, true
}

// Len reports the number of elements.
func (s *Mutex[T]) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}
