package stack

import "github.com/cds-suite/cds/reclaim"

// Option configures a stack constructor.
type Option func(*options)

type options struct {
	dom     reclaim.Domain
	recycle bool
}

// WithReclaim attaches a safe-memory-reclamation domain (reclaim.NewEBR,
// reclaim.NewHP) to the stack: popped nodes are retired through it instead
// of being left to the garbage collector, and pops protect the head per
// the domain's protocol. The default is the zero-cost GC path.
func WithReclaim(d reclaim.Domain) Option {
	return func(o *options) { o.dom = d }
}

// WithRecycling additionally pools retired nodes for reuse, so pushes on
// the hot path reallocate from the pool instead of the heap. Requires a
// deferring WithReclaim domain (EBR or HP) — reuse is safe only once the
// domain has declared a node unreachable — and is ignored otherwise.
func WithRecycling() Option {
	return func(o *options) { o.recycle = true }
}

func buildOptions(opts []Option) options {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	if o.dom != nil && !o.dom.Deferred() {
		o.dom = nil // explicit GC domain: same as the default fast path
	}
	if o.dom == nil {
		o.recycle = false
	}
	return o
}
