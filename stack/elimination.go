package stack

import (
	"sync/atomic"

	"github.com/cds-suite/cds/contend"
	"github.com/cds-suite/cds/reclaim"
)

// Elimination is the elimination-backoff stack of Hendler, Shavit &
// Yerushalmi (SPAA 2004): a Treiber stack whose contention fallback is an
// adaptive contend.Elimination array. When the head CAS fails, the
// operation backs off *into* the elimination array instead of merely
// waiting: a push and a pop that meet there cancel directly — the pop
// returns the push's value and neither touches the stack. Each elimination
// is a pair of operations completed with zero contention on the top
// pointer, so throughput grows with concurrency exactly where Treiber's
// stack degrades.
//
// Correctness rests on the observation that a push immediately followed by
// a pop leaves the stack unchanged, so an eliminated pair can be linearized
// back-to-back at the moment of their exchange.
//
// Progress: lock-free (the slow path always falls back to the Treiber CAS
// loop).
type Elimination[T any] struct {
	stack Treiber[T]
	arr   *contend.Elimination[elimOp[T]]

	// Elimination statistics for experiment T3. Recorded only when
	// statsEnabled to keep the hot path free of shared writes by default.
	// These count semantic eliminations (push met pop); the underlying
	// array's own Stats count raw exchanges, including push/push and
	// pop/pop meetings that both parties retry.
	statsEnabled atomic.Bool
	hits         atomic.Int64
	misses       atomic.Int64
}

type elimOp[T any] struct {
	value  T
	isPush bool
}

// NewElimination returns an elimination-backoff stack with the given
// maximum elimination-array width and per-visit spin budget. width <= 0
// selects 8; spins <= 0 selects 128. The array's active width adapts to
// the observed rendezvous rate (see contend.Elimination). WithReclaim and
// WithRecycling configure the backing Treiber stack's memory reclamation;
// eliminated pairs never touch the stack, so their values bypass
// reclamation entirely (and an eliminated push's prepared node goes
// straight back to the recycler).
func NewElimination[T any](width, spins int, opts ...Option) *Elimination[T] {
	s := &Elimination[T]{arr: contend.NewElimination[elimOp[T]](width, spins)}
	s.stack.initReclaim(buildOptions(opts))
	return s
}

// EnableStats turns on hit/miss accounting (a shared atomic per elimination
// attempt; leave off for throughput benchmarks of the stack itself).
func (s *Elimination[T]) EnableStats(on bool) {
	s.statsEnabled.Store(on)
}

// PinWidth fixes the elimination array's active width (clamped to the
// constructed maximum) and disables its adaptation — the knob the A1/A2
// ablations sweep, so width means a true fixed array width there.
func (s *Elimination[T]) PinWidth(w int) {
	s.arr.PinActiveWidth(w)
}

// Stats returns the number of successful eliminations (pairs count once per
// participant) and failed elimination visits recorded so far.
func (s *Elimination[T]) Stats() (hits, misses int64) {
	return s.hits.Load(), s.misses.Load()
}

// Push adds v to the top of the stack.
func (s *Elimination[T]) Push(v T) {
	n := s.stack.nodes.Get()
	n.value = v
	for {
		head := s.stack.head.Load()
		n.next = head
		if s.stack.head.CompareAndSwap(head, n) {
			if s.stack.nodes != nil {
				s.stack.size.Add(1)
			}
			return
		}
		// Contention: try to meet a pop in the elimination array.
		if op, ok := s.visit(elimOp[T]{value: v, isPush: true}); ok && !op.isPush {
			s.stack.nodes.Put(n) // never published; straight back to the pool
			return               // eliminated against a pop
		}
	}
}

// TryPop removes and returns the top element; ok is false if the stack was
// observed empty. A pop eliminated against a concurrent push returns that
// push's value without touching the stack.
func (s *Elimination[T]) TryPop() (v T, ok bool) {
	if s.stack.mem == nil {
		for {
			head := s.stack.head.Load()
			if head == nil {
				return v, false
			}
			if s.stack.head.CompareAndSwap(head, head.next) {
				return head.value, true
			}
			if op, okEx := s.visit(elimOp[T]{isPush: false}); okEx && op.isPush {
				return op.value, true // eliminated against a push
			}
		}
	}
	g := s.stack.mem.Get()
	g.Enter()
	for {
		head := reclaim.Load(g, 0, &s.stack.head)
		if head == nil {
			break
		}
		if s.stack.head.CompareAndSwap(head, head.next) {
			v, ok = head.value, true
			if s.stack.nodes != nil {
				s.stack.size.Add(-1)
			}
			reclaim.Retire(g, s.stack.nodes, head)
			break
		}
		if op, okEx := s.visit(elimOp[T]{isPush: false}); okEx && op.isPush {
			v, ok = op.value, true // eliminated against a push
			break
		}
	}
	g.Exit()
	s.stack.mem.Put(g)
	return
}

// visit performs one elimination attempt. It reports the exchanged
// operation and whether an exchange happened at all; callers must check
// role compatibility (push↔pop) before treating it as elimination.
// Incompatible exchanges (push↔push, pop↔pop) are harmless: both parties
// observe the mismatch and retry on the stack.
func (s *Elimination[T]) visit(op elimOp[T]) (elimOp[T], bool) {
	other, ok := s.arr.Exchange(op)
	if s.statsEnabled.Load() {
		if ok && other.isPush != op.isPush {
			s.hits.Add(1)
		} else {
			s.misses.Add(1)
		}
	}
	return other, ok
}

// Len counts the elements in the backing stack (see Treiber.Len caveats).
func (s *Elimination[T]) Len() int {
	return s.stack.Len()
}
