// Package stack implements the concurrent stack algorithms from the survey
// literature: a coarse-locked stack, Treiber's lock-free stack, and the
// elimination-backoff stack of Hendler, Shavit & Yerushalmi (SPAA 2004).
// The lock-free rendezvous Exchanger the elimination stack is built on
// lives in package contend, the module's shared contention-management
// layer.
//
// Stacks look inherently sequential — every operation fights over one top
// pointer — which is exactly why they are the survey's showcase for
// elimination: a concurrent push and pop cancel each other without ever
// touching the top pointer, so under high contention the elimination array
// turns the bottleneck into parallelism. Experiments F3 and T3 regenerate
// the classic comparison and the elimination hit-rate behind it; the
// reproduction follows the survey's stacks discussion (pools and stacks as
// the simplest structures where relaxed ordering pays).
//
// Progress guarantees: Mutex is blocking; Treiber and Elimination are
// lock-free (a failed top CAS means another operation succeeded). All
// stacks are linearizable; Treiber linearizes at the top CAS, elimination
// hits at the exchanger's claim CAS. WithReclaim routes popped nodes
// through package reclaim, and WithRecycling additionally reuses them once
// the domain declares them unreachable.
package stack
