package stack

import (
	"sync/atomic"

	"github.com/cds-suite/cds/contend"
)

// Treiber is R. K. Treiber's lock-free stack: a singly linked list whose
// head is replaced by compare-and-swap. Push and pop each retry a single
// CAS under contention, with randomized backoff between failures.
//
// Linearization points: a successful Push linearizes at its successful CAS
// of the head; a successful TryPop at its successful CAS; an empty TryPop at
// its load of a nil head.
//
// ABA safety: nodes are never recycled by the stack — a popped node is left
// to the garbage collector — so a head CAS can only succeed against the very
// node value it read (this is the standard way GC'd languages sidestep the
// ABA problem that hazard pointers/epochs solve in C/C++; see
// internal/epoch for the protocol itself).
//
// The zero value is an empty stack. Progress: lock-free (a failed CAS
// implies another operation succeeded).
type Treiber[T any] struct {
	head atomic.Pointer[tnode[T]]
}

type tnode[T any] struct {
	value T
	next  *tnode[T]
}

// NewTreiber returns an empty Treiber stack.
func NewTreiber[T any]() *Treiber[T] {
	return &Treiber[T]{}
}

// Push adds v to the top of the stack.
func (s *Treiber[T]) Push(v T) {
	n := &tnode[T]{value: v}
	var b contend.Backoff
	for {
		head := s.head.Load()
		n.next = head
		if s.head.CompareAndSwap(head, n) {
			return
		}
		b.Pause()
	}
}

// TryPop removes and returns the top element; ok is false if the stack was
// observed empty.
func (s *Treiber[T]) TryPop() (v T, ok bool) {
	var b contend.Backoff
	for {
		head := s.head.Load()
		if head == nil {
			return v, false
		}
		if s.head.CompareAndSwap(head, head.next) {
			return head.value, true
		}
		b.Pause()
	}
}

// Len counts the elements by traversing the list. The count is a consistent
// snapshot only in quiescent states; under concurrency it is best-effort.
func (s *Treiber[T]) Len() int {
	n := 0
	for node := s.head.Load(); node != nil; node = node.next {
		n++
	}
	return n
}
