package stack

import (
	"sync/atomic"

	"github.com/cds-suite/cds/contend"
	"github.com/cds-suite/cds/reclaim"
)

// Treiber is R. K. Treiber's lock-free stack: a singly linked list whose
// head is replaced by compare-and-swap. Push and pop each retry a single
// CAS under contention, with randomized backoff between failures.
//
// Linearization points: a successful Push linearizes at its successful CAS
// of the head; a successful TryPop at its successful CAS; an empty TryPop at
// its load of a nil head.
//
// ABA safety: by default nodes are never recycled by the stack — a popped
// node is left to the garbage collector — so a head CAS can only succeed
// against the very node value it read (this is the standard way GC'd
// languages sidestep the ABA problem). Constructed WithReclaim, popped
// nodes are instead retired through the domain: pops protect the head per
// the domain's protocol (hazard publication or epoch pinning), which
// restores the same no-reuse-while-referenced guarantee and is what makes
// WithRecycling's node reuse sound — a pooled node is reissued only after
// no pop can still hold it, and a push's head CAS is ABA-tolerant (it
// never dereferences the expected head, and CAS success proves that node
// is the current top, whichever incarnation it is).
//
// The zero value is an empty stack (GC reclamation). Progress: lock-free
// (a failed CAS implies another operation succeeded).
type Treiber[T any] struct {
	head  atomic.Pointer[tnode[T]]
	mem   *reclaim.Pool
	nodes *reclaim.Recycler[tnode[T]]
	size  atomic.Int64 // maintained only when recycling (Len cannot traverse reused nodes)
}

type tnode[T any] struct {
	value T
	next  *tnode[T]
}

// NewTreiber returns an empty Treiber stack. See WithReclaim and
// WithRecycling for the memory-reclamation options.
func NewTreiber[T any](opts ...Option) *Treiber[T] {
	s := &Treiber[T]{}
	s.initReclaim(buildOptions(opts))
	return s
}

func (s *Treiber[T]) initReclaim(o options) {
	if o.dom == nil {
		return
	}
	s.mem = reclaim.NewPool(o.dom, 1)
	if o.recycle {
		s.nodes = reclaim.NewRecycler(func(n *tnode[T]) {
			var zero T
			n.value = zero
			n.next = nil
		})
	}
}

// Push adds v to the top of the stack.
func (s *Treiber[T]) Push(v T) {
	n := s.nodes.Get()
	n.value = v
	var b contend.Backoff
	for {
		head := s.head.Load()
		n.next = head
		if s.head.CompareAndSwap(head, n) {
			if s.nodes != nil {
				s.size.Add(1)
			}
			return
		}
		b.Pause()
	}
}

// TryPop removes and returns the top element; ok is false if the stack was
// observed empty.
func (s *Treiber[T]) TryPop() (v T, ok bool) {
	if s.mem == nil {
		var b contend.Backoff
		for {
			head := s.head.Load()
			if head == nil {
				return v, false
			}
			if s.head.CompareAndSwap(head, head.next) {
				return head.value, true
			}
			b.Pause()
		}
	}
	g := s.mem.Get()
	g.Enter()
	var b contend.Backoff
	for {
		head := reclaim.Load(g, 0, &s.head)
		if head == nil {
			break
		}
		// head is protected: dereferencing next and value is safe even if
		// a concurrent pop retires it before our CAS resolves.
		if s.head.CompareAndSwap(head, head.next) {
			v, ok = head.value, true
			if s.nodes != nil {
				s.size.Add(-1)
			}
			reclaim.Retire(g, s.nodes, head)
			break
		}
		b.Pause()
	}
	g.Exit()
	s.mem.Put(g)
	return
}

// Len counts the elements by traversing the list. The count is a consistent
// snapshot only in quiescent states; under concurrency it is best-effort.
// With node recycling enabled it is served from a counter instead: a
// traversal could follow a reused node into the wrong incarnation.
func (s *Treiber[T]) Len() int {
	if s.nodes != nil {
		return int(s.size.Load())
	}
	n := 0
	for node := s.head.Load(); node != nil; node = node.next {
		n++
	}
	return n
}
