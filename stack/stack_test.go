package stack

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	cds "github.com/cds-suite/cds"
)

func implementations() map[string]func() cds.Stack[int] {
	return map[string]func() cds.Stack[int]{
		"Mutex":       func() cds.Stack[int] { return NewMutex[int]() },
		"Treiber":     func() cds.Stack[int] { return NewTreiber[int]() },
		"Elimination": func() cds.Stack[int] { return NewElimination[int](4, 32) },
	}
}

func TestSequentialLIFO(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			if _, ok := s.TryPop(); ok {
				t.Fatal("TryPop on empty stack reported ok")
			}
			for i := 1; i <= 100; i++ {
				s.Push(i)
			}
			if got := s.Len(); got != 100 {
				t.Fatalf("Len = %d, want 100", got)
			}
			for i := 100; i >= 1; i-- {
				v, ok := s.TryPop()
				if !ok || v != i {
					t.Fatalf("TryPop = (%d, %v), want (%d, true)", v, ok, i)
				}
			}
			if _, ok := s.TryPop(); ok {
				t.Fatal("TryPop on drained stack reported ok")
			}
			if got := s.Len(); got != 0 {
				t.Fatalf("Len after drain = %d, want 0", got)
			}
		})
	}
}

func TestPropertyMatchesModel(t *testing.T) {
	// Any sequential mix of pushes and pops behaves like a slice model.
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			f := func(ops []int16) bool {
				s := mk()
				var model []int16
				for _, op := range ops {
					if op >= 0 {
						s.Push(int(op))
						model = append(model, op)
					} else {
						v, ok := s.TryPop()
						if len(model) == 0 {
							if ok {
								return false
							}
							continue
						}
						want := model[len(model)-1]
						model = model[:len(model)-1]
						if !ok || v != int(want) {
							return false
						}
					}
				}
				return s.Len() == len(model)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConcurrentConservation pushes disjoint value ranges from producer
// goroutines while consumers pop; afterwards every pushed value must have
// been popped exactly once.
func TestConcurrentConservation(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			producers := runtime.GOMAXPROCS(0)
			consumers := runtime.GOMAXPROCS(0)
			const perProducer = 20000
			total := producers * perProducer

			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					base := p * perProducer
					for i := 0; i < perProducer; i++ {
						s.Push(base + i)
					}
				}(p)
			}

			popped := make(chan int, total)
			var consumed atomic.Int64
			var cwg sync.WaitGroup
			for c := 0; c < consumers; c++ {
				cwg.Add(1)
				go func() {
					defer cwg.Done()
					for consumed.Load() < int64(total) {
						if v, ok := s.TryPop(); ok {
							consumed.Add(1)
							popped <- v
						}
					}
				}()
			}
			wg.Wait()
			cwg.Wait()
			close(popped)

			seen := make([]bool, total)
			n := 0
			for v := range popped {
				if v < 0 || v >= total {
					t.Fatalf("popped out-of-range value %d", v)
				}
				if seen[v] {
					t.Fatalf("value %d popped twice", v)
				}
				seen[v] = true
				n++
			}
			if n != total {
				t.Fatalf("popped %d values, want %d", n, total)
			}
			if got := s.Len(); got != 0 {
				t.Fatalf("stack not empty after drain: Len = %d", got)
			}
		})
	}
}

// TestPerThreadLIFOOrder verifies that values pushed by a single goroutine
// come out in LIFO order relative to each other when popped by the same
// goroutine with no interleaving from others on those values' positions —
// a weak but implementation-independent stack ordering check under
// concurrency.
func TestPushPopPairsUnderContention(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			workers := 2 * runtime.GOMAXPROCS(0)
			const iters = 10000
			var wg sync.WaitGroup
			var balance atomic.Int64
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						s.Push(w)
						if _, ok := s.TryPop(); ok {
							// net zero
						} else {
							balance.Add(1)
						}
					}
				}(w)
			}
			wg.Wait()
			// Every failed pop leaves one extra element behind.
			if got, want := int64(s.Len()), balance.Load(); got != want {
				t.Fatalf("Len = %d, want %d leftover elements", got, want)
			}
		})
	}
}

func TestEliminationStats(t *testing.T) {
	s := NewElimination[int](2, 256)
	s.EnableStats(true)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		t.Skip("needs ≥2 procs for elimination traffic")
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20000; i++ {
				if w%2 == 0 {
					s.Push(i)
				} else {
					s.TryPop()
				}
			}
		}(w)
	}
	wg.Wait()
	hits, misses := s.Stats()
	if hits < 0 || misses < 0 {
		t.Fatalf("negative stats: hits=%d misses=%d", hits, misses)
	}
	// Under this contention some elimination visits must have happened at
	// all (hit or miss); the hit *rate* is hardware-dependent, so only the
	// accounting is asserted here. T3 reports the rates.
	if hits+misses == 0 {
		t.Log("no elimination visits recorded (low contention run) — accounting path unexercised")
	}
}

func TestEliminationDefaults(t *testing.T) {
	s := NewElimination[string](0, 0)
	if s.arr.MaxWidth() != 8 {
		t.Fatalf("default max width = %d, want 8", s.arr.MaxWidth())
	}
	s.Push("a")
	if v, ok := s.TryPop(); !ok || v != "a" {
		t.Fatalf("TryPop = (%q, %v), want (a, true)", v, ok)
	}
}
