package stack

import (
	"sync"
	"testing"

	"github.com/cds-suite/cds/reclaim"
)

// reclaimVariants enumerates the deferring configurations the stacks are
// exercised under; thresholds are small so reclamation fires inside test-
// sized runs.
func reclaimVariants() map[string]func() []Option {
	return map[string]func() []Option{
		"EBR": func() []Option {
			d := reclaim.NewEBR()
			d.SetAdvanceInterval(4)
			return []Option{WithReclaim(d)}
		},
		"HP": func() []Option {
			d := reclaim.NewHP()
			d.SetScanThreshold(8)
			return []Option{WithReclaim(d)}
		},
		"EBR+recycle": func() []Option {
			d := reclaim.NewEBR()
			d.SetAdvanceInterval(4)
			return []Option{WithReclaim(d), WithRecycling()}
		},
		"HP+recycle": func() []Option {
			d := reclaim.NewHP()
			d.SetScanThreshold(8)
			return []Option{WithReclaim(d), WithRecycling()}
		},
	}
}

func domainOf(opts []Option) reclaim.Domain {
	o := buildOptions(opts)
	return o.dom
}

// stressStack drives a symmetric push/pop mix and then drains, verifying
// conservation: every pushed value is popped exactly once.
func stressStack(t *testing.T, s interface {
	Push(int)
	TryPop() (int, bool)
	Len() int
}, dom reclaim.Domain) {
	t.Helper()
	const workers, ops = 4, 5000
	var wg sync.WaitGroup
	var popped [workers][]int
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				s.Push(w*ops + i)
				if v, ok := s.TryPop(); ok {
					popped[w] = append(popped[w], v)
				}
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[int]bool, workers*ops)
	total := 0
	record := func(v int) {
		if seen[v] {
			t.Fatalf("value %d delivered twice", v)
		}
		seen[v] = true
		total++
	}
	for w := range popped {
		for _, v := range popped[w] {
			record(v)
		}
	}
	for {
		v, ok := s.TryPop()
		if !ok {
			break
		}
		record(v)
	}
	if total != workers*ops {
		t.Fatalf("conservation broken: %d values out, want %d", total, workers*ops)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after drain, want 0", s.Len())
	}
	if dom.Reclaimed() == 0 {
		t.Fatal("domain reclaimed nothing — retire path inert")
	}
	if dom.Pending() < 0 {
		t.Fatalf("pending gauge negative: %d", dom.Pending())
	}
}

func TestTreiberReclaimVariants(t *testing.T) {
	for name, mkOpts := range reclaimVariants() {
		t.Run(name, func(t *testing.T) {
			opts := mkOpts()
			stressStack(t, NewTreiber[int](opts...), domainOf(opts))
		})
	}
}

func TestEliminationReclaimVariants(t *testing.T) {
	for name, mkOpts := range reclaimVariants() {
		t.Run(name, func(t *testing.T) {
			opts := mkOpts()
			// Narrow array and short spins so the elimination path fires
			// alongside the reclaim machinery.
			stressStack(t, NewElimination[int](2, 16, opts...), domainOf(opts))
		})
	}
}

// TestTreiberRecyclingReuses pins the allocation win: under churn, the
// recycler must serve nodes back to pushes.
func TestTreiberRecyclingReuses(t *testing.T) {
	d := reclaim.NewEBR()
	d.SetAdvanceInterval(1)
	st := NewTreiber[int](WithReclaim(d), WithRecycling())
	for i := 0; i < 5000; i++ {
		st.Push(i)
		st.TryPop()
	}
	if st.nodes.Reused() == 0 {
		t.Fatal("recycler never reused a node across 5000 push/pop cycles")
	}
}
