// Package exampleenv holds the one knob the runnable examples share: an
// environment override for their workload size, so CI can smoke-run every
// example at a fraction of its demonstration volume.
package exampleenv

import (
	"os"
	"strconv"
)

// Ops returns the example's operation count: def, unless the
// CDS_EXAMPLE_OPS environment variable holds a positive integer.
func Ops(def int) int {
	if s := os.Getenv("CDS_EXAMPLE_OPS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}
