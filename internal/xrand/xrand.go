// Package xrand implements small, fast, deterministic pseudo-random number
// generators used by the benchmark workloads and randomized tests.
//
// The generators here are seeded explicitly and carry no locks, so each
// worker goroutine owns its own instance and runs allocation- and
// contention-free. Determinism matters for the experiment harness: a given
// (seed, worker id) pair always replays the same key sequence, which makes
// throughput comparisons between implementations apples-to-apples.
package xrand

import "math/bits"

// SplitMix64 advances the SplitMix64 generator state and returns the next
// 64-bit output. It is the standard seeding/stream-splitting function from
// Steele, Lea & Flood, "Fast Splittable Pseudorandom Number Generators"
// (OOPSLA 2014); every distinct state value produces a well-mixed output.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256** generator: tiny state, excellent statistical
// quality, and roughly 1ns per call. It is not safe for concurrent use;
// create one per goroutine.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via SplitMix64, per the xoshiro
// authors' recommendation (never seed xoshiro state with zeros or with raw
// correlated values).
func New(seed uint64) *Rand {
	var r Rand
	r.Seed(seed)
	return &r
}

// Seed resets the generator to a state derived from seed.
func (r *Rand) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&sm)
	}
}

// Uint64 returns the next 64-bit pseudo-random value.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9

	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)

	return result
}

// Uint64n returns a uniformly distributed value in [0, n). n must be > 0.
// It uses Lemire's multiply-shift reduction, which avoids the modulo and is
// bias-free enough for workload generation (the bias is < 2^-64·n).
func (r *Rand) Uint64n(n uint64) uint64 {
	hi, _ := bits.Mul64(r.Uint64(), n)
	return hi
}

// Intn returns a uniformly distributed value in [0, n). n must be > 0.
func (r *Rand) Intn(n int) int {
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Perm returns a pseudo-random permutation of [0, n) as a slice.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of elements using the Fisher–Yates
// shuffle. swap swaps the elements with indexes i and j.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

func rotl(x uint64, k uint) uint64 {
	return bits.RotateLeft64(x, int(k))
}
