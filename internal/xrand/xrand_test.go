package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference outputs for seed 0 from the canonical C implementation.
	state := uint64(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
		0xf88bb8a8724c81ec,
	}
	for i, w := range want {
		if got := SplitMix64(&state); got != w {
			t.Fatalf("SplitMix64 output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("same-seed generators diverged at step %d: %#x vs %#x", i, av, bv)
		}
	}
}

func TestRandSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical outputs out of 1000", same)
	}
}

func TestUint64nRange(t *testing.T) {
	r := New(7)
	for _, n := range []uint64{1, 2, 3, 10, 1000, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared test over 16 buckets; very loose bound, just catches
	// catastrophic bias.
	r := New(99)
	const buckets, samples = 16, 160000
	var counts [buckets]int
	for i := 0; i < samples; i++ {
		counts[r.Uint64n(buckets)]++
	}
	expected := float64(samples) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 15 degrees of freedom: p=0.001 critical value is ~37.7.
	if chi2 > 37.7 {
		t.Fatalf("chi-squared = %.1f, distribution looks biased: %v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of Float64 = %v, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(11)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	for _, v := range s {
		sum += v
	}
	if sum != 36 {
		t.Fatalf("shuffle lost elements: %v", s)
	}
}

func TestUint64nNeverExceedsBound(t *testing.T) {
	f := func(seed uint64, n uint64) bool {
		if n == 0 {
			n = 1
		}
		r := New(seed)
		for i := 0; i < 32; i++ {
			if r.Uint64n(n) >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitBalance(t *testing.T) {
	// Every output bit position should be set roughly half the time.
	r := New(123)
	const samples = 4096
	var ones [64]int
	for i := 0; i < samples; i++ {
		v := r.Uint64()
		for b := 0; b < 64; b++ {
			if v&(1<<b) != 0 {
				ones[b]++
			}
		}
	}
	for b, c := range ones {
		if c < samples/4 || c > 3*samples/4 {
			t.Fatalf("bit %d set %d/%d times — generator badly unbalanced", b, c, samples)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkUint64n(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64n(1000003)
	}
	_ = sink
}
