// Package zipf implements a seedable Zipfian key generator in the style used
// by the YCSB benchmark (Gray et al., "Quickly Generating Billion-Record
// Synthetic Databases", SIGMOD 1994).
//
// Skewed access distributions are the standard way the concurrent data
// structure literature models contention: under a Zipfian distribution a
// handful of hot keys absorb most operations, which stresses the
// synchronization on those keys (a hot lock stripe, a hot list node) far
// more than a uniform distribution over the same key space.
package zipf

import (
	"fmt"
	"math"

	"github.com/cds-suite/cds/internal/xrand"
)

// Generator produces values in [0, n) with a Zipfian distribution of
// exponent theta (often written s or θ). Larger theta means more skew;
// theta=0 degenerates to uniform. The classic YCSB default is 0.99.
//
// A Generator is not safe for concurrent use; create one per goroutine.
type Generator struct {
	rng   *xrand.Rand
	n     uint64
	theta float64

	alpha, zetan, eta, zeta2theta float64
}

// New returns a Zipfian generator over [0, n) with skew theta, seeded
// deterministically from seed. It returns an error if n is 0 or theta is
// not in [0, 1) ∪ (1, ∞); theta exactly 1 makes the normalisation constant
// divergent in this closed form, so callers should use e.g. 0.999 instead.
func New(n uint64, theta float64, seed uint64) (*Generator, error) {
	if n == 0 {
		return nil, fmt.Errorf("zipf: n must be positive, got 0")
	}
	if theta < 0 || theta == 1 {
		return nil, fmt.Errorf("zipf: unsupported theta %v (must be >= 0 and != 1)", theta)
	}
	g := &Generator{
		rng:   xrand.New(seed),
		n:     n,
		theta: theta,
	}
	g.zeta2theta = zetaStatic(2, theta)
	g.zetan = zetaStatic(n, theta)
	g.alpha = 1.0 / (1.0 - theta)
	g.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - g.zeta2theta/g.zetan)
	return g, nil
}

// Next returns the next Zipf-distributed value in [0, n). Rank 0 is the
// hottest key.
func (g *Generator) Next() uint64 {
	if g.theta == 0 {
		return g.rng.Uint64n(g.n)
	}
	u := g.rng.Float64()
	uz := u * g.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, g.theta) {
		return 1
	}
	v := uint64(float64(g.n) * math.Pow(g.eta*u-g.eta+1, g.alpha))
	if v >= g.n {
		v = g.n - 1
	}
	return v
}

// N returns the size of the generator's key space.
func (g *Generator) N() uint64 { return g.n }

// Theta returns the generator's skew exponent.
func (g *Generator) Theta() float64 { return g.theta }

// zetaStatic computes the generalized harmonic number H_{n,theta} =
// sum_{i=1..n} 1/i^theta. O(n), computed once at construction.
func zetaStatic(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}
