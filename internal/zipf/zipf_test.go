package zipf

import (
	"math"
	"sort"
	"testing"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		n       uint64
		theta   float64
		wantErr bool
	}{
		{name: "zero n", n: 0, theta: 0.99, wantErr: true},
		{name: "theta one", n: 10, theta: 1, wantErr: true},
		{name: "negative theta", n: 10, theta: -0.5, wantErr: true},
		{name: "uniform", n: 10, theta: 0, wantErr: false},
		{name: "ycsb default", n: 10, theta: 0.99, wantErr: false},
		{name: "heavy skew", n: 10, theta: 1.5, wantErr: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.n, tt.theta, 1)
			if (err != nil) != tt.wantErr {
				t.Fatalf("New(%d, %v) error = %v, wantErr %v", tt.n, tt.theta, err, tt.wantErr)
			}
		})
	}
}

func TestNextInRange(t *testing.T) {
	for _, theta := range []float64{0, 0.5, 0.99, 1.2} {
		g, err := New(100, theta, 42)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10000; i++ {
			if v := g.Next(); v >= 100 {
				t.Fatalf("theta=%v: Next() = %d out of range [0,100)", theta, v)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := New(1000, 0.99, 7)
	b, _ := New(1000, 0.99, 7)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Next(), b.Next(); av != bv {
			t.Fatalf("same-seed zipf diverged at %d: %d vs %d", i, av, bv)
		}
	}
}

func TestSkewConcentration(t *testing.T) {
	// Under theta=0.99 over 1000 keys, rank 0 should receive far more hits
	// than under uniform, and hotter ranks should (statistically) dominate
	// colder ones.
	const n, samples = 1000, 200000
	g, err := New(n, 0.99, 3)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, n)
	for i := 0; i < samples; i++ {
		counts[g.Next()]++
	}
	uniformShare := float64(samples) / n
	if float64(counts[0]) < 10*uniformShare {
		t.Fatalf("rank-0 count %d is not skewed (uniform share %.0f)", counts[0], uniformShare)
	}
	// Top 10% of ranks should take the majority of traffic at theta=0.99.
	sorted := append([]int(nil), counts...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	top := 0
	for _, c := range sorted[:n/10] {
		top += c
	}
	if float64(top) < 0.5*samples {
		t.Fatalf("top decile received %d/%d ops, expected majority", top, samples)
	}
}

func TestUniformTheta(t *testing.T) {
	const n, samples = 16, 160000
	g, err := New(n, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, n)
	for i := 0; i < samples; i++ {
		counts[g.Next()]++
	}
	expected := float64(samples) / n
	for k, c := range counts {
		if math.Abs(float64(c)-expected) > expected*0.15 {
			t.Fatalf("theta=0 bucket %d has %d hits, want ~%.0f", k, c, expected)
		}
	}
}

// TestZipfProperties sweeps a grid of (n, theta, seed) and asserts the
// three properties every consumer of this package leans on, together on
// the same parameters rather than at isolated points:
//
//  1. every draw lies in [0, n);
//  2. for any theta > 0 the distribution is strictly skewed: rank 0 is
//     drawn strictly more often than rank 1 (their probabilities differ
//     by the factor 2^theta, so with enough samples a tie or inversion
//     is a generator bug, not noise);
//  3. identical seeds yield identical streams, and the draws above are
//     reproducible by a second generator.
func TestZipfProperties(t *testing.T) {
	const samples = 50000
	for _, n := range []uint64{2, 10, 1000} {
		for _, theta := range []float64{0.2, 0.5, 0.99, 1.2} {
			for _, seed := range []uint64{1, 99} {
				g, err := New(n, theta, seed)
				if err != nil {
					t.Fatalf("New(%d, %v, %d): %v", n, theta, seed, err)
				}
				twin, err := New(n, theta, seed)
				if err != nil {
					t.Fatal(err)
				}
				counts := make(map[uint64]int, 8)
				for i := 0; i < samples; i++ {
					v := g.Next()
					if v >= n {
						t.Fatalf("n=%d theta=%v seed=%d: draw %d out of [0,%d)", n, theta, seed, v, n)
					}
					if w := twin.Next(); w != v {
						t.Fatalf("n=%d theta=%v seed=%d: streams diverged at draw %d: %d vs %d",
							n, theta, seed, i, v, w)
					}
					if v < 2 {
						counts[v]++
					}
				}
				if counts[0] <= counts[1] {
					t.Fatalf("n=%d theta=%v seed=%d: rank-0 drawn %d times, rank-1 %d — skew inverted or flat",
						n, theta, seed, counts[0], counts[1])
				}
			}
		}
	}
}

func TestZetaStatic(t *testing.T) {
	// H_{4,1}... theta=1 unsupported in New, but zetaStatic itself is general:
	// H_{4,0} = 4.
	if got := zetaStatic(4, 0); math.Abs(got-4) > 1e-12 {
		t.Fatalf("zetaStatic(4,0) = %v, want 4", got)
	}
	// H_{3,2} = 1 + 1/4 + 1/9.
	want := 1.0 + 0.25 + 1.0/9.0
	if got := zetaStatic(3, 2); math.Abs(got-want) > 1e-12 {
		t.Fatalf("zetaStatic(3,2) = %v, want %v", got, want)
	}
}

func TestAccessors(t *testing.T) {
	g, err := New(123, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 123 || g.Theta() != 0.5 {
		t.Fatalf("accessors returned (%d, %v), want (123, 0.5)", g.N(), g.Theta())
	}
}

func BenchmarkNext(b *testing.B) {
	g, err := New(1<<20, 0.99, 1)
	if err != nil {
		b.Fatal(err)
	}
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = g.Next()
	}
	_ = sink
}
