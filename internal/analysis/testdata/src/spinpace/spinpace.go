// Package spinpace is a golden fixture for the spinpace analyzer:
// unbounded CAS retry loops must pace with contend.Backoff, a yield, or
// a parking operation.
package spinpace

import (
	"runtime"
	"sync/atomic"

	"github.com/cds-suite/cds/contend"
)

func bareSpin(word *atomic.Uint64) {
	for { // want "unbounded CAS retry loop with no pacing"
		old := word.Load()
		if word.CompareAndSwap(old, old+1) {
			return
		}
	}
}

// pacedSpin is clean: the retry path backs off.
func pacedSpin(word *atomic.Uint64) {
	var b contend.Backoff
	for {
		old := word.Load()
		if word.CompareAndSwap(old, old+1) {
			return
		}
		b.Pause()
	}
}

// yieldSpin is clean: a bare yield is pacing too.
func yieldSpin(word *atomic.Uint64) {
	for {
		old := word.Load()
		if word.CompareAndSwap(old, old+1) {
			return
		}
		runtime.Gosched()
	}
}

// bounded is clean: a non-CAS loop condition bounds the retries.
func bounded(word *atomic.Uint64) bool {
	for i := 0; i < 8; i++ {
		old := word.Load()
		if word.CompareAndSwap(old, old+1) {
			return true
		}
	}
	return false
}

func pauseHelper(b *contend.Backoff) {
	b.Pause()
}

// helperPaced is clean through the transitive-pacing fixpoint: the
// helper reaches Backoff.Pause.
func helperPaced(word *atomic.Uint64) {
	var b contend.Backoff
	for {
		old := word.Load()
		if word.CompareAndSwap(old, old+1) {
			return
		}
		pauseHelper(&b)
	}
}

// monotonicMax is the annotated exception: the pragma below must keep
// suppressing a real finding, or the fixture fails as unused.
func monotonicMax(word *atomic.Uint64, v uint64) {
	//cdsvet:ignore spinpace fixture: monotonic max update converges, a failed CAS means another writer raised the bar
	for {
		cur := word.Load()
		if v <= cur || word.CompareAndSwap(cur, v) {
			return
		}
	}
}
