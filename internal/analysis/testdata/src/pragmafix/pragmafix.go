// Package pragmafix exercises the pragma machinery itself: malformed
// pragmas, unknown analyzers, missing reasons, and pragmas that
// suppress nothing are all findings of the non-suppressible "pragma"
// pseudo-analyzer. The expectations live in analysis_test.go, not in
// want comments, because the findings land on the pragma lines
// themselves.
package pragmafix

//cdsvet:ignore

//cdsvet:ignore nosuchanalyzer because reasons

//cdsvet:ignore spinpace

//cdsvet:ignore spinpace fixture pragma parked on a line with no finding
