// Package padlayout is a golden fixture for the padlayout analyzer:
// pad-using structs must actually separate their atomic fields into
// distinct cache lines, and unpadded array elements with several atomic
// fields false-share.
package padlayout

import (
	"sync/atomic"

	"github.com/cds-suite/cds/internal/pad"
)

type sharedLine struct {
	head atomic.Uint64
	tail atomic.Uint64 // want "sharedLine uses internal/pad but atomic fields head .* and tail .* share a 64-byte cache line"
	_    pad.CacheLinePad
}

// separated is the layout sharedLine should have used.
type separated struct {
	head atomic.Uint64
	_    pad.CacheLinePad
	tail atomic.Uint64
	_    pad.CacheLinePad
}

type hotSlot struct {
	enq atomic.Uint64
	deq atomic.Uint64
}

type falseShare struct {
	slots [4]hotSlot // want "element type hotSlot packs 2 atomic fields with no internal/pad separation"
}

type paddedSlot struct {
	enq atomic.Uint64
	_   pad.CacheLinePad
	deq atomic.Uint64
	_   pad.CacheLinePad
}

// separatedArray is clean: the element type pads its hot words apart.
type separatedArray struct {
	slots [4]paddedSlot
}

var (
	_ = sharedLine{}
	_ = separated{}
	_ = falseShare{}
	_ = separatedArray{}
)
