// Wrong opener for a library package.
package badprefix // want "package comment for badprefix should start .Package badprefix."

func unused() {}
