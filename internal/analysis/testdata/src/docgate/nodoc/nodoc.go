package nodoc // want "package nodoc has no package comment"

func unused() {}
