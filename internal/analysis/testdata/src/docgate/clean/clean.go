// Package clean is the docgate negative: a conventional package
// comment that opens with the package name.
package clean

func unused() {}
