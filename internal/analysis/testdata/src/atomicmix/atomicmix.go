// Package atomicmix is a golden fixture for the atomicmix analyzer:
// fields accessed through sync/atomic must never be read or written
// plainly elsewhere.
package atomicmix

import "sync/atomic"

type counters struct {
	hits  uint64
	cold  uint64
	plain uint64
}

func (c *counters) bump() {
	atomic.AddUint64(&c.hits, 1)
	atomic.AddUint64(&c.cold, 1)
}

func (c *counters) reset() {
	c.hits = 0 // want "plain write of .*hits, which is accessed atomically at"
}

func (c *counters) read() uint64 {
	return c.hits // want "plain read of .*hits, which is accessed atomically at"
}

// peek is a clean use: cold is only ever touched atomically.
func (c *counters) peek() uint64 {
	return atomic.LoadUint64(&c.cold)
}

// total is clean the other way round: plain never meets sync/atomic.
func (c *counters) total() uint64 {
	c.plain++
	return c.plain
}

// drainOwner is the single-owner exception the pragma machinery exists
// for: deleting the pragma below must make this fixture fail.
func (c *counters) drainOwner() uint64 {
	//cdsvet:ignore atomicmix fixture: snapshot taken by the single owner after all workers have stopped
	return c.hits
}
