// Package guardexit is a golden fixture for the guardexit analyzer:
// every reclaim guard Enter must reach Exit on all paths, and nothing
// may park while a guard is live.
package guardexit

import (
	"sync"

	"github.com/cds-suite/cds/reclaim"
)

func leakOnReturn(dom reclaim.Domain, empty bool) {
	g := dom.NewGuard(0)
	g.Enter()
	if empty {
		return // want "guard g may still be in a section on this return path"
	}
	g.Exit()
}

func receiveWhileLive(dom reclaim.Domain, ch chan int) int {
	g := dom.NewGuard(0)
	g.Enter()
	defer g.Exit()
	return <-ch // want "channel receive may park while guard g is live"
}

func lockWhileLive(dom reclaim.Domain, mu *sync.Mutex) {
	g := dom.NewGuard(0)
	g.Enter()
	mu.Lock() // want "Lock may park while guard g is live"
	mu.Unlock()
	g.Exit()
}

// deferred is clean: the defer covers every return path.
func deferredExit(dom reclaim.Domain, work []int) int {
	g := dom.NewGuard(0)
	g.Enter()
	defer g.Exit()
	sum := 0
	for _, w := range work {
		sum += w
	}
	return sum
}

// exitBothPaths is clean: every path exits explicitly.
func exitBothPaths(dom reclaim.Domain, empty bool) {
	g := dom.NewGuard(0)
	g.Enter()
	if empty {
		g.Exit()
		return
	}
	g.Exit()
}

// receiveAfterExit is clean: the section closes before the park.
func receiveAfterExit(dom reclaim.Domain, ch chan int) int {
	g := dom.NewGuard(0)
	g.Enter()
	g.Exit()
	return <-ch
}

// enter is a producer: returning a live guard hands the section to the
// caller, which is the dual-structure idiom, not a leak.
func enter(dom reclaim.Domain) reclaim.Guard {
	g := dom.NewGuard(0)
	g.Enter()
	return g
}

// release is a releaser: it exits a guard passed in by the caller.
func release(g reclaim.Guard) {
	if g != nil {
		g.Exit()
	}
}

// useProducer is clean: the produced guard is exited locally.
func useProducer(dom reclaim.Domain) {
	g := enter(dom)
	g.Exit()
}

// useReleaser is clean: the helper's summary shows it exits its argument.
func useReleaser(dom reclaim.Domain) {
	g := enter(dom)
	release(g)
}

// forgetProduced leaks a guard obtained through the producer summary.
func forgetProduced(dom reclaim.Domain, empty bool) {
	g := enter(dom)
	if empty {
		return // want "guard g may still be in a section on this return path"
	}
	g.Exit()
}
