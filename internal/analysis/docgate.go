package analysis

import (
	"go/token"
	"strings"
)

// DocGate ports CI's shell docs gate (the `go list -f '{{.Doc}}'` loop)
// into the suite, with two upgrades: it covers every package — cmd/*
// and internal/* included, where the shell loop's internal filter
// skipped them — and it checks the comment's convention, not just its
// presence. Every package must carry a package comment; for non-main
// packages it must start "Package <name> ", the form go doc renders and
// the rest of the repo follows. Command and example packages (package
// main) may open however they like ("Command cdsbench ...",
// "Webcache: ..."), as long as the comment exists.
var DocGate = &Analyzer{
	Name: "docgate",
	Doc:  "every package carries a package comment; non-main packages start it with 'Package <name>'",
	Run:  runDocGate,
}

func runDocGate(prog *Program, report func(pos token.Pos, format string, args ...any)) {
	for _, pkg := range prog.Packages {
		if len(pkg.Files) == 0 {
			continue
		}
		var docText string
		var docPos token.Pos
		for _, f := range pkg.Files {
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				docText = f.Doc.Text()
				docPos = f.Package
				break
			}
		}
		if docText == "" {
			report(pkg.Files[0].Package, "package %s has no package comment; add a doc.go (see ARCHITECTURE.md conventions)", pkg.Types.Name())
			continue
		}
		if pkg.Types.Name() == "main" {
			continue
		}
		want := "Package " + pkg.Types.Name() + " "
		if !strings.HasPrefix(docText, want) {
			report(docPos, "package comment for %s should start %q (go doc convention)", pkg.Types.Name(), strings.TrimSpace(want))
		}
	}
}
