package analysis

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The whole suite shares one Program: the module plus every fixture
// package under testdata/src, loaded and analyzed once. The golden
// tests slice the diagnostics by fixture directory; TestSelfRun slices
// out everything else.
var (
	loadOnce  sync.Once
	loadErr   error
	sharedOut []Diagnostic
)

func analyzed(t *testing.T) []Diagnostic {
	t.Helper()
	loadOnce.Do(func() {
		root, err := filepath.Abs(filepath.Join("..", ".."))
		if err != nil {
			loadErr = err
			return
		}
		fixtures, err := fixtureDirs()
		if err != nil {
			loadErr = err
			return
		}
		prog, err := LoadModule(root, fixtures...)
		if err != nil {
			loadErr = err
			return
		}
		sharedOut = Run(prog, All())
	})
	if loadErr != nil {
		t.Fatalf("loading module + fixtures: %v", loadErr)
	}
	return sharedOut
}

// fixtureDirs lists every directory under testdata/src holding a .go
// file, absolute.
func fixtureDirs() ([]string, error) {
	var dirs []string
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		return nil, err
	}
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if strings.HasSuffix(e.Name(), ".go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

// want is one expectation parsed from a fixture comment of the form
//
//	// want "regex"
//
// attached to the line it sits on.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRE = regexp.MustCompile(`// want "([^"]+)"`)

func parseWants(t *testing.T, dir string) []*want {
	t.Helper()
	var wants []*want
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRE.FindAllStringSubmatch(sc.Text(), -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					return fmt.Errorf("%s:%d: bad want regex: %v", path, line, err)
				}
				wants = append(wants, &want{file: path, line: line, re: re})
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// runGolden checks one analyzer against its fixture subtree: every want
// comment must be matched by a diagnostic on its line, and every
// diagnostic the analyzer produced there must be wanted.
func runGolden(t *testing.T, analyzer, subdir string) {
	t.Helper()
	diags := analyzed(t)
	dir, err := filepath.Abs(filepath.Join("testdata", "src", subdir))
	if err != nil {
		t.Fatal(err)
	}
	wants := parseWants(t, dir)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", subdir)
	}

	for _, d := range diags {
		if d.Analyzer != analyzer || !strings.HasPrefix(d.Pos.Filename, dir+string(filepath.Separator)) {
			continue
		}
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: want %q, got no matching %s finding", w.file, w.line, w.re, analyzer)
		}
	}
}

func TestAtomicMixGolden(t *testing.T) { runGolden(t, "atomicmix", "atomicmix") }
func TestGuardExitGolden(t *testing.T) { runGolden(t, "guardexit", "guardexit") }
func TestPadLayoutGolden(t *testing.T) { runGolden(t, "padlayout", "padlayout") }
func TestSpinPaceGolden(t *testing.T)  { runGolden(t, "spinpace", "spinpace") }
func TestDocGateGolden(t *testing.T)   { runGolden(t, "docgate", "docgate") }

// TestPragmaMachinery pins the pragma pseudo-analyzer: malformed
// pragmas, unknown analyzer names, missing reasons, and pragmas that
// suppress nothing are each reported from the pragmafix fixture.
func TestPragmaMachinery(t *testing.T) {
	diags := analyzed(t)
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "pragmafix"))
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		if !strings.HasPrefix(d.Pos.Filename, dir+string(filepath.Separator)) {
			continue
		}
		if d.Analyzer != pragmaAnalyzer {
			t.Errorf("unexpected non-pragma finding in pragmafix: %s", d)
			continue
		}
		got = append(got, d.Message)
	}
	expects := []string{
		"needs an analyzer name and a reason",
		"names unknown analyzer nosuchanalyzer",
		"carries no reason",
		"suppresses nothing",
	}
	for _, sub := range expects {
		found := false
		for _, m := range got {
			if strings.Contains(m, sub) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("pragmafix: no pragma finding containing %q (got %q)", sub, got)
		}
	}
	if len(got) != len(expects) {
		t.Errorf("pragmafix: got %d pragma findings, want %d: %q", len(got), len(expects), got)
	}
}

// TestSelfRun is the gate CI relies on: the repo itself must be
// finding-free. Every intentional exception carries a pragma, so
// deleting any one pragma makes this test fail with the uncovered
// finding (and a fixed exception whose pragma went stale fails as
// "suppresses nothing").
func TestSelfRun(t *testing.T) {
	diags := analyzed(t)
	for _, d := range diags {
		if inTestdata(d.Pos.Filename) {
			continue
		}
		t.Errorf("repo finding: %s", d)
	}
}
