// Package analysis is the engine behind cmd/cdsvet: a go/analysis-style
// checker suite, implemented purely on the standard library (go/parser,
// go/types, go/importer — the module has no dependencies and stays that
// way), that loads every package in the module and machine-checks the
// concurrency conventions ARCHITECTURE.md states in prose.
//
// Five analyzers encode the repo's invariants:
//
//   - atomicmix: a struct field (or package-level variable) whose address
//     is passed to a sync/atomic function anywhere must never be read or
//     written plainly elsewhere. This is the class of the PR 7 MPMC
//     false-empty bug: one plain observation of an atomically-written
//     slot word.
//   - guardexit: every reclaim guard Enter must reach Exit on all
//     control-flow paths, and no parking operation (internal/park call,
//     channel operation, mutex acquisition, sleep) may run while a guard
//     is live — a pinned epoch would stall the whole domain.
//   - padlayout: structs that use internal/pad must actually separate
//     their atomically-accessed fields into distinct cache lines
//     (computed from types.Sizes), and array/slice element structs with
//     two or more atomic fields and no padding are flagged for false
//     sharing.
//   - spinpace: unbounded for-CAS retry loops whose body has no pacing
//     (contend.Backoff, runtime.Gosched, parking, channel op) are
//     flagged as priority-inversion livelock risks.
//   - docgate: every package carries a package comment; non-main
//     packages start it with "Package <name>". This replaces the CI
//     shell loop over `go list -f '{{.Doc}}'` and, unlike it, covers
//     cmd/* and internal/* too.
//
// Intentional exceptions are annotated in the source with
//
//	//cdsvet:ignore <analyzer> <reason>
//
// on (or immediately above) the offending line. The reason is mandatory:
// a pragma with no reason, an unknown analyzer name, or a pragma that
// suppresses nothing is itself reported. The analyzers are deliberately
// conservative and intraprocedural-plus-summaries: they track direct
// field paths and one level of helper functions (guard producers and
// releasers, blocking-call summaries computed to a fixpoint across the
// module), not general aliasing — a convention the code under analysis
// follows anyway, because humans reviewing it need the same locality.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// An Analyzer is one checker. Run inspects the whole Program and reports
// findings through report; the driver owns pragma suppression and output
// ordering, so Run just reports everything it sees.
type Analyzer struct {
	// Name is the identifier pragmas and diagnostics use.
	Name string
	// Doc is a one-line description for -list output.
	Doc string
	// Run reports every raw finding in the program.
	Run func(prog *Program, report func(pos token.Pos, format string, args ...any))
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AtomicMix,
		GuardExit,
		PadLayout,
		SpinPace,
		DocGate,
	}
}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// A Package is one type-checked package of the module under analysis.
type Package struct {
	// Path is the import path.
	Path string
	// Dir is the absolute directory the files were read from.
	Dir string
	// Files holds the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checking results for Files.
	Info *types.Info
}

// A Program is the loaded module: every package type-checked against one
// shared FileSet, plus the cross-package fact tables the analyzers
// share. Analyzers run against the whole Program so whole-module rules
// (a field accessed atomically in one file and plainly in another) see
// every use at once.
type Program struct {
	Fset       *token.FileSet
	ModulePath string
	// Packages lists the module's packages in topological (dependency)
	// order.
	Packages []*Package
	// Sizes is the layout model padlayout computes offsets with.
	Sizes types.Sizes

	atomicOnce  sync.Once
	atomicFacts *atomicFacts

	blockOnce  sync.Once
	blockFacts *blockFacts
}

// Run executes the analyzers over prog, applies //cdsvet:ignore
// suppression, reports pragma errors (missing reason, unknown analyzer,
// suppressing nothing), and returns the surviving diagnostics sorted by
// position.
func Run(prog *Program, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	pragmas, pragmaErrs := collectPragmas(prog, known)

	var (
		mu  sync.Mutex
		raw []Diagnostic
	)
	var wg sync.WaitGroup
	for _, a := range analyzers {
		wg.Add(1)
		go func(a *Analyzer) {
			defer wg.Done()
			a.Run(prog, func(pos token.Pos, format string, args ...any) {
				d := Diagnostic{
					Pos:      prog.Fset.Position(pos),
					Analyzer: a.Name,
					Message:  fmt.Sprintf(format, args...),
				}
				mu.Lock()
				raw = append(raw, d)
				mu.Unlock()
			})
		}(a)
	}
	wg.Wait()

	var out []Diagnostic
	for _, d := range raw {
		if pragmas.suppresses(d) {
			continue
		}
		out = append(out, d)
	}
	out = append(out, pragmaErrs...)
	out = append(out, pragmas.unused()...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// inTestdata reports whether a file path belongs to a testdata fixture
// tree (the analyzers' own golden packages, loaded only by tests).
func inTestdata(filename string) bool {
	return strings.Contains(filename, "/testdata/")
}
