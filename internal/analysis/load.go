package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// LoadModule discovers, parses, and type-checks every package under
// root (the directory holding go.mod), excluding testdata trees and
// _test.go files, and returns them in dependency order. extraDirs may
// name additional package directories to load on top of the module —
// the analyzer tests use this to pull their testdata fixture packages
// into the same Program as the module they import from.
//
// Loading is concurrent across packages: files parse in parallel, and
// type-checking runs packages concurrently as soon as their module
// dependencies are checked (go/types supports checking distinct
// packages in parallel when the importer is safe; the stdlib importer
// here is serialized by a mutex). All positions land in one shared
// FileSet.
func LoadModule(root string, extraDirs ...string) (*Program, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modulePath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}

	dirs, err := discoverPackageDirs(root)
	if err != nil {
		return nil, err
	}
	for _, d := range extraDirs {
		abs, err := filepath.Abs(d)
		if err != nil {
			return nil, err
		}
		dirs = append(dirs, abs)
	}

	prog := &Program{
		Fset:       token.NewFileSet(),
		ModulePath: modulePath,
		Sizes:      types.SizesFor("gc", runtime.GOARCH),
	}
	if prog.Sizes == nil {
		prog.Sizes = types.SizesFor("gc", "amd64")
	}

	// Parse every package's files concurrently.
	pkgs := make([]*loadPkg, len(dirs))
	var wg sync.WaitGroup
	for i, dir := range dirs {
		wg.Add(1)
		go func(i int, dir string) {
			defer wg.Done()
			pkgs[i] = parsePackage(prog.Fset, root, modulePath, dir)
		}(i, dir)
	}
	wg.Wait()

	byPath := make(map[string]*loadPkg)
	var all []*loadPkg
	for _, lp := range pkgs {
		if lp == nil {
			continue // no buildable files in dir
		}
		if lp.err != nil {
			return nil, lp.err
		}
		byPath[lp.path] = lp
		all = append(all, lp)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].path < all[j].path })

	// Wire module-internal dependency edges and topologically sort so
	// cycles fail loudly instead of deadlocking the checkers below.
	for _, lp := range all {
		for imp := range lp.imports {
			if dep, ok := byPath[imp]; ok {
				lp.deps = append(lp.deps, dep)
			}
		}
	}
	order, err := toposort(all)
	if err != nil {
		return nil, err
	}

	// Type-check: one goroutine per package, gated on its dependencies'
	// done channels. Stdlib imports go through one shared, serialized
	// importer so every package sees identical types.Package objects.
	std := newStdImporter(prog.Fset)
	for _, lp := range all {
		lp.done = make(chan struct{})
	}
	for _, lp := range order {
		wg.Add(1)
		go func(lp *loadPkg) {
			defer wg.Done()
			defer close(lp.done)
			for _, dep := range lp.deps {
				<-dep.done
				if dep.err != nil {
					lp.err = fmt.Errorf("%s: dependency %s failed to load", lp.path, dep.path)
					return
				}
			}
			lp.check(prog, std, byPath)
		}(lp)
	}
	wg.Wait()

	for _, lp := range order {
		if lp.err != nil {
			return nil, lp.err
		}
		prog.Packages = append(prog.Packages, &Package{
			Path:  lp.path,
			Dir:   lp.dir,
			Files: lp.files,
			Types: lp.types,
			Info:  lp.info,
		})
	}
	return prog, nil
}

type loadPkg struct {
	path    string
	dir     string
	files   []*ast.File
	imports map[string]bool
	deps    []*loadPkg
	done    chan struct{}

	types *types.Package
	info  *types.Info
	err   error
}

// discoverPackageDirs walks the module tree for directories holding at
// least one non-test .go file, skipping testdata, vendored, hidden, and
// underscore-prefixed trees.
func discoverPackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if isSourceFile(e.Name()) {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

func parsePackage(fset *token.FileSet, root, modulePath, dir string) *loadPkg {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return &loadPkg{dir: dir, err: err}
	}
	lp := &loadPkg{
		dir:     dir,
		path:    importPathFor(root, modulePath, dir),
		imports: make(map[string]bool),
	}
	for _, e := range ents {
		if !isSourceFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			lp.err = err
			return lp
		}
		lp.files = append(lp.files, f)
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil {
				lp.imports[p] = true
			}
		}
	}
	if len(lp.files) == 0 {
		return nil
	}
	return lp
}

func importPathFor(root, modulePath, dir string) string {
	rel, err := filepath.Rel(root, dir)
	if err != nil || rel == "." {
		return modulePath
	}
	return modulePath + "/" + filepath.ToSlash(rel)
}

func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

func toposort(pkgs []*loadPkg) ([]*loadPkg, error) {
	const (
		unvisited = iota
		visiting
		done
	)
	state := make(map[*loadPkg]int, len(pkgs))
	var order []*loadPkg
	var visit func(lp *loadPkg) error
	visit = func(lp *loadPkg) error {
		switch state[lp] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("import cycle through %s", lp.path)
		}
		state[lp] = visiting
		for _, dep := range lp.deps {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[lp] = done
		order = append(order, lp)
		return nil
	}
	for _, lp := range pkgs {
		if err := visit(lp); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// check type-checks one package. Module-internal imports resolve to
// already-checked sibling packages; everything else goes to the stdlib
// importer.
func (lp *loadPkg) check(prog *Program, std *stdImporter, byPath map[string]*loadPkg) {
	lp.info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Sizes: prog.Sizes,
		Importer: importerFunc(func(path string) (*types.Package, error) {
			if dep, ok := byPath[path]; ok {
				if dep.types == nil {
					return nil, fmt.Errorf("module package %s not yet checked (missing dep edge?)", path)
				}
				return dep.types, nil
			}
			return std.Import(path)
		}),
	}
	lp.types, lp.err = conf.Check(lp.path, prog.Fset, lp.files, lp.info)
	if lp.err != nil {
		lp.err = fmt.Errorf("type-checking %s: %w", lp.path, lp.err)
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// stdImporter resolves non-module imports. It tries compiled export data
// first (fast, matches the compiler's view) and falls back to
// type-checking the package from GOROOT source; both paths are memoized
// and serialized, so concurrent package checks may share it.
type stdImporter struct {
	mu   sync.Mutex
	gc   types.Importer
	src  types.Importer
	fset *token.FileSet
	seen map[string]*types.Package
}

func newStdImporter(fset *token.FileSet) *stdImporter {
	return &stdImporter{fset: fset, seen: make(map[string]*types.Package)}
}

func (si *stdImporter) Import(path string) (*types.Package, error) {
	si.mu.Lock()
	defer si.mu.Unlock()
	if pkg, ok := si.seen[path]; ok {
		return pkg, nil
	}
	if si.gc == nil {
		si.gc = importer.ForCompiler(si.fset, "gc", nil)
	}
	pkg, err := si.gc.Import(path)
	if err != nil {
		if si.src == nil {
			si.src = importer.ForCompiler(si.fset, "source", nil)
		}
		var srcErr error
		pkg, srcErr = si.src.Import(path)
		if srcErr != nil {
			return nil, fmt.Errorf("import %q: %v (source fallback: %v)", path, err, srcErr)
		}
	}
	si.seen[path] = pkg
	return pkg, nil
}
