package analysis

import (
	"go/token"
	"strings"
)

// pragmaPrefix introduces an inline suppression:
//
//	//cdsvet:ignore <analyzer> <reason>
//
// placed on the offending line or on its own line immediately above.
// The analyzer name must be one of the suite's; the reason is mandatory
// and free-form — it is the reviewer-facing justification for why the
// invariant does not apply (single-owner field, deliberate stalled
// reader, ...).
const pragmaPrefix = "cdsvet:ignore"

// pragmaAnalyzer labels the pseudo-analyzer that reports malformed or
// useless pragmas. It is not suppressible.
const pragmaAnalyzer = "pragma"

type pragma struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool
}

type pragmaIndex struct {
	// byLine keys on (filename, line) of the pragma comment itself.
	byLine map[string]map[int][]*pragma
	all    []*pragma
}

// collectPragmas scans every comment in the program for cdsvet:ignore
// pragmas. Malformed pragmas (unknown analyzer, empty reason) are
// returned as diagnostics immediately; well-formed ones go into the
// index for suppression matching.
func collectPragmas(prog *Program, known map[string]bool) (*pragmaIndex, []Diagnostic) {
	idx := &pragmaIndex{byLine: make(map[string]map[int][]*pragma)}
	var errs []Diagnostic
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, pragmaPrefix) {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					rest := strings.TrimSpace(strings.TrimPrefix(text, pragmaPrefix))
					name, reason, _ := strings.Cut(rest, " ")
					reason = strings.TrimSpace(reason)
					switch {
					case name == "":
						errs = append(errs, Diagnostic{pos, pragmaAnalyzer,
							"cdsvet:ignore needs an analyzer name and a reason"})
						continue
					case !known[name]:
						errs = append(errs, Diagnostic{pos, pragmaAnalyzer,
							"cdsvet:ignore names unknown analyzer " + name})
						continue
					case reason == "":
						errs = append(errs, Diagnostic{pos, pragmaAnalyzer,
							"cdsvet:ignore " + name + " carries no reason; justify the exception"})
						continue
					}
					p := &pragma{pos: pos, analyzer: name, reason: reason}
					lines := idx.byLine[pos.Filename]
					if lines == nil {
						lines = make(map[int][]*pragma)
						idx.byLine[pos.Filename] = lines
					}
					lines[pos.Line] = append(lines[pos.Line], p)
					idx.all = append(idx.all, p)
				}
			}
		}
	}
	return idx, errs
}

// suppresses reports whether a pragma covers d: same analyzer, same
// file, on d's line or the line directly above it. Matching pragmas are
// marked used.
func (idx *pragmaIndex) suppresses(d Diagnostic) bool {
	if d.Analyzer == pragmaAnalyzer {
		return false
	}
	lines := idx.byLine[d.Pos.Filename]
	if lines == nil {
		return false
	}
	hit := false
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, p := range lines[line] {
			if p.analyzer == d.Analyzer {
				p.used = true
				hit = true
			}
		}
	}
	return hit
}

// unused reports every pragma that suppressed nothing: a stale pragma
// means either the exception was fixed (delete the pragma) or the pragma
// sits on the wrong line (move it), and both deserve a failing gate.
func (idx *pragmaIndex) unused() []Diagnostic {
	var out []Diagnostic
	for _, p := range idx.all {
		if !p.used {
			out = append(out, Diagnostic{p.pos, pragmaAnalyzer,
				"cdsvet:ignore " + p.analyzer + " suppresses nothing; delete or move it"})
		}
	}
	return out
}
