package analysis

import (
	"go/ast"
	"go/token"
)

// AtomicMix enforces the repo's oldest rule: a storage location accessed
// through sync/atomic anywhere must never be read or written plainly
// anywhere else. One plain observation of an atomically-written word is
// exactly the PR 7 MPMC false-empty bug — the race detector only
// catches it when a schedule happens to expose it, but the mixed-access
// pattern is visible statically.
//
// The checker keys on direct paths: struct fields and package-level
// variables, optionally indexed (s.word, s.slots[i], s.rows[r][i]).
// The index depth is part of the key, so writing the slice header
// s.rows[r] plainly while the words s.rows[r][i] are atomic is fine.
// Aliases through locals (p := &s.word) are invisible by design —
// the codebase's convention is direct field paths, and the analyzer
// checks the convention. Typed atomics (atomic.Int64 and friends) are
// exempt: the type system already forbids plain access to them.
//
// Single-owner exceptions — a field written plainly by its one owning
// goroutine and atomically elsewhere — carry a
// //cdsvet:ignore atomicmix <reason> pragma naming the ownership
// argument.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "fields accessed via sync/atomic must not also be accessed plainly",
	Run:  runAtomicMix,
}

func runAtomicMix(prog *Program, report func(pos token.Pos, format string, args ...any)) {
	facts := prog.atomics()
	if len(facts.uses) == 0 {
		return
	}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			// Writes: collect assignment/IncDec targets so the access kind
			// names the hazard precisely.
			writes := make(map[ast.Node]bool)
			addrOf := make(map[ast.Node]bool)
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						writes[ast.Unparen(lhs)] = true
					}
				case *ast.IncDecStmt:
					writes[ast.Unparen(n.X)] = true
				case *ast.UnaryExpr:
					if n.Op == token.AND {
						// Taking the address is not a value access: the
						// pointer may legitimately feed an atomic helper.
						// Aliased plain use through it is out of scope.
						addrOf[ast.Unparen(n.X)] = true
					}
				}
				return true
			})

			var visit func(n ast.Node) bool
			visit = func(n ast.Node) bool {
				if facts.blessed[n] {
					return false // the &arg of a sync/atomic call
				}
				expr, ok := n.(ast.Expr)
				if !ok {
					return true
				}
				key, ok := fieldPath(pkg.Info, expr)
				if !ok {
					return true
				}
				atomicAt, isAtomic := facts.uses[key]
				if !isAtomic {
					return true
				}
				if addrOf[ast.Unparen(expr)] {
					return false
				}
				kind := "read"
				if writes[ast.Unparen(expr)] {
					kind = "write"
				}
				report(expr.Pos(), "plain %s of %s, which is accessed atomically at %s",
					kind, describeKey(key), prog.Fset.Position(atomicAt))
				return false // don't re-report the path's subexpressions
			}
			ast.Inspect(file, visit)
		}
	}
}
