package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ---- atomic-access facts (shared by atomicmix and padlayout) ----

// fieldKey identifies one atomically-accessed storage location class: a
// struct field or package-level variable, plus how many index steps lie
// between the variable and the accessed word (0 for a scalar field, 1
// for elements of a slice field, 2 for elements of a slice-of-slices
// field, ...). Depth keeps a slice header write like s.rows[r] = make(...)
// distinct from the atomic words s.rows[r][i] inside it.
type fieldKey struct {
	obj   *types.Var
	depth int
}

type atomicFacts struct {
	// uses maps each atomically-accessed location class to the position
	// of one sync/atomic call proving it.
	uses map[fieldKey]token.Pos
	// blessed holds the exact &-operand nodes that feed sync/atomic
	// calls, so the plain-access scan can skip them.
	blessed map[ast.Node]bool
}

func (prog *Program) atomics() *atomicFacts {
	prog.atomicOnce.Do(func() {
		f := &atomicFacts{
			uses:    make(map[fieldKey]token.Pos),
			blessed: make(map[ast.Node]bool),
		}
		for _, pkg := range prog.Packages {
			for _, file := range pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok || !isAtomicCall(pkg.Info, call) {
						return true
					}
					for _, arg := range call.Args {
						u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
						if !ok || u.Op != token.AND {
							continue
						}
						if key, ok := fieldPath(pkg.Info, u.X); ok {
							if _, seen := f.uses[key]; !seen {
								f.uses[key] = call.Pos()
							}
							f.blessed[u] = true
						}
					}
					return true
				})
			}
		}
		prog.atomicFacts = f
	})
	return prog.atomicFacts
}

// isAtomicCall reports whether call invokes a function from sync/atomic
// (the package-level Load/Store/Add/Swap/CompareAndSwap families; the
// typed atomics are methods and enforce their discipline through the
// type system already).
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic"
}

// fieldPath resolves expr to a (variable, index-depth) key when expr is
// a direct path rooted at a struct field selection or a package-level
// variable: s.f, s.f[i], s.f[i][j], pkgVar, pkgVar[i]. Paths rooted at
// locals (aliases) are invisible by design: the analyzers track the
// direct idiom the codebase writes, not general aliasing.
func fieldPath(info *types.Info, expr ast.Expr) (fieldKey, bool) {
	depth := 0
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.IndexExpr:
			// Generic instantiations parse as IndexExpr too; only count
			// real element indexing into a slice or array.
			if tv, ok := info.Types[e.X]; ok && !tv.IsType() {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Array, *types.Pointer:
					depth++
					expr = e.X
					continue
				}
			}
			return fieldKey{}, false
		case *ast.SelectorExpr:
			if selection, ok := info.Selections[e]; ok && selection.Kind() == types.FieldVal {
				return fieldKey{selection.Obj().(*types.Var), depth}, true
			}
			// Qualified package-level var (pkg.V).
			if v, ok := info.Uses[e.Sel].(*types.Var); ok && isPackageLevel(v) {
				return fieldKey{v, depth}, true
			}
			return fieldKey{}, false
		case *ast.Ident:
			if v, ok := info.Uses[e].(*types.Var); ok && isPackageLevel(v) {
				return fieldKey{v, depth}, true
			}
			return fieldKey{}, false
		default:
			return fieldKey{}, false
		}
	}
}

func isPackageLevel(v *types.Var) bool {
	return v.Parent() != nil && v.Parent().Parent() == types.Universe
}

// describeKey renders a key for diagnostics: "field q.slots elements" /
// "field q.state".
func describeKey(key fieldKey) string {
	name := key.obj.Name()
	if key.obj.IsField() {
		name = "field " + name
	} else {
		name = "var " + name
	}
	if key.depth > 0 {
		name += strings.Repeat("[...]", key.depth)
	}
	return name
}

// ---- function summaries (shared by guardexit and spinpace) ----

// funcFacts summarizes one module function for the interprocedural-lite
// checks: whether calling it may park the goroutine, whether it returns
// a guard it has already Entered (a producer like dual's q.guard()),
// and which of its guard-typed parameters it Exits or Releases (a
// releaser like dual's q.release(g)).
type funcFacts struct {
	mayBlock bool
	produces bool
	releases map[int]bool // parameter index -> exits/releases it
}

type blockFacts struct {
	byFunc    map[*types.Func]*funcFacts
	guardType *types.Interface // reclaim.Guard, nil if reclaim not loaded
}

// reclaimLayer lists the packages whose internals are exempt from the
// blocking rule: the reclamation layer takes short internal locks while
// retiring (that is its job) and never parks, so calls into it do not
// count as blocking even while a guard is live.
func (prog *Program) reclaimLayer(pkgPath string) bool {
	switch strings.TrimPrefix(pkgPath, prog.ModulePath+"/") {
	case "reclaim", "internal/epoch", "internal/hazard":
		return true
	}
	return false
}

func (prog *Program) blocks() *blockFacts {
	prog.blockOnce.Do(func() {
		f := &blockFacts{byFunc: make(map[*types.Func]*funcFacts)}
		if rp := prog.pkgByPath(prog.ModulePath + "/reclaim"); rp != nil {
			if obj := rp.Types.Scope().Lookup("Guard"); obj != nil {
				if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
					f.guardType = iface
				}
			}
		}

		// Collect declared functions with bodies, plus their static
		// callees for the may-block fixpoint.
		type declInfo struct {
			fn      *types.Func
			decl    *ast.FuncDecl
			pkg     *Package
			callees []*types.Func
		}
		var decls []*declInfo
		byFn := make(map[*types.Func]*declInfo)
		for _, pkg := range prog.Packages {
			for _, file := range pkg.Files {
				for _, d := range file.Decls {
					fd, ok := d.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
					if !ok {
						continue
					}
					di := &declInfo{fn: fn, decl: fd, pkg: pkg}
					decls = append(decls, di)
					byFn[fn] = di
					f.byFunc[fn] = &funcFacts{releases: make(map[int]bool)}
				}
			}
		}

		for _, di := range decls {
			facts := f.byFunc[di.fn]
			// Direct blocking primitives in the body.
			if containsBlockingPrimitive(di.pkg.Info, di.decl.Body) {
				facts.mayBlock = true
			}
			// Static callees (for transitive blocking).
			ast.Inspect(di.decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := staticCallee(di.pkg.Info, call); callee != nil {
					di.callees = append(di.callees, callee)
				}
				return true
			})
			// Producer / releaser facts.
			if f.guardType != nil {
				summarizeGuardFlow(di.pkg.Info, di.decl, f.guardType, facts)
			}
		}

		// Fixpoint: a function that calls a may-block module function may
		// block itself. Callees in the reclaim layer are exempt.
		for changed := true; changed; {
			changed = false
			for _, di := range decls {
				facts := f.byFunc[di.fn]
				if facts.mayBlock {
					continue
				}
				for _, callee := range di.callees {
					cf, ok := f.byFunc[callee]
					if !ok || !cf.mayBlock {
						continue
					}
					if callee.Pkg() != nil && prog.reclaimLayer(callee.Pkg().Path()) {
						continue
					}
					facts.mayBlock = true
					changed = true
					break
				}
			}
		}
		prog.blockFacts = f
	})
	return prog.blockFacts
}

func (prog *Program) pkgByPath(path string) *Package {
	for _, p := range prog.Packages {
		if p.Path == path {
			return p
		}
	}
	return nil
}

// containsBlockingPrimitive reports whether body directly performs an
// operation that can park the goroutine: a channel send or receive
// outside a select-with-default, a select without default, a range over
// a channel, a sync mutex/WaitGroup/Cond acquisition, or time.Sleep.
func containsBlockingPrimitive(info *types.Info, body ast.Node) bool {
	found := false
	var walk func(n ast.Node, chanOpsBlock bool)
	walk = func(n ast.Node, chanOpsBlock bool) {
		if n == nil || found {
			return
		}
		switch n := n.(type) {
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				found = true
				return
			}
			// Non-blocking select: its comm ops don't park, but the case
			// bodies still run normally.
			for _, c := range n.Body.List {
				cc := c.(*ast.CommClause)
				if cc.Comm != nil {
					walk(cc.Comm, false)
				}
				for _, s := range cc.Body {
					walk(s, chanOpsBlock)
				}
			}
			return
		case *ast.SendStmt:
			if chanOpsBlock {
				found = true
				return
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && chanOpsBlock {
				found = true
				return
			}
		case *ast.RangeStmt:
			if t, ok := info.Types[n.X]; ok {
				if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
					found = true
					return
				}
			}
		case *ast.CallExpr:
			if isBlockingStdCall(info, n) {
				found = true
				return
			}
		case *ast.FuncLit:
			// A nested function's body blocks the goroutine that runs the
			// literal, not necessarily this one; its own summary is not
			// tracked (literals have no *types.Func), so stay conservative
			// and skip it.
			return
		}
		for _, child := range childNodes(n) {
			walk(child, chanOpsBlock)
		}
	}
	walk(body, true)
	return found
}

// isBlockingStdCall recognizes the stdlib blocking entry points the
// repo's rule names: mutex acquisition (sync.Mutex.Lock,
// sync.RWMutex.Lock/RLock, sync.Locker.Lock), sync.WaitGroup.Wait,
// sync.Cond.Wait, and time.Sleep.
func isBlockingStdCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sync":
		switch fn.Name() {
		case "Lock", "RLock", "Wait":
			return true
		}
	case "time":
		return fn.Name() == "Sleep"
	}
	return false
}

// summarizeGuardFlow fills the produces/releases facts for one declared
// function: produces if it returns a guard value it called Enter on;
// releases[i] if it calls Exit or Release on its i'th guard-typed
// parameter (directly or under a nil-check).
func summarizeGuardFlow(info *types.Info, decl *ast.FuncDecl, guard *types.Interface, facts *funcFacts) {
	params := make(map[*types.Var]int)
	i := 0
	if decl.Type.Params != nil {
		for _, field := range decl.Type.Params.List {
			for _, name := range field.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					if isGuardType(v.Type(), guard) {
						params[v] = i
					}
				}
				i++
			}
		}
	}

	entered := make(map[types.Object]bool)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Uses[recv]
			v, ok := obj.(*types.Var)
			if !ok || !isGuardType(v.Type(), guard) {
				return true
			}
			switch sel.Sel.Name {
			case "Enter":
				entered[v] = true
			case "Exit", "Release":
				if idx, isParam := params[v]; isParam {
					facts.releases[idx] = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if id, ok := ast.Unparen(res).(*ast.Ident); ok {
					if v, ok := info.Uses[id].(*types.Var); ok && entered[v] {
						facts.produces = true
					}
				}
			}
		}
		return true
	})
}

func isGuardType(t types.Type, guard *types.Interface) bool {
	if guard == nil {
		return false
	}
	if iface, ok := t.Underlying().(*types.Interface); ok {
		return types.Identical(iface, guard)
	}
	return types.Implements(t, guard)
}

// staticCallee resolves a call to the declared function or method it
// statically invokes, or nil for interface calls, function values, and
// builtins.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	// Origin() folds instantiated generic functions and methods back to
	// the declaration the summary tables are keyed by.
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn.Origin()
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			// Method on an interface value has no body; leave those nil.
			if fn, ok := sel.Obj().(*types.Func); ok {
				if _, isIface := sel.Recv().Underlying().(*types.Interface); !isIface {
					return fn.Origin()
				}
			}
			return nil
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn.Origin()
		}
	}
	return nil
}

// childNodes returns n's direct children, in source order.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}
