package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GuardExit machine-checks PR 4's reclamation rule: every
// reclaim.Guard.Enter must reach Exit on every control-flow path (a
// defer counts), and nothing that can park the goroutine — an
// internal/park call, a channel operation, a mutex acquisition, a sleep
// — may run while a guard is live, because a pinned epoch stalls
// reclamation for the whole domain.
//
// The checker is intraprocedural plus one level of module-wide
// summaries: a helper that Enters a guard and returns it (dual's
// q.guard()) marks its callers' assignee live, a helper that Exits a
// guard parameter (dual's q.release(g)) counts as an exit, and any call
// to a module function that transitively performs a blocking primitive
// counts as parking. Guard-typed parameters are assumed live on entry —
// by convention a callee holding a guard argument is inside its caller's
// section — but exiting them is the caller's responsibility, so only
// locally-entered guards are checked for exit-before-return. Calls into
// the reclamation layer itself are exempt from the blocking rule: its
// short internal locks are its own business and it never parks.
var GuardExit = &Analyzer{
	Name: "guardexit",
	Doc:  "reclaim guards must exit on every path and never be held across a parking operation",
	Run:  runGuardExit,
}

func runGuardExit(prog *Program, report func(pos token.Pos, format string, args ...any)) {
	bf := prog.blocks()
	if bf.guardType == nil {
		return // reclaim not in the program; nothing to check
	}
	for _, pkg := range prog.Packages {
		if prog.reclaimLayer(pkg.Path) {
			continue // the layer's own internals implement the protocol
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkGuardFunc(prog, pkg, fd.Type, fd.Body, report)
			}
		}
	}
}

// guardState tracks the walker's view of one function body: how many
// open Enters each guard expression has, and which guards have a
// deferred exit registered.
type guardState struct {
	live     map[string]int
	deferred map[string]bool
	// param guards are live-on-entry but exempt from the
	// exit-before-return check.
	params map[string]bool
}

func newGuardState() *guardState {
	return &guardState{
		live:     make(map[string]int),
		deferred: make(map[string]bool),
		params:   make(map[string]bool),
	}
}

func (st *guardState) clone() *guardState {
	c := newGuardState()
	for k, v := range st.live {
		c.live[k] = v
	}
	for k := range st.deferred {
		c.deferred[k] = true
	}
	c.params = st.params // shared: set once at entry
	return c
}

// merge joins two branch outcomes conservatively: a guard is as live as
// the livest branch, and a deferred exit on either branch counts.
func (st *guardState) merge(other *guardState) {
	for k, v := range other.live {
		if v > st.live[k] {
			st.live[k] = v
		}
	}
	for k := range other.deferred {
		st.deferred[k] = true
	}
}

func (st *guardState) anyLive() bool {
	for _, v := range st.live {
		if v > 0 {
			return true
		}
	}
	return false
}

type guardWalker struct {
	prog   *Program
	pkg    *Package
	bf     *blockFacts
	report func(pos token.Pos, format string, args ...any)
}

func checkGuardFunc(prog *Program, pkg *Package, ftype *ast.FuncType, body *ast.BlockStmt, report func(pos token.Pos, format string, args ...any)) {
	w := &guardWalker{prog: prog, pkg: pkg, bf: prog.blocks(), report: report}
	st := newGuardState()
	if ftype.Params != nil {
		for _, field := range ftype.Params.List {
			for _, name := range field.Names {
				if v, ok := pkg.Info.Defs[name].(*types.Var); ok && isGuardType(v.Type(), w.bf.guardType) {
					st.live[name.Name] = 1
					st.params[name.Name] = true
				}
			}
		}
	}
	terminated := w.walkStmts(body.List, st)
	if !terminated {
		w.checkReturn(st, nil, body.End()-1)
	}
}

// walkStmts runs the walker over a statement list, mutating st in
// place. It reports true when the list definitely terminates (returns
// on every path or spins forever), meaning no fall-through exit exists.
func (w *guardWalker) walkStmts(stmts []ast.Stmt, st *guardState) bool {
	for _, s := range stmts {
		if w.walkStmt(s, st) {
			return true
		}
	}
	return false
}

func (w *guardWalker) walkStmt(s ast.Stmt, st *guardState) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)

	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.scanExpr(s.Cond, st)
		// `if g != nil { ... }` around guard ops is the codebase's idiom
		// for structures whose GC mode passes a nil guard: in the implicit
		// else branch the guard does not exist, so the then-branch's
		// effects are effectively unconditional.
		if key, ok := w.nilCheckedGuard(s.Cond); ok && s.Else == nil {
			if w.walkStmt(s.Body, st) {
				// The nil-guard path continues with no section open.
				st.live[key] = 0
			}
			return false
		}
		thenSt := st.clone()
		tThen := w.walkStmt(s.Body, thenSt)
		elseSt := st.clone()
		tElse := false
		if s.Else != nil {
			tElse = w.walkStmt(s.Else, elseSt)
		}
		switch {
		case tThen && tElse:
			return true
		case tThen:
			*st = *elseSt
		case tElse:
			*st = *thenSt
		default:
			*st = *thenSt
			st.merge(elseSt)
		}
		return false

	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			w.scanExpr(s.Cond, st)
		}
		entry := st.clone()
		bodySt := st.clone()
		w.walkStmt(s.Body, bodySt)
		if s.Post != nil {
			w.walkStmt(s.Post, bodySt)
		}
		// A guard entered inside the body and still open at the bottom
		// leaks one section per iteration.
		for k, v := range bodySt.live {
			if v > entry.live[k] && !bodySt.deferred[k] {
				w.report(s.Pos(), "guard %s re-enters across loop iterations without a matching Exit", k)
			}
		}
		*st = *entry
		st.merge(bodySt)
		// `for { ... }` with no break never falls through.
		return s.Cond == nil && !hasBreak(s.Body)

	case *ast.RangeStmt:
		w.scanExpr(s.X, st)
		entry := st.clone()
		bodySt := st.clone()
		w.walkStmt(s.Body, bodySt)
		for k, v := range bodySt.live {
			if v > entry.live[k] && !bodySt.deferred[k] {
				w.report(s.Pos(), "guard %s re-enters across loop iterations without a matching Exit", k)
			}
		}
		*st = *entry
		st.merge(bodySt)
		return false

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var body *ast.BlockStmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			if sw.Init != nil {
				w.walkStmt(sw.Init, st)
			}
			if sw.Tag != nil {
				w.scanExpr(sw.Tag, st)
			}
			body = sw.Body
		case *ast.TypeSwitchStmt:
			body = sw.Body
		}
		entry := st.clone()
		merged := false
		for _, c := range body.List {
			cc := c.(*ast.CaseClause)
			caseSt := entry.clone()
			if !w.walkStmts(cc.Body, caseSt) {
				if !merged {
					*st = *caseSt
					merged = true
				} else {
					st.merge(caseSt)
				}
			}
		}
		if !merged {
			*st = *entry
		} else {
			st.merge(entry) // no-default or all-guards paths fall through too
		}
		return false

	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc := c.(*ast.CommClause); cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault && st.anyLive() {
			w.report(s.Pos(), "select may park while guard %s is live", st.someLive())
		}
		entry := st.clone()
		merged := false
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			caseSt := entry.clone()
			if !w.walkStmts(cc.Body, caseSt) {
				if !merged {
					*st = *caseSt
					merged = true
				} else {
					st.merge(caseSt)
				}
			}
		}
		if !merged {
			*st = *entry
		}
		return false

	case *ast.ReturnStmt:
		for _, res := range s.Results {
			w.scanExpr(res, st)
		}
		w.checkReturn(st, s.Results, s.Pos())
		return true

	case *ast.BranchStmt:
		// break/continue/goto end this path as far as straight-line
		// tracking goes; the loop-level merge covers the rejoin.
		return s.Tok != token.FALLTHROUGH

	case *ast.DeferStmt:
		w.applyDefer(s, st)
		return false

	case *ast.GoStmt:
		// The spawned goroutine runs under its own sections; its body is
		// checked when its FuncLit is visited. Arguments evaluate now.
		for _, arg := range s.Call.Args {
			w.scanExpr(arg, st)
		}
		return false

	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)

	case *ast.ExprStmt:
		w.scanExpr(s.X, st)
		return false

	case *ast.SendStmt:
		w.scanExpr(s.Value, st)
		if st.anyLive() {
			w.report(s.Pos(), "channel send may park while guard %s is live", st.someLive())
		}
		return false

	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.scanExpr(rhs, st)
		}
		for _, lhs := range s.Lhs {
			w.scanExpr(lhs, st)
		}
		// `g := producer()` marks g live: the producer Entered it before
		// returning it.
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
				if fn := staticCallee(w.pkg.Info, call); fn != nil {
					if facts, ok := w.bf.byFunc[fn]; ok && facts.produces {
						if id, ok := ast.Unparen(s.Lhs[0]).(*ast.Ident); ok {
							st.live[id.Name]++
						}
					}
				}
			}
		}
		return false

	case *ast.IncDecStmt:
		w.scanExpr(s.X, st)
		return false

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.scanExpr(v, st)
					}
				}
			}
		}
		return false
	}
	return false
}

// checkReturn reports locally-entered guards still live at a return (or
// at the function's fall-through end). Deferred exits satisfy the rule;
// guards returned to the caller are producers, which own the obligation
// upstream; parameter guards belong to the caller.
func (w *guardWalker) checkReturn(st *guardState, results []ast.Expr, pos token.Pos) {
	escaping := make(map[string]bool)
	for _, res := range results {
		if id, ok := ast.Unparen(res).(*ast.Ident); ok {
			escaping[id.Name] = true
		}
	}
	for k, v := range st.live {
		if v <= 0 || st.deferred[k] || st.params[k] || escaping[k] {
			continue
		}
		w.report(pos, "guard %s may still be in a section on this return path (missing Exit or defer)", k)
	}
}

// applyDefer handles defer statements: `defer g.Exit()`, `defer
// release(g)`, and `defer func() { ...g.Exit()... }()` all register a
// function-exit release for g.
func (w *guardWalker) applyDefer(s *ast.DeferStmt, st *guardState) {
	for _, arg := range s.Call.Args {
		w.scanExpr(arg, st)
	}
	if key, op := w.guardMethod(s.Call); op == "Exit" || op == "Release" {
		st.deferred[key] = true
		return
	}
	for _, key := range w.releaserArgs(s.Call) {
		st.deferred[key] = true
	}
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if key, op := w.guardMethod(call); op == "Exit" || op == "Release" {
				st.deferred[key] = true
			}
			for _, key := range w.releaserArgs(call) {
				st.deferred[key] = true
			}
			return true
		})
	}
}

// scanExpr processes an expression for guard state changes and blocking
// operations, in source order.
func (w *guardWalker) scanExpr(e ast.Expr, st *guardState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Closures run later under their own discipline; check their
			// bodies as independent functions.
			checkGuardFunc(w.prog, w.pkg, n.Type, n.Body, w.report)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && st.anyLive() {
				w.report(n.Pos(), "channel receive may park while guard %s is live", st.someLive())
			}
		case *ast.CallExpr:
			// Arguments first (source order approximation).
			for _, arg := range n.Args {
				w.scanExpr(arg, st)
			}
			w.applyCall(n, st)
			return false
		}
		return true
	})
}

// applyCall folds one call's effect into the state: guard method calls
// move the live count, releaser helpers exit their guard arguments, and
// calls that may block are reported when any guard is live.
func (w *guardWalker) applyCall(call *ast.CallExpr, st *guardState) {
	if key, op := w.guardMethod(call); key != "" {
		switch op {
		case "Enter":
			st.live[key]++
		case "Exit", "Release":
			if st.live[key] > 0 {
				st.live[key]--
			}
		}
		return
	}
	for _, key := range w.releaserArgs(call) {
		if st.live[key] > 0 {
			st.live[key]--
		}
	}
	if !st.anyLive() {
		return
	}
	// Blocking check: park-layer and transitively-blocking module calls.
	fn := staticCallee(w.pkg.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if w.prog.reclaimLayer(fn.Pkg().Path()) {
		return
	}
	if isBlockingStdCall(w.pkg.Info, call) {
		w.report(call.Pos(), "%s may park while guard %s is live", fn.Name(), st.someLive())
		return
	}
	if fn.Pkg().Path() == w.prog.ModulePath+"/internal/park" {
		w.report(call.Pos(), "internal/park call %s while guard %s is live", fn.Name(), st.someLive())
		return
	}
	if facts, ok := w.bf.byFunc[fn]; ok && facts.mayBlock {
		w.report(call.Pos(), "call to %s may park while guard %s is live", fn.Name(), st.someLive())
	}
}

// guardMethod matches `<key>.Enter()` / `<key>.Exit()` / `<key>.Release()`
// on a guard-typed receiver and returns the canonical key and method
// name.
func (w *guardWalker) guardMethod(call *ast.CallExpr) (key, op string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Enter", "Exit", "Release":
	default:
		return "", ""
	}
	if tv, ok := w.pkg.Info.Types[sel.X]; !ok || !isGuardType(tv.Type, w.bf.guardType) {
		return "", ""
	}
	key = exprKey(sel.X)
	if key == "" {
		return "", ""
	}
	return key, sel.Sel.Name
}

// releaserArgs returns the canonical keys of guard arguments passed to
// a summarized releaser helper (one that Exits/Releases that
// parameter).
func (w *guardWalker) releaserArgs(call *ast.CallExpr) []string {
	fn := staticCallee(w.pkg.Info, call)
	if fn == nil {
		return nil
	}
	facts, ok := w.bf.byFunc[fn]
	if !ok || len(facts.releases) == 0 {
		return nil
	}
	var keys []string
	for idx := range facts.releases {
		if idx < len(call.Args) {
			if key := exprKey(call.Args[idx]); key != "" {
				keys = append(keys, key)
			}
		}
	}
	return keys
}

// nilCheckedGuard matches the `<guard> != nil` condition idiom.
func (w *guardWalker) nilCheckedGuard(cond ast.Expr) (string, bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.NEQ {
		return "", false
	}
	var guardSide ast.Expr
	if isNilIdent(be.Y) {
		guardSide = be.X
	} else if isNilIdent(be.X) {
		guardSide = be.Y
	} else {
		return "", false
	}
	tv, ok := w.pkg.Info.Types[guardSide]
	if !ok || !isGuardType(tv.Type, w.bf.guardType) {
		return "", false
	}
	key := exprKey(guardSide)
	return key, key != ""
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// exprKey canonicalizes simple guard expressions (g, q.g) for state
// tracking; anything fancier is untracked.
func exprKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if base := exprKey(e.X); base != "" {
			return base + "." + e.Sel.Name
		}
	}
	return ""
}

// someLive names one live guard for the diagnostic text.
func (st *guardState) someLive() string {
	best := ""
	for k, v := range st.live {
		if v > 0 && (best == "" || k < best) {
			best = k
		}
	}
	return best
}

// hasBreak reports whether body contains a break that targets the
// enclosing loop (unlabeled, not inside a nested loop/switch/select
// which would rebind it).
func hasBreak(body ast.Stmt) bool {
	found := false
	var walk func(n ast.Stmt)
	walk = func(n ast.Stmt) {
		if n == nil || found {
			return
		}
		switch n := n.(type) {
		case *ast.BranchStmt:
			if n.Tok == token.BREAK {
				found = true
			}
		case *ast.BlockStmt:
			for _, s := range n.List {
				walk(s)
			}
		case *ast.IfStmt:
			walk(n.Body)
			walk(n.Else)
		case *ast.LabeledStmt:
			walk(n.Stmt)
		case *ast.CaseClause:
			for _, s := range n.Body {
				walk(s)
			}
		}
		// Nested for/range/switch/select rebind break; labeled breaks out
		// of them are rare enough to accept the imprecision.
	}
	walk(body)
	return found
}
