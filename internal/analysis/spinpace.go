package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SpinPace flags unbounded CAS-retry loops with no pacing: a `for` loop
// that retries a CompareAndSwap and whose body neither backs off
// (contend.Backoff), yields (runtime.Gosched), sleeps, parks, nor
// performs a channel operation. On a loaded machine such a loop is a
// priority-inversion livelock risk — the spinner can occupy the OS
// thread that the thread it is waiting on needs (the scenario
// contend.Backoff's spinsBeforeYield threshold exists for).
//
// A loop with a bound (a real loop condition that is not itself the CAS
// retry) or whose body always leaves the loop is not a spin. Calls to
// module functions that transitively pace (a helper that calls
// Backoff.Pause) count as pacing; calls through interfaces do not, so a
// loop that paces behind an interface needs a
// //cdsvet:ignore spinpace <reason> pragma — as does a genuinely
// lock-free retry whose CAS failure proves a competitor made progress
// and which the author judges tight enough to spin bare.
var SpinPace = &Analyzer{
	Name: "spinpace",
	Doc:  "unbounded CAS retry loops must pace with contend.Backoff, Gosched, or parking",
	Run:  runSpinPace,
}

func runSpinPace(prog *Program, report func(pos token.Pos, format string, args ...any)) {
	paceFns := pacingFuncs(prog)
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				loop, ok := n.(*ast.ForStmt)
				if !ok {
					return true
				}
				condCAS := loop.Cond != nil && containsCAS(pkg.Info, loop.Cond)
				if loop.Cond != nil && !condCAS {
					return true // bounded by a non-CAS condition
				}
				if !condCAS && !containsCAS(pkg.Info, loop.Body) {
					return true // not a CAS retry loop
				}
				if !loopsBack(loop.Body) {
					return true // every path leaves the loop on first pass
				}
				if hasPacing(prog, pkg, paceFns, loop) {
					return true
				}
				report(loop.Pos(), "unbounded CAS retry loop with no pacing (contend.Backoff, Gosched, park, or channel op)")
				return true
			})
		}
	}
}

// containsCAS reports whether the node performs a compare-and-swap:
// the sync/atomic CompareAndSwap* functions or the CompareAndSwap /
// CompareAndDelete methods of the typed atomics.
func containsCAS(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if !strings.HasPrefix(sel.Sel.Name, "CompareAnd") {
			return true
		}
		if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
			if fn.Pkg().Path() == "sync/atomic" {
				found = true
				return false
			}
		}
		// Typed atomics: method CompareAndSwap on a sync/atomic receiver
		// (including fields of that type).
		if selection, ok := info.Selections[sel]; ok && selection.Kind() == types.MethodVal {
			if isAtomicType(derefType(selection.Recv())) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func derefType(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// loopsBack reports whether the body can reach the loop's bottom (or a
// continue) — i.e. whether a second iteration is possible. A body whose
// last statement unconditionally breaks or returns, with no continue
// anywhere, runs at most once.
func loopsBack(body *ast.BlockStmt) bool {
	hasContinue := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BranchStmt:
			if n.Tok == token.CONTINUE {
				hasContinue = true
			}
		case *ast.ForStmt, *ast.RangeStmt:
			return false // continue in a nested loop targets that loop
		}
		return true
	})
	if hasContinue {
		return true
	}
	if len(body.List) == 0 {
		return true
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt:
		return false
	case *ast.BranchStmt:
		return last.Tok != token.BREAK
	}
	return true
}

// hasPacing reports whether the loop body (or condition) contains a
// pacing operation.
func hasPacing(prog *Program, pkg *Package, paceFns map[*types.Func]bool, loop *ast.ForStmt) bool {
	found := false
	check := func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.CallExpr:
			if isPacingCall(prog, pkg.Info, paceFns, n) {
				found = true
			}
		}
		return !found
	}
	ast.Inspect(loop.Body, check)
	if !found && loop.Cond != nil {
		ast.Inspect(loop.Cond, check)
	}
	if !found && loop.Post != nil {
		ast.Inspect(loop.Post, check)
	}
	return found
}

func isPacingCall(prog *Program, info *types.Info, paceFns map[*types.Func]bool, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if ok {
		if fn, okU := info.Uses[sel.Sel].(*types.Func); okU && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "runtime":
				if fn.Name() == "Gosched" {
					return true
				}
			case "time":
				if fn.Name() == "Sleep" {
					return true
				}
			case "sync":
				// Blocking on a lock is pacing (the scheduler gets the
				// thread back).
				if fn.Name() == "Lock" || fn.Name() == "RLock" || fn.Name() == "Wait" {
					return true
				}
			case prog.ModulePath + "/contend":
				// Any contend call in a retry loop is contention
				// management: Backoff.Pause above all, but the exchanger /
				// delegation entry points pace too.
				return true
			case prog.ModulePath + "/internal/park":
				return true
			}
		}
	}
	// Module helpers that transitively pace or block.
	if fn := staticCallee(info, call); fn != nil {
		if paceFns[fn] {
			return true
		}
	}
	return false
}

// pacingFuncs computes, to a fixpoint, the module functions whose call
// amounts to pacing: they block (per the guardexit summaries) or they
// reach a pacing primitive like Backoff.Pause or Gosched.
func pacingFuncs(prog *Program) map[*types.Func]bool {
	bf := prog.blocks()
	paced := make(map[*types.Func]bool)
	type declInfo struct {
		fn   *types.Func
		body *ast.BlockStmt
		pkg  *Package
	}
	var decls []declInfo
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						decls = append(decls, declInfo{fn, fd.Body, pkg})
						if facts, ok := bf.byFunc[fn]; ok && facts.mayBlock {
							paced[fn] = true
						}
					}
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, di := range decls {
			if paced[di.fn] {
				continue
			}
			hit := false
			ast.Inspect(di.body, func(n ast.Node) bool {
				if hit {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isPacingCall(prog, di.pkg.Info, paced, call) {
					hit = true
					return false
				}
				return true
			})
			if hit {
				paced[di.fn] = true
				changed = true
			}
		}
	}
	return paced
}
