package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PadLayout checks that internal/pad is doing the job its users think
// it does. Two rules, both computed from types.Sizes offsets:
//
//  1. A struct that embeds pad.CacheLinePad (or pad.Padded) claims its
//     hot fields live on separate cache lines — so any two
//     atomically-accessed fields that still land on the same 64-byte
//     line mean the padding is in the wrong place or a refactor moved a
//     field past it.
//  2. An array or slice whose element struct has two or more
//     atomically-accessed fields and no padding at all invites false
//     sharing between neighbouring elements — the sharded/per-worker
//     slot layouts (striped counters, elimination arrays) are exactly
//     where this matters.
//
// "Atomically accessed" means a field of a sync/atomic type, or a plain
// field whose address feeds sync/atomic calls (the atomicmix fact set).
// Offsets for generic structs are computed with the gc layout model's
// defaults for type parameters, which is exact whenever the atomic
// fields precede any type-parameter-typed field (the layout the
// codebase uses).
var PadLayout = &Analyzer{
	Name: "padlayout",
	Doc:  "pad-using structs must separate atomic fields into distinct cache lines",
	Run:  runPadLayout,
}

// cacheLine mirrors pad.CacheLineSize; the analyzer states the
// convention rather than importing the package it checks.
const cacheLine = 64

func runPadLayout(prog *Program, report func(pos token.Pos, format string, args ...any)) {
	atomics := prog.atomics()
	padPath := prog.ModulePath + "/internal/pad"

	for _, pkg := range prog.Packages {
		if pkg.Path == padPath {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				obj, ok := pkg.Info.Defs[ts.Name]
				if !ok {
					return true
				}
				named, ok := obj.Type().(*types.Named)
				if !ok {
					return true
				}
				styp, ok := named.Underlying().(*types.Struct)
				if !ok {
					return true
				}
				checkPaddedStruct(prog, atomics, padPath, ts.Name.Name, st, styp, report)
				return true
			})
			checkElementTypes(prog, pkg, file, atomics, padPath, report)
		}
	}
}

// checkPaddedStruct applies rule 1 to one struct declaration.
func checkPaddedStruct(prog *Program, atomics *atomicFacts, padPath, name string, decl *ast.StructType, styp *types.Struct, report func(pos token.Pos, format string, args ...any)) {
	if !usesPad(styp, padPath) {
		return
	}
	leaves := atomicLeaves(prog, atomics, styp, 0)
	if len(leaves) < 2 {
		return
	}
	offsets := structOffsets(prog.Sizes, styp)
	if offsets == nil {
		return
	}
	for i := 1; i < len(leaves); i++ {
		prev, cur := leaves[i-1], leaves[i]
		if prev.offset/cacheLine == cur.offset/cacheLine {
			report(fieldPos(decl, styp, cur.topIndex), "%s uses internal/pad but atomic fields %s (offset %d) and %s (offset %d) share a %d-byte cache line",
				name, prev.path, prev.offset, cur.path, cur.offset, cacheLine)
		}
	}
}

// checkElementTypes applies rule 2: flag []T / [N]T composite fields
// whose element struct packs ≥2 atomic fields with no padding.
func checkElementTypes(prog *Program, pkg *Package, file *ast.File, atomics *atomicFacts, padPath string, report func(pos token.Pos, format string, args ...any)) {
	ast.Inspect(file, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok {
			return true
		}
		for _, field := range st.Fields.List {
			tv, ok := pkg.Info.Types[field.Type]
			if !ok {
				continue
			}
			var elem types.Type
			switch t := tv.Type.Underlying().(type) {
			case *types.Slice:
				elem = t.Elem()
			case *types.Array:
				elem = t.Elem()
			default:
				continue
			}
			es, ok := elem.Underlying().(*types.Struct)
			if !ok {
				continue // pointers and scalars don't share element lines
			}
			if usesPad(es, padPath) || isPadded(elem, padPath) {
				continue
			}
			if leaves := atomicLeaves(prog, atomics, es, 0); len(leaves) >= 2 {
				report(field.Pos(), "element type %s packs %d atomic fields with no internal/pad separation; neighbouring elements will false-share",
					types.TypeString(elem, types.RelativeTo(pkg.Types)), len(leaves))
			}
		}
		return true
	})
}

type atomicLeaf struct {
	path     string
	offset   int64
	topIndex int // index of the top-level field this leaf lives under
}

// atomicLeaves flattens a struct (recursing through embedded value
// structs) into its atomically-accessed leaf fields with cumulative
// offsets, in declaration order.
func atomicLeaves(prog *Program, atomics *atomicFacts, styp *types.Struct, base int64) []atomicLeaf {
	offsets := structOffsets(prog.Sizes, styp)
	if offsets == nil {
		return nil
	}
	var leaves []atomicLeaf
	for i := 0; i < styp.NumFields(); i++ {
		f := styp.Field(i)
		switch {
		case isAtomicField(prog, atomics, f):
			leaves = append(leaves, atomicLeaf{f.Name(), base + offsets[i], i})
		default:
			// Recurse into module-defined value structs only: external
			// types (a sync.RWMutex, say) contain atomics the user cannot
			// re-pad, so they stay opaque.
			if !isModuleStruct(prog, f.Type()) {
				continue
			}
			if sub, ok := f.Type().Underlying().(*types.Struct); ok {
				for _, leaf := range atomicLeaves(prog, atomics, sub, base+offsets[i]) {
					leaf.path = f.Name() + "." + leaf.path
					leaf.topIndex = i
					leaves = append(leaves, leaf)
				}
			}
		}
	}
	return leaves
}

// isModuleStruct reports whether t is a struct type defined inside the
// module (or an anonymous struct literal, which has no package).
func isModuleStruct(prog *Program, t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		_, anon := t.Underlying().(*types.Struct)
		return anon
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return false
	}
	return pkg.Path() == prog.ModulePath || strings.HasPrefix(pkg.Path(), prog.ModulePath+"/")
}

// isAtomicField reports whether f is atomic data: a sync/atomic typed
// field or a member of the sync/atomic-call fact set.
func isAtomicField(prog *Program, atomics *atomicFacts, f *types.Var) bool {
	if isAtomicType(f.Type()) {
		return true
	}
	for key := range atomics.uses {
		if key.obj == f && key.depth == 0 {
			return true
		}
	}
	return false
}

func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	// Exported only: sync/atomic's private helpers (noCopy, align64)
	// are layout glue, not atomic data.
	return pkg != nil && pkg.Path() == "sync/atomic" && named.Obj().Exported()
}

// usesPad reports whether styp has a direct field of a pad type.
func usesPad(styp *types.Struct, padPath string) bool {
	for i := 0; i < styp.NumFields(); i++ {
		if isPadded(styp.Field(i).Type(), padPath) {
			return true
		}
	}
	return false
}

func isPadded(t types.Type, padPath string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == padPath
}

// structOffsets wraps Sizes.Offsetsof, absorbing the panic go/types
// raises for layouts it cannot size (exotic type-parameter cases).
func structOffsets(sizes types.Sizes, styp *types.Struct) (offsets []int64) {
	defer func() {
		if recover() != nil {
			offsets = nil
		}
	}()
	fields := make([]*types.Var, styp.NumFields())
	for i := range fields {
		fields[i] = styp.Field(i)
	}
	return sizes.Offsetsof(fields)
}

// fieldPos locates the declaration position of top-level field i, for
// pragma-friendly reporting; falls back to the struct position.
func fieldPos(decl *ast.StructType, styp *types.Struct, i int) token.Pos {
	idx := 0
	for _, field := range decl.Fields.List {
		n := len(field.Names)
		if n == 0 {
			n = 1 // embedded
		}
		if i < idx+n {
			return field.Pos()
		}
		idx += n
	}
	return decl.Pos()
}
