package epoch

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestSequentialRetireAndCollect(t *testing.T) {
	c := NewCollector()
	p := c.Register()
	defer c.Unregister(p)

	freed := 0
	for i := 0; i < 10; i++ {
		p.Retire(func() { freed++ })
	}
	if got := c.Pending(); got != 10 {
		t.Fatalf("Pending = %d, want 10", got)
	}
	// With no pins anywhere, three advances age everything out.
	for i := 0; i < 3; i++ {
		if !c.TryAdvance() {
			t.Fatalf("advance %d failed with no pinned participants", i)
		}
	}
	p.Collect()
	if freed != 10 {
		t.Fatalf("freed = %d, want 10", freed)
	}
	if got := c.Reclaimed(); got != 10 {
		t.Fatalf("Reclaimed = %d, want 10", got)
	}
	if got := c.Pending(); got != 0 {
		t.Fatalf("Pending = %d, want 0", got)
	}
}

func TestPinBlocksAdvance(t *testing.T) {
	c := NewCollector()
	p := c.Register()
	defer c.Unregister(p)

	p.Pin()
	e := c.Epoch()
	if !c.TryAdvance() {
		t.Fatal("first advance should succeed: pinned participant has seen the current epoch")
	}
	// p is still pinned at e; the next advance requires p to observe e+1.
	if c.TryAdvance() {
		t.Fatalf("advance to %d succeeded while a participant is pinned at %d", e+2, e)
	}
	p.Unpin()
	if !c.TryAdvance() {
		t.Fatal("advance after Unpin failed")
	}
}

func TestRetiredNotFreedWhilePinnedReaderCanHoldIt(t *testing.T) {
	// The core safety invariant, tested mechanically: a reader pins and
	// "acquires" an object; a writer retires it; the object must not be
	// freed until after the reader unpins.
	c := NewCollector()
	reader := c.Register()
	writer := c.Register()
	defer c.Unregister(reader)
	defer c.Unregister(writer)

	var freed atomic.Bool
	reader.Pin()
	// Reader holds a conceptual reference from inside its section.
	writer.Retire(func() { freed.Store(true) })

	// Writer tries hard to reclaim; the pinned reader must prevent it.
	for i := 0; i < 10; i++ {
		c.TryAdvance()
		writer.Collect()
	}
	if freed.Load() {
		t.Fatal("object freed while a reader pinned at retire epoch was active")
	}
	reader.Unpin()
	for i := 0; i < 3; i++ {
		c.TryAdvance()
	}
	writer.Collect()
	if !freed.Load() {
		t.Fatal("object never freed after reader unpinned")
	}
}

func TestNestedPins(t *testing.T) {
	c := NewCollector()
	p := c.Register()
	defer c.Unregister(p)

	p.Pin()
	p.Pin()
	p.Unpin()
	// Still pinned: epoch must not advance twice.
	c.TryAdvance()
	if c.TryAdvance() {
		t.Fatal("epoch advanced twice under a nested pin")
	}
	p.Unpin()
	if !c.TryAdvance() {
		t.Fatal("advance failed after full unpin")
	}
}

func TestUnpinWithoutPinPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Unpin without Pin did not panic")
		}
	}()
	c := NewCollector()
	p := c.Register()
	p.Unpin()
}

func TestUnregisterInheritsBags(t *testing.T) {
	c := NewCollector()
	p := c.Register()
	blocker := c.Register()
	defer c.Unregister(blocker)

	var freed atomic.Int64
	blocker.Pin()
	for i := 0; i < 5; i++ {
		p.Retire(func() { freed.Add(1) })
	}
	c.Unregister(p) // bags become orphans; blocker still pinned
	if freed.Load() != 0 {
		t.Fatal("orphan bags freed while blocker pinned at retire epoch")
	}
	blocker.Unpin()
	for i := 0; i < 3; i++ {
		c.TryAdvance()
	}
	if got := freed.Load(); got != 5 {
		t.Fatalf("orphans freed = %d, want 5", got)
	}
}

func TestUnregisterPinnedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Unregister of pinned participant did not panic")
		}
	}()
	c := NewCollector()
	p := c.Register()
	p.Pin()
	c.Unregister(p)
}

// TestLostAdvanceStillDrainsOrphans pins down the orphan-drain liveness
// rule: a TryAdvance whose CAS loses to a concurrent advance must still
// drain aged-out orphan bags, because the winner may have drained *before*
// those orphans were parked (an Unregister landing in between). The old
// code drained only on CAS success, so the bag lingered until the next
// successful advance — arbitrarily far away once callers go quiescent.
func TestLostAdvanceStillDrainsOrphans(t *testing.T) {
	c := NewCollector()
	for c.Epoch() < 5 {
		if !c.TryAdvance() {
			t.Fatal("setup advance failed with no participants")
		}
	}

	var freed atomic.Int64
	fired := false
	c.advanceTestHook = func() {
		if fired {
			return
		}
		fired = true
		// A concurrent winner advances 5→6 and drains (nothing aged yet)...
		if !c.global.CompareAndSwap(5, 6) {
			t.Fatal("hook: concurrent advance failed")
		}
		c.drainOrphans()
		// ...then an Unregister lands: a bag retired at epoch 4 is parked
		// as an orphan — already aged out (4+2 <= 6) but missed by the
		// winner's drain.
		c.mu.Lock()
		c.orphans[4] = append(c.orphans[4], func() { freed.Add(1) })
		c.mu.Unlock()
		c.orphanCount.Add(1)
		c.pending.Add(1)
	}

	if c.TryAdvance() {
		t.Fatal("TryAdvance CAS should have lost to the hooked concurrent advance")
	}
	if got := freed.Load(); got != 1 {
		t.Fatalf("aged-out orphan bag not drained after losing the advance race: freed = %d, want 1", got)
	}
	if got := c.Pending(); got != 0 {
		t.Fatalf("Pending = %d after drain, want 0", got)
	}
}

// TestOrphanAgingUnderRacingAdvances churns unregistering participants
// (each parking an orphan bag) against goroutines hammering TryAdvance, so
// the CAS-lost drain path runs concurrently with winners' drains — the
// interleaving the race detector must see clean — and every orphan is
// eventually freed while the advancers are still racing.
func TestOrphanAgingUnderRacingAdvances(t *testing.T) {
	c := NewCollector()
	var freed atomic.Int64
	const total = 500

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.TryAdvance()
				}
			}
		}()
	}
	for i := 0; i < total; i++ {
		p := c.Register()
		p.Retire(func() { freed.Add(1) })
		c.Unregister(p)
	}
	// Liveness: with no pinned participants the racers keep advancing, and
	// every observation of an advance (won or lost) drains aged bags.
	for spin := 0; freed.Load() < total && spin < 1e8; spin++ {
		runtime.Gosched()
	}
	close(stop)
	wg.Wait()
	if got := freed.Load(); got != total {
		t.Fatalf("orphans freed = %d, want %d", got, total)
	}
	if got := c.Pending(); got != 0 {
		t.Fatalf("Pending = %d, want 0", got)
	}
}

// TestConcurrentReclamationStress runs readers continuously pinning and
// "accessing" a shared object graph while writers unlink+retire objects.
// Invariant: no reader ever observes an object after its destructor ran.
func TestConcurrentReclamationStress(t *testing.T) {
	type object struct {
		freed atomic.Bool
	}
	c := NewCollector()

	// shared holds the currently linked object (like a head pointer).
	var shared atomic.Pointer[object]
	shared.Store(&object{})

	var (
		rwg, wwg sync.WaitGroup
		stop     = make(chan struct{})
		readers  = max(2, runtime.GOMAXPROCS(0)/2)
		writers  = 2
		observed atomic.Int64
	)
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			p := c.Register()
			defer c.Unregister(p)
			for {
				select {
				case <-stop:
					return
				default:
				}
				p.Pin()
				obj := shared.Load() // reachable ⇒ not yet reclaimable
				if obj.freed.Load() {
					t.Error("reader reached a freed object")
					p.Unpin()
					return
				}
				observed.Add(1)
				p.Unpin()
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			p := c.Register()
			defer c.Unregister(p)
			for i := 0; i < 20000; i++ {
				old := shared.Swap(&object{}) // unlink
				p.Retire(func() { old.freed.Store(true) })
			}
		}()
	}
	wwg.Wait()  // writers finish first
	close(stop) // then release the readers
	rwg.Wait()

	if t.Failed() {
		return
	}
	if c.Reclaimed() == 0 {
		t.Fatal("stress run reclaimed nothing — protocol inert")
	}
	if observed.Load() == 0 {
		t.Fatal("readers never ran")
	}
}
