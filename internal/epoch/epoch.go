// Package epoch implements epoch-based memory reclamation (EBR; Fraser
// 2004), the quiescence scheme that lock-free structures in non-GC
// languages use to decide when an unlinked node is safe to free.
//
// Go's garbage collector already guarantees memory safety, so the
// structures in this module do not *need* EBR — but the survey treats
// reclamation as a core part of lock-free data structure design, and its
// costs (read-side pinning, deferred destruction bursts) are part of the
// canonical measurements (experiment F12). This implementation is the real
// protocol: deferred destructors run only when no pinned reader could
// still hold a reference, and the invariant tests in this package verify
// exactly that.
//
// Protocol: readers pin the current global epoch while accessing shared
// nodes. Writers retire nodes into the bag of the epoch current at retire
// time. The global epoch advances from e to e+1 only when every pinned
// participant has observed e; hence when the global epoch reaches e+2, no
// reader can still be inside a critical section that began at epoch e, and
// bags retired at e may be drained. Three bags per participant suffice
// because at most three epochs {e-1, e, e+1} can be "live" at once.
package epoch

import (
	"sync"
	"sync/atomic"

	"github.com/cds-suite/cds/internal/pad"
)

// epochBags is the number of retirement generations kept per participant.
const epochBags = 3

// Collector coordinates epochs across participants. One Collector serves
// one data structure (or a family sharing reclamation).
type Collector struct {
	global atomic.Uint64

	// advancing single-flights TryAdvance's registry scan: concurrent
	// callers skip instead of convoying on mu behind the scanner, which
	// keeps heavily retiring workloads from serialising on the registry
	// lock (the scan is O(participants) and runs on a retire cadence).
	advancing atomic.Bool

	mu           sync.Mutex // guards participants registry and orphans
	participants []*Participant
	// orphans holds bags inherited from unregistered participants, keyed
	// by retirement epoch; they age out under the same e+2 rule.
	orphans map[uint64][]func()
	// orphanCount mirrors the total size of orphans so hot paths can skip
	// the drain lock when there is nothing to drain.
	orphanCount atomic.Int64

	reclaimed atomic.Int64
	pending   atomic.Int64

	// advanceEvery is the per-participant Retire cadence for attempting an
	// epoch advance (and collecting aged bags). Fixed after construction.
	advanceEvery uint64

	// advanceTestHook, when non-nil, runs between TryAdvance's epoch load
	// and its CAS — the window where a concurrent advance makes the CAS
	// lose. Tests use it to pin down the orphan-drain liveness guarantee.
	advanceTestHook func()
}

// defaultAdvanceEvery is how many retirements a participant buffers between
// epoch-advance attempts.
const defaultAdvanceEvery = 64

// NewCollector returns a Collector at epoch 1.
func NewCollector() *Collector {
	c := &Collector{
		orphans:      make(map[uint64][]func()),
		advanceEvery: defaultAdvanceEvery,
	}
	c.global.Store(1)
	return c
}

// SetAdvanceInterval overrides how many retirements a participant buffers
// between epoch-advance attempts (for tests and tuning). Must be called
// before participants start retiring.
func (c *Collector) SetAdvanceInterval(n uint64) {
	if n < 1 {
		n = 1
	}
	c.advanceEvery = n
}

// Register adds a participant (one per accessing goroutine). Participants
// must be unregistered when their goroutine stops, or epoch advancement
// stalls and garbage accumulates — the classic EBR liveness caveat.
func (c *Collector) Register() *Participant {
	p := &Participant{c: c}
	c.mu.Lock()
	c.participants = append(c.participants, p)
	c.mu.Unlock()
	return p
}

// Unregister removes p. Its undrained bags are inherited by the collector
// as orphans and freed once their epochs age out — never early, even if
// other participants are still pinned in old epochs.
func (c *Collector) Unregister(p *Participant) {
	if p.pinDepth != 0 {
		panic("epoch: Unregister of a pinned participant")
	}
	c.mu.Lock()
	for i, q := range c.participants {
		if q == p {
			c.participants[i] = c.participants[len(c.participants)-1]
			c.participants = c.participants[:len(c.participants)-1]
			break
		}
	}
	for i := range p.bags {
		if len(p.bags[i]) > 0 {
			e := p.bagEpoch[i]
			c.orphans[e] = append(c.orphans[e], p.bags[i]...)
			c.orphanCount.Add(int64(len(p.bags[i])))
			p.bags[i] = nil
		}
	}
	c.mu.Unlock()
	c.TryAdvance()
}

// drainOrphans frees aged-out orphan bags. Called after epoch advances.
func (c *Collector) drainOrphans() {
	g := c.global.Load()
	var ready []func()
	c.mu.Lock()
	for e, bag := range c.orphans {
		if e+2 <= g {
			ready = append(ready, bag...)
			delete(c.orphans, e)
		}
	}
	c.orphanCount.Add(-int64(len(ready)))
	c.mu.Unlock()
	if len(ready) == 0 {
		return
	}
	for _, free := range ready {
		free()
	}
	c.reclaimed.Add(int64(len(ready)))
	c.pending.Add(-int64(len(ready)))
}

// Epoch returns the current global epoch (for monitoring and tests).
func (c *Collector) Epoch() uint64 { return c.global.Load() }

// Reclaimed returns the number of destructors run so far.
func (c *Collector) Reclaimed() int64 { return c.reclaimed.Load() }

// Pending returns the number of retired-but-not-yet-freed objects.
func (c *Collector) Pending() int64 { return c.pending.Load() }

// TryAdvance attempts to move the global epoch forward by one. It fails
// (harmlessly) if some participant is still pinned at an older epoch.
// It reports whether the epoch advanced.
func (c *Collector) TryAdvance() bool {
	e := c.global.Load()
	if !c.advancing.CompareAndSwap(false, true) {
		// Another caller is mid-scan; skip rather than queue behind it.
		// Still honour the drain-on-observed-advance rule below so aged
		// orphans cannot outlive an advance we raced with.
		if c.orphanCount.Load() > 0 && c.global.Load() > e {
			c.drainOrphans()
		}
		return false
	}
	c.mu.Lock()
	for _, p := range c.participants {
		s := p.state.Load()
		if s&1 == 1 && s>>1 != e {
			c.mu.Unlock()
			c.advancing.Store(false)
			return false // pinned in an older epoch
		}
	}
	c.mu.Unlock()
	if h := c.advanceTestHook; h != nil {
		h()
	}
	advanced := c.global.CompareAndSwap(e, e+1)
	c.advancing.Store(false)
	// Drain whenever an advance was observed — ours or a concurrent one
	// that beat our CAS. Draining only on CAS success leaves aged-out
	// orphan bags (e.g. from an Unregister that landed after the winner's
	// drain) lingering until the *next* successful advance, which may be
	// arbitrarily far away once the callers go quiescent.
	if (advanced || c.global.Load() > e) && c.orphanCount.Load() > 0 {
		c.drainOrphans()
	}
	return advanced
}

// Participant is one goroutine's registration with a Collector. Its
// methods must be called from a single goroutine at a time.
type Participant struct {
	c *Collector

	// state is epoch<<1|1 while pinned, 0 while quiescent.
	state atomic.Uint64
	_     pad.CacheLinePad

	// bags hold deferred destructors by retirement generation; owner-only.
	bags     [epochBags][]func()
	bagEpoch [epochBags]uint64

	pinEpoch uint64
	pinDepth int
	ops      uint64
}

// Pin enters a read-side critical section: the current epoch is held until
// the matching Unpin. Pins nest.
func (p *Participant) Pin() {
	if p.pinDepth == 0 {
		e := p.c.global.Load()
		p.pinEpoch = e
		// SC atomics order this store before the section's loads, which is
		// the fence EBR needs between "announce" and "read".
		p.state.Store(e<<1 | 1)
	}
	p.pinDepth++
}

// Unpin leaves the read-side critical section.
func (p *Participant) Unpin() {
	p.pinDepth--
	if p.pinDepth == 0 {
		p.state.Store(0)
	}
	if p.pinDepth < 0 {
		panic("epoch: Unpin without matching Pin")
	}
}

// Retire schedules free to run once no pinned reader can still reach the
// retired object. It may be called pinned or unpinned.
func (p *Participant) Retire(free func()) {
	e := p.c.global.Load()
	idx := e % epochBags
	if p.bagEpoch[idx] != e {
		// The slot holds a bag from epoch e-3 or older: e ≥ old+3 means
		// the global epoch passed old+2, so its contents are safe now.
		p.drainBag(idx)
		p.bagEpoch[idx] = e
	}
	p.bags[idx] = append(p.bags[idx], free)
	p.c.pending.Add(1)

	p.ops++
	if p.ops%p.c.advanceEvery == 0 {
		p.c.TryAdvance()
		p.Collect()
	}
}

// Collect drains every bag whose epoch has aged out (epoch ≤ global-2).
func (p *Participant) Collect() {
	g := p.c.global.Load()
	for i := range p.bags {
		if len(p.bags[i]) > 0 && p.bagEpoch[i]+2 <= g {
			p.drainBag(uint64(i))
		}
	}
}

// drainBag runs and clears bag idx. Owner-only.
func (p *Participant) drainBag(idx uint64) {
	bag := p.bags[idx]
	if len(bag) == 0 {
		return
	}
	p.bags[idx] = nil
	for _, free := range bag {
		free()
	}
	p.c.reclaimed.Add(int64(len(bag)))
	p.c.pending.Add(-int64(len(bag)))
}
