// Package park is the waiter-management core under the blocking (dual)
// structures in package dual: per-waiter futex-like permits built on
// channel primitives, plus a Lot (waiter set) for condition-style
// not-full/not-empty queues.
//
// A Permit is a single-waiter binary semaphore: Unpark deposits at most
// one token, Park consumes one, blocking until it arrives or the caller's
// context is cancelled. The intended discipline is spin-then-park: a
// waiter polls its structure-level condition a bounded number of times
// (cheap when the wait is short, which under rendezvous workloads it
// usually is) and only then allocates a Permit, publishes it where its
// waker can find it, re-checks the condition — closing the lost-wakeup
// window — and parks. Because the token is sticky, an Unpark that races
// ahead of the Park is never lost.
//
// The package is internal: the blocking semantics the survey discusses
// (partial operations that wait for a precondition instead of failing)
// are exposed through package dual; this layer only decides how a waiter
// sleeps and wakes.
package park

import (
	"context"
	"sync"
)

// Permit is a single-waiter binary semaphore. The zero value is not
// usable; construct with New. A Permit is intended for one waiter at a
// time: concurrent Parks on the same permit race for a single token.
type Permit struct {
	ch chan struct{}
}

// New returns an empty permit (no token available).
func New() *Permit {
	return &Permit{ch: make(chan struct{}, 1)}
}

// Unpark deposits the permit's token, releasing a current or future Park.
// At most one token is held: extra Unparks coalesce, so wakers may signal
// unconditionally without over-counting.
func (p *Permit) Unpark() {
	select {
	case p.ch <- struct{}{}:
	default:
	}
}

// TryAcquire consumes the token if one is available, without blocking —
// the non-blocking variant of Park.
func (p *Permit) TryAcquire() bool {
	select {
	case <-p.ch:
		return true
	default:
		return false
	}
}

// Park blocks until the token arrives or ctx is done, consuming the token
// on success. On cancellation an in-flight token stays deposited rather
// than being lost; the structures above this layer resolve the
// cancellation-vs-wakeup race at their own level (dual's transfer list
// settles it on the node's item CAS, and a Bounded waiter whose
// Lot.Withdraw reports it was already popped forwards the wakeup with
// WakeOne).
func (p *Permit) Park(ctx context.Context) error {
	select {
	case <-p.ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Lot is a set of parked waiters — the waiter-management half of a
// blocking structure's not-empty or not-full condition. Unlike sync.Cond
// it hands each waiter its own Permit, which makes three things possible:
// waiters can re-check their condition between enrolling and parking
// (closing the lost-wakeup window without holding a lock across the
// check), they can abandon the wait on context cancellation, and a waker
// never blocks. Wakeups are FIFO over enrolment order.
type Lot struct {
	mu sync.Mutex
	ws []*Permit
}

// Enroll registers p as a waiter. The caller must re-check its condition
// after enrolling and before parking: a waker that ran before enrolment
// has not seen p.
func (l *Lot) Enroll(p *Permit) {
	l.mu.Lock()
	l.ws = append(l.ws, p)
	l.mu.Unlock()
}

// Withdraw removes p from the set, reporting whether it was still
// enrolled. A false return means a waker already popped p — its token has
// been (or is about to be) deposited — so a cancelling waiter that gets
// false must forward the wakeup to another waiter.
func (l *Lot) Withdraw(p *Permit) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i, w := range l.ws {
		if w == p {
			last := len(l.ws) - 1
			copy(l.ws[i:], l.ws[i+1:])
			// Nil the vacated tail slot: the shift leaves a duplicate
			// reference there, and a long-lived Lot (a pool's idle set)
			// must not pin a dead waiter's permit.
			l.ws[last] = nil
			l.ws = l.ws[:last]
			return true
		}
	}
	return false
}

// WakeOne pops the oldest waiter and unparks it, reporting whether a
// waiter was present.
func (l *Lot) WakeOne() bool {
	l.mu.Lock()
	var p *Permit
	if len(l.ws) > 0 {
		p = l.ws[0]
		// Nil the slot before reslicing: the backing array retains the
		// popped prefix, and it must not keep dead permits reachable.
		l.ws[0] = nil
		l.ws = l.ws[1:]
	}
	l.mu.Unlock()
	if p == nil {
		return false
	}
	p.Unpark()
	return true
}

// WakeAll pops and unparks every enrolled waiter.
func (l *Lot) WakeAll() {
	l.mu.Lock()
	ws := l.ws
	l.ws = nil
	l.mu.Unlock()
	for _, p := range ws {
		p.Unpark()
	}
}

// Len reports the number of enrolled waiters.
func (l *Lot) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ws)
}
