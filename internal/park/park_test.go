package park

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPermitUnparkBeforePark(t *testing.T) {
	p := New()
	p.Unpark()
	if err := p.Park(context.Background()); err != nil {
		t.Fatalf("Park after Unpark: %v", err)
	}
}

func TestPermitUnparkCoalesces(t *testing.T) {
	p := New()
	p.Unpark()
	p.Unpark()
	if !p.TryAcquire() {
		t.Fatal("first TryAcquire failed")
	}
	if p.TryAcquire() {
		t.Fatal("double Unpark deposited two tokens")
	}
}

func TestPermitParkBlocksUntilUnpark(t *testing.T) {
	p := New()
	done := make(chan error, 1)
	go func() { done <- p.Park(context.Background()) }()
	select {
	case <-done:
		t.Fatal("Park returned without a token")
	case <-time.After(10 * time.Millisecond):
	}
	p.Unpark()
	if err := <-done; err != nil {
		t.Fatalf("Park: %v", err)
	}
}

func TestPermitParkCancellation(t *testing.T) {
	p := New()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.Park(ctx) }()
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("Park under cancellation: %v", err)
	}
	// A late Unpark must remain visible to TryAcquire (the lost-wakeup
	// forwarding protocol depends on it).
	p.Unpark()
	if !p.TryAcquire() {
		t.Fatal("token deposited after cancelled Park was lost")
	}
}

func TestLotFIFOWakeup(t *testing.T) {
	var l Lot
	a, b, c := New(), New(), New()
	l.Enroll(a)
	l.Enroll(b)
	l.Enroll(c)
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	l.WakeOne()
	if !a.TryAcquire() || b.TryAcquire() {
		t.Fatal("WakeOne did not wake the oldest waiter")
	}
	l.WakeAll()
	if !b.TryAcquire() || !c.TryAcquire() {
		t.Fatal("WakeAll missed a waiter")
	}
	if l.Len() != 0 {
		t.Fatalf("Len after WakeAll = %d, want 0", l.Len())
	}
}

func TestLotWithdraw(t *testing.T) {
	var l Lot
	a, b := New(), New()
	l.Enroll(a)
	l.Enroll(b)
	if !l.Withdraw(a) {
		t.Fatal("Withdraw of enrolled waiter reported false")
	}
	if l.Withdraw(a) {
		t.Fatal("second Withdraw reported true")
	}
	l.WakeOne()
	if a.TryAcquire() {
		t.Fatal("withdrawn waiter received a wakeup")
	}
	if !b.TryAcquire() {
		t.Fatal("remaining waiter missed the wakeup")
	}
}

// TestLotNoLostWakeupUnderChurn drives the enrol/re-check/park/cancel
// protocol from many goroutines against a token bucket: every deposited
// token must eventually be consumed even when waiters cancel concurrently
// with wakers (the Withdraw-false ⇒ forward rule).
func TestLotNoLostWakeupUnderChurn(t *testing.T) {
	var l Lot
	var bucket atomic.Int64
	const (
		workers = 8
		rounds  = 200
	)
	take := func(ctx context.Context) bool {
		for {
			if n := bucket.Load(); n > 0 && bucket.CompareAndSwap(n, n-1) {
				return true
			}
			p := New()
			l.Enroll(p)
			if n := bucket.Load(); n > 0 && bucket.CompareAndSwap(n, n-1) {
				if !l.Withdraw(p) {
					l.WakeOne() // consumed an item and a wakeup: pass it on
				}
				return true
			}
			err := p.Park(ctx)
			removed := l.Withdraw(p)
			if err != nil {
				if !removed {
					l.WakeOne() // our wakeup is in flight: forward it
				}
				return false
			}
			_ = removed
		}
	}
	var wg sync.WaitGroup
	var got atomic.Int64
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if take(ctx) {
					got.Add(1)
				}
			}
		}()
	}
	const tokens = workers * rounds
	for i := 0; i < tokens; i++ {
		bucket.Add(1)
		l.WakeOne()
	}
	wg.Wait()
	if got.Load() != tokens {
		t.Fatalf("consumed %d of %d tokens (lost wakeup or lost token)", got.Load(), tokens)
	}
}

// TestLotReleasesPoppedPermits is the regression test for the stale-slot
// leak: WakeOne's reslice and Withdraw's shift used to leave references to
// popped permits in the backing array, pinning dead waiters for the
// lifetime of a long-lived Lot (exactly what a pool's idle set is). After
// any pop, the backing array outside the live window must hold no popped
// permit.
func TestLotReleasesPoppedPermits(t *testing.T) {
	var l Lot
	ps := make([]*Permit, 6)
	for i := range ps {
		ps[i] = New()
		l.Enroll(ps[i])
	}
	// Capture the backing array while the slice header still starts at
	// slot 0, so the popped prefix stays inspectable after reslicing.
	backing := l.ws[:cap(l.ws)]

	if !l.Withdraw(ps[2]) {
		t.Fatal("Withdraw(ps[2]) = false, want true")
	}
	for i := 0; i < 2; i++ {
		if !l.WakeOne() {
			t.Fatalf("WakeOne %d found no waiter", i)
		}
	}
	// Live set is now [ps[3], ps[4], ps[5]], shifted within backing.
	if got := l.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}

	live := make(map[*Permit]bool)
	l.mu.Lock()
	for _, p := range l.ws {
		live[p] = true
	}
	l.mu.Unlock()
	for i, p := range backing {
		if p == nil || live[p] {
			continue
		}
		t.Fatalf("backing slot %d still references popped permit %p", i, p)
	}
}
