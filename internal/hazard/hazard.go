// Package hazard implements hazard pointers (Michael, "Hazard Pointers:
// Safe Memory Reclamation for Lock-Free Objects", TPDS 2004) — the
// per-pointer alternative to epoch-based reclamation.
//
// Where EBR protects everything a reader might touch for the duration of a
// pinned section, a hazard pointer protects exactly one object at a time:
// before dereferencing a shared pointer, a thread publishes it in its
// hazard slot and re-validates the source. Reclamation scans all slots and
// frees only retired objects no slot names. The trade-offs the survey
// calls out — higher per-read cost (publish + validate), but bounded
// garbage even when threads stall — are what experiment F12 measures
// against EBR.
//
// As with package epoch, Go's GC makes this protocol optional for safety;
// it is implemented fully and its invariant (never free a protected
// object) is what the tests verify.
package hazard

import (
	"sync"
	"sync/atomic"

	"github.com/cds-suite/cds/internal/pad"
)

// defaultScanThreshold is how many retirements a handle buffers before
// scanning. Michael's analysis wants R = H·(1+Θ(1)) with H total slots;
// a fixed multiple of typical slot counts works for the experiments here.
const defaultScanThreshold = 64

// Domain owns a set of hazard slots and the retire lists that scan against
// them. One Domain serves one data structure (or family).
type Domain struct {
	mu       sync.Mutex
	slots    []*Slot // all slots ever issued (append-only)
	handles  []*Handle
	orphaned []retiredObject // retired objects of released handles

	scanThreshold int
	reclaimed     atomic.Int64
	pending       atomic.Int64
}

// NewDomain returns a Domain with the default scan threshold.
func NewDomain() *Domain {
	return &Domain{scanThreshold: defaultScanThreshold}
}

// SetScanThreshold overrides how many retired objects a handle buffers
// before scanning (for tests and tuning). Must be called before use.
func (d *Domain) SetScanThreshold(n int) {
	if n < 1 {
		n = 1
	}
	d.scanThreshold = n
}

// Reclaimed returns the number of destructors run so far.
func (d *Domain) Reclaimed() int64 { return d.reclaimed.Load() }

// Pending returns the number of retired-but-not-yet-freed objects.
func (d *Domain) Pending() int64 { return d.pending.Load() }

// Slot is a single hazard pointer: it names at most one object as
// unsafe-to-free. Writing is owner-only; scanning reads it from any
// goroutine.
type Slot struct {
	v atomic.Value // always holds a slotVal (atomic.Value needs one concrete type)
	_ pad.CacheLinePad
}

// slotVal boxes the protected pointer so that every Store into the
// atomic.Value uses the same concrete type regardless of what is
// protected.
type slotVal struct{ p any }

// set publishes p (owner-only).
func (s *Slot) set(p any) { s.v.Store(slotVal{p: p}) }

// Clear removes protection (owner-only).
func (s *Slot) Clear() { s.v.Store(slotVal{}) }

// load returns the published value, or nil if empty.
func (s *Slot) load() any {
	v := s.v.Load()
	if v == nil {
		return nil
	}
	return v.(slotVal).p
}

// Protect publishes the pointer read from src in the slot and re-validates
// that src still holds it, looping until the publication is safe. It
// returns the protected pointer (nil if src is nil). This
// publish-and-revalidate dance is the heart of the protocol: once the
// second load agrees, any retirement of the object must have happened
// after our publication, so the scanner will see our slot.
func Protect[T any](s *Slot, src *atomic.Pointer[T]) *T {
	for {
		p := src.Load()
		if p == nil {
			s.Clear()
			return nil
		}
		s.set(p)
		if src.Load() == p {
			return p
		}
	}
}

// Handle is one goroutine's set of hazard slots plus its retire buffer.
// Methods are owner-only.
type Handle struct {
	d       *Domain
	slots   []*Slot
	retired []retiredObject
}

type retiredObject struct {
	ptr  any
	free func()
}

// NewHandle issues a handle with k hazard slots (k >= 1; most algorithms
// need 1–3).
func (d *Domain) NewHandle(k int) *Handle {
	if k < 1 {
		k = 1
	}
	h := &Handle{d: d, slots: make([]*Slot, k)}
	for i := range h.slots {
		s := &Slot{}
		s.Clear()
		h.slots[i] = s
	}
	d.mu.Lock()
	d.slots = append(d.slots, h.slots...)
	d.handles = append(d.handles, h)
	d.mu.Unlock()
	return h
}

// Slot returns the i'th hazard slot of the handle.
func (h *Handle) Slot(i int) *Slot { return h.slots[i] }

// Retire schedules free to run once no hazard slot protects ptr. ptr must
// be the same value (same pointer) readers publish via Protect.
func (h *Handle) Retire(ptr any, free func()) {
	h.retired = append(h.retired, retiredObject{ptr: ptr, free: free})
	h.d.pending.Add(1)
	if len(h.retired) >= h.d.scanThreshold {
		h.Scan()
	}
}

// Scan frees every retired object not currently named by any hazard slot;
// the rest stay buffered for the next scan.
func (h *Handle) Scan() {
	// Snapshot all hazard slots.
	h.d.mu.Lock()
	slots := h.d.slots
	h.d.mu.Unlock()
	protected := make(map[any]struct{}, len(slots))
	for _, s := range slots {
		if v := s.load(); v != nil {
			protected[v] = struct{}{}
		}
	}

	kept := h.retired[:0]
	freed := 0
	for _, r := range h.retired {
		if _, isProtected := protected[r.ptr]; isProtected {
			kept = append(kept, r)
			continue
		}
		r.free()
		freed++
	}
	// Zero the tail so freed entries do not pin their objects.
	for i := len(kept); i < len(h.retired); i++ {
		h.retired[i] = retiredObject{}
	}
	h.retired = kept
	if freed > 0 {
		h.d.reclaimed.Add(int64(freed))
		h.d.pending.Add(int64(-freed))
	}
}

// Release clears the handle's slots and hands its remaining retired
// objects to the domain-wide orphan drain (a final scan by any later
// handle or by Drain).
func (h *Handle) Release() {
	for _, s := range h.slots {
		s.Clear()
	}
	h.Scan()
	if len(h.retired) > 0 {
		// Push leftovers to another live handle if any; otherwise keep
		// them on the domain for Drain.
		h.d.mu.Lock()
		for i, other := range h.d.handles {
			if other == h {
				h.d.handles[i] = h.d.handles[len(h.d.handles)-1]
				h.d.handles = h.d.handles[:len(h.d.handles)-1]
				break
			}
		}
		if len(h.d.handles) > 0 {
			dst := h.d.handles[0]
			dst.retired = append(dst.retired, h.retired...)
		} else {
			h.d.orphansLocked(h.retired)
		}
		h.retired = nil
		h.d.mu.Unlock()
		return
	}
	h.d.mu.Lock()
	for i, other := range h.d.handles {
		if other == h {
			h.d.handles[i] = h.d.handles[len(h.d.handles)-1]
			h.d.handles = h.d.handles[:len(h.d.handles)-1]
			break
		}
	}
	h.d.mu.Unlock()
}

// orphansLocked appends items to the domain's ownerless retire list.
// Caller holds d.mu.
func (d *Domain) orphansLocked(items []retiredObject) {
	d.orphaned = append(d.orphaned, items...)
}

// Drain scans the orphaned retire list; safe to call at any time and
// typically used at structure teardown.
func (d *Domain) Drain() {
	d.mu.Lock()
	items := d.orphaned
	d.orphaned = nil
	slots := d.slots
	d.mu.Unlock()

	protected := make(map[any]struct{}, len(slots))
	for _, s := range slots {
		if v := s.load(); v != nil {
			protected[v] = struct{}{}
		}
	}
	var kept []retiredObject
	freed := 0
	for _, r := range items {
		if _, isProtected := protected[r.ptr]; isProtected {
			kept = append(kept, r)
			continue
		}
		r.free()
		freed++
	}
	if len(kept) > 0 {
		d.mu.Lock()
		d.orphaned = append(d.orphaned, kept...)
		d.mu.Unlock()
	}
	if freed > 0 {
		d.reclaimed.Add(int64(freed))
		d.pending.Add(int64(-freed))
	}
}
