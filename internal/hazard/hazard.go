// Package hazard implements hazard pointers (Michael, "Hazard Pointers:
// Safe Memory Reclamation for Lock-Free Objects", TPDS 2004) — the
// per-pointer alternative to epoch-based reclamation.
//
// Where EBR protects everything a reader might touch for the duration of a
// pinned section, a hazard pointer protects exactly one object at a time:
// before dereferencing a shared pointer, a thread publishes it in its
// hazard slot and re-validates the source. Reclamation scans all slots and
// frees only retired objects no slot names. The trade-offs the survey
// calls out — higher per-read cost (publish + validate), but bounded
// garbage even when threads stall — are what experiment F12 measures
// against EBR.
//
// As with package epoch, Go's GC makes this protocol optional for safety;
// it is implemented fully and its invariant (never free a protected
// object) is what the tests verify.
package hazard

import (
	"sync"
	"sync/atomic"
	"unsafe"

	"github.com/cds-suite/cds/internal/pad"
)

// defaultScanThreshold is how many retirements a handle buffers before
// scanning. Michael's analysis wants R = H·(1+Θ(1)) with H total slots;
// a fixed multiple of typical slot counts works for the experiments here.
const defaultScanThreshold = 64

// Domain owns a set of hazard slots and the retire lists that scan against
// them. One Domain serves one data structure (or family).
type Domain struct {
	mu sync.Mutex
	// slots holds every live handle's hazard slots. Scans snapshot the
	// slice header under mu and iterate outside it, which is safe under
	// two rules every mutation must keep: NewHandle only appends (it may
	// grow a shared backing array, but only at indices at or past every
	// snapshot's length, which scanners never read), and any other
	// mutation — like Release dropping a handle's slots — must install a
	// rebuilt slice, never write below a snapshot's length in place.
	slots    []*Slot
	handles  []*Handle
	orphaned []retiredObject // retired objects of released handles

	scanThreshold int
	reclaimed     atomic.Int64
	pending       atomic.Int64
}

// NewDomain returns a Domain with the default scan threshold.
func NewDomain() *Domain {
	return &Domain{scanThreshold: defaultScanThreshold}
}

// SetScanThreshold overrides how many retired objects a handle buffers
// before scanning (for tests and tuning). Must be called before use.
func (d *Domain) SetScanThreshold(n int) {
	if n < 1 {
		n = 1
	}
	d.scanThreshold = n
}

// Reclaimed returns the number of destructors run so far.
func (d *Domain) Reclaimed() int64 { return d.reclaimed.Load() }

// Pending returns the number of retired-but-not-yet-freed objects.
func (d *Domain) Pending() int64 { return d.pending.Load() }

// Slot is a single hazard pointer: it names at most one object as
// unsafe-to-free. Writing is owner-only; scanning reads it from any
// goroutine.
//
// Hazard equality is pointer identity, so the slot stores the raw address
// of the protected object rather than a boxed interface: publishing is a
// single atomic pointer store with no allocation — this is the per-read
// cost F12 measures, and boxing on every Protect would swamp it with GC
// traffic. The stored address points at the object's allocation base, so
// it also keeps the object GC-reachable on its own.
type Slot struct {
	p atomic.Pointer[byte]
	_ pad.CacheLinePad
}

// dataPtr extracts the data word of an interface value — the object's
// address for the pointer-shaped values the protocol works with. Retire
// and Protect must be handed the same pointer value for identity to hold.
func dataPtr(v any) *byte {
	if v == nil {
		return nil
	}
	return (*byte)((*[2]unsafe.Pointer)(unsafe.Pointer(&v))[1])
}

// setPtr publishes p (owner-only).
func (s *Slot) setPtr(p *byte) { s.p.Store(p) }

// Clear removes protection (owner-only).
func (s *Slot) Clear() { s.p.Store(nil) }

// loadPtr returns the published address, or nil if empty.
func (s *Slot) loadPtr() *byte { return s.p.Load() }

// Protect publishes the pointer read from src in the slot and re-validates
// that src still holds it, looping until the publication is safe. It
// returns the protected pointer (nil if src is nil). This
// publish-and-revalidate dance is the heart of the protocol: once the
// second load agrees, any retirement of the object must have happened
// after our publication, so the scanner will see our slot.
func Protect[T any](s *Slot, src *atomic.Pointer[T]) *T {
	for {
		p := src.Load()
		if p == nil {
			s.Clear()
			return nil
		}
		s.setPtr((*byte)(unsafe.Pointer(p)))
		if src.Load() == p {
			return p
		}
	}
}

// Handle is one goroutine's set of hazard slots plus its retire buffer.
// Methods are owner-only.
type Handle struct {
	d       *Domain
	slots   []*Slot
	retired []retiredObject
}

type retiredObject struct {
	ptr  any
	free func()
}

// NewHandle issues a handle with k hazard slots (k >= 1; most algorithms
// need 1–3).
func (d *Domain) NewHandle(k int) *Handle {
	if k < 1 {
		k = 1
	}
	h := &Handle{d: d, slots: make([]*Slot, k)}
	for i := range h.slots {
		s := &Slot{}
		s.Clear()
		h.slots[i] = s
	}
	d.mu.Lock()
	d.slots = append(d.slots, h.slots...)
	d.handles = append(d.handles, h)
	d.mu.Unlock()
	return h
}

// Slot returns the i'th hazard slot of the handle.
func (h *Handle) Slot(i int) *Slot { return h.slots[i] }

// Protect publishes p in the handle's i'th hazard slot (clearing it when p
// is nil). Unlike the free function Protect, it does not revalidate the
// source — callers that publish raw pointers must re-check the source
// themselves before dereferencing.
func (h *Handle) Protect(i int, p any) {
	h.slots[i].setPtr(dataPtr(p))
}

// Retire schedules free to run once no hazard slot protects ptr. ptr must
// be the same value (same pointer) readers publish via Protect.
func (h *Handle) Retire(ptr any, free func()) {
	h.retired = append(h.retired, retiredObject{ptr: ptr, free: free})
	h.d.pending.Add(1)
	if len(h.retired) >= h.d.scanThreshold {
		h.Scan()
	}
}

// Scan frees every retired object not currently named by any hazard slot;
// the rest stay buffered for the next scan. When the domain holds orphaned
// retirements (from released handles), the scan adopts and processes them
// too, so orphans are reclaimed by ordinary retire traffic instead of
// waiting for an explicit Drain.
func (h *Handle) Scan() {
	// Snapshot all hazard slots and steal any orphans under the same
	// lock; bail out first when there is nothing to reclaim (the common
	// case for the final scan of an empty handle being released).
	h.d.mu.Lock()
	if len(h.retired) == 0 && len(h.d.orphaned) == 0 {
		h.d.mu.Unlock()
		return
	}
	slots := h.d.slots
	orphans := h.d.orphaned
	h.d.orphaned = nil
	h.d.mu.Unlock()
	protected := make(map[*byte]struct{}, len(slots))
	for _, s := range slots {
		if v := s.loadPtr(); v != nil {
			protected[v] = struct{}{}
		}
	}

	kept := h.retired[:0]
	freed := 0
	for _, r := range h.retired {
		if _, isProtected := protected[dataPtr(r.ptr)]; isProtected {
			kept = append(kept, r)
			continue
		}
		r.free()
		freed++
	}
	// Zero the tail so freed entries do not pin their objects.
	for i := len(kept); i < len(h.retired); i++ {
		h.retired[i] = retiredObject{}
	}
	h.retired = kept

	// Stolen orphans: free the unprotected ones, return survivors to the
	// domain (they belong to no handle).
	var keptOrphans []retiredObject
	for _, r := range orphans {
		if _, isProtected := protected[dataPtr(r.ptr)]; isProtected {
			keptOrphans = append(keptOrphans, r)
			continue
		}
		r.free()
		freed++
	}
	if len(keptOrphans) > 0 {
		h.d.mu.Lock()
		h.d.orphansLocked(keptOrphans)
		h.d.mu.Unlock()
	}
	if freed > 0 {
		h.d.reclaimed.Add(int64(freed))
		h.d.pending.Add(int64(-freed))
	}
}

// Release clears the handle's slots and hands its remaining retired
// objects to the domain-wide orphan list, reclaimed by any later handle's
// Scan or by Drain. The leftovers must never be pushed into another live
// handle's retire buffer: that buffer is owner-only state, and the owner
// may be running Retire or Scan on it concurrently.
func (h *Handle) Release() {
	for _, s := range h.slots {
		s.Clear()
	}
	h.Scan()
	h.d.mu.Lock()
	for i, other := range h.d.handles {
		if other == h {
			h.d.handles[i] = h.d.handles[len(h.d.handles)-1]
			h.d.handles = h.d.handles[:len(h.d.handles)-1]
			break
		}
	}
	// Retire the handle's (cleared) slots from the scan set so scan cost
	// tracks live handles, not handles ever issued. Rebuild rather than
	// mutate: snapshots taken by in-flight scans keep the old array.
	mine := make(map[*Slot]bool, len(h.slots))
	for _, s := range h.slots {
		mine[s] = true
	}
	kept := make([]*Slot, 0, len(h.d.slots)-len(h.slots))
	for _, s := range h.d.slots {
		if !mine[s] {
			kept = append(kept, s)
		}
	}
	h.d.slots = kept
	if len(h.retired) > 0 {
		h.d.orphansLocked(h.retired)
		h.retired = nil
	}
	h.d.mu.Unlock()
}

// orphansLocked appends items to the domain's ownerless retire list.
// Caller holds d.mu.
func (d *Domain) orphansLocked(items []retiredObject) {
	d.orphaned = append(d.orphaned, items...)
}

// Drain scans the orphaned retire list; safe to call at any time and
// typically used at structure teardown.
func (d *Domain) Drain() {
	d.mu.Lock()
	items := d.orphaned
	d.orphaned = nil
	slots := d.slots
	d.mu.Unlock()

	protected := make(map[*byte]struct{}, len(slots))
	for _, s := range slots {
		if v := s.loadPtr(); v != nil {
			protected[v] = struct{}{}
		}
	}
	var kept []retiredObject
	freed := 0
	for _, r := range items {
		if _, isProtected := protected[dataPtr(r.ptr)]; isProtected {
			kept = append(kept, r)
			continue
		}
		r.free()
		freed++
	}
	if len(kept) > 0 {
		d.mu.Lock()
		d.orphaned = append(d.orphaned, kept...)
		d.mu.Unlock()
	}
	if freed > 0 {
		d.reclaimed.Add(int64(freed))
		d.pending.Add(int64(-freed))
	}
}
