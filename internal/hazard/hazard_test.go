package hazard

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"unsafe"
)

func TestRetireFreesUnprotected(t *testing.T) {
	d := NewDomain()
	d.SetScanThreshold(4)
	h := d.NewHandle(1)
	defer h.Release()

	freed := 0
	for i := 0; i < 8; i++ {
		p := &struct{ x int }{x: i}
		h.Retire(p, func() { freed++ })
	}
	h.Scan()
	if freed != 8 {
		t.Fatalf("freed = %d, want 8", freed)
	}
	if d.Reclaimed() != 8 || d.Pending() != 0 {
		t.Fatalf("stats = (%d reclaimed, %d pending)", d.Reclaimed(), d.Pending())
	}
}

func TestProtectedObjectSurvivesScan(t *testing.T) {
	d := NewDomain()
	reader := d.NewHandle(1)
	writer := d.NewHandle(1)
	defer reader.Release()
	defer writer.Release()

	type node struct{ v int }
	var shared atomic.Pointer[node]
	obj := &node{v: 42}
	shared.Store(obj)

	// Reader protects the object.
	got := Protect(reader.Slot(0), &shared)
	if got != obj {
		t.Fatalf("Protect returned %p, want %p", got, obj)
	}

	// Writer unlinks and retires it; scans must not free it.
	shared.Store(nil)
	var freed atomic.Bool
	writer.Retire(obj, func() { freed.Store(true) })
	for i := 0; i < 5; i++ {
		writer.Scan()
	}
	if freed.Load() {
		t.Fatal("protected object was freed")
	}

	// Clearing the hazard releases it.
	reader.Slot(0).Clear()
	writer.Scan()
	if !freed.Load() {
		t.Fatal("unprotected object not freed by scan")
	}
}

func TestProtectRevalidates(t *testing.T) {
	// If the source changes mid-protection, Protect must converge on a
	// value that was re-validated, never returning a stale unpublished one.
	type node struct{ v int }
	d := NewDomain()
	h := d.NewHandle(1)
	defer h.Release()

	var shared atomic.Pointer[node]
	shared.Store(&node{v: 1})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				shared.Store(&node{v: 2})
			}
		}
	}()
	for i := 0; i < 10000; i++ {
		p := Protect(h.Slot(0), &shared)
		if p == nil {
			t.Fatal("nil from non-nil source")
		}
		if hp := h.Slot(0).loadPtr(); hp != (*byte)(unsafe.Pointer(p)) {
			t.Fatalf("slot holds %p, protect returned %p", hp, p)
		}
	}
	close(stop)
	wg.Wait()
}

func TestProtectNilSource(t *testing.T) {
	type node struct{ v int }
	d := NewDomain()
	h := d.NewHandle(1)
	defer h.Release()
	var shared atomic.Pointer[node]
	if p := Protect(h.Slot(0), &shared); p != nil {
		t.Fatalf("Protect of nil source = %v", p)
	}
	if v := h.Slot(0).loadPtr(); v != nil {
		t.Fatalf("slot not cleared on nil source: %v", v)
	}
}

func TestReleaseHandsOffRetired(t *testing.T) {
	d := NewDomain()
	d.SetScanThreshold(1000) // prevent auto-scan
	blocker := d.NewHandle(1)
	leaver := d.NewHandle(1)

	type node struct{ v int }
	var shared atomic.Pointer[node]
	obj := &node{}
	shared.Store(obj)
	Protect(blocker.Slot(0), &shared)

	var freed atomic.Bool
	leaver.Retire(obj, func() { freed.Store(true) })
	leaver.Release() // obj still protected: must survive the handoff
	if freed.Load() {
		t.Fatal("protected object freed during handle release")
	}
	blocker.Slot(0).Clear()
	blocker.Scan()
	d.Drain()
	if !freed.Load() {
		t.Fatal("object never freed after handoff")
	}
}

// TestReleaseRetireScanRace pins down the Release ownership rule: a
// handle's retire buffer is owner-only state, so Release must route its
// leftovers through the domain's orphan list, never append them into
// another live handle's buffer. The old code pushed leftovers into
// d.handles[0] — here the owner goroutine concurrently running
// Retire/Scan — which the race detector flags as a write-write race on
// the owner's retired slice.
func TestReleaseRetireScanRace(t *testing.T) {
	type node struct{ v int }
	d := NewDomain()
	d.SetScanThreshold(4)

	owner := d.NewHandle(1) // registered first: the old code's handoff target
	protector := d.NewHandle(1)
	defer protector.Release()

	// A protected object makes every releasing handle leave leftovers.
	obj := &node{}
	var shared atomic.Pointer[node]
	shared.Store(obj)
	Protect(protector.Slot(0), &shared)

	stop := make(chan struct{})
	var ownerWG, churnWG sync.WaitGroup
	ownerWG.Add(1)
	go func() { // the owner races Retire/Scan on its own buffer
		defer ownerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			p := &node{}
			owner.Retire(p, func() {})
			owner.Scan()
		}
	}()
	churnWG.Add(1)
	go func() { // churning handles release with protected leftovers
		defer churnWG.Done()
		for i := 0; i < 2000; i++ {
			h := d.NewHandle(1)
			h.Retire(obj, func() {})
			h.Release()
		}
	}()
	churnWG.Wait()
	close(stop)
	ownerWG.Wait()

	owner.Release()
	protector.Slot(0).Clear()
	d.Drain()
	if d.Pending() != 0 {
		t.Fatalf("Pending = %d after full drain, want 0", d.Pending())
	}
	if d.Reclaimed() == 0 {
		t.Fatal("nothing reclaimed — scan never ran")
	}
}

// TestConcurrentStress: readers continuously protect the current head
// object and verify it is never freed while they hold it; writers swap and
// retire heads.
func TestConcurrentStress(t *testing.T) {
	type node struct {
		freed atomic.Bool
	}
	d := NewDomain()
	d.SetScanThreshold(16)

	var shared atomic.Pointer[node]
	shared.Store(&node{})

	var (
		wwg, rwg sync.WaitGroup
		stop     = make(chan struct{})
	)
	readers := max(2, runtime.GOMAXPROCS(0)/2)
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			h := d.NewHandle(1)
			defer h.Release()
			for {
				select {
				case <-stop:
					return
				default:
				}
				p := Protect(h.Slot(0), &shared)
				if p == nil {
					continue
				}
				if p.freed.Load() {
					t.Error("reader holds a freed object")
					return
				}
				h.Slot(0).Clear()
			}
		}()
	}
	for w := 0; w < 2; w++ {
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			h := d.NewHandle(1)
			defer h.Release()
			for i := 0; i < 20000; i++ {
				old := shared.Swap(&node{})
				h.Retire(old, func() { old.freed.Store(true) })
			}
		}()
	}
	wwg.Wait()
	close(stop)
	rwg.Wait()
	if t.Failed() {
		return
	}
	d.Drain()
	if d.Reclaimed() == 0 {
		t.Fatal("stress run reclaimed nothing — protocol inert")
	}
}
