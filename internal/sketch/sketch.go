// Package sketch implements the frequency machinery behind W-TinyLFU
// admission (Einziger, Friedman & Manes, "TinyLFU: A Highly Efficient
// Cache Admission Policy", ACM TOS 2017): a count-min sketch with
// saturating 4-bit counters, fronted by a doorkeeper bloom filter, with
// periodic halving ("aging") keyed to a sample size.
//
// The sketch approximates each key's access frequency in O(1) space per
// counter with one-sided error: an estimate may exceed the true count
// (hash collisions add, never subtract) but — below counter saturation
// and between agings — never falls short of it. The doorkeeper absorbs
// each key's first occurrence since the last aging, so the sea of
// one-hit-wonder keys a scan drags past the cache costs one bloom bit
// each instead of polluting the counters. Aging halves every counter and
// clears the doorkeeper once Touch has been called sample-size times,
// which turns the lifetime counts into an exponentially decayed recency-
// weighted frequency — the property that lets a newly hot key overtake a
// formerly hot one.
//
// All operations are safe for concurrent use: counters and doorkeeper
// bits are updated with atomic read-modify-write loops, and a Touch that
// races with Age may lose an increment or be halved twice — acceptable
// for a heuristic whose consumers compare estimates, not exact counts.
package sketch

import (
	"sync/atomic"

	"github.com/cds-suite/cds/internal/pow2"
	"github.com/cds-suite/cds/internal/xrand"
)

// counterMax saturates the packed 4-bit counters. Four bits are enough to
// separate the reuse classes TinyLFU admission distinguishes, and the low
// ceiling bounds how long a formerly hot key can outvote the working set
// after going cold (one aging halves 15 to 7).
const counterMax = 15

// doorBitsPerCounter sizes the doorkeeper relative to the sketch: eight
// bloom bits per counter keeps the false-positive rate low at the ~10x
// sample the sketch ages on (two probes into 8w bits over ~10w distinct
// touches).
const doorBitsPerCounter = 8

// Sketch is a count-min frequency sketch with a doorkeeper. Construct
// with New; the zero value is not usable.
type Sketch struct {
	rows  [][]uint64 // depth rows of width packed 4-bit counters
	seeds []uint64   // per-row index-mixing seeds
	door  []uint64   // doorkeeper bloom bits
	mask  uint64     // width - 1
	dmask uint64     // doorkeeper bit count - 1

	sample atomic.Int64 // touches between agings
	adds   atomic.Int64 // touches since the last aging
	ages   atomic.Int64 // agings performed
}

// New returns a sketch of depth rows of width 4-bit counters, with the
// doorkeeper sized proportionally and the aging sample defaulting to
// 10x width (override with SetSample). Width is rounded up to a power of
// two (minimum 16); depth is clamped to [1, 8]. The seed derives every
// row's index mixing, so equal seeds give equal estimate streams.
func New(width, depth int, seed uint64) *Sketch {
	width = pow2.RoundUp(width, 16)
	if depth < 1 {
		depth = 1
	}
	if depth > 8 {
		depth = 8
	}
	s := &Sketch{
		rows:  make([][]uint64, depth),
		seeds: make([]uint64, depth),
		door:  make([]uint64, width*doorBitsPerCounter/64),
		mask:  uint64(width - 1),
		dmask: uint64(width*doorBitsPerCounter - 1),
	}
	sm := seed
	for r := range s.rows {
		s.rows[r] = make([]uint64, width/16) // 16 nibbles per word
		s.seeds[r] = xrand.SplitMix64(&sm)
	}
	s.sample.Store(int64(10 * width))
	return s
}

// Width reports the (rounded) counter count per row.
func (s *Sketch) Width() int { return int(s.mask) + 1 }

// Depth reports the number of rows.
func (s *Sketch) Depth() int { return len(s.rows) }

// Ages reports how many agings (halvings) have run.
func (s *Sketch) Ages() int64 { return s.ages.Load() }

// SetSample overrides how many Touch calls separate agings. n <= 0
// disables automatic aging (Age can still be called directly); the
// counter of touches since the last aging is reset either way.
func (s *Sketch) SetSample(n int64) {
	s.sample.Store(n)
	s.adds.Store(0)
}

// Touch records one access to the key whose 64-bit hash is h. The first
// touch of a key since the last aging only marks the doorkeeper (the
// one-shot that keeps single-occurrence keys out of the counters); later
// touches increment the key's count-min counters, saturating at 15.
func (s *Sketch) Touch(h uint64) {
	if s.doorAdd(h) {
		for r := range s.rows {
			s.bump(r, h)
		}
	}
	if n := s.sample.Load(); n > 0 {
		if a := s.adds.Add(1); a >= n && s.adds.CompareAndSwap(a, 0) {
			s.Age()
		}
	}
}

// Estimate returns the sketch's frequency estimate for the key whose
// hash is h: the minimum counter across rows, plus one if the doorkeeper
// has seen the key since the last aging. Estimates never underestimate
// the key's true Touch count below saturation (15 + the doorkeeper bit)
// between agings; collisions can only inflate them.
func (s *Sketch) Estimate(h uint64) int {
	est := counterMax
	for r := range s.rows {
		if c := s.read(r, h); c < est {
			est = c
		}
	}
	if s.doorHas(h) {
		est++
	}
	return est
}

// Age halves every counter (floor division; saturated counters drop to
// 7) and clears the doorkeeper, decaying history so recent frequency
// dominates stale frequency. Relative order is preserved: halving never
// inverts two keys' estimates, only shrinks their gap.
func (s *Sketch) Age() {
	for _, row := range s.rows {
		for i := range row {
			//cdsvet:ignore spinpace single-word decay RMW: a failed CAS reflects a competitor's completed update, and Age runs on the sampled maintenance path, never in a hot loop
			for {
				old := atomic.LoadUint64(&row[i])
				// Shift every nibble right by one; the mask discards the
				// bit each nibble's shift borrowed from its neighbour.
				if atomic.CompareAndSwapUint64(&row[i], old, (old>>1)&0x7777777777777777) {
					break
				}
			}
		}
	}
	for i := range s.door {
		atomic.StoreUint64(&s.door[i], 0)
	}
	s.adds.Store(0)
	s.ages.Add(1)
}

// index maps hash h to row r's counter index.
func (s *Sketch) index(r int, h uint64) uint64 {
	x := h ^ s.seeds[r]
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 31
	return x & s.mask
}

// bump increments row r's counter for h, saturating at counterMax.
func (s *Sketch) bump(r int, h uint64) {
	i := s.index(r, h)
	word, shift := &s.rows[r][i>>4], (i&15)*4
	//cdsvet:ignore spinpace saturating counter RMW: a failed CAS means a competitor bumped the word, and each nibble saturates after counterMax increments
	for {
		old := atomic.LoadUint64(word)
		if (old>>shift)&0xf >= counterMax {
			return
		}
		if atomic.CompareAndSwapUint64(word, old, old+1<<shift) {
			return
		}
	}
}

// read returns row r's counter for h.
func (s *Sketch) read(r int, h uint64) int {
	i := s.index(r, h)
	return int(atomic.LoadUint64(&s.rows[r][i>>4]) >> ((i & 15) * 4) & 0xf)
}

// doorBits derives the two doorkeeper probe positions for h.
func (s *Sketch) doorBits(h uint64) (b1, b2 uint64) {
	x := h * 0x9e3779b97f4a7c15
	return h & s.dmask, (x ^ x>>32) & s.dmask
}

// doorAdd marks h in the doorkeeper, reporting whether it was already
// fully marked (i.e. the key has been touched since the last aging, so
// the caller should count this touch in the sketch proper).
func (s *Sketch) doorAdd(h uint64) bool {
	b1, b2 := s.doorBits(h)
	had := setBit(&s.door[b1>>6], b1&63)
	return setBit(&s.door[b2>>6], b2&63) && had
}

// setBit sets bit in *word atomically, reporting whether it was already
// set.
func setBit(word *uint64, bit uint64) bool {
	mask := uint64(1) << bit
	//cdsvet:ignore spinpace idempotent bit-set RMW: a failed CAS means the word changed underneath, and once the bit reads as set the loop exits
	for {
		old := atomic.LoadUint64(word)
		if old&mask != 0 {
			return true
		}
		if atomic.CompareAndSwapUint64(word, old, old|mask) {
			return false
		}
	}
}

// doorHas reports whether h is marked in the doorkeeper, without marking.
func (s *Sketch) doorHas(h uint64) bool {
	b1, b2 := s.doorBits(h)
	return atomic.LoadUint64(&s.door[b1>>6])&(1<<(b1&63)) != 0 &&
		atomic.LoadUint64(&s.door[b2>>6])&(1<<(b2&63)) != 0
}
