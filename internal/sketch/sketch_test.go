package sketch

import (
	"testing"

	"github.com/cds-suite/cds/internal/xrand"
)

// TestSketchProperties sweeps a seeded (width, depth, keys) grid — the
// same shape as internal/zipf's property sweep — and asserts, together on
// the same parameters, the three properties W-TinyLFU admission leans on:
//
//  1. no underestimation: for every key, Estimate is at least the
//     smaller of the true touch count and 16 — count-min collisions and doorkeeper
//     false positives inflate estimates but can never deflate them, and
//     15 (counter saturation) + 1 (doorkeeper) caps what a 4-bit sketch
//     can report;
//  2. halving preserves relative order: if Estimate(a) > Estimate(b)
//     before Age, then after Age Estimate(a) >= Estimate(b) — aging
//     shrinks gaps and may create ties, but never inverts a strict
//     ordering, so an admission decision cannot flip *toward* the stale
//     key;
//  3. determinism: a twin sketch fed the same touch stream reports the
//     same estimate for every key.
func TestSketchProperties(t *testing.T) {
	for _, width := range []int{16, 64, 256} {
		for _, depth := range []int{1, 2, 4} {
			for _, keys := range []int{8, 64, 500} {
				for _, seed := range []uint64{1, 99} {
					s := New(width, depth, seed)
					twin := New(width, depth, seed)
					s.SetSample(0) // no aging mid-stream: property 1 is pre-aging
					twin.SetSample(0)

					// Skewed true counts: key k is touched keys-k times, so
					// ranks are strict and known exactly.
					rng := xrand.New(seed * 7919)
					hash := make([]uint64, keys)
					truth := make([]int, keys)
					for k := range hash {
						hash[k] = rng.Uint64()
					}
					var stream []int
					for k := 0; k < keys; k++ {
						for i := 0; i < keys-k; i++ {
							stream = append(stream, k)
						}
					}
					// Fisher-Yates over the stream: interleaved touches, same
					// permutation for both sketches.
					for i := len(stream) - 1; i > 0; i-- {
						j := rng.Intn(i + 1)
						stream[i], stream[j] = stream[j], stream[i]
					}
					for _, k := range stream {
						s.Touch(hash[k])
						twin.Touch(hash[k])
						truth[k]++
					}

					before := make([]int, keys)
					for k := range hash {
						before[k] = s.Estimate(hash[k])
						floor := truth[k]
						if floor > counterMax+1 {
							floor = counterMax + 1
						}
						if before[k] < floor {
							t.Fatalf("w=%d d=%d keys=%d seed=%d: key %d touched %d times, Estimate = %d < %d",
								width, depth, keys, seed, k, truth[k], before[k], floor)
						}
						if tw := twin.Estimate(hash[k]); tw != before[k] {
							t.Fatalf("w=%d d=%d keys=%d seed=%d: twin diverged on key %d: %d vs %d",
								width, depth, keys, seed, k, tw, before[k])
						}
					}

					s.Age()
					after := make([]int, keys)
					for k := range hash {
						after[k] = s.Estimate(hash[k])
					}
					for a := 0; a < keys; a++ {
						for b := 0; b < keys; b++ {
							if before[a] > before[b] && after[a] < after[b] {
								t.Fatalf("w=%d d=%d keys=%d seed=%d: aging inverted keys %d (%d->%d) and %d (%d->%d)",
									width, depth, keys, seed, a, before[a], after[a], b, before[b], after[b])
							}
						}
					}
				}
			}
		}
	}
}

// TestDoorkeeperOneShot pins the doorkeeper protocol on an isolated key
// (fresh sketch, no collision noise): the first touch lives only in the
// doorkeeper (Estimate 1, counters untouched), the second starts the
// count-min counters, and an aging — which clears the doorkeeper and
// halves the single counter increment to zero — forgets a key seen less
// than twice entirely.
func TestDoorkeeperOneShot(t *testing.T) {
	s := New(64, 4, 7)
	s.SetSample(0)
	const h = 0xdeadbeefcafef00d
	if got := s.Estimate(h); got != 0 {
		t.Fatalf("fresh key Estimate = %d, want 0", got)
	}
	s.Touch(h)
	if got := s.Estimate(h); got != 1 {
		t.Fatalf("after first touch Estimate = %d, want 1 (doorkeeper only)", got)
	}
	s.Touch(h)
	if got := s.Estimate(h); got != 2 {
		t.Fatalf("after second touch Estimate = %d, want 2 (doorkeeper + one counter)", got)
	}
	s.Age()
	// Counter 1 halves to 0 and the doorkeeper bit is gone: the one
	// counted touch does not survive an aging.
	if got := s.Estimate(h); got != 0 {
		t.Fatalf("after aging Estimate = %d, want 0", got)
	}
	// Post-aging the doorkeeper is one-shot again.
	s.Touch(h)
	if got := s.Estimate(h); got != 1 {
		t.Fatalf("post-aging first touch Estimate = %d, want 1", got)
	}
}

// TestSaturationAndAging pins the 4-bit ceiling: estimates cap at 16
// (15 saturated + doorkeeper), and one aging takes a saturated key to
// 7 — the decay that lets a newly hot key overtake a stale one.
func TestSaturationAndAging(t *testing.T) {
	s := New(64, 4, 3)
	s.SetSample(0)
	const h = 42
	for i := 0; i < 100; i++ {
		s.Touch(h)
	}
	if got := s.Estimate(h); got != counterMax+1 {
		t.Fatalf("saturated Estimate = %d, want %d", got, counterMax+1)
	}
	s.Age()
	if got := s.Estimate(h); got != counterMax/2 {
		t.Fatalf("post-aging Estimate = %d, want %d", got, counterMax/2)
	}
}

// TestAutomaticAging checks the sample trigger: the sample-size'th touch
// runs an aging, visible through Ages and through the decayed estimates.
func TestAutomaticAging(t *testing.T) {
	s := New(16, 4, 5)
	s.SetSample(100)
	const h = 9
	for i := 0; i < 99; i++ {
		s.Touch(h)
	}
	if got := s.Ages(); got != 0 {
		t.Fatalf("Ages = %d before the sample boundary, want 0", got)
	}
	if got := s.Estimate(h); got != counterMax+1 {
		t.Fatalf("pre-aging Estimate = %d, want %d", got, counterMax+1)
	}
	s.Touch(h) // 100th touch: aging fires
	if got := s.Ages(); got != 1 {
		t.Fatalf("Ages = %d after the sample boundary, want 1", got)
	}
	if got := s.Estimate(h); got != counterMax/2 {
		t.Fatalf("post-aging Estimate = %d, want %d", got, counterMax/2)
	}
}

// TestSizingClamps pins the constructor's rounding: width rounds up to a
// power of two with floor 16, depth clamps to [1, 8].
func TestSizingClamps(t *testing.T) {
	tests := []struct {
		width, depth         int
		wantWidth, wantDepth int
	}{
		{1, 0, 16, 1},
		{16, 4, 16, 4},
		{17, 4, 32, 4},
		{100, 9, 128, 8},
	}
	for _, tt := range tests {
		s := New(tt.width, tt.depth, 1)
		if s.Width() != tt.wantWidth || s.Depth() != tt.wantDepth {
			t.Fatalf("New(%d, %d) sized (%d, %d), want (%d, %d)",
				tt.width, tt.depth, s.Width(), s.Depth(), tt.wantWidth, tt.wantDepth)
		}
	}
}

// TestConcurrentTouch hammers Touch/Estimate/Age from many goroutines;
// under -race this is the atomics regression test. Counts are heuristic
// under contention, so only the structural invariants are asserted.
func TestConcurrentTouch(t *testing.T) {
	s := New(64, 4, 11)
	s.SetSample(256)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(seed uint64) {
			rng := xrand.New(seed)
			for i := 0; i < 5000; i++ {
				h := rng.Uint64n(32)
				s.Touch(h)
				if est := s.Estimate(h); est < 0 || est > counterMax+1 {
					t.Errorf("Estimate = %d out of [0, %d]", est, counterMax+1)
				}
			}
			done <- struct{}{}
		}(uint64(w) + 1)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if s.Ages() == 0 {
		t.Fatal("no aging fired over 20000 touches at sample 256")
	}
}
