package pow2

import (
	"math"
	"testing"
)

func TestRoundUp(t *testing.T) {
	cases := []struct {
		n, min, want int
	}{
		{-5, 2, 2},
		{0, 2, 2},
		{1, 2, 2},
		{2, 2, 2},
		{3, 2, 4},
		{5, 8, 8},
		{8, 8, 8},
		{9, 8, 16},
		{1000, 2, 1024},
		{1 << 20, 2, 1 << 20},
		{1<<20 + 1, 2, 1 << 21},
		{Max, 2, Max},
	}
	for _, c := range cases {
		if got := RoundUp(c.n, c.min); got != c.want {
			t.Errorf("RoundUp(%d, %d) = %d, want %d", c.n, c.min, got, c.want)
		}
	}
}

// TestRoundUpOverflowEdge is the regression test for the n <<= 1 loops
// that spun forever: capacities beyond the largest representable power of
// two must terminate (clamped to Max), not wrap negative.
func TestRoundUpOverflowEdge(t *testing.T) {
	for _, n := range []int{Max + 1, Max + Max/2, math.MaxInt - 1, math.MaxInt} {
		if got := RoundUp(n, 2); got != Max {
			t.Errorf("RoundUp(%d, 2) = %d, want clamp to %d", n, got, Max)
		}
	}
}

func TestRoundUpAlwaysPowerOfTwo(t *testing.T) {
	for n := -1; n < 1<<12; n++ {
		got := RoundUp(n, 2)
		if got&(got-1) != 0 || got < 2 {
			t.Fatalf("RoundUp(%d, 2) = %d: not a power of two >= min", n, got)
		}
		if n > 2 && got < n {
			t.Fatalf("RoundUp(%d, 2) = %d < n", n, got)
		}
	}
}
