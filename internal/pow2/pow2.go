// Package pow2 provides the overflow-guarded power-of-two capacity
// round-up shared by every ring and stripe constructor.
//
// The naive loop — n <<= 1 until n >= target — spins forever on huge
// requests: the shift overflows to a negative value and never reaches the
// target. Constructors must not hand-roll it; they call RoundUp, which
// computes the exponent from the bit length instead of iterating and
// clamps requests beyond the largest representable power of two.
package pow2

import "math/bits"

// Max is the largest power of two representable in an int
// (2^62 on 64-bit platforms).
const Max = 1 << (bits.UintSize - 2)

// RoundUp returns the smallest power of two >= n, and at least min (min
// itself must be a power of two; it anchors each constructor's floor).
// Requests above Max clamp to Max rather than overflowing: the subsequent
// allocation of such a capacity fails loudly on its own, which beats an
// infinite loop in the constructor.
func RoundUp(n, min int) int {
	if n <= min {
		return min
	}
	if n > Max {
		return Max
	}
	return 1 << bits.Len(uint(n-1))
}
