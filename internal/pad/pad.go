// Package pad provides cache-line padding helpers used to avoid false
// sharing between per-thread slots of striped data structures.
//
// False sharing occurs when logically independent variables share a cache
// line: a write by one core invalidates the line in every other core's
// cache, serialising accesses that should be independent. Striped counters,
// per-worker queue slots, and lock arrays all pad their slots to one slot
// per cache line.
package pad

// CacheLineSize is the assumed size in bytes of a CPU cache line. 64 bytes
// is correct for all mainstream x86-64 and most ARM64 parts; over-estimating
// wastes a little memory, under-estimating reintroduces false sharing, so a
// conservative constant is preferred over runtime detection.
const CacheLineSize = 64

// CacheLinePad occupies one full cache line. Embed it between fields that
// must not share a line:
//
//	type slot struct {
//		n atomic.Int64
//		_ pad.CacheLinePad
//	}
type CacheLinePad struct {
	_ [CacheLineSize]byte
}

// Padded wraps a value of any type in its own set of cache lines: the value
// is preceded and followed by padding so that neighbouring array elements
// never share a line with it.
type Padded[T any] struct {
	_ CacheLinePad
	// Value is the padded datum.
	Value T
	_     CacheLinePad
}
