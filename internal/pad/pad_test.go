package pad

import (
	"sync/atomic"
	"testing"
	"unsafe"
)

// The whole point of this package is a size/layout guarantee, so the tests
// assert layout, not behaviour: if a refactor shrinks the pad or lets
// neighbouring array elements share a line, false sharing silently returns
// and only benchmark numbers would notice.

func TestCacheLinePadSpansALine(t *testing.T) {
	if got := unsafe.Sizeof(CacheLinePad{}); got != CacheLineSize {
		t.Fatalf("Sizeof(CacheLinePad) = %d, want %d", got, CacheLineSize)
	}
}

func TestPaddedValueIsIsolated(t *testing.T) {
	type p = Padded[atomic.Int64]
	var x p

	// The value must start beyond the leading pad: bytes [0, CacheLineSize)
	// belong to the pad, so no neighbour that ends at our base address can
	// share the value's line.
	off := unsafe.Offsetof(x.Value)
	if off < CacheLineSize {
		t.Fatalf("Value offset = %d, want >= %d (leading pad must span a line)", off, CacheLineSize)
	}

	// The struct must extend at least a full line beyond the value, so a
	// neighbour starting at our end address cannot share the value's line
	// either.
	size := unsafe.Sizeof(x)
	valSize := unsafe.Sizeof(x.Value)
	if size-off-valSize < CacheLineSize {
		t.Fatalf("trailing pad = %d bytes, want >= %d", size-off-valSize, CacheLineSize)
	}
}

func TestPaddedArrayElementsDoNotShareLines(t *testing.T) {
	// Adjacent elements of a []Padded[T] are what the concurrent code
	// actually allocates (striped counters, elimination slots); their Value
	// fields must land on distinct cache lines.
	var arr [2]Padded[uint64]
	a := uintptr(unsafe.Pointer(&arr[0].Value))
	b := uintptr(unsafe.Pointer(&arr[1].Value))
	if a/CacheLineSize == b/CacheLineSize {
		t.Fatalf("adjacent Padded values share cache line: addresses %#x and %#x", a, b)
	}
	if b-a < CacheLineSize {
		t.Fatalf("adjacent Padded values only %d bytes apart, want >= %d", b-a, CacheLineSize)
	}
}
