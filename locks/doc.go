// Package locks implements the spin-lock and queue-lock algorithms from the
// mutual-exclusion section of the concurrent data structures literature:
// test-and-set (TAS), test-and-test-and-set (TTAS), TTAS with exponential
// backoff, ticket locks, the MCS and CLH queue locks, Peterson's two-thread
// lock, a reader–writer spin lock, and a sequence lock.
//
// These exist for two reasons. First, several of the concurrent containers
// in this module (fine-grained lists, striped maps, lazy skip lists) are
// parameterised over a lock; the survey's point that lock choice dominates
// scalability is reproducible by swapping implementations. Second, the
// classic "lock scalability" figure — throughput of a tiny critical section
// as threads grow — is one of the canonical experiments this module
// regenerates (experiment F1 in DESIGN.md).
//
// # Which lock when
//
//   - TASLock: simplest; collapses under contention because every spin is a
//     cache-coherence write.
//   - TTASLock: spins on a local cached read, writing only when the lock
//     looks free; much better, still bursty at release.
//   - BackoffLock: TTAS plus randomized exponential backoff; good general
//     spin lock when fairness does not matter.
//   - TicketLock: FIFO-fair, two fetch-and-adds; all waiters spin on one
//     word, so it degrades beyond a few cores.
//   - MCSLock / CLHLock: queue locks; each waiter spins on its own cache
//     line, giving flat scalability and FIFO fairness at the price of a
//     queue-node handle.
//
// All simple locks implement sync.Locker. The queue locks expose
// handle-based APIs (the handle is the queue node) plus a Locker adapter.
//
// Spinning in Go: goroutines are scheduled cooperatively onto OS threads, so
// unbounded busy-waiting can starve the holder of the lock off its core.
// Every spin loop here escalates to runtime.Gosched via contend.Backoff (the
// module-wide contention-management layer in package contend), which keeps
// the algorithms honest while remaining safe under GOMAXPROCS < goroutines.
package locks
