package locks

import (
	"sync/atomic"

	"github.com/cds-suite/cds/contend"
)

// Seqlock is a sequence lock: an optimistic reader–writer protocol where
// readers never write shared state. The writer increments a sequence number
// to odd before mutating and back to even after; readers snapshot the
// sequence, read the protected data, and retry if the sequence was odd or
// changed. Reads are wait-free when no writer is active and impose zero
// coherence traffic on other readers, which is why seqlocks protect hot
// read-mostly metadata (the Linux kernel's time-keeping is the canonical
// user).
//
// The protected data must be read with atomic word operations (see SeqWords)
// because readers may observe a torn write mid-update — the sequence check
// detects and discards such reads, but the loads themselves must be
// well-defined. Writers must be serialised externally or via WriteLock's
// built-in spin.
//
// The zero value is ready to use. Progress: readers are obstruction-free
// (they starve only if writers keep writing); writers block each other.
type Seqlock struct {
	seq atomic.Uint64
}

// WriteLock enters the writer critical section, spinning while another
// writer is active. On return the sequence is odd and readers will retry.
func (s *Seqlock) WriteLock() {
	var b contend.Backoff
	for {
		seq := s.seq.Load()
		if seq&1 == 0 && s.seq.CompareAndSwap(seq, seq+1) {
			return
		}
		b.Pause()
	}
}

// WriteUnlock leaves the writer critical section, making the sequence even
// again. It must only be called by the current writer.
func (s *Seqlock) WriteUnlock() {
	s.seq.Add(1)
}

// ReadBegin returns a snapshot of the sequence to validate with ReadRetry,
// waiting out any in-progress write first.
func (s *Seqlock) ReadBegin() uint64 {
	spins := 0
	for {
		seq := s.seq.Load()
		if seq&1 == 0 {
			return seq
		}
		spins++
		if spins%spinsBeforeYield == 0 {
			yield()
		}
	}
}

// ReadRetry reports whether a read section that started at the given
// sequence must be retried because a writer intervened.
func (s *Seqlock) ReadRetry(seq uint64) bool {
	return s.seq.Load() != seq
}

// SeqWords couples a Seqlock with a fixed-size array of 64-bit words,
// providing consistent multi-word snapshots with wait-free-in-the-absence-
// of-writers reads. It is the building block for seqlock-protected records:
// encode the record into words, Write it, and Read always observes a
// consistent version.
type SeqWords struct {
	lock  Seqlock
	words []atomic.Uint64
}

// NewSeqWords returns a SeqWords protecting n 64-bit words, all zero.
func NewSeqWords(n int) *SeqWords {
	return &SeqWords{words: make([]atomic.Uint64, n)}
}

// Len returns the number of protected words.
func (s *SeqWords) Len() int { return len(s.words) }

// Write stores vals as one atomic snapshot. len(vals) must equal Len.
// Concurrent writers are serialised by the embedded Seqlock.
func (s *SeqWords) Write(vals []uint64) {
	s.lock.WriteLock()
	for i, v := range vals {
		s.words[i].Store(v)
	}
	s.lock.WriteUnlock()
}

// Read copies a consistent snapshot into out. len(out) must equal Len.
// It retries until it observes a version no writer disturbed.
func (s *SeqWords) Read(out []uint64) {
	for {
		seq := s.lock.ReadBegin()
		for i := range out {
			out[i] = s.words[i].Load()
		}
		if !s.lock.ReadRetry(seq) {
			return
		}
	}
}
