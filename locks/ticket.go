package locks

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/cds-suite/cds/internal/pad"
)

var _ sync.Locker = (*TicketLock)(nil)

func gosched() { runtime.Gosched() }

// TicketLock is the classic two-counter FIFO lock: Lock takes a ticket with
// one fetch-and-add and waits until the "now serving" counter reaches it;
// Unlock increments "now serving". It guarantees first-come-first-served
// fairness and bounds acquisition to one atomic each, but every waiter spins
// on the same serving word, so coherence traffic still grows with the number
// of waiters — the survey places it between backoff locks and queue locks.
//
// The two counters live on separate cache lines so that ticket-taking by
// arriving threads does not invalidate the line that waiters spin on.
//
// The zero value is an unlocked TicketLock. Progress: blocking, FIFO-fair.
type TicketLock struct {
	next    atomic.Uint64
	_       pad.CacheLinePad
	serving atomic.Uint64
}

// Lock acquires the lock, waiting for earlier ticket holders to release.
func (l *TicketLock) Lock() {
	ticket := l.next.Add(1) - 1
	spins := 0
	for l.serving.Load() != ticket {
		spins++
		if spins%spinsBeforeYield == 0 {
			yield()
		}
	}
}

// TryLock attempts to acquire the lock without waiting and reports whether
// it succeeded. It only succeeds when no one holds or awaits the lock.
func (l *TicketLock) TryLock() bool {
	serving := l.serving.Load()
	return l.next.CompareAndSwap(serving, serving+1)
}

// Unlock releases the lock to the next ticket holder. It must only be
// called by the current holder.
func (l *TicketLock) Unlock() {
	l.serving.Add(1)
}
