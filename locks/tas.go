package locks

import (
	"sync"
	"sync/atomic"

	"github.com/cds-suite/cds/contend"
)

// Compile-time interface compliance checks.
var (
	_ sync.Locker = (*TASLock)(nil)
	_ sync.Locker = (*TTASLock)(nil)
	_ sync.Locker = (*BackoffLock)(nil)
)

// TASLock is the test-and-set spin lock: acquisition loops on an atomic
// swap. Every spin iteration is a write, so under contention the lock word
// ping-pongs between caches and throughput collapses — this is the textbook
// worst case that experiment F1 demonstrates.
//
// The zero value is an unlocked TASLock. Progress: blocking, unfair.
type TASLock struct {
	state atomic.Uint32
}

// Lock acquires the lock, spinning until it succeeds.
func (l *TASLock) Lock() {
	spins := 0
	for l.state.Swap(1) == 1 {
		// Unconditional swap is the defining (mis)feature of TAS; yield
		// periodically so a descheduled holder can run.
		spins++
		if spins%spinsBeforeYield == 0 {
			yield()
		}
	}
}

// TryLock attempts to acquire the lock without spinning and reports whether
// it succeeded.
func (l *TASLock) TryLock() bool {
	return l.state.Swap(1) == 0
}

// Unlock releases the lock. It must only be called by the current holder.
func (l *TASLock) Unlock() {
	l.state.Store(0)
}

// TTASLock is the test-and-test-and-set lock: it spins on a plain read of
// the lock word and attempts the atomic swap only when the lock appears
// free. Spinning reads hit the local cache, eliminating the coherence storm
// of TASLock while the lock is held; the remaining weakness is the stampede
// of swaps at each release.
//
// The zero value is an unlocked TTASLock. Progress: blocking, unfair.
type TTASLock struct {
	state atomic.Uint32
}

// Lock acquires the lock, spinning until it succeeds.
func (l *TTASLock) Lock() {
	for {
		// Test phase: spin locally while the lock is held.
		spins := 0
		for l.state.Load() == 1 {
			spins++
			if spins%spinsBeforeYield == 0 {
				yield()
			}
		}
		// Set phase: race to grab it.
		if l.state.Swap(1) == 0 {
			return
		}
	}
}

// TryLock attempts to acquire the lock without spinning and reports whether
// it succeeded.
func (l *TTASLock) TryLock() bool {
	return l.state.Load() == 0 && l.state.Swap(1) == 0
}

// Unlock releases the lock. It must only be called by the current holder.
func (l *TTASLock) Unlock() {
	l.state.Store(0)
}

// BackoffLock is TTAS with randomized exponential backoff: after a failed
// attempt each contender waits a randomized, geometrically growing duration
// before retrying. Backoff spreads the release-time stampede over time,
// which the literature shows recovers most of the lost scalability of
// TAS-style locks without any queueing.
//
// The zero value is an unlocked BackoffLock. Progress: blocking, unfair
// (backoff actively favours recently-arrived threads).
type BackoffLock struct {
	state atomic.Uint32
}

// Lock acquires the lock, spinning with exponential backoff until it
// succeeds.
func (l *BackoffLock) Lock() {
	var b contend.Backoff
	for {
		spins := 0
		for l.state.Load() == 1 {
			spins++
			if spins%spinsBeforeYield == 0 {
				yield()
			}
		}
		if l.state.Swap(1) == 0 {
			return
		}
		b.Pause()
	}
}

// TryLock attempts to acquire the lock without spinning and reports whether
// it succeeded.
func (l *BackoffLock) TryLock() bool {
	return l.state.Load() == 0 && l.state.Swap(1) == 0
}

// Unlock releases the lock. It must only be called by the current holder.
func (l *BackoffLock) Unlock() {
	l.state.Store(0)
}

func yield() {
	// Centralised so every spin loop in the package escalates identically.
	gosched()
}
