package locks

import (
	"sync"
	"sync/atomic"

	"github.com/cds-suite/cds/internal/pad"
)

// MCSLock is the Mellor-Crummey/Scott queue lock. Arriving threads append a
// queue node with one atomic swap and then spin on a flag in their own node,
// so each waiter busy-waits on a private cache line; the releaser hands the
// lock directly to its successor. This gives FIFO fairness and scalability
// that stays flat as contention grows — the reference point against which
// the survey measures all the simpler locks.
//
// The API is handle-based: Lock returns the queue node, which must be passed
// to Unlock. Use Locker for a sync.Locker-shaped adapter. Nodes are pooled;
// a node is recycled only after Unlock has severed every other thread's path
// to it, so reuse cannot corrupt the queue.
//
// The zero value is an unlocked MCSLock. Progress: blocking, FIFO-fair.
type MCSLock struct {
	tail atomic.Pointer[MCSNode]
	pool sync.Pool
}

// MCSNode is an MCS queue node: the handle returned by Lock.
type MCSNode struct {
	next atomic.Pointer[MCSNode]
	//cdsvet:ignore padlayout the predecessor writes locked exactly once while the owner spins; the pad separates distinct waiters' nodes, the MCS false-sharing boundary
	locked atomic.Uint32
	_      pad.CacheLinePad
}

// Lock acquires the lock and returns the queue-node handle that must be
// passed to the matching Unlock call.
func (l *MCSLock) Lock() *MCSNode {
	n, _ := l.pool.Get().(*MCSNode)
	if n == nil {
		n = new(MCSNode)
	}
	n.next.Store(nil)
	n.locked.Store(1)

	pred := l.tail.Swap(n)
	if pred == nil {
		// Uncontended: we hold the lock immediately.
		return n
	}
	pred.next.Store(n)
	spins := 0
	for n.locked.Load() == 1 {
		spins++
		if spins%spinsBeforeYield == 0 {
			yield()
		}
	}
	return n
}

// TryLock attempts an uncontended acquisition. On success it returns the
// handle for Unlock; on failure it returns nil.
func (l *MCSLock) TryLock() *MCSNode {
	n, _ := l.pool.Get().(*MCSNode)
	if n == nil {
		n = new(MCSNode)
	}
	n.next.Store(nil)
	n.locked.Store(1)
	if l.tail.CompareAndSwap(nil, n) {
		return n
	}
	l.pool.Put(n)
	return nil
}

// Unlock releases the lock acquired with the given handle. It must only be
// called once, by the holder, with the handle Lock returned.
func (l *MCSLock) Unlock(n *MCSNode) {
	next := n.next.Load()
	if next == nil {
		// No visible successor. If the tail is still us, the queue empties.
		if l.tail.CompareAndSwap(n, nil) {
			l.pool.Put(n)
			return
		}
		// A successor is mid-enqueue: it swapped the tail but has not yet
		// linked pred.next. Wait for the link to appear.
		spins := 0
		for next = n.next.Load(); next == nil; next = n.next.Load() {
			spins++
			if spins%spinsBeforeYield == 0 {
				yield()
			}
		}
	}
	next.locked.Store(0)
	// No other thread can reach n anymore: the successor spins on its own
	// node and the tail has moved past n, so recycling is safe.
	l.pool.Put(n)
}

// Locker returns a sync.Locker view of the lock. The adapter stores the
// in-flight handle inside itself, which is safe because only the lock holder
// runs between Lock and Unlock, and the release/acquire pair orders the
// field accesses. Each Locker value supports one outstanding acquisition at
// a time (like sync.Mutex); independent goroutines may share it.
func (l *MCSLock) Locker() sync.Locker {
	return &mcsLocker{l: l}
}

type mcsLocker struct {
	l *MCSLock
	h *MCSNode
}

func (a *mcsLocker) Lock() {
	h := a.l.Lock()
	a.h = h
}

func (a *mcsLocker) Unlock() {
	h := a.h
	if h == nil {
		panic("locks: Unlock of unlocked MCSLock")
	}
	a.h = nil
	a.l.Unlock(h)
}
