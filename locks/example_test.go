package locks_test

import (
	"fmt"
	"sync"

	"github.com/cds-suite/cds/locks"
)

// MCS queue locks hand out a per-acquisition node; the Locker adapter
// hides it behind the standard interface.
func ExampleMCSLock() {
	var (
		l       locks.MCSLock
		wg      sync.WaitGroup
		counter int
	)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h := l.Lock()
				counter++
				l.Unlock(h)
			}
		}()
	}
	wg.Wait()
	fmt.Println(counter)
	// Output: 8000
}

// A seqlock publishes consistent multi-word snapshots without ever
// blocking readers on readers.
func ExampleSeqWords() {
	s := locks.NewSeqWords(2)
	s.Write([]uint64{21, 42}) // invariant: second = 2 × first

	out := make([]uint64, 2)
	s.Read(out)
	fmt.Println(out[0], out[1])
	// Output: 21 42
}

// The ticket lock is FIFO-fair: waiters acquire in arrival order.
func ExampleTicketLock() {
	var l locks.TicketLock
	l.Lock()
	fmt.Println(l.TryLock()) // held: TryLock must fail
	l.Unlock()
	fmt.Println(l.TryLock()) // free: TryLock succeeds
	l.Unlock()
	// Output:
	// false
	// true
}
