package locks

// spinsBeforeYield bounds how much raw busy-waiting the queue locks do on
// their local flags before yielding the processor to the Go scheduler (the
// same escalation policy contend.Backoff applies internally). Without
// yielding, a spinner can occupy the OS thread that the lock holder needs,
// turning microsecond critical sections into scheduling stalls.
const spinsBeforeYield = 1 << 8
