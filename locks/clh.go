package locks

import (
	"sync"
	"sync/atomic"

	"github.com/cds-suite/cds/internal/pad"
)

// CLHLock is the Craig–Landin–Hagersten queue lock. Like MCS it queues
// waiters, but each thread spins on its *predecessor's* node rather than its
// own: acquisition swaps a fresh node into the tail and waits for the
// previous node's flag to clear. Release is a single store with no
// successor discovery, which makes CLH release cheaper than MCS; the
// trade-off is that spinning is on a line written by another core, which on
// NUMA machines is why MCS is usually preferred there.
//
// The handle returned by Lock must be passed to Unlock. Handle recycling
// follows the classic scheme: after release, the unlocker donates its
// predecessor's node (now unreachable by everyone else) back to the pool.
//
// The zero value is ready to use. Progress: blocking, FIFO-fair.
type CLHLock struct {
	tail atomic.Pointer[clhNode]
	pool sync.Pool
	once sync.Once
}

type clhNode struct {
	locked atomic.Uint32
	_      pad.CacheLinePad
}

// CLHHandle identifies one acquisition of a CLHLock.
type CLHHandle struct {
	node *clhNode
	pred *clhNode
}

func (l *CLHLock) init() {
	l.once.Do(func() {
		// The queue starts with a dummy released node so the first
		// acquirer has a predecessor to spin on.
		n := new(clhNode)
		l.tail.Store(n)
	})
}

// Lock acquires the lock and returns the handle that must be passed to the
// matching Unlock call.
func (l *CLHLock) Lock() CLHHandle {
	l.init()
	n, _ := l.pool.Get().(*clhNode)
	if n == nil {
		n = new(clhNode)
	}
	n.locked.Store(1)

	pred := l.tail.Swap(n)
	spins := 0
	for pred.locked.Load() == 1 {
		spins++
		if spins%spinsBeforeYield == 0 {
			yield()
		}
	}
	return CLHHandle{node: n, pred: pred}
}

// TryLock attempts an uncontended acquisition. ok reports success; on
// success the handle must be passed to Unlock.
func (l *CLHLock) TryLock() (CLHHandle, bool) {
	l.init()
	cur := l.tail.Load()
	if cur.locked.Load() == 1 {
		return CLHHandle{}, false
	}
	n, _ := l.pool.Get().(*clhNode)
	if n == nil {
		n = new(clhNode)
	}
	n.locked.Store(1)
	if l.tail.CompareAndSwap(cur, n) {
		return CLHHandle{node: n, pred: cur}, true
	}
	l.pool.Put(n)
	return CLHHandle{}, false
}

// Unlock releases the lock acquired with the given handle.
func (l *CLHLock) Unlock(h CLHHandle) {
	h.node.locked.Store(0)
	// h.pred is no longer referenced by any thread: its owner released it
	// and we have finished spinning on it. Recycle it for future Locks.
	l.pool.Put(h.pred)
}

// Locker returns a sync.Locker view of the lock; see MCSLock.Locker for the
// safety argument of the handle slot.
func (l *CLHLock) Locker() sync.Locker {
	return &clhLocker{l: l}
}

type clhLocker struct {
	l *CLHLock
	h CLHHandle
}

func (a *clhLocker) Lock() {
	a.h = a.l.Lock()
}

func (a *clhLocker) Unlock() {
	h := a.h
	if h.node == nil {
		panic("locks: Unlock of unlocked CLHLock")
	}
	a.h = CLHHandle{}
	a.l.Unlock(h)
}
