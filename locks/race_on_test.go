//go:build race

package locks

// raceEnabled scales down spin-heavy stress tests: race-detector
// instrumentation multiplies the cost of every atomic in a spin loop, so
// full-size runs blow past test timeouts without adding assurance.
const raceEnabled = true
