package locks

import (
	"runtime"
	"sync"
	"testing"
)

// exerciseMutex drives goroutines incrementing a plain (non-atomic) shared
// counter under the lock; any mutual-exclusion failure shows up as a lost
// update (and as a race under -race).
func exerciseMutex(t *testing.T, lock sync.Locker, workers, iters int) {
	t.Helper()
	var (
		wg      sync.WaitGroup
		counter int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				lock.Lock()
				counter++
				lock.Unlock()
			}
		}()
	}
	wg.Wait()
	if want := workers * iters; counter != want {
		t.Fatalf("counter = %d, want %d: mutual exclusion violated", counter, want)
	}
}

// stressScale returns worker count and iterations sized for the build:
// spinning under the race detector is orders of magnitude slower, so the
// instrumented build uses a configuration that still interleaves heavily
// but finishes promptly.
func stressScale() (workers, iters int) {
	workers = 2 * runtime.GOMAXPROCS(0)
	iters = 2000
	if raceEnabled {
		workers = min(8, runtime.GOMAXPROCS(0)+1)
		iters = 400
	}
	return workers, iters
}

func TestMutualExclusion(t *testing.T) {
	workers, iters := stressScale()

	mcs := new(MCSLock)
	clh := new(CLHLock)
	tests := []struct {
		name string
		lock func() sync.Locker
	}{
		{name: "TAS", lock: func() sync.Locker { return new(TASLock) }},
		{name: "TTAS", lock: func() sync.Locker { return new(TTASLock) }},
		{name: "Backoff", lock: func() sync.Locker { return new(BackoffLock) }},
		{name: "Ticket", lock: func() sync.Locker { return new(TicketLock) }},
		{name: "RWSpin", lock: func() sync.Locker { return new(RWSpinLock) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			exerciseMutex(t, tt.lock(), workers, iters)
		})
	}

	// Queue locks use handle APIs; exercise them directly rather than via a
	// shared Locker adapter (one adapter supports one outstanding hold).
	t.Run("MCS", func(t *testing.T) {
		var (
			wg      sync.WaitGroup
			counter int
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					h := mcs.Lock()
					counter++
					mcs.Unlock(h)
				}
			}()
		}
		wg.Wait()
		if want := workers * iters; counter != want {
			t.Fatalf("counter = %d, want %d", counter, want)
		}
	})
	t.Run("CLH", func(t *testing.T) {
		var (
			wg      sync.WaitGroup
			counter int
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					h := clh.Lock()
					counter++
					clh.Unlock(h)
				}
			}()
		}
		wg.Wait()
		if want := workers * iters; counter != want {
			t.Fatalf("counter = %d, want %d", counter, want)
		}
	})
}

func TestLockerAdapters(t *testing.T) {
	t.Run("MCS", func(t *testing.T) {
		l := new(MCSLock)
		var wg sync.WaitGroup
		counter := 0
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				locker := l.Locker() // one adapter per goroutine
				for i := 0; i < 1000; i++ {
					locker.Lock()
					counter++
					locker.Unlock()
				}
			}()
		}
		wg.Wait()
		if counter != 8000 {
			t.Fatalf("counter = %d, want 8000", counter)
		}
	})
	t.Run("CLH", func(t *testing.T) {
		l := new(CLHLock)
		var wg sync.WaitGroup
		counter := 0
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				locker := l.Locker()
				for i := 0; i < 1000; i++ {
					locker.Lock()
					counter++
					locker.Unlock()
				}
			}()
		}
		wg.Wait()
		if counter != 8000 {
			t.Fatalf("counter = %d, want 8000", counter)
		}
	})
}

func TestTryLock(t *testing.T) {
	t.Run("TAS", func(t *testing.T) {
		l := new(TASLock)
		if !l.TryLock() {
			t.Fatal("TryLock on free lock failed")
		}
		if l.TryLock() {
			t.Fatal("TryLock on held lock succeeded")
		}
		l.Unlock()
		if !l.TryLock() {
			t.Fatal("TryLock after Unlock failed")
		}
		l.Unlock()
	})
	t.Run("TTAS", func(t *testing.T) {
		l := new(TTASLock)
		if !l.TryLock() {
			t.Fatal("TryLock on free lock failed")
		}
		if l.TryLock() {
			t.Fatal("TryLock on held lock succeeded")
		}
		l.Unlock()
	})
	t.Run("Backoff", func(t *testing.T) {
		l := new(BackoffLock)
		if !l.TryLock() {
			t.Fatal("TryLock on free lock failed")
		}
		if l.TryLock() {
			t.Fatal("TryLock on held lock succeeded")
		}
		l.Unlock()
	})
	t.Run("Ticket", func(t *testing.T) {
		l := new(TicketLock)
		if !l.TryLock() {
			t.Fatal("TryLock on free lock failed")
		}
		if l.TryLock() {
			t.Fatal("TryLock on held lock succeeded")
		}
		l.Unlock()
		if !l.TryLock() {
			t.Fatal("TryLock after Unlock failed")
		}
		l.Unlock()
	})
	t.Run("MCS", func(t *testing.T) {
		l := new(MCSLock)
		h := l.TryLock()
		if h == nil {
			t.Fatal("TryLock on free lock failed")
		}
		if l.TryLock() != nil {
			t.Fatal("TryLock on held lock succeeded")
		}
		l.Unlock(h)
		h = l.TryLock()
		if h == nil {
			t.Fatal("TryLock after Unlock failed")
		}
		l.Unlock(h)
	})
	t.Run("CLH", func(t *testing.T) {
		l := new(CLHLock)
		h, ok := l.TryLock()
		if !ok {
			t.Fatal("TryLock on free lock failed")
		}
		if _, ok := l.TryLock(); ok {
			t.Fatal("TryLock on held lock succeeded")
		}
		l.Unlock(h)
		if _, ok := l.TryLock(); !ok {
			t.Fatal("TryLock after Unlock failed")
		}
	})
	t.Run("RWSpin", func(t *testing.T) {
		l := new(RWSpinLock)
		if !l.TryLock() {
			t.Fatal("writer TryLock on free lock failed")
		}
		if l.TryRLock() {
			t.Fatal("reader TryRLock under writer succeeded")
		}
		l.Unlock()
		if !l.TryRLock() {
			t.Fatal("TryRLock on free lock failed")
		}
		if l.TryLock() {
			t.Fatal("writer TryLock under reader succeeded")
		}
		l.RUnlock()
	})
}

func TestPeterson(t *testing.T) {
	var (
		l       Peterson
		wg      sync.WaitGroup
		counter int
	)
	iters := 50000
	if raceEnabled {
		iters = 5000
	}
	for slot := 0; slot < 2; slot++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.Lock(slot)
				counter++
				l.Unlock(slot)
			}
		}(slot)
	}
	wg.Wait()
	if counter != 2*iters {
		t.Fatalf("counter = %d, want %d", counter, 2*iters)
	}
}

func TestRWSpinLockReadersShareWritersExclude(t *testing.T) {
	var l RWSpinLock

	// Multiple concurrent readers must be admitted simultaneously.
	l.RLock()
	if !l.TryRLock() {
		t.Fatal("second concurrent reader rejected")
	}
	l.RUnlock()
	l.RUnlock()

	// Readers block writers; writers block readers (tested via Try variants
	// above); here verify writer waits for reader drain.
	l.RLock()
	acquired := make(chan struct{})
	go func() {
		l.Lock()
		close(acquired)
		l.Unlock()
	}()
	select {
	case <-acquired:
		t.Fatal("writer acquired lock while reader held it")
	default:
	}
	l.RUnlock()
	<-acquired
}

func TestRWSpinLockStress(t *testing.T) {
	var (
		l       RWSpinLock
		wg      sync.WaitGroup
		shared  [2]int // writers keep shared[0] == shared[1]
		readers = runtime.GOMAXPROCS(0)
	)
	writes := 20000
	if raceEnabled {
		writes = 3000
	}
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				l.RLock()
				a, b := shared[0], shared[1]
				l.RUnlock()
				if a != b {
					t.Errorf("reader saw torn write: %d != %d", a, b)
					return
				}
			}
		}()
	}
	for i := 0; i < writes; i++ {
		l.Lock()
		shared[0]++
		shared[1]++
		l.Unlock()
	}
	close(stop)
	wg.Wait()
	if shared[0] != writes || shared[1] != writes {
		t.Fatalf("writes lost: %v", shared)
	}
}

func TestRWSpinLockMisuse(t *testing.T) {
	t.Run("unlock not held", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("Unlock of unheld lock did not panic")
			}
		}()
		var l RWSpinLock
		l.Unlock()
	})
	t.Run("runlock not held", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("RUnlock of unheld lock did not panic")
			}
		}()
		var l RWSpinLock
		l.RUnlock()
	})
}

func TestLockerAdapterMisuse(t *testing.T) {
	t.Run("MCS", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("Unlock of unlocked adapter did not panic")
			}
		}()
		new(MCSLock).Locker().Unlock()
	})
	t.Run("CLH", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("Unlock of unlocked adapter did not panic")
			}
		}()
		new(CLHLock).Locker().Unlock()
	})
}

func TestTicketLockFIFO(t *testing.T) {
	// With the lock held, start waiters one at a time (each guaranteed to
	// have taken its ticket before the next starts); they must acquire in
	// arrival order.
	var l TicketLock
	l.Lock()

	const n = 8
	order := make(chan int, n)
	started := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Take the ticket inside Lock; signal only after we are surely
			// enqueued is impossible without hooking internals, so serialise
			// goroutine starts instead: ticket acquisition is the first
			// atomic in Lock, and we give each starter time to reach it.
			close2 := make(chan struct{})
			go func() { close(close2) }()
			<-close2
			started <- struct{}{}
			l.Lock()
			order <- i
			l.Unlock()
		}(i)
		<-started
		// Give the goroutine time to execute the fetch-and-add in Lock.
		for j := 0; j < 1000; j++ {
			runtime.Gosched()
		}
	}
	l.Unlock()
	wg.Wait()
	close(order)
	prev := -1
	for got := range order {
		if got != prev+1 {
			t.Fatalf("acquisition order violated FIFO: got %d after %d", got, prev)
		}
		prev = got
	}
}

func TestSeqlockSequence(t *testing.T) {
	var s Seqlock
	seq := s.ReadBegin()
	if seq%2 != 0 {
		t.Fatalf("ReadBegin returned odd sequence %d", seq)
	}
	if s.ReadRetry(seq) {
		t.Fatal("ReadRetry with no writer reported retry")
	}
	s.WriteLock()
	if !s.ReadRetry(seq) {
		t.Fatal("ReadRetry during write did not report retry")
	}
	s.WriteUnlock()
	if !s.ReadRetry(seq) {
		t.Fatal("ReadRetry after write did not report retry")
	}
}

func TestSeqWordsConsistentSnapshots(t *testing.T) {
	s := NewSeqWords(2)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	readers := runtime.GOMAXPROCS(0)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]uint64, 2)
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.Read(out)
				if out[1] != 2*out[0] {
					t.Errorf("torn read: got (%d, %d), want (x, 2x)", out[0], out[1])
					return
				}
			}
		}()
	}
	writes := uint64(20000)
	if raceEnabled {
		writes = 3000
	}
	for i := uint64(1); i <= writes; i++ {
		s.Write([]uint64{i, 2 * i})
	}
	close(stop)
	wg.Wait()
}

func TestSeqWordsConcurrentWriters(t *testing.T) {
	s := NewSeqWords(2)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := uint64(0); i < 5000; i++ {
				v := uint64(w)*1000000 + i
				s.Write([]uint64{v, 2 * v})
			}
		}(w)
	}
	wg.Wait()
	out := make([]uint64, 2)
	s.Read(out)
	if out[1] != 2*out[0] {
		t.Fatalf("final state torn: %v", out)
	}
}
