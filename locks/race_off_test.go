//go:build !race

package locks

// raceEnabled scales down spin-heavy stress tests under the race detector.
const raceEnabled = false
