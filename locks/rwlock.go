package locks

import (
	"sync"
	"sync/atomic"

	"github.com/cds-suite/cds/contend"
)

var _ sync.Locker = (*RWSpinLock)(nil)

// rwWriterBit marks a held or pending writer in the RWSpinLock state word;
// the low bits count active readers.
const rwWriterBit uint32 = 1 << 31

// RWSpinLock is a writer-preference reader–writer spin lock built on a
// single state word: the top bit records a held or pending writer and the
// remaining bits count active readers. Writers announce themselves by
// setting the bit (blocking new readers) and then wait for the reader count
// to drain; readers increment the count only while no writer is announced.
//
// Writer preference matters for the data-structure use cases in this module:
// under read-heavy workloads a reader-preference lock starves updaters
// indefinitely.
//
// The zero value is an unlocked RWSpinLock. Progress: blocking; writers are
// favoured over readers, writers among themselves are unfair.
type RWSpinLock struct {
	state atomic.Uint32
}

// Lock acquires the lock in exclusive (writer) mode.
func (l *RWSpinLock) Lock() {
	var b contend.Backoff
	// Phase 1: claim the writer bit, excluding other writers and stopping
	// new readers from entering.
	for {
		s := l.state.Load()
		if s&rwWriterBit == 0 && l.state.CompareAndSwap(s, s|rwWriterBit) {
			break
		}
		b.Pause()
	}
	// Phase 2: wait for in-flight readers to drain.
	b.Reset()
	for l.state.Load() != rwWriterBit {
		b.Pause()
	}
}

// TryLock attempts to acquire the lock in writer mode without waiting. It
// succeeds only when there are no readers and no writer.
func (l *RWSpinLock) TryLock() bool {
	return l.state.CompareAndSwap(0, rwWriterBit)
}

// Unlock releases a writer acquisition.
func (l *RWSpinLock) Unlock() {
	//cdsvet:ignore spinpace owner-only bit clear: only the writer runs this loop and failures reflect reader-count churn, which RLock's own backoff bounds
	for {
		s := l.state.Load()
		if s&rwWriterBit == 0 {
			panic("locks: Unlock of RWSpinLock not held in writer mode")
		}
		if l.state.CompareAndSwap(s, s&^rwWriterBit) {
			return
		}
	}
}

// RLock acquires the lock in shared (reader) mode.
func (l *RWSpinLock) RLock() {
	var b contend.Backoff
	for {
		s := l.state.Load()
		if s&rwWriterBit == 0 && l.state.CompareAndSwap(s, s+1) {
			return
		}
		b.Pause()
	}
}

// TryRLock attempts to acquire the lock in reader mode without waiting.
func (l *RWSpinLock) TryRLock() bool {
	s := l.state.Load()
	return s&rwWriterBit == 0 && l.state.CompareAndSwap(s, s+1)
}

// RUnlock releases a reader acquisition.
func (l *RWSpinLock) RUnlock() {
	s := l.state.Add(^uint32(0)) // decrement
	if s&^rwWriterBit == ^uint32(0)&^rwWriterBit {
		panic("locks: RUnlock of RWSpinLock not held in reader mode")
	}
}

// RLocker returns a sync.Locker whose Lock/Unlock map to RLock/RUnlock.
func (l *RWSpinLock) RLocker() sync.Locker {
	return rlocker{l}
}

type rlocker struct{ l *RWSpinLock }

func (r rlocker) Lock()   { r.l.RLock() }
func (r rlocker) Unlock() { r.l.RUnlock() }
