package locks

import "sync/atomic"

// Peterson is Peterson's classic two-thread mutual-exclusion algorithm,
// implemented with sequentially consistent atomics (plain loads/stores are
// insufficient on modern memory models — the store of victim and the load of
// the other thread's flag must not be reordered, which is exactly the
// guarantee Go's atomics provide).
//
// It exists because the survey literature builds the theory of mutual
// exclusion from it; it is not a practical lock. The two participants are
// identified by slots 0 and 1, and each slot must be used by at most one
// goroutine at a time.
//
// The zero value is an unlocked Peterson lock. Progress: blocking,
// starvation-free for two threads.
type Peterson struct {
	flag   [2]atomic.Uint32
	victim atomic.Uint32
}

// Lock acquires the lock for the goroutine occupying the given slot (0 or 1).
func (l *Peterson) Lock(slot int) {
	other := 1 - slot
	l.flag[slot].Store(1)
	l.victim.Store(uint32(slot))
	spins := 0
	for l.flag[other].Load() == 1 && l.victim.Load() == uint32(slot) {
		spins++
		if spins%spinsBeforeYield == 0 {
			yield()
		}
	}
}

// Unlock releases the lock held by the given slot.
func (l *Peterson) Unlock(slot int) {
	l.flag[slot].Store(0)
}
