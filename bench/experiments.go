package bench

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	cds "github.com/cds-suite/cds"
	"github.com/cds-suite/cds/barrier"
	"github.com/cds-suite/cds/cmap"
	"github.com/cds-suite/cds/contend"
	"github.com/cds-suite/cds/counter"
	"github.com/cds-suite/cds/deque"
	"github.com/cds-suite/cds/fc"
	"github.com/cds-suite/cds/internal/xrand"
	"github.com/cds-suite/cds/list"
	"github.com/cds-suite/cds/locks"
	"github.com/cds-suite/cds/pqueue"
	"github.com/cds-suite/cds/queue"
	"github.com/cds-suite/cds/reclaim"
	"github.com/cds-suite/cds/skiplist"
	"github.com/cds-suite/cds/stack"
	"github.com/cds-suite/cds/stm"
)

// Config controls an experiment run.
type Config struct {
	// Threads is the sweep of worker counts; nil selects the default
	// ladder up to GOMAXPROCS.
	Threads []int
	// Ops is the per-worker operation count; 0 selects per-experiment
	// defaults.
	Ops int
	// Quick divides the workload for smoke runs.
	Quick bool
}

func (c Config) threads() []int {
	if len(c.Threads) > 0 {
		return c.Threads
	}
	return DefaultThreadSweep(runtime.GOMAXPROCS(0))
}

func (c Config) ops(def int) int {
	n := c.Ops
	if n == 0 {
		n = def
	}
	if c.Quick && n > 10000 {
		n = 10000
	}
	return n
}

// Experiment is one reproducible figure or table from DESIGN.md.
type Experiment struct {
	// ID is the DESIGN.md identifier (F1..F12, T1..T3, A1..A4, S1..).
	ID string
	// Title describes what the experiment shows.
	Title string
	// Run produces the figure(s).
	Run func(cfg Config) []Figure
	// Records produces Report records directly. It is set on experiments
	// (the scenario matrix) whose native output is records with latency
	// percentiles; when nil, BuildReport flattens Run's figures instead.
	Records func(cfg Config) []Record
}

// Experiments returns the full suite: the DESIGN.md figures and tables
// followed by the mixed-workload scenario matrix (S experiments).
func Experiments() []Experiment {
	return append([]Experiment{
		{ID: "F1", Title: "Spin-lock scalability (tiny critical section)", Run: runF1},
		{ID: "F2", Title: "Shared counter throughput", Run: runF2},
		{ID: "F3", Title: "Stack algorithms, 50/50 push-pop", Run: runF3},
		{ID: "F4", Title: "Queue algorithms, 50/50 enq-deq", Run: runF4},
		{ID: "F5", Title: "List-based set progression, 90% reads", Run: runF5},
		{ID: "F6", Title: "Hash map scalability by read ratio and skew", Run: runF6},
		{ID: "F7", Title: "Skip list scalability, 90/5/5 mix", Run: runF7},
		{ID: "F8", Title: "Priority queues, 50/50 insert-deleteMin", Run: runF8},
		{ID: "F9", Title: "Work-stealing deque vs. locked deque", Run: runF9},
		{ID: "F10", Title: "Barrier episode throughput", Run: runF10},
		{ID: "F11", Title: "STM bank transfers vs. global lock", Run: runF11},
		{ID: "F12", Title: "Memory reclamation on the lock-free structures: GC vs. EBR vs. HP vs. recycled", Run: runF12, Records: runF12Records},
		{ID: "T1", Title: "Single-thread throughput overview (Mops/s; ns/op = 1000/Mops)", Run: runT1},
		{ID: "T2", Title: "Contention sensitivity under Zipf skew (maps, full threads)", Run: runT2},
		{ID: "T3", Title: "Elimination hit rate (column = hits per 100 visits)", Run: runT3},
	}, ScenarioExperiments()...)
}

// ScenarioExperiments exposes the workload-mix matrix of bench/scenario.go
// as one experiment per structure family (S1, S2, ...): each runs at
// least two scenario mixes per family with per-operation latency sampling,
// rendered as throughput and p99 tables in text mode and as latency-rich
// records in a JSON Report.
func ScenarioExperiments() []Experiment {
	var exps []Experiment
	for i, family := range ScenarioFamilies() {
		exps = append(exps, Experiment{
			ID:    fmt.Sprintf("S%d", i+1),
			Title: fmt.Sprintf("Scenario mixes: %s (throughput + p99 latency)", family),
			Run: func(cfg Config) []Figure {
				return scenarioFigures(family, runFamilyRecords(cfg, family))
			},
			Records: func(cfg Config) []Record {
				return runFamilyRecords(cfg, family)
			},
		})
	}
	return exps
}

func runFamilyRecords(cfg Config, family string) []Record {
	var recs []Record
	for _, s := range Scenarios() {
		if s.Family == family {
			recs = append(recs, s.Run(cfg)...)
		}
	}
	return recs
}

// BuildReport runs the given experiments (as selected by cmd/cdsbench)
// and assembles their results into a Report. Experiments with a native
// Records function contribute latency-rich records; the rest contribute
// their figures flattened one record per point.
func BuildReport(cfg Config, exps []Experiment) Report {
	rep := Report{Schema: ReportSchema, Meta: NewMeta(cfg.Quick)}
	rep.Summary = RunSummary(rep.Meta)
	for _, e := range exps {
		if e.Records != nil {
			rep.Records = append(rep.Records, e.Records(cfg)...)
			continue
		}
		for _, fig := range e.Run(cfg) {
			rep.Records = append(rep.Records, fig.Records()...)
		}
	}
	return rep
}

// Find returns the experiment with the given ID, searching the main suite
// and the ablations.
func Find(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	for _, e := range Ablations() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// --- F1: locks ------------------------------------------------------------

func runF1(cfg Config) []Figure {
	ops := cfg.ops(200000)
	type impl struct {
		label string
		mk    func() func() sync.Locker // returns per-worker locker factory
	}
	impls := []impl{
		{label: "sync.Mutex", mk: func() func() sync.Locker {
			mu := &sync.Mutex{}
			return func() sync.Locker { return mu }
		}},
		{label: "TAS", mk: func() func() sync.Locker {
			l := &locks.TASLock{}
			return func() sync.Locker { return l }
		}},
		{label: "TTAS", mk: func() func() sync.Locker {
			l := &locks.TTASLock{}
			return func() sync.Locker { return l }
		}},
		{label: "Backoff", mk: func() func() sync.Locker {
			l := &locks.BackoffLock{}
			return func() sync.Locker { return l }
		}},
		{label: "Ticket", mk: func() func() sync.Locker {
			l := &locks.TicketLock{}
			return func() sync.Locker { return l }
		}},
		{label: "MCS", mk: func() func() sync.Locker {
			l := &locks.MCSLock{}
			return func() sync.Locker { return l.Locker() }
		}},
		{label: "CLH", mk: func() func() sync.Locker {
			l := &locks.CLHLock{}
			return func() sync.Locker { return l.Locker() }
		}},
	}
	fig := Figure{ID: "F1", Title: "lock throughput, counter critical section", Family: "locks", XLabel: "threads"}
	for _, im := range impls {
		var s Series
		s.Label = im.label
		for _, th := range cfg.threads() {
			factory := im.mk()
			shared := 0
			res := Run(th, ops/th+1, func(w int) func(int) {
				locker := factory()
				return func(int) {
					locker.Lock()
					shared++
					locker.Unlock()
				}
			})
			s.Points = append(s.Points, Point{X: th, Mops: res.Throughput()})
			_ = shared
		}
		fig.Series = append(fig.Series, s)
	}
	return []Figure{fig}
}

// --- F2: counters ----------------------------------------------------------

func runF2(cfg Config) []Figure {
	ops := cfg.ops(500000)
	fig := Figure{ID: "F2", Title: "counter increment throughput", Family: "counter", XLabel: "threads"}

	type impl struct {
		label string
		mk    func(threads int) func(w int) func(int)
	}
	impls := []impl{
		{label: "Locked", mk: func(int) func(int) func(int) {
			c := &counter.Locked{}
			return func(int) func(int) { return func(int) { c.Inc() } }
		}},
		{label: "Atomic", mk: func(int) func(int) func(int) {
			c := &counter.Atomic{}
			return func(int) func(int) { return func(int) { c.Inc() } }
		}},
		{label: "Sharded", mk: func(int) func(int) func(int) {
			c := counter.NewSharded(0)
			return func(int) func(int) {
				h := c.Handle()
				return func(int) { h.Inc() }
			}
		}},
		{label: "Approx", mk: func(int) func(int) func(int) {
			c := counter.NewApprox(0, 64)
			return func(int) func(int) { return func(int) { c.Inc() } }
		}},
		{label: "CombiningTree", mk: func(threads int) func(int) func(int) {
			c := counter.NewCombiningTree(threads)
			return func(w int) func(int) {
				h := c.Handle(w)
				return func(int) { h.Inc() }
			}
		}},
	}
	for _, im := range impls {
		var s Series
		s.Label = im.label
		for _, th := range cfg.threads() {
			mk := im.mk(th)
			res := Run(th, ops/th+1, mk)
			s.Points = append(s.Points, Point{X: th, Mops: res.Throughput()})
		}
		fig.Series = append(fig.Series, s)
	}
	return []Figure{fig}
}

// --- F3: stacks ------------------------------------------------------------

func runF3(cfg Config) []Figure {
	ops := cfg.ops(300000)
	fig := Figure{ID: "F3", Title: "stack ops/sec, 50/50 push-pop, prefill 1k", Family: "stack", XLabel: "threads"}
	impls := map[string]func() cds.Stack[int]{
		"Mutex":       func() cds.Stack[int] { return stack.NewMutex[int]() },
		"Treiber":     func() cds.Stack[int] { return stack.NewTreiber[int]() },
		"Elimination": func() cds.Stack[int] { return stack.NewElimination[int](0, 0) },
		"FC":          func() cds.Stack[int] { return fc.NewStack[int]() },
	}
	for _, label := range []string{"Mutex", "Treiber", "Elimination", "FC"} {
		mk := impls[label]
		var s Series
		s.Label = label
		for _, th := range cfg.threads() {
			st := mk()
			for i := 0; i < 1024; i++ {
				st.Push(i)
			}
			res := Run(th, ops/th+1, func(w int) func(int) {
				rng := xrand.New(uint64(w) + 1)
				return func(int) {
					if rng.Uint64()&1 == 0 {
						st.Push(7)
					} else {
						st.TryPop()
					}
				}
			})
			s.Points = append(s.Points, Point{X: th, Mops: res.Throughput()})
		}
		fig.Series = append(fig.Series, s)
	}
	return []Figure{fig}
}

// --- F4: queues ------------------------------------------------------------

func runF4(cfg Config) []Figure {
	ops := cfg.ops(300000)
	fig := Figure{ID: "F4", Title: "queue ops/sec, 50/50 enq-deq, prefill 1k", Family: "queue", XLabel: "threads"}

	type mkops func() func(w int) func(int)
	impls := []struct {
		label string
		mk    mkops
	}{
		{label: "Mutex", mk: func() func(int) func(int) {
			q := queue.NewMutex[int]()
			for i := 0; i < 1024; i++ {
				q.Enqueue(i)
			}
			return opsQueue(q)
		}},
		{label: "TwoLock", mk: func() func(int) func(int) {
			q := queue.NewTwoLock[int]()
			for i := 0; i < 1024; i++ {
				q.Enqueue(i)
			}
			return opsQueue(q)
		}},
		{label: "MS", mk: func() func(int) func(int) {
			q := queue.NewMS[int]()
			for i := 0; i < 1024; i++ {
				q.Enqueue(i)
			}
			return opsQueue(q)
		}},
		{label: "ElimMS", mk: func() func(int) func(int) {
			q := queue.NewElimination[int](0, 0)
			for i := 0; i < 1024; i++ {
				q.Enqueue(i)
			}
			return opsQueue(q)
		}},
		{label: "FC", mk: func() func(int) func(int) {
			q := fc.NewQueue[int]()
			for i := 0; i < 1024; i++ {
				q.Enqueue(i)
			}
			return opsQueue(q)
		}},
		{label: "FC/CC-Synch", mk: func() func(int) func(int) {
			q := fc.NewQueue[int](fc.WithBackend(contend.BackendCCSynch))
			for i := 0; i < 1024; i++ {
				q.Enqueue(i)
			}
			return opsQueue(q)
		}},
		{label: "FC/DSM-Synch", mk: func() func(int) func(int) {
			q := fc.NewQueue[int](fc.WithBackend(contend.BackendDSMSynch))
			for i := 0; i < 1024; i++ {
				q.Enqueue(i)
			}
			return opsQueue(q)
		}},
		{label: "MPMC-64k", mk: func() func(int) func(int) {
			q := queue.NewMPMC[int](1 << 16)
			for i := 0; i < 1024; i++ {
				q.TryEnqueue(i)
			}
			return func(w int) func(int) {
				rng := xrand.New(uint64(w) + 1)
				return func(int) {
					if rng.Uint64()&1 == 0 {
						q.TryEnqueue(7)
					} else {
						q.TryDequeue()
					}
				}
			}
		}},
	}
	for _, im := range impls {
		var s Series
		s.Label = im.label
		for _, th := range cfg.threads() {
			mk := im.mk()
			res := Run(th, ops/th+1, mk)
			s.Points = append(s.Points, Point{X: th, Mops: res.Throughput()})
		}
		fig.Series = append(fig.Series, s)
	}
	return []Figure{fig}
}

func opsQueue(q cds.Queue[int]) func(w int) func(int) {
	return func(w int) func(int) {
		rng := xrand.New(uint64(w) + 1)
		return func(int) {
			if rng.Uint64()&1 == 0 {
				q.Enqueue(7)
			} else {
				q.TryDequeue()
			}
		}
	}
}

// --- F5: list sets ---------------------------------------------------------

func runF5(cfg Config) []Figure {
	ops := cfg.ops(100000)
	const keyRange = 1024
	fig := Figure{ID: "F5", Title: "sorted-list sets, 90% contains / 5% add / 5% remove, keys 0..1023", Family: "list", XLabel: "threads"}
	impls := []struct {
		label string
		mk    func() cds.Set[int]
	}{
		{label: "Coarse", mk: func() cds.Set[int] { return list.NewCoarse[int]() }},
		{label: "Fine", mk: func() cds.Set[int] { return list.NewFine[int]() }},
		{label: "Optimistic", mk: func() cds.Set[int] { return list.NewOptimistic[int]() }},
		{label: "Lazy", mk: func() cds.Set[int] { return list.NewLazy[int]() }},
		{label: "Harris", mk: func() cds.Set[int] { return list.NewHarris[int]() }},
	}
	for _, im := range impls {
		var s Series
		s.Label = im.label
		for _, th := range cfg.threads() {
			set := im.mk()
			pre := xrand.New(99)
			for i := 0; i < keyRange/2; i++ {
				set.Add(pre.Intn(keyRange))
			}
			res := Run(th, ops/th+1, setMixOp(set, keyRange, 90))
			s.Points = append(s.Points, Point{X: th, Mops: res.Throughput()})
		}
		fig.Series = append(fig.Series, s)
	}
	return []Figure{fig}
}

// setMixOp builds a readPct% contains / rest split add-remove operation mix.
func setMixOp(set cds.Set[int], keyRange int, readPct uint64) func(w int) func(int) {
	return func(w int) func(int) {
		rng := xrand.New(uint64(w)*2654435761 + 1)
		return func(int) {
			k := rng.Intn(keyRange)
			r := rng.Uint64n(100)
			switch {
			case r < readPct:
				set.Contains(k)
			case r < readPct+(100-readPct)/2:
				set.Add(k)
			default:
				set.Remove(k)
			}
		}
	}
}

// --- F6: hash maps ---------------------------------------------------------

// syncMapAdapter wraps sync.Map as a cds.Map for baseline comparison.
type syncMapAdapter struct{ m sync.Map }

func (a *syncMapAdapter) Load(k int) (int, bool) {
	v, ok := a.m.Load(k)
	if !ok {
		return 0, false
	}
	return v.(int), true
}
func (a *syncMapAdapter) Store(k, v int) { a.m.Store(k, v) }
func (a *syncMapAdapter) LoadOrStore(k, v int) (int, bool) {
	actual, loaded := a.m.LoadOrStore(k, v)
	return actual.(int), loaded
}
func (a *syncMapAdapter) Delete(k int) bool {
	_, loaded := a.m.LoadAndDelete(k)
	return loaded
}
func (a *syncMapAdapter) Len() int {
	n := 0
	a.m.Range(func(any, any) bool { n++; return true })
	return n
}

func mapImpls() []struct {
	label string
	mk    func() cds.Map[int, int]
} {
	return []struct {
		label string
		mk    func() cds.Map[int, int]
	}{
		{label: "Locked", mk: func() cds.Map[int, int] { return cmap.NewLocked[int, int]() }},
		{label: "Striped", mk: func() cds.Map[int, int] { return cmap.NewStriped[int, int](64) }},
		{label: "SplitOrdered", mk: func() cds.Map[int, int] { return cmap.NewSplitOrdered[int, int]() }},
		{label: "sync.Map", mk: func() cds.Map[int, int] { return &syncMapAdapter{} }},
	}
}

func runF6(cfg Config) []Figure {
	ops := cfg.ops(200000)
	const keyRange = 1 << 16
	var figs []Figure
	for _, dist := range []struct {
		name  string
		theta float64
	}{
		{name: "uniform", theta: 0},
		{name: "zipf0.99", theta: 0.99},
	} {
		for _, readPct := range []uint64{50, 90, 99} {
			fig := Figure{
				ID:     "F6",
				Family: "cmap",
				Title:  fmt.Sprintf("hash maps, %d%% reads, %s keys 0..%d", readPct, dist.name, keyRange-1),
				XLabel: "threads",
			}
			for _, im := range mapImpls() {
				var s Series
				s.Label = im.label
				for _, th := range cfg.threads() {
					m := im.mk()
					pre := xrand.New(7)
					for i := 0; i < keyRange/2; i++ {
						m.Store(pre.Intn(keyRange), i)
					}
					res := Run(th, ops/th+1, mapMixOp(m, keyRange, dist.theta, readPct))
					s.Points = append(s.Points, Point{X: th, Mops: res.Throughput()})
				}
				fig.Series = append(fig.Series, s)
			}
			figs = append(figs, fig)
		}
	}
	return figs
}

func mapMixOp(m cds.Map[int, int], keyRange int, theta float64, readPct uint64) func(w int) func(int) {
	return func(w int) func(int) {
		keys, err := NewKeyStream(uint64(keyRange), theta, uint64(w)+1)
		if err != nil {
			panic(err) // static parameters; cannot fail at runtime
		}
		rng := xrand.New(uint64(w)*912367 + 5)
		return func(int) {
			k := int(keys.Next())
			r := rng.Uint64n(100)
			switch {
			case r < readPct:
				m.Load(k)
			case r < readPct+(100-readPct)/2:
				m.Store(k, 42)
			default:
				m.Delete(k)
			}
		}
	}
}

// --- F7: skip lists ---------------------------------------------------------

func runF7(cfg Config) []Figure {
	ops := cfg.ops(200000)
	const keyRange = 1 << 16
	fig := Figure{ID: "F7", Title: "skip lists, 90% contains / 5% add / 5% remove, keys 0..65535", Family: "skiplist", XLabel: "threads"}
	impls := []struct {
		label string
		mk    func() cds.Set[int]
	}{
		{label: "Lazy", mk: func() cds.Set[int] { return skiplist.NewLazy[int]() }},
		{label: "LockFree", mk: func() cds.Set[int] { return skiplist.NewLockFree[int]() }},
	}
	for _, im := range impls {
		var s Series
		s.Label = im.label
		for _, th := range cfg.threads() {
			set := im.mk()
			pre := xrand.New(3)
			for i := 0; i < keyRange/2; i++ {
				set.Add(pre.Intn(keyRange))
			}
			res := Run(th, ops/th+1, setMixOp(set, keyRange, 90))
			s.Points = append(s.Points, Point{X: th, Mops: res.Throughput()})
		}
		fig.Series = append(fig.Series, s)
	}
	return []Figure{fig}
}

// --- F8: priority queues -----------------------------------------------------

func runF8(cfg Config) []Figure {
	ops := cfg.ops(100000)
	fig := Figure{ID: "F8", Title: "priority queues, 50/50 insert-deleteMin, prefill 4k", Family: "pqueue", XLabel: "threads"}
	impls := []struct {
		label string
		mk    func() cds.PriorityQueue[int]
	}{
		{label: "LockedHeap", mk: func() cds.PriorityQueue[int] {
			return pqueue.NewHeap[int](func(a, b int) bool { return a < b })
		}},
		{label: "SkipListPQ", mk: func() cds.PriorityQueue[int] { return pqueue.NewSkipList[int]() }},
		{label: "FCHeap", mk: func() cds.PriorityQueue[int] {
			return pqueue.NewFC[int](func(a, b int) bool { return a < b })
		}},
		{label: "FCHeap/CC-Synch", mk: func() cds.PriorityQueue[int] {
			return pqueue.NewFC[int](func(a, b int) bool { return a < b },
				pqueue.WithBackend(contend.BackendCCSynch))
		}},
		{label: "FCHeap/DSM-Synch", mk: func() cds.PriorityQueue[int] {
			return pqueue.NewFC[int](func(a, b int) bool { return a < b },
				pqueue.WithBackend(contend.BackendDSMSynch))
		}},
	}
	for _, im := range impls {
		var s Series
		s.Label = im.label
		for _, th := range cfg.threads() {
			pq := im.mk()
			pre := xrand.New(11)
			for i := 0; i < 4096; i++ {
				pq.Insert(pre.Intn(1 << 20))
			}
			res := Run(th, ops/th+1, func(w int) func(int) {
				rng := xrand.New(uint64(w) + 17)
				return func(int) {
					if rng.Uint64()&1 == 0 {
						pq.Insert(rng.Intn(1 << 20))
					} else {
						pq.TryDeleteMin()
					}
				}
			})
			s.Points = append(s.Points, Point{X: th, Mops: res.Throughput()})
		}
		fig.Series = append(fig.Series, s)
	}
	return []Figure{fig}
}

// --- F9: work stealing -------------------------------------------------------

func runF9(cfg Config) []Figure {
	ownerOps := cfg.ops(2000000)
	fig := Figure{
		ID:     "F9",
		Family: "deque",
		Title:  "work-stealing system throughput (M tasks/s, ~300ns tasks) vs. stealers",
		XLabel: "stealers",
	}
	maxStealers := runtime.GOMAXPROCS(0) - 1
	if maxStealers < 1 {
		maxStealers = 1
	}
	var sweep []int
	for k := 0; k <= maxStealers; k = next(k) {
		sweep = append(sweep, k)
	}

	impls := []struct {
		label string
		mk    func() cds.Deque[int]
	}{
		{label: "ChaseLev", mk: func() cds.Deque[int] { return deque.NewChaseLev[int](1024) }},
		{label: "MutexDeque", mk: func() cds.Deque[int] { return deque.NewMutex[int]() }},
	}
	// System-throughput methodology: the owner produces tasks in bursts and
	// executes what it pops locally; thieves execute what they steal. The
	// metric is completed tasks per second — counting only the owner's ops
	// would treat every successful steal (the deque's whole purpose) as
	// lost work. Each task is ~300ns of computation, the fine-grained
	// regime work stealing targets.
	const burst = 32
	taskWork := func(seed uint64) uint64 {
		for k := 0; k < 64; k++ {
			seed = xrand.SplitMix64(&seed)
		}
		return seed
	}
	for _, im := range impls {
		var s Series
		s.Label = im.label
		for _, thieves := range sweep {
			d := im.mk()
			var (
				wg       sync.WaitGroup
				stop     atomic.Bool
				consumed atomic.Int64
			)
			for t := 0; t < thieves; t++ {
				wg.Add(1)
				go func(t int) {
					defer wg.Done()
					sink := uint64(t)
					for !stop.Load() {
						if v, ok := d.TryPopTop(); ok {
							sink = taskWork(uint64(v))
							consumed.Add(1)
						}
					}
					_ = sink
				}(t)
			}
			t0 := time.Now()
			var sink uint64
			for i := 0; i < ownerOps/burst; i++ {
				for j := 0; j < burst; j++ {
					d.PushBottom(j)
				}
				for {
					v, ok := d.TryPopBottom()
					if !ok {
						break
					}
					sink = taskWork(uint64(v))
					consumed.Add(1)
				}
			}
			// Drain stragglers (tasks the thieves have not picked up yet).
			for consumed.Load() < int64(ownerOps/burst*burst) {
				if v, ok := d.TryPopBottom(); ok {
					sink = taskWork(uint64(v))
					consumed.Add(1)
				}
			}
			elapsed := time.Since(t0)
			stop.Store(true)
			wg.Wait()
			_ = sink
			mops := float64(consumed.Load()) / elapsed.Seconds() / 1e6
			s.Points = append(s.Points, Point{X: thieves, Mops: mops})
		}
		fig.Series = append(fig.Series, s)
	}
	return []Figure{fig}
}

func next(k int) int {
	if k == 0 {
		return 1
	}
	return k * 2
}

// --- F10: barriers -----------------------------------------------------------

func runF10(cfg Config) []Figure {
	episodes := cfg.ops(20000)
	fig := Figure{ID: "F10", Title: "barrier episodes per second (Mops column = M episodes/s × threads)", Family: "barrier", XLabel: "threads"}
	type mk func(n int) []interface{ Wait() }
	impls := []struct {
		label string
		mk    mk
	}{
		{label: "Sense", mk: func(n int) []interface{ Wait() } {
			b := barrier.NewSense(n)
			hs := make([]interface{ Wait() }, n)
			for i := range hs {
				hs[i] = b.Handle()
			}
			return hs
		}},
		{label: "Tree", mk: func(n int) []interface{ Wait() } {
			b := barrier.NewTree(n)
			hs := make([]interface{ Wait() }, n)
			for i := range hs {
				hs[i] = b.Handle()
			}
			return hs
		}},
		{label: "Dissemination", mk: func(n int) []interface{ Wait() } {
			b := barrier.NewDissemination(n)
			hs := make([]interface{ Wait() }, n)
			for i := range hs {
				hs[i] = b.Handle()
			}
			return hs
		}},
	}
	for _, im := range impls {
		var s Series
		s.Label = im.label
		for _, th := range cfg.threads() {
			hs := im.mk(th)
			res := Run(th, episodes, func(w int) func(int) {
				h := hs[w]
				return func(int) { h.Wait() }
			})
			s.Points = append(s.Points, Point{X: th, Mops: res.Throughput()})
		}
		fig.Series = append(fig.Series, s)
	}
	return []Figure{fig}
}

// --- F11: STM ---------------------------------------------------------------

func runF11(cfg Config) []Figure {
	ops := cfg.ops(100000)
	var figs []Figure
	for _, accounts := range []int{64, 1 << 16} {
		fig := Figure{
			ID:     "F11",
			Family: "stm",
			Title:  fmt.Sprintf("bank transfers/s, %d accounts", accounts),
			XLabel: "threads",
		}

		// STM variant.
		var stmSeries Series
		stmSeries.Label = "STM"
		for _, th := range cfg.threads() {
			vars := make([]*stm.TVar[int], accounts)
			for i := range vars {
				vars[i] = stm.NewTVar(1000)
			}
			res := Run(th, ops/th+1, func(w int) func(int) {
				rng := xrand.New(uint64(w) + 23)
				return func(int) {
					from, to := rng.Intn(accounts), rng.Intn(accounts)
					if from == to {
						to = (to + 1) % accounts
					}
					stm.Atomically(func(tx *stm.Txn) {
						f := vars[from].Read(tx)
						vars[from].Write(tx, f-1)
						vars[to].Write(tx, vars[to].Read(tx)+1)
					})
				}
			})
			stmSeries.Points = append(stmSeries.Points, Point{X: th, Mops: res.Throughput()})
		}
		fig.Series = append(fig.Series, stmSeries)

		// Global lock baseline.
		var lockSeries Series
		lockSeries.Label = "GlobalLock"
		for _, th := range cfg.threads() {
			balances := make([]int, accounts)
			var mu sync.Mutex
			res := Run(th, ops/th+1, func(w int) func(int) {
				rng := xrand.New(uint64(w) + 23)
				return func(int) {
					from, to := rng.Intn(accounts), rng.Intn(accounts)
					if from == to {
						to = (to + 1) % accounts
					}
					mu.Lock()
					balances[from]--
					balances[to]++
					mu.Unlock()
				}
			})
			lockSeries.Points = append(lockSeries.Points, Point{X: th, Mops: res.Throughput()})
		}
		fig.Series = append(fig.Series, lockSeries)
		figs = append(figs, fig)
	}
	return figs
}

// --- F12: reclamation ---------------------------------------------------------

// reclaimVariants is the scheme sweep F12 and the reclaim-structs
// scenarios measure on every lock-free structure: the zero-cost GC
// default, real EBR, real HP, and EBR with node recycling ("Recycled").
// A nil dom means the structure's default GC path.
type reclaimVariant struct {
	label   string
	dom     func() reclaim.Domain
	recycle bool
}

func reclaimVariantSweep() []reclaimVariant {
	return []reclaimVariant{
		{label: "GC"},
		{label: "EBR", dom: func() reclaim.Domain { return reclaim.NewEBR() }},
		{label: "HP", dom: func() reclaim.Domain { return reclaim.NewHP() }},
		{label: "Recycled", dom: func() reclaim.Domain { return reclaim.NewEBR() }, recycle: true},
	}
}

// reclaimGauges snapshots the domain's end-of-run pending-garbage and
// reclaimed counters (zero for the GC variant, which defers nothing).
func reclaimGauges(dom reclaim.Domain) map[string]float64 {
	g := map[string]float64{"pending_garbage": 0, "reclaimed": 0}
	if dom != nil {
		g["pending_garbage"] = float64(dom.Pending())
		g["reclaimed"] = float64(dom.Reclaimed())
	}
	return g
}

// runF12Records measures every lock-free structure under the reclamation
// variant sweep on a delete-heavy churn mix — the regime where unlink and
// retire traffic dominates — reporting throughput, latency percentiles,
// and the pending-garbage gauges.
func runF12Records(cfg Config) []Record {
	ops := cfg.ops(100000)
	var recs []Record
	for _, v := range reclaimVariantSweep() {
		for _, th := range cfg.threads() {
			recs = append(recs, f12Stack(v, th, ops))
			recs = append(recs, f12Queue(v, th, ops))
			recs = append(recs, f12List(v, th, ops))
			recs = append(recs, f12Map(v, th, ops))
			if !v.recycle { // the skip list has no recycling mode
				recs = append(recs, f12Skiplist(v, th, ops))
			}
		}
	}
	return recs
}

func runF12(cfg Config) []Figure {
	return scenarioFigures("reclaim", runF12Records(cfg))
}

func f12Stack(v reclaimVariant, th, ops int) Record {
	var dom reclaim.Domain
	var opts []stack.Option
	if v.dom != nil {
		dom = v.dom()
		opts = append(opts, stack.WithReclaim(dom))
		if v.recycle {
			opts = append(opts, stack.WithRecycling())
		}
	}
	st := stack.NewTreiber[int](opts...)
	for i := 0; i < 256; i++ {
		st.Push(i)
	}
	res := RunLatency(th, ops/th+1, func(w int) func(int) {
		mix := NewMixGen(uint64(w)*7919+1, 50, 50)
		return func(i int) {
			if mix.Next() == 0 {
				st.Push(i)
			} else {
				st.TryPop()
			}
		}
	})
	res.Gauges = reclaimGauges(dom)
	return res.Record("reclaim", "Treiber/"+v.label, "F12: stack churn 50/50")
}

func f12Queue(v reclaimVariant, th, ops int) Record {
	var dom reclaim.Domain
	var opts []queue.Option
	if v.dom != nil {
		dom = v.dom()
		opts = append(opts, queue.WithReclaim(dom))
		if v.recycle {
			opts = append(opts, queue.WithRecycling())
		}
	}
	q := queue.NewMS[int](opts...)
	for i := 0; i < 256; i++ {
		q.Enqueue(i)
	}
	res := RunLatency(th, ops/th+1, func(w int) func(int) {
		mix := NewMixGen(uint64(w)*7919+3, 50, 50)
		return func(i int) {
			if mix.Next() == 0 {
				q.Enqueue(i)
			} else {
				q.TryDequeue()
			}
		}
	})
	res.Gauges = reclaimGauges(dom)
	return res.Record("reclaim", "MS/"+v.label, "F12: queue churn 50/50")
}

// reclaimListChurn measures one Harris cell on the shared 40/40/20
// add/remove/contains churn mix; both F12 and the S14 list scenario run
// exactly this cell (different key ranges and op budgets), so a change to
// the workload cannot diverge the two reports.
func reclaimListChurn(v reclaimVariant, th, ops, keyRange int) Result {
	var dom reclaim.Domain
	var opts []list.Option
	if v.dom != nil {
		dom = v.dom()
		opts = append(opts, list.WithReclaim(dom))
		if v.recycle {
			opts = append(opts, list.WithRecycling())
		}
	}
	s := list.NewHarris[int](opts...)
	pre := xrand.New(99)
	for i := 0; i < keyRange/2; i++ {
		s.Add(pre.Intn(keyRange))
	}
	res := RunLatency(th, ops/th+1, func(w int) func(int) {
		mix := NewMixGen(uint64(w)*31+7, 40, 40, 20)
		rng := xrand.New(uint64(w)*2654435761 + 1)
		return func(int) {
			k := rng.Intn(keyRange)
			switch mix.Next() {
			case 0:
				s.Add(k)
			case 1:
				s.Remove(k)
			default:
				s.Contains(k)
			}
		}
	})
	res.Gauges = reclaimGauges(dom)
	return res
}

// reclaimMapChurn is the split-ordered counterpart of reclaimListChurn
// (40/40/20 store/delete/load), likewise shared by F12 and S14.
func reclaimMapChurn(v reclaimVariant, th, ops, keyRange int) Result {
	var dom reclaim.Domain
	var opts []cmap.Option
	if v.dom != nil {
		dom = v.dom()
		opts = append(opts, cmap.WithReclaim(dom))
		if v.recycle {
			opts = append(opts, cmap.WithRecycling())
		}
	}
	m := cmap.NewSplitOrdered[int, int](opts...)
	pre := xrand.New(7)
	for i := 0; i < keyRange/2; i++ {
		m.Store(pre.Intn(keyRange), i)
	}
	res := RunLatency(th, ops/th+1, func(w int) func(int) {
		mix := NewMixGen(uint64(w)*912367+5, 40, 40, 20)
		rng := xrand.New(uint64(w)*104729 + 13)
		return func(int) {
			k := rng.Intn(keyRange)
			switch mix.Next() {
			case 0:
				m.Store(k, 42)
			case 1:
				m.Delete(k)
			default:
				m.Load(k)
			}
		}
	})
	res.Gauges = reclaimGauges(dom)
	return res
}

func f12List(v reclaimVariant, th, ops int) Record {
	return reclaimListChurn(v, th, ops, 512).
		Record("reclaim", "Harris/"+v.label, "F12: list delete-heavy 40/40/20")
}

func f12Map(v reclaimVariant, th, ops int) Record {
	return reclaimMapChurn(v, th, ops, 1<<12).
		Record("reclaim", "SplitOrdered/"+v.label, "F12: map delete-heavy 40/40/20")
}

func f12Skiplist(v reclaimVariant, th, ops int) Record {
	const keyRange = 1 << 12
	var dom reclaim.Domain
	var opts []skiplist.Option
	if v.dom != nil {
		dom = v.dom()
		opts = append(opts, skiplist.WithReclaim(dom))
	}
	s := skiplist.NewLockFree[int](opts...)
	pre := xrand.New(3)
	for i := 0; i < keyRange/2; i++ {
		s.Add(pre.Intn(keyRange))
	}
	res := RunLatency(th, ops/th+1, func(w int) func(int) {
		mix := NewMixGen(uint64(w)*13+17, 40, 40, 20)
		rng := xrand.New(uint64(w) + 17)
		return func(int) {
			k := rng.Intn(keyRange)
			switch mix.Next() {
			case 0:
				s.Add(k)
			case 1:
				s.Remove(k)
			default:
				s.Contains(k)
			}
		}
	})
	res.Gauges = reclaimGauges(dom)
	return res.Record("reclaim", "LockFree/"+v.label, "F12: skiplist delete-heavy 40/40/20")
}

// --- T1: single-thread overview ------------------------------------------------

func runT1(cfg Config) []Figure {
	ops := cfg.ops(1000000)
	fig := Figure{ID: "T1", Title: "single-thread throughput (Mops/s)", Family: "overview", XLabel: "thread"}
	// Each row is a different structure family, so the series carry their
	// own family labels into the Report.
	families := map[string]string{"stack": "stack", "queue": "queue", "cmap": "cmap", "skip": "skiplist"}
	add := func(label string, op func(i int)) {
		res := Run(1, ops, func(int) func(int) { return op })
		fam := families[strings.SplitN(label, ".", 2)[0]]
		fig.Series = append(fig.Series, Series{Label: label, Family: fam, Points: []Point{{X: 1, Mops: res.Throughput()}}})
	}

	ms := stack.NewMutex[int]()
	add("stack.Mutex", func(i int) {
		ms.Push(i)
		ms.TryPop()
	})
	ts := stack.NewTreiber[int]()
	add("stack.Treiber", func(i int) {
		ts.Push(i)
		ts.TryPop()
	})
	mq := queue.NewMutex[int]()
	add("queue.Mutex", func(i int) {
		mq.Enqueue(i)
		mq.TryDequeue()
	})
	msq := queue.NewMS[int]()
	add("queue.MS", func(i int) {
		msq.Enqueue(i)
		msq.TryDequeue()
	})
	ring := queue.NewSPSC[int](1024)
	add("queue.SPSC", func(i int) {
		ring.TryEnqueue(i)
		ring.TryDequeue()
	})
	lm := cmap.NewLocked[int, int]()
	add("cmap.Locked", func(i int) { lm.Store(i&1023, i); lm.Load(i & 1023) })
	sm := cmap.NewStriped[int, int](64)
	add("cmap.Striped", func(i int) { sm.Store(i&1023, i); sm.Load(i & 1023) })
	som := cmap.NewSplitOrdered[int, int]()
	add("cmap.SplitOrd", func(i int) { som.Store(i&1023, i); som.Load(i & 1023) })
	lsl := skiplist.NewLazy[int]()
	add("skip.Lazy", func(i int) { lsl.Add(i & 4095); lsl.Contains(i & 4095) })
	fsl := skiplist.NewLockFree[int]()
	add("skip.LockFree", func(i int) { fsl.Add(i & 4095); fsl.Contains(i & 4095) })
	return []Figure{fig}
}

// --- T2: skew sensitivity --------------------------------------------------------

func runT2(cfg Config) []Figure {
	ops := cfg.ops(200000)
	th := runtime.GOMAXPROCS(0)
	const keyRange = 1 << 16
	fig := Figure{
		ID:     "T2",
		Family: "cmap",
		Title:  fmt.Sprintf("map throughput at %d threads vs. Zipf skew (X = θ×100), 50%% reads", th),
		XLabel: "theta*100",
	}
	for _, im := range mapImpls() {
		var s Series
		s.Label = im.label
		for _, theta := range []float64{0, 0.5, 0.9, 1.1} {
			m := im.mk()
			pre := xrand.New(7)
			for i := 0; i < keyRange/2; i++ {
				m.Store(pre.Intn(keyRange), i)
			}
			res := Run(th, ops/th+1, mapMixOp(m, keyRange, theta, 50))
			s.Points = append(s.Points, Point{X: int(theta * 100), Mops: res.Throughput()})
		}
		fig.Series = append(fig.Series, s)
	}
	return []Figure{fig}
}

// --- T3: elimination hit rate ------------------------------------------------------

func runT3(cfg Config) []Figure {
	ops := cfg.ops(200000)
	fig := Figure{
		ID:     "T3",
		Family: "stack",
		Title:  "elimination-backoff stack: hits per 100 elimination visits",
		XLabel: "threads",
	}
	var s Series
	s.Label = "hit-rate%"
	s.Unit = UnitPercent
	for _, th := range cfg.threads() {
		st := stack.NewElimination[int](0, 0)
		st.EnableStats(true)
		Run(th, ops/th+1, func(w int) func(int) {
			rng := xrand.New(uint64(w) + 41)
			return func(int) {
				if rng.Uint64()&1 == 0 {
					st.Push(1)
				} else {
					st.TryPop()
				}
			}
		})
		hits, misses := st.Stats()
		rate := 0.0
		if hits+misses > 0 {
			rate = 100 * float64(hits) / float64(hits+misses)
		}
		s.Points = append(s.Points, Point{X: th, Mops: rate})
	}
	fig.Series = append(fig.Series, s)
	return []Figure{fig}
}
