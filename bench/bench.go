// Package bench is the measurement harness behind the experiment suite in
// DESIGN.md: deterministic workload generation (uniform and Zipfian key
// streams), a worker runner with a synchronised start line, and text
// rendering of throughput series in the shape the survey figures use
// (throughput vs. thread count, one series per algorithm).
//
// Use cmd/cdsbench to regenerate every figure/table, or the testing.B
// benches in the repository root for quick single-configuration runs.
package bench

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"github.com/cds-suite/cds/internal/xrand"
	"github.com/cds-suite/cds/internal/zipf"
)

// Result is one measured configuration.
type Result struct {
	// Workers is the number of concurrent workers.
	Workers int
	// Ops is the total operations completed.
	Ops int64
	// Elapsed is the wall-clock duration of the measured region.
	Elapsed time.Duration
}

// Throughput returns million operations per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds() / 1e6
}

// NsPerOp returns nanoseconds per operation.
func (r Result) NsPerOp() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.Elapsed.Nanoseconds()) / float64(r.Ops)
}

// Run executes a workload: workers goroutines each perform opsPerWorker
// calls of the closure returned by mkOp. mkOp runs before the clock starts
// (setup excluded from timing), and all workers start together.
func Run(workers, opsPerWorker int, mkOp func(w int) func(i int)) Result {
	ops := make([]func(i int), workers)
	for w := 0; w < workers; w++ {
		ops[w] = mkOp(w)
	}

	start := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(op func(int)) {
			defer wg.Done()
			<-start
			for i := 0; i < opsPerWorker; i++ {
				op(i)
			}
		}(ops[w])
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	return Result{
		Workers: workers,
		Ops:     int64(workers) * int64(opsPerWorker),
		Elapsed: time.Since(t0),
	}
}

// KeyStream produces a deterministic stream of keys in [0, n) for one
// worker, either uniform or Zipfian.
type KeyStream struct {
	uni *xrand.Rand
	zip *zipf.Generator
	n   uint64
}

// NewKeyStream returns a stream over [0, n). theta == 0 selects uniform;
// otherwise Zipfian with the given skew.
func NewKeyStream(n uint64, theta float64, seed uint64) (*KeyStream, error) {
	if theta == 0 {
		return &KeyStream{uni: xrand.New(seed), n: n}, nil
	}
	g, err := zipf.New(n, theta, seed)
	if err != nil {
		return nil, fmt.Errorf("bench: key stream: %w", err)
	}
	return &KeyStream{zip: g, n: n}, nil
}

// Next returns the next key.
func (s *KeyStream) Next() uint64 {
	if s.zip != nil {
		return s.zip.Next()
	}
	return s.uni.Uint64n(s.n)
}

// Point is one (threads, throughput) sample of a series.
type Point struct {
	// X is the sweep parameter (usually thread count).
	X int
	// Mops is throughput in million ops/sec.
	Mops float64
}

// Series is one labelled curve of an experiment figure.
type Series struct {
	// Label names the algorithm/configuration.
	Label string
	// Points are the samples in sweep order.
	Points []Point
}

// Figure is a rendered experiment: several series over a shared sweep.
type Figure struct {
	// ID is the experiment identifier from DESIGN.md (e.g. "F1").
	ID string
	// Title describes the figure.
	Title string
	// XLabel names the sweep parameter.
	XLabel string
	// Series are the curves.
	Series []Series
}

// Render writes the figure as an aligned text table: one row per X value,
// one column per series — directly comparable with the survey's plots.
func (f Figure) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title); err != nil {
		return err
	}
	// Collect the union of X values.
	xs := map[int]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]int, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Ints(sorted)

	if _, err := fmt.Fprintf(w, "%-10s", f.XLabel); err != nil {
		return err
	}
	for _, s := range f.Series {
		if _, err := fmt.Fprintf(w, " %14s", s.Label); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, x := range sorted {
		if _, err := fmt.Fprintf(w, "%-10d", x); err != nil {
			return err
		}
		for _, s := range f.Series {
			val := "-"
			for _, p := range s.Points {
				if p.X == x {
					val = fmt.Sprintf("%.3f", p.Mops)
					break
				}
			}
			if _, err := fmt.Fprintf(w, " %14s", val); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// DefaultThreadSweep returns the standard 1..max thread ladder used by all
// scalability figures: 1, 2, 4, ... up to max (always including max).
func DefaultThreadSweep(max int) []int {
	var sweep []int
	for t := 1; t < max; t *= 2 {
		sweep = append(sweep, t)
	}
	return append(sweep, max)
}
