package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"github.com/cds-suite/cds/internal/xrand"
	"github.com/cds-suite/cds/internal/zipf"
)

// Result is one measured configuration.
type Result struct {
	// Workers is the number of concurrent workers.
	Workers int
	// Ops is the total operations completed.
	Ops int64
	// Elapsed is the wall-clock duration of the measured region.
	Elapsed time.Duration
	// Latency holds per-operation latency samples when the configuration
	// was measured with RunLatency; nil for plain Run.
	Latency *Histogram
	// Gauges carries end-of-run structure gauges (e.g. the reclamation
	// cells' pending_garbage and reclaimed counts); nil when the cell has
	// none.
	Gauges map[string]float64
}

// Throughput returns million operations per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds() / 1e6
}

// NsPerOp returns nanoseconds per operation.
func (r Result) NsPerOp() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.Elapsed.Nanoseconds()) / float64(r.Ops)
}

// Record converts the result into the labelled form a Report carries,
// folding in latency percentiles when the result sampled them.
func (r Result) Record(family, algo, scenario string) Record {
	rec := Record{
		Family:    family,
		Algo:      algo,
		Scenario:  scenario,
		Threads:   r.Workers,
		Ops:       r.Ops,
		ElapsedNs: r.Elapsed.Nanoseconds(),
		Value:     r.Throughput(),
		Unit:      UnitMops,
		NsPerOp:   r.NsPerOp(),
	}
	if r.Latency != nil && r.Latency.Count() > 0 {
		s := r.Latency.Summary()
		rec.P50Ns = s.P50
		rec.P90Ns = s.P90
		rec.P99Ns = s.P99
		rec.P999Ns = s.P999
		rec.Samples = s.Samples
	}
	if len(r.Gauges) > 0 {
		rec.Gauges = r.Gauges
	}
	return rec
}

// Units a Record's headline Value can carry. Throughput cells use
// UnitMops; derived metrics (e.g. the elimination hit-rate tables) label
// themselves so consumers never mistake a percentage for a throughput.
const (
	UnitMops    = "mops"
	UnitPercent = "percent"
)

// Record is one measured cell of a Report: a (family, algorithm, scenario,
// threads) coordinate with its throughput and, when sampled, latency
// percentiles. See the package documentation for the JSON schema.
type Record struct {
	Family    string  `json:"family"`
	Algo      string  `json:"algo"`
	Scenario  string  `json:"scenario"`
	Threads   int     `json:"threads"`
	Ops       int64   `json:"ops,omitempty"`
	ElapsedNs int64   `json:"elapsed_ns,omitempty"`
	Value     float64 `json:"value"`
	Unit      string  `json:"unit"`
	NsPerOp   float64 `json:"ns_per_op,omitempty"`
	P50Ns     int64   `json:"p50_ns,omitempty"`
	P90Ns     int64   `json:"p90_ns,omitempty"`
	P99Ns     int64   `json:"p99_ns,omitempty"`
	P999Ns    int64   `json:"p999_ns,omitempty"`
	Samples   uint64  `json:"samples,omitempty"`
	// Gauges carries end-of-run structure gauges keyed by name. The
	// reclamation cells (F12, the reclaim-structs scenarios) report
	// pending_garbage and reclaimed here; absent on other records.
	Gauges map[string]float64 `json:"gauges,omitempty"`
}

// Meta describes the environment a Report was produced in, so that two
// BENCH_*.json files are only ever compared with their context attached.
type Meta struct {
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	GitRevision string `json:"git_revision"`
	Quick       bool   `json:"quick"`
	UnixTime    int64  `json:"unix_time"`
}

// Report is the machine-readable output of a benchmark run: environment
// metadata plus every measured record. It is the unit cmd/cdsbench
// serializes and future revisions diff against checked-in baselines.
type Report struct {
	Schema string `json:"schema"`
	Meta   Meta   `json:"meta"`
	// Summary frames the records in terms of the hardware that produced
	// them — num_cpu leads, because it decides whether thread sweeps
	// measure parallel speedup or time-slicing. See RunSummary.
	Summary string   `json:"summary,omitempty"`
	Records []Record `json:"records"`
}

// ReportSchema identifies the current JSON layout.
const ReportSchema = "cds-bench/v1"

// NewMeta captures the current environment. The git revision comes from
// the binary's embedded VCS build info when present ("unknown" otherwise —
// callers with better context, like cmd/cdsbench, may overwrite it).
func NewMeta(quick bool) Meta {
	return Meta{
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		GitRevision: vcsRevision(),
		Quick:       quick,
		UnixTime:    time.Now().Unix(),
	}
}

// RunSummary renders the context a reader needs before comparing any two
// records. num_cpu comes first: worker counts beyond it time-share cores,
// so throughput ratios between algorithms compress or invert relative to
// genuinely parallel hardware. The segmented-queue family (S18/A5) is the
// worked example — its headline claim is only legible on real cores, and
// below that the per-record gauges carry the evidence instead.
func RunSummary(m Meta) string {
	return fmt.Sprintf(
		"num_cpu=%d gomaxprocs=%d — thread counts beyond num_cpu measure "+
			"time-slicing, not parallel speedup. Segmented-queue bar (S18/A5): "+
			"on >=4 real cores queue.LCRQ is expected to beat queue.MS by >=3x "+
			"at 4 threads; on fewer cores that ratio is not observable and the "+
			"S18 gauges carry the evidence instead — enq_slowpath and "+
			"deq_abandoned staying small relative to enqueues/dequeues shows "+
			"the single-FAA fast path dominating. Combining-backend sweep "+
			"(S13): CC-Synch/DSM-Synch are expected to overtake flat "+
			"combining only when real cores keep many waiters pending; below "+
			"that, compare the avg_batch and handoffs gauges across the "+
			"FlatCombining/CC-Synch/DSM-Synch rows of one cell — growing "+
			"batches are the signature of delegation working.",
		m.NumCPU, m.GOMAXPROCS)
}

func vcsRevision() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				return s.Value
			}
		}
	}
	return "unknown"
}

// WriteJSON serializes the report, indented for reviewable diffs.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("bench: encode report: %w", err)
	}
	return nil
}

// Run executes a workload: workers goroutines each perform opsPerWorker
// calls of the closure returned by mkOp. mkOp runs before the clock starts
// (setup excluded from timing), and all workers start together.
func Run(workers, opsPerWorker int, mkOp func(w int) func(i int)) Result {
	ops := make([]func(i int), workers)
	for w := 0; w < workers; w++ {
		ops[w] = mkOp(w)
	}

	start := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(op func(int)) {
			defer wg.Done()
			<-start
			for i := 0; i < opsPerWorker; i++ {
				op(i)
			}
		}(ops[w])
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	return Result{
		Workers: workers,
		Ops:     int64(workers) * int64(opsPerWorker),
		Elapsed: time.Since(t0),
	}
}

// KeyStream produces a deterministic stream of keys in [0, n) for one
// worker, either uniform or Zipfian.
type KeyStream struct {
	uni *xrand.Rand
	zip *zipf.Generator
	n   uint64
}

// NewKeyStream returns a stream over [0, n). theta == 0 selects uniform;
// otherwise Zipfian with the given skew.
func NewKeyStream(n uint64, theta float64, seed uint64) (*KeyStream, error) {
	if theta == 0 {
		return &KeyStream{uni: xrand.New(seed), n: n}, nil
	}
	g, err := zipf.New(n, theta, seed)
	if err != nil {
		return nil, fmt.Errorf("bench: key stream: %w", err)
	}
	return &KeyStream{zip: g, n: n}, nil
}

// Next returns the next key.
func (s *KeyStream) Next() uint64 {
	if s.zip != nil {
		return s.zip.Next()
	}
	return s.uni.Uint64n(s.n)
}

// Point is one (threads, throughput) sample of a series.
type Point struct {
	// X is the sweep parameter (usually thread count).
	X int
	// Mops is throughput in million ops/sec.
	Mops float64
}

// Series is one labelled curve of an experiment figure.
type Series struct {
	// Label names the algorithm/configuration.
	Label string
	// Unit names what the Mops column actually carries; empty means
	// UnitMops. A few tables reuse the column for derived metrics (hit
	// rates), and the unit keeps their Report records honest.
	Unit string
	// Family overrides the figure's family for this series' records.
	// Cross-family tables (the T1 overview) use it so each row lands in
	// its own structure family in a Report.
	Family string
	// Points are the samples in sweep order.
	Points []Point
}

// Figure is a rendered experiment: several series over a shared sweep.
type Figure struct {
	// ID is the experiment identifier from DESIGN.md (e.g. "F1").
	ID string
	// Title describes the figure.
	Title string
	// Family is the structure family the figure measures ("queue",
	// "locks", ...); it labels the records derived from the figure.
	Family string
	// XLabel names the sweep parameter.
	XLabel string
	// Series are the curves.
	Series []Series
}

// Records flattens the figure into Report records: one per (series,
// point), labelled with the figure's family and title. Figure records
// carry no latency percentiles — only scenario cells, measured with
// RunLatency, have them.
func (f Figure) Records() []Record {
	var recs []Record
	for _, s := range f.Series {
		unit := s.Unit
		if unit == "" {
			unit = UnitMops
		}
		family := s.Family
		if family == "" {
			family = f.Family
		}
		for _, p := range s.Points {
			recs = append(recs, Record{
				Family:   family,
				Algo:     s.Label,
				Scenario: f.ID + ": " + f.Title,
				Threads:  p.X,
				Value:    p.Mops,
				Unit:     unit,
			})
		}
	}
	return recs
}

// Render writes the figure as an aligned text table: one row per X value,
// one column per series — directly comparable with the survey's plots.
func (f Figure) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title); err != nil {
		return err
	}
	// Collect the union of X values.
	xs := map[int]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]int, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Ints(sorted)

	if _, err := fmt.Fprintf(w, "%-10s", f.XLabel); err != nil {
		return err
	}
	for _, s := range f.Series {
		if _, err := fmt.Fprintf(w, " %14s", s.Label); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, x := range sorted {
		if _, err := fmt.Fprintf(w, "%-10d", x); err != nil {
			return err
		}
		for _, s := range f.Series {
			val := "-"
			for _, p := range s.Points {
				if p.X == x {
					val = fmt.Sprintf("%.3f", p.Mops)
					break
				}
			}
			if _, err := fmt.Fprintf(w, " %14s", val); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// DefaultThreadSweep returns the standard 1..max thread ladder used by all
// scalability figures: 1, 2, 4, ... up to max (always including max).
func DefaultThreadSweep(max int) []int {
	var sweep []int
	for t := 1; t < max; t *= 2 {
		sweep = append(sweep, t)
	}
	return append(sweep, max)
}
