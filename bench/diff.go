package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Report diffing: the tooling that turns two BENCH_*.json trajectory
// points into a reviewable statement about what got faster, slower, or
// disappeared. cmd/benchdiff is the CLI; CI uses the regression flags to
// gate on the noise threshold.

// CellKey identifies one measured cell across reports: the
// (experiment/family, scenario, algorithm, threads) coordinate every
// Record carries.
type CellKey struct {
	Family   string
	Scenario string
	Algo     string
	Threads  int
}

func (k CellKey) String() string {
	return fmt.Sprintf("%s | %s | %s | t=%d", k.Family, k.Scenario, k.Algo, k.Threads)
}

// CellDiff compares one cell present in both reports.
type CellDiff struct {
	Key CellKey
	// OldValue/NewValue are the records' headline values (throughput for
	// mops cells); ValueDelta is the fractional change (new-old)/old,
	// positive when the new report is higher.
	OldValue, NewValue float64
	ValueDelta         float64
	// Unit is the cells' shared unit ("" when the two records disagree,
	// in which case no value comparison was made).
	Unit string
	// P99 comparison, only when both records sampled latency.
	HasP99         bool
	OldP99, NewP99 int64
	P99Delta       float64
	// ValueRegression marks a headline-value drop beyond the noise
	// threshold; P99Regression marks a p99 rise beyond it. Higher is
	// better for both supported units (mops, percent), lower for p99.
	ValueRegression bool
	P99Regression   bool
}

// Regressed reports whether the cell regressed on either axis.
func (c CellDiff) Regressed() bool { return c.ValueRegression || c.P99Regression }

// Diff is the join of two reports.
type Diff struct {
	// Noise is the fractional threshold the regression flags used.
	Noise float64
	// Cells holds every key present in both reports, in the new report's
	// record order.
	Cells []CellDiff
	// OnlyOld and OnlyNew list cells that exist in one report only
	// (dropped and added coverage, respectively), sorted by key.
	OnlyOld, OnlyNew []CellKey
}

// Regressions returns the cells that regressed beyond the noise threshold.
func (d Diff) Regressions() []CellDiff {
	var out []CellDiff
	for _, c := range d.Cells {
		if c.Regressed() {
			out = append(out, c)
		}
	}
	return out
}

// DiffReports joins two reports by cell key and flags regressions beyond
// the fractional noise threshold (0.10 = 10%). Quick-mode runs are noisy;
// the threshold exists so CI only fails on drops that outrun it.
func DiffReports(oldR, newR Report, noise float64) Diff {
	d := Diff{Noise: noise}
	oldByKey := make(map[CellKey]Record, len(oldR.Records))
	for _, r := range oldR.Records {
		oldByKey[recordKey(r)] = r
	}
	newKeys := make(map[CellKey]bool, len(newR.Records))
	for _, nr := range newR.Records {
		k := recordKey(nr)
		newKeys[k] = true
		or, ok := oldByKey[k]
		if !ok {
			d.OnlyNew = append(d.OnlyNew, k)
			continue
		}
		d.Cells = append(d.Cells, diffCell(k, or, nr, noise))
	}
	for _, or := range oldR.Records {
		if k := recordKey(or); !newKeys[k] {
			d.OnlyOld = append(d.OnlyOld, k)
		}
	}
	sortKeys(d.OnlyOld)
	sortKeys(d.OnlyNew)
	return d
}

func recordKey(r Record) CellKey {
	return CellKey{Family: r.Family, Scenario: r.Scenario, Algo: r.Algo, Threads: r.Threads}
}

func diffCell(k CellKey, or, nr Record, noise float64) CellDiff {
	c := CellDiff{Key: k, OldValue: or.Value, NewValue: nr.Value}
	if or.Unit == nr.Unit {
		c.Unit = or.Unit
		if or.Value > 0 {
			c.ValueDelta = (nr.Value - or.Value) / or.Value
			c.ValueRegression = -c.ValueDelta > noise
		}
	}
	if or.Samples > 0 && nr.Samples > 0 && or.P99Ns > 0 {
		c.HasP99 = true
		c.OldP99, c.NewP99 = or.P99Ns, nr.P99Ns
		c.P99Delta = float64(nr.P99Ns-or.P99Ns) / float64(or.P99Ns)
		c.P99Regression = c.P99Delta > noise
	}
	return c
}

func sortKeys(keys []CellKey) {
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
}

// LoadReport reads a cds-bench/v1 JSON report from disk, verifying the
// schema so two incompatible layouts are never silently joined.
func LoadReport(path string) (Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return Report{}, fmt.Errorf("bench: load report: %w", err)
	}
	defer f.Close()
	return ReadReport(f)
}

// ReadReport decodes a report and verifies its schema.
func ReadReport(r io.Reader) (Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return Report{}, fmt.Errorf("bench: decode report: %w", err)
	}
	if rep.Schema != ReportSchema {
		return Report{}, fmt.Errorf("bench: report schema %q, want %q", rep.Schema, ReportSchema)
	}
	return rep, nil
}

// Render writes the diff as an aligned table: one row per joined cell,
// with fractional deltas as percentages and regressions flagged in the
// last column. Cells whose delta stays within the noise threshold on both
// axes are summarised unless verbose is set.
func (d Diff) Render(w io.Writer, verbose bool) error {
	quiet := 0
	if _, err := fmt.Fprintf(w, "%-66s %12s %12s %8s %9s %s\n",
		"cell (family | scenario | algo | threads)", "old", "new", "Δvalue", "Δp99", "flag"); err != nil {
		return err
	}
	for _, c := range d.Cells {
		interesting := c.Regressed() ||
			c.ValueDelta > d.Noise || (c.HasP99 && -c.P99Delta > d.Noise)
		if !verbose && !interesting {
			quiet++
			continue
		}
		p99 := "-"
		if c.HasP99 {
			p99 = fmt.Sprintf("%+.1f%%", 100*c.P99Delta)
		}
		flag := ""
		switch {
		case c.ValueRegression && c.P99Regression:
			flag = "REGRESSION(value,p99)"
		case c.ValueRegression:
			flag = "REGRESSION(value)"
		case c.P99Regression:
			flag = "REGRESSION(p99)"
		case interesting:
			flag = "improved"
		}
		if _, err := fmt.Fprintf(w, "%-66s %12.4f %12.4f %+7.1f%% %9s %s\n",
			c.Key.String(), c.OldValue, c.NewValue, 100*c.ValueDelta, p99, flag); err != nil {
			return err
		}
	}
	if quiet > 0 {
		if _, err := fmt.Fprintf(w, "(%d cells within ±%.0f%% noise suppressed; -v shows them)\n",
			quiet, 100*d.Noise); err != nil {
			return err
		}
	}
	for _, k := range d.OnlyOld {
		if _, err := fmt.Fprintf(w, "only in old report: %s\n", k); err != nil {
			return err
		}
	}
	for _, k := range d.OnlyNew {
		if _, err := fmt.Fprintf(w, "only in new report: %s\n", k); err != nil {
			return err
		}
	}
	return nil
}
