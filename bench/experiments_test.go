package bench

import (
	"strings"
	"testing"
)

// TestExperimentsSmoke runs every experiment at smoke size on a tiny
// sweep: the full figure-generation code path must produce well-formed,
// renderable figures with the expected series.
func TestExperimentsSmoke(t *testing.T) {
	cfg := Config{Quick: true, Threads: []int{1, 2}, Ops: 2000}
	for _, e := range Experiments() {
		t.Run(e.ID, func(t *testing.T) {
			figs := e.Run(cfg)
			if len(figs) == 0 {
				t.Fatalf("%s produced no figures", e.ID)
			}
			for _, fig := range figs {
				if fig.ID == "" || fig.Title == "" || fig.XLabel == "" {
					t.Fatalf("%s: incomplete figure metadata: %+v", e.ID, fig)
				}
				if len(fig.Series) == 0 {
					t.Fatalf("%s: figure %q has no series", e.ID, fig.Title)
				}
				for _, s := range fig.Series {
					if s.Label == "" {
						t.Fatalf("%s: unlabelled series", e.ID)
					}
					if len(s.Points) == 0 {
						t.Fatalf("%s: series %q has no points", e.ID, s.Label)
					}
					for _, p := range s.Points {
						if p.Mops < 0 {
							t.Fatalf("%s/%s: negative throughput %v", e.ID, s.Label, p.Mops)
						}
					}
				}
				var sb strings.Builder
				if err := fig.Render(&sb); err != nil {
					t.Fatalf("%s: render: %v", e.ID, err)
				}
				if !strings.Contains(sb.String(), fig.ID) {
					t.Fatalf("%s: render output missing figure ID:\n%s", e.ID, sb.String())
				}
			}
		})
	}
}

func TestFind(t *testing.T) {
	if _, ok := Find("F1"); !ok {
		t.Fatal("F1 not found")
	}
	if _, ok := Find("A1"); !ok {
		t.Fatal("A1 not found")
	}
	if _, ok := Find("F99"); ok {
		t.Fatal("phantom experiment found")
	}
}

// TestAblationsSmoke runs the ablation sweeps at smoke size.
func TestAblationsSmoke(t *testing.T) {
	cfg := Config{Quick: true, Ops: 2000}
	for _, e := range Ablations() {
		t.Run(e.ID, func(t *testing.T) {
			figs := e.Run(cfg)
			if len(figs) == 0 {
				t.Fatalf("%s produced no figures", e.ID)
			}
			for _, fig := range figs {
				if len(fig.Series) == 0 {
					t.Fatalf("%s: no series", e.ID)
				}
				var sb strings.Builder
				if err := fig.Render(&sb); err != nil {
					t.Fatalf("%s: render: %v", e.ID, err)
				}
			}
		})
	}
}

func TestRunnerCountsOps(t *testing.T) {
	var n [4]int
	res := Run(4, 1000, func(w int) func(int) {
		return func(int) { n[w]++ }
	})
	if res.Ops != 4000 {
		t.Fatalf("Ops = %d, want 4000", res.Ops)
	}
	for w, c := range n {
		if c != 1000 {
			t.Fatalf("worker %d did %d ops, want 1000", w, c)
		}
	}
	if res.Throughput() <= 0 || res.NsPerOp() <= 0 {
		t.Fatalf("degenerate metrics: %+v", res)
	}
}

func TestKeyStream(t *testing.T) {
	u, err := NewKeyStream(100, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	z, err := NewKeyStream(100, 0.99, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if k := u.Next(); k >= 100 {
			t.Fatalf("uniform key %d out of range", k)
		}
		if k := z.Next(); k >= 100 {
			t.Fatalf("zipf key %d out of range", k)
		}
	}
	if _, err := NewKeyStream(10, 1.0, 1); err == nil {
		t.Fatal("theta=1 accepted")
	}
}

func TestDefaultThreadSweep(t *testing.T) {
	sweep := DefaultThreadSweep(24)
	want := []int{1, 2, 4, 8, 16, 24}
	if len(sweep) != len(want) {
		t.Fatalf("sweep = %v, want %v", sweep, want)
	}
	for i := range want {
		if sweep[i] != want[i] {
			t.Fatalf("sweep = %v, want %v", sweep, want)
		}
	}
	if got := DefaultThreadSweep(1); len(got) != 1 || got[0] != 1 {
		t.Fatalf("sweep(1) = %v", got)
	}
}

// TestF12PerStructureVariants: F12 must report every lock-free structure
// under the GC/EBR/HP/Recycled sweep with live gauges — the per-structure
// replacement for the old synthetic single-pointer microbench.
func TestF12PerStructureVariants(t *testing.T) {
	recs := runF12Records(Config{Quick: true, Threads: []int{1}, Ops: 1500})
	want := map[string]bool{}
	for _, structure := range []string{"Treiber", "MS", "Harris", "SplitOrdered"} {
		for _, v := range []string{"GC", "EBR", "HP", "Recycled"} {
			want[structure+"/"+v] = false
		}
	}
	for _, v := range []string{"GC", "EBR", "HP"} {
		want["LockFree/"+v] = false
	}
	for _, r := range recs {
		if r.Family != "reclaim" {
			t.Errorf("F12 record in family %q", r.Family)
		}
		if _, ok := want[r.Algo]; !ok {
			t.Errorf("unexpected F12 algo %q", r.Algo)
			continue
		}
		want[r.Algo] = true
		if r.Gauges == nil {
			t.Errorf("F12 %s missing gauges", r.Algo)
			continue
		}
		if _, ok := r.Gauges["pending_garbage"]; !ok {
			t.Errorf("F12 %s missing pending_garbage gauge", r.Algo)
		}
		if _, ok := r.Gauges["reclaimed"]; !ok {
			t.Errorf("F12 %s missing reclaimed gauge", r.Algo)
		}
	}
	for algo, seen := range want {
		if !seen {
			t.Errorf("F12 never measured %s", algo)
		}
	}
}
