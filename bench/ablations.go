package bench

import (
	"fmt"
	"runtime"

	"github.com/cds-suite/cds/cmap"
	"github.com/cds-suite/cds/counter"
	"github.com/cds-suite/cds/internal/xrand"
	"github.com/cds-suite/cds/stack"
)

// Ablations isolate the design parameters the experiment figures take as
// given: how wide should an elimination array be, how many stripes does a
// striped map need, how many shards a sharded counter. Each runs at full
// GOMAXPROCS and sweeps the parameter on the X axis.
func Ablations() []Experiment {
	return []Experiment{
		{ID: "A1", Title: "Ablation: elimination array width (X = width)", Run: runA1},
		{ID: "A2", Title: "Ablation: elimination spin budget (X = spins)", Run: runA2},
		{ID: "A3", Title: "Ablation: striped map stripe count (X = stripes)", Run: runA3},
		{ID: "A4", Title: "Ablation: sharded counter shard count (X = shards)", Run: runA4},
		{ID: "A5", Title: "Ablation: LCRQ segment size vs MS/MPMC baselines (X = segment size)", Run: runA5},
	}
}

// runA1 sweeps the elimination array width at fixed spins.
func runA1(cfg Config) []Figure {
	ops := cfg.ops(300000)
	th := runtime.GOMAXPROCS(0)
	fig := Figure{
		ID:     "A1",
		Family: "stack",
		Title:  fmt.Sprintf("elimination width sweep at %d threads, 50/50 push-pop", th),
		XLabel: "width",
	}
	var thr, hit Series
	thr.Label = "Mops"
	hit.Label = "hit-rate%"
	hit.Unit = UnitPercent
	for _, width := range []int{1, 2, 4, 8, 16, 32} {
		s := stack.NewElimination[int](width, 128)
		s.PinWidth(width) // sweep true fixed widths, not adaptive caps
		s.EnableStats(true)
		res := Run(th, ops/th+1, stackMixOp(s))
		hits, misses := s.Stats()
		rate := 0.0
		if hits+misses > 0 {
			rate = 100 * float64(hits) / float64(hits+misses)
		}
		thr.Points = append(thr.Points, Point{X: width, Mops: res.Throughput()})
		hit.Points = append(hit.Points, Point{X: width, Mops: rate})
	}
	fig.Series = []Series{thr, hit}
	return []Figure{fig}
}

// runA2 sweeps the per-visit spin budget at fixed width.
func runA2(cfg Config) []Figure {
	ops := cfg.ops(300000)
	th := runtime.GOMAXPROCS(0)
	fig := Figure{
		ID:     "A2",
		Family: "stack",
		Title:  fmt.Sprintf("elimination spin sweep at %d threads, width 8", th),
		XLabel: "spins",
	}
	var thr, hit Series
	thr.Label = "Mops"
	hit.Label = "hit-rate%"
	hit.Unit = UnitPercent
	for _, spins := range []int{16, 64, 256, 1024, 4096} {
		s := stack.NewElimination[int](8, spins)
		s.PinWidth(8) // hold width fixed while the spin budget sweeps
		s.EnableStats(true)
		res := Run(th, ops/th+1, stackMixOp(s))
		hits, misses := s.Stats()
		rate := 0.0
		if hits+misses > 0 {
			rate = 100 * float64(hits) / float64(hits+misses)
		}
		thr.Points = append(thr.Points, Point{X: spins, Mops: res.Throughput()})
		hit.Points = append(hit.Points, Point{X: spins, Mops: rate})
	}
	fig.Series = []Series{thr, hit}
	return []Figure{fig}
}

func stackMixOp(s *stack.Elimination[int]) func(w int) func(int) {
	return func(w int) func(int) {
		rng := xrand.New(uint64(w) + 1)
		return func(int) {
			if rng.Uint64()&1 == 0 {
				s.Push(7)
			} else {
				s.TryPop()
			}
		}
	}
}

// runA3 sweeps the stripe count of the striped map under a write-heavy
// uniform mix (stripe contention is what the parameter buys down).
func runA3(cfg Config) []Figure {
	ops := cfg.ops(200000)
	th := runtime.GOMAXPROCS(0)
	const keyRange = 1 << 16
	fig := Figure{
		ID:     "A3",
		Family: "cmap",
		Title:  fmt.Sprintf("striped map stripes sweep at %d threads, 50%% reads", th),
		XLabel: "stripes",
	}
	var s Series
	s.Label = "Striped"
	for _, stripes := range []int{1, 4, 16, 64, 256} {
		m := cmap.NewStriped[int, int](stripes)
		pre := xrand.New(7)
		for i := 0; i < keyRange/2; i++ {
			m.Store(pre.Intn(keyRange), i)
		}
		res := Run(th, ops/th+1, mapMixOp(m, keyRange, 0, 50))
		s.Points = append(s.Points, Point{X: stripes, Mops: res.Throughput()})
	}
	fig.Series = []Series{s}
	return []Figure{fig}
}

// runA4 sweeps the shard count of the sharded counter.
func runA4(cfg Config) []Figure {
	ops := cfg.ops(500000)
	th := runtime.GOMAXPROCS(0)
	fig := Figure{
		ID:     "A4",
		Family: "counter",
		Title:  fmt.Sprintf("sharded counter shards sweep at %d threads, inc-only", th),
		XLabel: "shards",
	}
	var s Series
	s.Label = "Sharded"
	for _, shards := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		c := counter.NewSharded(shards)
		res := Run(th, ops/th+1, func(w int) func(int) {
			h := c.Handle()
			return func(int) { h.Inc() }
		})
		s.Points = append(s.Points, Point{X: shards, Mops: res.Throughput()})
	}
	fig.Series = []Series{s}
	return []Figure{fig}
}
