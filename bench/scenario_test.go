package bench

import (
	"testing"
)

// TestMixGenExactCounts: every block of 100 draws carries exactly the
// configured proportions — the property that makes op mixes identical
// across algorithms.
func TestMixGenExactCounts(t *testing.T) {
	g := NewMixGen(42, 90, 5, 5)
	counts := map[int]int{}
	const blocks = 10
	for i := 0; i < blocks*mixBlock; i++ {
		counts[g.Next()]++
	}
	if counts[0] != 90*blocks || counts[1] != 5*blocks || counts[2] != 5*blocks {
		t.Fatalf("counts = %v, want exactly 900/50/50", counts)
	}
	// Per-block exactness, not just in aggregate.
	g = NewMixGen(7, 70, 30)
	for b := 0; b < 5; b++ {
		block := map[int]int{}
		for i := 0; i < mixBlock; i++ {
			block[g.Next()]++
		}
		if block[0] != 70 || block[1] != 30 {
			t.Fatalf("block %d counts = %v, want exactly 70/30", b, block)
		}
	}
}

// TestMixGenDeterministic: the same seed replays the same stream, and the
// stream is genuinely shuffled (not the sorted prototype block).
func TestMixGenDeterministic(t *testing.T) {
	a, b := NewMixGen(1, 50, 50), NewMixGen(1, 50, 50)
	var seqA []int
	sorted := true
	for i := 0; i < 200; i++ {
		x := a.Next()
		if x != b.Next() {
			t.Fatalf("same-seed generators diverged at draw %d", i)
		}
		seqA = append(seqA, x)
		if i > 0 && i < mixBlock && seqA[i] < seqA[i-1] {
			sorted = false
		}
	}
	if sorted {
		t.Fatal("first block came out in prototype order; shuffle is not running")
	}
	c := NewMixGen(2, 50, 50)
	diverged := false
	for i := 0; i < 200; i++ {
		if c.Next() != seqA[i] {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestMixGenRejectsBadPercentages(t *testing.T) {
	for _, pcts := range [][]int{{50, 40}, {101}, {-1, 101}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMixGen(%v) did not panic", pcts)
				}
			}()
			NewMixGen(1, pcts...)
		}()
	}
}

// TestScenarioMatrixShape: every structure family must contribute at
// least two scenario mixes, each with at least two algorithms (the
// acceptance bar for the mixed-workload engine).
func TestScenarioMatrixShape(t *testing.T) {
	perFamily := map[string]int{}
	for _, s := range Scenarios() {
		perFamily[s.Family]++
		if len(s.Algos) < 2 {
			t.Errorf("scenario %s/%s has %d algos, want >= 2", s.Family, s.Name, len(s.Algos))
		}
		if s.Name == "" {
			t.Errorf("unnamed scenario in family %s", s.Family)
		}
	}
	if len(perFamily) < 8 {
		t.Errorf("only %d families in the matrix: %v", len(perFamily), perFamily)
	}
	for fam, n := range perFamily {
		if n < 2 {
			t.Errorf("family %s has %d scenarios, want >= 2", fam, n)
		}
	}
}

// TestScenarioRecordsCarryLatency runs one cheap cell end-to-end and
// checks the records have the latency fields the JSON trajectory needs.
func TestScenarioRecordsCarryLatency(t *testing.T) {
	cfg := Config{Quick: true, Threads: []int{1, 2}, Ops: 2000}
	var scen Scenario
	for _, s := range Scenarios() {
		if s.Family == "counter" {
			scen = s
			break
		}
	}
	recs := scen.Run(cfg)
	if want := len(scen.Algos) * 2; len(recs) != want {
		t.Fatalf("got %d records, want %d", len(recs), want)
	}
	for _, r := range recs {
		if r.Family != "counter" || r.Algo == "" || r.Scenario == "" {
			t.Errorf("incomplete record labels: %+v", r)
		}
		if r.Ops == 0 || r.ElapsedNs == 0 || r.Value <= 0 || r.Unit != UnitMops {
			t.Errorf("degenerate measurement: %+v", r)
		}
		if r.P50Ns <= 0 || r.P99Ns < r.P50Ns || r.P999Ns < r.P99Ns || r.Samples != uint64(r.Ops) {
			t.Errorf("latency fields wrong: p50=%d p99=%d p999=%d samples=%d ops=%d",
				r.P50Ns, r.P99Ns, r.P999Ns, r.Samples, r.Ops)
		}
	}
}

// TestReclaimStructScenarioShape: the S14 family must compare the
// reclamation schemes per structure — GC, EBR, HP, and (where reuse is
// sound) Recycled — and every record must carry the pending-garbage and
// reclaimed gauges the acceptance bar names.
func TestReclaimStructScenarioShape(t *testing.T) {
	cfg := Config{Quick: true, Threads: []int{2}, Ops: 3000}
	var fam []Scenario
	for _, s := range Scenarios() {
		if s.Family == "reclaim-structs" {
			fam = append(fam, s)
		}
	}
	if len(fam) < 3 {
		t.Fatalf("reclaim-structs has %d scenarios, want >= 3", len(fam))
	}
	wantVariants := map[string][]string{
		"list-delete-heavy-40/40/20":    {"Harris/GC", "Harris/EBR", "Harris/HP", "Harris/Recycled"},
		"map-delete-heavy-40/40/20":     {"SplitOrdered/GC", "SplitOrdered/EBR", "SplitOrdered/HP", "SplitOrdered/Recycled"},
		"skiplist-stalled-reader-churn": {"LockFree/GC", "LockFree/EBR", "LockFree/HP"},
	}
	for _, s := range fam {
		want, ok := wantVariants[s.Name]
		if !ok {
			t.Errorf("unexpected reclaim-structs scenario %q", s.Name)
			continue
		}
		var got []string
		for _, a := range s.Algos {
			got = append(got, a.Label)
		}
		if len(got) != len(want) {
			t.Errorf("%s: algos = %v, want %v", s.Name, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: algo[%d] = %q, want %q", s.Name, i, got[i], want[i])
			}
		}
		for _, r := range s.Run(cfg) {
			if r.Gauges == nil {
				t.Errorf("%s/%s: record missing gauges", s.Name, r.Algo)
				continue
			}
			for _, key := range []string{"pending_garbage", "reclaimed"} {
				if _, ok := r.Gauges[key]; !ok {
					t.Errorf("%s/%s: gauge %q missing", s.Name, r.Algo, key)
				}
			}
			if r.Gauges["pending_garbage"] < 0 {
				t.Errorf("%s/%s: negative pending garbage", s.Name, r.Algo)
			}
		}
	}
}

// TestDualScenarioShape: the S15 blocking family must compare the three
// dual structures against the channel baseline, and every dual record
// must carry the waiter-management gauges (parks, fulfilled, ...) the
// acceptance bar names. The channel baseline carries none — the runtime
// does not expose its park counts.
func TestDualScenarioShape(t *testing.T) {
	cfg := Config{Quick: true, Threads: []int{2}, Ops: 1000}
	var fam []Scenario
	for _, s := range Scenarios() {
		if s.Family == "dual" {
			fam = append(fam, s)
		}
	}
	if len(fam) < 3 {
		t.Fatalf("dual family has %d scenarios, want >= 3", len(fam))
	}
	wantAlgos := []string{"DualMS", "Sync", "Bounded", "Channel"}
	for _, s := range fam {
		var got []string
		for _, a := range s.Algos {
			got = append(got, a.Label)
		}
		if len(got) != len(wantAlgos) {
			t.Errorf("%s: algos = %v, want %v", s.Name, got, wantAlgos)
			continue
		}
		for i := range wantAlgos {
			if got[i] != wantAlgos[i] {
				t.Errorf("%s: algo[%d] = %q, want %q", s.Name, i, got[i], wantAlgos[i])
			}
		}
		for _, r := range s.Run(cfg) {
			if r.Algo == "Channel" {
				if r.Gauges != nil {
					t.Errorf("%s/Channel: unexpected gauges %v", s.Name, r.Gauges)
				}
				continue
			}
			if r.Gauges == nil {
				t.Errorf("%s/%s: record missing gauges", s.Name, r.Algo)
				continue
			}
			for _, key := range []string{"parks", "fulfilled", "reservations", "cancelled", "handoffs"} {
				if _, ok := r.Gauges[key]; !ok {
					t.Errorf("%s/%s: gauge %q missing", s.Name, r.Algo, key)
				}
			}
			if r.P99Ns == 0 || r.Samples == 0 {
				t.Errorf("%s/%s: latency fields missing: %+v", s.Name, r.Algo, r)
			}
		}
	}
}

// TestDualScenarioGaugesMove runs the rendezvous cell long enough that
// the slow path engages and checks the gauges are not identically zero —
// the smoke that the counters are actually wired to the structures.
func TestDualScenarioGaugesMove(t *testing.T) {
	cfg := Config{Quick: true, Threads: []int{2}, Ops: 4000}
	for _, s := range Scenarios() {
		if s.Family != "dual" || s.Name != "rendezvous-50/50-cancel" {
			continue
		}
		for _, a := range s.Algos {
			if a.Label != "Sync" {
				continue
			}
			rec := a.Run(cfg, 2).Record(s.Family, a.Label, s.Name)
			total := 0.0
			for _, v := range rec.Gauges {
				total += v
			}
			if total == 0 {
				t.Errorf("Sync rendezvous cell moved no gauges: %v", rec.Gauges)
			}
			return
		}
	}
	t.Fatal("rendezvous-50/50-cancel / Sync cell not found")
}

// TestPoolScenarioShape: the S16 pool family must compare the
// work-stealing executor against the shared locked-queue and channel
// baselines, every cell must conserve its task graph (Ops identical
// across algorithms of a cell), and the WorkStealing records must carry
// the scheduling gauges the acceptance bar names. The baselines carry
// none — neither design has a steal or a park to count.
func TestPoolScenarioShape(t *testing.T) {
	cfg := Config{Quick: true, Threads: []int{2}, Ops: 2000}
	var fam []Scenario
	for _, s := range Scenarios() {
		if s.Family == "pool" {
			fam = append(fam, s)
		}
	}
	if len(fam) != 3 {
		t.Fatalf("pool family has %d scenarios, want 3", len(fam))
	}
	wantAlgos := []string{"WorkStealing", "SharedQueue", "Channel"}
	for _, s := range fam {
		var got []string
		for _, a := range s.Algos {
			got = append(got, a.Label)
		}
		if len(got) != len(wantAlgos) {
			t.Errorf("%s: algos = %v, want %v", s.Name, got, wantAlgos)
			continue
		}
		for i := range wantAlgos {
			if got[i] != wantAlgos[i] {
				t.Errorf("%s: algo[%d] = %q, want %q", s.Name, i, got[i], wantAlgos[i])
			}
		}
		opsByAlgo := map[string]int64{}
		for _, r := range s.Run(cfg) {
			if r.Ops <= 0 {
				t.Errorf("%s/%s: no tasks executed", s.Name, r.Algo)
			}
			opsByAlgo[r.Algo] = r.Ops
			// Every backend samples task sojourn latency per task.
			if r.P99Ns == 0 || r.Samples != uint64(r.Ops) {
				t.Errorf("%s/%s: sojourn latency missing or miscounted: p99=%d samples=%d ops=%d",
					s.Name, r.Algo, r.P99Ns, r.Samples, r.Ops)
			}
			if r.Algo != "WorkStealing" {
				if r.Gauges != nil {
					t.Errorf("%s/%s: unexpected gauges %v", s.Name, r.Algo, r.Gauges)
				}
				continue
			}
			if r.Gauges == nil {
				t.Errorf("%s/WorkStealing: record missing gauges", s.Name)
				continue
			}
			for _, key := range []string{"steals", "local_hits", "inject_hits", "parks", "executed"} {
				if _, ok := r.Gauges[key]; !ok {
					t.Errorf("%s/WorkStealing: gauge %q missing", s.Name, key)
				}
			}
			// Conservation inside the executor: every execution was
			// classified, and the count matches the cell's Ops.
			if got := r.Gauges["executed"]; got != float64(r.Ops) {
				t.Errorf("%s/WorkStealing: executed gauge %v != ops %d", s.Name, got, r.Ops)
			}
		}
		// The task graph is deterministic, so every executor must have
		// run exactly the same number of tasks.
		for algo, ops := range opsByAlgo {
			if ops != opsByAlgo["WorkStealing"] {
				t.Errorf("%s: %s ran %d tasks, WorkStealing ran %d — workload not conserved",
					s.Name, algo, ops, opsByAlgo["WorkStealing"])
			}
		}
	}
}
