package bench

import (
	"fmt"
	"runtime"

	"github.com/cds-suite/cds/queue"
	"github.com/cds-suite/cds/reclaim"
)

// The queue-segmented family (experiment S18) measures the FAA-claimed
// segmented queues against the CAS-retry designs they are built to beat:
// queue.MS (one CAS race per operation) and the bounded queue.MPMC ring
// (one CAS race per ticket). Every record carries conservation gauges —
// harness-counted enqueues/dequeues plus the structure's own segment
// counters — so a report certifies not just throughput but where the
// operations went: enqueues == dequeues + residual, and segs_allocated ==
// segs_recycled + segs_live + segs_retired_pending. The enq_slowpath and
// deq_abandoned gauges split FAA fast-path operations from tantrum/append
// traffic, which is the evidence that matters on hardware too small to
// show a parallel-speedup ratio (see Report.Summary).

// segWorkerCounts is one worker's successful-operation tally, padded so
// concurrent workers do not false-share tally lines.
type segWorkerCounts struct {
	enq, deq int64
	_        [112]byte
}

// segHarnessGauges folds the per-worker tallies into the conservation
// gauges. prefill counts as enqueues (the harness performed them before
// the measured region) so the identity enqueues == dequeues + residual
// holds exactly. extra, when non-nil, contributes the structure's own
// end-of-run counters.
func segHarnessGauges(counts []segWorkerCounts, prefill, residual int, extra func() map[string]float64) map[string]float64 {
	var enq, deq int64
	for i := range counts {
		enq += counts[i].enq
		deq += counts[i].deq
	}
	g := map[string]float64{
		"enqueues": float64(int64(prefill) + enq),
		"dequeues": float64(deq),
		"residual": float64(residual),
	}
	if extra != nil {
		for k, v := range extra() {
			g[k] = v
		}
	}
	return g
}

// segStatGauges flattens a segmented queue's segment-lifecycle counters
// into record gauges. The naming is what the CI bench-smoke validation
// asserts over.
func segStatGauges(s queue.SegStats) map[string]float64 {
	return map[string]float64{
		"segs_allocated":       float64(s.SegsAllocated),
		"segs_recycled":        float64(s.SegsRecycled),
		"segs_reused":          float64(s.SegsReused),
		"segs_closed":          float64(s.SegsClosed),
		"segs_live":            float64(s.SegsLive),
		"segs_retired_pending": float64(s.SegsRetiredPending),
		"enq_slowpath":         float64(s.EnqSlowpath),
		"deq_abandoned":        float64(s.DeqAbandoned),
	}
}

// mpmcStatGauges flattens the bounded ring's CAS-miss and backoff
// counters (the observable face of the S2 backoff fix).
func mpmcStatGauges(s queue.MPMCStats) map[string]float64 {
	return map[string]float64{
		"enq_cas_misses": float64(s.EnqCASMisses),
		"deq_cas_misses": float64(s.DeqCASMisses),
		"backoffs":       float64(s.Backoffs),
	}
}

// segDriver adapts one queue implementation to the S18 harness: enq/deq
// report success (so failed bounded-ring tickets and empty dequeues do not
// corrupt the conservation gauges), length reads the residual, and gauges
// (optional) snapshots the structure's own counters.
type segDriver struct {
	enq    func(int) bool
	deq    func() bool
	length func() int
	gauges func() map[string]float64
}

func msSegDriver() segDriver {
	q := queue.NewMS[int]()
	return segDriver{
		enq:    func(v int) bool { q.Enqueue(v); return true },
		deq:    func() bool { _, ok := q.TryDequeue(); return ok },
		length: q.Len,
	}
}

func lcrqSegDriver(opts ...queue.Option) segDriver {
	q := queue.NewLCRQ[int](opts...)
	return segDriver{
		enq:    func(v int) bool { q.Enqueue(v); return true },
		deq:    func() bool { _, ok := q.TryDequeue(); return ok },
		length: q.Len,
		gauges: func() map[string]float64 { return segStatGauges(q.Stats()) },
	}
}

// lcrqEBRSegDriver runs the LCRQ with real reclamation and segment
// recycling — the deployment shape — and merges the domain's
// pending/reclaimed gauges with the segment counters. The advance interval
// is forced to 1 so even quick runs exercise the recycler.
func lcrqEBRSegDriver() segDriver {
	dom := reclaim.NewEBR()
	dom.SetAdvanceInterval(1)
	q := queue.NewLCRQ[int](queue.WithReclaim(dom), queue.WithRecycling())
	return segDriver{
		enq:    func(v int) bool { q.Enqueue(v); return true },
		deq:    func() bool { _, ok := q.TryDequeue(); return ok },
		length: q.Len,
		gauges: func() map[string]float64 {
			g := segStatGauges(q.Stats())
			for k, v := range reclaimGauges(dom) {
				g[k] = v
			}
			return g
		},
	}
}

func mpscSegDriver() segDriver {
	q := queue.NewMPSC[int]()
	return segDriver{
		enq:    func(v int) bool { q.Enqueue(v); return true },
		deq:    func() bool { _, ok := q.TryDequeue(); return ok },
		length: q.Len,
		gauges: func() map[string]float64 { return segStatGauges(q.Stats()) },
	}
}

func mpmcSegDriver() segDriver {
	q := queue.NewMPMC[int](1 << 16)
	return segDriver{
		enq:    q.TryEnqueue,
		deq:    func() bool { _, ok := q.TryDequeue(); return ok },
		length: q.Len,
		gauges: func() map[string]float64 { return mpmcStatGauges(q.Stats()) },
	}
}

// runSegCell measures one (implementation, thread-count) cell: prefill,
// drive the per-worker role closures with latency sampling, then attach
// the conservation gauges.
func runSegCell(cfg Config, th, prefill int, mk func() segDriver,
	role func(w, th int, d segDriver, c *segWorkerCounts) func(int)) Result {
	d := mk()
	for i := 0; i < prefill; i++ {
		d.enq(i)
	}
	counts := make([]segWorkerCounts, th)
	ops := cfg.ops(200000)
	res := RunLatency(th, ops/th+1, func(w int) func(int) {
		return role(w, th, d, &counts[w])
	})
	res.Gauges = segHarnessGauges(counts, prefill, d.length(), d.gauges)
	return res
}

// segQueueScenarios is the S18 matrix. Three mixes: the symmetric hot
// path, an enqueue-burst shape that forces segment churn, and the pool
// injection-lane shape (many producers, one consumer) where the MPSC
// specialization is legal.
func segQueueScenarios() []Scenario {
	type impl struct {
		label string
		mk    func() segDriver
	}
	common := []impl{
		{"MS", msSegDriver},
		{"LCRQ", func() segDriver { return lcrqSegDriver() }},
		{"LCRQ/EBR-recycle", lcrqEBRSegDriver},
		{"MPMC-64k", mpmcSegDriver},
	}

	// hot-5050: prefilled symmetric mix — the common-case regime where the
	// LCRQ's one-FAA fast path is the whole story.
	hot := Scenario{Family: "queue-segmented", Name: "hot-5050"}
	for _, im := range common {
		mk := im.mk
		hot.Algos = append(hot.Algos, ScenarioAlgo{Label: im.label, Run: func(cfg Config, th int) Result {
			return runSegCell(cfg, th, 1024, mk, func(w, _ int, d segDriver, c *segWorkerCounts) func(int) {
				mix := NewMixGen(uint64(w)*7919+101, 50, 50)
				return func(i int) {
					if mix.Next() == 0 {
						if d.enq(i) {
							c.enq++
						}
					} else if d.deq() {
						c.deq++
					}
				}
			})
		}})
	}

	// enq-burst-64-churn: alternating 64-op enqueue bursts and drain
	// phases, starting empty. Bursts fill whole segments and the drains
	// retire them, so this is the allocation/recycling regime: watch
	// segs_allocated vs segs_reused across the LCRQ variants.
	burst := Scenario{Family: "queue-segmented", Name: "enq-burst-64-churn"}
	for _, im := range common {
		mk := im.mk
		burst.Algos = append(burst.Algos, ScenarioAlgo{Label: im.label, Run: func(cfg Config, th int) Result {
			return runSegCell(cfg, th, 0, mk, func(_, _ int, d segDriver, c *segWorkerCounts) func(int) {
				return func(i int) {
					if (i/64)%2 == 0 {
						if d.enq(i) {
							c.enq++
						}
					} else if d.deq() {
						c.deq++
					}
				}
			})
		}})
	}

	// pool-injection-1-consumer: workers 1..n produce, worker 0 is the
	// sole consumer — the shape of the executor's injection lane. The
	// single-consumer topology makes the MPSC variant legal here, so this
	// is the one cell that can price its skipped dequeue-side FAA/CAS
	// against the full LCRQ. At one thread the cell degenerates to
	// enqueue/dequeue pairs (still single-consumer).
	inject := Scenario{Family: "queue-segmented", Name: "pool-injection-1-consumer"}
	for _, im := range append(common[:3:3], impl{"MPSC", mpscSegDriver}, common[3]) {
		mk := im.mk
		inject.Algos = append(inject.Algos, ScenarioAlgo{Label: im.label, Run: func(cfg Config, th int) Result {
			return runSegCell(cfg, th, 0, mk, func(w, th int, d segDriver, c *segWorkerCounts) func(int) {
				if th == 1 {
					return func(i int) {
						if d.enq(i) {
							c.enq++
						}
						if d.deq() {
							c.deq++
						}
					}
				}
				if w == 0 {
					return func(int) {
						if d.deq() {
							c.deq++
						}
					}
				}
				return func(i int) {
					if d.enq(i) {
						c.enq++
					}
				}
			})
		}})
	}

	return []Scenario{hot, burst, inject}
}

// segQueueS2Algos returns the gauge-carrying additions to the S2 queue
// family: the LCRQ alongside the linked designs it replaces, and the
// bounded MPMC ring whose CAS-miss/backoff gauges pin the S2 backoff fix
// observably. Both cells mirror the existing S2 mixes exactly (same
// prefill, op budget, and mix seeds) so the new rows are comparable with
// the incumbent ones.
func segQueueS2Algos() (mixed, split []ScenarioAlgo) {
	type gauged struct {
		label string
		mk    func() segDriver
	}
	impls := []gauged{
		{"LCRQ", func() segDriver { return lcrqSegDriver() }},
		{"MPMC-64k", mpmcSegDriver},
	}
	for _, im := range impls {
		mk := im.mk
		mixed = append(mixed, ScenarioAlgo{Label: im.label, Run: func(cfg Config, th int) Result {
			d := mk()
			for i := 0; i < 1024; i++ {
				d.enq(i)
			}
			ops := cfg.ops(200000)
			res := RunLatency(th, ops/th+1, func(w int) func(int) {
				mix := NewMixGen(uint64(w)*7919+1, 70, 30)
				return func(i int) {
					if mix.Next() == 0 {
						d.enq(i)
					} else {
						d.deq()
					}
				}
			})
			res.Gauges = d.gauges()
			return res
		}})
		split = append(split, ScenarioAlgo{Label: im.label, Run: func(cfg Config, th int) Result {
			d := mk()
			for i := 0; i < 1024; i++ {
				d.enq(i)
			}
			ops := cfg.ops(200000)
			res := RunLatency(th, ops/th+1, func(w int) func(int) {
				if w%2 == 0 {
					return func(i int) { d.enq(i) }
				}
				return func(int) { d.deq() }
			})
			res.Gauges = d.gauges()
			return res
		}})
	}
	return mixed, split
}

// runA5 sweeps the LCRQ's segment size on the symmetric 50/50 mix, with
// queue.MS and the 64k MPMC ring re-measured at every X as flat baselines
// (neither takes a segment-size parameter; re-measuring keeps their noise
// floor honest rather than drawing a single stale line). The sweep brackets
// the default: 64 retires segments fast enough to stress the reclaim path,
// 1024 amortises allocation hardest but strands more slots on residual
// queues.
func runA5(cfg Config) []Figure {
	ops := cfg.ops(200000)
	th := runtime.GOMAXPROCS(0)
	fig := Figure{
		ID:     "A5",
		Family: "queue-segmented",
		Title:  fmt.Sprintf("LCRQ segment-size sweep at %d threads, 50/50 enq-deq (MS and MPMC-64k as baselines)", th),
		XLabel: "segsize",
	}
	impls := []struct {
		label string
		mk    func(segSize int) segDriver
	}{
		{"MS", func(int) segDriver { return msSegDriver() }},
		{"LCRQ", func(segSize int) segDriver { return lcrqSegDriver(queue.WithSegmentSize(segSize)) }},
		{"MPMC-64k", func(int) segDriver { return mpmcSegDriver() }},
	}
	for _, im := range impls {
		var s Series
		s.Label = im.label
		for _, segSize := range []int{64, 256, 1024} {
			d := im.mk(segSize)
			for i := 0; i < 1024; i++ {
				d.enq(i)
			}
			res := Run(th, ops/th+1, func(w int) func(int) {
				mix := NewMixGen(uint64(w)*7919+101, 50, 50)
				return func(i int) {
					if mix.Next() == 0 {
						d.enq(i)
					} else {
						d.deq()
					}
				}
			})
			s.Points = append(s.Points, Point{X: segSize, Mops: res.Throughput()})
		}
		fig.Series = append(fig.Series, s)
	}
	return []Figure{fig}
}
