package bench

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenReport is a fully deterministic report: fixed meta, one
// latency-rich scenario record and one figure-derived record, covering
// both serialization shapes.
func goldenReport() Report {
	return Report{
		Schema: ReportSchema,
		Meta: Meta{
			GoVersion:   "go1.24.0",
			GOOS:        "linux",
			GOARCH:      "amd64",
			NumCPU:      8,
			GOMAXPROCS:  8,
			GitRevision: "abc1234",
			Quick:       true,
			UnixTime:    0,
		},
		Summary: "num_cpu=8 gomaxprocs=8 — fixed golden summary",
		Records: []Record{
			{
				Family:    "queue",
				Algo:      "MS",
				Scenario:  "enq-heavy-70/30",
				Threads:   4,
				Ops:       400000,
				ElapsedNs: 32000000,
				Value:     12.5,
				Unit:      UnitMops,
				NsPerOp:   80,
				P50Ns:     71,
				P90Ns:     102,
				P99Ns:     913,
				P999Ns:    4096,
				Samples:   400000,
			},
			{
				Family:   "stack",
				Algo:     "hit-rate%",
				Scenario: "T3: elimination-backoff stack: hits per 100 elimination visits",
				Threads:  8,
				Value:    37.5,
				Unit:     UnitPercent,
			},
			{
				Family:   "reclaim",
				Algo:     "Harris/EBR",
				Scenario: "F12: list delete-heavy 40/40/20",
				Threads:  4,
				Value:    3.25,
				Unit:     UnitMops,
				Gauges:   map[string]float64{"pending_garbage": 128, "reclaimed": 39872},
			},
		},
	}
}

// TestReportGoldenJSON locks the serialized layout: any schema drift must
// show up as a reviewed golden-file diff (and a ReportSchema bump when it
// changes meaning).
func TestReportGoldenJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenReport().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "report_golden.json")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run `go test ./bench -run Golden -update` to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("serialized report drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestReportRoundTrip: what WriteJSON emits, encoding/json reads back
// unchanged — the property BENCH_*.json consumers rely on.
func TestReportRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := goldenReport()
	if err := in.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out Report
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Schema != in.Schema || out.Meta != in.Meta || len(out.Records) != len(in.Records) {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	for i := range in.Records {
		if !reflect.DeepEqual(out.Records[i], in.Records[i]) {
			t.Fatalf("record %d mismatch: got %+v want %+v", i, out.Records[i], in.Records[i])
		}
	}
}

func TestResultRecordConversion(t *testing.T) {
	h := NewHistogram()
	for v := int64(1); v <= 1000; v++ {
		h.Record(v)
	}
	res := Result{Workers: 4, Ops: 1000, Elapsed: 2 * time.Millisecond, Latency: h}
	rec := res.Record("queue", "MS", "test-mix")
	if rec.Family != "queue" || rec.Algo != "MS" || rec.Scenario != "test-mix" || rec.Threads != 4 {
		t.Fatalf("labels wrong: %+v", rec)
	}
	if rec.Value != res.Throughput() || rec.NsPerOp != res.NsPerOp() || rec.ElapsedNs != res.Elapsed.Nanoseconds() {
		t.Fatalf("metrics wrong: %+v", rec)
	}
	if rec.P50Ns == 0 || rec.P99Ns == 0 || rec.Samples != 1000 {
		t.Fatalf("latency fields missing: %+v", rec)
	}
	// Without sampling, latency fields stay zero and omitted from JSON.
	plain := Result{Workers: 1, Ops: 10, Elapsed: time.Millisecond}.Record("stack", "Treiber", "x")
	if plain.P50Ns != 0 || plain.Samples != 0 {
		t.Fatalf("unsampled record has latency fields: %+v", plain)
	}
	b, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(b, []byte("p50_ns")) {
		t.Fatalf("unsampled record serialized latency fields: %s", b)
	}
}

func TestFigureRecords(t *testing.T) {
	fig := Figure{
		ID:     "F4",
		Title:  "queue ops/sec",
		Family: "queue",
		XLabel: "threads",
		Series: []Series{
			{Label: "MS", Points: []Point{{X: 1, Mops: 5}, {X: 2, Mops: 8}}},
			{Label: "hit", Unit: UnitPercent, Points: []Point{{X: 1, Mops: 50}}},
		},
	}
	recs := fig.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	if recs[0].Family != "queue" || recs[0].Algo != "MS" || recs[0].Unit != UnitMops || recs[0].Value != 5 {
		t.Fatalf("record 0 wrong: %+v", recs[0])
	}
	if recs[2].Unit != UnitPercent {
		t.Fatalf("unit not propagated: %+v", recs[2])
	}
}

// TestBuildReport exercises the assembly path with one synthetic records
// experiment and one synthetic figure experiment.
func TestBuildReport(t *testing.T) {
	exps := []Experiment{
		{ID: "X1", Title: "records-native", Records: func(Config) []Record {
			return []Record{{Family: "queue", Algo: "MS", Scenario: "m", Threads: 1, Unit: UnitMops, P50Ns: 10}}
		}},
		{ID: "X2", Title: "figure-derived", Run: func(Config) []Figure {
			return []Figure{{ID: "X2", Title: "t", Family: "stack", XLabel: "threads",
				Series: []Series{{Label: "A", Points: []Point{{X: 1, Mops: 1}}}}}}
		}},
	}
	rep := BuildReport(Config{Quick: true}, exps)
	if rep.Schema != ReportSchema {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if rep.Meta.GoVersion == "" || rep.Meta.GOMAXPROCS == 0 || !rep.Meta.Quick {
		t.Fatalf("meta not captured: %+v", rep.Meta)
	}
	if len(rep.Records) != 2 {
		t.Fatalf("got %d records, want 2", len(rep.Records))
	}
	if rep.Records[0].P50Ns != 10 || rep.Records[1].Family != "stack" {
		t.Fatalf("records wrong: %+v", rep.Records)
	}
}
