package bench

import (
	"strings"
	"testing"
)

func diffReport(records ...Record) Report {
	return Report{Schema: ReportSchema, Records: records}
}

func diffRec(algo string, threads int, value float64, p99 int64) Record {
	r := Record{
		Family:   "contend",
		Scenario: "queue-pingpong",
		Algo:     algo,
		Threads:  threads,
		Value:    value,
		Unit:     UnitMops,
	}
	if p99 > 0 {
		r.P99Ns = p99
		r.Samples = 1000
	}
	return r
}

func TestDiffReportsFlagsInjectedRegression(t *testing.T) {
	oldR := diffReport(
		diffRec("FC", 4, 10.0, 1000),
		diffRec("FC/CC-Synch", 4, 12.0, 900),
	)
	// Inject a >10% throughput regression on FC (10.0 -> 8.0 = -20%)
	// while CC-Synch stays within noise (12.0 -> 11.5 = -4.2%).
	newR := diffReport(
		diffRec("FC", 4, 8.0, 1000),
		diffRec("FC/CC-Synch", 4, 11.5, 920),
	)
	d := DiffReports(oldR, newR, 0.10)
	regs := d.Regressions()
	if len(regs) != 1 {
		t.Fatalf("Regressions() = %d cells, want 1: %+v", len(regs), regs)
	}
	got := regs[0]
	if got.Key.Algo != "FC" || !got.ValueRegression || got.P99Regression {
		t.Fatalf("wrong regression cell: %+v", got)
	}
	if got.ValueDelta > -0.19 || got.ValueDelta < -0.21 {
		t.Fatalf("ValueDelta = %v, want ~-0.20", got.ValueDelta)
	}
}

func TestDiffReportsFlagsP99Regression(t *testing.T) {
	oldR := diffReport(diffRec("FC", 2, 10.0, 1000))
	newR := diffReport(diffRec("FC", 2, 10.0, 1200)) // p99 +20%
	d := DiffReports(oldR, newR, 0.10)
	regs := d.Regressions()
	if len(regs) != 1 || !regs[0].P99Regression || regs[0].ValueRegression {
		t.Fatalf("want exactly one p99 regression, got %+v", regs)
	}
}

func TestDiffReportsWithinNoiseNotFlagged(t *testing.T) {
	oldR := diffReport(diffRec("FC", 2, 10.0, 1000))
	newR := diffReport(diffRec("FC", 2, 9.5, 1050)) // -5% value, +5% p99
	d := DiffReports(oldR, newR, 0.10)
	if regs := d.Regressions(); len(regs) != 0 {
		t.Fatalf("within-noise drift flagged as regression: %+v", regs)
	}
}

func TestDiffReportsOnlyOldOnlyNew(t *testing.T) {
	oldR := diffReport(diffRec("FC", 1, 10, 0), diffRec("Dropped", 1, 5, 0))
	newR := diffReport(diffRec("FC", 1, 10, 0), diffRec("Added", 1, 7, 0))
	d := DiffReports(oldR, newR, 0.10)
	if len(d.Cells) != 1 {
		t.Fatalf("joined cells = %d, want 1", len(d.Cells))
	}
	if len(d.OnlyOld) != 1 || d.OnlyOld[0].Algo != "Dropped" {
		t.Fatalf("OnlyOld = %+v, want the Dropped cell", d.OnlyOld)
	}
	if len(d.OnlyNew) != 1 || d.OnlyNew[0].Algo != "Added" {
		t.Fatalf("OnlyNew = %+v, want the Added cell", d.OnlyNew)
	}
}

func TestDiffReportsUnitMismatchSkipsValueComparison(t *testing.T) {
	or := diffRec("FC", 1, 10, 0)
	nr := diffRec("FC", 1, 2, 0)
	nr.Unit = UnitPercent // unit changed between reports: values not comparable
	d := DiffReports(diffReport(or), diffReport(nr), 0.10)
	if len(d.Cells) != 1 {
		t.Fatalf("joined cells = %d, want 1", len(d.Cells))
	}
	if c := d.Cells[0]; c.Unit != "" || c.ValueRegression {
		t.Fatalf("unit-mismatched cell compared anyway: %+v", c)
	}
}

func TestReadReportRejectsWrongSchema(t *testing.T) {
	_, err := ReadReport(strings.NewReader(`{"schema":"other/v9","records":[]}`))
	if err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong-schema report accepted: err = %v", err)
	}
}

func TestDiffRenderMentionsRegression(t *testing.T) {
	oldR := diffReport(diffRec("FC", 4, 10.0, 0))
	newR := diffReport(diffRec("FC", 4, 5.0, 0))
	d := DiffReports(oldR, newR, 0.10)
	var sb strings.Builder
	if err := d.Render(&sb, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "REGRESSION(value)") {
		t.Fatalf("rendered diff does not flag the regression:\n%s", sb.String())
	}
}
