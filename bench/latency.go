package bench

import (
	"math"
	"math/bits"
	"time"
)

// Latency histogram parameters. Values are bucketed by octave (position of
// the highest set bit) with 2^histSubBits linear sub-buckets per octave,
// the HdrHistogram layout: relative quantisation error is bounded by
// 1/2^histSubBits (~3% at 5 sub-bucket bits), constant-time insert, and a
// fixed, mergeable footprint — exactly what per-worker sampling on the
// benchmark hot path can afford.
const (
	histSubBits = 5
	histSubMask = (1 << histSubBits) - 1
	// histBuckets covers every non-negative int64 nanosecond value:
	// values below 2^histSubBits map directly, and each of the remaining
	// 63-histSubBits octaves contributes 2^histSubBits sub-buckets.
	histBuckets = (1 << histSubBits) + (63-histSubBits)<<histSubBits
)

// Histogram is a log-bucketed latency histogram over nanosecond values.
// It is not safe for concurrent use: each benchmark worker records into its
// own instance and the runner merges them after the measured region.
type Histogram struct {
	counts [histBuckets]uint64
	total  uint64
	min    int64
	max    int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: -1}
}

// bucketIndex maps a nanosecond value to its bucket.
func bucketIndex(v int64) int {
	if v < 1<<histSubBits {
		return int(v)
	}
	msb := 63 - bits.LeadingZeros64(uint64(v))
	shift := msb - histSubBits
	return (shift+1)<<histSubBits + int((v>>shift)&histSubMask)
}

// bucketValue returns the representative (midpoint) value of a bucket.
func bucketValue(idx int) int64 {
	if idx < 1<<histSubBits {
		return int64(idx)
	}
	shift := idx>>histSubBits - 1
	base := int64(1) << (shift + histSubBits)
	low := base + int64(idx&histSubMask)<<shift
	return low + int64(1)<<shift/2
}

// Record adds one sample. Non-positive samples (possible on coarse clocks)
// are clamped to 1ns so that percentiles of real work never read as zero.
func (h *Histogram) Record(ns int64) {
	if ns < 1 {
		ns = 1
	}
	h.counts[bucketIndex(ns)]++
	h.total++
	if h.min < 0 || ns < h.min {
		h.min = ns
	}
	if ns > h.max {
		h.max = ns
	}
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.total == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	if h.min < 0 || (other.min >= 0 && other.min < h.min) {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.total }

// Min returns the smallest recorded sample, or 0 if empty.
func (h *Histogram) Min() int64 {
	if h.min < 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample, or 0 if empty.
func (h *Histogram) Max() int64 { return h.max }

// Percentile returns the latency in nanoseconds at percentile p in (0,
// 100]: the representative value of the bucket holding the sample with
// rank ceil(p/100 * count). Returns 0 on an empty histogram. The answer is
// exact below 2^histSubBits ns and within 1/2^histSubBits (~3%) relative
// error above, clamped to the observed min/max.
func (h *Histogram) Percentile(p float64) int64 {
	if h.total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	if rank > h.total {
		rank = h.total
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			v := bucketValue(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Summary is the fixed percentile set reported by benchmark records.
type Summary struct {
	// P50, P90, P99, P999 are latency percentiles in nanoseconds.
	P50, P90, P99, P999 int64
	// Samples is the number of recorded operations.
	Samples uint64
}

// Summary extracts the standard percentile set.
func (h *Histogram) Summary() Summary {
	return Summary{
		P50:     h.Percentile(50),
		P90:     h.Percentile(90),
		P99:     h.Percentile(99),
		P999:    h.Percentile(99.9),
		Samples: h.total,
	}
}

// RunLatency is Run with per-operation latency sampling: every operation
// is individually timed into a per-worker Histogram, and the merged
// histogram is attached to the Result. The two time.Now calls per
// operation add roughly 30-60ns of overhead to each op, so throughput
// numbers from RunLatency are comparable with each other but not with
// plain Run; the experiment suite uses Run for throughput figures and
// RunLatency for the scenario records.
func RunLatency(workers, opsPerWorker int, mkOp func(w int) func(i int)) Result {
	hists := make([]*Histogram, workers)
	for w := range hists {
		hists[w] = NewHistogram()
	}
	res := Run(workers, opsPerWorker, func(w int) func(int) {
		op := mkOp(w)
		h := hists[w]
		return func(i int) {
			t0 := time.Now()
			op(i)
			h.Record(time.Since(t0).Nanoseconds())
		}
	})
	merged := NewHistogram()
	for _, h := range hists {
		merged.Merge(h)
	}
	res.Latency = merged
	return res
}
