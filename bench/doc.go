// Package bench is the measurement harness behind the experiment suite in
// DESIGN.md: deterministic workload generation (uniform and Zipfian key
// streams), a worker runner with a synchronised start line, per-operation
// latency sampling into log-bucketed histograms, a mixed-workload scenario
// engine, and two renderers — aligned text tables in the shape the survey
// figures use, and a machine-readable JSON Report for tracking results
// across revisions.
//
// Use cmd/cdsbench to regenerate every figure/table, or the testing.B
// benches in the repository root for quick single-configuration runs.
// README's "Reading the benchmarks" section walks through interpreting
// the output; this comment is the schema reference.
//
// # JSON schema
//
// A serialized Report (cdsbench -format json) is one JSON object:
//
//	{
//	  "schema": "cds-bench/v1",
//	  "meta": {
//	    "go_version":   "go1.24.0",     // runtime.Version()
//	    "goos":         "linux",
//	    "goarch":       "amd64",
//	    "num_cpu":      8,
//	    "gomaxprocs":   8,
//	    "git_revision": "abc1234",      // build/VCS info; "unknown" if absent
//	    "quick":        false,          // -quick smoke sizing was in effect
//	    "unix_time":    1750000000      // seconds; 0 in golden-file tests
//	  },
//	  "records": [ Record... ]
//	}
//
// and each Record is one measured cell:
//
//	{
//	  "family":     "queue",           // structure family ("queue", "cmap", ...)
//	  "algo":       "MS",              // algorithm / implementation label
//	  "scenario":   "enq-heavy-70/30", // workload description
//	  "threads":    4,                 // worker count
//	  "ops":        400000,            // operations completed; omitted on
//	  "elapsed_ns": 12345678,          // figure-derived records (as is
//	  "ns_per_op":  81.6,              // elapsed_ns / ns_per_op), which
//	                                   // keep only the headline value
//	  "value":      12.251,            // headline metric in "unit"
//	  "unit":       "mops",            // "mops" unless noted (e.g. "percent")
//	  "p50_ns":     71,                // latency percentiles; present only
//	  "p90_ns":     102,               // when the cell sampled per-op
//	  "p99_ns":     913,               // latency (scenario records do,
//	  "p999_ns":    4096,              // figure-derived records do not)
//	  "samples":    400000,            // latency samples behind them
//	  "gauges": {                      // end-of-run structure gauges;
//	    "pending_garbage": 128,        // present only on cells that
//	    "reclaimed":       399872      // report them
//	  }
//	}
//
// Two scenario families report gauges today: the reclamation cells (F12
// and the S14 reclaim-structs scenarios) carry pending_garbage/reclaimed,
// and the S15 dual (blocking-queue) cells carry the waiter-management
// counters reservations/fulfilled/parks/cancelled/handoffs (see
// dual.Stats; the channel baseline carries none). Blocking cells bound
// every operation with a cancellation deadline, so their latency
// percentiles include parked time — wait behaviour is the measurement,
// not a distortion of it.
//
// Records are append-only across schema versions: consumers must ignore
// unknown fields, and field removals or meaning changes bump the schema
// string.
package bench
