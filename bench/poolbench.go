package bench

import (
	"context"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cds-suite/cds/internal/xrand"
	"github.com/cds-suite/cds/pool"
	"github.com/cds-suite/cds/queue"
)

// The pool scenario family (experiment S16) measures task executors as
// systems: each cell runs a complete workload — a task graph produced
// externally and/or forked from inside tasks — to completion on `threads`
// workers and reports completed tasks per second, the methodology of F9
// scaled up from a bare deque to the full executor. pool.WorkStealing is
// compared against the two designs it displaces: the same workload on one
// shared coarse-locked queue (every pop contends on one lock) and on a
// buffered Go channel (the runtime's own MPMC handoff). The WorkStealing
// records carry the executor's scheduling gauges — steals, local_hits,
// inject_hits, parks, executed — which is how to read *why* a cell wins:
// a high local-hit rate is the fork/join fast path the shared designs
// cannot have, and steals quantify how much rebalancing paid for it.
// Latency percentiles on S16 records are task sojourn times (accepted →
// run), i.e. scheduling delay, sampled per task on every backend.

// poolTask is one unit of work in the S16 workloads.
type poolTask struct {
	depth int    // remaining fork depth (fork-join tree)
	fan   int    // children to spawn (skewed fan-out)
	spins int    // leaf computation length
	seed  uint64 // per-task PRNG stream
	// born is stamped by the executor wrappers at submit/spawn time; the
	// cell's latency percentiles are task sojourn times (accepted → run),
	// i.e. scheduling delay — the executor-level analogue of the
	// per-operation latency the other scenario families sample.
	born time.Time
}

// poolLeafSpins is the default leaf computation: ~64 SplitMix64 rounds,
// roughly 300ns — the fine-grained task regime work stealing targets.
const poolLeafSpins = 64

func poolLeafWork(t poolTask) uint64 {
	v := t.seed
	for i := 0; i < t.spins; i++ {
		xrand.SplitMix64(&v)
	}
	return v
}

// poolWorkload is one S16 workload, abstracted over the executor: produce
// drives external submissions (the injection path) and handle runs a task,
// forking children through spawn (the executor-specific fast path).
type poolWorkload struct {
	produce func(submit func(poolTask))
	handle  func(spawn func(poolTask), t poolTask)
	// maxTasks bounds the total task count; it sizes the channel
	// baseline's buffer so spawning can never deadlock against full
	// workers.
	maxTasks int
}

// runPoolWS measures a workload on pool.WorkStealing with th workers,
// using Shutdown's drain as the join, and attaches the scheduling gauges.
func runPoolWS(th int, wl poolWorkload) Result {
	// Each slot is written and read only by its own worker goroutine; the
	// caches avoid re-evaluating closures on every task. Executed tasks
	// are counted by the pool's own per-worker counters, so the measured
	// loop adds no shared bookkeeping of its own.
	spawns := make([]func(poolTask), th)
	hists := poolHists(th)
	p := pool.NewWorkStealing(func(w *pool.Worker[poolTask], t poolTask) {
		hists[w.ID()].Record(time.Since(t.born).Nanoseconds())
		spawn := spawns[w.ID()]
		if spawn == nil {
			ws := w // dedicated binding so the method value is built once
			spawn = func(c poolTask) {
				c.born = time.Now()
				ws.Spawn(c)
			}
			spawns[w.ID()] = spawn
		}
		wl.handle(spawn, t)
	}, pool.WithWorkers(th))
	t0 := time.Now()
	wl.produce(func(t poolTask) {
		t.born = time.Now()
		p.Submit(t)
	})
	_ = p.Shutdown(context.Background())
	elapsed := time.Since(t0)
	st := p.Stats()
	return Result{
		Workers: th,
		Ops:     int64(st.Executed()),
		Elapsed: elapsed,
		Latency: mergeHists(hists),
		Gauges: map[string]float64{
			"steals":      float64(st.Steals),
			"local_hits":  float64(st.LocalHits),
			"inject_hits": float64(st.InjectHits),
			"parks":       float64(st.Parks),
			"executed":    float64(st.Executed()),
		},
	}
}

// poolHists allocates one sojourn histogram per worker; mergeHists folds
// them for the Result.
func poolHists(th int) []*Histogram {
	hists := make([]*Histogram, th)
	for i := range hists {
		hists[i] = NewHistogram()
	}
	return hists
}

func mergeHists(hists []*Histogram) *Histogram {
	merged := NewHistogram()
	for _, h := range hists {
		merged.Merge(h)
	}
	return merged
}

// stamped wraps a submit/spawn function with the sojourn birth stamp.
func stamped(f func(poolTask)) func(poolTask) {
	return func(t poolTask) {
		t.born = time.Now()
		f(t)
	}
}

// runPoolSharedQueue measures the same workload on one coarse-locked
// shared queue polled by th workers — no locality, every pop through one
// lock.
func runPoolSharedQueue(th int, wl poolWorkload) Result {
	q := queue.NewMutex[poolTask]()
	var pending, executed atomic.Int64
	var prodDone atomic.Bool
	submit := stamped(func(t poolTask) {
		pending.Add(1)
		q.Enqueue(t)
	})
	hists := poolHists(th)
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < th; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := hists[w]
			ran := int64(0) // worker-local; folded in once at exit
			defer func() { executed.Add(ran) }()
			for {
				t, ok := q.TryDequeue()
				if !ok {
					if prodDone.Load() && pending.Load() == 0 {
						return
					}
					runtime.Gosched()
					continue
				}
				h.Record(time.Since(t.born).Nanoseconds())
				wl.handle(submit, t)
				ran++
				pending.Add(-1)
			}
		}(w)
	}
	wl.produce(submit)
	prodDone.Store(true)
	wg.Wait()
	return Result{Workers: th, Ops: executed.Load(), Elapsed: time.Since(t0), Latency: mergeHists(hists)}
}

// runPoolChannel measures the workload on a buffered channel sized to the
// workload's task bound (so in-task spawns can never deadlock), the
// idiomatic Go worker-pool baseline.
func runPoolChannel(th int, wl poolWorkload) Result {
	ch := make(chan poolTask, wl.maxTasks)
	var pending, executed atomic.Int64
	var prodDone atomic.Bool
	submit := stamped(func(t poolTask) {
		pending.Add(1)
		ch <- t
	})
	hists := poolHists(th)
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < th; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := hists[w]
			ran := int64(0) // worker-local; folded in once at exit
			defer func() { executed.Add(ran) }()
			for {
				select {
				case t := <-ch:
					h.Record(time.Since(t.born).Nanoseconds())
					wl.handle(submit, t)
					ran++
					pending.Add(-1)
				default:
					if prodDone.Load() && pending.Load() == 0 {
						return
					}
					runtime.Gosched()
				}
			}
		}(w)
	}
	wl.produce(submit)
	prodDone.Store(true)
	wg.Wait()
	return Result{Workers: th, Ops: executed.Load(), Elapsed: time.Since(t0), Latency: mergeHists(hists)}
}

// poolAlgos is the S16 implementation sweep.
func poolAlgos(mkWorkload func(cfg Config) poolWorkload) []ScenarioAlgo {
	return []ScenarioAlgo{
		{Label: "WorkStealing", Run: func(cfg Config, th int) Result {
			return runPoolWS(th, mkWorkload(cfg))
		}},
		{Label: "SharedQueue", Run: func(cfg Config, th int) Result {
			return runPoolSharedQueue(th, mkWorkload(cfg))
		}},
		{Label: "Channel", Run: func(cfg Config, th int) Result {
			return runPoolChannel(th, mkWorkload(cfg))
		}},
	}
}

// forkJoinWorkload builds a binary fork-join tree sized to the op budget:
// one submitted root forks down to ~ops leaves of ~300ns each — parallel
// divide-and-conquer, the canonical work-stealing workload.
func forkJoinWorkload(cfg Config) poolWorkload {
	ops := cfg.ops(1 << 15)
	depth := bits.Len(uint(ops)) - 1
	if depth < 4 {
		depth = 4
	}
	if depth > 20 {
		depth = 20
	}
	total := 1<<(depth+1) - 1
	return poolWorkload{
		maxTasks: total,
		produce: func(submit func(poolTask)) {
			submit(poolTask{depth: depth, spins: poolLeafSpins, seed: 42})
		},
		handle: func(spawn func(poolTask), t poolTask) {
			if t.depth == 0 {
				poolLeafWork(t)
				return
			}
			spawn(poolTask{depth: t.depth - 1, spins: t.spins, seed: t.seed * 2})
			spawn(poolTask{depth: t.depth - 1, spins: t.spins, seed: t.seed*2 + 1})
		},
	}
}

// fanOutWorkload is pure injection-lane pressure: one external producer
// submits leaf tasks in bursts of 64 with yields between bursts, so the
// consumers oscillate between draining a burst and going idle — the
// regime that exercises the spin-then-park path (watch the parks gauge).
func fanOutWorkload(cfg Config) poolWorkload {
	ops := cfg.ops(1 << 15)
	const burst = 64
	return poolWorkload{
		maxTasks: ops + burst,
		produce: func(submit func(poolTask)) {
			for i := 0; i < ops; i++ {
				submit(poolTask{spins: poolLeafSpins, seed: uint64(i)})
				if i%burst == burst-1 {
					runtime.Gosched() // drought between bursts
				}
			}
		},
		handle: func(_ func(poolTask), t poolTask) {
			poolLeafWork(t)
		},
	}
}

// zipfFanWorkload is the skewed-producer cell: submitted batch tasks fan
// out into a Zipf-skewed number of children (most batches tiny, a few
// huge), so the worker that picks up a hot batch builds a deep local
// deque the others must steal from — imbalance by construction, which is
// the case for stealing over a shared queue's implicit rebalancing.
func zipfFanWorkload(cfg Config) poolWorkload {
	ops := cfg.ops(1 << 15)
	const maxFan = 128
	batches := ops / 16
	if batches < 1 {
		batches = 1
	}
	return poolWorkload{
		maxTasks: batches * (maxFan + 1),
		produce: func(submit func(poolTask)) {
			fans, err := NewKeyStream(maxFan, 0.99, 7)
			if err != nil {
				panic(err) // static parameters; cannot fail at runtime
			}
			for i := 0; i < batches; i++ {
				submit(poolTask{fan: int(fans.Next()) + 1, spins: poolLeafSpins, seed: uint64(i)})
			}
		},
		handle: func(spawn func(poolTask), t poolTask) {
			if t.fan == 0 {
				poolLeafWork(t)
				return
			}
			for c := 0; c < t.fan; c++ {
				spawn(poolTask{spins: t.spins, seed: t.seed<<8 + uint64(c)})
			}
		},
	}
}

// poolScenarios is experiment S16: the work-stealing executor as a system
// against the shared-queue and channel baselines.
func poolScenarios() []Scenario {
	return []Scenario{
		{Family: "pool", Name: "fork-join-tree", Algos: poolAlgos(forkJoinWorkload)},
		{Family: "pool", Name: "fan-out-burst-64", Algos: poolAlgos(fanOutWorkload)},
		{Family: "pool", Name: "zipf-fan-producers-0.99", Algos: poolAlgos(zipfFanWorkload)},
	}
}
