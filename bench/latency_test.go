package bench

import (
	"github.com/cds-suite/cds/internal/xrand"
	"math"
	"testing"
)

// TestHistogramExactSmallValues: below 2^histSubBits every value has its
// own bucket, so percentiles are exact.
func TestHistogramExactSmallValues(t *testing.T) {
	h := NewHistogram()
	for v := int64(1); v <= 31; v++ {
		h.Record(v)
	}
	if got := h.Percentile(50); got != 16 {
		t.Fatalf("p50 of 1..31 = %d, want 16", got)
	}
	if got := h.Percentile(100); got != 31 {
		t.Fatalf("p100 of 1..31 = %d, want 31", got)
	}
	if h.Min() != 1 || h.Max() != 31 {
		t.Fatalf("min/max = %d/%d, want 1/31", h.Min(), h.Max())
	}
}

// TestHistogramPercentilesKnownDistribution checks the log-bucketed
// percentiles against a known uniform distribution: quantisation error is
// bounded by the sub-bucket resolution (1/2^histSubBits ≈ 3.1%).
func TestHistogramPercentilesKnownDistribution(t *testing.T) {
	h := NewHistogram()
	const n = 100000
	for v := int64(1); v <= n; v++ {
		h.Record(v)
	}
	if h.Count() != n {
		t.Fatalf("count = %d, want %d", h.Count(), n)
	}
	for _, tc := range []struct {
		p    float64
		want float64
	}{
		{50, 50000},
		{90, 90000},
		{99, 99000},
		{99.9, 99900},
	} {
		got := h.Percentile(tc.p)
		if relErr := math.Abs(float64(got)-tc.want) / tc.want; relErr > 0.04 {
			t.Errorf("p%.1f = %d, want %.0f ±4%% (err %.2f%%)", tc.p, got, tc.want, 100*relErr)
		}
	}
}

// TestHistogramMerge: merging per-worker histograms must yield the same
// percentiles as recording everything into one.
func TestHistogramMerge(t *testing.T) {
	whole, a, b := NewHistogram(), NewHistogram(), NewHistogram()
	for v := int64(1); v <= 10000; v++ {
		whole.Record(v)
		if v%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	merged := NewHistogram()
	merged.Merge(a)
	merged.Merge(b)
	if merged.Count() != whole.Count() {
		t.Fatalf("merged count = %d, want %d", merged.Count(), whole.Count())
	}
	if merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatalf("merged min/max = %d/%d, want %d/%d", merged.Min(), merged.Max(), whole.Min(), whole.Max())
	}
	for _, p := range []float64{50, 90, 99, 99.9} {
		if m, w := merged.Percentile(p), whole.Percentile(p); m != w {
			t.Errorf("p%v: merged %d != whole %d", p, m, w)
		}
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	h := NewHistogram()
	if h.Percentile(50) != 0 || h.Count() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not all-zero")
	}
	h.Record(0) // coarse-clock sample: clamped to 1ns, never lost
	h.Record(-5)
	if h.Count() != 2 || h.Min() != 1 || h.Percentile(99) != 1 {
		t.Fatalf("clamped samples mishandled: count=%d min=%d p99=%d", h.Count(), h.Min(), h.Percentile(99))
	}
	// A huge value must neither panic nor land outside the bucket table.
	big := int64(1) << 62
	h.Record(big)
	if got := h.Percentile(100); got != big {
		t.Fatalf("p100 after huge sample = %d, want %d (max-clamped)", got, big)
	}
}

// TestBucketRoundTrip: every bucket's representative value maps back to
// the same bucket, and indices are monotone in the value.
func TestBucketRoundTrip(t *testing.T) {
	for idx := 0; idx < histBuckets; idx++ {
		v := bucketValue(idx)
		if v > 0 && bucketIndex(v) != idx {
			t.Fatalf("bucketIndex(bucketValue(%d)) = %d", idx, bucketIndex(v))
		}
	}
	prev := -1
	for _, v := range []int64{1, 2, 31, 32, 33, 63, 64, 100, 1000, 1 << 20, 1 << 40, 1 << 62} {
		idx := bucketIndex(v)
		if idx <= prev {
			t.Fatalf("bucketIndex not monotone at %d", v)
		}
		prev = idx
	}
}

// TestRunLatencySamplesEveryOp: the merged histogram must hold exactly
// one sample per operation with plausible non-zero percentiles.
func TestRunLatencySamplesEveryOp(t *testing.T) {
	var sink [2]int
	res := RunLatency(2, 5000, func(w int) func(int) {
		return func(i int) { sink[w] += i }
	})
	if res.Latency == nil {
		t.Fatal("RunLatency returned no histogram")
	}
	if res.Latency.Count() != uint64(res.Ops) {
		t.Fatalf("samples = %d, ops = %d", res.Latency.Count(), res.Ops)
	}
	if p50, p99 := res.Latency.Percentile(50), res.Latency.Percentile(99); p50 <= 0 || p99 < p50 {
		t.Fatalf("implausible percentiles: p50=%d p99=%d", p50, p99)
	}
	_ = sink
}

// TestBucketGeometryProperty pins the precedence-sensitive midpoint
// expression in bucketValue: representative values must grow strictly
// monotonically across the whole bucket range, and a value→bucket→midpoint
// round trip must stay within the documented 1/2^histSubBits relative
// error (values below 2^histSubBits are exact).
func TestBucketGeometryProperty(t *testing.T) {
	// Midpoints monotone over every bucket.
	prev := bucketValue(0)
	for idx := 1; idx < histBuckets; idx++ {
		v := bucketValue(idx)
		if v <= prev {
			t.Fatalf("bucketValue not monotone: bucketValue(%d)=%d <= bucketValue(%d)=%d",
				idx, v, idx-1, prev)
		}
		prev = v
	}

	// Midpoint round-trip error bound, swept exhaustively through the
	// small range and pseudo-randomly through every octave above it.
	check := func(v int64) {
		t.Helper()
		m := bucketValue(bucketIndex(v))
		if v < 1<<histSubBits {
			if m != v {
				t.Fatalf("small value %d not exact: midpoint %d", v, m)
			}
			return
		}
		diff := m - v
		if diff < 0 {
			diff = -diff
		}
		// |midpoint - v| / v <= 1/2^histSubBits, in integers.
		if diff<<histSubBits > v {
			t.Fatalf("midpoint error too large at %d: midpoint %d, |diff| %d > %d/2^%d",
				v, m, diff, v, histSubBits)
		}
	}
	for v := int64(0); v < 1<<14; v++ {
		check(v)
	}
	rng := uint64(42)
	for msb := histSubBits; msb < 63; msb++ {
		base := int64(1) << msb
		check(base)
		check(base + base/2)
		check(base + base - 1) // top of the octave
		for i := 0; i < 64; i++ {
			r := xrand.SplitMix64(&rng)
			check(base + int64(r%uint64(base)))
		}
	}
}
