package bench

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cds-suite/cds/cache"
	"github.com/cds-suite/cds/internal/xrand"
)

// The cache scenario family (experiment S17) measures the bounded cache as
// a system: Zipf(0.99)-skewed lookups with a write fraction, over a key
// space several times the cache's capacity so eviction runs continuously.
// The scan-resistant policies (SIEVE, S3-FIFO — hits recorded under the
// shard read lock) are compared against the two designs they displace: a
// single-lock LRU (every hit takes the exclusive lock to move a list node,
// so reads serialise) and a sync.Map with TTL entries (reads scale but
// nothing bounds the footprint — it never evicts). Every record carries
// the accounting gauges: hits + misses == lookups holds for every cell by
// construction (the harness counts them per worker), hit_rate is the
// quality axis to read alongside the throughput axis, and evictions /
// expired / loads / stampede_suppressed expose what the cache did
// internally to sustain it. The stampede cell drives GetOrLoad on cold
// keys from all workers at once: singleflight keeps origin loads at ≈ one
// per distinct key and counts every suppressed duplicate, while the
// sync.Map baseline's naive get-then-load pays one origin call per racing
// worker.

const (
	cacheCap      = 4096
	cacheKeySpace = 8 * cacheCap // capacity misses guaranteed
	cacheTTL      = time.Minute  // expiry code paths armed, nothing expires mid-cell
)

// cacheBackend abstracts one S17 implementation: the bounded cache under
// its three policies, and the unbounded sync.Map baseline.
type cacheBackend interface {
	get(k uint64) (uint64, bool)
	set(k, v uint64)
	getOrLoad(k uint64, load func(uint64) uint64) uint64
	// gauges reports the backend-internal counters (evictions, expired,
	// loads, stampede_suppressed); the harness adds hits/misses/lookups.
	gauges() map[string]float64
	close()
}

// cdsCache adapts cache.Cache to the backend interface.
type cdsCache struct{ c *cache.Cache[uint64, uint64] }

func newCDSCache(p cache.Policy, shards int, extra ...cache.Option) cacheBackend {
	opts := []cache.Option{cache.WithPolicy(p), cache.WithTTL(cacheTTL)}
	if shards > 0 {
		opts = append(opts, cache.WithShards(shards))
	}
	opts = append(opts, extra...)
	return cdsCache{cache.New[uint64, uint64](cacheCap, opts...)}
}

func (b cdsCache) get(k uint64) (uint64, bool) { return b.c.Get(k) }
func (b cdsCache) set(k, v uint64)             { b.c.Set(k, v) }

func (b cdsCache) getOrLoad(k uint64, load func(uint64) uint64) uint64 {
	v, _ := b.c.GetOrLoad(context.Background(), k, func(_ context.Context, k uint64) (uint64, error) {
		return load(k), nil
	})
	return v
}

func (b cdsCache) gauges() map[string]float64 {
	st := b.c.Stats()
	return map[string]float64{
		"evictions":           float64(st.Evictions),
		"expired":             float64(st.Expired),
		"loads":               float64(st.Loads),
		"stampede_suppressed": float64(st.StampedeSuppressed),
		"weight_resident":     float64(st.WeightResident),
		"max_weight":          float64(b.c.MaxWeight()),
		"admission_rejects":   float64(st.AdmissionRejects),
		"evict_considered":    float64(st.EvictConsidered),
	}
}

func (b cdsCache) close() { b.c.Close() }

// syncMapTTL is the "just use sync.Map" baseline: entries carry an expiry
// deadline checked (and lazily deleted) on read, loads are naive
// get-then-load with no stampede protection, and nothing ever evicts —
// the footprint grows to the whole key space.
type syncMapTTL struct {
	m       sync.Map
	ttl     time.Duration
	expired atomic.Int64
	loads   atomic.Int64
}

type syncMapEntry struct {
	v       uint64
	expires int64
}

func newSyncMapTTL() cacheBackend { return &syncMapTTL{ttl: cacheTTL} }

func (b *syncMapTTL) get(k uint64) (uint64, bool) {
	if e, ok := b.m.Load(k); ok {
		en := e.(syncMapEntry)
		if time.Now().UnixNano() < en.expires {
			return en.v, true
		}
		b.m.Delete(k)
		b.expired.Add(1)
	}
	return 0, false
}

func (b *syncMapTTL) set(k, v uint64) {
	b.m.Store(k, syncMapEntry{v: v, expires: time.Now().Add(b.ttl).UnixNano()})
}

func (b *syncMapTTL) getOrLoad(k uint64, load func(uint64) uint64) uint64 {
	if v, ok := b.get(k); ok {
		return v
	}
	b.loads.Add(1)
	v := load(k)
	b.set(k, v)
	return v
}

func (b *syncMapTTL) gauges() map[string]float64 {
	return map[string]float64{
		"evictions":           0,
		"expired":             float64(b.expired.Load()),
		"loads":               float64(b.loads.Load()),
		"stampede_suppressed": 0,
		"weight_resident":     0,
		"max_weight":          0,
		"admission_rejects":   0,
		"evict_considered":    0,
	}
}

func (b *syncMapTTL) close() {}

// cacheCounters fold per-worker hit/miss tallies once at worker exit, so
// the gauge invariant hits + misses == lookups is exact for every backend
// without putting shared atomics on the measured path.
type cacheCounters struct {
	hits, misses atomic.Int64
}

func (c *cacheCounters) gauges(backend cacheBackend) map[string]float64 {
	g := backend.gauges()
	h, m := float64(c.hits.Load()), float64(c.misses.Load())
	g["hits"] = h
	g["misses"] = m
	g["lookups"] = h + m
	if h+m > 0 {
		g["hit_rate"] = h / (h + m)
	} else {
		g["hit_rate"] = 0
	}
	return g
}

// runCacheMix measures a getPct/setPct mix over Zipf(0.99) keys. The hot
// head of the key space is prefilled so every backend starts from the
// same warm state.
func runCacheMix(mk func() cacheBackend, cfg Config, th, getPct, setPct int) Result {
	b := mk()
	defer b.close()
	for k := uint64(0); k < cacheCap; k++ {
		b.set(k, k)
	}
	var ctr cacheCounters
	ops := cfg.ops(1 << 16)
	res := RunLatency(th, ops, func(w int) func(int) {
		keys, err := NewKeyStream(cacheKeySpace, 0.99, uint64(w)*7919+1)
		if err != nil {
			panic(err) // static parameters; cannot fail at runtime
		}
		mix := NewMixGen(uint64(w)*31+7, getPct, setPct)
		hits, misses := 0, 0
		var once sync.Once
		fold := func() {
			ctr.hits.Add(int64(hits))
			ctr.misses.Add(int64(misses))
		}
		return func(i int) {
			k := keys.Next()
			if mix.Next() == 0 {
				if _, ok := b.get(k); ok {
					hits++
				} else {
					misses++
				}
			} else {
				b.set(k, k)
			}
			if i == ops-1 {
				once.Do(fold)
			}
		}
	})
	res.Gauges = ctr.gauges(b)
	return res
}

// cacheColdLoad is the simulated origin fetch for the stampede cell: ~20k
// SplitMix64 rounds, tens of microseconds — long enough that concurrent
// misses on the same key overlap the in-flight load.
func cacheColdLoad(k uint64) uint64 {
	v := k
	for i := 0; i < 20000; i++ {
		xrand.SplitMix64(&v)
	}
	return v
}

// runCacheStampede drives GetOrLoad: every worker marches through the
// same cold-key sequence (cacheStampedeRepeats consecutive requests per
// key), so each distinct key sees a burst of th*repeats near-simultaneous
// requests while it is still cold. Singleflight backends should perform ≈
// one origin load per distinct key and suppress the rest; the naive
// baseline loads once per racing request.
func runCacheStampede(mk func() cacheBackend, cfg Config, th int) Result {
	const repeats = 8
	b := mk()
	defer b.close()
	var ctr cacheCounters
	ops := cfg.ops(1 << 12)
	res := RunLatency(th, ops, func(w int) func(int) {
		hits, misses := 0, 0
		var once sync.Once
		fold := func() {
			ctr.hits.Add(int64(hits))
			ctr.misses.Add(int64(misses))
		}
		return func(i int) {
			k := uint64(i / repeats) // all workers aligned on the same key
			if _, ok := b.get(k); ok {
				hits++
			} else {
				misses++
				b.getOrLoad(k, cacheColdLoad)
			}
			if i == ops-1 {
				once.Do(fold)
			}
		}
	})
	res.Gauges = ctr.gauges(b)
	res.Gauges["distinct_cold_keys"] = float64((ops + repeats - 1) / repeats)
	return res
}

// Loopy-trace parameters (the S17 admission cell): a small Zipf hot set
// that always fits, interleaved 1:1 with a sequential loop whose range
// exceeds the capacity left after the hot set. Every loop key's reuse
// distance beats any recency policy — retained-by-recency loop keys never
// hit — but a frequency-sketch admission filter freezes a resident loop
// subset that then hits on every lap. This is the cell where
// SIEVE+TinyLFU must beat plain SIEVE on hit_rate (the seeded regression
// test in package cache pins the same mechanism at smaller scale).
const (
	cacheLoopHotKeys = cacheCap / 4 // Zipf working set, far under capacity
	cacheLoopRange   = 2 * cacheCap // loop reuse distance > spare capacity
)

// runCacheLoopy measures cache-aside traffic (get; set on miss) over the
// hot-set + loop interleave. Workers share the key space but walk
// phase-shifted loop positions, keeping the loop sequential per worker.
func runCacheLoopy(mk func() cacheBackend, cfg Config, th int) Result {
	b := mk()
	defer b.close()
	for k := uint64(0); k < cacheLoopHotKeys; k++ {
		b.set(k, k) // warm the hot set; loop keys start cold
	}
	var ctr cacheCounters
	ops := cfg.ops(1 << 16)
	res := RunLatency(th, ops, func(w int) func(int) {
		keys, err := NewKeyStream(cacheLoopHotKeys, 0.99, uint64(w)*7919+1)
		if err != nil {
			panic(err) // static parameters; cannot fail at runtime
		}
		loop := uint64(w) * 977 // phase-shift workers around the loop
		hits, misses := 0, 0
		var once sync.Once
		fold := func() {
			ctr.hits.Add(int64(hits))
			ctr.misses.Add(int64(misses))
		}
		return func(i int) {
			var k uint64
			if i&1 == 0 {
				// Loop keys live above the hot-set range.
				k = cacheLoopHotKeys + loop%cacheLoopRange
				loop++
			} else {
				k = keys.Next()
			}
			if _, ok := b.get(k); ok {
				hits++
			} else {
				misses++
				b.set(k, k)
			}
			if i == ops-1 {
				once.Do(fold)
			}
		}
	})
	res.Gauges = ctr.gauges(b)
	return res
}

// cacheEntryWeight derives a deterministic heavy-tailed weight from the
// key for the weighted S17 cell: mostly small objects (1..16), with ~1 in
// 128 keys a 512-unit giant — the distribution that makes multi-victim
// evictions routine.
func cacheEntryWeight(k uint64, _ uint64) int64 {
	x := k + 1
	h := xrand.SplitMix64(&x)
	if h%128 == 0 {
		return 512
	}
	return int64(1 + h%16)
}

// cacheWeightBudget keeps the weighted cells at roughly the same resident
// entry count as the counted cells: mean weight is ≈ 12 (16/2 plus the
// giants' contribution), so budget = 12 × capacity.
const cacheWeightBudget = 12 * cacheCap

// cacheAlgos is the S17 implementation sweep: the two scan-resistant
// policies (sharded), the single-lock LRU, and the sync.Map baseline.
func cacheAlgos(run func(mk func() cacheBackend, cfg Config, th int) Result) []ScenarioAlgo {
	return []ScenarioAlgo{
		{Label: "SIEVE", Run: func(cfg Config, th int) Result {
			return run(func() cacheBackend { return newCDSCache(cache.SIEVE, 0) }, cfg, th)
		}},
		{Label: "S3-FIFO", Run: func(cfg Config, th int) Result {
			return run(func() cacheBackend { return newCDSCache(cache.S3FIFO, 0) }, cfg, th)
		}},
		{Label: "LockedLRU", Run: func(cfg Config, th int) Result {
			return run(func() cacheBackend { return newCDSCache(cache.LRU, 1) }, cfg, th)
		}},
		{Label: "SyncMapTTL", Run: func(cfg Config, th int) Result {
			return run(newSyncMapTTL, cfg, th)
		}},
	}
}

// cacheAdmissionAlgos is the loopy-trace sweep: each scan-resistant
// policy with and without the TinyLFU admission filter, so the hit_rate
// column isolates what admission buys on a loop-heavy trace.
func cacheAdmissionAlgos(run func(mk func() cacheBackend, cfg Config, th int) Result) []ScenarioAlgo {
	tiny := cache.WithAdmission(cache.TinyLFU)
	return []ScenarioAlgo{
		{Label: "SIEVE", Run: func(cfg Config, th int) Result {
			return run(func() cacheBackend { return newCDSCache(cache.SIEVE, 0) }, cfg, th)
		}},
		{Label: "SIEVE+TinyLFU", Run: func(cfg Config, th int) Result {
			return run(func() cacheBackend { return newCDSCache(cache.SIEVE, 0, tiny) }, cfg, th)
		}},
		{Label: "S3-FIFO", Run: func(cfg Config, th int) Result {
			return run(func() cacheBackend { return newCDSCache(cache.S3FIFO, 0) }, cfg, th)
		}},
		{Label: "S3-FIFO+TinyLFU", Run: func(cfg Config, th int) Result {
			return run(func() cacheBackend { return newCDSCache(cache.S3FIFO, 0, tiny) }, cfg, th)
		}},
	}
}

// cacheWeightedAlgos is the weighted sweep: the bounded policies under a
// byte-like weight budget with heavy-tailed entry weights (one giant can
// evict dozens of small victims), plus the unbounded sync.Map baseline
// for contrast.
func cacheWeightedAlgos(run func(mk func() cacheBackend, cfg Config, th int) Result) []ScenarioAlgo {
	weighted := []cache.Option{
		cache.WithMaxWeight(cacheWeightBudget),
		cache.WithWeigher(cacheEntryWeight),
	}
	return []ScenarioAlgo{
		{Label: "SIEVE+weights", Run: func(cfg Config, th int) Result {
			return run(func() cacheBackend { return newCDSCache(cache.SIEVE, 0, weighted...) }, cfg, th)
		}},
		{Label: "S3-FIFO+weights", Run: func(cfg Config, th int) Result {
			return run(func() cacheBackend { return newCDSCache(cache.S3FIFO, 0, weighted...) }, cfg, th)
		}},
		{Label: "SIEVE+TinyLFU+weights", Run: func(cfg Config, th int) Result {
			return run(func() cacheBackend {
				return newCDSCache(cache.SIEVE, 0, append([]cache.Option{cache.WithAdmission(cache.TinyLFU)}, weighted...)...)
			}, cfg, th)
		}},
		{Label: "SyncMapTTL", Run: func(cfg Config, th int) Result {
			return run(newSyncMapTTL, cfg, th)
		}},
	}
}

// cacheScenarios is experiment S17: the bounded cache against the
// locked-LRU and sync.Map baselines.
func cacheScenarios() []Scenario {
	mix := func(getPct, setPct int) func(mk func() cacheBackend, cfg Config, th int) Result {
		return func(mk func() cacheBackend, cfg Config, th int) Result {
			return runCacheMix(mk, cfg, th, getPct, setPct)
		}
	}
	return []Scenario{
		{Family: "cache", Name: "zipf-0.99-get90-set10", Algos: cacheAlgos(mix(90, 10))},
		{Family: "cache", Name: "zipf-0.99-get50-set50", Algos: cacheAlgos(mix(50, 50))},
		{Family: "cache", Name: "stampede-cold-keys", Algos: cacheAlgos(runCacheStampede)},
		{Family: "cache", Name: "loopy-admission", Algos: cacheAdmissionAlgos(runCacheLoopy)},
		{Family: "cache", Name: "weighted-heavy-tail-get90-set10", Algos: cacheWeightedAlgos(mix(90, 10))},
	}
}
